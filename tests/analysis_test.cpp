// Tests for the static partition-safety analyzer (aidelint): pinned-closure
// computation, each lint rule (positive and negative), hint export, graph
// pre-contraction in the partitioner, and the platform's startup gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/analyzer.hpp"
#include "apps/apps.hpp"
#include "graph/exec_graph.hpp"
#include "partition/partitioner.hpp"
#include "platform/platform.hpp"
#include "vm/klass.hpp"

namespace aide::analysis {
namespace {

using vm::ClassBuilder;
using vm::ClassRegistry;
using vm::NativeEffect;
using vm::PinReason;

vm::MethodBody noop() {
  return [](vm::Vm&, vm::ObjectRef, auto) { return vm::Value{}; };
}

// Device (pinned stateful native) <- Holder (typed field) <- Outer (typed
// field); Free is unrelated and migratable.
ClassRegistry closure_registry() {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Device")
                         .source("dev.cpp")
                         .entry()
                         .native_method("poke", noop())
                         .arity(0)
                         .effect(NativeEffect::device_state)
                         .build());
  reg.register_class(ClassBuilder("Holder")
                         .entry()
                         .field("dev", "Device")
                         .build());
  reg.register_class(
      ClassBuilder("Outer").entry().field("h", "Holder").build());
  reg.register_class(
      ClassBuilder("Free").entry().migratable().field("n").build());
  return reg;
}

bool has_rule(const AnalysisReport& r, Rule rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

TEST(PinnedClosureTest, PropagatesThroughTypedFields) {
  const auto reg = closure_registry();
  const auto report = analyze(reg);
  ASSERT_TRUE(report.ok());

  const ClassId device = reg.find("Device");
  EXPECT_TRUE(report.is_pin_root(device));
  EXPECT_TRUE(report.in_closure(device));
  // Transitive: Holder holds Device, Outer holds Holder.
  EXPECT_TRUE(report.in_closure(reg.find("Holder")));
  EXPECT_TRUE(report.in_closure(reg.find("Outer")));
  EXPECT_FALSE(report.in_closure(reg.find("Free")));
  EXPECT_FALSE(report.is_pin_root(reg.find("Holder")));

  // never_migrate is exactly the closure, sorted.
  EXPECT_TRUE(std::is_sorted(report.hints.never_migrate.begin(),
                             report.hints.never_migrate.end()));
  EXPECT_EQ(report.hints.never_migrate.size(), 3u);
}

TEST(PinnedClosureTest, ExplicitPinReasonIsRoot) {
  ClassRegistry reg;
  reg.register_class(
      ClassBuilder("Ui").entry().pin(PinReason::ui).field("x").build());
  const auto report = analyze(reg);
  EXPECT_TRUE(report.is_pin_root(reg.find("Ui")));
  EXPECT_EQ(reg.get(reg.find("Ui")).effective_pin_reason(), PinReason::ui);
}

// The acceptance-criteria injection: a migratable class holding a field of a
// pinned type must produce a class-anchored ERROR diagnostic.
TEST(LintRuleTest, MigratableHoldingPinnedTypeIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Screen")
                         .entry()
                         .native_method("blit", noop())
                         .effect(NativeEffect::device_state)
                         .build());
  reg.register_class(ClassBuilder("Engine")
                         .source("engine.cpp")
                         .entry()
                         .migratable()
                         .field("screen", "Screen")
                         .build());
  const auto report = analyze(reg);
  EXPECT_FALSE(report.ok());

  const auto it = std::find_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.rule == Rule::pinned_field_in_migratable;
      });
  ASSERT_NE(it, report.diagnostics.end());
  EXPECT_EQ(it->severity, Severity::error);
  EXPECT_EQ(it->cls, reg.find("Engine"));
  EXPECT_EQ(it->class_name, "Engine");
  // The formatted diagnostic is anchored to the class and its source file.
  EXPECT_NE(it->format().find("engine.cpp"), std::string::npos);
  EXPECT_NE(it->format().find("Engine"), std::string::npos);
  EXPECT_NE(it->format().find("screen"), std::string::npos);
}

TEST(LintRuleTest, MigratableDeclaredOnPinnedClassIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Confused")
                         .entry()
                         .migratable()
                         .pin(PinReason::user_pinned)
                         .build());
  const auto report = analyze(reg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::pinned_field_in_migratable));
}

TEST(LintRuleTest, MigratableOutsideClosureIsClean) {
  const auto report = analyze(closure_registry());
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(has_rule(report, Rule::pinned_field_in_migratable));
}

TEST(LintRuleTest, UnknownCallTargetIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Missing", "run", 0)
                         .build());
  const auto report = analyze(reg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::unknown_call_target));
}

TEST(LintRuleTest, UnknownMethodOnKnownClassIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Target").entry().method("run", noop())
                         .build());
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Target", "nope", 0)
                         .build());
  const auto report = analyze(reg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::unknown_call_target));
}

TEST(LintRuleTest, ArityMismatchIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Target")
                         .entry()
                         .method("run", noop())
                         .arity(2)
                         .build());
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Target", "run", 3)
                         .build());
  const auto report = analyze(reg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::arity_mismatch));
}

TEST(LintRuleTest, ArityAgreementAndUndeclaredAritiesAreClean) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Target")
                         .entry()
                         .method("run", noop())
                         .arity(2)
                         .method("any", noop())  // arity undeclared
                         .build());
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Target", "run", 2)   // matches
                         .calls("Target", "run")      // argc unknown
                         .calls("Target", "any", 7)   // target undeclared
                         .build());
  const auto report = analyze(reg);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(has_rule(report, Rule::arity_mismatch));
}

TEST(LintRuleTest, UndeclaredNativeEffectWarns) {
  ClassRegistry reg;
  reg.register_class(
      ClassBuilder("Sloppy").entry().native_method("touch", noop()).build());
  const auto report = analyze(reg);
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_TRUE(has_rule(report, Rule::undeclared_native_effect));

  ClassRegistry good;
  good.register_class(ClassBuilder("Tidy")
                          .entry()
                          .native_method("touch", noop())
                          .effect(NativeEffect::device_state)
                          .build());
  EXPECT_FALSE(has_rule(analyze(good), Rule::undeclared_native_effect));
}

TEST(LintRuleTest, StatelessNativeNeedsNoEffectDeclaration) {
  ClassRegistry reg;
  reg.register_class(
      ClassBuilder("MathLike")
          .entry()
          .native_method("sqrt", noop(), /*stateless=*/true)
          .build());
  EXPECT_FALSE(has_rule(analyze(reg), Rule::undeclared_native_effect));
}

TEST(LintRuleTest, UnknownFieldTypeWarns) {
  ClassRegistry reg;
  reg.register_class(
      ClassBuilder("Typo").entry().field("x", "NoSuchClass").build());
  const auto report = analyze(reg);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::unknown_field_type));
}

TEST(LintRuleTest, PinnedLeafWarnsUnlessEntry) {
  // A non-entry pinned class referenced only from outside the closure.
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Beeper")
                         .native_method("beep", noop())
                         .effect(NativeEffect::device_state)
                         .build());
  reg.register_class(ClassBuilder("Worker")
                         .entry()
                         .migratable()
                         .calls("Beeper", "beep")
                         .build());
  EXPECT_TRUE(has_rule(analyze(reg), Rule::pinned_leaf));

  // The same shape with the pinned class marked entry is clean: the driver
  // owns it, so crossing the cut to reach it is expected.
  ClassRegistry ok;
  ok.register_class(ClassBuilder("Beeper")
                        .entry()
                        .native_method("beep", noop())
                        .effect(NativeEffect::device_state)
                        .build());
  ok.register_class(ClassBuilder("Worker")
                        .entry()
                        .migratable()
                        .calls("Beeper", "beep")
                        .build());
  EXPECT_FALSE(has_rule(analyze(ok), Rule::pinned_leaf));
}

TEST(LintRuleTest, DeadClassIsInfoUnlessEntryOrReferenced) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Orphan").field("x").build());
  const auto report = analyze(reg);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::dead_class));

  ClassRegistry used;
  used.register_class(ClassBuilder("Orphan").field("x").build());
  used.register_class(
      ClassBuilder("User").entry().references("Orphan").build());
  EXPECT_FALSE(has_rule(analyze(used), Rule::dead_class));
}

TEST(HintsTest, Deterministic) {
  const auto reg = closure_registry();
  const auto a = analyze(reg);
  const auto b = analyze(reg);
  EXPECT_EQ(a.hints.never_migrate, b.hints.never_migrate);
  EXPECT_EQ(a.hints.must_colocate, b.hints.must_colocate);
  EXPECT_EQ(a.hints.merge_candidates, b.hints.merge_candidates);
  EXPECT_EQ(a.edges.size(), b.edges.size());
  EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
}

TEST(HintsTest, MustColocateCoversFieldEdgesIntoClosure) {
  const auto reg = closure_registry();
  const auto report = analyze(reg);
  // Holder->Device and Outer->Holder are field edges whose target is in the
  // closure: both holders must stay with their referents.
  const auto has_pair = [&](std::string_view from, std::string_view to) {
    return std::find(report.hints.must_colocate.begin(),
                     report.hints.must_colocate.end(),
                     std::pair{reg.find(from), reg.find(to)}) !=
           report.hints.must_colocate.end();
  };
  EXPECT_TRUE(has_pair("Holder", "Device"));
  EXPECT_TRUE(has_pair("Outer", "Holder"));
  EXPECT_EQ(report.hints.must_colocate.size(), 2u);
}

TEST(HintsTest, MergeCandidateForSingleNeighborClass) {
  // Chunk's only static neighbor is List (self-referential next link plus
  // the container): cutting between them can never pay off.
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Chunk")
                         .migratable()
                         .field("next", "Chunk")
                         .build());
  reg.register_class(ClassBuilder("List")
                         .entry()
                         .migratable()
                         .field("head", "Chunk")
                         .build());
  reg.register_class(ClassBuilder("Other").entry().migratable().build());
  const auto report = analyze(reg);
  ASSERT_TRUE(report.ok());
  const auto& mc = report.hints.merge_candidates;
  EXPECT_TRUE(std::find(mc.begin(), mc.end(),
                        std::pair{reg.find("Chunk"), reg.find("List")}) !=
                  mc.end() ||
              std::find(mc.begin(), mc.end(),
                        std::pair{reg.find("List"), reg.find("Chunk")}) !=
                  mc.end());
}

// ---- partitioner consumption -----------------------------------------------

graph::EdgeInfo edge(std::uint64_t bytes, std::uint64_t inv) {
  return graph::EdgeInfo{.invocations = inv, .accesses = 0, .bytes = bytes};
}

TEST(ContractionTest, ShrinksGraphAndPreservesTotals) {
  using graph::ComponentKey;
  graph::ExecGraph g;
  const ComponentKey ui{ClassId{0}}, view{ClassId{1}}, data{ClassId{2}},
      store{ClassId{3}};
  g.set_pinned(ui, true);
  g.add_memory(ui, 10'000, 5);
  g.add_memory(view, 40'000, 10);
  g.add_memory(data, 400'000, 50);
  g.add_memory(store, 600'000, 3);
  g.add_self_time(data, sim_ms(800));
  g.set_edge(ui, view, edge(500'000, 2000));
  g.set_edge(view, data, edge(30'000, 300));
  g.set_edge(data, store, edge(200'000, 1000));

  StaticHints hints;
  hints.never_migrate = {ClassId{0}, ClassId{1}};  // ui + view pinned closure
  hints.merge_candidates = {{ClassId{2}, ClassId{3}}};

  const auto contracted = partition::contract_with_hints(g, hints);
  // 4 nodes -> 2: {ui,view} anchor and {data,store}.
  EXPECT_EQ(contracted.graph.nodes().size(), 2u);
  EXPECT_EQ(contracted.graph.edges().size(), 1u);

  // Totals preserved.
  std::int64_t mem = 0;
  bool anchor_pinned = false;
  for (const auto& [key, info] : contracted.graph.nodes()) {
    mem += info.mem_bytes;
    if (info.pinned) anchor_pinned = true;
  }
  EXPECT_EQ(mem, 10'000 + 40'000 + 400'000 + 600'000);
  EXPECT_TRUE(anchor_pinned);
  EXPECT_EQ(contracted.graph.total_self_time(), g.total_self_time());

  // Every original key is a member of exactly one representative.
  std::size_t covered = 0;
  for (const auto& [rep, members] : contracted.members) {
    covered += members.size();
    EXPECT_TRUE(std::find(members.begin(), members.end(), rep) !=
                members.end());
  }
  EXPECT_EQ(covered, 4u);
}

TEST(ContractionTest, DecisionExpandsToOriginalComponents) {
  using graph::ComponentKey;
  graph::ExecGraph g;
  const ComponentKey ui{ClassId{0}}, data{ClassId{2}}, store{ClassId{3}};
  g.set_pinned(ui, true);
  g.add_memory(ui, 10'000, 5);
  g.add_memory(data, 400'000, 50);
  g.add_memory(store, 600'000, 3);
  g.set_edge(ui, data, edge(30'000, 300));
  g.set_edge(data, store, edge(200'000, 1000));

  StaticHints hints;
  hints.never_migrate = {ClassId{0}};
  hints.merge_candidates = {{ClassId{2}, ClassId{3}}};

  partition::PartitionRequest req;
  req.objective = partition::Objective::free_memory;
  req.heap_capacity = 1 << 20;
  req.min_free_bytes = 500'000;
  req.history_duration = sim_sec(10);
  req.hints = &hints;

  const auto d = partition::decide_partitioning(g, req);
  ASSERT_TRUE(d.offload);
  EXPECT_TRUE(d.hints_applied);
  // MINCUT ran on the contracted graph (2 nodes), but the selection is
  // expanded back to the original component keys.
  EXPECT_EQ(d.mincut_nodes, 2u);
  EXPECT_TRUE(d.selected.offload.contains(data));
  EXPECT_TRUE(d.selected.offload.contains(store));
  EXPECT_FALSE(d.selected.offload.contains(ui));

  // Without hints the same graph yields the same offload set here, with a
  // larger MINCUT input.
  req.hints = nullptr;
  const auto plain = partition::decide_partitioning(g, req);
  ASSERT_TRUE(plain.offload);
  EXPECT_FALSE(plain.hints_applied);
  EXPECT_EQ(plain.mincut_nodes, 3u);
  EXPECT_GT(plain.mincut_nodes, d.mincut_nodes);
  EXPECT_EQ(plain.selected.offload, d.selected.offload);
}

TEST(ContractionTest, EmptyHintsLeaveRequestUntouched) {
  graph::ExecGraph g;
  g.add_memory(graph::ComponentKey{ClassId{1}}, 1000, 1);
  partition::PartitionRequest req;
  req.min_free_bytes = 1;
  req.history_duration = sim_sec(1);
  StaticHints empty;
  req.hints = &empty;  // empty hints: contraction must be skipped
  const auto d = partition::decide_partitioning(g, req);
  EXPECT_FALSE(d.hints_applied);
}

// ---- whole-app regression ---------------------------------------------------

TEST(AppsLintTest, AllFiveAppsAreClean) {
  for (const auto& app : apps::all_apps()) {
    vm::ClassRegistry reg;
    app.register_classes(reg);
    const auto report = analyze(reg);
    EXPECT_EQ(report.errors(), 0u) << app.name << ": " << report.summary();
    EXPECT_EQ(report.count(Severity::warning), 0u)
        << app.name << ": " << report.summary();
    // Every app has a pinned device side and exports usable hints.
    EXPECT_FALSE(report.pin_roots.empty()) << app.name;
    EXPECT_FALSE(report.hints.never_migrate.empty()) << app.name;
    EXPECT_FALSE(report.hints.must_colocate.empty()) << app.name;
  }
}

// ---- platform gate ----------------------------------------------------------

TEST(PlatformGateTest, ConstructorThrowsOnLintError) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  reg->register_class(ClassBuilder("Screen")
                          .entry()
                          .native_method("blit", noop())
                          .effect(NativeEffect::device_state)
                          .build());
  reg->register_class(ClassBuilder("Engine")
                          .entry()
                          .migratable()
                          .field("screen", "Screen")
                          .build());
  EXPECT_THROW(platform::Platform p(reg), AnalysisError);

  // The same registry passes when the gate is disabled.
  platform::PlatformConfig cfg;
  cfg.static_analysis = false;
  platform::Platform ungated(reg, cfg);
  EXPECT_FALSE(ungated.analysis_report().has_value());
}

TEST(PlatformGateTest, ReportExposedOnCleanRegistry) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  apps::app_by_name("Voxel").register_classes(*reg);
  platform::Platform p(reg);
  ASSERT_TRUE(p.analysis_report().has_value());
  EXPECT_TRUE(p.analysis_report()->ok());
  EXPECT_FALSE(p.analysis_report()->hints.empty());
}

// Transparency: the observable checksum is identical with hints off and on
// (placement may differ; results may not).
TEST(PlatformHintsTest, ChecksumUnchangedWithHintsEnabled) {
  const auto& app = apps::app_by_name("JavaNote");
  apps::AppParams params;
  params.doc_bytes = 128 * 1024;
  params.edits = 30;
  params.scrolls = 40;

  const auto run_with = [&](bool hints) {
    auto reg = std::make_shared<vm::ClassRegistry>();
    app.register_classes(*reg);
    platform::PlatformConfig cfg;
    cfg.client_heap = 1100 * 1024;
    cfg.use_static_hints = hints;
    platform::Platform p(reg, cfg);
    const std::uint64_t checksum = app.run(p.client(), params);
    return std::pair{checksum, p.offloaded()};
  };

  const auto [plain, plain_offloaded] = run_with(false);
  const auto [hinted, hinted_offloaded] = run_with(true);
  EXPECT_EQ(plain, hinted);
  EXPECT_EQ(plain_offloaded, hinted_offloaded);
}

}  // namespace
}  // namespace aide::analysis
