// Tests for the wire codec: value round-trips through a fake reference
// translator, object header/payload round-trips for all three object shapes,
// and cycle tolerance via the two-section migration encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "rpc/serializer.hpp"

namespace aide::rpc {
namespace {

using vm::ObjectKind;
using vm::ObjectRef;
using vm::Value;

// Identity-style translator that records traffic.
class FakeTranslator : public RefTranslator {
 public:
  WireRef translate_out(ObjectRef ref) override {
    ++outs;
    WireRef wire;
    wire.owner = NodeId{1};
    wire.handle = ExportHandle{ref.id.value() + 1000};
    wire.id = ref.id;
    wire.cls = ClassId{7};
    wire.kind = ObjectKind::plain;
    return wire;
  }
  ObjectRef translate_in(const WireRef& wire) override {
    ++ins;
    EXPECT_EQ(wire.handle.value(), wire.id.value() + 1000);
    return ObjectRef{wire.id};
  }
  int outs = 0, ins = 0;
};

Value roundtrip(const Value& v, FakeTranslator& tr) {
  ByteWriter w;
  write_value(w, v, tr);
  ByteReader r(w.data());
  return read_value(r, tr);
}

TEST(WireValueTest, ScalarRoundTrips) {
  FakeTranslator tr;
  EXPECT_TRUE(roundtrip(Value{}, tr).is_nil());
  EXPECT_EQ(roundtrip(Value{true}, tr).as_bool(), true);
  EXPECT_EQ(roundtrip(Value{false}, tr).as_bool(), false);
  EXPECT_EQ(roundtrip(Value{std::int64_t{-123456789}}, tr).as_int(),
            -123456789);
  EXPECT_DOUBLE_EQ(roundtrip(Value{2.718}, tr).as_real(), 2.718);
  EXPECT_EQ(roundtrip(Value{"wire"}, tr).as_str(), "wire");
}

TEST(WireValueTest, NullRefRoundTripsWithoutTranslation) {
  FakeTranslator tr;
  const Value v = roundtrip(Value{vm::kNullRef}, tr);
  EXPECT_TRUE(v.is_ref());
  EXPECT_TRUE(v.as_ref().is_null());
  EXPECT_EQ(tr.outs, 0);
  EXPECT_EQ(tr.ins, 0);
}

TEST(WireValueTest, RefGoesThroughTranslator) {
  FakeTranslator tr;
  const Value v = roundtrip(Value{ObjectRef{ObjectId{55}}}, tr);
  EXPECT_EQ(v.as_ref().id, ObjectId{55});
  EXPECT_EQ(tr.outs, 1);
  EXPECT_EQ(tr.ins, 1);
}

TEST(WireValueTest, RandomValueFuzzRoundTrip) {
  FakeTranslator tr;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Value v;
    switch (rng.next_below(6)) {
      case 0: v = Value{}; break;
      case 1: v = Value{rng.next_bool(0.5)}; break;
      case 2: v = Value{static_cast<std::int64_t>(rng.next_u64())}; break;
      case 3: v = Value{rng.next_double() * 1e9}; break;
      case 4: v = Value{ObjectRef{ObjectId{rng.next_u64() >> 16}}}; break;
      case 5: {
        std::string s(rng.next_below(64), 'a');
        for (auto& c : s) c = static_cast<char>('a' + rng.next_below(26));
        v = Value{std::move(s)};
        break;
      }
    }
    EXPECT_EQ(roundtrip(v, tr), v);
  }
}

TEST(WireRefTest, FieldsRoundTrip) {
  WireRef ref;
  ref.owner = NodeId{2};
  ref.handle = ExportHandle{88};
  ref.id = ObjectId{0x0001000000000007ULL};
  ref.cls = ClassId{14};
  ref.kind = ObjectKind::char_array;

  ByteWriter w;
  write_wire_ref(w, ref);
  ByteReader r(w.data());
  const WireRef got = read_wire_ref(r);
  EXPECT_EQ(got.owner, ref.owner);
  EXPECT_EQ(got.handle, ref.handle);
  EXPECT_EQ(got.id, ref.id);
  EXPECT_EQ(got.cls, ref.cls);
  EXPECT_EQ(got.kind, ref.kind);
}

vm::Object make_object(ObjectKind kind) {
  vm::Object obj;
  obj.id = ObjectId{42};
  obj.cls = ClassId{3};
  obj.kind = kind;
  switch (kind) {
    case ObjectKind::plain:
      obj.fields = {Value{1}, Value{"text"}, Value{ObjectRef{ObjectId{9}}},
                    Value{}};
      break;
    case ObjectKind::int_array:
      obj.ints = {1, -2, 3000000000LL};
      break;
    case ObjectKind::char_array:
      obj.chars = "payload bytes";
      break;
  }
  return obj;
}

class ObjectCodecTest : public ::testing::TestWithParam<ObjectKind> {};

TEST_P(ObjectCodecTest, HeaderAndPayloadRoundTrip) {
  FakeTranslator tr;
  const vm::Object src = make_object(GetParam());

  ByteWriter w;
  write_object_header(w, src);
  write_object_payload(w, src, tr);

  ByteReader r(w.data());
  const ObjectHeader h = read_object_header(r);
  EXPECT_EQ(h.id, src.id);
  EXPECT_EQ(h.cls, src.cls);
  EXPECT_EQ(h.kind, src.kind);

  vm::Object dst;
  dst.id = h.id;
  dst.cls = h.cls;
  dst.kind = h.kind;
  dst.fields.assign(h.field_count, Value{});
  dst.ints.assign(static_cast<std::size_t>(h.ints_len), 0);
  dst.chars.assign(static_cast<std::size_t>(h.chars_len), '\0');
  read_object_payload(r, dst, tr);

  EXPECT_EQ(dst.fields, src.fields);
  EXPECT_EQ(dst.ints, src.ints);
  EXPECT_EQ(dst.chars, src.chars);
  EXPECT_EQ(dst.size_bytes(), src.size_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ObjectCodecTest,
                         ::testing::Values(ObjectKind::plain,
                                           ObjectKind::int_array,
                                           ObjectKind::char_array));

TEST(ObjectCodecTest, TwoSectionEncodingToleratesCycles) {
  // Objects A and B reference each other; headers first, then payloads.
  FakeTranslator tr;
  vm::Object a = make_object(ObjectKind::plain);
  a.id = ObjectId{1};
  a.fields = {Value{ObjectRef{ObjectId{2}}}};
  vm::Object b = make_object(ObjectKind::plain);
  b.id = ObjectId{2};
  b.fields = {Value{ObjectRef{ObjectId{1}}}};

  ByteWriter w;
  write_object_header(w, a);
  write_object_header(w, b);
  write_object_payload(w, a, tr);
  write_object_payload(w, b, tr);

  ByteReader r(w.data());
  const ObjectHeader ha = read_object_header(r);
  const ObjectHeader hb = read_object_header(r);
  vm::Object da, db;
  da.kind = ha.kind;
  da.fields.assign(ha.field_count, Value{});
  db.kind = hb.kind;
  db.fields.assign(hb.field_count, Value{});
  read_object_payload(r, da, tr);
  read_object_payload(r, db, tr);
  EXPECT_EQ(da.fields[0].as_ref().id, ObjectId{2});
  EXPECT_EQ(db.fields[0].as_ref().id, ObjectId{1});
  EXPECT_TRUE(r.exhausted());
}

// --- seeded fuzz: nested object graphs ---------------------------------------

TEST(ObjectCodecTest, NestedObjectGraphFuzzRoundTrip) {
  Rng rng(0xB47C4);
  for (int round = 0; round < 40; ++round) {
    FakeTranslator tr;
    const int n = 2 + static_cast<int>(rng.next_below(8));

    // Random graph over n objects; plain objects reference arbitrary peers
    // (self-references and cycles included), arrays carry random payloads.
    std::vector<vm::Object> graph(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      vm::Object& o = graph[static_cast<std::size_t>(i)];
      o.id = ObjectId{100 + static_cast<std::uint64_t>(i)};
      o.cls = ClassId{1 + static_cast<std::uint32_t>(rng.next_below(5))};
      switch (rng.next_below(3)) {
        case 0: {
          o.kind = ObjectKind::plain;
          const auto fields = rng.next_below(6);
          for (std::uint64_t f = 0; f < fields; ++f) {
            switch (rng.next_below(5)) {
              case 0: o.fields.emplace_back(); break;
              case 1: o.fields.emplace_back(rng.next_bool(0.5)); break;
              case 2:
                o.fields.emplace_back(
                    static_cast<std::int64_t>(rng.next_u64()));
                break;
              case 3:
                o.fields.emplace_back(ObjectRef{ObjectId{
                    100 + rng.next_below(static_cast<std::uint64_t>(n))}});
                break;
              case 4: {
                std::string s(rng.next_below(40), ' ');
                for (auto& c : s) c = static_cast<char>('a' + rng.next_below(26));
                o.fields.emplace_back(std::move(s));
                break;
              }
            }
          }
          break;
        }
        case 1: {
          o.kind = ObjectKind::int_array;
          const auto len = rng.next_below(32);
          for (std::uint64_t j = 0; j < len; ++j) {
            o.ints.push_back(static_cast<std::int64_t>(rng.next_u64()));
          }
          break;
        }
        case 2: {
          o.kind = ObjectKind::char_array;
          o.chars.assign(rng.next_below(64), '\0');
          for (auto& c : o.chars) {
            c = static_cast<char>(rng.next_below(256));
          }
          break;
        }
      }
    }

    // Two-section encoding (all headers, then all payloads), as migration
    // ships it, so the reference cycles resolve on decode.
    ByteWriter w;
    for (const vm::Object& o : graph) write_object_header(w, o);
    for (const vm::Object& o : graph) write_object_payload(w, o, tr);

    ByteReader r(w.data());
    std::vector<vm::Object> decoded(graph.size());
    for (vm::Object& d : decoded) {
      const ObjectHeader h = read_object_header(r);
      d.id = h.id;
      d.cls = h.cls;
      d.kind = h.kind;
      d.fields.assign(h.field_count, Value{});
      d.ints.assign(static_cast<std::size_t>(h.ints_len), 0);
      d.chars.assign(static_cast<std::size_t>(h.chars_len), '\0');
    }
    for (vm::Object& d : decoded) read_object_payload(r, d, tr);
    EXPECT_TRUE(r.exhausted());

    for (std::size_t i = 0; i < graph.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " object " +
                   std::to_string(i));
      EXPECT_EQ(decoded[i].id, graph[i].id);
      EXPECT_EQ(decoded[i].cls, graph[i].cls);
      EXPECT_EQ(decoded[i].kind, graph[i].kind);
      EXPECT_EQ(decoded[i].fields, graph[i].fields);
      EXPECT_EQ(decoded[i].ints, graph[i].ints);
      EXPECT_EQ(decoded[i].chars, graph[i].chars);
    }
  }
}

// --- seeded fuzz: multi-op frames --------------------------------------------

// Builds a random multi-op batch payload ([u8 tag][u32 count][sections...])
// and returns the section contents alongside the framed bytes.
struct FuzzFrame {
  std::vector<std::vector<std::uint8_t>> sections;
  std::vector<std::uint8_t> frame;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
};

FuzzFrame make_fuzz_frame(Rng& rng) {
  FuzzFrame f;
  f.epoch = static_cast<std::uint32_t>(rng.next_below(1 << 20));
  f.seq = rng.next_u64() >> 8;
  const auto count = 1 + rng.next_below(8);
  ByteWriter w;
  w.write_u8(16);  // the batch opcode byte; opaque to the framing layer
  w.write_u32(static_cast<std::uint32_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> op(rng.next_below(100));
    for (auto& b : op) b = static_cast<std::uint8_t>(rng.next_below(256));
    write_op_section(w, op);
    f.sections.push_back(std::move(op));
  }
  f.frame = make_frame(f.epoch, f.seq, w.data());
  return f;
}

TEST(FrameCodecTest, MultiOpFrameFuzzRoundTrip) {
  Rng rng(0xF7A3E);
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FuzzFrame f = make_fuzz_frame(rng);

    const auto view = parse_frame(f.frame);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->epoch, f.epoch);
    EXPECT_EQ(view->seq, f.seq);

    ByteReader r(view->payload);
    EXPECT_EQ(r.read_u8(), 16);
    ASSERT_EQ(r.read_u32(), f.sections.size());
    for (const auto& op : f.sections) {
      const auto got = read_op_section(r);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), op.begin(), op.end()));
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(FrameCodecTest, TruncatedFramesAreRejected) {
  Rng rng(0x7A11);
  const FuzzFrame f = make_fuzz_frame(rng);
  // Every proper prefix — headerless stumps and CRC-orphaned payloads alike
  // — must be rejected, never mis-decoded.
  for (std::size_t len = 0; len < f.frame.size(); ++len) {
    EXPECT_FALSE(
        parse_frame(std::span(f.frame.data(), len)).has_value())
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(FrameCodecTest, BitFlippedFramesAreRejected) {
  Rng rng(0xF11B);
  const FuzzFrame f = make_fuzz_frame(rng);
  ASSERT_TRUE(parse_frame(f.frame).has_value());
  // CRC32 catches every single-bit error, wherever it lands: header fields
  // (including the stored CRC itself), batch count, or op payload.
  for (std::size_t byte = 0; byte < f.frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = f.frame;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(parse_frame(copy).has_value())
          << "flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(FrameCodecTest, TruncatedOpSectionIsRejected) {
  ByteWriter w;
  const std::vector<std::uint8_t> op = {1, 2, 3, 4, 5, 6, 7, 8};
  write_op_section(w, op);
  const auto& bytes = w.data();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(std::span(bytes.data(), len));
    EXPECT_THROW((void)read_op_section(r), std::out_of_range)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(ValueTest, WireSizesMatchSpec) {
  EXPECT_EQ(Value{}.wire_size(), 1u);
  EXPECT_EQ(Value{true}.wire_size(), 1u);
  EXPECT_EQ(Value{1}.wire_size(), 8u);
  EXPECT_EQ(Value{1.0}.wire_size(), 8u);
  EXPECT_EQ(Value{ObjectRef{}}.wire_size(), 8u);
  EXPECT_EQ(Value{"abcd"}.wire_size(), 8u);  // 4 length + 4 content
}

}  // namespace
}  // namespace aide::rpc
