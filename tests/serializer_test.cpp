// Tests for the wire codec: value round-trips through a fake reference
// translator, object header/payload round-trips for all three object shapes,
// and cycle tolerance via the two-section migration encoding.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "rpc/serializer.hpp"

namespace aide::rpc {
namespace {

using vm::ObjectKind;
using vm::ObjectRef;
using vm::Value;

// Identity-style translator that records traffic.
class FakeTranslator : public RefTranslator {
 public:
  WireRef translate_out(ObjectRef ref) override {
    ++outs;
    WireRef wire;
    wire.owner = NodeId{1};
    wire.handle = ExportHandle{ref.id.value() + 1000};
    wire.id = ref.id;
    wire.cls = ClassId{7};
    wire.kind = ObjectKind::plain;
    return wire;
  }
  ObjectRef translate_in(const WireRef& wire) override {
    ++ins;
    EXPECT_EQ(wire.handle.value(), wire.id.value() + 1000);
    return ObjectRef{wire.id};
  }
  int outs = 0, ins = 0;
};

Value roundtrip(const Value& v, FakeTranslator& tr) {
  ByteWriter w;
  write_value(w, v, tr);
  ByteReader r(w.data());
  return read_value(r, tr);
}

TEST(WireValueTest, ScalarRoundTrips) {
  FakeTranslator tr;
  EXPECT_TRUE(roundtrip(Value{}, tr).is_nil());
  EXPECT_EQ(roundtrip(Value{true}, tr).as_bool(), true);
  EXPECT_EQ(roundtrip(Value{false}, tr).as_bool(), false);
  EXPECT_EQ(roundtrip(Value{std::int64_t{-123456789}}, tr).as_int(),
            -123456789);
  EXPECT_DOUBLE_EQ(roundtrip(Value{2.718}, tr).as_real(), 2.718);
  EXPECT_EQ(roundtrip(Value{"wire"}, tr).as_str(), "wire");
}

TEST(WireValueTest, NullRefRoundTripsWithoutTranslation) {
  FakeTranslator tr;
  const Value v = roundtrip(Value{vm::kNullRef}, tr);
  EXPECT_TRUE(v.is_ref());
  EXPECT_TRUE(v.as_ref().is_null());
  EXPECT_EQ(tr.outs, 0);
  EXPECT_EQ(tr.ins, 0);
}

TEST(WireValueTest, RefGoesThroughTranslator) {
  FakeTranslator tr;
  const Value v = roundtrip(Value{ObjectRef{ObjectId{55}}}, tr);
  EXPECT_EQ(v.as_ref().id, ObjectId{55});
  EXPECT_EQ(tr.outs, 1);
  EXPECT_EQ(tr.ins, 1);
}

TEST(WireValueTest, RandomValueFuzzRoundTrip) {
  FakeTranslator tr;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Value v;
    switch (rng.next_below(6)) {
      case 0: v = Value{}; break;
      case 1: v = Value{rng.next_bool(0.5)}; break;
      case 2: v = Value{static_cast<std::int64_t>(rng.next_u64())}; break;
      case 3: v = Value{rng.next_double() * 1e9}; break;
      case 4: v = Value{ObjectRef{ObjectId{rng.next_u64() >> 16}}}; break;
      case 5: {
        std::string s(rng.next_below(64), 'a');
        for (auto& c : s) c = static_cast<char>('a' + rng.next_below(26));
        v = Value{std::move(s)};
        break;
      }
    }
    EXPECT_EQ(roundtrip(v, tr), v);
  }
}

TEST(WireRefTest, FieldsRoundTrip) {
  WireRef ref;
  ref.owner = NodeId{2};
  ref.handle = ExportHandle{88};
  ref.id = ObjectId{0x0001000000000007ULL};
  ref.cls = ClassId{14};
  ref.kind = ObjectKind::char_array;

  ByteWriter w;
  write_wire_ref(w, ref);
  ByteReader r(w.data());
  const WireRef got = read_wire_ref(r);
  EXPECT_EQ(got.owner, ref.owner);
  EXPECT_EQ(got.handle, ref.handle);
  EXPECT_EQ(got.id, ref.id);
  EXPECT_EQ(got.cls, ref.cls);
  EXPECT_EQ(got.kind, ref.kind);
}

vm::Object make_object(ObjectKind kind) {
  vm::Object obj;
  obj.id = ObjectId{42};
  obj.cls = ClassId{3};
  obj.kind = kind;
  switch (kind) {
    case ObjectKind::plain:
      obj.fields = {Value{1}, Value{"text"}, Value{ObjectRef{ObjectId{9}}},
                    Value{}};
      break;
    case ObjectKind::int_array:
      obj.ints = {1, -2, 3000000000LL};
      break;
    case ObjectKind::char_array:
      obj.chars = "payload bytes";
      break;
  }
  return obj;
}

class ObjectCodecTest : public ::testing::TestWithParam<ObjectKind> {};

TEST_P(ObjectCodecTest, HeaderAndPayloadRoundTrip) {
  FakeTranslator tr;
  const vm::Object src = make_object(GetParam());

  ByteWriter w;
  write_object_header(w, src);
  write_object_payload(w, src, tr);

  ByteReader r(w.data());
  const ObjectHeader h = read_object_header(r);
  EXPECT_EQ(h.id, src.id);
  EXPECT_EQ(h.cls, src.cls);
  EXPECT_EQ(h.kind, src.kind);

  vm::Object dst;
  dst.id = h.id;
  dst.cls = h.cls;
  dst.kind = h.kind;
  dst.fields.assign(h.field_count, Value{});
  dst.ints.assign(static_cast<std::size_t>(h.ints_len), 0);
  dst.chars.assign(static_cast<std::size_t>(h.chars_len), '\0');
  read_object_payload(r, dst, tr);

  EXPECT_EQ(dst.fields, src.fields);
  EXPECT_EQ(dst.ints, src.ints);
  EXPECT_EQ(dst.chars, src.chars);
  EXPECT_EQ(dst.size_bytes(), src.size_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ObjectCodecTest,
                         ::testing::Values(ObjectKind::plain,
                                           ObjectKind::int_array,
                                           ObjectKind::char_array));

TEST(ObjectCodecTest, TwoSectionEncodingToleratesCycles) {
  // Objects A and B reference each other; headers first, then payloads.
  FakeTranslator tr;
  vm::Object a = make_object(ObjectKind::plain);
  a.id = ObjectId{1};
  a.fields = {Value{ObjectRef{ObjectId{2}}}};
  vm::Object b = make_object(ObjectKind::plain);
  b.id = ObjectId{2};
  b.fields = {Value{ObjectRef{ObjectId{1}}}};

  ByteWriter w;
  write_object_header(w, a);
  write_object_header(w, b);
  write_object_payload(w, a, tr);
  write_object_payload(w, b, tr);

  ByteReader r(w.data());
  const ObjectHeader ha = read_object_header(r);
  const ObjectHeader hb = read_object_header(r);
  vm::Object da, db;
  da.kind = ha.kind;
  da.fields.assign(ha.field_count, Value{});
  db.kind = hb.kind;
  db.fields.assign(hb.field_count, Value{});
  read_object_payload(r, da, tr);
  read_object_payload(r, db, tr);
  EXPECT_EQ(da.fields[0].as_ref().id, ObjectId{2});
  EXPECT_EQ(db.fields[0].as_ref().id, ObjectId{1});
  EXPECT_TRUE(r.exhausted());
}

TEST(ValueTest, WireSizesMatchSpec) {
  EXPECT_EQ(Value{}.wire_size(), 1u);
  EXPECT_EQ(Value{true}.wire_size(), 1u);
  EXPECT_EQ(Value{1}.wire_size(), 8u);
  EXPECT_EQ(Value{1.0}.wire_size(), 8u);
  EXPECT_EQ(Value{ObjectRef{}}.wire_size(), 8u);
  EXPECT_EQ(Value{"abcd"}.wire_size(), 8u);  // 4 length + 4 content
}

}  // namespace
}  // namespace aide::rpc
