// Tests for aideverify (interprocedural effect inference): the Loc/LocSet
// abstract domain, the per-method fixpoint, every audit rule against an
// injected violation, the pairwise store-conflict matrix, the BatchSafety
// oracle verdicts, hint export, and full-coverage runs over the five paper
// applications.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/effects.hpp"
#include "analysis/report_io.hpp"
#include "apps/apps.hpp"
#include "vm/klass.hpp"

namespace aide::analysis {
namespace {

using vm::ClassBuilder;
using vm::ClassRegistry;
using vm::NativeEffect;
using vm::PinReason;

vm::MethodBody noop() {
  return [](vm::Vm&, vm::ObjectRef, auto) { return vm::Value{}; };
}

bool has_rule(const std::vector<Diagnostic>& ds, Rule rule) {
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::size_t rule_count(const std::vector<Diagnostic>& ds, Rule rule) {
  return static_cast<std::size_t>(
      std::count_if(ds.begin(), ds.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

const MethodFacts& facts_of(const VerifyReport& r, const ClassRegistry& reg,
                            std::string_view cls, std::string_view method) {
  const ClassId c = reg.find(cls);
  const MethodId m = reg.get(c).find_method(method);
  const MethodFacts* f = r.facts(c, m);
  EXPECT_NE(f, nullptr) << cls << "." << method;
  return *f;
}

// --- abstract domain ---------------------------------------------------------

TEST(LocSetTest, AnyMemberSubsumesConcreteMembers) {
  LocSet s;
  s.insert({ClassId{3}, LocKind::field, 0});
  s.insert({ClassId{3}, LocKind::field, 1});
  EXPECT_EQ(s.locs().size(), 2u);

  s.insert({ClassId{3}, LocKind::field, kAnyMember});
  ASSERT_EQ(s.locs().size(), 1u);  // absorbed both rows
  EXPECT_EQ(s.locs()[0].member, kAnyMember);

  s.insert({ClassId{3}, LocKind::field, 7});  // already covered
  EXPECT_EQ(s.locs().size(), 1u);
  EXPECT_TRUE(s.may_touch({ClassId{3}, LocKind::field, 7}));
  EXPECT_FALSE(s.may_touch({ClassId{3}, LocKind::static_slot, 7}));
  EXPECT_FALSE(s.may_touch({ClassId{4}, LocKind::field, 7}));
}

TEST(LocSetTest, TopTouchesEverything) {
  LocSet s;
  s.insert({ClassId{1}, LocKind::field, 0});
  s.set_unknown();
  EXPECT_TRUE(s.unknown());
  EXPECT_TRUE(s.may_touch({ClassId{9}, LocKind::elems, kAnyMember}));
  EXPECT_FALSE(s.empty());
}

TEST(LocTest, OverlapIsClassAndKindScoped) {
  const Loc a{ClassId{2}, LocKind::field, 0};
  const Loc b{ClassId{2}, LocKind::field, 1};
  const Loc any{ClassId{2}, LocKind::field, kAnyMember};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(a));
  EXPECT_TRUE(any.overlaps(a));
  EXPECT_TRUE(b.overlaps(any));
  EXPECT_FALSE(any.overlaps({ClassId{2}, LocKind::static_slot, 0}));
}

// --- fixpoint inference ------------------------------------------------------

// A mutually recursive pair whose effects must still reach a fixpoint, plus
// a caller that inherits the whole cycle's summary transitively.
ClassRegistry recursive_registry() {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Node")
                         .entry()
                         .field("next", "Node")
                         .field("val")
                         .method("even", noop())
                         .reads("Node", "next")
                         .invokes("Node", "odd", 1)
                         .method("odd", noop())
                         .writes("Node", "val")
                         .invokes("Node", "even", 1)
                         .build());
  reg.register_class(ClassBuilder("Walker")
                         .entry()
                         .calls("Node", "even", 1)
                         .method("walk", noop())
                         .invokes("Node", "even", 1)
                         .build());
  return reg;
}

TEST(FixpointTest, RecursiveCycleConverges) {
  const ClassRegistry reg = recursive_registry();
  const VerifyReport r = verify(reg);
  EXPECT_EQ(r.count(Severity::error), 0u) << r.summary();

  const auto& even = facts_of(r, reg, "Node", "even");
  const auto& walk = facts_of(r, reg, "Walker", "walk");
  // The cycle's joined summary: reads next, writes val, fully known.
  EXPECT_FALSE(even.summary.unknown);
  EXPECT_TRUE(even.summary.reads.may_touch(
      {reg.find("Node"), LocKind::field, 0}));
  EXPECT_TRUE(even.summary.writes.may_touch(
      {reg.find("Node"), LocKind::field, 1}));
  // The transitive caller inherits it all.
  EXPECT_EQ(walk.summary.reads, even.summary.reads);
  EXPECT_EQ(walk.summary.writes, even.summary.writes);
  EXPECT_FALSE(walk.summary.pure());
}

TEST(FixpointTest, MissingIrPoisonsTransitiveCallers) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Opaque")
                         .entry()
                         .method("mystery", noop())  // no IR
                         .build());
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Opaque", "mystery", 0)
                         .method("go", noop())
                         .invokes("Opaque", "mystery", 0)
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::missing_ir));
  const auto& go = facts_of(r, reg, "Caller", "go");
  EXPECT_TRUE(go.summary.unknown);
  EXPECT_FALSE(go.summary.pure());
  EXPECT_TRUE(r.matrix.any_unknown_writes);
  EXPECT_LT(r.ir_coverage(), 1.0);
}

TEST(FixpointTest, PureAndReadOnlyClassification) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("C")
                         .entry()
                         .field("x")
                         .method("getX", noop())
                         .reads("C", "x")
                         .method("fresh", noop())
                         .reads("C", "x")
                         .allocates("C")
                         .method("setX", noop())
                         .writes("C", "x")
                         .method("nothing", noop())
                         .no_effects()
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(facts_of(r, reg, "C", "getX").summary.pure());
  EXPECT_FALSE(facts_of(r, reg, "C", "fresh").summary.pure());
  EXPECT_TRUE(facts_of(r, reg, "C", "fresh").summary.read_only());
  EXPECT_FALSE(facts_of(r, reg, "C", "setX").summary.read_only());
  EXPECT_TRUE(facts_of(r, reg, "C", "nothing").summary.pure());
  EXPECT_EQ(r.methods_with_ir, r.methods_total);
}

TEST(FixpointTest, DeviceNativeImplication) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Lcd")
                         .entry()
                         .native_method("draw", noop())
                         .effect(NativeEffect::device_state)
                         .no_effects()
                         .build());
  reg.register_class(ClassBuilder("Ui")
                         .entry()
                         .calls("Lcd", "draw", 0)
                         .method("paint", noop())
                         .invokes("Lcd", "draw", 0)
                         .build());
  const VerifyReport r = verify(reg);
  // device_state implies a device effect and a yield point, transitively.
  EXPECT_TRUE(facts_of(r, reg, "Lcd", "draw").summary.device);
  EXPECT_TRUE(facts_of(r, reg, "Lcd", "draw").summary.yields);
  EXPECT_TRUE(facts_of(r, reg, "Ui", "paint").summary.device);
  EXPECT_FALSE(facts_of(r, reg, "Ui", "paint").summary.pure());
}

// --- audit rules: one injected violation each --------------------------------

TEST(AuditRuleTest, IrUnknownTargetIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("A")
                         .entry()
                         .method("f", noop())
                         .reads("NoSuchClass", "x")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::ir_unknown_target));
  EXPECT_GT(r.count(Severity::error), 0u);
  EXPECT_EQ(exit_code(r), 2);
}

TEST(AuditRuleTest, IrUnknownMemberIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("A")
                         .entry()
                         .field("x")
                         .method("f", noop())
                         .writes("A", "nope")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::ir_unknown_target));
}

TEST(AuditRuleTest, EffectDriftStatelessNativeThatWritesIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Sneaky")
                         .entry()
                         .field("state")
                         .native_method("calc", noop(), /*stateless=*/true,
                                        /*is_static=*/false)
                         .writes("Sneaky", "state")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::effect_drift));
  EXPECT_EQ(exit_code(r), 2);
}

TEST(AuditRuleTest, EffectDriftPureNativeThatWritesIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Sneaky")
                         .entry()
                         .field("state")
                         .native_method("calc", noop())
                         .effect(NativeEffect::pure)
                         .writes("Sneaky", "state")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::effect_drift));
}

TEST(AuditRuleTest, ArityDriftIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Callee")
                         .entry()
                         .method("g", noop())
                         .arity(2)
                         .no_effects()
                         .build());
  reg.register_class(ClassBuilder("Caller")
                         .entry()
                         .calls("Callee", "g", 2)
                         .method("f", noop())
                         .invokes("Callee", "g", 3)  // wrong argc
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::arity_drift));
  EXPECT_EQ(exit_code(r), 2);
}

TEST(AuditRuleTest, FieldTypeDriftIsError) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Wheel").entry().build());
  reg.register_class(ClassBuilder("Engine").entry().build());
  reg.register_class(ClassBuilder("Car")
                         .entry()
                         .field("wheel", "Wheel")
                         .method("swap", noop())
                         .writes("Car", "wheel", "Engine")  // contradicts type
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::field_type_drift));
  EXPECT_EQ(exit_code(r), 2);
}

TEST(AuditRuleTest, RefIntoUntypedFieldIsInfoOnly) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Thing").entry().build());
  reg.register_class(ClassBuilder("Box")
                         .entry()
                         .field("item")  // untyped
                         .method("fill", noop())
                         .writes("Box", "item", "Thing")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::field_type_drift));
  EXPECT_EQ(r.count(Severity::error), 0u);
}

TEST(AuditRuleTest, StaleCallDeclWarnsAtFullCoverage) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Helper")
                         .entry()
                         .method("h", noop())
                         .no_effects()
                         .build());
  reg.register_class(ClassBuilder("User")
                         .entry()
                         .calls("Helper", "h", 0)  // no IR call backs this
                         .method("f", noop())
                         .no_effects()
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::call_decl_drift));
  EXPECT_EQ(exit_code(r), 1);
}

TEST(AuditRuleTest, MissingCallDeclWarnsAtFullCoverage) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Helper")
                         .entry()
                         .method("h", noop())
                         .no_effects()
                         .build());
  reg.register_class(ClassBuilder("User")
                         .entry()  // declares no call site at all
                         .method("f", noop())
                         .invokes("Helper", "h", 0)
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::call_decl_drift));
}

TEST(AuditRuleTest, PinUnjustifiedIsInfo) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Label")
                         .entry()
                         .pin(PinReason::ui)
                         .field("text")
                         .method("get", noop())
                         .reads("Label", "text")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::pin_unjustified));
  EXPECT_EQ(r.count(Severity::error), 0u);
}

TEST(AuditRuleTest, StatelessCandidateIsInfo) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Mathy")
                         .entry()
                         .native_method("hypot", noop())
                         .effect(NativeEffect::pure)
                         .no_effects()
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(has_rule(r.diagnostics, Rule::stateless_candidate));
  EXPECT_EQ(r.count(Severity::error), 0u);
}

// --- conflict matrix ---------------------------------------------------------

TEST(ConflictMatrixTest, DisjointStoresCommuteAliasedOnesDoNot) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("S")
                         .entry()
                         .field("a")
                         .field("b")
                         .method("setA", noop())
                         .writes("S", "a")
                         .method("setB", noop())
                         .writes("S", "b")
                         .build());
  const VerifyReport r = verify(reg);
  ASSERT_FALSE(r.matrix.any_unknown_writes);
  ASSERT_EQ(r.matrix.store_locs.size(), 2u);
  EXPECT_TRUE(r.matrix.conflicts.empty());
  EXPECT_TRUE(
      r.matrix.commutes(r.matrix.store_locs[0], r.matrix.store_locs[1]));
  EXPECT_FALSE(
      r.matrix.commutes(r.matrix.store_locs[0], r.matrix.store_locs[0]));
}

TEST(ConflictMatrixTest, AnyMemberRowConflictsWithWholeClass) {
  ClassRegistry reg;
  // writes_elems on the same array class from two methods: one store loc,
  // self-conflicting (same Loc overlaps itself), so no i<j pair — but a
  // field row and its kAnyMember row must conflict.
  reg.register_class(ClassBuilder("T")
                         .entry()
                         .field("a")
                         .field("b")
                         .method("setA", noop())
                         .writes("T", "a")
                         .method("wipe", noop())
                         .writes("T", "a")
                         .writes("T", "b")
                         .build());
  const VerifyReport r = verify(reg);
  ASSERT_FALSE(r.matrix.any_unknown_writes);
  // Distinct locs: T.a and T.b — disjoint members commute.
  ASSERT_EQ(r.matrix.store_locs.size(), 2u);
  EXPECT_TRUE(r.matrix.conflicts.empty());

  const Loc any{reg.find("T"), LocKind::field, kAnyMember};
  EXPECT_FALSE(r.matrix.commutes(any, r.matrix.store_locs[0]));
}

TEST(ConflictMatrixTest, UnknownWritesPoisonEverything) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("U")
                         .entry()
                         .field("x")
                         .method("noir", noop())  // no IR: ⊤ writes
                         .method("setX", noop())
                         .writes("U", "x")
                         .build());
  const VerifyReport r = verify(reg);
  EXPECT_TRUE(r.matrix.any_unknown_writes);
  const Loc a{reg.find("U"), LocKind::field, 0};
  const Loc b{ClassId{99}, LocKind::field, 3};
  EXPECT_FALSE(r.matrix.commutes(a, b));  // nothing commutes under ⊤
}

// --- BatchSafety oracle ------------------------------------------------------

ClassRegistry oracle_registry() {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("P")
                         .entry()
                         .field("a")
                         .field("b")
                         .method("setA", noop())
                         .writes("P", "a")
                         .method("getA", noop())
                         .reads("P", "a")
                         .build());
  return reg;
}

TEST(BatchSafetyTest, FullCoverageVerdicts) {
  const ClassRegistry reg = oracle_registry();
  const VerifyReport r = verify(reg);
  ASSERT_EQ(r.methods_with_ir, r.methods_total);
  const BatchSafety oracle(r);
  const ClassId p = reg.find("P");
  const MethodId set_a = reg.get(p).find_method("setA");
  const MethodId get_a = reg.get(p).find_method("getA");

  EXPECT_TRUE(oracle.store_deferrable(p, StoreKind::field, 0));
  EXPECT_TRUE(oracle.stores_commute(p, StoreKind::field, 0,
                                    p, StoreKind::field, 1));
  EXPECT_FALSE(oracle.stores_commute(p, StoreKind::field, 0,
                                     p, StoreKind::field, 0));
  EXPECT_FALSE(oracle.stores_commute(p, StoreKind::field, kAnyMember,
                                     p, StoreKind::field, 1));
  // elems and chars collapse to the same kAnyMember row.
  EXPECT_FALSE(oracle.stores_commute(p, StoreKind::elems, kAnyMember,
                                     p, StoreKind::chars, kAnyMember));
  EXPECT_TRUE(oracle.invoke_accepts_riders(p, set_a));
  EXPECT_TRUE(oracle.replay_safe(p, get_a));
  EXPECT_FALSE(oracle.replay_safe(p, set_a));
  // Out-of-range ids answer conservatively.
  EXPECT_FALSE(oracle.invoke_accepts_riders(ClassId{1000}, MethodId{0}));
  EXPECT_FALSE(oracle.replay_safe(ClassId{1000}, MethodId{0}));
}

TEST(BatchSafetyTest, UnknownWritesRefuseAllDeferral) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Q")
                         .entry()
                         .field("x")
                         .method("dark", noop())  // no IR
                         .build());
  const VerifyReport r = verify(reg);
  const BatchSafety oracle(r);
  const ClassId q = reg.find("Q");
  EXPECT_FALSE(oracle.store_deferrable(q, StoreKind::field, 0));
  EXPECT_FALSE(oracle.stores_commute(q, StoreKind::field, 0,
                                     q, StoreKind::field, 1));
  EXPECT_FALSE(
      oracle.invoke_accepts_riders(q, reg.get(q).find_method("dark")));
}

// --- hints export ------------------------------------------------------------

TEST(HintsExportTest, ReplaySafeAndPrefetchEligible) {
  ClassRegistry reg;
  // Pure getter → replay_safe. Encapsulated writes → prefetch_eligible.
  reg.register_class(ClassBuilder("Enc")
                         .entry()
                         .field("v")
                         .method("get", noop())
                         .reads("Enc", "v")
                         .method("set", noop())
                         .writes("Enc", "v")
                         .build());
  // Leak writes Enc's field from outside: Enc loses eligibility... on a
  // second registry, to keep this one clean.
  const VerifyReport clean = verify(reg);
  const ClassId enc = reg.find("Enc");
  const MethodId get = reg.get(enc).find_method("get");
  EXPECT_TRUE(std::binary_search(clean.hints.replay_safe.begin(),
                                 clean.hints.replay_safe.end(),
                                 std::make_pair(enc, get)));
  EXPECT_TRUE(std::binary_search(clean.hints.prefetch_eligible.begin(),
                                 clean.hints.prefetch_eligible.end(), enc));

  reg.register_class(ClassBuilder("Leak")
                         .entry()
                         .calls("Enc", "get", 0)
                         .method("poke", noop())
                         .writes("Enc", "v")
                         .build());
  const VerifyReport leaked = verify(reg);
  EXPECT_FALSE(std::binary_search(leaked.hints.prefetch_eligible.begin(),
                                  leaked.hints.prefetch_eligible.end(), enc));
}

// --- the five applications ---------------------------------------------------

class AppsVerifyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AppsVerifyTest, FullCoverageNoDrift) {
  ClassRegistry reg;
  apps::app_by_name(GetParam()).register_classes(reg);
  const VerifyReport r = verify(reg);
  // 100% of declared metadata audited: every method carries effect IR...
  EXPECT_EQ(r.methods_with_ir, r.methods_total) << r.summary();
  EXPECT_EQ(r.ir_coverage(), 1.0);
  EXPECT_GT(r.methods_total, 0u);
  // ...and no declaration drifts from the inferred facts.
  EXPECT_EQ(r.count(Severity::error), 0u) << r.summary();
  EXPECT_EQ(r.count(Severity::warning), 0u) << r.summary();
  EXPECT_EQ(rule_count(r.diagnostics, Rule::missing_ir), 0u);
  EXPECT_EQ(exit_code(r), 0);
  // The conflict matrix is fully known — deferred stores are provable.
  EXPECT_FALSE(r.matrix.any_unknown_writes);
  EXPECT_FALSE(r.matrix.store_locs.empty());
  // Inference found real purity to export.
  EXPECT_FALSE(r.hints.replay_safe.empty());
}

TEST_P(AppsVerifyTest, Deterministic) {
  ClassRegistry reg;
  apps::app_by_name(GetParam()).register_classes(reg);
  const VerifyReport a = verify(reg);
  const VerifyReport b = verify(reg);
  std::ostringstream ja;
  std::ostringstream jb;
  render_json(ja, reg, a);
  render_json(jb, reg, b);
  EXPECT_EQ(ja.str(), jb.str());
}

INSTANTIATE_TEST_SUITE_P(Apps, AppsVerifyTest,
                         ::testing::Values("JavaNote", "Dia", "Biomer",
                                           "Voxel", "Tracer"));

// Regression tests for the declared-metadata drift aideverify caught in the
// apps: removing the (now present) call declarations must re-flag the drift.
TEST(AppsDriftRegressionTest, DiaToolBarDeclaresListAdd) {
  ClassRegistry reg;
  apps::register_dia(reg);
  const ClassId toolbar = reg.find("Dia.ToolBar");
  const auto& decls = reg.get(toolbar).calls;
  EXPECT_TRUE(std::any_of(decls.begin(), decls.end(), [](const auto& c) {
    return c.target_class == "ArrayList" && c.method == "add" && c.argc == 1;
  }));
}

TEST(AppsDriftRegressionTest, JavanoteDocumentDeclaresReadAll) {
  ClassRegistry reg;
  apps::register_javanote(reg);
  const auto& decls = reg.get(reg.find("JNote.Document")).calls;
  EXPECT_TRUE(std::any_of(decls.begin(), decls.end(), [](const auto& c) {
    return c.target_class == "JNote.TextSegment" && c.method == "readAll";
  }));
}

TEST(AppsDriftRegressionTest, JavanoteEditorCoreDeclaresFullCallSurface) {
  ClassRegistry reg;
  apps::register_javanote(reg);
  const auto& decls = reg.get(reg.find("JNote.EditorCore")).calls;
  const auto declares = [&](std::string_view cls, std::string_view m) {
    return std::any_of(decls.begin(), decls.end(), [&](const auto& c) {
      return c.target_class == cls && c.method == m;
    });
  };
  EXPECT_TRUE(declares("JNote.Document", "initDoc"));
  EXPECT_TRUE(declares("JNote.Document", "addSegment"));
  EXPECT_TRUE(declares("JNote.Document", "segmentCount"));
  EXPECT_TRUE(declares("JNote.Document", "checksumDoc"));
  EXPECT_TRUE(declares("JNote.TextSegment", "initSeg"));
  EXPECT_TRUE(declares("JNote.TextSegment", "snapshot"));
  EXPECT_TRUE(declares("JNote.UndoStack", "depth"));
  EXPECT_TRUE(declares("JNote.RenderCache", "lineCountC"));
}

}  // namespace
}  // namespace aide::analysis
