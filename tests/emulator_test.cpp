// Tests for the trace-driven emulator: time stretching for remote
// interactions, CPU re-scaling under placement, trigger modes, the native and
// array enhancements, repeated repartitioning, and the emulated heap model.
#include <gtest/gtest.h>

#include "emul/emulator.hpp"
#include "tests/test_util.hpp"

namespace aide::emul {
namespace {

using aide::test::make_test_registry;

// Builds synthetic traces against the test registry. Class roles:
//   Device (pinned, native), Counter (compute), Pair (data).
class TraceBuilder {
 public:
  explicit TraceBuilder(const vm::ClassRegistry& reg)
      : device_(reg.find("Device")),
        counter_(reg.find("Counter")),
        pair_(reg.find("Pair")),
        int_array_(reg.int_array_class()) {}

  TraceBuilder& alloc(ObjectId obj, ClassId cls, std::int64_t bytes) {
    TraceEvent e;
    e.type = TraceEventType::alloc;
    e.t = now_;
    e.obj_a = obj;
    e.cls_a = cls;
    e.bytes = bytes;
    trace_.events.push_back(e);
    return *this;
  }

  TraceBuilder& free_obj(ObjectId obj, ClassId cls, std::int64_t bytes) {
    TraceEvent e;
    e.type = TraceEventType::free_obj;
    e.t = now_;
    e.obj_a = obj;
    e.cls_a = cls;
    e.bytes = bytes;
    trace_.events.push_back(e);
    return *this;
  }

  TraceBuilder& invoke(ClassId from, ClassId to, std::uint64_t bytes,
                       std::uint8_t flags = 0,
                       ObjectId to_obj = ObjectId::invalid()) {
    TraceEvent e;
    e.type = TraceEventType::invoke;
    e.t = now_;
    e.cls_a = from;
    e.cls_b = to;
    e.obj_b = to_obj;
    e.bytes = static_cast<std::int64_t>(bytes);
    e.flags = flags;
    trace_.events.push_back(e);
    return *this;
  }

  TraceBuilder& self_time(ClassId cls, SimDuration d,
                          ObjectId obj = ObjectId::invalid()) {
    now_ += d;
    TraceEvent e;
    e.type = TraceEventType::method_exit;
    e.t = now_;
    e.cls_a = cls;
    e.obj_a = obj;
    e.bytes = d;
    trace_.events.push_back(e);
    return *this;
  }

  TraceBuilder& gc() {
    TraceEvent e;
    e.type = TraceEventType::gc;
    e.t = now_;
    trace_.events.push_back(e);
    return *this;
  }

  TraceBuilder& raw(TraceEvent e) {
    e.t = now_;
    trace_.events.push_back(e);
    return *this;
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }

  ClassId device_, counter_, pair_, int_array_;

 private:
  Trace trace_;
  SimTime now_ = 0;
};

EmulatorConfig base_config() {
  EmulatorConfig cfg;
  cfg.heap_capacity = 1 << 20;
  cfg.trigger.low_free_threshold = 0.10;
  cfg.trigger.consecutive_reports = 2;
  cfg.min_free_fraction = 0.20;
  cfg.charge_migration = true;
  return cfg;
}

// A memory-pressure trace: Device draws via Pair data; Pair's memory exceeds
// 90% of the emulated heap, so GC reports trigger partitioning.
Trace memory_trace(const std::shared_ptr<vm::ClassRegistry>& reg) {
  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  // History: device interacts with counter (hot), counter with pair (cold).
  for (int i = 0; i < 50; ++i) {
    b.invoke(b.device_, b.counter_, 64, kFlagNative);
    b.self_time(b.counter_, sim_ms(10));
  }
  for (int i = 0; i < 5; ++i) {
    b.invoke(b.counter_, b.pair_, 32);
  }
  // Pair grows to 960 KB of the 1 MB heap; trailing GC cycles report the
  // sustained low-memory condition (the trigger needs consecutive reports).
  for (int i = 0; i < 6; ++i) {
    b.alloc(ObjectId{100 + static_cast<std::uint64_t>(i)}, b.pair_,
            160 * 1024);
    b.gc();
  }
  b.gc();
  b.gc();
  // Post-offload activity: more counter/pair interactions.
  for (int i = 0; i < 40; ++i) {
    b.invoke(b.counter_, b.pair_, 32);
    b.self_time(b.counter_, sim_ms(5));
  }
  return b.trace();
}

TEST(EmulatorTest, NoOffloadMeansNoStretch) {
  auto reg = make_test_registry();
  auto cfg = base_config();
  cfg.max_offloads = 0;
  Emulator emu(reg, cfg);
  const auto result = emu.run(memory_trace(reg));
  EXPECT_FALSE(result.offloaded());
  EXPECT_EQ(result.emulated_time, result.base_time);
  EXPECT_EQ(result.remote_invocations, 0u);
  EXPECT_DOUBLE_EQ(result.overhead_fraction(), 0.0);
}

TEST(EmulatorTest, PeakClientLiveTracksHeap) {
  auto reg = make_test_registry();
  auto cfg = base_config();
  cfg.max_offloads = 0;
  Emulator emu(reg, cfg);
  const auto result = emu.run(memory_trace(reg));
  // 6 * 160 KB of Pair + device: near but under 1 MB.
  EXPECT_GT(result.peak_client_live, 900 * 1024);
  EXPECT_LE(result.peak_client_live, 1 << 20);
}

TEST(EmulatorTest, MemoryTriggerOffloadsAndStretches) {
  auto reg = make_test_registry();
  Emulator emu(reg, base_config());
  const auto result = emu.run(memory_trace(reg));
  ASSERT_TRUE(result.offloaded());
  // Pair was the big, loosely-coupled component.
  bool pair_offloaded = false;
  for (const auto& comp : result.offloads[0].decision.selected.offload) {
    if (comp.cls == reg->find("Pair")) pair_offloaded = true;
    EXPECT_NE(comp.cls, reg->find("Device"));  // pinned
  }
  EXPECT_TRUE(pair_offloaded);
  // Remote interactions and migration stretch the time.
  EXPECT_GT(result.remote_accesses + result.remote_invocations, 0u);
  EXPECT_GT(result.emulated_time, result.base_time);
  EXPECT_GT(result.migration_time, 0);
  EXPECT_GT(result.overhead_fraction(), 0.0);
}

TEST(EmulatorTest, OffloadReducesPeakClientLive) {
  auto reg = make_test_registry();
  Emulator with(reg, base_config());
  const auto offloaded = with.run(memory_trace(reg));
  auto cfg = base_config();
  cfg.max_offloads = 0;
  Emulator without(reg, cfg);
  const auto plain = without.run(memory_trace(reg));
  ASSERT_TRUE(offloaded.offloaded());
  EXPECT_LT(offloaded.offloads[0].decision.selected.offload_mem_bytes + 1,
            plain.peak_client_live + 1);
  // The peak may be reached just before the trigger fires, so the offloaded
  // run's peak can equal (never exceed) the plain run's.
  EXPECT_LE(offloaded.peak_client_live, plain.peak_client_live);
}

TEST(EmulatorTest, SurrogateSpeedupShrinksOffloadedCompute) {
  // CPU trace: pinned device + heavy compute in Counter, loose coupling.
  auto reg = make_test_registry();
  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  b.alloc(ObjectId{2}, b.counter_, 1024);
  b.invoke(b.device_, b.counter_, 16, kFlagNative);
  for (int i = 0; i < 100; ++i) {
    b.self_time(b.counter_, sim_sec(1));
  }

  EmulatorConfig cfg = base_config();
  cfg.trigger_mode = TriggerMode::trace_fraction;
  cfg.eval_at_fraction = 0.10;
  cfg.objective = partition::Objective::speed_up;
  cfg.surrogate_speedup = 3.5;
  Emulator emu(reg, cfg);
  const auto result = emu.run(b.trace());
  ASSERT_TRUE(result.offloaded());
  // ~100s of compute shrinks towards 100/3.5 plus small overheads; some
  // compute happened before the evaluation point.
  EXPECT_LT(result.emulated_time, result.base_time);
  EXPECT_LT(result.emulated_time, sim_sec(45));
  EXPECT_GT(result.speedup(), 2.0);
}

TEST(EmulatorTest, SpeedupObjectiveDeclinesWhenCoupled) {
  // Tight coupling: every compute step talks to the pinned device.
  auto reg = make_test_registry();
  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  // 1 ms of compute per pinned-native round trip: the 2.4 ms RTT eats the
  // 3.5x speedup on every iteration.
  for (int i = 0; i < 200; ++i) {
    b.self_time(b.counter_, sim_ms(1));
    b.invoke(b.counter_, b.device_, 256, kFlagNative);
  }

  EmulatorConfig cfg = base_config();
  cfg.trigger_mode = TriggerMode::trace_fraction;
  cfg.objective = partition::Objective::speed_up;
  cfg.surrogate_speedup = 3.5;
  Emulator emu(reg, cfg);
  const auto result = emu.run(b.trace());
  EXPECT_FALSE(result.offloaded());
  ASSERT_EQ(result.declined.size(), 1u);
  EXPECT_EQ(result.emulated_time, result.base_time);
}

TEST(EmulatorTest, NativeCallsRouteToClientWithoutEnhancement) {
  // Counter offloaded; its stateless Math-style native calls still route to
  // the client, costing a round trip each.
  auto reg = make_test_registry();
  const ClassId util = reg->find("Util");
  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  b.alloc(ObjectId{2}, b.counter_, 980 * 1024);
  b.invoke(b.device_, b.counter_, 16, kFlagNative);
  b.self_time(b.counter_, sim_sec(1));
  for (int i = 0; i < 3; ++i) b.gc();
  const int kNativeCalls = 50;
  for (int i = 0; i < kNativeCalls; ++i) {
    b.invoke(b.counter_, util, 16, kFlagNative | kFlagStatic | kFlagStateless);
  }

  EmulatorConfig cfg = base_config();
  cfg.stateless_natives_local = false;
  Emulator emu(reg, cfg);
  const auto result = emu.run(b.trace());
  ASSERT_TRUE(result.offloaded());
  EXPECT_EQ(result.remote_native_invocations,
            static_cast<std::uint64_t>(kNativeCalls));

  // With the "Native" enhancement the same trace has no remote native calls.
  cfg.stateless_natives_local = true;
  Emulator enhanced(reg, cfg);
  const auto better = enhanced.run(b.trace());
  ASSERT_TRUE(better.offloaded());
  EXPECT_EQ(better.remote_native_invocations, 0u);
  EXPECT_LT(better.emulated_time, result.emulated_time);
}

TEST(EmulatorTest, ArrayEnhancementSplitsArrayPlacement) {
  // Two large int arrays: one referenced by the pinned device, one by the
  // offloaded compute class. With class granularity they travel together;
  // with the Array enhancement they split.
  auto reg = make_test_registry();
  TraceBuilder b(*reg);
  const ObjectId client_arr{500}, compute_arr{501};
  b.alloc(ObjectId{1}, b.device_, 64);
  b.alloc(ObjectId{2}, b.counter_, 780 * 1024);
  b.alloc(client_arr, b.int_array_, 100 * 1024);
  b.alloc(compute_arr, b.int_array_, 100 * 1024);
  b.invoke(b.device_, b.counter_, 16, kFlagNative);
  b.self_time(b.counter_, sim_sec(1));
  // Device touches its array a lot; counter touches the other a lot.
  for (int i = 0; i < 200; ++i) {
    b.invoke(b.device_, b.int_array_, 8, 0, client_arr);
    b.invoke(b.counter_, b.int_array_, 8, 0, compute_arr);
  }
  for (int i = 0; i < 3; ++i) b.gc();
  // Post-offload accesses in the same pattern.
  for (int i = 0; i < 100; ++i) {
    b.invoke(b.device_, b.int_array_, 8, 0, client_arr);
    b.invoke(b.counter_, b.int_array_, 8, 0, compute_arr);
  }

  EmulatorConfig cfg = base_config();
  cfg.arrays_as_objects = false;
  Emulator coarse(reg, cfg);
  const auto coarse_result = coarse.run(b.trace());

  cfg.arrays_as_objects = true;
  cfg.min_array_bytes = 4096;
  Emulator fine(reg, cfg);
  const auto fine_result = fine.run(b.trace());

  ASSERT_TRUE(coarse_result.offloaded());
  ASSERT_TRUE(fine_result.offloaded());
  // Object granularity lets each array sit with its user: fewer remote ops.
  EXPECT_LT(fine_result.remote_invocations, coarse_result.remote_invocations);
  EXPECT_LT(fine_result.emulated_time, coarse_result.emulated_time);
}

TEST(EmulatorTest, StaticAccessesRouteToClient) {
  auto reg = make_test_registry();
  const ClassId calc = reg->find("Calc");
  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  b.alloc(ObjectId{2}, b.counter_, 980 * 1024);
  b.invoke(b.device_, b.counter_, 16, kFlagNative);
  b.self_time(b.counter_, sim_sec(1));
  for (int i = 0; i < 3; ++i) b.gc();
  // Offloaded counter reads static data 30 times.
  for (int i = 0; i < 30; ++i) {
    TraceEvent e;
    e.type = TraceEventType::access;
    e.cls_a = b.counter_;
    e.cls_b = calc;
    e.flags = kFlagStatic;
    e.bytes = 8;
    b.raw(e);
  }

  Emulator emu(reg, base_config());
  const auto result = emu.run(b.trace());
  ASSERT_TRUE(result.offloaded());
  EXPECT_EQ(result.remote_accesses, 30u);
}

TEST(EmulatorTest, RepeatedRepartitioningAllowed) {
  auto reg = make_test_registry();
  auto cfg = base_config();
  cfg.max_offloads = 3;
  cfg.trigger.consecutive_reports = 1;
  Emulator emu(reg, cfg);

  TraceBuilder b(*reg);
  b.alloc(ObjectId{1}, b.device_, 64);
  b.invoke(b.device_, b.counter_, 16, kFlagNative);
  for (int wave = 0; wave < 3; ++wave) {
    b.alloc(ObjectId{100 + static_cast<std::uint64_t>(wave)}, b.pair_,
            950 * 1024);
    b.gc();
    b.free_obj(ObjectId{100 + static_cast<std::uint64_t>(wave)}, b.pair_,
               950 * 1024);
    b.gc();
  }
  const auto result = emu.run(b.trace());
  EXPECT_GE(result.offloads.size() + result.declined.size(), 1u);
  EXPECT_LE(result.offloads.size(), 3u);
}

TEST(EmulatorTest, DeterministicAcrossRuns) {
  auto reg = make_test_registry();
  const Trace t = memory_trace(reg);
  Emulator a(reg, base_config());
  Emulator b(reg, base_config());
  const auto ra = a.run(t);
  const auto rb = b.run(t);
  EXPECT_EQ(ra.emulated_time, rb.emulated_time);
  EXPECT_EQ(ra.remote_invocations, rb.remote_invocations);
  EXPECT_EQ(ra.offloads.size(), rb.offloads.size());
}

}  // namespace
}  // namespace aide::emul
