// Tests for the common kernel: strong ids, deterministic RNG, the virtual
// clock, and the byte reader/writer used by the wire codec.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/simclock.hpp"

namespace aide {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  ClassId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ClassId::invalid());
}

TEST(StrongIdTest, ValueRoundTrip) {
  ObjectId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(ClassId{1}, ClassId{2});
  EXPECT_EQ(ClassId{7}, ClassId{7});
  EXPECT_NE(ClassId{7}, ClassId{8});
}

TEST(StrongIdTest, DistinctTypesHashIndependently) {
  std::unordered_set<ClassId> classes{ClassId{1}, ClassId{2}, ClassId{1}};
  EXPECT_EQ(classes.size(), 2u);
  std::unordered_set<ObjectId> objects{ObjectId{1}};
  EXPECT_EQ(objects.size(), 1u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(sim_ms(5));
  EXPECT_EQ(clock.now(), sim_ms(5));
}

TEST(SimClockTest, NegativeAdvanceIgnored) {
  SimClock clock;
  clock.advance(sim_us(10));
  clock.advance(-sim_us(100));
  EXPECT_EQ(clock.now(), sim_us(10));
}

TEST(SimClockTest, UnitConversions) {
  EXPECT_EQ(sim_us(1), 1000);
  EXPECT_EQ(sim_ms(1), 1'000'000);
  EXPECT_EQ(sim_sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(sim_to_seconds(sim_sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(sim_to_ms(sim_ms(7)), 7.0);
}

TEST(BytesTest, PodRoundTrip) {
  ByteWriter w;
  w.write_u8(7);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_f64(3.25);

  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string(10000, 'x'));

  ByteReader r(w.data());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string().size(), 10000u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, TruncatedReadThrows) {
  ByteWriter w;
  w.write_u32(5);
  ByteReader r(w.data());
  EXPECT_EQ(r.read_u32(), 5u);
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(BytesTest, TruncatedStringThrows) {
  ByteWriter w;
  w.write_u32(100);  // claims 100 bytes that are not there
  ByteReader r(w.data());
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(BytesTest, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u32(1);
  const auto buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 4u);
}

TEST(ErrorTest, VmErrorCarriesCode) {
  const VmError e(VmErrorCode::out_of_memory, "heap full");
  EXPECT_EQ(e.code(), VmErrorCode::out_of_memory);
  EXPECT_NE(std::string(e.what()).find("out_of_memory"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("heap full"), std::string::npos);
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (const auto code :
       {VmErrorCode::out_of_memory, VmErrorCode::unknown_class,
        VmErrorCode::unknown_method, VmErrorCode::unknown_field,
        VmErrorCode::bad_array_index, VmErrorCode::null_reference,
        VmErrorCode::type_mismatch, VmErrorCode::native_not_registered,
        VmErrorCode::stack_overflow}) {
    EXPECT_NE(to_string(code), "unknown");
  }
}

TEST(SplitMixTest, Deterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace aide
