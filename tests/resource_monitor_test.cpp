// Tests for the resource monitor's trigger detection (paper 5.1: "
// partitioning is triggered when three successive garbage collection cycles
// indicate that additional memory cannot be freed or that less than 5% of
// memory is available").
#include <gtest/gtest.h>

#include "monitor/resource_monitor.hpp"

namespace aide::monitor {
namespace {

vm::GcReport report(std::int64_t capacity, std::int64_t used,
                    std::int64_t freed) {
  vm::GcReport r;
  r.capacity = capacity;
  r.used_after = used;
  r.used_before = used + freed;
  r.freed = freed;
  return r;
}

constexpr std::int64_t kCap = 1000;

TEST(ResourceMonitorTest, NoTriggerWhenMemoryAmple) {
  ResourceMonitor rm(NodeId{1}, TriggerPolicy{});
  for (int i = 0; i < 10; ++i) {
    rm.feed(report(kCap, 500, 100));
  }
  EXPECT_FALSE(rm.triggered());
}

TEST(ResourceMonitorTest, TriggersAfterConsecutiveLowReports) {
  TriggerPolicy p;
  p.low_free_threshold = 0.05;
  p.consecutive_reports = 3;
  ResourceMonitor rm(NodeId{1}, p);

  rm.feed(report(kCap, 970, 5));
  EXPECT_FALSE(rm.triggered());
  rm.feed(report(kCap, 980, 5));
  EXPECT_FALSE(rm.triggered());
  rm.feed(report(kCap, 990, 5));
  EXPECT_TRUE(rm.triggered());
}

TEST(ResourceMonitorTest, HighFreeReportResetsStreak) {
  TriggerPolicy p;
  p.low_free_threshold = 0.05;
  p.consecutive_reports = 3;
  ResourceMonitor rm(NodeId{1}, p);

  rm.feed(report(kCap, 970, 5));
  rm.feed(report(kCap, 980, 5));
  rm.feed(report(kCap, 300, 600));  // plenty freed
  rm.feed(report(kCap, 970, 5));
  rm.feed(report(kCap, 980, 5));
  EXPECT_FALSE(rm.triggered());
  rm.feed(report(kCap, 990, 5));
  EXPECT_TRUE(rm.triggered());
}

TEST(ResourceMonitorTest, NoProgressCountsAsLowWhenNearlyFull) {
  TriggerPolicy p;
  p.low_free_threshold = 0.05;
  p.consecutive_reports = 2;
  p.no_progress_fraction = 0.01;
  p.no_progress_min_used = 0.90;
  ResourceMonitor rm(NodeId{1}, p);

  // 92% used, GC frees almost nothing: "additional memory cannot be freed".
  rm.feed(report(kCap, 920, 2));
  rm.feed(report(kCap, 925, 2));
  EXPECT_TRUE(rm.triggered());
}

TEST(ResourceMonitorTest, NoProgressIgnoredWhenHeapMostlyEmpty) {
  TriggerPolicy p;
  p.consecutive_reports = 1;
  ResourceMonitor rm(NodeId{1}, p);
  rm.feed(report(kCap, 100, 0));  // nothing freed, but nothing needed
  EXPECT_FALSE(rm.triggered());
}

TEST(ResourceMonitorTest, ToleranceOfOneTriggersImmediately) {
  TriggerPolicy p;
  p.low_free_threshold = 0.50;
  p.consecutive_reports = 1;
  ResourceMonitor rm(NodeId{1}, p);
  rm.feed(report(kCap, 600, 10));
  EXPECT_TRUE(rm.triggered());
}

TEST(ResourceMonitorTest, ConsumeTriggerLatches) {
  TriggerPolicy p;
  p.consecutive_reports = 1;
  p.low_free_threshold = 0.5;
  ResourceMonitor rm(NodeId{1}, p);
  rm.feed(report(kCap, 900, 1));
  EXPECT_TRUE(rm.consume_trigger());
  EXPECT_FALSE(rm.triggered());
  EXPECT_FALSE(rm.consume_trigger());
}

TEST(ResourceMonitorTest, IgnoresOtherVms) {
  TriggerPolicy p;
  p.consecutive_reports = 1;
  p.low_free_threshold = 0.5;
  ResourceMonitor rm(NodeId{1}, p);
  rm.on_gc(NodeId{2}, report(kCap, 999, 0));
  EXPECT_FALSE(rm.triggered());
  EXPECT_EQ(rm.reports_seen(), 0u);
}

TEST(ResourceMonitorTest, ResetClearsState) {
  TriggerPolicy p;
  p.consecutive_reports = 2;
  p.low_free_threshold = 0.5;
  ResourceMonitor rm(NodeId{1}, p);
  rm.feed(report(kCap, 900, 1));
  rm.reset();
  rm.feed(report(kCap, 900, 1));
  EXPECT_FALSE(rm.triggered());
  EXPECT_EQ(rm.consecutive_low(), 1);
}

TEST(ResourceMonitorTest, PeerFailureSuppressesTriggers) {
  TriggerPolicy p;
  p.consecutive_reports = 1;
  p.low_free_threshold = 0.5;
  ResourceMonitor rm(NodeId{1}, p);
  rm.feed(report(kCap, 900, 1));
  ASSERT_TRUE(rm.triggered());

  // The surrogate is gone: the pending trigger is cancelled and no amount
  // of memory pressure may raise another.
  rm.note_peer_failure();
  EXPECT_TRUE(rm.suppressed());
  EXPECT_FALSE(rm.triggered());
  for (int i = 0; i < 5; ++i) rm.feed(report(kCap, 990, 0));
  EXPECT_FALSE(rm.triggered());
  EXPECT_EQ(rm.consecutive_low(), 0);

  // reset() (a fresh platform pairing) lifts the suppression.
  rm.reset();
  EXPECT_FALSE(rm.suppressed());
  rm.feed(report(kCap, 900, 1));
  EXPECT_TRUE(rm.triggered());
}

TEST(ResourceMonitorTest, LastReportExposed) {
  ResourceMonitor rm(NodeId{1}, TriggerPolicy{});
  rm.feed(report(kCap, 321, 7));
  EXPECT_EQ(rm.last_report().used_after, 321);
  EXPECT_EQ(rm.last_report().freed, 7);
  EXPECT_EQ(rm.reports_seen(), 1u);
}

// Parameterized sweep over thresholds: the trigger must fire exactly when
// the free fraction is below the threshold for `consecutive` reports.
class TriggerSweepTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(TriggerSweepTest, FiresAtConfiguredPoint) {
  const auto [threshold, consecutive] = GetParam();
  TriggerPolicy p;
  p.low_free_threshold = threshold;
  p.consecutive_reports = consecutive;
  p.no_progress_fraction = 0.0;  // isolate the threshold condition
  ResourceMonitor rm(NodeId{1}, p);

  const auto used = static_cast<std::int64_t>(
      static_cast<double>(kCap) * (1.0 - threshold / 2));
  for (int i = 0; i < consecutive - 1; ++i) {
    rm.feed(report(kCap, used, 50));
    EXPECT_FALSE(rm.triggered());
  }
  rm.feed(report(kCap, used, 50));
  EXPECT_TRUE(rm.triggered());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, TriggerSweepTest,
    ::testing::Combine(::testing::Values(0.02, 0.05, 0.10, 0.25, 0.50),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace aide::monitor
