// Tests for the consumers of the expanded StaticHints: the partitioner must
// be indifferent to the verify-only fields (replay_safe, prefetch_eligible),
// tolerate hand-crafted and contradictory hints, and the RPC read-ahead must
// honour a prefetch-eligibility set derived end-to-end from verify().
#include <gtest/gtest.h>

#include <memory>

#include "analysis/effects.hpp"
#include "graph/exec_graph.hpp"
#include "netsim/link.hpp"
#include "partition/partitioner.hpp"
#include "rpc/endpoint.hpp"
#include "vm/klass.hpp"
#include "vm/vm.hpp"

namespace aide::analysis {
namespace {

using vm::ClassBuilder;
using vm::ClassRegistry;
using vm::ObjectRef;
using vm::Value;
using vm::Vm;
using vm::VmConfig;

graph::EdgeInfo edge(std::uint64_t bytes, std::uint64_t inv) {
  return graph::EdgeInfo{.invocations = inv, .accesses = 0, .bytes = bytes};
}

graph::ExecGraph consumer_graph() {
  using graph::ComponentKey;
  graph::ExecGraph g;
  const ComponentKey ui{ClassId{0}}, data{ClassId{2}}, store{ClassId{3}};
  g.set_pinned(ui, true);
  g.add_memory(ui, 10'000, 5);
  g.add_memory(data, 400'000, 50);
  g.add_memory(store, 600'000, 3);
  g.set_edge(ui, data, edge(30'000, 300));
  g.set_edge(data, store, edge(200'000, 1000));
  return g;
}

partition::PartitionRequest consumer_request(const StaticHints* hints) {
  partition::PartitionRequest req;
  req.objective = partition::Objective::free_memory;
  req.heap_capacity = 1 << 20;
  req.min_free_bytes = 500'000;
  req.history_duration = sim_sec(10);
  req.hints = hints;
  return req;
}

TEST(HintsConsumerTest, VerifyOnlyFieldsNeverChangeThePartition) {
  const graph::ExecGraph g = consumer_graph();
  const auto plain = partition::decide_partitioning(g, consumer_request(nullptr));
  ASSERT_TRUE(plain.offload);

  // Hand-crafted hints carrying ONLY the verify-layer fields: the
  // partitioner consumes never_migrate/must_colocate/merge_candidates and
  // must treat these as a no-op contraction.
  StaticHints verify_only;
  verify_only.replay_safe = {{ClassId{2}, MethodId{0}},
                             {ClassId{3}, MethodId{1}}};
  verify_only.prefetch_eligible = {ClassId{2}, ClassId{3}};
  ASSERT_FALSE(verify_only.empty());
  const auto d = partition::decide_partitioning(g, consumer_request(&verify_only));
  ASSERT_TRUE(d.offload);
  EXPECT_EQ(d.mincut_nodes, plain.mincut_nodes);  // nothing contracted
  EXPECT_EQ(d.selected.offload, plain.selected.offload);
}

TEST(HintsConsumerTest, ExpandedFieldsRideAlongWithContraction) {
  const graph::ExecGraph g = consumer_graph();
  StaticHints base;
  base.never_migrate = {ClassId{0}};
  base.merge_candidates = {{ClassId{2}, ClassId{3}}};
  const auto contracted = partition::decide_partitioning(g, consumer_request(&base));
  ASSERT_TRUE(contracted.offload);
  ASSERT_TRUE(contracted.hints_applied);

  StaticHints expanded = base;
  expanded.replay_safe = {{ClassId{2}, MethodId{0}}};
  expanded.prefetch_eligible = {ClassId{3}};
  const auto d = partition::decide_partitioning(g, consumer_request(&expanded));
  ASSERT_TRUE(d.offload);
  EXPECT_EQ(d.mincut_nodes, contracted.mincut_nodes);
  EXPECT_EQ(d.selected.offload, contracted.selected.offload);
}

TEST(HintsConsumerTest, ContradictoryAndOutOfRangeHintsAreHarmless) {
  const graph::ExecGraph g = consumer_graph();
  StaticHints weird;
  // Contradiction: a pinned-closure class marked prefetch eligible, and a
  // replay_safe entry for a class that does not exist at all.
  weird.never_migrate = {ClassId{0}};
  weird.prefetch_eligible = {ClassId{0}};
  weird.replay_safe = {{ClassId{999}, MethodId{42}}};
  weird.merge_candidates = {{ClassId{777}, ClassId{888}}};  // not in graph
  const auto d = partition::decide_partitioning(g, consumer_request(&weird));
  ASSERT_TRUE(d.offload);
  // The unknown merge pair is skipped; the decision still expands cleanly.
  EXPECT_FALSE(d.selected.offload.contains(graph::ComponentKey{ClassId{0}}));
}

// --- end-to-end: verify() hints drive the endpoint's read-ahead filter -------

// Enc's field is written only by its own methods (eligible); Open's field is
// written by Leaker (not eligible).
std::shared_ptr<ClassRegistry> hint_registry() {
  auto reg = std::make_shared<ClassRegistry>();
  reg->register_class(
      ClassBuilder("Enc")
          .entry()
          .field("v")
          .method("get",
                  [](Vm& ctx, ObjectRef self, auto) -> Value {
                    return ctx.get_field(self, FieldId{0});
                  })
          .reads("Enc", "v")
          .method("set",
                  [](Vm& ctx, ObjectRef self, auto args) -> Value {
                    ctx.put_field(self, FieldId{0}, args[0]);
                    return Value{};
                  })
          .writes("Enc", "v")
          .build());
  reg->register_class(ClassBuilder("Open").entry().field("w").build());
  reg->register_class(
      ClassBuilder("Leaker")
          .entry()
          .method("poke",
                  [](Vm&, ObjectRef, auto) -> Value { return Value{}; })
          .writes("Open", "w")
          .build());
  return reg;
}

TEST(HintsConsumerTest, EndpointFilterFromVerifyHints) {
  auto reg = hint_registry();
  const VerifyReport report = verify(*reg);
  ASSERT_EQ(report.count(Severity::error), 0u) << report.summary();
  ASSERT_EQ(report.methods_with_ir, report.methods_total);

  const ClassId enc = reg->find("Enc");
  const ClassId open = reg->find("Open");
  ASSERT_TRUE(std::binary_search(report.hints.prefetch_eligible.begin(),
                                 report.hints.prefetch_eligible.end(), enc));
  ASSERT_FALSE(std::binary_search(report.hints.prefetch_eligible.begin(),
                                  report.hints.prefetch_eligible.end(), open));
  const BatchSafety oracle(report);
  EXPECT_TRUE(oracle.prefetch_eligible(enc));
  EXPECT_FALSE(oracle.prefetch_eligible(open));

  SimClock clock;
  netsim::Link link(netsim::LinkParams::wavelan());
  VmConfig ccfg;
  ccfg.node = NodeId{1};
  ccfg.is_client = true;
  ccfg.heap_capacity = 4 << 20;
  VmConfig scfg;
  scfg.node = NodeId{2};
  scfg.is_client = false;
  scfg.heap_capacity = 32 << 20;
  Vm client(ccfg, reg, clock);
  Vm surrogate(scfg, reg, clock);
  rpc::Endpoint cep(client, link);
  rpc::Endpoint sep(surrogate, link);
  rpc::Endpoint::connect(cep, sep);
  cep.set_batch_safety(&oracle);

  const ObjectRef e = client.new_object("Enc");
  const ObjectRef o = client.new_object("Open");
  client.add_root(e);
  client.add_root(o);
  client.put_field(e, FieldId{0}, Value{11});
  client.put_field(o, FieldId{0}, Value{22});
  const ObjectId ids[] = {e.id, o.id};
  cep.migrate_objects(ids);
  cep.set_prefetch_groups({{e.id, o.id}});
  cep.set_prefetch_eligible(report.hints.prefetch_eligible);

  // Demanding Enc fetches it but prunes the ineligible Open group mate.
  EXPECT_EQ(client.get_field(e, FieldId{0}).as_int(), 11);
  EXPECT_EQ(cep.stats().objects_prefetched, 0u);
  EXPECT_EQ(cep.stats().prefetches_filtered, 1u);
  // The pruned mate still reads correctly — just without the snapshot.
  EXPECT_EQ(client.get_field(o, FieldId{0}).as_int(), 22);

  // Contradictory filter (empty-intersection with the group) still always
  // serves the demanded object.
  cep.set_prefetch_eligible({ClassId{9999}});
  EXPECT_EQ(client.get_field(e, FieldId{0}).as_int(), 11);
}

}  // namespace
}  // namespace aide::analysis
