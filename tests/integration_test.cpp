// End-to-end integration tests reproducing the paper's headline behaviours
// at reduced scale:
//   * the section 5.1 memory-avoidance scenario (fail standalone, survive
//     with AIDE, offloading most of the heap at low predicted bandwidth),
//   * trigger-driven (not just rescue-driven) offloading,
//   * the prototype -> trace -> emulator pipeline consistency,
//   * distributed GC across an application-scale object graph.
#include <gtest/gtest.h>

#include <memory>

#include "apps/apps.hpp"
#include "apps/stdlib.hpp"
#include "common/error.hpp"
#include "emul/emulator.hpp"
#include "emul/recorder.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide {
namespace {

apps::AppParams reduced_params() {
  apps::AppParams p;
  p.doc_bytes = 128 * 1024;
  p.edits = 30;
  p.scrolls = 40;
  p.image_size = 96;
  p.layers = 4;
  p.filter_passes = 4;
  p.atoms = 120;
  p.iterations = 6;
  p.field_size = 65;
  p.frames = 6;
  p.columns = 48;
  p.trace_w = 24;
  p.trace_h = 18;
  p.spheres = 8;
  return p;
}

// Record a standalone single-VM trace for an app (the paper's trace
// acquisition: "running the application to completion on a single PC").
emul::Trace record_trace(const apps::AppInfo& app,
                         const apps::AppParams& params,
                         std::shared_ptr<vm::ClassRegistry> reg) {
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  cfg.gc_alloc_count_threshold = 512;
  cfg.gc_alloc_bytes_divisor = 64;
  vm::Vm vm(cfg, reg, clock);
  emul::TraceRecorder recorder;
  vm.add_hooks(&recorder);
  app.run(vm, params);
  return recorder.take();
}

TEST(MemoryAvoidanceIntegrationTest, JavaNoteScenario) {
  const auto& app = apps::app_by_name("JavaNote");
  const auto params = reduced_params();
  const std::int64_t tight_heap = 1100 * 1024;

  // 1. Standalone: out of memory.
  {
    auto reg = std::make_shared<vm::ClassRegistry>();
    app.register_classes(*reg);
    SimClock clock;
    vm::VmConfig cfg;
    cfg.heap_capacity = tight_heap;
    vm::Vm vm(cfg, reg, clock);
    EXPECT_THROW(app.run(vm, params), VmError);
  }

  // 2. With the platform: completes, having offloaded.
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = tight_heap;
  platform::Platform p(reg, cfg);
  app.run(p.client(), params);

  ASSERT_TRUE(p.offloaded());
  const auto& first = p.offloads().front();
  EXPECT_GT(first.objects_migrated, 0u);
  EXPECT_LT(first.client_heap_used_after, first.client_heap_used_before);
  // The freed amount respects the policy's minimum (20% of the heap).
  EXPECT_GE(first.decision.selected.offload_mem_bytes,
            static_cast<std::int64_t>(0.20 * tight_heap));
  // Predicted bandwidth is well under the link capacity (paper: ~100 KB/s
  // on an 11 Mbps link).
  EXPECT_LT(first.decision.predicted_bandwidth_bps, 11e6);
  // The partitioning heuristic runs in interactive time (paper: ~0.1 s).
  EXPECT_LT(first.decision.compute_seconds, 2.0);
}

TEST(MemoryAvoidanceIntegrationTest, SurrogateHoldsMigratedState) {
  const auto& app = apps::app_by_name("JavaNote");
  const auto params = reduced_params();
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 1100 * 1024;
  platform::Platform p(reg, cfg);
  app.run(p.client(), params);
  ASSERT_TRUE(p.offloaded());
  EXPECT_GT(p.surrogate().heap().used(), 0);
  EXPECT_GT(p.client().stub_count(), 0u);
  EXPECT_GT(p.client_endpoint().stats().rpcs_sent, 0u);
}

TEST(TriggerIntegrationTest, TriggerFiresBeforeHardExhaustion) {
  // With a generous threshold the trigger path (not the allocation-failure
  // rescue) performs the offload.
  const auto& app = apps::app_by_name("JavaNote");
  const auto params = reduced_params();
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 1400 * 1024;
  cfg.trigger.low_free_threshold = 0.30;
  cfg.trigger.consecutive_reports = 2;
  platform::Platform p(reg, cfg);
  app.run(p.client(), params);
  ASSERT_TRUE(p.offloaded());
  EXPECT_EQ(p.client().stats().low_memory_rescues, 0u);
}

TEST(EmulatorIntegrationTest, RecordedTraceReplaysConsistently) {
  const auto& app = apps::app_by_name("Tracer");
  const auto params = reduced_params();
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  const auto trace = record_trace(app, params, reg);
  ASSERT_GT(trace.size(), 1000u);

  // Replay without offloading: emulated time equals recorded time.
  emul::EmulatorConfig cfg;
  cfg.max_offloads = 0;
  cfg.heap_capacity = 64 << 20;
  emul::Emulator emu(reg, cfg);
  const auto result = emu.run(trace);
  EXPECT_EQ(result.emulated_time, result.base_time);
  EXPECT_EQ(result.base_time, trace.duration());
  EXPECT_GT(result.total_invocations, 0u);
}

TEST(EmulatorIntegrationTest, CpuOffloadingSpeedsUpTracer) {
  const auto& app = apps::app_by_name("Tracer");
  const auto params = reduced_params();
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  const auto trace = record_trace(app, params, reg);

  emul::EmulatorConfig cfg;
  cfg.heap_capacity = 64 << 20;
  cfg.trigger_mode = emul::TriggerMode::trace_fraction;
  cfg.eval_at_fraction = 0.10;
  cfg.objective = partition::Objective::speed_up;
  cfg.surrogate_speedup = 3.5;
  cfg.stateless_natives_local = true;
  cfg.arrays_as_objects = true;
  emul::Emulator emu(reg, cfg);
  const auto result = emu.run(trace);

  ASSERT_TRUE(result.offloaded() || !result.declined.empty());
  if (result.offloaded()) {
    EXPECT_LT(result.emulated_time, result.base_time);
  }
}

TEST(DistributedGcIntegrationTest, StubsReleasedAtApplicationScale) {
  // Run JavaNote with offloading, then drop everything and GC both sides:
  // all stubs and exports must drain.
  const auto& app = apps::app_by_name("JavaNote");
  const auto params = reduced_params();
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 1100 * 1024;
  platform::Platform p(reg, cfg);
  app.run(p.client(), params);
  ASSERT_TRUE(p.offloaded());

  // The app cleared its roots at the end; collect both heaps repeatedly to
  // let cross-VM release cascades settle.
  for (int i = 0; i < 4; ++i) {
    p.client().collect_garbage();
    p.surrogate().collect_garbage();
  }
  EXPECT_EQ(p.client().stub_count(), 0u);
  EXPECT_EQ(p.surrogate_endpoint().refs().export_count(), 0u);
  EXPECT_EQ(p.surrogate().heap().object_count(), 0u);
}

TEST(StressIntegrationTest, ManyOffloadCyclesStayConsistent) {
  // Alternate forced offloads in both directions under live mutation.
  auto reg = std::make_shared<vm::ClassRegistry>();
  apps::register_stdlib(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 8 << 20;
  cfg.auto_offload = false;
  platform::Platform p(reg, cfg);
  vm::Vm& client = p.client();

  const auto list = client.new_object("ArrayList");
  client.add_root(list);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      client.call(list, "add", {vm::Value{round * 100 + i}});
    }
    p.offload_now(std::int64_t{1});
  }
  const std::int64_t n = client.call(list, "size").as_int();
  ASSERT_EQ(n, 200);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(client.call(list, "get", {vm::Value{i}}).as_int(),
              (i / 20) * 100 + (i % 20));
  }
}

}  // namespace
}  // namespace aide
