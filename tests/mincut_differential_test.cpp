// Differential tests for the optimized partitioning algorithms.
//
// The incremental modified_mincut (O(deg) cut deltas, one running offload
// set) and the adjacency-list Stoer-Wagner in src/graph/mincut.cpp must be
// observationally identical to the retained dense-matrix reference
// implementations in src/graph/mincut_reference.cpp: same candidate sequence
// (offload sets, cut statistics, memory/self-time accounting) and same global
// cut weight/side, on randomized graphs from 50 to 500 nodes with mixed
// pinning and object-granularity components. Stoer-Wagner is additionally
// cross-checked against the exponential brute-force oracle at n <= 14.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "graph/mincut.hpp"
#include "graph/mincut_reference.hpp"

namespace aide::graph {
namespace {

ComponentKey cls(std::uint32_t id) { return ComponentKey{ClassId{id}}; }

// Random graph with node stats, sparse edges, a pinned subset, and a few
// object-granularity components — the shapes the Array enhancement produces.
ExecGraph random_rich_graph(Rng& rng, std::size_t n, double edge_prob,
                            double pin_prob) {
  ExecGraph g;
  std::vector<ComponentKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ComponentKey key = cls(static_cast<std::uint32_t>(i));
    if (rng.next_below(8) == 0) {
      key.object = ObjectId{1000 + i};  // object-granularity component
    }
    keys.push_back(key);
    auto& node = g.node(key);
    node.mem_bytes = static_cast<std::int64_t>(rng.next_below(1 << 20));
    node.exec_self_time = static_cast<SimDuration>(rng.next_below(1'000'000));
    node.live_objects = static_cast<std::int64_t>(rng.next_below(50));
    if (rng.next_double() < pin_prob) node.pinned = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() >= edge_prob) continue;
      EdgeInfo info;
      info.invocations = rng.next_below(20) + 1;
      info.accesses = rng.next_below(30);
      info.bytes = rng.next_below(10000);
      g.set_edge(keys[i], keys[j], info);
    }
  }
  return g;
}

void expect_candidates_equal(const std::vector<Candidate>& got,
                             const std::vector<Candidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    SCOPED_TRACE("candidate " + std::to_string(k));
    EXPECT_EQ(got[k].offload, want[k].offload);
    EXPECT_NEAR(got[k].cut_weight, want[k].cut_weight,
                1e-6 * (1.0 + std::abs(want[k].cut_weight)));
    EXPECT_EQ(got[k].cut_bytes, want[k].cut_bytes);
    EXPECT_EQ(got[k].cut_invocations, want[k].cut_invocations);
    EXPECT_EQ(got[k].cut_accesses, want[k].cut_accesses);
    EXPECT_EQ(got[k].offload_mem_bytes, want[k].offload_mem_bytes);
    EXPECT_EQ(got[k].offload_self_time, want[k].offload_self_time);
  }
}

TEST(MincutDifferentialTest, ModifiedMincutMatchesReference) {
  for (const std::uint64_t seed : {11u, 23u, 47u, 101u, 211u}) {
    for (const std::size_t n : {50u, 120u, 250u, 500u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " n=" + std::to_string(n));
      Rng rng(seed * 1000 + n);
      const ExecGraph g =
          random_rich_graph(rng, n, /*edge_prob=*/6.0 / static_cast<double>(n),
                            /*pin_prob=*/0.1);
      const auto got = modified_mincut(g);
      const auto want = reference::modified_mincut(g);
      expect_candidates_equal(got, want);
    }
  }
}

TEST(MincutDifferentialTest, ModifiedMincutMatchesReferenceDense) {
  // Dense small graphs stress tie-breaking: many equal-connectivity moves.
  for (const std::uint64_t seed : {3u, 5u, 7u, 13u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const ExecGraph g = random_rich_graph(rng, 60, /*edge_prob=*/0.5,
                                          /*pin_prob=*/0.05);
    expect_candidates_equal(modified_mincut(g),
                            reference::modified_mincut(g));
  }
}

TEST(MincutDifferentialTest, VisitStreamsTheSameSeries) {
  Rng rng(99);
  const ExecGraph g = random_rich_graph(rng, 150, 0.05, 0.1);
  const auto want = modified_mincut(g);
  std::size_t k = 0;
  modified_mincut_visit(g, EdgeWeightFn{}, [&](const Candidate& cand) {
    ASSERT_LT(k, want.size());
    EXPECT_EQ(cand.offload, want[k].offload);
    EXPECT_DOUBLE_EQ(cand.cut_weight, want[k].cut_weight);
    EXPECT_EQ(cand.cut_bytes, want[k].cut_bytes);
    ++k;
  });
  EXPECT_EQ(k, want.size());
}

TEST(MincutDifferentialTest, StoerWagnerMatchesReference) {
  for (const std::uint64_t seed : {17u, 31u, 59u, 83u}) {
    for (const std::size_t n : {50u, 120u, 250u, 500u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " n=" + std::to_string(n));
      Rng rng(seed * 1000 + n);
      const ExecGraph g =
          random_rich_graph(rng, n, 6.0 / static_cast<double>(n), 0.0);
      const auto got = stoer_wagner_min_cut(g);
      const auto want = reference::stoer_wagner_min_cut(g);
      EXPECT_NEAR(got.weight, want.weight,
                  1e-6 * (1.0 + std::abs(want.weight)));
      EXPECT_EQ(got.side, want.side);
    }
  }
}

TEST(MincutDifferentialTest, StoerWagnerMatchesBruteForceSmall) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const std::size_t n = 3 + seed % 12;  // 3..14
    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
    Rng rng(seed);
    const ExecGraph g = random_rich_graph(rng, n, 0.6, 0.0);
    const auto sw = stoer_wagner_min_cut(g);
    const auto bf = brute_force_min_cut(g);
    EXPECT_NEAR(sw.weight, bf.weight, 1e-6 * (1.0 + std::abs(bf.weight)));
  }
}

TEST(MincutDifferentialTest, RemoveComponentsMatchesRebuild) {
  // remove_components (one-pass compaction) must leave a graph equivalent to
  // rebuilding from the surviving nodes/edges.
  Rng rng(7);
  ExecGraph g = random_rich_graph(rng, 80, 0.1, 0.1);
  std::unordered_set<ComponentKey> dead;
  for (const auto& [key, info] : g.nodes()) {
    if (rng.next_below(4) == 0) dead.insert(key);
  }

  ExecGraph rebuilt;
  for (const auto& [key, info] : g.nodes()) {
    if (dead.contains(key)) continue;
    rebuilt.node(key) = info;
  }
  for (const auto& [ekey, einfo] : g.edges()) {
    if (dead.contains(ekey.a) || dead.contains(ekey.b)) continue;
    rebuilt.set_edge(ekey.a, ekey.b, einfo);
  }

  g.remove_components(dead);
  ASSERT_EQ(g.node_count(), rebuilt.node_count());
  ASSERT_EQ(g.edge_count(), rebuilt.edge_count());
  for (const auto& [key, info] : rebuilt.nodes()) {
    const auto* node = g.find_node(key);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->mem_bytes, info.mem_bytes);
    EXPECT_EQ(node->live_objects, info.live_objects);
    EXPECT_EQ(node->pinned, info.pinned);
  }
  for (const auto& [ekey, einfo] : rebuilt.edges()) {
    const auto* e = g.find_edge(ekey.a, ekey.b);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->invocations, einfo.invocations);
    EXPECT_EQ(e->accesses, einfo.accesses);
    EXPECT_EQ(e->bytes, einfo.bytes);
  }
  // And the partitioning pipeline agrees end-to-end on the compacted graph.
  expect_candidates_equal(modified_mincut(g), reference::modified_mincut(g));
}

}  // namespace
}  // namespace aide::graph
