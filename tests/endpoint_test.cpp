// Tests for the RPC endpoints: transparent remote invocation/access across
// two VMs, the placement rules (natives and statics on the client, managed
// statics local), object migration (including cyclic batches), reference
// mapping, distributed GC releases, reentrant callbacks, error propagation,
// and simulated-time charging.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "netsim/link.hpp"
#include "rpc/endpoint.hpp"
#include "tests/test_util.hpp"

namespace aide::rpc {
namespace {

using aide::test::make_test_registry;
using vm::ObjectRef;
using vm::Value;
using vm::Vm;
using vm::VmConfig;

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest()
      : registry_(make_test_registry()),
        link_(netsim::LinkParams::wavelan()),
        client_(client_cfg(), registry_, clock_),
        surrogate_(surrogate_cfg(), registry_, clock_),
        client_ep_(client_, link_),
        surrogate_ep_(surrogate_, link_) {
    Endpoint::connect(client_ep_, surrogate_ep_);
  }

  static VmConfig client_cfg() {
    VmConfig c;
    c.node = NodeId{1};
    c.name = "client";
    c.is_client = true;
    c.heap_capacity = 4 << 20;
    return c;
  }
  static VmConfig surrogate_cfg() {
    VmConfig c;
    c.node = NodeId{2};
    c.name = "surrogate";
    c.is_client = false;
    c.cpu_speed = 3.5;
    c.heap_capacity = 32 << 20;
    return c;
  }

  // Moves one client object to the surrogate.
  void offload(ObjectRef obj) {
    const ObjectId ids[] = {obj.id};
    client_ep_.migrate_objects(ids);
  }

  std::shared_ptr<vm::ClassRegistry> registry_;
  SimClock clock_;
  netsim::Link link_;
  Vm client_;
  Vm surrogate_;
  Endpoint client_ep_;
  Endpoint surrogate_ep_;
};

TEST_F(EndpointTest, MigrationMovesObjectAndLeavesStub) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);
  EXPECT_FALSE(client_.is_local(counter.id));
  EXPECT_TRUE(client_.knows(counter.id));
  EXPECT_TRUE(surrogate_.is_local(counter.id));
  EXPECT_EQ(client_.stub_count(), 1u);
}

TEST_F(EndpointTest, RemoteInvocationFollowsObject) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");
  offload(counter);
  // State travelled with the object; execution follows it transparently.
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 2);
  EXPECT_EQ(client_.call(counter, "get").as_int(), 2);
  EXPECT_GE(client_.stats().remote_invocations, 2u);
}

TEST_F(EndpointTest, RemoteFieldAccess) {
  const ObjectRef pair = client_.new_object("Pair");
  client_.add_root(pair);
  client_.put_field(pair, FieldId{0}, Value{7});
  offload(pair);
  EXPECT_EQ(client_.get_field(pair, FieldId{0}).as_int(), 7);
  client_.put_field(pair, FieldId{1}, Value{"remote"});
  EXPECT_EQ(client_.get_field(pair, FieldId{1}).as_str(), "remote");
  EXPECT_GE(client_.stats().remote_field_accesses, 3u);
}

TEST_F(EndpointTest, RemoteArrayOps) {
  const ObjectRef arr = client_.new_int_array(8);
  client_.add_root(arr);
  client_.array_put(arr, 2, Value{11});
  offload(arr);
  EXPECT_EQ(client_.array_length(arr), 8);
  EXPECT_EQ(client_.array_get(arr, 2).as_int(), 11);
  client_.array_put(arr, 3, Value{22});
  EXPECT_EQ(client_.array_get(arr, 3).as_int(), 22);
}

TEST_F(EndpointTest, RemoteCharArrayBulkOps) {
  const ObjectRef arr = client_.new_char_array(32);
  client_.add_root(arr);
  offload(arr);
  client_.chars_write(arr, 4, "abcdef");
  EXPECT_EQ(client_.chars_read(arr, 4, 6), "abcdef");
}

TEST_F(EndpointTest, MigratedBatchPreservesCycles) {
  const ObjectRef a = client_.new_object("Holder");
  const ObjectRef b = client_.new_object("Holder");
  client_.put_field(a, FieldId{0}, Value{b});
  client_.put_field(b, FieldId{0}, Value{a});
  client_.add_root(a);

  const ObjectId ids[] = {a.id, b.id};
  client_ep_.migrate_objects(ids);

  EXPECT_TRUE(surrogate_.is_local(a.id));
  EXPECT_TRUE(surrogate_.is_local(b.id));
  // The cycle is intact on the surrogate.
  EXPECT_EQ(surrogate_.raw_get_field(a.id, FieldId{0}).as_ref().id, b.id);
  EXPECT_EQ(surrogate_.raw_get_field(b.id, FieldId{0}).as_ref().id, a.id);
  // And transparently reachable from the client.
  EXPECT_EQ(client_.get_field(a, FieldId{0}).as_ref(), b);
}

TEST_F(EndpointTest, MigratedObjectKeepsReferenceToClientObject) {
  const ObjectRef holder = client_.new_object("Holder");
  const ObjectRef kept = client_.new_object("Counter");
  client_.put_field(holder, FieldId{0}, Value{kept});
  client_.add_root(holder);

  offload(holder);
  // The surrogate's copy references the client-resident counter through a
  // stub; invoking through it must route back to the client.
  const Value got = client_.get_field(holder, FieldId{0});
  EXPECT_EQ(got.as_ref(), kept);
  EXPECT_TRUE(client_.is_local(kept.id));
  EXPECT_TRUE(surrogate_.knows(kept.id));
  EXPECT_FALSE(surrogate_.is_local(kept.id));
}

TEST_F(EndpointTest, NativeMethodsExecuteOnClient) {
  // Device is pinned in practice, but even if its object is reachable from
  // the surrogate, native calls route to the client.
  const ObjectRef device = client_.new_object("Device");
  client_.add_root(device);

  // Invoke from the surrogate side: target is on the client.
  surrogate_.install_stub(device.id, client_.find_class("Device"),
                          vm::ObjectKind::plain);
  const Value beeps = surrogate_.call(ObjectRef{device.id}, "beep");
  EXPECT_EQ(beeps.as_int(), 1);
  EXPECT_TRUE(client_.is_local(device.id));
  EXPECT_EQ(client_.get_field(device, FieldId{0}).as_int(), 1);
}

TEST_F(EndpointTest, StatelessNativeRunsLocallyWithEnhancement) {
  VmConfig cfg = surrogate_cfg();
  cfg.stateless_natives_local = true;
  cfg.node = NodeId{3};
  Vm local_surrogate(cfg, registry_, clock_);
  Endpoint ep(local_surrogate, link_);
  // No peer needed: the stateless native runs where invoked.
  EXPECT_EQ(local_surrogate.call_static("Util", "twice", {Value{4}}).as_int(),
            8);
}

TEST_F(EndpointTest, StatelessNativeRoutesToClientWithoutEnhancement) {
  // Default configuration: even stateless natives execute on the client.
  EXPECT_EQ(surrogate_.call_static("Util", "twice", {Value{4}}).as_int(), 8);
  EXPECT_EQ(surrogate_.stats().remote_invocations, 1u);
}

TEST_F(EndpointTest, StaticDataLivesOnClient) {
  surrogate_.put_static("Calc", "memory", Value{123});
  // The read flushes the write-behind put in the same frame.
  EXPECT_EQ(surrogate_.get_static("Calc", "memory").as_int(), 123);
  // The write landed on the client VM's static storage.
  EXPECT_EQ(client_.raw_get_static(client_.find_class("Calc"), 0).as_int(),
            123);
  EXPECT_GE(surrogate_.stats().remote_field_accesses, 2u);
}

TEST_F(EndpointTest, ManagedStaticRunsOnInvokingVm) {
  const auto before = surrogate_.stats().remote_invocations;
  EXPECT_EQ(surrogate_.call_static("Calc", "add", {Value{1}, Value{2}})
                .as_int(),
            3);
  EXPECT_EQ(surrogate_.stats().remote_invocations, before);
}

TEST_F(EndpointTest, ReentrantCallback) {
  // Client invokes a method on an offloaded Holder whose body calls back
  // into a client-resident Counter — client -> surrogate -> client.
  auto reg = make_test_registry();
  vm::ClassBuilder cb("Chain");
  cb.field("next");
  cb.method("poke", [](Vm& ctx, ObjectRef self, auto) -> Value {
    const ObjectRef next = ctx.get_field(self, FieldId{0}).as_ref();
    return ctx.call(next, "inc");
  });
  const ClassId chain_cls = reg->register_class(cb.build());

  SimClock clock;
  netsim::Link link;
  Vm c(client_cfg(), reg, clock);
  Vm s(surrogate_cfg(), reg, clock);
  Endpoint ce(c, link), se(s, link);
  Endpoint::connect(ce, se);

  const ObjectRef chain = c.new_object(chain_cls);
  const ObjectRef counter = c.new_object("Counter");
  c.put_field(chain, FieldId{0}, Value{counter});
  c.add_root(chain);
  c.add_root(counter);

  const ObjectId ids[] = {chain.id};
  ce.migrate_objects(ids);

  EXPECT_EQ(c.call(chain, "poke").as_int(), 1);
  EXPECT_EQ(c.call(chain, "poke").as_int(), 2);
  EXPECT_TRUE(c.is_local(counter.id));
  EXPECT_EQ(c.call(counter, "get").as_int(), 2);
}

TEST_F(EndpointTest, RemoteErrorsPropagateWithCode) {
  const ObjectRef arr = client_.new_int_array(4);
  client_.add_root(arr);
  offload(arr);
  try {
    client_.array_get(arr, 99);
    FAIL() << "expected bad_array_index";
  } catch (const VmError& e) {
    EXPECT_EQ(e.code(), VmErrorCode::bad_array_index);
    EXPECT_NE(std::string(e.what()).find("remote"), std::string::npos);
  }
}

TEST_F(EndpointTest, RpcAdvancesSimulatedClock) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);
  const SimTime before = clock_.now();
  client_.call(counter, "get");
  // At least one full round trip of the WaveLAN link.
  EXPECT_GE(clock_.now() - before, sim_us(2400));
}

TEST_F(EndpointTest, StatsCountTraffic) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);
  client_.call(counter, "inc");
  const auto& stats = client_ep_.stats();
  EXPECT_GE(stats.rpcs_sent, 2u);  // migrate + invoke
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_EQ(stats.migrations_sent, 1u);
  EXPECT_EQ(stats.objects_migrated_out, 1u);
}

TEST_F(EndpointTest, DistributedGcReleasesDroppedStubs) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);
  EXPECT_EQ(surrogate_ep_.refs().export_count(), 1u);

  // Drop the only client reference; client GC should release the stub and
  // the surrogate should un-export (making the object collectable there).
  client_.remove_root(counter);
  client_.clear_driver_roots();
  client_.collect_garbage();
  EXPECT_EQ(client_.stub_count(), 0u);
  EXPECT_EQ(surrogate_ep_.refs().export_count(), 0u);

  surrogate_.collect_garbage();
  EXPECT_FALSE(surrogate_.is_local(counter.id));
}

TEST_F(EndpointTest, ExportsActAsGcRootsOnOwner) {
  // A client object referenced only by the surrogate must survive client GC.
  const ObjectRef holder = client_.new_object("Holder");
  const ObjectRef kept = client_.new_object("Counter");
  client_.put_field(holder, FieldId{0}, Value{kept});
  client_.add_root(holder);
  offload(holder);

  // Now drop all client-side references to `kept`: it is only reachable via
  // the migrated holder's field on the surrogate (through the export table).
  client_.clear_driver_roots();
  client_.collect_garbage();
  EXPECT_TRUE(client_.is_local(kept.id));
  EXPECT_EQ(client_.get_field(holder, FieldId{0}).as_ref().id, kept.id);
}

TEST_F(EndpointTest, MigrationChargesLinkForPayload) {
  const ObjectRef big = client_.new_char_array(200 * 1024);
  client_.add_root(big);
  const SimTime before = clock_.now();
  offload(big);
  // 200 KB at 11 Mbps is ~150 ms one way.
  EXPECT_GT(clock_.now() - before, sim_ms(100));
}

TEST_F(EndpointTest, RetriesThroughTransientOutage) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");
  offload(counter);

  // 10 ms of radio silence starting now: the first attempt is refused, the
  // re-attempt (timeout 50 ms + backoff 25 ms later) sails through.
  netsim::FaultPlan plan;
  plan.outages.push_back({clock_.now(), clock_.now() + sim_ms(10)});
  link_.set_fault_plan(plan);

  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
  EXPECT_EQ(client_ep_.stats().timeouts, 1u);
  EXPECT_EQ(client_ep_.stats().retries, 1u);
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 0u);
  EXPECT_GE(link_.stats().link_down_failures, 1u);
}

TEST_F(EndpointTest, AbortChargesFullRetryBudget) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);

  netsim::FaultPlan plan;
  plan.dead_after = clock_.now();
  link_.set_fault_plan(plan);

  // The offload primed the RTT estimator, so the adaptive timeout (not the
  // fixed 50 ms ceiling) is what each attempt charges. It cannot change
  // during the abort: RTT samples only come from successful round trips.
  const SimDuration eff = client_ep_.effective_timeout();
  EXPECT_LT(eff, RetryPolicy{}.timeout);
  EXPECT_GE(eff, RetryPolicy{}.min_timeout);

  const SimTime before = clock_.now();
  EXPECT_THROW(client_.call(counter, "get"), PeerUnavailable);
  // 4 attempts x effective timeout + backoffs 25/50/100 ms; a dead link
  // never grants airtime, so the charge is exactly the retry budget.
  EXPECT_EQ(clock_.now() - before, 4 * eff + sim_ms(25 + 50 + 100));
  EXPECT_EQ(client_ep_.stats().timeouts, 4u);
  EXPECT_EQ(client_ep_.stats().retries, 3u);
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 1u);
}

TEST_F(EndpointTest, LostResponseIsDedupedNotReExecuted) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);

  // Window opens just after the request leaves and closes well before the
  // re-attempt: the surrogate executes inc once, the reply is lost, and the
  // retry must be served from the reply cache.
  const SimTime t = clock_.now();
  netsim::FaultPlan plan;
  plan.outages.push_back({t + 1, t + sim_ms(40)});
  link_.set_fault_plan(plan);

  EXPECT_EQ(client_.call(counter, "inc").as_int(), 1);
  // The adaptive timeout may schedule several re-attempts inside the outage
  // window; every one of them is answered from the reply cache.
  EXPECT_GE(client_ep_.stats().retries, 1u);
  EXPECT_GE(surrogate_ep_.stats().duplicates_served, 1u);
  // At-most-once: no duplicate incremented again.
  link_.set_fault_plan(netsim::FaultPlan{});
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

TEST_F(EndpointTest, LocalFallbackCompletesAbortedRpc) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");
  offload(counter);

  // Platform-style recovery at endpoint scale: sever the pair, then
  // repatriate every surviving surrogate object.
  client_ep_.set_peer_failure_handler([this] {
    std::vector<ObjectId> ids;
    surrogate_.heap().for_each(
        [&](const vm::Object& o) { ids.push_back(o.id); });
    std::sort(ids.begin(), ids.end());
    client_ep_.disconnect();
    for (const ObjectId id : ids) {
      client_.migrate_in(surrogate_.migrate_out(id));
    }
    return true;
  });

  netsim::FaultPlan plan;
  plan.dead_after = clock_.now();
  link_.set_fault_plan(plan);

  // The abandoned invoke is transparently re-run against now-local state.
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 2);
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 1u);
  EXPECT_EQ(client_ep_.stats().recovered_rpcs, 1u);
  EXPECT_TRUE(client_.is_local(counter.id));
  EXPECT_EQ(client_.call(counter, "get").as_int(), 2);
}

TEST_F(EndpointTest, FailedMigrationReinstatesBatchLocally) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");

  netsim::FaultPlan plan;
  plan.dead_after = clock_.now();
  link_.set_fault_plan(plan);

  const ObjectId ids[] = {counter.id};
  EXPECT_THROW(client_ep_.migrate_objects(ids), PeerUnavailable);
  // The batch never left: still local, no stubs, state intact.
  EXPECT_TRUE(client_.is_local(counter.id));
  EXPECT_EQ(client_.stub_count(), 0u);
  EXPECT_FALSE(surrogate_.is_local(counter.id));
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

TEST_F(EndpointTest, AdaptiveTimeoutTracksMeasuredRtt) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  // Unprimed estimator: the effective timeout is the configured ceiling.
  EXPECT_FALSE(client_ep_.rtt_estimator().primed);
  EXPECT_EQ(client_ep_.effective_timeout(), RetryPolicy{}.timeout);

  offload(counter);
  client_.call(counter, "inc");
  // Round trips primed the estimator; the RTO tracks transport legs only,
  // so on an idle WaveLAN link it sits far below the 50 ms ceiling but
  // never under the floor.
  EXPECT_TRUE(client_ep_.rtt_estimator().primed);
  const SimDuration eff = client_ep_.effective_timeout();
  EXPECT_GE(eff, RetryPolicy{}.min_timeout);
  EXPECT_LT(eff, RetryPolicy{}.timeout);

  // Satellite (d) regression: a timed-out attempt must advance the virtual
  // clock by the *effective* timeout, not the fixed ceiling.
  netsim::FaultPlan plan;
  plan.outages.push_back({clock_.now(), clock_.now() + 1});
  link_.set_fault_plan(plan);
  const SimTime before = clock_.now();
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
  EXPECT_EQ(client_ep_.stats().timeouts, 1u);
  // One charged timeout + 25 ms backoff + the successful retry's RTT; with
  // the fixed 50 ms charge this lower bound would be violated from above.
  EXPECT_LT(clock_.now() - before, sim_ms(50) + sim_ms(25) + sim_ms(50));
  EXPECT_GE(clock_.now() - before, eff + sim_ms(25));
}

TEST_F(EndpointTest, FixedTimeoutWhenAdaptiveDisabled) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  RetryPolicy fixed;
  fixed.adaptive = false;
  client_ep_.set_retry_policy(fixed);
  offload(counter);
  client_.call(counter, "inc");
  // Samples are still collected, but the effective timeout stays pinned.
  EXPECT_TRUE(client_ep_.rtt_estimator().primed);
  EXPECT_EQ(client_ep_.effective_timeout(), fixed.timeout);
}

TEST_F(EndpointTest, CorruptFramesAreRejectedNotExecuted) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");
  offload(counter);

  // Every delivery flips one byte: the CRC check must reject every frame,
  // so no request ever executes and the sender exhausts its retry budget.
  netsim::FaultPlan plan;
  plan.corrupt_probability = 1.0;
  link_.set_fault_plan(plan);
  EXPECT_THROW(client_.call(counter, "inc"), PeerUnavailable);
  EXPECT_GE(surrogate_ep_.stats().corrupt_frames_rejected, 1u);
  EXPECT_EQ(client_ep_.stats().timeouts,
            static_cast<std::uint64_t>(RetryPolicy{}.max_attempts));

  // The corrupted requests never reached the interpreter.
  link_.set_fault_plan(netsim::FaultPlan{});
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

TEST_F(EndpointTest, DuplicateDeliveryIsServedFromReplyCache) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);

  // Every message is delivered twice; the second copy of each request hits
  // the at-most-once cache instead of the interpreter.
  netsim::FaultPlan plan;
  plan.duplicate_probability = 1.0;
  link_.set_fault_plan(plan);
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 1);
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 2);
  EXPECT_GE(surrogate_ep_.stats().duplicates_served, 2u);
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 0u);

  link_.set_fault_plan(netsim::FaultPlan{});
  EXPECT_EQ(client_.call(counter, "get").as_int(), 2);
}

TEST_F(EndpointTest, ReorderedFramesAreFencedBySequence) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);
  client_.call(counter, "inc");  // leaves a retransmittable frame behind

  // Each reordered delivery presents a stale retransmit of the previous
  // frame instead of the fresh one; the sequence fence must discard it and
  // let the retry path converge. p = 0.5 under a fixed seed is deterministic
  // but leaves every call a non-reordered path within its retry budget most
  // of the time; aborted calls are tolerated and bounded below.
  netsim::FaultPlan plan;
  plan.reorder_probability = 0.5;
  plan.chaos_seed = 0xD15C0;
  link_.set_fault_plan(plan);

  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      client_.call(counter, "inc");
      ++successes;
    } catch (const PeerUnavailable&) {
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_GE(client_ep_.stats().stale_frames_fenced +
                surrogate_ep_.stats().stale_frames_fenced,
            1u);

  // At-most-once: every increment landed at most once — successes all did;
  // an aborted call may have executed before its reply was displaced.
  link_.set_fault_plan(netsim::FaultPlan{});
  const int value = static_cast<int>(client_.call(counter, "get").as_int());
  EXPECT_GE(value, 1 + successes);
  EXPECT_LE(value, 11);
}

TEST_F(EndpointTest, MigrationTraceRecordsTwoPhaseBoundaries) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  const SimTime before = clock_.now();
  offload(counter);

  ASSERT_EQ(client_ep_.migrations().size(), 1u);
  const MigrationTrace& t = client_ep_.migrations().front();
  EXPECT_TRUE(t.committed);
  EXPECT_EQ(t.objects, 1u);
  EXPECT_EQ(t.epoch, 2u);  // both sides boot in epoch 1; PREPARE bumped it
  EXPECT_EQ(client_ep_.epoch(), 2u);
  EXPECT_GE(t.begin, before);
  EXPECT_LT(t.begin, t.prepare_acked);
  EXPECT_LT(t.prepare_acked, t.commit_acked);
  EXPECT_LE(t.commit_acked, clock_.now());
}

TEST_F(EndpointTest, AbortedPrepareLeavesNoStagedStateBehind) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");

  // Kill the link for the first migration attempt: PREPARE is lost, the
  // batch is reinstated locally and the aborted migration is traced.
  netsim::FaultPlan plan;
  plan.dead_after = clock_.now();
  link_.set_fault_plan(plan);
  const ObjectId ids[] = {counter.id};
  EXPECT_THROW(client_ep_.migrate_objects(ids), PeerUnavailable);
  ASSERT_EQ(client_ep_.migrations().size(), 1u);
  EXPECT_FALSE(client_ep_.migrations().front().committed);

  // Once the link heals, a fresh migration under a newer epoch succeeds:
  // no stale staging from the aborted attempt can leak into its COMMIT.
  link_.set_fault_plan(netsim::FaultPlan{});
  client_ep_.migrate_objects(ids);
  EXPECT_TRUE(surrogate_.is_local(counter.id));
  EXPECT_TRUE(client_ep_.migrations().back().committed);
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

TEST_F(EndpointTest, PingProbesPeerLiveness) {
  EXPECT_TRUE(client_ep_.ping());
  EXPECT_EQ(client_ep_.stats().heartbeats_sent, 1u);
  EXPECT_EQ(client_ep_.last_contact(), clock_.now());

  netsim::FaultPlan plan;
  plan.dead_after = clock_.now();
  link_.set_fault_plan(plan);
  EXPECT_FALSE(client_ep_.ping());

  // The link comes back: probing succeeds again (re-admission's precondition).
  link_.set_fault_plan(netsim::FaultPlan{});
  EXPECT_TRUE(client_ep_.ping());
}

TEST_F(EndpointTest, EmptyBatchFlushIsElided) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  offload(counter);

  // A yield point with nothing queued must not put a frame on the air.
  const EndpointStats before = client_ep_.stats();
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  client_ep_.flush_pending();
  EXPECT_EQ(client_ep_.stats().rpcs_sent, before.rpcs_sent);
  EXPECT_EQ(client_ep_.stats().bytes_sent, before.bytes_sent);
  EXPECT_EQ(client_ep_.stats().batches_sent, before.batches_sent);
}

TEST_F(EndpointTest, SingleOpBatchFlushMatchesLegacyFrameCost) {
  const ObjectRef pair = client_.new_object("Pair");
  client_.add_root(pair);
  offload(pair);

  // Legacy framing: one remote store, one frame, measured in bytes.
  BatchPolicy off;
  off.enabled = false;
  off.read_ahead = false;
  client_ep_.set_batch_policy(off);
  const EndpointStats before_off = client_ep_.stats();
  client_.put_field(pair, FieldId{0}, Value{std::int64_t{41}});
  const std::uint64_t legacy_bytes =
      client_ep_.stats().bytes_sent - before_off.bytes_sent;
  EXPECT_EQ(client_ep_.stats().rpcs_sent - before_off.rpcs_sent, 1u);

  // Batched transport, same store: the lone queued op must flush as a
  // bit-identical legacy frame — no batch envelope, no extra bytes.
  client_ep_.set_batch_policy(BatchPolicy{});
  const EndpointStats before_on = client_ep_.stats();
  client_.put_field(pair, FieldId{0}, Value{std::int64_t{42}});
  EXPECT_EQ(client_ep_.pending_ops(), 1u);
  client_ep_.flush_pending();
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(client_ep_.stats().rpcs_sent - before_on.rpcs_sent, 1u);
  EXPECT_EQ(client_ep_.stats().bytes_sent - before_on.bytes_sent, legacy_bytes);
  EXPECT_EQ(client_ep_.stats().batches_sent, before_on.batches_sent);
  EXPECT_EQ(client_.get_field(pair, FieldId{0}).as_int(), 42);
}

TEST_F(EndpointTest, RtoExpiryVoidsWholeBatchExactlyOnce) {
  const ObjectRef pair = client_.new_object("Pair");
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(pair);
  client_.add_root(counter);
  const ObjectId ids[] = {pair.id, counter.id};
  client_ep_.migrate_objects(ids);

  // Two deferred stores ride the invoke's frame: one 3-op batch.
  client_.put_field(pair, FieldId{0}, Value{std::int64_t{41}});
  client_.put_field(pair, FieldId{1}, Value{"ride"});
  EXPECT_EQ(client_ep_.pending_ops(), 2u);
  const EndpointStats before = client_ep_.stats();

  // The outage swallows the first attempt. The RTO voids the entire frame
  // — one timeout for three ops, not three — and the retry re-sends the
  // batch as a unit; the reply cache keeps the invoke at-most-once.
  netsim::FaultPlan plan;
  plan.outages.push_back({clock_.now(), clock_.now() + sim_ms(10)});
  link_.set_fault_plan(plan);
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 1);

  EXPECT_EQ(client_ep_.stats().timeouts - before.timeouts, 1u);
  EXPECT_EQ(client_ep_.stats().retries - before.retries, 1u);
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 0u);
  EXPECT_EQ(client_ep_.stats().batches_sent - before.batches_sent, 1u);
  EXPECT_EQ(client_ep_.stats().batched_ops - before.batched_ops, 3u);
  EXPECT_EQ(client_ep_.pending_ops(), 0u);

  // Every op in the voided batch landed exactly once.
  link_.set_fault_plan(netsim::FaultPlan{});
  EXPECT_EQ(client_.get_field(pair, FieldId{0}).as_int(), 41);
  EXPECT_EQ(client_.get_field(pair, FieldId{1}).as_str(), "ride");
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

TEST_F(EndpointTest, StaleEpochBatchIsDiscardedWholesale) {
  const ObjectRef pair = client_.new_object("Pair");
  client_.add_root(pair);
  offload(pair);

  client_.put_field(pair, FieldId{0}, Value{std::int64_t{7}});
  client_.put_field(pair, FieldId{1}, Value{"x"});
  EXPECT_EQ(client_ep_.pending_ops(), 2u);

  // The surrogate moves to a newer migration epoch, so the client's batch
  // frame carries a stale fencing token. The fence must reject the frame
  // as a unit on every attempt: neither rider may apply.
  surrogate_ep_.advance_epoch();
  const auto fenced_before = surrogate_ep_.stats().stale_frames_fenced;
  EXPECT_THROW(client_.get_field(pair, FieldId{0}), PeerUnavailable);
  EXPECT_GE(surrogate_ep_.stats().stale_frames_fenced - fenced_before,
            static_cast<std::uint64_t>(RetryPolicy{}.max_attempts));
  EXPECT_EQ(client_ep_.stats().aborted_rpcs, 1u);
  EXPECT_TRUE(surrogate_.raw_get_field(pair.id, FieldId{0}).is_nil());
  EXPECT_TRUE(surrogate_.raw_get_field(pair.id, FieldId{1}).is_nil());
  // The idempotent riders survived the abort for whoever recovers.
  EXPECT_EQ(client_ep_.pending_ops(), 2u);

  // Once the client re-fences, the same batch goes through exactly once.
  client_ep_.advance_epoch();
  EXPECT_EQ(client_.get_field(pair, FieldId{0}).as_int(), 7);
  EXPECT_EQ(client_.get_field(pair, FieldId{1}).as_str(), "x");
}

TEST_F(EndpointTest, ReverseMigrationBringsObjectBack) {
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  client_.call(counter, "inc");
  offload(counter);
  EXPECT_FALSE(client_.is_local(counter.id));

  const ObjectId ids[] = {counter.id};
  surrogate_ep_.migrate_objects(ids);
  EXPECT_TRUE(client_.is_local(counter.id));
  EXPECT_FALSE(surrogate_.is_local(counter.id));
  EXPECT_EQ(client_.call(counter, "get").as_int(), 1);
}

}  // namespace
}  // namespace aide::rpc
