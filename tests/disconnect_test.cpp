// Disconnected operation (ISSUE 9): the partition detector's threshold
// behaviour, the coalescing redo log, the EndpointStats aggregation
// completeness differential, and the platform-level
// hoard / journal / reconcile / resume lifecycle.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "netsim/link.hpp"
#include "platform/platform.hpp"
#include "rpc/partition_detector.hpp"
#include "tests/test_util.hpp"
#include "vm/redo_log.hpp"

namespace aide {
namespace {

using aide::test::make_test_registry;
using vm::DisconnectLog;
using vm::ObjectRef;
using vm::RedoEntry;
using vm::Value;

// --- partition detector -------------------------------------------------------

rpc::PartitionPolicy detector_policy() {
  rpc::PartitionPolicy p;
  p.enabled = true;
  p.consecutive_timeouts = 3;
  p.silence_after = sim_ms(60);
  return p;
}

TEST(PartitionDetectorTest, TableDrivenThresholds) {
  // One event stream per row; `suspected` is evaluated at `ask_at` after the
  // stream has been applied. Transient loss (timeouts broken up by any
  // delivery, or silence shorter than the floor) must never trip; sustained
  // silence plus consecutive timeouts always trips, at a deterministic time.
  struct Event {
    enum Kind : std::uint8_t { delivery, timeout } kind;
    SimTime at;
  };
  struct Case {
    const char* label;
    bool enabled;
    std::vector<Event> events;
    SimTime ask_at;
    bool expect;
  };
  const Case cases[] = {
      {"no traffic at all: nothing to suspect",
       true,
       {},
       sim_ms(500),
       false},
      {"transient: every burst of loss ends in a delivery",
       true,
       {{Event::delivery, sim_ms(1)},
        {Event::timeout, sim_ms(10)},
        {Event::timeout, sim_ms(20)},
        {Event::delivery, sim_ms(25)},
        {Event::timeout, sim_ms(90)},
        {Event::timeout, sim_ms(95)},
        {Event::delivery, sim_ms(99)}},
       sim_ms(300),
       false},
      {"timeouts without silence: recent delivery vetoes",
       true,
       {{Event::delivery, sim_ms(100)},
        {Event::timeout, sim_ms(110)},
        {Event::timeout, sim_ms(120)},
        {Event::timeout, sim_ms(130)},
        {Event::timeout, sim_ms(140)}},
       sim_ms(150),  // silence = 50 ms < 60 ms floor
       false},
      {"silence without timeouts: an idle link is not a partition",
       true,
       {{Event::delivery, sim_ms(1)},
        {Event::timeout, sim_ms(400)},
        {Event::timeout, sim_ms(410)}},
       sim_ms(500),  // only 2 consecutive timeouts
       false},
      {"sustained: both axes past threshold",
       true,
       {{Event::delivery, sim_ms(100)},
        {Event::timeout, sim_ms(120)},
        {Event::timeout, sim_ms(140)},
        {Event::timeout, sim_ms(160)}},
       sim_ms(160),  // silence = 60 ms, inclusive edge
       true},
      {"disabled policy never trips, whatever the stream",
       false,
       {{Event::timeout, sim_ms(100)},
        {Event::timeout, sim_ms(200)},
        {Event::timeout, sim_ms(300)},
        {Event::timeout, sim_ms(400)}},
       sim_sec(10),
       false},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    rpc::PartitionDetector det;
    auto pol = detector_policy();
    pol.enabled = c.enabled;
    det.set_policy(pol);
    for (const Event& e : c.events) {
      if (e.kind == Event::delivery) {
        det.note_delivery(e.at);
      } else {
        det.note_timeout(e.at);
      }
    }
    EXPECT_EQ(det.suspected(c.ask_at), c.expect);
  }
}

TEST(PartitionDetectorTest, TripTimeIsDeterministic) {
  // With a delivery at T and timeouts after, the detector trips at exactly
  // T + silence_after (once the count threshold is met) — not a tick before.
  rpc::PartitionDetector det;
  det.set_policy(detector_policy());
  det.note_delivery(sim_ms(200));
  det.note_timeout(sim_ms(210));
  det.note_timeout(sim_ms(220));
  det.note_timeout(sim_ms(230));
  EXPECT_EQ(det.consecutive_timeouts(), 3u);
  EXPECT_FALSE(det.suspected(sim_ms(260) - 1));
  EXPECT_TRUE(det.suspected(sim_ms(260)));
  EXPECT_TRUE(det.suspected(sim_sec(5)));
}

TEST(PartitionDetectorTest, ResetClearsBothAxes) {
  rpc::PartitionDetector det;
  det.set_policy(detector_policy());
  det.note_delivery(sim_ms(1));
  for (int i = 0; i < 5; ++i) det.note_timeout(sim_ms(100 + 10 * i));
  ASSERT_TRUE(det.suspected(sim_ms(200)));
  det.reset(sim_ms(200));  // new connection epoch
  EXPECT_EQ(det.consecutive_timeouts(), 0u);
  EXPECT_FALSE(det.suspected(sim_ms(200)));
  EXPECT_FALSE(det.suspected(sim_ms(259)));
  EXPECT_TRUE(det.suspected(sim_ms(260) + 0) == false);  // count is zero again
}

// --- redo log -----------------------------------------------------------------

constexpr ObjectId kObjA{100};
constexpr ObjectId kObjB{101};
constexpr ObjectId kUnwatched{999};

DisconnectLog watched_log() {
  DisconnectLog log;
  log.watch({kObjA, kObjB});
  return log;
}

TEST(DisconnectLogTest, UnwatchedMutationsAreIgnored) {
  DisconnectLog log = watched_log();
  log.record_field(kUnwatched, 0, Value{1});
  log.record_array(kUnwatched, 3, 7);
  log.record_chars(kUnwatched, 0, "xy");
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.ops_journaled(), 0u);
  EXPECT_TRUE(log.watches(kObjA));
  EXPECT_FALSE(log.watches(kUnwatched));
}

TEST(DisconnectLogTest, FieldCoalescingKeepsLastWriteOnly) {
  DisconnectLog log = watched_log();
  log.record_field(kObjA, 0, Value{std::int64_t{1}});
  log.record_field(kObjA, 0, Value{std::int64_t{2}});
  log.record_field(kObjA, 0, Value{std::int64_t{3}});
  EXPECT_EQ(log.ops_journaled(), 3u);
  EXPECT_EQ(log.ops_coalesced(), 2u);
  const auto order = log.replay_order();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0]->kind, RedoEntry::Kind::field);
  EXPECT_EQ(order[0]->value.as_int(), 3);
}

TEST(DisconnectLogTest, DistinctLocationsDoNotCoalesce) {
  DisconnectLog log = watched_log();
  log.record_field(kObjA, 0, Value{std::int64_t{1}});
  log.record_field(kObjA, 1, Value{std::int64_t{2}});   // different field
  log.record_field(kObjB, 0, Value{std::int64_t{3}});   // different object
  log.record_array(kObjA, 0, 4);                        // different kind
  EXPECT_EQ(log.entries(), 4u);
  EXPECT_EQ(log.ops_coalesced(), 0u);
}

TEST(DisconnectLogTest, CoalescedWriteSplicesToTheBack) {
  // A re-written location must replay in its *latest* position, not its
  // first: [A=1, B=2, A=3] replays as [B=2, A=3].
  DisconnectLog log = watched_log();
  log.record_field(kObjA, 0, Value{std::int64_t{1}});
  log.record_field(kObjB, 0, Value{std::int64_t{2}});
  log.record_field(kObjA, 0, Value{std::int64_t{3}});
  const auto order = log.replay_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0]->obj, kObjB);
  EXPECT_EQ(order[1]->obj, kObjA);
  EXPECT_EQ(order[1]->value.as_int(), 3);
}

TEST(DisconnectLogTest, OverlappingCharsRangesStayOrdered) {
  // Chars writes coalesce only on an exact (offset, length) match. An
  // overlapping-but-different range is a distinct entry, and splice-to-back
  // keeps replay order equal to last-write order, so replaying the log over
  // the pre-disconnect bytes reproduces the final buffer exactly:
  //   "abcd"@0, "xy"@2, "efgh"@0  ->  replay ["xy"@2, "efgh"@0]  ->  "efgh".
  DisconnectLog log = watched_log();
  log.record_chars(kObjA, 0, "abcd");
  log.record_chars(kObjA, 2, "xy");
  log.record_chars(kObjA, 0, "efgh");  // same (offset, len): coalesces
  EXPECT_EQ(log.ops_journaled(), 3u);
  EXPECT_EQ(log.ops_coalesced(), 1u);
  const auto order = log.replay_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0]->key, 2u);
  EXPECT_EQ(order[0]->data, "xy");
  EXPECT_EQ(order[1]->key, 0u);
  EXPECT_EQ(order[1]->data, "efgh");

  // Same offset, different length: NOT the same location.
  log.record_chars(kObjA, 0, "zz");
  EXPECT_EQ(log.entries(), 3u);
  EXPECT_EQ(log.ops_coalesced(), 1u);
}

TEST(DisconnectLogTest, ClearEntriesKeepsWatchSetAndCounters) {
  DisconnectLog log = watched_log();
  log.record_field(kObjA, 0, Value{std::int64_t{1}});
  log.record_field(kObjA, 0, Value{std::int64_t{2}});
  log.clear_entries();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.ops_journaled(), 2u);   // counters survive (stats cursors)
  EXPECT_EQ(log.ops_coalesced(), 1u);
  EXPECT_TRUE(log.watches(kObjA));      // still journaling the same set
  log.record_field(kObjA, 0, Value{std::int64_t{3}});
  EXPECT_EQ(log.entries(), 1u);

  log.reset();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.ops_journaled(), 0u);
  EXPECT_EQ(log.watched_count(), 0u);
  EXPECT_FALSE(log.watches(kObjA));
}

// --- EndpointStats aggregation completeness -----------------------------------

TEST(EndpointStatsTest, AccumulateSumsEveryField) {
  // Differential proof that operator+= covers *every* counter: the struct is
  // all uint64_t, so view it as a flat array, populate each slot with a
  // distinct nonzero value, accumulate into a zeroed struct, and demand
  // equality slot-for-slot. A counter added to the struct but forgotten in
  // operator+= leaves a zero slot and fails here.
  constexpr std::size_t kFields =
      sizeof(rpc::EndpointStats) / sizeof(std::uint64_t);
  static_assert(sizeof(rpc::EndpointStats) == kFields * sizeof(std::uint64_t),
                "EndpointStats must stay a flat array of uint64_t counters");
  using Raw = std::array<std::uint64_t, kFields>;

  Raw raw{};
  for (std::size_t i = 0; i < kFields; ++i) {
    raw[i] = i + 1;
  }
  const auto populated = std::bit_cast<rpc::EndpointStats>(raw);

  rpc::EndpointStats sum{};
  sum += populated;
  EXPECT_EQ(std::bit_cast<Raw>(sum), raw);

  sum += populated;  // and again: sums, not overwrites
  const Raw twice = std::bit_cast<Raw>(sum);
  for (std::size_t i = 0; i < kFields; ++i) {
    EXPECT_EQ(twice[i], 2 * (i + 1)) << "field index " << i;
  }
}

// --- platform lifecycle -------------------------------------------------------

namespace pf = aide::platform;

pf::PlatformConfig disconnect_config() {
  pf::PlatformConfig cfg;
  cfg.client_heap = 8 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;
  cfg.client_gc_alloc_count_threshold = 8;
  cfg.client_gc_alloc_bytes_divisor = 512;
  cfg.disconnect.enabled = true;
  cfg.disconnect.probe_interval = sim_ms(10);
  return cfg;
}

// Offloaded fixture with a Counter at 5 that the test forces remote.
ObjectRef offloaded_counter(pf::Platform& p) {
  vm::Vm& client = p.client();
  const ObjectRef device = client.new_object("Device");
  client.add_root(device);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 4; ++i) {
    client.call(device, "beep");
    client.call(counter, "inc");
  }
  client.call(counter, "inc");
  const ObjectRef holder = client.new_ref_array(8);
  client.add_root(holder);
  for (int i = 0; i < 4; ++i) {
    const ObjectRef chunk = client.new_char_array(30 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  EXPECT_TRUE(p.offload_now(std::int64_t{1}).has_value());
  if (client.is_local(counter.id)) {
    const ObjectId ids[] = {counter.id};
    p.client_endpoint().migrate_objects(ids);
  }
  EXPECT_FALSE(client.is_local(counter.id));
  return counter;
}

// Allocate enough garbage to force at least one client GC (and with it the
// platform's on_gc housekeeping: reconnect probing while disconnected).
void force_gc(vm::Vm& client, int rounds = 3) {
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 12; ++i) {
      (void)client.new_object("Pair");
    }
  }
}

TEST(PlatformDisconnectTest, OutageHoardsJournalsReconcilesAndResumes) {
  auto cfg = disconnect_config();
  // The outage must outlive the whole detect-and-journal phase: invocation
  // exits probe the link, and a probe that lands after the outage ends
  // reconciles immediately (fast resume), collapsing the observable window.
  cfg.fault_plan.outages.push_back({sim_sec(1), sim_ms(2600)});
  pf::Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef counter = offloaded_counter(p);
  ASSERT_LT(p.clock().now(), sim_sec(1));
  const std::size_t surrogate_objects = p.surrogate().heap().object_count();
  ASSERT_GT(surrogate_objects, 0u);

  client.work(sim_ms(1500));  // into the outage
  // The first remote touch exhausts its retries, the detector trips, and the
  // platform enters disconnected mode instead of declaring the surrogate
  // dead; the operation itself completes against the hoarded replica.
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  ASSERT_TRUE(p.disconnected());
  EXPECT_EQ(p.mode(), pf::Platform::Mode::disconnected);
  EXPECT_FALSE(p.surrogate_dead());
  EXPECT_TRUE(p.failures().empty());
  ASSERT_EQ(p.disconnects().size(), 1u);
  EXPECT_EQ(p.disconnects()[0].objects_hoarded, surrogate_objects);
  EXPECT_GT(p.disconnects()[0].bytes_hoarded, 0u);
  EXPECT_FALSE(p.disconnects()[0].resumed);
  // The surrogate keeps its originals — they are the replay target.
  EXPECT_EQ(p.surrogate().heap().object_count(), surrogate_objects);
  EXPECT_TRUE(client.is_local(counter.id));
  EXPECT_EQ(p.client_endpoint().stats().disconnects_detected, 1u);

  // Disconnected execution: local, journaled, coalesced.
  for (int i = 0; i < 3; ++i) {
    client.call(counter, "inc");
  }
  EXPECT_EQ(client.call(counter, "get").as_int(), 8);
  EXPECT_GE(p.disconnect_log().ops_journaled(), 3u);
  EXPECT_GE(p.disconnect_log().ops_coalesced(), 2u);  // same (obj, field)
  EXPECT_GE(p.disconnect_log().entries(), 1u);

  // Past the outage a GC tick probes the link, reconciles, and resumes.
  client.work(sim_sec(1));
  force_gc(client);
  ASSERT_FALSE(p.disconnected());
  ASSERT_EQ(p.client_endpoint().reconciles().size(), 1u);
  const rpc::ReconcileTrace& t = p.client_endpoint().reconciles()[0];
  EXPECT_TRUE(t.committed);
  EXPECT_TRUE(t.applied_on_peer);
  EXPECT_GE(t.entries, 1u);
  EXPECT_LT(t.begin, t.prepare_acked);
  EXPECT_LT(t.prepare_acked, t.commit_acked);
  EXPECT_TRUE(p.disconnects()[0].resumed);
  EXPECT_EQ(p.disconnects()[0].reconciles, 1u);
  EXPECT_GE(p.disconnects()[0].entries_replayed, 1u);

  // Stats made it to the endpoint.
  const auto& stats = p.client_endpoint().stats();
  EXPECT_EQ(stats.reconciles_completed, 1u);
  EXPECT_GE(stats.reconcile_replayed_ops, 1u);
  EXPECT_GE(stats.ops_journaled, 3u);
  EXPECT_GE(stats.journal_coalesced, 2u);

  // The replica was dropped; the surrogate's replayed original is
  // authoritative and remotely reachable again.
  EXPECT_FALSE(client.is_local(counter.id));
  const vm::Object* remote = p.surrogate().find_object(counter.id);
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->fields[0].as_int(), 8);
  EXPECT_EQ(client.call(counter, "get").as_int(), 8);
  EXPECT_EQ(client.call(counter, "inc").as_int(), 9);
  EXPECT_TRUE(p.disconnect_log().empty());
}

TEST(PlatformDisconnectTest, PermanentOutageRunsDisconnectedForever) {
  auto cfg = disconnect_config();
  cfg.fault_plan.outages.push_back({sim_sec(1), netsim::FaultPlan::kNever});
  pf::Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef counter = offloaded_counter(p);

  client.work(sim_sec(2));
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  ASSERT_TRUE(p.disconnected());
  for (int i = 0; i < 3; ++i) client.call(counter, "inc");

  // Probes keep failing; the platform stays disconnected but fully usable.
  client.work(sim_sec(5));
  force_gc(client);
  EXPECT_TRUE(p.disconnected());
  EXPECT_FALSE(p.surrogate_dead());
  EXPECT_TRUE(p.client_endpoint().reconciles().empty());
  EXPECT_FALSE(p.disconnects()[0].resumed);
  EXPECT_GE(p.disconnect_log().entries(), 1u);  // log retained for later
  EXPECT_EQ(client.call(counter, "get").as_int(), 8);
}

TEST(PlatformDisconnectTest, RepeatedFlapDisconnectsAndResumesEachTime) {
  auto cfg = disconnect_config();
  // Down 1 s, up 2 s, repeating from t = 1 s. The down window has to cover
  // the whole detection sequence — ~375 ms of timeouts and backoff to abort,
  // plus the teardown's own flush retries — or the invocation-exit probe
  // lands after the outage and reconciles before the test can look.
  cfg.fault_plan =
      netsim::make_flap_plan(sim_sec(1), sim_sec(1), sim_sec(2));
  pf::Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef counter = offloaded_counter(p);

  int expected = 5;
  for (int lap = 0; lap < 2; ++lap) {
    // Walk into the next down window and touch remote state.
    const SimTime down = sim_sec(1) + lap * (sim_sec(1) + sim_sec(2));
    if (p.clock().now() < down + sim_ms(50)) {
      client.work(down + sim_ms(50) - p.clock().now());
    }
    client.call(counter, "inc");
    ++expected;
    EXPECT_TRUE(p.disconnected()) << "lap " << lap;
    // Walk into the following up window and let a GC tick reconcile.
    client.work(down + sim_sec(1) + sim_ms(100) - p.clock().now());
    force_gc(client);
    EXPECT_FALSE(p.disconnected()) << "lap " << lap;
    EXPECT_EQ(client.call(counter, "get").as_int(), expected);
    ++expected;  // `get`+`inc` below keeps state moving between laps
    client.call(counter, "inc");
  }
  EXPECT_EQ(p.disconnects().size(), 2u);
  EXPECT_TRUE(p.disconnects()[0].resumed);
  EXPECT_TRUE(p.disconnects()[1].resumed);
  EXPECT_EQ(p.client_endpoint().stats().disconnects_detected, 2u);
  EXPECT_EQ(p.client_endpoint().stats().reconciles_completed, 2u);
}

TEST(PlatformDisconnectTest, ArmedButFaultFreePolicyChangesNothing) {
  // The detector is passive: with the policy armed but no fault injected,
  // the run is byte-identical to the same run with the policy off.
  auto armed = disconnect_config();
  auto off = disconnect_config();
  off.disconnect.enabled = false;

  std::uint64_t results[2];
  SimTime ends[2];
  rpc::EndpointStats stats[2];
  int idx = 0;
  for (auto* cfg : {&armed, &off}) {
    pf::Platform p(make_test_registry(), *cfg);
    const ObjectRef counter = offloaded_counter(p);
    for (int i = 0; i < 6; ++i) p.client().call(counter, "inc");
    results[idx] = static_cast<std::uint64_t>(
        p.client().call(counter, "get").as_int());
    ends[idx] = p.clock().now();
    stats[idx] = p.client_endpoint().stats();
    ++idx;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(ends[0], ends[1]);
  EXPECT_TRUE(stats[0] == stats[1]);
  EXPECT_EQ(stats[0].disconnects_detected, 0u);
  EXPECT_EQ(stats[0].ops_journaled, 0u);
}

TEST(PlatformDisconnectTest, DisabledPolicyStillTearsDownOnFailure) {
  // Regression guard on the pre-existing path: with the policy off, a dead
  // link still produces the PR 1 teardown (surrogate dead, state reclaimed).
  auto cfg = disconnect_config();
  cfg.disconnect.enabled = false;
  cfg.fault_plan.outages.push_back({sim_sec(1), netsim::FaultPlan::kNever});
  pf::Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef counter = offloaded_counter(p);
  client.work(sim_sec(2));
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  EXPECT_TRUE(p.surrogate_dead());
  EXPECT_FALSE(p.disconnected());
  EXPECT_EQ(p.failures().size(), 1u);
  EXPECT_TRUE(p.disconnects().empty());
}

// --- proactive recall on a degrading link -------------------------------------

TEST(PlatformRecallTest, DegradingLinkRecallsPrefetchEligibleObjects) {
  // Run a real application (100% effect-IR coverage, so verify() proves
  // prefetch-eligible classes) with a degrade threshold any real RTT
  // exceeds: once the estimator primes, the next GC tick recalls the
  // eligible working set while the link still works.
  const auto& app = apps::app_by_name("Dia");
  apps::AppParams params;
  params.image_size = 64;
  params.layers = 3;
  params.filter_passes = 3;

  pf::PlatformConfig cfg;
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  cfg.disconnect.enabled = true;
  cfg.disconnect.degrade_rtt = 1;  // 1 ns: any primed estimate trips it

  std::uint64_t baseline = 0;
  {
    auto reg = std::make_shared<vm::ClassRegistry>();
    app.register_classes(*reg);
    SimClock clock;
    vm::VmConfig vcfg;
    vcfg.heap_capacity = 64 << 20;
    vm::Vm vm(vcfg, reg, clock);
    baseline = app.run(vm, params);
  }

  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  pf::Platform p(reg, cfg);
  struct Offloader : vm::VmHooks {
    explicit Offloader(pf::Platform& p) : p_(p) {}
    void on_gc(NodeId node, const vm::GcReport&) override {
      if (node != NodeId{1} || ++cycles_ != 2) return;
      if (!p_.offloaded()) p_.offload_now(std::int64_t{1});
    }
    pf::Platform& p_;
    int cycles_ = 0;
  } offloader(p);
  p.client().add_hooks(&offloader);
  const std::uint64_t checksum = app.run(p.client(), params);
  p.client().remove_hooks(&offloader);

  EXPECT_EQ(checksum, baseline);
  ASSERT_TRUE(p.offloaded());
  ASSERT_GE(p.recalls().size(), 1u);
  EXPECT_GT(p.recalls()[0].objects, 0u);
  EXPECT_GT(p.recalls()[0].bytes, 0u);
  // A recall is a migration home, not a teardown: the platform stays
  // connected and the surrogate stays alive.
  EXPECT_FALSE(p.disconnected());
  EXPECT_FALSE(p.surrogate_dead());
}

TEST(PlatformRecallTest, NoDegradeThresholdMeansNoRecalls) {
  auto cfg = disconnect_config();  // degrade_rtt = 0: proactive path off
  pf::Platform p(make_test_registry(), cfg);
  const ObjectRef counter = offloaded_counter(p);
  for (int i = 0; i < 8; ++i) p.client().call(counter, "inc");
  force_gc(p.client());
  EXPECT_TRUE(p.recalls().empty());
}

}  // namespace
}  // namespace aide
