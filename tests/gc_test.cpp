// Tests for the mark-and-sweep collector: reachability through fields,
// frames, external/driver roots and statics; sweep of garbage; GC reports;
// automatic triggering thresholds; the out-of-memory path and the low-memory
// rescue handler.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tests/test_util.hpp"
#include "vm/hooks.hpp"
#include "vm/vm.hpp"

namespace aide::vm {
namespace {

using aide::test::make_test_registry;

class GcTest : public ::testing::Test {
 protected:
  GcTest() : registry_(make_test_registry()), vm_(cfg(), registry_, clock_) {}

  static VmConfig cfg() {
    VmConfig c;
    c.node = NodeId{1};
    c.heap_capacity = 256 * 1024;
    c.gc_alloc_count_threshold = 1 << 30;  // no automatic GC unless asked
    c.gc_alloc_bytes_divisor = 0;
    return c;
  }

  std::shared_ptr<ClassRegistry> registry_;
  SimClock clock_;
  Vm vm_;
};

TEST_F(GcTest, UnreachableObjectCollected) {
  const ObjectRef garbage = vm_.new_object("Pair");
  (void)garbage;  // driver-rooted until we clear
  vm_.clear_driver_roots();
  const auto report = vm_.collect_garbage();
  EXPECT_GT(report.freed, 0);
  EXPECT_EQ(vm_.heap().object_count(), 0u);
}

TEST_F(GcTest, ExternallyRootedObjectSurvives) {
  const ObjectRef pair = vm_.new_object("Pair");
  vm_.add_root(pair);
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(pair.id));

  vm_.remove_root(pair);
  vm_.collect_garbage();
  EXPECT_FALSE(vm_.is_local(pair.id));
}

TEST_F(GcTest, DriverLocalsAreRootsUntilCleared) {
  const ObjectRef pair = vm_.new_object("Pair");
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(pair.id));  // driver root keeps it
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_FALSE(vm_.is_local(pair.id));
}

TEST_F(GcTest, ReachabilityThroughFieldChain) {
  const ObjectRef a = vm_.new_object("Holder");
  const ObjectRef b = vm_.new_object("Holder");
  const ObjectRef c = vm_.new_object("Pair");
  vm_.put_field(a, FieldId{0}, Value{b});
  vm_.put_field(b, FieldId{0}, Value{c});
  vm_.add_root(a);
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(a.id));
  EXPECT_TRUE(vm_.is_local(b.id));
  EXPECT_TRUE(vm_.is_local(c.id));

  vm_.put_field(a, FieldId{0}, Value{});
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(a.id));
  EXPECT_FALSE(vm_.is_local(b.id));
  EXPECT_FALSE(vm_.is_local(c.id));
}

TEST_F(GcTest, CyclesAreCollected) {
  const ObjectRef a = vm_.new_object("Holder");
  const ObjectRef b = vm_.new_object("Holder");
  vm_.put_field(a, FieldId{0}, Value{b});
  vm_.put_field(b, FieldId{0}, Value{a});
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_EQ(vm_.heap().object_count(), 0u);
}

TEST_F(GcTest, StaticsAreRoots) {
  const ObjectRef pair = vm_.new_object("Pair");
  vm_.put_static("Calc", "memory", Value{pair});
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(pair.id));
  vm_.put_static("Calc", "memory", Value{});
  vm_.collect_garbage();
  EXPECT_FALSE(vm_.is_local(pair.id));
}

TEST_F(GcTest, ExtraRootsProviderConsulted) {
  const ObjectRef pair = vm_.new_object("Pair");
  const ObjectId pinned = pair.id;
  bool enabled = true;
  vm_.set_extra_roots_provider(
      [&](const std::function<void(ObjectId)>& visit) {
        if (enabled) visit(pinned);
      });
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_TRUE(vm_.is_local(pinned));
  enabled = false;
  vm_.collect_garbage();
  EXPECT_FALSE(vm_.is_local(pinned));
}

TEST_F(GcTest, RefsHeldDuringMethodExecutionSurvive) {
  // A method allocates an object, forces a GC, and uses the object after —
  // the frame-local (JNI-style) root set must keep it alive.
  auto reg = make_test_registry();
  ClassBuilder cb("Alloc8");
  cb.method("make_and_use", [](Vm& ctx, ObjectRef, auto) -> Value {
    const ObjectRef tmp = ctx.new_object("Pair");
    ctx.put_field(tmp, FieldId{0}, Value{41});
    ctx.collect_garbage();
    return Value{ctx.get_field(tmp, FieldId{0}).as_int() + 1};
  });
  const ClassId alloc_cls = reg->register_class(cb.build());

  SimClock clock;
  Vm vm(cfg(), reg, clock);
  const ObjectRef a = vm.new_object(alloc_cls);
  EXPECT_EQ(vm.call(a, "make_and_use").as_int(), 42);
}

TEST_F(GcTest, ReportFieldsConsistent) {
  const ObjectRef keep = vm_.new_object("Pair");
  vm_.add_root(keep);
  vm_.new_object("Pair");
  vm_.clear_driver_roots();
  const auto report = vm_.collect_garbage();
  EXPECT_EQ(report.used_before - report.freed, report.used_after);
  EXPECT_EQ(report.capacity, 256 * 1024);
  EXPECT_EQ(report.live_objects, 1);
  EXPECT_GT(report.cycle, 0u);
  EXPECT_GT(report.free_fraction(), 0.9);
}

TEST_F(GcTest, OnFreeHookFires) {
  struct FreeHooks : VmHooks {
    int frees = 0;
    void on_free(NodeId, ObjectId, ClassId, std::int64_t, SimTime) override {
      ++frees;
    }
  } hooks;
  vm_.add_hooks(&hooks);
  vm_.new_object("Pair");
  vm_.new_object("Pair");
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_EQ(hooks.frees, 2);
}

TEST_F(GcTest, OnGcHookFires) {
  struct GcHooks : VmHooks {
    int cycles = 0;
    void on_gc(NodeId, const GcReport&) override { ++cycles; }
  } hooks;
  vm_.add_hooks(&hooks);
  vm_.collect_garbage();
  vm_.collect_garbage();
  EXPECT_EQ(hooks.cycles, 2);
}

TEST(GcAutoTest, AllocCountThresholdTriggersGc) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 8 << 20;
  c.gc_alloc_count_threshold = 100;
  c.gc_alloc_bytes_divisor = 0;
  Vm vm(c, reg, clock);
  for (int i = 0; i < 250; ++i) {
    vm.new_object("Pair");
    vm.clear_driver_roots();
  }
  EXPECT_GE(vm.stats().gc_cycles, 2u);
}

TEST(GcAutoTest, AllocBytesThresholdTriggersGc) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 1 << 20;
  c.gc_alloc_count_threshold = 1 << 30;
  c.gc_alloc_bytes_divisor = 8;  // gc every 128 KB allocated
  Vm vm(c, reg, clock);
  for (int i = 0; i < 10; ++i) {
    vm.new_char_array(64 * 1024);
    vm.clear_driver_roots();
  }
  EXPECT_GE(vm.stats().gc_cycles, 3u);
}

TEST(GcAutoTest, OutOfMemoryThrowsWhenNothingCollectable) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 64 * 1024;
  Vm vm(c, reg, clock);
  const ObjectRef big = vm.new_char_array(48 * 1024);
  vm.add_root(big);
  EXPECT_THROW(vm.new_char_array(48 * 1024), VmError);
  try {
    vm.new_char_array(48 * 1024);
    FAIL() << "expected out_of_memory";
  } catch (const VmError& e) {
    EXPECT_EQ(e.code(), VmErrorCode::out_of_memory);
  }
}

TEST(GcAutoTest, GarbageIsCollectedInsteadOfThrowing) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 64 * 1024;
  Vm vm(c, reg, clock);
  // Repeatedly allocate garbage larger than half the heap; GC must reclaim.
  for (int i = 0; i < 20; ++i) {
    vm.new_char_array(40 * 1024);
    vm.clear_driver_roots();
  }
  SUCCEED();
}

TEST(GcAutoTest, LowMemoryHandlerRescuesAllocation) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 64 * 1024;
  Vm vm(c, reg, clock);

  ObjectRef hog = vm.new_char_array(48 * 1024);
  vm.add_root(hog);
  int calls = 0;
  vm.set_low_memory_handler([&](Vm& v) {
    ++calls;
    v.remove_root(hog);  // "offload": release the hog so GC can reclaim it
    return true;
  });
  vm.clear_driver_roots();
  const ObjectRef fresh = vm.new_char_array(48 * 1024);
  EXPECT_TRUE(vm.is_local(fresh.id));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(vm.stats().low_memory_rescues, 1u);
}

TEST(GcAutoTest, GcChargesSimulatedTime) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig c;
  c.heap_capacity = 8 << 20;
  c.gc_cost_per_live_object = sim_us(1);
  Vm vm(c, reg, clock);
  const ObjectRef keep = vm.new_object("Pair");
  vm.add_root(keep);
  const SimTime before = clock.now();
  vm.collect_garbage();
  EXPECT_GE(clock.now(), before + sim_us(1));
}

}  // namespace
}  // namespace aide::vm
