// Tests for the partitioning algorithms: Stoer–Wagner global minimum cut
// (validated against a brute-force oracle on random graphs), and the paper's
// modified MINCUT candidate-series heuristic (pinning, candidate ordering,
// cut statistics, memory accounting).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/mincut.hpp"

namespace aide::graph {
namespace {

ComponentKey cls(std::uint32_t id) { return ComponentKey{ClassId{id}}; }

ExecGraph random_graph(Rng& rng, std::size_t n, double edge_prob) {
  ExecGraph g;
  for (std::size_t i = 0; i < n; ++i) g.node(cls(static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < edge_prob) {
        EdgeInfo info;
        info.invocations = rng.next_below(20) + 1;
        info.bytes = rng.next_below(10000);
        g.set_edge(cls(static_cast<std::uint32_t>(i)),
                   cls(static_cast<std::uint32_t>(j)), info);
      }
    }
  }
  return g;
}

double cut_weight_of(const ExecGraph& g, const EdgeWeightFn& w,
                     const std::unordered_set<ComponentKey>& side) {
  double total = 0;
  for (const auto& [ekey, einfo] : g.edges()) {
    if (side.contains(ekey.a) != side.contains(ekey.b)) total += w(einfo);
  }
  return total;
}

TEST(EdgeWeightTest, DefaultCombinesBytesAndInteractions) {
  EdgeWeightFn w;
  EdgeInfo e{.invocations = 2, .accesses = 3, .bytes = 100};
  EXPECT_DOUBLE_EQ(w(e), 100.0 + 64.0 * 5);
}

TEST(StoerWagnerTest, TwoNodeGraph) {
  ExecGraph g;
  EdgeInfo e{.invocations = 1, .accesses = 0, .bytes = 36};
  g.set_edge(cls(0), cls(1), e);
  const auto cut = stoer_wagner_min_cut(g);
  EXPECT_DOUBLE_EQ(cut.weight, 100.0);
  EXPECT_EQ(cut.side.size(), 1u);
}

TEST(StoerWagnerTest, BridgeGraphCutsAtBridge) {
  // Two triangles of heavy edges joined by one light bridge.
  ExecGraph g;
  EdgeInfo heavy{.invocations = 0, .accesses = 0, .bytes = 100000};
  EdgeInfo light{.invocations = 0, .accesses = 0, .bytes = 1};
  g.set_edge(cls(0), cls(1), heavy);
  g.set_edge(cls(1), cls(2), heavy);
  g.set_edge(cls(0), cls(2), heavy);
  g.set_edge(cls(3), cls(4), heavy);
  g.set_edge(cls(4), cls(5), heavy);
  g.set_edge(cls(3), cls(5), heavy);
  g.set_edge(cls(2), cls(3), light);

  const auto cut = stoer_wagner_min_cut(g);
  EXPECT_DOUBLE_EQ(cut.weight, 1.0);
  EXPECT_EQ(cut.side.size(), 3u);
}

TEST(StoerWagnerTest, ThrowsOnTrivialGraph) {
  ExecGraph g;
  g.node(cls(0));
  EXPECT_THROW(stoer_wagner_min_cut(g), std::invalid_argument);
}

TEST(BruteForceTest, MatchesHandComputedSquare) {
  // Square with one diagonal: 0-1 (10), 1-2 (1), 2-3 (10), 3-0 (1), 0-2 (1).
  ExecGraph g;
  const auto e = [](std::uint64_t bytes) {
    return EdgeInfo{.invocations = 0, .accesses = 0, .bytes = bytes};
  };
  g.set_edge(cls(0), cls(1), e(10));
  g.set_edge(cls(1), cls(2), e(1));
  g.set_edge(cls(2), cls(3), e(10));
  g.set_edge(cls(3), cls(0), e(1));
  g.set_edge(cls(0), cls(2), e(1));
  const auto cut = brute_force_min_cut(g);
  // Best cut: {0,1} vs {2,3} = 1 + 1 + 1 = 3.
  EXPECT_DOUBLE_EQ(cut.weight, 3.0);
}

// Property: Stoer–Wagner equals the brute-force optimum on random graphs.
class MinCutPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCutPropertyTest, StoerWagnerIsOptimal) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.next_below(6);  // 3..8 nodes
  const ExecGraph g = random_graph(rng, n, 0.7);
  const EdgeWeightFn w;

  const auto sw = stoer_wagner_min_cut(g, w);
  const auto bf = brute_force_min_cut(g, w);
  EXPECT_NEAR(sw.weight, bf.weight, 1e-6)
      << "n=" << n << " seed=" << GetParam();
  // The reported side must actually realize the reported weight.
  EXPECT_NEAR(cut_weight_of(g, w, sw.side), sw.weight, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MinCutPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 40));

TEST(ModifiedMincutTest, EmptyAndTrivialGraphs) {
  ExecGraph g;
  EXPECT_TRUE(modified_mincut(g).empty());
  g.node(cls(0));
  EXPECT_TRUE(modified_mincut(g).empty());
}

TEST(ModifiedMincutTest, AllPinnedYieldsNoCandidates) {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.set_pinned(cls(1), true);
  g.set_edge(cls(0), cls(1), EdgeInfo{.invocations = 1, .accesses = 0, .bytes = 1});
  EXPECT_TRUE(modified_mincut(g).empty());
}

TEST(ModifiedMincutTest, PinnedComponentsNeverOffloaded) {
  Rng rng(5);
  ExecGraph g = random_graph(rng, 8, 0.6);
  g.set_pinned(cls(0), true);
  g.set_pinned(cls(3), true);
  for (const auto& cand : modified_mincut(g)) {
    EXPECT_FALSE(cand.offload.contains(cls(0)));
    EXPECT_FALSE(cand.offload.contains(cls(3)));
  }
}

TEST(ModifiedMincutTest, CandidateSeriesShrinksToOne) {
  // Paper 3.3: the process repeats "until the first partition contains all
  // but one of the nodes"; every intermediate partitioning is a candidate,
  // and their count is smaller than the number of components.
  Rng rng(6);
  ExecGraph g = random_graph(rng, 10, 0.5);
  g.set_pinned(cls(0), true);
  const auto candidates = modified_mincut(g);
  ASSERT_EQ(candidates.size(), 9u);  // 10 nodes, 1 pinned
  EXPECT_LT(candidates.size(), g.node_count());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].offload.size(), 9u - i);
  }
  EXPECT_EQ(candidates.back().offload.size(), 1u);
}

TEST(ModifiedMincutTest, CutStatsMatchDirectComputation) {
  Rng rng(7);
  ExecGraph g = random_graph(rng, 9, 0.6);
  g.set_pinned(cls(2), true);
  const EdgeWeightFn w;
  for (const auto& cand : modified_mincut(g, w)) {
    EXPECT_NEAR(cand.cut_weight, cut_weight_of(g, w, cand.offload), 1e-6);
    std::uint64_t bytes = 0, inv = 0, acc = 0;
    for (const auto& [ekey, einfo] : g.edges()) {
      if (cand.offload.contains(ekey.a) != cand.offload.contains(ekey.b)) {
        bytes += einfo.bytes;
        inv += einfo.invocations;
        acc += einfo.accesses;
      }
    }
    EXPECT_EQ(cand.cut_bytes, bytes);
    EXPECT_EQ(cand.cut_invocations, inv);
    EXPECT_EQ(cand.cut_accesses, acc);
  }
}

TEST(ModifiedMincutTest, MemoryAndTimeAggregation) {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_memory(cls(1), 1000, 2);
  g.add_self_time(cls(1), sim_ms(5));
  g.add_memory(cls(2), 500, 1);
  g.set_edge(cls(0), cls(1), EdgeInfo{.invocations = 1, .accesses = 0, .bytes = 10});
  g.set_edge(cls(1), cls(2), EdgeInfo{.invocations = 1, .accesses = 0, .bytes = 10});

  const auto candidates = modified_mincut(g);
  ASSERT_FALSE(candidates.empty());
  // First candidate offloads both non-pinned components.
  EXPECT_EQ(candidates[0].offload_mem_bytes, 1500);
  EXPECT_EQ(candidates[0].offload_self_time, sim_ms(5));
}

TEST(ModifiedMincutTest, NoPinnedSeedsLargestMemoryComponent) {
  ExecGraph g;
  g.add_memory(cls(0), 100, 1);
  g.add_memory(cls(1), 90000, 1);
  g.add_memory(cls(2), 50, 1);
  g.set_edge(cls(0), cls(1), EdgeInfo{.invocations = 1, .accesses = 0, .bytes = 1});
  g.set_edge(cls(1), cls(2), EdgeInfo{.invocations = 1, .accesses = 0, .bytes = 1});
  for (const auto& cand : modified_mincut(g)) {
    EXPECT_FALSE(cand.offload.contains(cls(1)));
  }
}

TEST(ModifiedMincutTest, GreedyMovesHighestConnectivityFirst) {
  // Pinned hub 0; node 1 interacts heavily with 0, node 2 barely.
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.set_edge(cls(0), cls(1),
             EdgeInfo{.invocations = 0, .accesses = 0, .bytes = 100000});
  g.set_edge(cls(0), cls(2),
             EdgeInfo{.invocations = 0, .accesses = 0, .bytes = 10});
  const auto candidates = modified_mincut(g);
  ASSERT_EQ(candidates.size(), 2u);
  // After the first move, the high-connectivity node 1 joined the client, so
  // the final singleton candidate is node 2.
  EXPECT_TRUE(candidates[1].offload.contains(cls(2)));
  EXPECT_FALSE(candidates[1].offload.contains(cls(1)));
}

TEST(ModifiedMincutTest, DeterministicAcrossRuns) {
  Rng rng(12);
  const ExecGraph g = random_graph(rng, 12, 0.4);
  const auto a = modified_mincut(g);
  const auto b = modified_mincut(g);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offload, b[i].offload);
    EXPECT_DOUBLE_EQ(a[i].cut_weight, b[i].cut_weight);
  }
}

// Property: some candidate in the series is at least as good as plain
// Stoer–Wagner restricted to cuts that respect pinning (sanity: the series
// includes reasonable cuts).
TEST(ModifiedMincutTest, SeriesContainsLightCuts) {
  Rng rng(21);
  const ExecGraph g = random_graph(rng, 10, 0.5);
  const EdgeWeightFn w;
  const auto candidates = modified_mincut(g, w);
  ASSERT_FALSE(candidates.empty());
  double best = candidates[0].cut_weight;
  for (const auto& c : candidates) best = std::min(best, c.cut_weight);
  // The global optimum (unrestricted) is a lower bound for the best
  // candidate; the heuristic should land within a reasonable factor.
  const auto global = stoer_wagner_min_cut(g, w);
  EXPECT_GE(best, global.weight - 1e-9);
}

}  // namespace
}  // namespace aide::graph
