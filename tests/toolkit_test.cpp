// Tests for the managed widget toolkit: registration, window construction,
// painting through the pinned Display, layout, event dispatch, and its
// behaviour under offloading (widgets cluster with the client's Display).
#include <gtest/gtest.h>

#include <memory>

#include "apps/toolkit.hpp"
#include "monitor/monitor.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide::apps {
namespace {

using vm::ObjectRef;
using vm::Value;

class ToolkitTest : public ::testing::Test {
 protected:
  ToolkitTest() {
    registry_ = std::make_shared<vm::ClassRegistry>();
    register_toolkit(*registry_);
    vm::VmConfig cfg;
    cfg.heap_capacity = 16 << 20;
    vm_ = std::make_unique<vm::Vm>(cfg, registry_, clock_);
    display_ = vm_->new_object("Display");
    vm_->add_root(display_);
  }

  std::shared_ptr<vm::ClassRegistry> registry_;
  SimClock clock_;
  std::unique_ptr<vm::Vm> vm_;
  ObjectRef display_;
};

TEST_F(ToolkitTest, RegistrationIsIdempotentAndRich) {
  const auto count = registry_->size();
  register_toolkit(*registry_);
  EXPECT_EQ(registry_->size(), count);
  // At least 14 widgets + window/panel/layout/dispatcher machinery.
  EXPECT_GE(count, 45u);
  EXPECT_TRUE(registry_->contains("ui.Window"));
  EXPECT_TRUE(registry_->contains("ui.ScrollBar"));
}

TEST_F(ToolkitTest, WidgetClassesAreOffloadable) {
  // No widget carries stateful natives — only the Display they paint into is
  // pinned, which is what glues them to the client in practice.
  for (const char* name : {"ui.Button", "ui.Panel", "ui.Window",
                           "ui.EventDispatcher", "ui.FlowLayout"}) {
    EXPECT_FALSE(registry_->get(registry_->find(name)).has_stateful_native())
        << name;
  }
  EXPECT_TRUE(
      registry_->get(registry_->find("Display")).has_stateful_native());
}

TEST_F(ToolkitTest, BuildStandardWindowPopulatesTree) {
  const ObjectRef window =
      build_standard_window(*vm_, display_, "Test", 5, 3);
  const ObjectRef toolbar = vm_->get_field(window, FieldId{1}).as_ref();
  const ObjectRef content = vm_->get_field(window, FieldId{2}).as_ref();
  const ObjectRef toolbar_children =
      vm_->get_field(toolbar, FieldId{0}).as_ref();
  EXPECT_EQ(vm_->call(toolbar_children, "size").as_int(), 5);
  const ObjectRef content_children =
      vm_->get_field(content, FieldId{0}).as_ref();
  EXPECT_EQ(vm_->call(content_children, "size").as_int(), 3 + 11);
}

TEST_F(ToolkitTest, PaintReachesDisplay) {
  const ObjectRef window = build_standard_window(*vm_, display_, "Paint");
  const Value before = vm_->get_field(display_, FieldId{1});
  paint_window(*vm_, window);
  const Value after = vm_->get_field(display_, FieldId{1});
  EXPECT_NE(before, after);  // drawing changed the display checksum
  EXPECT_EQ(vm_->get_field(window, FieldId{5}).as_int(), 1);  // paint count
  paint_window(*vm_, window);
  EXPECT_EQ(vm_->get_field(window, FieldId{5}).as_int(), 2);
}

TEST_F(ToolkitTest, LayoutAssignsDistinctPositions) {
  const ObjectRef window = build_standard_window(*vm_, display_, "Layout", 4);
  const ObjectRef toolbar = vm_->get_field(window, FieldId{1}).as_ref();
  const ObjectRef children = vm_->get_field(toolbar, FieldId{0}).as_ref();
  std::int64_t prev_x = -1;
  for (int i = 0; i < 4; ++i) {
    const ObjectRef w = vm_->call(children, "get", {Value{i}}).as_ref();
    const ObjectRef bounds = vm_->get_field(w, FieldId{0}).as_ref();
    const std::int64_t x = vm_->get_field(bounds, FieldId{0}).as_int();
    EXPECT_GT(x, prev_x);
    prev_x = x;
  }
}

TEST_F(ToolkitTest, DispatchRoutesThroughKeymapDeterministically) {
  const ObjectRef window = build_standard_window(*vm_, display_, "Keys");
  const auto a1 = dispatch_ui_event(*vm_, window, 3);
  const ObjectRef window2 = build_standard_window(*vm_, display_, "Keys");
  const auto a2 = dispatch_ui_event(*vm_, window2, 3);
  EXPECT_EQ(a1, a2);

  // Repeated events accumulate widget state.
  const auto b = dispatch_ui_event(*vm_, window, 3);
  EXPECT_NE(a1, b);
}

TEST_F(ToolkitTest, ThemeStaticsLiveOnClient) {
  (void)build_standard_window(*vm_, display_, "Theme");
  EXPECT_EQ(vm_->get_static("ui.Theme", "fg").as_int(), 0x202020);
}

TEST_F(ToolkitTest, WindowSurvivesForcedOffload) {
  // Transparency for the widget tree: paint before and after migrating
  // everything migratable must produce identical display effects.
  auto reg = std::make_shared<vm::ClassRegistry>();
  register_toolkit(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 16 << 20;
  cfg.auto_offload = false;
  platform::Platform p(reg, cfg);

  const ObjectRef display = p.client().new_object("Display");
  p.client().add_root(display);
  const ObjectRef window =
      build_standard_window(p.client(), display, "Migrate");
  p.client().add_root(window);

  paint_window(p.client(), window);
  const Value checksum_before = p.client().get_field(display, FieldId{1});

  // Reset the display state, offload, repaint remotely.
  p.client().put_field(display, FieldId{1}, Value{0});
  p.offload_now(std::int64_t{1});
  paint_window(p.client(), window);
  EXPECT_EQ(p.client().get_field(display, FieldId{1}), checksum_before);
}

TEST_F(ToolkitTest, MonitorSeesWidgetInteractions) {
  monitor::ExecutionMonitor monitor(registry_);
  vm_->add_hooks(&monitor);
  const ObjectRef window = build_standard_window(*vm_, display_, "Mon");
  paint_window(*vm_, window);
  vm_->remove_hooks(&monitor);
  // The widget classes appear as components with edges to Display.
  const graph::ComponentKey display_comp{registry_->find("Display")};
  const graph::ComponentKey button_comp{registry_->find("ui.Button")};
  EXPECT_NE(monitor.graph().find_edge(button_comp, display_comp), nullptr);
  EXPECT_TRUE(monitor.graph().find_node(display_comp)->pinned);
  EXPECT_FALSE(monitor.graph().find_node(button_comp)->pinned);
}

}  // namespace
}  // namespace aide::apps
