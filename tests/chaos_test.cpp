// Deterministic chaos harness (ISSUE 4 tentpole acceptance).
//
// Two families of adversarial schedules, both derived from a fault-free probe
// run (exact, because the platform is fully deterministic under virtual
// time):
//
//   * ChaosScheduleTest — 25 seeded message-level chaos schedules (loss,
//     reply-leg loss, corruption, duplication, reordering, periodic outages,
//     degraded bandwidth, and combinations) crossed with the five paper
//     applications. Every cell must produce the standalone checksum
//     byte-for-byte, with retry traffic bounded by the per-RPC retry budget.
//
//   * CrashPointSweepTest — the surrogate link is killed at every message
//     boundary of the two-phase migration protocol (PREPARE refused, PREPARE
//     in flight, mid-transfer, COMMIT refused, COMMIT applied but unacked,
//     and immediately after COMMIT). Each kill point must roll back or roll
//     forward to a state whose final output is byte-identical to the
//     standalone run, with no stub left dangling on the client.
//
// This binary owns its main(): `chaos_test --smoke` runs a 5-schedule subset
// (the ctest / CI configuration); the bare binary runs the full 25-schedule
// sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string_view>
#include <vector>

#include "apps/apps.hpp"
#include "netsim/link.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide::chaos {

bool g_smoke = false;

namespace {

constexpr NodeId kClientNode{1};
constexpr std::size_t kFullSchedules = 25;
constexpr std::size_t kSmokeSchedules = 5;

const char* const kApps[] = {"JavaNote", "Dia", "Biomer", "Voxel", "Tracer"};

std::size_t schedule_count() {
  return g_smoke ? kSmokeSchedules : kFullSchedules;
}

// Scaled-down parameters: the full harness runs every app ~30 times.
apps::AppParams chaos_params() {
  apps::AppParams p;
  p.doc_bytes = 48 * 1024;
  p.edits = 16;
  p.scrolls = 20;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 80;
  p.iterations = 4;
  p.field_size = 49;
  p.frames = 4;
  p.columns = 32;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 6;
  return p;
}

// Deterministic early offload (same driver as tests/fault_test.cpp): pins
// the migration instant so schedules can target protocol boundaries.
class ForcedOffload : public vm::VmHooks {
 public:
  explicit ForcedOffload(platform::Platform& p) : p_(p) {}
  void on_gc(NodeId node, const vm::GcReport&) override {
    if (node != kClientNode) return;
    if (++cycles_ < 2) return;
    if (p_.offloaded() || p_.surrogate_dead()) return;
    p_.offload_now(std::int64_t{1});
  }

 private:
  platform::Platform& p_;
  int cycles_ = 0;
};

platform::PlatformConfig chaos_config() {
  platform::PlatformConfig cfg;
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;  // ForcedOffload drives the schedule
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  return cfg;
}

std::uint64_t standalone_checksum(const apps::AppInfo& app,
                                  const apps::AppParams& params) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  vm::Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

struct Outcome {
  std::uint64_t checksum = 0;
  bool offloaded = false;
  bool dead = false;
  SimTime end = 0;
  std::size_t failures = 0;
  std::size_t objects_reclaimed = 0;
  std::size_t stub_count = 0;
  rpc::MigrationTrace migration;
  rpc::EndpointStats client;
  rpc::EndpointStats surrogate;
  netsim::LinkStats link;
};

Outcome run(const apps::AppInfo& app, const apps::AppParams& params,
            const netsim::FaultPlan& plan) {
  auto cfg = chaos_config();
  cfg.fault_plan = plan;
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::Platform p(reg, cfg);
  ForcedOffload forced(p);
  p.client().add_hooks(&forced);
  Outcome o;
  o.checksum = app.run(p.client(), params);
  p.client().remove_hooks(&forced);
  o.offloaded = p.offloaded();
  o.dead = p.surrogate_dead();
  o.end = p.elapsed();
  o.failures = p.failures().size();
  if (!p.failures().empty()) {
    o.objects_reclaimed = p.failures().front().objects_reclaimed;
  }
  o.stub_count = p.client().stub_count();
  if (!p.client_endpoint().migrations().empty()) {
    o.migration = p.client_endpoint().migrations().front();
  }
  o.client = p.client_endpoint().stats();
  o.surrogate = p.surrogate_endpoint().stats();
  o.link = p.link().stats();
  return o;
}

// The 25 seeded schedules, indexed 0..24. Five families, escalating with
// each lap; the probe run anchors the time-targeted families to this app's
// actual offload timeline.
netsim::FaultPlan schedule(std::size_t i, const Outcome& probe) {
  const std::size_t lap = i / 5;
  netsim::FaultPlan plan;
  switch (i % 5) {
    case 0:  // plain message loss, both legs
      plan.drop_probability = 0.02 + 0.015 * static_cast<double>(lap);
      plan.drop_seed = 0x1000 + i;
      break;
    case 1:  // acknowledgement loss only (at-most-once pressure)
      plan.reply_drop_probability = 0.10 + 0.04 * static_cast<double>(lap);
      plan.drop_seed = 0x2000 + i;
      break;
    case 2:  // the chaos trio: corruption, duplication, reordering
      plan.corrupt_probability = 0.02 + 0.01 * static_cast<double>(lap);
      plan.duplicate_probability = 0.04 + 0.02 * static_cast<double>(lap);
      plan.reorder_probability = 0.03 + 0.01 * static_cast<double>(lap);
      plan.chaos_seed = 0x3000 + i;
      break;
    case 3:  // repeating radio blackouts across the whole run
      plan.outage_period = sim_ms(150) + sim_ms(35) * static_cast<int>(lap);
      plan.outage_duration = sim_ms(4) + sim_ms(2) * static_cast<int>(lap);
      plan.outage_phase = probe.migration.begin + sim_ms(3) * static_cast<int>(i);
      break;
    default:  // kitchen sink: loss + chaos + halved bandwidth after offload
      plan.drop_probability = 0.02;
      plan.drop_seed = 0x5000 + i;
      plan.corrupt_probability = 0.015;
      plan.duplicate_probability = 0.03;
      plan.reorder_probability = 0.02;
      plan.chaos_seed = 0x6000 + i;
      plan.degraded.push_back({probe.migration.begin, probe.end, 0.5});
      break;
  }
  return plan;
}

// Satellite family (batched transport): the chaos quartet aimed squarely at
// multi-op frames. Rates run hotter than the base families so nearly every
// run corrupts, drops, duplicates, or reorders at least one batch frame;
// batch atomicity means the application checksum still cannot move — a
// damaged batch is voided and retried as a unit, never partially applied.
netsim::FaultPlan batch_schedule(std::size_t i) {
  const auto lap = static_cast<double>(i / 4);
  netsim::FaultPlan plan;
  switch (i % 4) {
    case 0:  // corrupted batch frames (CRC rejects the whole frame)
      plan.corrupt_probability = 0.05 + 0.02 * lap;
      plan.chaos_seed = 0xBA7C0 + i;
      break;
    case 1:  // dropped batch frames (RTO voids the whole batch)
      plan.drop_probability = 0.05 + 0.02 * lap;
      plan.drop_seed = 0xBA7C1 + i;
      break;
    case 2:  // reordered frames (seq/epoch fence discards stale batches)
      plan.reorder_probability = 0.06 + 0.02 * lap;
      plan.chaos_seed = 0xBA7C2 + i;
      break;
    default:  // duplicated frames (reply cache dedups re-delivered batches)
      plan.duplicate_probability = 0.08 + 0.04 * lap;
      plan.chaos_seed = 0xBA7C3 + i;
      break;
  }
  return plan;
}

class BatchedFrameChaosTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchedFrameChaosTest, DamagedMultiOpFramesRollBackOrRetryAtomically) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  ASSERT_EQ(probe.checksum, expected);
  // The workload genuinely puts multi-op frames on the air; otherwise this
  // family would be testing nothing beyond the base schedules.
  const std::uint64_t probe_batches =
      probe.client.batches_sent + probe.surrogate.batches_sent;
  ASSERT_GT(probe_batches, 0u);

  const std::size_t n = g_smoke ? 4 : 8;
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("batch schedule " + std::to_string(i));
    const Outcome o = run(app, params, batch_schedule(i));
    // No partial application: a batch that executes at all executes whole,
    // so the output is byte-identical whatever happened to its frames.
    EXPECT_EQ(o.checksum, expected);
    EXPECT_LE(o.failures, 1u);
    if (o.dead) {
      EXPECT_EQ(o.stub_count, 0u);
    }
    // Batching stays engaged under chaos — damage must not silently
    // degrade the transport to per-op framing.
    EXPECT_GT(o.client.batches_sent + o.surrogate.batches_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, BatchedFrameChaosTest,
                         ::testing::ValuesIn(kApps));

class ChaosScheduleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosScheduleTest, EverySeededScheduleKeepsOutputByteIdentical) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  ASSERT_TRUE(probe.migration.committed);
  ASSERT_EQ(probe.checksum, expected);

  const int per_rpc_retries = rpc::RetryPolicy{}.max_attempts - 1;
  for (std::size_t i = 0; i < schedule_count(); ++i) {
    SCOPED_TRACE("schedule " + std::to_string(i));
    const Outcome o = run(app, params, schedule(i, probe));
    // The transparency requirement, extended across every chaos mode.
    EXPECT_EQ(o.checksum, expected);
    // At most one surrogate loss; when the run ends degraded, recovery must
    // have repatriated everything (no dangling stub). A surviving surrogate
    // legitimately keeps its offloaded objects (and their client stubs).
    EXPECT_LE(o.failures, 1u);
    if (o.dead) {
      EXPECT_EQ(o.stub_count, 0u);
    }
    // Retry traffic is bounded by the per-RPC retry budget.
    EXPECT_LE(o.client.retries,
              o.client.rpcs_sent * static_cast<std::uint64_t>(per_rpc_retries));
    EXPECT_LE(o.surrogate.retries,
              o.surrogate.rpcs_sent *
                  static_cast<std::uint64_t>(per_rpc_retries));
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ChaosScheduleTest, ::testing::ValuesIn(kApps));

TEST(ChaosDeterminismTest, SameScheduleReproducesIdenticalStatistics) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = chaos_params();
  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);

  const netsim::FaultPlan plan = schedule(7, probe);  // chaos-trio family
  const Outcome a = run(app, params, plan);
  const Outcome b = run(app, params, plan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_TRUE(a.link == b.link);
  EXPECT_TRUE(a.client == b.client);
  EXPECT_TRUE(a.surrogate == b.surrogate);
}

class CrashPointSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashPointSweepTest, LinkDeathAtEveryMigrationBoundaryIsConsistent) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  const rpc::MigrationTrace& t = probe.migration;
  ASSERT_TRUE(t.committed);
  ASSERT_LT(t.begin, t.prepare_acked);
  ASSERT_LT(t.prepare_acked, t.commit_acked);

  // What the kill point must leave behind:
  //   rolled_back     — the batch never left the client; nothing to reclaim.
  //   adopted_unacked — the surrogate adopted the staged batch but the ack
  //                     died; the initiator reports the migration aborted and
  //                     recovery pulls the adopted objects back.
  //   completed       — the migration finished; later death is an ordinary
  //                     mid-invoke failure handled by recovery.
  enum class Expect { rolled_back, adopted_unacked, completed };
  struct KillPoint {
    const char* label;
    SimTime at;
    Expect expect;
  };
  const KillPoint points[] = {
      {"PREPARE refused at send", t.begin, Expect::rolled_back},
      {"PREPARE in flight", t.begin + 1, Expect::rolled_back},
      {"mid-transfer", t.begin + (t.prepare_acked - t.begin) / 2,
       Expect::rolled_back},
      {"COMMIT refused at send", t.prepare_acked, Expect::rolled_back},
      {"COMMIT applied but unacked", t.prepare_acked + 1,
       Expect::adopted_unacked},
      {"immediately after COMMIT", t.commit_acked, Expect::completed},
      {"one tick after COMMIT", t.commit_acked + 1, Expect::completed},
  };
  const std::size_t n_points =
      g_smoke ? 4 : sizeof(points) / sizeof(points[0]);

  for (std::size_t i = 0; i < n_points; ++i) {
    const KillPoint& kp = points[i];
    SCOPED_TRACE(kp.label);
    netsim::FaultPlan plan;
    plan.dead_after = kp.at;
    const Outcome o = run(app, params, plan);
    // Byte-identical output from every crash point: the two-phase protocol
    // never leaves an object half-migrated or doubly-owned.
    EXPECT_EQ(o.checksum, expected);
    EXPECT_TRUE(o.dead);
    EXPECT_EQ(o.failures, 1u);
    EXPECT_EQ(o.stub_count, 0u);
    switch (kp.expect) {
      case Expect::rolled_back:
        EXPECT_FALSE(o.offloaded);
        EXPECT_FALSE(o.migration.committed);
        EXPECT_EQ(o.objects_reclaimed, 0u);
        break;
      case Expect::adopted_unacked:
        EXPECT_FALSE(o.offloaded);
        EXPECT_FALSE(o.migration.committed);
        EXPECT_GT(o.objects_reclaimed, 0u);
        break;
      case Expect::completed:
        EXPECT_TRUE(o.offloaded);
        EXPECT_TRUE(o.migration.committed);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, CrashPointSweepTest, ::testing::ValuesIn(kApps));

}  // namespace
}  // namespace aide::chaos

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") aide::chaos::g_smoke = true;
  }
  return RUN_ALL_TESTS();
}
