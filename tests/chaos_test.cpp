// Deterministic chaos harness (ISSUE 4 tentpole acceptance).
//
// Two families of adversarial schedules, both derived from a fault-free probe
// run (exact, because the platform is fully deterministic under virtual
// time):
//
//   * ChaosScheduleTest — 25 seeded message-level chaos schedules (loss,
//     reply-leg loss, corruption, duplication, reordering, periodic outages,
//     degraded bandwidth, and combinations) crossed with the five paper
//     applications. Every cell must produce the standalone checksum
//     byte-for-byte, with retry traffic bounded by the per-RPC retry budget.
//
//   * CrashPointSweepTest — the surrogate link is killed at every message
//     boundary of the two-phase migration protocol (PREPARE refused, PREPARE
//     in flight, mid-transfer, COMMIT refused, COMMIT applied but unacked,
//     and immediately after COMMIT). Each kill point must roll back or roll
//     forward to a state whose final output is byte-identical to the
//     standalone run, with no stub left dangling on the client.
//
// This binary owns its main(): `chaos_test --smoke` runs a 5-schedule subset
// (the ctest / CI configuration); the bare binary runs the full 25-schedule
// sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string_view>
#include <vector>

#include "apps/apps.hpp"
#include "netsim/link.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide::chaos {

bool g_smoke = false;

namespace {

constexpr NodeId kClientNode{1};
constexpr std::size_t kFullSchedules = 25;
constexpr std::size_t kSmokeSchedules = 5;

const char* const kApps[] = {"JavaNote", "Dia", "Biomer", "Voxel", "Tracer"};

std::size_t schedule_count() {
  return g_smoke ? kSmokeSchedules : kFullSchedules;
}

// Scaled-down parameters: the full harness runs every app ~30 times.
apps::AppParams chaos_params() {
  apps::AppParams p;
  p.doc_bytes = 48 * 1024;
  p.edits = 16;
  p.scrolls = 20;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 80;
  p.iterations = 4;
  p.field_size = 49;
  p.frames = 4;
  p.columns = 32;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 6;
  return p;
}

// Deterministic early offload (same driver as tests/fault_test.cpp): pins
// the migration instant so schedules can target protocol boundaries.
class ForcedOffload : public vm::VmHooks {
 public:
  explicit ForcedOffload(platform::Platform& p) : p_(p) {}
  void on_gc(NodeId node, const vm::GcReport&) override {
    if (node != kClientNode) return;
    if (++cycles_ < 2) return;
    if (p_.offloaded() || p_.surrogate_dead()) return;
    p_.offload_now(std::int64_t{1});
  }

 private:
  platform::Platform& p_;
  int cycles_ = 0;
};

platform::PlatformConfig chaos_config() {
  platform::PlatformConfig cfg;
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;  // ForcedOffload drives the schedule
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  return cfg;
}

std::uint64_t standalone_checksum(const apps::AppInfo& app,
                                  const apps::AppParams& params) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  vm::Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

struct Outcome {
  std::uint64_t checksum = 0;
  bool offloaded = false;
  bool dead = false;
  SimTime end = 0;
  std::size_t failures = 0;
  std::size_t objects_reclaimed = 0;
  std::size_t stub_count = 0;
  rpc::MigrationTrace migration;
  rpc::EndpointStats client;
  rpc::EndpointStats surrogate;
  netsim::LinkStats link;
  // Disconnected-operation outcome (populated only when the run armed the
  // DisconnectPolicy; all defaults otherwise).
  bool disconnected_at_end = false;
  std::size_t disconnects = 0;
  bool first_resumed = false;
  std::size_t reconcile_count = 0;
  rpc::ReconcileTrace reconcile;  // first reconcile attempt's trace
  std::size_t log_entries_left = 0;
};

Outcome run(const apps::AppInfo& app, const apps::AppParams& params,
            const netsim::FaultPlan& plan, bool disconnect = false,
            SimDuration heartbeat = 0) {
  auto cfg = chaos_config();
  cfg.fault_plan = plan;
  if (disconnect) {
    cfg.disconnect.enabled = true;
    cfg.disconnect.probe_interval = sim_ms(20);
  }
  // Several apps run long stretches with zero demanded wire traffic (reads
  // served from snapshots, writes deferred), so a quiet-window outage is
  // invisible to the detector until something transmits. The fault-bearing
  // disconnect families keep a heartbeat running so detection does not
  // depend on the app's I/O pattern; the inertness test passes 0 to assert
  // zero-traffic stillness.
  cfg.heartbeat.idle_after = heartbeat;
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::Platform p(reg, cfg);
  ForcedOffload forced(p);
  p.client().add_hooks(&forced);
  Outcome o;
  o.checksum = app.run(p.client(), params);
  p.client().remove_hooks(&forced);
  o.offloaded = p.offloaded();
  o.dead = p.surrogate_dead();
  o.end = p.elapsed();
  o.failures = p.failures().size();
  if (!p.failures().empty()) {
    o.objects_reclaimed = p.failures().front().objects_reclaimed;
  }
  o.stub_count = p.client().stub_count();
  if (!p.client_endpoint().migrations().empty()) {
    o.migration = p.client_endpoint().migrations().front();
  }
  o.client = p.client_endpoint().stats();
  o.surrogate = p.surrogate_endpoint().stats();
  o.link = p.link().stats();
  o.disconnected_at_end = p.disconnected();
  o.disconnects = p.disconnects().size();
  if (!p.disconnects().empty()) {
    o.first_resumed = p.disconnects().front().resumed;
  }
  o.reconcile_count = p.client_endpoint().reconciles().size();
  if (!p.client_endpoint().reconciles().empty()) {
    o.reconcile = p.client_endpoint().reconciles().front();
  }
  o.log_entries_left = p.disconnect_log().entries();
  return o;
}

// The 25 seeded schedules, indexed 0..24. Five families, escalating with
// each lap; the probe run anchors the time-targeted families to this app's
// actual offload timeline.
netsim::FaultPlan schedule(std::size_t i, const Outcome& probe) {
  const std::size_t lap = i / 5;
  netsim::FaultPlan plan;
  switch (i % 5) {
    case 0:  // plain message loss, both legs
      plan.drop_probability = 0.02 + 0.015 * static_cast<double>(lap);
      plan.drop_seed = 0x1000 + i;
      break;
    case 1:  // acknowledgement loss only (at-most-once pressure)
      plan.reply_drop_probability = 0.10 + 0.04 * static_cast<double>(lap);
      plan.drop_seed = 0x2000 + i;
      break;
    case 2:  // the chaos trio: corruption, duplication, reordering
      plan.corrupt_probability = 0.02 + 0.01 * static_cast<double>(lap);
      plan.duplicate_probability = 0.04 + 0.02 * static_cast<double>(lap);
      plan.reorder_probability = 0.03 + 0.01 * static_cast<double>(lap);
      plan.chaos_seed = 0x3000 + i;
      break;
    case 3:  // repeating radio blackouts across the whole run
      plan.outage_period = sim_ms(150) + sim_ms(35) * static_cast<int>(lap);
      plan.outage_duration = sim_ms(4) + sim_ms(2) * static_cast<int>(lap);
      plan.outage_phase = probe.migration.begin + sim_ms(3) * static_cast<int>(i);
      break;
    default:  // kitchen sink: loss + chaos + halved bandwidth after offload
      plan.drop_probability = 0.02;
      plan.drop_seed = 0x5000 + i;
      plan.corrupt_probability = 0.015;
      plan.duplicate_probability = 0.03;
      plan.reorder_probability = 0.02;
      plan.chaos_seed = 0x6000 + i;
      plan.degraded.push_back({probe.migration.begin, probe.end, 0.5});
      break;
  }
  return plan;
}

// Satellite family (batched transport): the chaos quartet aimed squarely at
// multi-op frames. Rates run hotter than the base families so nearly every
// run corrupts, drops, duplicates, or reorders at least one batch frame;
// batch atomicity means the application checksum still cannot move — a
// damaged batch is voided and retried as a unit, never partially applied.
netsim::FaultPlan batch_schedule(std::size_t i) {
  const auto lap = static_cast<double>(i / 4);
  netsim::FaultPlan plan;
  switch (i % 4) {
    case 0:  // corrupted batch frames (CRC rejects the whole frame)
      plan.corrupt_probability = 0.05 + 0.02 * lap;
      plan.chaos_seed = 0xBA7C0 + i;
      break;
    case 1:  // dropped batch frames (RTO voids the whole batch)
      plan.drop_probability = 0.05 + 0.02 * lap;
      plan.drop_seed = 0xBA7C1 + i;
      break;
    case 2:  // reordered frames (seq/epoch fence discards stale batches)
      plan.reorder_probability = 0.06 + 0.02 * lap;
      plan.chaos_seed = 0xBA7C2 + i;
      break;
    default:  // duplicated frames (reply cache dedups re-delivered batches)
      plan.duplicate_probability = 0.08 + 0.04 * lap;
      plan.chaos_seed = 0xBA7C3 + i;
      break;
  }
  return plan;
}

class BatchedFrameChaosTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchedFrameChaosTest, DamagedMultiOpFramesRollBackOrRetryAtomically) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  ASSERT_EQ(probe.checksum, expected);
  // The workload genuinely puts multi-op frames on the air; otherwise this
  // family would be testing nothing beyond the base schedules.
  const std::uint64_t probe_batches =
      probe.client.batches_sent + probe.surrogate.batches_sent;
  ASSERT_GT(probe_batches, 0u);

  const std::size_t n = g_smoke ? 4 : 8;
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("batch schedule " + std::to_string(i));
    const Outcome o = run(app, params, batch_schedule(i));
    // No partial application: a batch that executes at all executes whole,
    // so the output is byte-identical whatever happened to its frames.
    EXPECT_EQ(o.checksum, expected);
    EXPECT_LE(o.failures, 1u);
    if (o.dead) {
      EXPECT_EQ(o.stub_count, 0u);
    }
    // Batching stays engaged under chaos — damage must not silently
    // degrade the transport to per-op framing.
    EXPECT_GT(o.client.batches_sent + o.surrogate.batches_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, BatchedFrameChaosTest,
                         ::testing::ValuesIn(kApps));

class ChaosScheduleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosScheduleTest, EverySeededScheduleKeepsOutputByteIdentical) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  ASSERT_TRUE(probe.migration.committed);
  ASSERT_EQ(probe.checksum, expected);

  const int per_rpc_retries = rpc::RetryPolicy{}.max_attempts - 1;
  for (std::size_t i = 0; i < schedule_count(); ++i) {
    SCOPED_TRACE("schedule " + std::to_string(i));
    const Outcome o = run(app, params, schedule(i, probe));
    // The transparency requirement, extended across every chaos mode.
    EXPECT_EQ(o.checksum, expected);
    // At most one surrogate loss; when the run ends degraded, recovery must
    // have repatriated everything (no dangling stub). A surviving surrogate
    // legitimately keeps its offloaded objects (and their client stubs).
    EXPECT_LE(o.failures, 1u);
    if (o.dead) {
      EXPECT_EQ(o.stub_count, 0u);
    }
    // Retry traffic is bounded by the per-RPC retry budget.
    EXPECT_LE(o.client.retries,
              o.client.rpcs_sent * static_cast<std::uint64_t>(per_rpc_retries));
    EXPECT_LE(o.surrogate.retries,
              o.surrogate.rpcs_sent *
                  static_cast<std::uint64_t>(per_rpc_retries));
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ChaosScheduleTest, ::testing::ValuesIn(kApps));

TEST(ChaosDeterminismTest, SameScheduleReproducesIdenticalStatistics) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = chaos_params();
  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);

  const netsim::FaultPlan plan = schedule(7, probe);  // chaos-trio family
  const Outcome a = run(app, params, plan);
  const Outcome b = run(app, params, plan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_TRUE(a.link == b.link);
  EXPECT_TRUE(a.client == b.client);
  EXPECT_TRUE(a.surrogate == b.surrogate);
}

class CrashPointSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrashPointSweepTest, LinkDeathAtEveryMigrationBoundaryIsConsistent) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const Outcome probe = run(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded);
  const rpc::MigrationTrace& t = probe.migration;
  ASSERT_TRUE(t.committed);
  ASSERT_LT(t.begin, t.prepare_acked);
  ASSERT_LT(t.prepare_acked, t.commit_acked);

  // What the kill point must leave behind:
  //   rolled_back     — the batch never left the client; nothing to reclaim.
  //   adopted_unacked — the surrogate adopted the staged batch but the ack
  //                     died; the initiator reports the migration aborted and
  //                     recovery pulls the adopted objects back.
  //   completed       — the migration finished; later death is an ordinary
  //                     mid-invoke failure handled by recovery.
  enum class Expect { rolled_back, adopted_unacked, completed };
  struct KillPoint {
    const char* label;
    SimTime at;
    Expect expect;
  };
  const KillPoint points[] = {
      {"PREPARE refused at send", t.begin, Expect::rolled_back},
      {"PREPARE in flight", t.begin + 1, Expect::rolled_back},
      {"mid-transfer", t.begin + (t.prepare_acked - t.begin) / 2,
       Expect::rolled_back},
      {"COMMIT refused at send", t.prepare_acked, Expect::rolled_back},
      {"COMMIT applied but unacked", t.prepare_acked + 1,
       Expect::adopted_unacked},
      {"immediately after COMMIT", t.commit_acked, Expect::completed},
      {"one tick after COMMIT", t.commit_acked + 1, Expect::completed},
  };
  const std::size_t n_points =
      g_smoke ? 4 : sizeof(points) / sizeof(points[0]);

  for (std::size_t i = 0; i < n_points; ++i) {
    const KillPoint& kp = points[i];
    SCOPED_TRACE(kp.label);
    netsim::FaultPlan plan;
    plan.dead_after = kp.at;
    const Outcome o = run(app, params, plan);
    // Byte-identical output from every crash point: the two-phase protocol
    // never leaves an object half-migrated or doubly-owned.
    EXPECT_EQ(o.checksum, expected);
    EXPECT_TRUE(o.dead);
    EXPECT_EQ(o.failures, 1u);
    EXPECT_EQ(o.stub_count, 0u);
    switch (kp.expect) {
      case Expect::rolled_back:
        EXPECT_FALSE(o.offloaded);
        EXPECT_FALSE(o.migration.committed);
        EXPECT_EQ(o.objects_reclaimed, 0u);
        break;
      case Expect::adopted_unacked:
        EXPECT_FALSE(o.offloaded);
        EXPECT_FALSE(o.migration.committed);
        EXPECT_GT(o.objects_reclaimed, 0u);
        break;
      case Expect::completed:
        EXPECT_TRUE(o.offloaded);
        EXPECT_TRUE(o.migration.committed);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, CrashPointSweepTest, ::testing::ValuesIn(kApps));

// --- disconnected operation (ISSUE 9) ----------------------------------------
//
// Four further chaos families, all with the DisconnectPolicy armed: a long
// outage at every migration boundary, a repeating flap schedule, permanent
// death after a partial reconcile (the reconcile crash-point sweep below),
// and a reconnect window landing mid-reconcile (a second outage spliced into
// the reconcile's own timeline). The invariant is unchanged: byte-identical
// application output, never a torn-down surrogate, never a lost or
// double-applied redo entry.

class DisconnectChaosTest : public ::testing::TestWithParam<const char*> {};

// Heartbeat idle threshold shared by every fault-bearing disconnect family.
constexpr SimDuration kBeat = sim_ms(100);

TEST_P(DisconnectChaosTest, ArmedPolicyIsInertOnAFaultFreeRun) {
  // The partition detector is passive: arming it without any fault must not
  // move a single byte of the schedule.
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const Outcome plain = run(app, params, netsim::FaultPlan{});
  const Outcome armed = run(app, params, netsim::FaultPlan{}, true);
  EXPECT_EQ(armed.checksum, plain.checksum);
  EXPECT_EQ(armed.end, plain.end);
  EXPECT_TRUE(armed.client == plain.client);
  EXPECT_TRUE(armed.surrogate == plain.surrogate);
  EXPECT_TRUE(armed.link == plain.link);
  EXPECT_EQ(armed.disconnects, 0u);
}

TEST_P(DisconnectChaosTest, LongOutageAtEveryMigrationBoundary) {
  // A 500 ms blackout — far past the retry budget — opening at each
  // two-phase migration boundary. Whatever the protocol was doing, the
  // platform must hoard, run disconnected, reconcile when the radio
  // returns, and finish byte-identical, without ever declaring the
  // surrogate dead.
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);
  const Outcome probe = run(app, params, netsim::FaultPlan{}, true, kBeat);
  ASSERT_TRUE(probe.offloaded);
  ASSERT_EQ(probe.checksum, expected);
  ASSERT_EQ(probe.disconnects, 0u);
  const rpc::MigrationTrace& m = probe.migration;

  const SimTime points[] = {
      m.begin,
      m.begin + 1,
      m.begin + (m.prepare_acked - m.begin) / 2,
      m.prepare_acked + 1,
      m.commit_acked + 1,
  };
  const std::size_t n = g_smoke ? 2 : sizeof(points) / sizeof(points[0]);
  std::size_t episodes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("outage at migration point " + std::to_string(i));
    netsim::FaultPlan plan;
    plan.outages.push_back({points[i], points[i] + sim_ms(500)});
    const Outcome o = run(app, params, plan, true, kBeat);
    EXPECT_EQ(o.checksum, expected);
    EXPECT_FALSE(o.dead);
    EXPECT_EQ(o.failures, 0u);
    EXPECT_FALSE(o.disconnected_at_end);
    // A boundary outage that only becomes observable late in the window can
    // legitimately be ridden out by the retry envelope (transient, not
    // sustained); every episode that did disconnect must end resumed.
    if (o.disconnects > 0) {
      EXPECT_TRUE(o.first_resumed);
    }
    episodes += o.disconnects;
  }
  // At most one of the boundary points may be absorbed as transient.
  EXPECT_GE(episodes, n - 1);
}

TEST_P(DisconnectChaosTest, RepeatedFlapDisconnectsAndReconcilesEachLap) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);
  const Outcome probe = run(app, params, netsim::FaultPlan{}, true, kBeat);
  ASSERT_TRUE(probe.offloaded);

  // Down 400 ms, up 1.5 s, repeating from just after the offload commits.
  const netsim::FaultPlan plan = netsim::make_flap_plan(
      probe.migration.commit_acked + 1, sim_ms(400), sim_ms(1500));
  const Outcome o = run(app, params, plan, true, kBeat);
  EXPECT_EQ(o.checksum, expected);
  EXPECT_FALSE(o.dead);
  EXPECT_EQ(o.failures, 0u);
  EXPECT_GE(o.disconnects, 1u);
  EXPECT_TRUE(o.first_resumed);
  // Every disconnect lap that resumed did so through a completed reconcile.
  EXPECT_GE(o.client.reconciles_completed, 1u);
  EXPECT_GE(o.client.ops_journaled, o.client.reconcile_replayed_ops);
}

TEST(DisconnectDeterminismTest, SameFlapScheduleReproducesIdenticalRuns) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = chaos_params();
  const Outcome probe = run(app, params, netsim::FaultPlan{}, true, kBeat);
  ASSERT_TRUE(probe.offloaded);
  const netsim::FaultPlan plan = netsim::make_flap_plan(
      probe.migration.commit_acked + 1, sim_ms(400), sim_ms(1500));
  const Outcome a = run(app, params, plan, true, kBeat);
  const Outcome b = run(app, params, plan, true, kBeat);
  ASSERT_GE(a.disconnects, 1u);  // the schedule genuinely partitions
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.disconnects, b.disconnects);
  EXPECT_EQ(a.reconcile_count, b.reconcile_count);
  EXPECT_EQ(a.log_entries_left, b.log_entries_left);
  EXPECT_TRUE(a.link == b.link);
  EXPECT_TRUE(a.client == b.client);
  EXPECT_TRUE(a.surrogate == b.surrogate);
}

class ReconcileCrashPointSweepTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ReconcileCrashPointSweepTest, DeathAtEveryReconcileBoundary) {
  // Exactly-once acceptance: the link dies for good at every boundary of the
  // reconcile PREPARE/COMMIT exchange. Before the COMMIT lands the log must
  // survive for a later retry; once it lands it must never replay again —
  // and in every case the application, which finishes on the hoarded
  // replicas, produces the standalone output byte-for-byte.
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);
  const Outcome probe = run(app, params, netsim::FaultPlan{}, true, kBeat);
  ASSERT_TRUE(probe.offloaded);

  // Disconnect probe: one finite outage after the offload commits gives a
  // clean disconnect -> journal -> reconcile -> resume episode whose trace
  // anchors the kill points.
  netsim::FaultPlan outage;
  // Long enough disconnected that even the slowest-writing app journals at
  // least one watched mutation before the link returns.
  outage.outages.push_back({probe.migration.commit_acked + 1,
                            probe.migration.commit_acked + 1 + sim_ms(1500)});
  const Outcome dprobe = run(app, params, outage, true, kBeat);
  ASSERT_EQ(dprobe.checksum, expected);
  ASSERT_GE(dprobe.disconnects, 1u);
  ASSERT_TRUE(dprobe.first_resumed);
  ASSERT_GE(dprobe.reconcile_count, 1u);
  const rpc::ReconcileTrace& t = dprobe.reconcile;
  ASSERT_TRUE(t.committed);
  ASSERT_TRUE(t.applied_on_peer);
  ASSERT_GE(t.entries, 1u);
  ASSERT_LT(t.begin, t.prepare_acked);
  ASSERT_LT(t.prepare_acked, t.commit_acked);

  enum class Expect { not_applied, applied_unacked, completed };
  struct KillPoint {
    const char* label;
    SimTime at;
    Expect expect;
  };
  const KillPoint points[] = {
      {"PREPARE refused at send", t.begin, Expect::not_applied},
      {"PREPARE in flight", t.begin + 1, Expect::not_applied},
      {"mid-replay-transfer", t.begin + (t.prepare_acked - t.begin) / 2,
       Expect::not_applied},
      {"COMMIT refused at send", t.prepare_acked, Expect::not_applied},
      {"COMMIT applied but unacked", t.prepare_acked + 1,
       Expect::applied_unacked},
      {"immediately after COMMIT ack", t.commit_acked, Expect::completed},
      {"one tick after COMMIT ack", t.commit_acked + 1, Expect::completed},
  };
  // Smoke covers one point from each expectation bucket.
  const std::size_t smoke_points[] = {0, 4, 6};
  const std::size_t n_points =
      g_smoke ? sizeof(smoke_points) / sizeof(smoke_points[0])
              : sizeof(points) / sizeof(points[0]);

  for (std::size_t i = 0; i < n_points; ++i) {
    const KillPoint& kp = points[g_smoke ? smoke_points[i] : i];
    SCOPED_TRACE(kp.label);
    netsim::FaultPlan plan = outage;
    plan.dead_after = kp.at;  // permanent death after the partial reconcile
    const Outcome o = run(app, params, plan, true, kBeat);
    EXPECT_EQ(o.checksum, expected);
    EXPECT_FALSE(o.dead);  // disconnected, never torn down
    EXPECT_EQ(o.failures, 0u);
    switch (kp.expect) {
      case Expect::not_applied:
        // Nothing landed on the surrogate: the log is retained for a retry
        // that never comes, and the episode never resumes.
        EXPECT_TRUE(o.disconnected_at_end);
        EXPECT_FALSE(o.first_resumed);
        EXPECT_GE(o.log_entries_left, 1u);
        EXPECT_EQ(o.client.reconciles_completed, 0u);
        if (o.reconcile_count > 0) {
          EXPECT_FALSE(o.reconcile.applied_on_peer);
          EXPECT_FALSE(o.reconcile.committed);
        }
        break;
      case Expect::applied_unacked:
        // The COMMIT executed but its ack died: the initiator proves the
        // apply through the epoch fence, retires the log (it must never
        // replay), and stays disconnected on the dead link.
        EXPECT_TRUE(o.disconnected_at_end);
        EXPECT_FALSE(o.first_resumed);
        ASSERT_GE(o.reconcile_count, 1u);
        EXPECT_TRUE(o.reconcile.applied_on_peer);
        EXPECT_FALSE(o.reconcile.committed);
        break;
      case Expect::completed:
        // The episode finished cleanly; the later death starts a second
        // episode, which the client again survives on hoarded replicas.
        EXPECT_TRUE(o.first_resumed);
        ASSERT_GE(o.reconcile_count, 1u);
        EXPECT_TRUE(o.reconcile.committed);
        break;
    }
  }
}

TEST_P(ReconcileCrashPointSweepTest, ReconnectWindowLandingMidReconcile) {
  // The fourth family: instead of dying for good at a reconcile boundary,
  // the link blinks off for 300 ms right as the reconcile runs, then comes
  // back. The platform must either have finished the exchange or retry it
  // on a later probe — both ways the run ends resumed and byte-identical.
  const auto& app = apps::app_by_name(GetParam());
  const auto params = chaos_params();
  const std::uint64_t expected = standalone_checksum(app, params);
  const Outcome probe = run(app, params, netsim::FaultPlan{}, true, kBeat);
  ASSERT_TRUE(probe.offloaded);
  netsim::FaultPlan outage;
  // Long enough disconnected that even the slowest-writing app journals at
  // least one watched mutation before the link returns.
  outage.outages.push_back({probe.migration.commit_acked + 1,
                            probe.migration.commit_acked + 1 + sim_ms(1500)});
  const Outcome dprobe = run(app, params, outage, true, kBeat);
  ASSERT_GE(dprobe.reconcile_count, 1u);
  const rpc::ReconcileTrace& t = dprobe.reconcile;

  const SimTime points[] = {t.begin, t.prepare_acked, t.commit_acked};
  const std::size_t n = g_smoke ? 1 : sizeof(points) / sizeof(points[0]);
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("second outage at reconcile point " + std::to_string(i));
    netsim::FaultPlan plan = outage;
    // 100 ms: long enough to sever whichever leg is in flight, short enough
    // that the fastest-finishing app still outlives it — a blink the app
    // ends inside would leave no later probe to retry on.
    plan.outages.push_back({points[i], points[i] + sim_ms(100)});
    const Outcome o = run(app, params, plan, true, kBeat);
    EXPECT_EQ(o.checksum, expected);
    EXPECT_FALSE(o.dead);
    EXPECT_EQ(o.failures, 0u);
    EXPECT_GE(o.disconnects, 1u);
    EXPECT_TRUE(o.first_resumed);
    EXPECT_FALSE(o.disconnected_at_end);
    // However the exchange was cut, every retired log was applied once and
    // a resumed run carries no leftover redo entries.
    EXPECT_GE(o.client.reconciles_completed, 1u);
    EXPECT_EQ(o.log_entries_left, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, DisconnectChaosTest, ::testing::ValuesIn(kApps));
INSTANTIATE_TEST_SUITE_P(Apps, ReconcileCrashPointSweepTest,
                         ::testing::ValuesIn(kApps));

}  // namespace
}  // namespace aide::chaos

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") aide::chaos::g_smoke = true;
  }
  return RUN_ALL_TESTS();
}
