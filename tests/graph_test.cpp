// Tests for the execution graph: node/edge accounting, the same-class
// filtering rule, memory and self-time aggregation, and DOT rendering.
#include <gtest/gtest.h>

#include "graph/exec_graph.hpp"

namespace aide::graph {
namespace {

ComponentKey cls(std::uint32_t id) { return ComponentKey{ClassId{id}}; }
ComponentKey obj(std::uint32_t c, std::uint64_t o) {
  return ComponentKey{ClassId{c}, ObjectId{o}};
}

TEST(ComponentKeyTest, ClassGranularityByDefault) {
  EXPECT_FALSE(cls(1).is_object_granularity());
  EXPECT_TRUE(obj(1, 5).is_object_granularity());
}

TEST(ComponentKeyTest, EqualityAndOrdering) {
  EXPECT_EQ(cls(1), cls(1));
  EXPECT_NE(cls(1), cls(2));
  EXPECT_NE(cls(1), obj(1, 1));
  EXPECT_LT(cls(1), cls(2));
}

TEST(ExecGraphTest, InteractionCreatesNodesAndEdge) {
  ExecGraph g;
  g.record_interaction(cls(1), cls(2), true, 100);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  const EdgeInfo* e = g.find_edge(cls(1), cls(2));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->invocations, 1u);
  EXPECT_EQ(e->accesses, 0u);
  EXPECT_EQ(e->bytes, 100u);
}

TEST(ExecGraphTest, SameComponentInteractionIgnored) {
  // Paper 3.4: "Information is recorded only for interactions between two
  // different classes."
  ExecGraph g;
  g.record_interaction(cls(1), cls(1), true, 100);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(ExecGraphTest, EdgeIsUndirected) {
  ExecGraph g;
  g.record_interaction(cls(1), cls(2), true, 10);
  g.record_interaction(cls(2), cls(1), false, 20);
  EXPECT_EQ(g.edge_count(), 1u);
  const EdgeInfo* e = g.find_edge(cls(2), cls(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->invocations, 1u);
  EXPECT_EQ(e->accesses, 1u);
  EXPECT_EQ(e->bytes, 30u);
  EXPECT_EQ(e->interactions(), 2u);
}

TEST(ExecGraphTest, MemoryAccounting) {
  ExecGraph g;
  g.add_memory(cls(1), 1000, 1);
  g.add_memory(cls(1), 500, 1);
  g.add_memory(cls(1), -300, -1);
  const NodeInfo* n = g.find_node(cls(1));
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->mem_bytes, 1200);
  EXPECT_EQ(n->peak_mem_bytes, 1500);
  EXPECT_EQ(n->live_objects, 1);
}

TEST(ExecGraphTest, SelfTimeAccumulates) {
  ExecGraph g;
  g.add_self_time(cls(3), sim_ms(2));
  g.add_self_time(cls(3), sim_ms(3));
  EXPECT_EQ(g.find_node(cls(3))->exec_self_time, sim_ms(5));
}

TEST(ExecGraphTest, TotalsSumOverNodes) {
  ExecGraph g;
  g.add_memory(cls(1), 100, 1);
  g.add_memory(cls(2), 200, 1);
  g.add_self_time(cls(1), sim_us(10));
  g.add_self_time(cls(2), sim_us(20));
  EXPECT_EQ(g.total_mem_bytes(), 300);
  EXPECT_EQ(g.total_self_time(), sim_us(30));
}

TEST(ExecGraphTest, PinnedComponents) {
  ExecGraph g;
  g.set_pinned(cls(1), true);
  g.set_pinned(cls(2), false);
  const auto pinned = g.pinned_components();
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0], cls(1));
}

TEST(ExecGraphTest, ObjectGranularityNodesAreDistinct) {
  ExecGraph g;
  g.add_memory(obj(1, 10), 100, 1);
  g.add_memory(obj(1, 11), 200, 1);
  g.add_memory(cls(1), 50, 1);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.total_mem_bytes(), 350);
}

TEST(ExecGraphTest, SetEdgeInstallsRecord) {
  ExecGraph g;
  EdgeInfo info{.invocations = 5, .accesses = 7, .bytes = 99};
  g.set_edge(cls(1), cls(2), info);
  const EdgeInfo* e = g.find_edge(cls(1), cls(2));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->invocations, 5u);
  EXPECT_EQ(e->bytes, 99u);
}

TEST(ExecGraphTest, ClearEmptiesEverything) {
  ExecGraph g;
  g.record_interaction(cls(1), cls(2), true, 1);
  g.clear();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(ExecGraphTest, StorageBytesGrowsWithGraph) {
  ExecGraph g;
  const auto empty = g.storage_bytes();
  g.record_interaction(cls(1), cls(2), true, 1);
  EXPECT_GT(g.storage_bytes(), empty);
}

TEST(ExecGraphDotTest, ContainsNodesAndEdges) {
  ExecGraph g;
  g.record_interaction(cls(1), cls(2), true, 64);
  g.add_memory(cls(1), 2048, 1);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("graph exec {"), std::string::npos);
  EXPECT_NE(dot.find("n1"), std::string::npos);
  EXPECT_NE(dot.find("n2"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find("2KB"), std::string::npos);
}

TEST(ExecGraphDotTest, PlacementRendersCutEdgesDashed) {
  ExecGraph g;
  g.record_interaction(cls(1), cls(2), true, 64);
  std::unordered_map<ComponentKey, int> placement{{cls(1), 0}, {cls(2), 1}};
  const std::string dot = g.to_dot(&placement);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ExecGraphDotTest, NamesUsedWhenProvided) {
  ExecGraph g;
  g.add_memory(cls(1), 0, 0);
  std::unordered_map<ComponentKey, std::string> names{{cls(1), "String"}};
  const std::string dot = g.to_dot(nullptr, &names);
  EXPECT_NE(dot.find("String"), std::string::npos);
}

TEST(ExecGraphDotTest, DeterministicOutput) {
  ExecGraph g;
  g.record_interaction(cls(3), cls(1), true, 5);
  g.record_interaction(cls(2), cls(1), false, 7);
  EXPECT_EQ(g.to_dot(), g.to_dot());
}

}  // namespace
}  // namespace aide::graph
