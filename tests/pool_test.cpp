// Surrogate-pool tests: deterministic placement policy, failover onto the
// next-best surviving peer, and the flat-uint64 stats layout contracts.
//
// The placement policy must be a pure function of the pool's observable
// state (score arithmetic pinned against the documented formula, ties to the
// lowest index), so two identically configured pools driven by the same
// admission/turn/death sequence must agree byte-for-byte on every placement,
// every replacement record, the shared clock, and the aggregated counters.
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/simclock.hpp"
#include "netsim/link.hpp"
#include "platform/surrogate_pool.hpp"
#include "vm/klass.hpp"
#include "vm/vm.hpp"

using namespace aide;

namespace {

std::shared_ptr<vm::ClassRegistry> rec_registry() {
  auto reg = std::make_shared<vm::ClassRegistry>();
  vm::ClassBuilder cb("Rec");
  for (int f = 0; f < 4; ++f) cb.field("f" + std::to_string(f));
  reg->register_class(cb.build());
  return reg;
}

platform::ServerConfig member_config(double speedup,
                                     std::size_t max_sessions = 64) {
  platform::ServerConfig cfg;
  // Field-only registry: the shared gates are covered by the fleet tests.
  cfg.static_analysis = false;
  cfg.effect_verify = false;
  cfg.surrogate_speedup = speedup;
  cfg.max_sessions = max_sessions;
  return cfg;
}

platform::PoolConfig pool_config(std::initializer_list<double> speedups,
                                 std::size_t max_sessions = 64) {
  platform::PoolConfig pc;
  for (const double s : speedups) {
    pc.members.push_back(member_config(s, max_sessions));
  }
  return pc;
}

// One turn's worth of real session work: allocate and offload a Rec, so the
// turn moves bytes through the session's link (advancing the shared clock
// and priming the RTT estimator) instead of idling.
platform::TurnOutcome busy_turn(platform::Session& s, std::uint64_t quota) {
  const vm::ObjectRef o = s.client().new_object("Rec");
  s.client().add_root(o);
  const ObjectId ids[] = {o.id};
  EXPECT_TRUE(s.offload(ids));
  s.driver_state += 1;
  return s.driver_state >= quota ? platform::TurnOutcome::finished
                                 : platform::TurnOutcome::yielded;
}

// --- placement policy --------------------------------------------------------

TEST(PoolPlacement, ScoreMatchesTheDocumentedFormula) {
  platform::SurrogatePool pool(rec_registry(), pool_config({2.0, 8.0, 4.0}));
  // Fresh pool: no sessions, no RTT samples. Score reduces to
  // w_cpu/speedup + w_link * null-RTT seconds.
  const double link_s =
      sim_to_seconds(netsim::LinkParams::wavelan().null_rtt);
  EXPECT_DOUBLE_EQ(pool.placement_score(0), 1.0 / 2.0 + link_s);
  EXPECT_DOUBLE_EQ(pool.placement_score(1), 1.0 / 8.0 + link_s);
  EXPECT_DOUBLE_EQ(pool.placement_score(2), 1.0 / 4.0 + link_s);
  EXPECT_EQ(pool.best_member(), 1u);

  // Admitting on the best member moves only its load term: +1/max_sessions.
  platform::Session* s = pool.open_session();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(pool.member_of(s->id()), 1u);
  EXPECT_DOUBLE_EQ(pool.placement_score(1), 1.0 / 8.0 + link_s + 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(pool.placement_score(0), 1.0 / 2.0 + link_s);
}

TEST(PoolPlacement, EqualMembersSpreadRoundRobin) {
  // Identical members tie on cpu+link, so the load term decides and ties
  // break to the lowest index: admissions interleave 0,1,2,3,0,1,2,3.
  platform::SurrogatePool pool(rec_registry(),
                               pool_config({3.0, 3.0, 3.0, 3.0}));
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t want = 0; want < pool.size(); ++want) {
      platform::Session* s = pool.open_session();
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(pool.member_of(s->id()), want);
    }
  }
  EXPECT_EQ(pool.session_count(), 8u);
  EXPECT_EQ(pool.stats().placements, 8u);
}

TEST(PoolPlacement, FullMemberScoresInfinityAndAdmissionRejects) {
  platform::SurrogatePool pool(rec_registry(), pool_config({3.0}, 1));
  ASSERT_NE(pool.open_session(), nullptr);
  EXPECT_EQ(pool.placement_score(0),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(pool.best_member(), pool.size());
  EXPECT_EQ(pool.open_session(), nullptr);
  EXPECT_EQ(pool.stats().admission_rejections, 1u);
}

TEST(PoolPlacement, MembersShareThePoolClock) {
  platform::SurrogatePool pool(rec_registry(), pool_config({2.0, 4.0}));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(&pool.member(i).clock(), &pool.clock());
  }
}

// --- failover ----------------------------------------------------------------

TEST(PoolFailover, SessionsMoveToTheNextBestPeer) {
  // Member 1 is fastest and takes every admission; member 2 is the clear
  // runner-up. Killing 1 must re-admit every victim on 2 — never back to
  // the client while a peer remains — in ascending old-id order, with the
  // driver slot carried over.
  platform::SurrogatePool pool(rec_registry(), pool_config({2.0, 8.0, 4.0}));
  for (int i = 0; i < 3; ++i) {
    platform::Session* s = pool.open_session();
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(pool.member_of(s->id()), 1u);
    s->driver_state = 100 + s->id().value();
  }

  const auto moved = pool.kill_surrogate(1);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_FALSE(pool.alive(1));
  EXPECT_EQ(pool.alive_count(), 2u);
  for (std::size_t i = 0; i < moved.size(); ++i) {
    const platform::Replacement& r = moved[i];
    EXPECT_EQ(r.old_id.value(), i);  // ascending old-id order
    EXPECT_EQ(r.from, 1u);
    EXPECT_EQ(r.to, 2u) << "next-best surviving peer";
    EXPECT_LT(r.to, pool.size()) << "no local fallback while peers remain";
    EXPECT_GT(r.new_id.value(), 2u) << "fresh pool-unique id";

    platform::Session* fresh = pool.find_session(r.new_id);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->driver_state, 100 + r.old_id.value());
    EXPECT_EQ(pool.find_session(r.old_id), nullptr);
  }
  EXPECT_EQ(pool.session_count(), 3u);
  EXPECT_EQ(pool.stats().deaths, 1u);
  EXPECT_EQ(pool.stats().replacements, 3u);
}

TEST(PoolFailover, VictimsWithNoFreePeerSlotAreClosed) {
  // Two members, two slots each, all four full. Killing member 0 leaves its
  // victims nowhere to go: they are reported with to == size() and closed.
  platform::SurrogatePool pool(rec_registry(), pool_config({3.0, 3.0}, 2));
  for (int i = 0; i < 4; ++i) ASSERT_NE(pool.open_session(), nullptr);
  ASSERT_EQ(pool.session_count(), 4u);

  const auto moved = pool.kill_surrogate(0);
  ASSERT_EQ(moved.size(), 2u);
  for (const platform::Replacement& r : moved) {
    EXPECT_EQ(r.from, 0u);
    EXPECT_EQ(r.to, pool.size());
  }
  EXPECT_EQ(pool.session_count(), 2u);
  EXPECT_EQ(pool.stats().replacements, 0u);
}

// --- whole-pool determinism --------------------------------------------------

// Replays one fixed scenario — admissions, busy turns, a surrogate death
// mid-run, more turns — and serializes everything observable.
struct ScenarioTrail {
  std::vector<std::uint64_t> events;

  void push(std::uint64_t v) { events.push_back(v); }

  bool operator==(const ScenarioTrail&) const = default;
};

ScenarioTrail run_scenario() {
  platform::SurrogatePool pool(rec_registry(),
                               pool_config({2.0, 6.0, 4.0, 3.0}, 8));
  ScenarioTrail trail;

  std::vector<SessionId> opened;
  for (int i = 0; i < 6; ++i) {
    platform::Session* s = pool.open_session();
    if (s == nullptr) continue;
    opened.push_back(s->id());
    trail.push(s->id().value());
    trail.push(pool.member_of(s->id()));
  }

  const auto turn = [](platform::Session& s) { return busy_turn(s, 6); };
  pool.run_rounds(2, turn);

  const std::size_t victim = pool.member_of(opened.front());
  for (const platform::Replacement& r : pool.kill_surrogate(victim)) {
    trail.push(r.old_id.value());
    trail.push(r.new_id.value());
    trail.push(r.from);
    trail.push(r.to);
  }
  pool.run_rounds(2, turn);

  const platform::ServerStats agg = pool.aggregate_server_stats();
  for (const std::uint64_t v :
       std::bit_cast<std::array<std::uint64_t,
                                sizeof(platform::ServerStats) /
                                    sizeof(std::uint64_t)>>(agg)) {
    trail.push(v);
  }
  trail.push(pool.stats().placements);
  trail.push(pool.stats().replacements);
  trail.push(static_cast<std::uint64_t>(pool.clock().now()));
  return trail;
}

TEST(PoolDeterminism, IdenticalRunsProduceIdenticalTrails) {
  const ScenarioTrail a = run_scenario();
  const ScenarioTrail b = run_scenario();
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a, b);
}

// --- stats layout contracts --------------------------------------------------

// Same pattern as EndpointStatsTest.AccumulateSumsEveryField: the struct is
// a flat uint64 array, so a forgotten field in operator+= shows up as a
// mismatched slot instead of silently dropping a counter.
TEST(PoolStatsTest, ServerStatsAccumulateSumsEveryField) {
  using platform::ServerStats;
  constexpr std::size_t kFields = sizeof(ServerStats) / sizeof(std::uint64_t);
  static_assert(kFields * sizeof(std::uint64_t) == sizeof(ServerStats),
                "ServerStats must stay a flat array of uint64 counters");
  using Raw = std::array<std::uint64_t, kFields>;

  Raw raw{};
  for (std::size_t i = 0; i < kFields; ++i) {
    raw[i] = static_cast<std::uint64_t>(i + 1);
  }
  const auto one = std::bit_cast<ServerStats>(raw);

  ServerStats sum;
  sum += one;
  sum += one;
  const Raw out = std::bit_cast<Raw>(sum);
  for (std::size_t i = 0; i < kFields; ++i) {
    EXPECT_EQ(out[i], 2 * (i + 1)) << "field index " << i
                                   << " not covered by operator+=";
  }
}

TEST(PoolStatsTest, PoolStatsAccumulateSumsEveryField) {
  using platform::PoolStats;
  constexpr std::size_t kFields = sizeof(PoolStats) / sizeof(std::uint64_t);
  static_assert(kFields * sizeof(std::uint64_t) == sizeof(PoolStats),
                "PoolStats must stay a flat array of uint64 counters");
  using Raw = std::array<std::uint64_t, kFields>;

  Raw raw{};
  for (std::size_t i = 0; i < kFields; ++i) {
    raw[i] = static_cast<std::uint64_t>(i + 1);
  }
  const auto one = std::bit_cast<PoolStats>(raw);

  PoolStats sum;
  sum += one;
  sum += one;
  const Raw out = std::bit_cast<Raw>(sum);
  for (std::size_t i = 0; i < kFields; ++i) {
    EXPECT_EQ(out[i], 2 * (i + 1)) << "field index " << i
                                   << " not covered by operator+=";
  }
}

}  // namespace
