// Runtime differential check of the declared effect IR: every instrumented
// access and allocation the VM observes while a method frame is live must be
// covered by that method's inferred summary (observed ⊆ declared). The
// static audit proves the declarations are internally consistent; this
// harness proves they do not under-declare what the bodies actually do, by
// running every paper application against the recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/effects.hpp"
#include "apps/apps.hpp"
#include "vm/hooks.hpp"
#include "vm/vm.hpp"

namespace aide::analysis {
namespace {

// Attributes each event to the innermost live frame of its VM and checks it
// against the frame's summary. Transitive summaries make this sound: a
// method's summary covers its body's direct effects (and more).
class EffectRecorder : public vm::VmHooks {
 public:
  EffectRecorder(const vm::ClassRegistry& reg, const VerifyReport& report)
      : reg_(reg), report_(report) {}

  void on_method_enter(NodeId vm, ClassId cls, ObjectId, MethodId m,
                       SimTime) override {
    stacks_[vm.value()].push_back({cls, m});
  }
  void on_method_exit(NodeId vm, ClassId, ObjectId, MethodId, SimDuration,
                      SimTime) override {
    auto& s = stacks_[vm.value()];
    if (!s.empty()) s.pop_back();
  }

  void on_access(const vm::AccessEvent& e) override {
    const EffectSummary* sum = current(e.vm);
    if (sum == nullptr || sum->unknown) return;
    const LocSet& set = e.is_write ? sum->writes : sum->reads;
    if (set.unknown() || set.touches_class(e.to_cls)) return;
    // Reads of a ref-valued field surface as an access to the referee in
    // some instrumentation paths; accept coverage via either side.
    if (!e.is_write && sum->writes.touches_class(e.to_cls)) return;
    violation(e.vm, std::string(e.is_write ? "write" : "read") +
                        " touching " + reg_.get(e.to_cls).name);
  }

  void on_alloc(NodeId vm, ObjectId, ClassId cls, std::int64_t,
                SimTime) override {
    const EffectSummary* sum = current(vm);
    if (sum == nullptr || sum->unknown) return;
    if (std::binary_search(sum->allocs.begin(), sum->allocs.end(), cls)) {
      return;
    }
    violation(vm, "allocation of " + reg_.get(cls).name);
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  struct FrameRef {
    ClassId cls;
    MethodId method;
  };

  const EffectSummary* current(NodeId vm) {
    const auto it = stacks_.find(vm.value());
    if (it == stacks_.end() || it->second.empty()) return nullptr;
    const FrameRef& top = it->second.back();
    const MethodFacts* f = report_.facts(top.cls, top.method);
    return f == nullptr ? nullptr : &f->summary;
  }

  void violation(NodeId vm, std::string what) {
    if (violations_.size() >= 25) return;  // keep failure output readable
    const auto& s = stacks_[vm.value()];
    std::string frame = "<none>";
    if (!s.empty()) {
      const auto& top = s.back();
      frame = reg_.get(top.cls).name + "." +
              reg_.get(top.cls).methods[top.method.value()].name;
    }
    violations_.push_back(frame + ": undeclared " + std::move(what));
  }

  const vm::ClassRegistry& reg_;
  const VerifyReport& report_;
  std::unordered_map<std::uint32_t, std::vector<FrameRef>> stacks_;
  std::vector<std::string> violations_;
};

apps::AppParams small_params() {
  apps::AppParams p;
  p.doc_bytes = 32 * 1024;
  p.edits = 10;
  p.scrolls = 12;
  p.image_size = 48;
  p.layers = 3;
  p.filter_passes = 2;
  p.atoms = 48;
  p.iterations = 3;
  p.field_size = 33;
  p.frames = 3;
  p.columns = 24;
  p.trace_w = 12;
  p.trace_h = 9;
  p.spheres = 4;
  return p;
}

class EffectsDifferentialTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EffectsDifferentialTest, ObservedEffectsAreDeclared) {
  const auto& app = apps::app_by_name(GetParam());
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  const VerifyReport report = verify(*reg);
  ASSERT_EQ(report.methods_with_ir, report.methods_total) << report.summary();

  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  vm::Vm vm(cfg, reg, clock);
  EffectRecorder recorder(*reg, report);
  vm.add_hooks(&recorder);
  app.run(vm, small_params());
  vm.remove_hooks(&recorder);

  EXPECT_TRUE(recorder.violations().empty())
      << recorder.violations().size() << " undeclared effects, first: "
      << recorder.violations().front();
}

INSTANTIATE_TEST_SUITE_P(Apps, EffectsDifferentialTest,
                         ::testing::Values("JavaNote", "Dia", "Biomer",
                                           "Voxel", "Tracer"));

// The recorder is itself validated by an injected under-declaration: a body
// that writes a field its IR does not declare must be caught.
TEST(EffectsDifferentialTest2, RecorderCatchesInjectedUnderDeclaration) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  reg->register_class(
      vm::ClassBuilder("Liar")
          .entry()
          .field("x")
          .method("sneak",
                  [](vm::Vm& ctx, vm::ObjectRef self, auto) -> vm::Value {
                    ctx.put_field(self, FieldId{0}, vm::Value{1});
                    return vm::Value{};
                  })
          .no_effects()  // declares purity, body writes Liar.x
          .build());
  const VerifyReport report = verify(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 4 << 20;
  vm::Vm vm(cfg, reg, clock);
  EffectRecorder recorder(*reg, report);
  vm.add_hooks(&recorder);
  const vm::ObjectRef liar = vm.new_object("Liar");
  vm.add_root(liar);
  vm.call(liar, "sneak");
  vm.remove_hooks(&recorder);
  ASSERT_FALSE(recorder.violations().empty());
  EXPECT_NE(recorder.violations().front().find("Liar.sneak"),
            std::string::npos);
}

}  // namespace
}  // namespace aide::analysis
