// Golden-output tests for the aidelint / aideverify CLI rendering and the
// exit-code contract. The goldens under tests/golden/ pin the exact text and
// JSON bytes the tool emits for a representative app (Voxel); regenerate
// them with AIDE_UPDATE_GOLDEN=1 after an intentional format change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/effects.hpp"
#include "analysis/report_io.hpp"
#include "apps/apps.hpp"
#include "vm/klass.hpp"

namespace aide::analysis {
namespace {

using vm::ClassBuilder;
using vm::ClassRegistry;

vm::MethodBody noop() {
  return [](vm::Vm&, vm::ObjectRef, auto) { return vm::Value{}; };
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(GOLDEN_DIR) + "/" + name;
  if (std::getenv("AIDE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with AIDE_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(actual, buf.str())
      << "output drifted from " << path
      << " — if intentional, regenerate with AIDE_UPDATE_GOLDEN=1";
}

std::string lint_text(const char* app, bool hints) {
  ClassRegistry reg;
  apps::app_by_name(app).register_classes(reg);
  std::ostringstream os;
  render_text(os, reg, analyze(reg), hints);
  return os.str();
}

std::string verify_text(const char* app, bool hints) {
  ClassRegistry reg;
  apps::app_by_name(app).register_classes(reg);
  std::ostringstream os;
  render_text(os, reg, verify(reg), hints);
  return os.str();
}

std::string verify_json(const char* app) {
  ClassRegistry reg;
  apps::app_by_name(app).register_classes(reg);
  std::ostringstream os;
  render_json(os, reg, verify(reg));
  return os.str();
}

TEST(CliGoldenTest, VoxelLintText) {
  check_golden("voxel_lint.txt", lint_text("Voxel", /*hints=*/true));
}

TEST(CliGoldenTest, VoxelVerifyText) {
  check_golden("voxel_verify.txt", verify_text("Voxel", /*hints=*/true));
}

TEST(CliGoldenTest, VoxelVerifyJson) {
  check_golden("voxel_verify.json", verify_json("Voxel"));
}

TEST(CliGoldenTest, TracerVerifyText) {
  check_golden("tracer_verify.txt", verify_text("Tracer", /*hints=*/false));
}

TEST(CliGoldenTest, JsonIsStructurallySane) {
  const std::string j = verify_json("Voxel");
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : j) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(j.find("\"ir_coverage\""), std::string::npos);
  EXPECT_NE(j.find("\"conflicts\""), std::string::npos);
}

// --- exit-code contract: 0 clean (infos allowed), 1 warnings, 2 errors ------

TEST(CliExitCodeTest, CleanIsZeroEvenWithInfos) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Quiet")
                         .entry()
                         .pin(vm::PinReason::ui)
                         .method("idle", noop())
                         .no_effects()
                         .build());
  const VerifyReport r = verify(reg);
  ASSERT_EQ(r.count(Severity::error), 0u);
  ASSERT_EQ(r.count(Severity::warning), 0u);
  ASSERT_GT(r.count(Severity::info), 0u);  // pin-unjustified info
  EXPECT_EQ(exit_code(r), 0);
}

TEST(CliExitCodeTest, WarningsAreOne) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Helper")
                         .entry()
                         .method("h", noop())
                         .no_effects()
                         .build());
  reg.register_class(ClassBuilder("Stale")
                         .entry()
                         .calls("Helper", "h", 0)  // nothing backs this
                         .method("f", noop())
                         .no_effects()
                         .build());
  const VerifyReport r = verify(reg);
  ASSERT_GT(r.warnings(), 0u);
  ASSERT_EQ(r.errors(), 0u);
  EXPECT_EQ(exit_code(r), 1);
}

TEST(CliExitCodeTest, ErrorsAreTwoForBothReportKinds) {
  ClassRegistry reg;
  reg.register_class(ClassBuilder("Bad")
                         .entry()
                         .calls("Nowhere", "nothing", 0)
                         .method("f", noop())
                         .invokes("Nowhere", "nothing", 0)
                         .build());
  EXPECT_EQ(exit_code(analyze(reg)), 2);  // unknown-call-target
  EXPECT_EQ(exit_code(verify(reg)), 2);   // + ir-unknown-target
}

TEST(CliExitCodeTest, AllAppsVerifyCleanUnderTheContract) {
  for (const auto& app : apps::all_apps()) {
    ClassRegistry reg;
    app.register_classes(reg);
    EXPECT_EQ(exit_code(analyze(reg)), 0) << app.name;
    EXPECT_EQ(exit_code(verify(reg)), 0) << app.name;
  }
}

}  // namespace
}  // namespace aide::analysis
