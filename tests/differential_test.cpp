// Differential fuzzing of the transparency property.
//
// A deterministic random program (object creation, field reads/writes,
// method calls, array ops, reference drops, forced GCs) is executed twice:
// on a standalone VM, and on the AIDE platform where every K operations the
// entire migratable heap is forcibly offloaded (and keeps executing
// remotely). Every value the program observes is folded into a checksum;
// the two executions must observe byte-identical state. This is the paper's
// "transparent, distributed execution" requirement under adversarial
// schedules that no hand-written scenario covers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "tests/test_util.hpp"

namespace aide {
namespace {

using vm::ObjectRef;
using vm::Value;
using vm::Vm;

constexpr int kSlots = 24;
constexpr int kOps = 600;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

// Runs the random program; `offload` (if non-null) is invoked periodically.
std::uint64_t run_program(Vm& vm, std::uint64_t seed,
                          const std::function<void()>& offload) {
  Rng rng(seed);
  std::uint64_t checksum = seed;

  // The root table anchors everything the program considers live.
  const ObjectRef roots = vm.new_ref_array(kSlots);
  vm.add_root(roots);

  auto slot = [&](int i) {
    return vm.get_field(roots, FieldId{static_cast<std::uint32_t>(i)});
  };
  auto set_slot = [&](int i, const Value& v) {
    vm.put_field(roots, FieldId{static_cast<std::uint32_t>(i)}, v);
  };

  auto observe = [&](const Value& v) {
    if (v.is_int()) {
      checksum = mix(checksum, static_cast<std::uint64_t>(v.as_int()));
    } else if (v.is_str()) {
      for (const char c : v.as_str()) {
        checksum = mix(checksum, static_cast<unsigned char>(c));
      }
    } else if (v.is_bool()) {
      checksum = mix(checksum, v.as_bool() ? 1 : 2);
    } else if (v.is_ref()) {
      checksum = mix(checksum, v.as_ref().is_null() ? 3 : 4);
    } else {
      checksum = mix(checksum, 5);
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int target = static_cast<int>(rng.next_below(kSlots));
    const Value current = slot(target);
    const bool have_obj = current.is_ref() && !current.as_ref().is_null();

    switch (rng.next_below(10)) {
      case 0:  // create a Counter
        set_slot(target, Value{vm.new_object("Counter")});
        break;
      case 1:  // create a Pair with payload
        {
          const ObjectRef pair = vm.new_object("Pair");
          vm.put_field(pair, FieldId{0},
                       Value{static_cast<std::int64_t>(rng.next_u64() % 997)});
          vm.put_field(pair, FieldId{1},
                       Value{std::string(rng.next_below(48), 'q')});
          set_slot(target, Value{pair});
        }
        break;
      case 2:  // create an int array
        set_slot(target, Value{vm.new_int_array(
                             8 + static_cast<std::int64_t>(
                                     rng.next_below(2048)))});
        break;
      case 3:  // link: holder pointing at another slot's object
        {
          const ObjectRef holder = vm.new_object("Holder");
          vm.put_field(holder, FieldId{0},
                       slot(static_cast<int>(rng.next_below(kSlots))));
          set_slot(target, Value{holder});
        }
        break;
      case 4:  // drop a reference
        set_slot(target, Value{vm::kNullRef});
        break;
      case 5:  // mutate / read fields
        if (have_obj && vm.class_of(current.as_ref().id) ==
                            vm.find_class("Pair")) {
          vm.put_field(current.as_ref(), FieldId{0},
                       Value{static_cast<std::int64_t>(op)});
          observe(vm.get_field(current.as_ref(), FieldId{0}));
          observe(vm.get_field(current.as_ref(), FieldId{1}));
        }
        break;
      case 6:  // invoke
        if (have_obj && vm.class_of(current.as_ref().id) ==
                            vm.find_class("Counter")) {
          observe(vm.call(current.as_ref(), "inc"));
          observe(vm.call(current.as_ref(), "get"));
        }
        break;
      case 7:  // array traffic
        if (have_obj) {
          const ObjectRef ref = current.as_ref();
          if (vm.class_of(ref.id) == vm.registry().int_array_class()) {
            const std::int64_t n = vm.array_length(ref);
            const std::int64_t ix =
                static_cast<std::int64_t>(rng.next_below(
                    static_cast<std::uint64_t>(n)));
            vm.array_put(ref, ix, Value{static_cast<std::int64_t>(op * 7)});
            observe(vm.array_get(ref, ix));
            observe(Value{n});
          }
        }
        break;
      case 8:  // statics round-trip
        vm.put_static("Calc", "memory",
                      Value{static_cast<std::int64_t>(op)});
        observe(vm.get_static("Calc", "memory"));
        break;
      case 9:  // walk a holder chain
        {
          Value cursor = current;
          for (int depth = 0; depth < 4; ++depth) {
            if (!cursor.is_ref() || cursor.as_ref().is_null()) break;
            const ObjectRef obj = cursor.as_ref();
            if (vm.class_of(obj.id) != vm.find_class("Holder")) break;
            cursor = vm.get_field(obj, FieldId{0});
          }
          observe(cursor);
        }
        break;
    }

    if (op % 97 == 41) vm.collect_garbage();
    if (offload && op % 50 == 49) offload();
    // Drop the per-op driver pins; `roots` stays alive via its external root.
    vm.clear_driver_roots();
  }

  vm.remove_root(roots);
  vm.clear_driver_roots();
  return checksum;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, OffloadedExecutionObservesIdenticalState) {
  const std::uint64_t seed = GetParam();

  // Ground truth: standalone VM.
  auto reg1 = aide::test::make_test_registry();
  SimClock clock1;
  vm::VmConfig cfg;
  cfg.heap_capacity = 32 << 20;
  Vm standalone(cfg, reg1, clock1);
  const auto expected = run_program(standalone, seed, nullptr);

  // Same program on the platform, with periodic forced total offloads.
  auto reg2 = aide::test::make_test_registry();
  platform::PlatformConfig pcfg;
  pcfg.client_heap = 32 << 20;
  pcfg.auto_offload = false;
  platform::Platform p(reg2, pcfg);
  const auto offloaded = run_program(
      p.client(), seed, [&p] { p.offload_now(std::int64_t{1}); });

  EXPECT_EQ(offloaded, expected) << "seed " << seed;
  EXPECT_TRUE(p.offloaded());
}

TEST_P(DifferentialTest, RepeatedRunsOnOnePlatformStayConsistent) {
  const std::uint64_t seed = GetParam();
  auto reg = aide::test::make_test_registry();
  platform::PlatformConfig pcfg;
  pcfg.client_heap = 32 << 20;
  pcfg.auto_offload = false;
  platform::Platform p(reg, pcfg);

  const auto first = run_program(p.client(), seed, [&p] {
    p.offload_now(std::int64_t{1});
  });
  // Second run over a heap already scattered across both VMs.
  const auto second = run_program(p.client(), seed, [&p] {
    p.offload_now(std::int64_t{1});
  });
  EXPECT_EQ(first, second) << "seed " << seed;
}

TEST_P(DifferentialTest, FaultyExecutionObservesIdenticalState) {
  const std::uint64_t seed = GetParam();

  // Ground truth: standalone VM.
  auto reg1 = aide::test::make_test_registry();
  SimClock clock1;
  vm::VmConfig cfg;
  cfg.heap_capacity = 32 << 20;
  Vm standalone(cfg, reg1, clock1);
  const auto expected = run_program(standalone, seed, nullptr);

  struct Variant {
    const char* name;
    netsim::FaultPlan plan;
  };
  std::vector<Variant> variants;
  {
    // Surrogate dies almost immediately — typically under the very first
    // migration, whose payload takes longer than 40 ms of airtime.
    Variant v{"dead-early", {}};
    v.plan.dead_after = sim_ms(40);
    variants.push_back(v);
  }
  {
    // Surrogate dies mid-run, after remote execution is well established.
    // (The batched transport compresses the run to ~250-450 ms of virtual
    // time, so "mid-run" is earlier than it was under per-op framing.)
    Variant v{"dead-midrun", {}};
    v.plan.dead_after = sim_ms(100);
    variants.push_back(v);
  }
  {
    // Flaky radio: 40 ms outages every 300 ms for the whole run. Each is
    // survivable within the retry budget (a failed attempt re-sends 75 ms
    // later, past the window).
    Variant v{"flaky", {}};
    for (SimTime t = 0; t < sim_sec(100); t += sim_ms(300)) {
      v.plan.outages.push_back({t, t + sim_ms(40)});
    }
    variants.push_back(v);
  }
  {
    Variant v{"lossy", {}};
    v.plan.drop_probability = 0.10;
    v.plan.drop_seed = 0xBADF00D + seed;
    variants.push_back(v);
  }

  for (const Variant& v : variants) {
    auto reg2 = aide::test::make_test_registry();
    platform::PlatformConfig pcfg;
    pcfg.client_heap = 32 << 20;
    pcfg.auto_offload = false;
    pcfg.fault_plan = v.plan;
    platform::Platform p(reg2, pcfg);
    const auto observed = run_program(
        p.client(), seed, [&p] { p.offload_now(std::int64_t{1}); });
    EXPECT_EQ(observed, expected) << "seed " << seed << " variant " << v.name;
    if (v.plan.dead_after != netsim::FaultPlan::kNever) {
      // The program keeps offloading and calling into migrated state, so a
      // permanent death is always eventually discovered and recovered from.
      EXPECT_TRUE(p.surrogate_dead()) << "seed " << seed << " " << v.name;
      EXPECT_EQ(p.failures().size(), 1u) << "seed " << seed << " " << v.name;
      EXPECT_EQ(p.client().stub_count(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace aide
