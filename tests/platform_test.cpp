// Tests for the AIDE platform: automatic trigger-driven offloading, the
// forced (allocation-failure) rescue path, the beneficial-offloading
// decision, the single-offload prototype behaviour, enhancement plumbing,
// and the surrogate registry's ad-hoc selection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "platform/platform.hpp"
#include "platform/surrogate_registry.hpp"
#include "tests/test_util.hpp"

namespace aide::platform {
namespace {

using aide::test::make_test_registry;
using vm::ObjectRef;
using vm::Value;

PlatformConfig small_config() {
  PlatformConfig cfg;
  cfg.client_heap = 256 * 1024;
  cfg.surrogate_heap = 8 << 20;
  cfg.min_free_fraction = 0.20;
  cfg.trigger.low_free_threshold = 0.10;
  cfg.trigger.consecutive_reports = 2;
  cfg.client_gc_alloc_count_threshold = 16;
  cfg.client_gc_alloc_bytes_divisor = 16;
  return cfg;
}

TEST(PlatformTest, ConstructionWiresTwoVms) {
  Platform p(make_test_registry(), small_config());
  EXPECT_TRUE(p.client().is_client());
  EXPECT_FALSE(p.surrogate().is_client());
  EXPECT_DOUBLE_EQ(p.surrogate().cpu_speed(), 3.5);
  EXPECT_EQ(p.client().heap().capacity(), 256 * 1024);
  EXPECT_FALSE(p.offloaded());
}

// Gives the execution graph a pinned anchor (Device) plus some interaction
// history, the way any real application would.
void seed_pinned_anchor(Platform& p) {
  vm::Vm& client = p.client();
  const ObjectRef device = client.new_object("Device");
  client.add_root(device);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 4; ++i) {
    client.call(device, "beep");
    client.call(counter, "inc");
  }
}

TEST(PlatformTest, AllocationFailureRescuedByForcedOffload) {
  // Fill the client heap with reachable arrays; the next allocation cannot
  // succeed without offloading, and the platform must rescue it.
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);

  const ObjectRef holder = client.new_ref_array(64);
  client.add_root(holder);
  for (int i = 0; i < 5; ++i) {
    const ObjectRef chunk = client.new_char_array(40 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  // ~200 KB live of 256 KB. One more chunk would not fit without help.
  const ObjectRef extra = client.new_char_array(80 * 1024);
  EXPECT_TRUE(client.is_local(extra.id) || client.knows(extra.id));
  EXPECT_TRUE(p.offloaded());
  EXPECT_GT(p.offloads()[0].objects_migrated, 0u);
  EXPECT_LT(p.client().heap().used(), 256 * 1024);
}

TEST(PlatformTest, OffloadNowReportsDecision) {
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);
  const ObjectRef holder = client.new_ref_array(8);
  client.add_root(holder);
  for (int i = 0; i < 4; ++i) {
    const ObjectRef chunk = client.new_char_array(30 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  const auto report = p.offload_now(std::int64_t{60 * 1024});
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->decision.selected.offload_mem_bytes, 60 * 1024);
  EXPECT_GT(report->bytes_migrated, 0u);
  EXPECT_LT(report->client_heap_used_after,
            report->client_heap_used_before);
}

TEST(PlatformTest, NoBeneficialPartitioningReturnsNullopt) {
  // An empty execution history has nothing to offload.
  Platform p(make_test_registry(), small_config());
  EXPECT_FALSE(p.offload_now().has_value());
  EXPECT_FALSE(p.offloaded());
}

TEST(PlatformTest, TransparencyAcrossForcedOffload) {
  // The same program state is observable before and after migration.
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 5; ++i) client.call(counter, "inc");

  const auto report = p.offload_now(std::int64_t{1});
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  EXPECT_EQ(client.call(counter, "inc").as_int(), 6);
}

TEST(PlatformTest, MaxOffloadsLimitsAutomaticTriggers) {
  auto cfg = small_config();
  cfg.max_offloads = 0;  // prototype disabled: only explicit offload_now
  Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef holder = client.new_ref_array(64);
  client.add_root(holder);
  // Allocate until the heap is under pressure; automatic offloads must not
  // happen, so eventually this throws.
  bool threw = false;
  try {
    for (int i = 0; i < 64; ++i) {
      const ObjectRef chunk = client.new_char_array(30 * 1024);
      client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                       Value{chunk});
    }
  } catch (const VmError& e) {
    threw = true;
    EXPECT_EQ(e.code(), VmErrorCode::out_of_memory);
  }
  // The rescue path still fires (it is the last resort), so instead verify
  // that no trigger-driven offload happened before exhaustion.
  EXPECT_TRUE(threw || p.offloads().size() <= 1);
}

TEST(PlatformTest, EnhancementFlagsReachVms) {
  auto cfg = small_config();
  cfg.enhancements.stateless_natives_local = true;
  Platform p(make_test_registry(), cfg);
  EXPECT_TRUE(p.client().config().stateless_natives_local);
  EXPECT_TRUE(p.surrogate().config().stateless_natives_local);
}

TEST(PlatformTest, ElapsedTracksSimClock) {
  Platform p(make_test_registry(), small_config());
  p.client().work(sim_ms(5));
  EXPECT_EQ(p.elapsed(), sim_ms(5));
}

TEST(SurrogateRegistryTest, SelectsLowestLatency) {
  SurrogateRegistry reg;
  SurrogateInfo far;
  far.id = NodeId{10};
  far.name = "far";
  far.heap_capacity = 64 << 20;
  far.link = netsim::LinkParams::cellular();
  SurrogateInfo near_srv;
  near_srv.id = NodeId{11};
  near_srv.name = "near";
  near_srv.heap_capacity = 64 << 20;
  near_srv.link = netsim::LinkParams::wavelan();
  reg.advertise(far);
  reg.advertise(near_srv);

  const auto best = reg.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "near");
}

TEST(SurrogateRegistryTest, RequirementsFilter) {
  SurrogateRegistry reg;
  SurrogateInfo small;
  small.id = NodeId{1};
  small.name = "small";
  small.heap_capacity = 1 << 20;
  small.cpu_speed = 8.0;
  SurrogateInfo big;
  big.id = NodeId{2};
  big.name = "big";
  big.heap_capacity = 128 << 20;
  big.cpu_speed = 2.0;
  reg.advertise(small);
  reg.advertise(big);

  SurrogateRequirements req;
  req.min_heap_bytes = 32 << 20;
  const auto best = reg.select(req);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "big");

  req.min_cpu_speed = 4.0;
  EXPECT_FALSE(reg.select(req).has_value());
}

TEST(SurrogateRegistryTest, WithdrawRemoves) {
  SurrogateRegistry reg;
  SurrogateInfo s;
  s.id = NodeId{1};
  s.heap_capacity = 1 << 20;
  reg.advertise(s);
  EXPECT_EQ(reg.size(), 1u);
  reg.withdraw(NodeId{1});
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.select().has_value());
}

TEST(SurrogateRegistryTest, AdvertiseReplacesSameNode) {
  SurrogateRegistry reg;
  SurrogateInfo s;
  s.id = NodeId{1};
  s.cpu_speed = 1.0;
  s.heap_capacity = 1;
  reg.advertise(s);
  s.cpu_speed = 9.0;
  reg.advertise(s);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg.select()->cpu_speed, 9.0);
}

TEST(SurrogateRegistryTest, ConfigForAdoptsSurrogateParameters) {
  SurrogateInfo s;
  s.id = NodeId{5};
  s.cpu_speed = 2.5;
  s.heap_capacity = 48 << 20;
  s.link = netsim::LinkParams::fast_ethernet();
  const auto cfg = Platform::config_for(s);
  EXPECT_DOUBLE_EQ(cfg.surrogate_speedup, 2.5);
  EXPECT_EQ(cfg.surrogate_heap, 48 << 20);
  EXPECT_DOUBLE_EQ(cfg.link.bandwidth_bps, 100e6);
}

}  // namespace
}  // namespace aide::platform
