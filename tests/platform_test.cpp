// Tests for the AIDE platform: automatic trigger-driven offloading, the
// forced (allocation-failure) rescue path, the beneficial-offloading
// decision, the single-offload prototype behaviour, enhancement plumbing,
// and the surrogate registry's ad-hoc selection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "platform/platform.hpp"
#include "platform/surrogate_registry.hpp"
#include "tests/test_util.hpp"

namespace aide::platform {
namespace {

using aide::test::make_test_registry;
using vm::ObjectRef;
using vm::Value;

PlatformConfig small_config() {
  PlatformConfig cfg;
  cfg.client_heap = 256 * 1024;
  cfg.surrogate_heap = 8 << 20;
  cfg.min_free_fraction = 0.20;
  cfg.trigger.low_free_threshold = 0.10;
  cfg.trigger.consecutive_reports = 2;
  cfg.client_gc_alloc_count_threshold = 16;
  cfg.client_gc_alloc_bytes_divisor = 16;
  return cfg;
}

TEST(PlatformTest, ConstructionWiresTwoVms) {
  Platform p(make_test_registry(), small_config());
  EXPECT_TRUE(p.client().is_client());
  EXPECT_FALSE(p.surrogate().is_client());
  EXPECT_DOUBLE_EQ(p.surrogate().cpu_speed(), 3.5);
  EXPECT_EQ(p.client().heap().capacity(), 256 * 1024);
  EXPECT_FALSE(p.offloaded());
}

// Gives the execution graph a pinned anchor (Device) plus some interaction
// history, the way any real application would.
void seed_pinned_anchor(Platform& p) {
  vm::Vm& client = p.client();
  const ObjectRef device = client.new_object("Device");
  client.add_root(device);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 4; ++i) {
    client.call(device, "beep");
    client.call(counter, "inc");
  }
}

TEST(PlatformTest, AllocationFailureRescuedByForcedOffload) {
  // Fill the client heap with reachable arrays; the next allocation cannot
  // succeed without offloading, and the platform must rescue it.
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);

  const ObjectRef holder = client.new_ref_array(64);
  client.add_root(holder);
  for (int i = 0; i < 5; ++i) {
    const ObjectRef chunk = client.new_char_array(40 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  // ~200 KB live of 256 KB. One more chunk would not fit without help.
  const ObjectRef extra = client.new_char_array(80 * 1024);
  EXPECT_TRUE(client.is_local(extra.id) || client.knows(extra.id));
  EXPECT_TRUE(p.offloaded());
  EXPECT_GT(p.offloads()[0].objects_migrated, 0u);
  EXPECT_LT(p.client().heap().used(), 256 * 1024);
}

TEST(PlatformTest, OffloadNowReportsDecision) {
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);
  const ObjectRef holder = client.new_ref_array(8);
  client.add_root(holder);
  for (int i = 0; i < 4; ++i) {
    const ObjectRef chunk = client.new_char_array(30 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  const auto report = p.offload_now(std::int64_t{60 * 1024});
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->decision.selected.offload_mem_bytes, 60 * 1024);
  EXPECT_GT(report->bytes_migrated, 0u);
  EXPECT_LT(report->client_heap_used_after,
            report->client_heap_used_before);
}

TEST(PlatformTest, NoBeneficialPartitioningReturnsNullopt) {
  // An empty execution history has nothing to offload.
  Platform p(make_test_registry(), small_config());
  EXPECT_FALSE(p.offload_now().has_value());
  EXPECT_FALSE(p.offloaded());
}

TEST(PlatformTest, TransparencyAcrossForcedOffload) {
  // The same program state is observable before and after migration.
  Platform p(make_test_registry(), small_config());
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 5; ++i) client.call(counter, "inc");

  const auto report = p.offload_now(std::int64_t{1});
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  EXPECT_EQ(client.call(counter, "inc").as_int(), 6);
}

TEST(PlatformTest, MaxOffloadsLimitsAutomaticTriggers) {
  auto cfg = small_config();
  cfg.max_offloads = 0;  // prototype disabled: only explicit offload_now
  Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef holder = client.new_ref_array(64);
  client.add_root(holder);
  // Allocate until the heap is under pressure; automatic offloads must not
  // happen, so eventually this throws.
  bool threw = false;
  try {
    for (int i = 0; i < 64; ++i) {
      const ObjectRef chunk = client.new_char_array(30 * 1024);
      client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                       Value{chunk});
    }
  } catch (const VmError& e) {
    threw = true;
    EXPECT_EQ(e.code(), VmErrorCode::out_of_memory);
  }
  // The rescue path still fires (it is the last resort), so instead verify
  // that no trigger-driven offload happened before exhaustion.
  EXPECT_TRUE(threw || p.offloads().size() <= 1);
}

TEST(PlatformTest, EnhancementFlagsReachVms) {
  auto cfg = small_config();
  cfg.enhancements.stateless_natives_local = true;
  Platform p(make_test_registry(), cfg);
  EXPECT_TRUE(p.client().config().stateless_natives_local);
  EXPECT_TRUE(p.surrogate().config().stateless_natives_local);
}

TEST(PlatformTest, ElapsedTracksSimClock) {
  Platform p(make_test_registry(), small_config());
  p.client().work(sim_ms(5));
  EXPECT_EQ(p.elapsed(), sim_ms(5));
}

// Builds a platform with offloaded state and returns the Counter (inc'd to
// 5) whose value must survive whatever the test does to the surrogate.
ObjectRef offloaded_fixture(Platform& p) {
  vm::Vm& client = p.client();
  seed_pinned_anchor(p);
  const ObjectRef counter = client.new_object("Counter");
  client.add_root(counter);
  for (int i = 0; i < 5; ++i) client.call(counter, "inc");
  const ObjectRef holder = client.new_ref_array(8);
  client.add_root(holder);
  for (int i = 0; i < 4; ++i) {
    const ObjectRef chunk = client.new_char_array(30 * 1024);
    client.put_field(holder, FieldId{static_cast<std::uint32_t>(i)},
                     Value{chunk});
  }
  return counter;
}

TEST(PlatformFailureTest, HandlePeerFailureReclaimsAllSurrogateState) {
  Platform p(make_test_registry(), small_config());
  const ObjectRef counter = offloaded_fixture(p);
  ASSERT_TRUE(p.offload_now(std::int64_t{1}).has_value());
  ASSERT_GT(p.surrogate().heap().object_count(), 0u);

  const SimTime before = p.clock().now();
  EXPECT_TRUE(p.handle_peer_failure());
  EXPECT_TRUE(p.surrogate_dead());
  ASSERT_EQ(p.failures().size(), 1u);
  EXPECT_GT(p.failures()[0].objects_reclaimed, 0u);
  EXPECT_GT(p.failures()[0].bytes_reclaimed, 0u);
  // Every surviving object is home again; the pair is severed.
  EXPECT_EQ(p.surrogate().heap().object_count(), 0u);
  EXPECT_EQ(p.client().stub_count(), 0u);
  EXPECT_FALSE(p.client_endpoint().connected());
  // The recovery channel was charged at least its flat latency.
  EXPECT_GE(p.clock().now() - before, p.config().recovery_latency);
  // Execution continues fully local with state intact.
  EXPECT_EQ(p.client().call(counter, "get").as_int(), 5);
  EXPECT_EQ(p.client().call(counter, "inc").as_int(), 6);
  // Triggers are suppressed and further offloads refused.
  EXPECT_TRUE(p.resource_monitor().suppressed());
  EXPECT_FALSE(p.offload_now(std::int64_t{1}).has_value());
  // Idempotent: a second failure report is not recorded.
  EXPECT_TRUE(p.handle_peer_failure());
  EXPECT_EQ(p.failures().size(), 1u);
}

TEST(PlatformFailureTest, DeadLinkDuringAccessFallsBackLocally) {
  // The link goes silent forever at t = 1 s, after the offload completed.
  auto cfg = small_config();
  cfg.fault_plan.outages.push_back(
      {sim_sec(1), netsim::FaultPlan::kNever});
  Platform p(make_test_registry(), cfg);
  vm::Vm& client = p.client();
  const ObjectRef counter = offloaded_fixture(p);
  ASSERT_TRUE(p.offload_now(std::int64_t{1}).has_value());
  // Make sure the counter itself is remote, whatever the partitioner chose.
  if (client.is_local(counter.id)) {
    const ObjectId ids[] = {counter.id};
    p.client_endpoint().migrate_objects(ids);
  }
  ASSERT_FALSE(client.is_local(counter.id));
  ASSERT_LT(p.clock().now(), sim_sec(1));

  client.work(sim_sec(2));  // sail past the outage start
  // The first remote touch discovers the dead peer and recovers; the
  // operation completes against repatriated state.
  EXPECT_EQ(client.call(counter, "get").as_int(), 5);
  EXPECT_TRUE(p.surrogate_dead());
  EXPECT_EQ(p.failures().size(), 1u);
  EXPECT_GE(p.client_endpoint().stats().recovered_rpcs, 1u);
  EXPECT_EQ(p.client().stub_count(), 0u);
  // Subsequent operations stay local and consistent.
  EXPECT_TRUE(client.is_local(counter.id));
  EXPECT_EQ(client.call(counter, "inc").as_int(), 6);
}

TEST(PlatformFailureTest, FailureMarksAttachedRegistryEntryDead) {
  SurrogateRegistry reg;
  SurrogateInfo near_srv;
  near_srv.id = NodeId{21};
  near_srv.name = "near";
  near_srv.heap_capacity = 64 << 20;
  near_srv.link = netsim::LinkParams::wavelan();
  SurrogateInfo far;
  far.id = NodeId{22};
  far.name = "far";
  far.heap_capacity = 64 << 20;
  far.link = netsim::LinkParams::cellular();
  reg.advertise(near_srv);
  reg.advertise(far);
  ASSERT_EQ(reg.select()->name, "near");

  Platform p(make_test_registry(), small_config());
  p.attach_surrogate_registry(&reg, near_srv.id);
  p.handle_peer_failure();

  EXPECT_TRUE(reg.is_dead(near_srv.id));
  // Selection now avoids the dead surrogate but keeps its advertisement.
  ASSERT_TRUE(reg.select().has_value());
  EXPECT_EQ(reg.select()->name, "far");
  EXPECT_EQ(reg.size(), 2u);
  // A fresh advertisement is proof of life.
  reg.advertise(near_srv);
  EXPECT_FALSE(reg.is_dead(near_srv.id));
  EXPECT_EQ(reg.select()->name, "near");
}

TEST(SurrogateRegistryTest, SelectsLowestLatency) {
  SurrogateRegistry reg;
  SurrogateInfo far;
  far.id = NodeId{10};
  far.name = "far";
  far.heap_capacity = 64 << 20;
  far.link = netsim::LinkParams::cellular();
  SurrogateInfo near_srv;
  near_srv.id = NodeId{11};
  near_srv.name = "near";
  near_srv.heap_capacity = 64 << 20;
  near_srv.link = netsim::LinkParams::wavelan();
  reg.advertise(far);
  reg.advertise(near_srv);

  const auto best = reg.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "near");
}

TEST(SurrogateRegistryTest, RequirementsFilter) {
  SurrogateRegistry reg;
  SurrogateInfo small;
  small.id = NodeId{1};
  small.name = "small";
  small.heap_capacity = 1 << 20;
  small.cpu_speed = 8.0;
  SurrogateInfo big;
  big.id = NodeId{2};
  big.name = "big";
  big.heap_capacity = 128 << 20;
  big.cpu_speed = 2.0;
  reg.advertise(small);
  reg.advertise(big);

  SurrogateRequirements req;
  req.min_heap_bytes = 32 << 20;
  const auto best = reg.select(req);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->name, "big");

  req.min_cpu_speed = 4.0;
  EXPECT_FALSE(reg.select(req).has_value());
}

TEST(SurrogateRegistryTest, WithdrawRemoves) {
  SurrogateRegistry reg;
  SurrogateInfo s;
  s.id = NodeId{1};
  s.heap_capacity = 1 << 20;
  reg.advertise(s);
  EXPECT_EQ(reg.size(), 1u);
  reg.withdraw(NodeId{1});
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.select().has_value());
}

TEST(SurrogateRegistryTest, AdvertiseReplacesSameNode) {
  SurrogateRegistry reg;
  SurrogateInfo s;
  s.id = NodeId{1};
  s.cpu_speed = 1.0;
  s.heap_capacity = 1;
  reg.advertise(s);
  s.cpu_speed = 9.0;
  reg.advertise(s);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg.select()->cpu_speed, 9.0);
}

TEST(SurrogateRegistryTest, ConfigForAdoptsSurrogateParameters) {
  SurrogateInfo s;
  s.id = NodeId{5};
  s.cpu_speed = 2.5;
  s.heap_capacity = 48 << 20;
  s.link = netsim::LinkParams::fast_ethernet();
  const auto cfg = Platform::config_for(s);
  EXPECT_DOUBLE_EQ(cfg.surrogate_speedup, 2.5);
  EXPECT_EQ(cfg.surrogate_heap, 48 << 20);
  EXPECT_DOUBLE_EQ(cfg.link.bandwidth_bps, 100e6);
}

}  // namespace
}  // namespace aide::platform
