// Tests for partitioning-policy evaluation: the free_memory objective
// (feasibility constraint + minimum-cut-cost selection, paper 5.1) and the
// speed_up objective (predicted-time selection and the "not beneficial → do
// not offload" decision, paper 5.2 / Biomer).
#include <gtest/gtest.h>

#include "graph/exec_graph.hpp"
#include "partition/partitioner.hpp"

namespace aide::partition {
namespace {

using graph::ComponentKey;
using graph::EdgeInfo;
using graph::ExecGraph;

ComponentKey cls(std::uint32_t id) { return ComponentKey{ClassId{id}}; }

EdgeInfo edge(std::uint64_t bytes, std::uint64_t interactions = 1) {
  return EdgeInfo{.invocations = interactions, .accesses = 0, .bytes = bytes};
}

// A small app shape: pinned UI (0), view (1), data (2), bulk store (3).
// UI—view is hot; data/store are big and loosely coupled to the view.
ExecGraph sample_graph() {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_memory(cls(0), 10'000, 5);
  g.add_memory(cls(1), 40'000, 10);
  g.add_memory(cls(2), 400'000, 50);
  g.add_memory(cls(3), 600'000, 3);
  g.add_self_time(cls(1), sim_ms(100));
  g.add_self_time(cls(2), sim_ms(800));
  g.add_self_time(cls(3), sim_ms(100));
  g.set_edge(cls(0), cls(1), edge(500'000, 2000));  // hot UI edge
  g.set_edge(cls(1), cls(2), edge(30'000, 300));
  g.set_edge(cls(2), cls(3), edge(200'000, 1000));  // data <-> store hot
  g.set_edge(cls(1), cls(3), edge(5'000, 50));
  return g;
}

PartitionRequest memory_request(std::int64_t min_free) {
  PartitionRequest req;
  req.objective = Objective::free_memory;
  req.heap_capacity = 1 << 20;
  req.min_free_bytes = min_free;
  req.history_duration = sim_sec(10);
  return req;
}

TEST(MemoryObjectiveTest, SelectsFeasibleMinimumCut) {
  const auto g = sample_graph();
  const auto d = decide_partitioning(g, memory_request(500'000));
  ASSERT_TRUE(d.offload);
  EXPECT_GE(d.selected.offload_mem_bytes, 500'000);
  // Offloading {2,3} (cut = edges 1-2 + 1-3) is far cheaper than splitting
  // the 2-3 pair or crossing the UI edge.
  EXPECT_TRUE(d.selected.offload.contains(cls(2)));
  EXPECT_TRUE(d.selected.offload.contains(cls(3)));
  EXPECT_FALSE(d.selected.offload.contains(cls(0)));
  EXPECT_FALSE(d.selected.offload.contains(cls(1)));
}

TEST(MemoryObjectiveTest, InfeasibleWhenNothingFreesEnough) {
  const auto g = sample_graph();
  const auto d = decide_partitioning(g, memory_request(10'000'000));
  EXPECT_FALSE(d.offload);
  EXPECT_EQ(d.candidates_feasible, 0u);
  EXPECT_GT(d.candidates_total, 0u);
}

TEST(MemoryObjectiveTest, PinnedNeverSelected) {
  const auto g = sample_graph();
  const auto d = decide_partitioning(g, memory_request(1));
  ASSERT_TRUE(d.offload);
  EXPECT_FALSE(d.selected.offload.contains(cls(0)));
}

TEST(MemoryObjectiveTest, PredictedBandwidthFromHistory) {
  const auto g = sample_graph();
  auto req = memory_request(500'000);
  req.history_duration = sim_sec(10);
  const auto d = decide_partitioning(g, req);
  ASSERT_TRUE(d.offload);
  // bandwidth = cut_bytes * 8 / 10s
  EXPECT_NEAR(d.predicted_bandwidth_bps,
              static_cast<double>(d.selected.cut_bytes) * 8.0 / 10.0, 1.0);
}

TEST(MemoryObjectiveTest, LowerMinFreeNeverIncreasesCutCost) {
  const auto g = sample_graph();
  const auto strict = decide_partitioning(g, memory_request(900'000));
  const auto loose = decide_partitioning(g, memory_request(100'000));
  ASSERT_TRUE(strict.offload);
  ASSERT_TRUE(loose.offload);
  EXPECT_LE(loose.selected.cut_weight, strict.selected.cut_weight);
  EXPECT_GE(loose.candidates_feasible, strict.candidates_feasible);
}

TEST(MemoryObjectiveTest, EmptyGraphDoesNotOffload) {
  ExecGraph g;
  const auto d = decide_partitioning(g, memory_request(1));
  EXPECT_FALSE(d.offload);
}

TEST(SpeedupObjectiveTest, OffloadsComputeHeavyComponent) {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_self_time(cls(0), sim_sec(1));
  g.add_self_time(cls(1), sim_sec(100));  // heavy compute
  g.add_memory(cls(1), 10'000, 10);
  g.set_edge(cls(0), cls(1), edge(1'000, 10));  // cheap boundary

  PartitionRequest req;
  req.objective = Objective::speed_up;
  req.surrogate_speedup = 3.5;
  req.history_duration = sim_sec(101);
  const auto d = decide_partitioning(g, req);
  ASSERT_TRUE(d.offload);
  EXPECT_TRUE(d.selected.offload.contains(cls(1)));
  EXPECT_LT(d.predicted_offloaded_time, d.predicted_original_time);
  // Ideal bound: 1s client + 100/3.5s surrogate + small comm.
  EXPECT_GT(d.predicted_offloaded_time, sim_sec(29));
  EXPECT_LT(d.predicted_offloaded_time, sim_sec(40));
}

TEST(SpeedupObjectiveTest, DeclinesWhenCommunicationDominates) {
  // Biomer's shape: compute is tightly coupled to the pinned UI, so every
  // candidate's communication cost exceeds the CPU gain.
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_self_time(cls(0), sim_sec(1));
  g.add_self_time(cls(1), sim_sec(10));
  g.add_memory(cls(1), 10'000, 10);
  // 10^7 interactions across the boundary: at 2.4 ms RTT each this swamps
  // the 7-second CPU saving.
  g.set_edge(cls(0), cls(1), edge(1'000'000, 10'000'000));

  PartitionRequest req;
  req.objective = Objective::speed_up;
  req.surrogate_speedup = 3.5;
  req.history_duration = sim_sec(11);
  const auto d = decide_partitioning(g, req);
  EXPECT_FALSE(d.offload);
  // When declining, the decision still reports the best candidate's
  // prediction (which is worse than staying put) — the paper's "predicted
  // 790 s vs 750 s" Biomer report.
  EXPECT_GT(d.predicted_offloaded_time, d.predicted_original_time);
}

TEST(SpeedupObjectiveTest, MinImprovementRaisesTheBar) {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_self_time(cls(0), sim_sec(10));
  g.add_self_time(cls(1), sim_sec(1));  // marginal gain only
  g.set_edge(cls(0), cls(1), edge(100, 1));

  PartitionRequest req;
  req.objective = Objective::speed_up;
  req.surrogate_speedup = 3.5;
  req.history_duration = sim_sec(11);
  req.charge_migration = false;
  const auto permissive = decide_partitioning(g, req);
  EXPECT_TRUE(permissive.offload);

  req.min_improvement = 0.50;  // demand a 2x win: impossible here
  const auto strict = decide_partitioning(g, req);
  EXPECT_FALSE(strict.offload);
}

TEST(SpeedupObjectiveTest, MigrationChargeCanFlipDecision) {
  ExecGraph g;
  g.set_pinned(cls(0), true);
  g.add_self_time(cls(0), sim_ms(100));
  g.add_self_time(cls(1), sim_ms(200));
  g.add_memory(cls(1), 200 << 20, 1);  // enormous state to ship
  g.set_edge(cls(0), cls(1), edge(10, 1));

  PartitionRequest req;
  req.objective = Objective::speed_up;
  req.surrogate_speedup = 3.5;
  req.history_duration = sim_ms(300);

  req.charge_migration = true;
  EXPECT_FALSE(decide_partitioning(g, req).offload);
  req.charge_migration = false;
  EXPECT_TRUE(decide_partitioning(g, req).offload);
}

TEST(PredictionHelpersTest, CommTimeMatchesLinkModel) {
  graph::Candidate cand;
  cand.cut_invocations = 100;
  cand.cut_bytes = 1375;  // 1 ms at 11 Mbps
  const auto t = predicted_comm_time(cand, netsim::LinkParams::wavelan());
  EXPECT_EQ(t, 100 * sim_us(2400) + sim_ms(1));
}

TEST(PredictionHelpersTest, OffloadTimeScalesWithSpeedup) {
  graph::Candidate cand;
  cand.offload_self_time = sim_sec(35);
  PartitionRequest req;
  req.objective = Objective::speed_up;
  req.surrogate_speedup = 3.5;
  req.charge_migration = false;
  const auto t = predicted_offload_time(cand, sim_sec(35), req);
  EXPECT_EQ(t, sim_sec(10));
}

TEST(DecisionTest, ComputeTimeIsMeasured) {
  const auto g = sample_graph();
  const auto d = decide_partitioning(g, memory_request(1));
  EXPECT_GE(d.compute_seconds, 0.0);
  EXPECT_LT(d.compute_seconds, 5.0);
}

}  // namespace
}  // namespace aide::partition
