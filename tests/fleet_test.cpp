// Multi-session surrogate server + fleet emulation tests.
//
// Covers the session-isolation guarantees (cross-session references rejected
// at the refmap boundary, epoch fencing scoped to one session, per-session
// stats namespacing), the admission/budget layer, deterministic round-robin
// scheduling, and the emulated fleet (byte-determinism at N=16, exact
// single-session parity with the plain emulator).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "common/error.hpp"
#include "emul/fleet.hpp"
#include "emul/recorder.hpp"
#include "platform/surrogate_server.hpp"
#include "rpc/refmap.hpp"
#include "vm/klass.hpp"
#include "vm/vm.hpp"

using namespace aide;

namespace {

std::shared_ptr<vm::ClassRegistry> rec_registry() {
  auto reg = std::make_shared<vm::ClassRegistry>();
  vm::ClassBuilder cb("Rec");
  for (int f = 0; f < 4; ++f) cb.field("f" + std::to_string(f));
  reg->register_class(cb.build());
  return reg;
}

platform::ServerConfig script_config() {
  platform::ServerConfig cfg;
  // The Rec registry is field-only (no method IR); the gates-over-a-real-
  // registry path is covered by SharedGatesRunOnce below.
  cfg.static_analysis = false;
  cfg.effect_verify = false;
  return cfg;
}

// Opens a session and offloads `count` fresh Rec objects; returns their refs.
std::vector<vm::ObjectRef> offload_recs(platform::Session& s,
                                        std::size_t count) {
  std::vector<vm::ObjectRef> objs;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < count; ++i) {
    const vm::ObjectRef o = s.client().new_object("Rec");
    s.client().add_root(o);
    objs.push_back(o);
    ids.push_back(o.id);
  }
  EXPECT_TRUE(s.offload(ids));
  return objs;
}

// --- refmap boundary ---------------------------------------------------------

TEST(FleetRefMap, CrossSessionHandleRejected) {
  rpc::RefMap a;
  rpc::RefMap b;
  a.set_handle_namespace(1);
  b.set_handle_namespace(2);

  const ObjectId oa{(std::uint64_t{7} << 48) | 1};
  const ObjectId ob{(std::uint64_t{9} << 48) | 1};
  const ExportHandle ha = a.export_object(oa);
  const ExportHandle hb = b.export_object(ob);

  // Same low bits, different namespace: without namespacing hb's low bits
  // would wrongly resolve in a.
  EXPECT_EQ(ha.value() & 0xFFFFFFFFFFFFull, hb.value() & 0xFFFFFFFFFFFFull);
  EXPECT_EQ(rpc::RefMap::namespace_of(ha), 1u);
  EXPECT_EQ(rpc::RefMap::namespace_of(hb), 2u);

  EXPECT_EQ(a.resolve_export(ha), oa);
  EXPECT_THROW((void)a.resolve_export(hb), VmError);
  EXPECT_THROW((void)b.resolve_export(ha), VmError);
}

TEST(FleetRefMap, DefaultNamespaceIsLegacyPlainHandles) {
  rpc::RefMap m;
  const ObjectId id{(std::uint64_t{3} << 48) | 5};
  const ExportHandle h = m.export_object(id);
  EXPECT_EQ(h.value(), 1u);  // no namespace bits: pre-fleet wire handles
  EXPECT_EQ(m.resolve_export(h), id);
}

// --- session isolation on a live server --------------------------------------

TEST(FleetServer, SessionsSeeOnlyTheirOwnValues) {
  platform::SurrogateServer server(rec_registry(), script_config());
  platform::Session* s0 = server.open_session();
  platform::Session* s1 = server.open_session();
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);

  const auto o0 = offload_recs(*s0, 2);
  const auto o1 = offload_recs(*s1, 2);

  s0->client().put_field(o0[0], FieldId{0}, vm::Value{std::int64_t{111}});
  s1->client().put_field(o1[0], FieldId{0}, vm::Value{std::int64_t{222}});
  s0->client_endpoint().flush_pending();
  s1->client_endpoint().flush_pending();

  EXPECT_EQ(s0->client().get_field(o0[0], FieldId{0}).as_int(), 111);
  EXPECT_EQ(s1->client().get_field(o1[0], FieldId{0}).as_int(), 222);
}

TEST(FleetServer, EpochBumpDoesNotFenceNeighborSession) {
  platform::SurrogateServer server(rec_registry(), script_config());
  platform::Session* s0 = server.open_session();
  platform::Session* s1 = server.open_session();
  const auto o0 = offload_recs(*s0, 2);
  const auto o1 = offload_recs(*s1, 2);
  (void)o1;

  const std::uint32_t epoch1_before = s1->client_endpoint().epoch();

  // Session 0 migrates again (a second batch), bumping *its* epoch.
  std::vector<ObjectId> more;
  const vm::ObjectRef extra = s0->client().new_object("Rec");
  s0->client().add_root(extra);
  more.push_back(extra.id);
  EXPECT_TRUE(s0->offload(more));
  EXPECT_GT(s0->client_endpoint().epoch(), 1u);

  // Session 1's fencing state is untouched and its traffic flows clean.
  EXPECT_EQ(s1->client_endpoint().epoch(), epoch1_before);
  s1->client().put_field(o1[1], FieldId{1}, vm::Value{std::int64_t{77}});
  s1->client_endpoint().flush_pending();
  EXPECT_EQ(s1->client().get_field(o1[1], FieldId{1}).as_int(), 77);
  const rpc::EndpointStats st = platform::SurrogateServer::session_stats(*s1);
  EXPECT_EQ(st.stale_frames_fenced, 0u);
  EXPECT_EQ(st.aborted_rpcs, 0u);
}

// --- admission + budgets -----------------------------------------------------

TEST(FleetServer, AdmissionCapRefusesAndFreedSlotReadmits) {
  platform::ServerConfig cfg = script_config();
  cfg.max_sessions = 2;
  platform::SurrogateServer server(rec_registry(), cfg);

  platform::Session* a = server.open_session();
  platform::Session* b = server.open_session();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(server.open_session(), nullptr);
  EXPECT_EQ(server.stats().admission_rejections, 1u);
  EXPECT_EQ(server.session_count(), 2u);

  server.close_session(a->id());
  EXPECT_EQ(server.session_count(), 1u);
  platform::Session* c = server.open_session();
  ASSERT_NE(c, nullptr);
  // Session ids are never reused even when slots are.
  EXPECT_EQ(c->id().value(), 2u);
}

TEST(FleetServer, OffloadedBytesBudgetRefusesWithoutSideEffects) {
  platform::ServerConfig cfg = script_config();
  cfg.budget.max_offloaded_bytes = 1;  // refuse any real batch
  platform::SurrogateServer server(rec_registry(), cfg);
  platform::Session* s = server.open_session();

  const vm::ObjectRef o = s->client().new_object("Rec");
  s->client().add_root(o);
  std::vector<ObjectId> ids{o.id};
  EXPECT_FALSE(s->offload(ids));
  EXPECT_EQ(s->budget_refusals(), 1u);
  EXPECT_EQ(s->offloaded_bytes(), 0u);
  // Nothing moved: the object is still client-local and fully usable.
  s->client().put_field(o, FieldId{0}, vm::Value{std::int64_t{5}});
  EXPECT_EQ(s->client().get_field(o, FieldId{0}).as_int(), 5);
  const rpc::EndpointStats st = platform::SurrogateServer::session_stats(*s);
  EXPECT_EQ(st.migrations_sent, 0u);
}

TEST(FleetServer, OpRateBudgetThrottlesPerTurn) {
  platform::ServerConfig cfg = script_config();
  cfg.budget.max_ops_per_turn = 3;
  platform::SurrogateServer server(rec_registry(), cfg);
  server.open_session();

  std::vector<std::uint32_t> ops_per_turn;
  server.run_rounds(2, [&](platform::Session& s) {
    std::uint32_t done = 0;
    while (s.charge_ops(1)) done += 1;
    ops_per_turn.push_back(done);
    return platform::TurnOutcome::yielded;
  });
  ASSERT_EQ(ops_per_turn.size(), 2u);
  EXPECT_EQ(ops_per_turn[0], 3u);  // allowance enforced...
  EXPECT_EQ(ops_per_turn[1], 3u);  // ...and reset each turn
  EXPECT_EQ(server.find_session(SessionId{0})->throttles(), 2u);
}

// --- scheduling --------------------------------------------------------------

TEST(FleetServer, RoundRobinVisitsInSessionOrderAndClosesAtRoundEnd) {
  platform::SurrogateServer server(rec_registry(), script_config());
  server.open_session();
  server.open_session();
  server.open_session();

  std::vector<std::uint32_t> visits;
  const std::size_t rounds =
      server.run_rounds(3, [&](platform::Session& s) {
        visits.push_back(s.id().value());
        // Session 1 finishes on its first turn; it must still not perturb
        // round 1's visit order, and must be gone from round 2 on.
        if (s.id().value() == 1 && s.turns_taken() == 1) {
          return platform::TurnOutcome::finished;
        }
        return platform::TurnOutcome::yielded;
      });
  EXPECT_EQ(rounds, 3u);
  const std::vector<std::uint32_t> expected{0, 1, 2, 0, 2, 0, 2};
  EXPECT_EQ(visits, expected);
  EXPECT_EQ(server.session_count(), 2u);
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

// --- stats namespacing -------------------------------------------------------

TEST(FleetServer, SingleSessionAggregateEqualsSessionStats) {
  platform::SurrogateServer server(rec_registry(), script_config());
  platform::Session* s = server.open_session();
  const auto objs = offload_recs(*s, 3);
  for (int i = 0; i < 10; ++i) {
    s->client().put_field(objs[static_cast<std::size_t>(i) % 3], FieldId{0},
                          vm::Value{std::int64_t{i}});
    s->client_endpoint().flush_pending();
    (void)s->client().get_field(objs[static_cast<std::size_t>(i) % 3],
                                FieldId{0});
  }

  const rpc::EndpointStats per = platform::SurrogateServer::session_stats(*s);
  const rpc::EndpointStats agg = server.aggregate_stats();
  EXPECT_EQ(per.rpcs_sent, agg.rpcs_sent);
  EXPECT_EQ(per.rpcs_served, agg.rpcs_served);
  EXPECT_EQ(per.bytes_sent, agg.bytes_sent);
  EXPECT_EQ(per.bytes_received, agg.bytes_received);
  EXPECT_EQ(per.ops_sent, agg.ops_sent);
  EXPECT_EQ(per.batches_sent, agg.batches_sent);
  EXPECT_EQ(per.batched_ops, agg.batched_ops);
  EXPECT_EQ(per.migrations_sent, agg.migrations_sent);
  EXPECT_EQ(per.retries, agg.retries);
  EXPECT_EQ(per.timeouts, agg.timeouts);
  EXPECT_GT(agg.rpcs_sent, 0u);
}

TEST(FleetServer, PerSessionStatsStayNamespaced) {
  platform::SurrogateServer server(rec_registry(), script_config());
  platform::Session* s0 = server.open_session();
  platform::Session* s1 = server.open_session();
  const auto o0 = offload_recs(*s0, 1);
  offload_recs(*s1, 1);

  // Only session 0 sends data traffic.
  for (int i = 0; i < 5; ++i) {
    s0->client().put_field(o0[0], FieldId{0}, vm::Value{std::int64_t{i}});
    s0->client_endpoint().flush_pending();
  }
  const rpc::EndpointStats st0 =
      platform::SurrogateServer::session_stats(*s0);
  const rpc::EndpointStats st1 =
      platform::SurrogateServer::session_stats(*s1);
  EXPECT_GT(st0.ops_sent, 0u);
  EXPECT_EQ(st1.ops_sent, 0u);  // the neighbor's counters never move
  const rpc::EndpointStats agg = server.aggregate_stats();
  EXPECT_EQ(agg.ops_sent, st0.ops_sent + st1.ops_sent);
}

// --- shared startup gates ----------------------------------------------------

TEST(FleetServer, SharedGatesRunOncePerServer) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  apps::app_by_name("Tracer").register_classes(*reg);
  platform::ServerConfig cfg;  // gates on (the default)
  platform::SurrogateServer server(std::move(reg), cfg);

  ASSERT_TRUE(server.analysis_report().has_value());
  EXPECT_TRUE(server.analysis_report()->ok());
  ASSERT_TRUE(server.verify_report().has_value());

  // Admission after the gates is pure construction: no re-analysis, and
  // every session shares the server's oracle and registry.
  for (int i = 0; i < 8; ++i) ASSERT_NE(server.open_session(), nullptr);
  EXPECT_EQ(server.stats().sessions_opened, 8u);
}

// --- emulated fleet ----------------------------------------------------------

apps::AppParams tiny_tracer() {
  apps::AppParams p;
  p.trace_w = 8;
  p.trace_h = 6;
  p.spheres = 3;
  return p;
}

struct RecordedTrace {
  std::shared_ptr<vm::ClassRegistry> registry;
  emul::Trace trace;
};

RecordedTrace record_tiny_tracer() {
  RecordedTrace out;
  out.registry = std::make_shared<vm::ClassRegistry>();
  const auto& app = apps::app_by_name("Tracer");
  app.register_classes(*out.registry);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.name = "prototype";
  cfg.heap_capacity = std::int64_t{64} << 20;
  cfg.gc_alloc_count_threshold = 1024;
  cfg.gc_alloc_bytes_divisor = 256;
  vm::Vm vm(cfg, out.registry, clock);
  emul::TraceRecorder recorder;
  vm.add_hooks(&recorder);
  app.run(vm, tiny_tracer());
  out.trace = recorder.take();
  return out;
}

emul::FleetConfig fleet_cfg() {
  emul::FleetConfig cfg;
  cfg.session.trigger_mode = emul::TriggerMode::trace_fraction;
  cfg.session.eval_at_fraction = 0.25;
  cfg.session.objective = partition::Objective::speed_up;
  cfg.session.surrogate_speedup = 3.5;
  cfg.session.heap_capacity = std::int64_t{64} << 20;
  cfg.session.stateless_natives_local = true;
  return cfg;
}

TEST(FleetEmul, SixteenSessionsAreByteDeterministic) {
  const RecordedTrace rec = record_tiny_tracer();
  emul::FleetEmulator fleet(rec.registry, fleet_cfg());
  const emul::FleetResult a = fleet.run(rec.trace, 16);
  const emul::FleetResult b = fleet.run(rec.trace, 16);

  ASSERT_EQ(a.sessions.size(), 16u);
  ASSERT_EQ(b.sessions.size(), 16u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.surrogate_busy, b.surrogate_busy);
  EXPECT_EQ(a.total_remote_ops, b.total_remote_ops);
  EXPECT_EQ(a.turns, b.turns);
  EXPECT_EQ(a.op_latencies, b.op_latencies);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.sessions[i].emulated_time, b.sessions[i].emulated_time);
    EXPECT_EQ(a.sessions[i].comm_time, b.sessions[i].comm_time);
    EXPECT_EQ(a.sessions[i].queue_time, b.sessions[i].queue_time);
    EXPECT_EQ(a.sessions[i].remote_invocations,
              b.sessions[i].remote_invocations);
    EXPECT_EQ(a.sessions[i].remote_accesses, b.sessions[i].remote_accesses);
  }
}

TEST(FleetEmul, SingleSessionFleetMatchesPlainEmulator) {
  const RecordedTrace rec = record_tiny_tracer();
  emul::FleetEmulator fleet(rec.registry, fleet_cfg());
  const emul::FleetResult f = fleet.run(rec.trace, 1);

  emul::Emulator solo(rec.registry, fleet_cfg().session);
  const emul::EmulationResult r = solo.run(rec.trace);

  ASSERT_EQ(f.sessions.size(), 1u);
  const emul::EmulationResult& s = f.sessions[0];
  // A one-session fleet queues on nobody: every number matches the plain
  // single-session emulator exactly.
  EXPECT_EQ(s.queue_time, 0);
  EXPECT_EQ(r.queue_time, 0);
  EXPECT_EQ(s.emulated_time, r.emulated_time);
  EXPECT_EQ(s.base_time, r.base_time);
  EXPECT_EQ(s.comm_time, r.comm_time);
  EXPECT_EQ(s.migration_time, r.migration_time);
  EXPECT_EQ(s.gc_pressure_time, r.gc_pressure_time);
  EXPECT_EQ(s.remote_invocations, r.remote_invocations);
  EXPECT_EQ(s.remote_accesses, r.remote_accesses);
  EXPECT_EQ(s.remote_bytes, r.remote_bytes);
  EXPECT_EQ(s.peak_client_live, r.peak_client_live);
}

TEST(FleetEmul, ContentionOnlyAddsQueueTime) {
  const RecordedTrace rec = record_tiny_tracer();
  emul::FleetEmulator fleet(rec.registry, fleet_cfg());
  const emul::FleetResult f = fleet.run(rec.trace, 8);

  emul::Emulator solo(rec.registry, fleet_cfg().session);
  const emul::EmulationResult r = solo.run(rec.trace);

  // Identical traces + identical config: each session's own work is exactly
  // the solo run; sharing the surrogate can only add queueing delay.
  for (const emul::EmulationResult& s : f.sessions) {
    EXPECT_EQ(s.comm_time, r.comm_time);
    EXPECT_EQ(s.migration_time, r.migration_time);
    EXPECT_EQ(s.remote_invocations, r.remote_invocations);
    EXPECT_EQ(s.emulated_time, r.emulated_time + s.queue_time);
  }
}

}  // namespace
