// Tests for the MiniVM execution engine: objects, fields, arrays, statics,
// method dispatch, the context API's error behaviour, CPU-work accounting,
// and the Figure 9 self-time attribution.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tests/test_util.hpp"
#include "vm/hooks.hpp"
#include "vm/vm.hpp"

namespace aide::vm {
namespace {

using aide::test::make_test_registry;

class VmTest : public ::testing::Test {
 protected:
  VmTest() : registry_(make_test_registry()), vm_(cfg(), registry_, clock_) {}

  static VmConfig cfg() {
    VmConfig c;
    c.node = NodeId{1};
    c.name = "test-vm";
    c.heap_capacity = 1 << 20;
    return c;
  }

  std::shared_ptr<ClassRegistry> registry_;
  SimClock clock_;
  Vm vm_;
};

TEST_F(VmTest, NewObjectHasDefaultFields) {
  const ObjectRef pair = vm_.new_object("Pair");
  EXPECT_TRUE(vm_.get_field(pair, FieldId{0}).is_nil());
  EXPECT_TRUE(vm_.get_field(pair, FieldId{1}).is_nil());
}

TEST_F(VmTest, FieldRoundTripByIdAndName) {
  const ObjectRef pair = vm_.new_object("Pair");
  vm_.put_field(pair, FieldId{0}, Value{42});
  vm_.put_field(pair, "b", Value{"hi"});
  EXPECT_EQ(vm_.get_field(pair, "a").as_int(), 42);
  EXPECT_EQ(vm_.get_field(pair, FieldId{1}).as_str(), "hi");
}

TEST_F(VmTest, UnknownFieldThrows) {
  const ObjectRef pair = vm_.new_object("Pair");
  EXPECT_THROW(vm_.get_field(pair, "nope"), VmError);
  EXPECT_THROW(vm_.get_field(pair, FieldId{9}), VmError);
}

TEST_F(VmTest, NullFieldAccessThrows) {
  EXPECT_THROW(vm_.get_field(kNullRef, FieldId{0}), VmError);
  EXPECT_THROW(vm_.put_field(kNullRef, FieldId{0}, Value{1}), VmError);
}

TEST_F(VmTest, MethodInvocation) {
  const ObjectRef counter = vm_.new_object("Counter");
  EXPECT_EQ(vm_.call(counter, "inc").as_int(), 1);
  EXPECT_EQ(vm_.call(counter, "inc").as_int(), 2);
  EXPECT_EQ(vm_.call(counter, "get").as_int(), 2);
}

TEST_F(VmTest, NestedAndRecursiveInvocation) {
  const ObjectRef counter = vm_.new_object("Counter");
  EXPECT_EQ(vm_.call(counter, "addMany", {Value{10}}).as_int(), 10);
  EXPECT_EQ(vm_.stack_depth(), 0u);
}

TEST_F(VmTest, UnknownMethodThrows) {
  const ObjectRef counter = vm_.new_object("Counter");
  EXPECT_THROW(vm_.call(counter, "nope"), VmError);
}

TEST_F(VmTest, StackOverflowDetected) {
  const ObjectRef counter = vm_.new_object("Counter");
  EXPECT_THROW(vm_.call(counter, "addMany", {Value{100000}}), VmError);
  // Frames are unwound even after the failure.
  EXPECT_EQ(vm_.stack_depth(), 0u);
}

TEST_F(VmTest, StaticMethodAndData) {
  EXPECT_EQ(vm_.call_static("Calc", "add", {Value{2}, Value{3}}).as_int(), 5);
  vm_.call_static("Calc", "store", {Value{99}});
  EXPECT_EQ(vm_.call_static("Calc", "recall").as_int(), 99);
  EXPECT_EQ(vm_.get_static("Calc", "memory").as_int(), 99);
}

TEST_F(VmTest, StaticInstanceMismatchThrows) {
  // Instance method invoked as static is rejected...
  const ClassId counter_cls = vm_.find_class("Counter");
  const MethodId inc = vm_.registry().get(counter_cls).find_method("inc");
  EXPECT_THROW(vm_.invoke_static(counter_cls, inc, {}), VmError);

  // ...and a static method dispatched on an instance is rejected too. Calc
  // has no instances, so dispatch on a raw object of that class id.
  const ClassId calc = vm_.find_class("Calc");
  const MethodId add = vm_.registry().get(calc).find_method("add");
  vm_.install_stub(ObjectId{0xF00}, calc, ObjectKind::plain);
  EXPECT_THROW(vm_.invoke(ObjectRef{ObjectId{0xF00}}, add, {}), VmError);
}

TEST_F(VmTest, NativeMethodRunsOnClient) {
  const ObjectRef device = vm_.new_object("Device");
  EXPECT_EQ(vm_.call(device, "beep").as_int(), 1);
  EXPECT_EQ(vm_.call(device, "beep").as_int(), 2);
}

TEST_F(VmTest, StatelessNativeStatic) {
  EXPECT_EQ(vm_.call_static("Util", "twice", {Value{21}}).as_int(), 42);
}

TEST_F(VmTest, IntArrayOperations) {
  const ObjectRef arr = vm_.new_int_array(10);
  EXPECT_EQ(vm_.array_length(arr), 10);
  vm_.array_put(arr, 3, Value{77});
  EXPECT_EQ(vm_.array_get(arr, 3).as_int(), 77);
  EXPECT_EQ(vm_.array_get(arr, 0).as_int(), 0);
}

TEST_F(VmTest, ArrayBoundsChecked) {
  const ObjectRef arr = vm_.new_int_array(4);
  EXPECT_THROW(vm_.array_get(arr, 4), VmError);
  EXPECT_THROW(vm_.array_get(arr, -1), VmError);
  EXPECT_THROW(vm_.array_put(arr, 100, Value{1}), VmError);
}

TEST_F(VmTest, CharArrayBulkOps) {
  const ObjectRef arr = vm_.new_char_array(16);
  vm_.chars_write(arr, 4, "hello");
  EXPECT_EQ(vm_.chars_read(arr, 4, 5), "hello");
  EXPECT_EQ(vm_.chars_read(arr, 0, 1), std::string(1, '\0'));
  EXPECT_THROW(vm_.chars_read(arr, 10, 10), VmError);
  EXPECT_THROW(vm_.chars_write(arr, 14, "toolong"), VmError);
}

TEST_F(VmTest, CharArrayFromInitialContent) {
  const ObjectRef arr = vm_.new_char_array("seed");
  EXPECT_EQ(vm_.array_length(arr), 4);
  EXPECT_EQ(vm_.chars_read(arr, 0, 4), "seed");
  EXPECT_EQ(vm_.array_get(arr, 0).as_int(), 's');
}

TEST_F(VmTest, ArrayOpOnPlainObjectThrows) {
  const ObjectRef pair = vm_.new_object("Pair");
  EXPECT_THROW(vm_.array_get(pair, 0), VmError);
  EXPECT_THROW(vm_.chars_read(pair, 0, 1), VmError);
}

TEST_F(VmTest, RefArrayActsAsObjectArray) {
  const ObjectRef arr = vm_.new_ref_array(5);
  const ObjectRef pair = vm_.new_object("Pair");
  vm_.put_field(arr, FieldId{2}, Value{pair});
  EXPECT_EQ(vm_.get_field(arr, FieldId{2}).as_ref(), pair);
  EXPECT_TRUE(vm_.get_field(arr, FieldId{0}).is_nil());
}

TEST_F(VmTest, WorkAdvancesClockScaledBySpeed) {
  vm_.work(sim_us(100));
  EXPECT_EQ(clock_.now(), sim_us(100));

  SimClock fast_clock;
  VmConfig fast_cfg = cfg();
  fast_cfg.cpu_speed = 2.0;
  Vm fast(fast_cfg, registry_, fast_clock);
  fast.work(sim_us(100));
  EXPECT_EQ(fast_clock.now(), sim_us(50));
}

TEST_F(VmTest, StatsCountEvents) {
  const ObjectRef counter = vm_.new_object("Counter");
  vm_.call(counter, "inc");
  EXPECT_GE(vm_.stats().allocations, 1u);
  EXPECT_GE(vm_.stats().invocations, 1u);
  EXPECT_GE(vm_.stats().field_accesses, 2u);
  EXPECT_EQ(vm_.stats().remote_invocations, 0u);
}

TEST_F(VmTest, HeapAccountsStringFieldGrowth) {
  const ObjectRef pair = vm_.new_object("Pair");
  const auto before = vm_.heap().used();
  vm_.put_field(pair, FieldId{0}, Value{std::string(1000, 'x')});
  EXPECT_EQ(vm_.heap().used(), before + 1000);
  vm_.put_field(pair, FieldId{0}, Value{std::string(400, 'y')});
  EXPECT_EQ(vm_.heap().used(), before + 400);
  vm_.put_field(pair, FieldId{0}, Value{1});
  EXPECT_EQ(vm_.heap().used(), before);
}

TEST_F(VmTest, ClassLookupErrors) {
  EXPECT_THROW((void)vm_.find_class("NoSuchClass"), VmError);
  EXPECT_THROW(vm_.new_object("NoSuchClass"), VmError);
}

TEST_F(VmTest, ObjectIdsCarryNodeTag) {
  const ObjectRef a = vm_.new_object("Pair");
  EXPECT_EQ(a.id.value() >> 48, 1u);
}

// Figure 9: self-time excludes nested calls.
class TimingHooks : public VmHooks {
 public:
  void on_method_exit(NodeId, ClassId cls, ObjectId, MethodId,
                      SimDuration self_time, SimTime) override {
    total_by_class_[cls] += self_time;
  }
  std::unordered_map<ClassId, SimDuration> total_by_class_;
};

TEST_F(VmTest, SelfTimeAttributionExcludesNestedCalls) {
  // a::outer charges 20us itself then calls b::inner which charges 100us —
  // the paper's Figure 9 example (0.02s vs 0.10s attribution).
  auto reg = std::make_shared<ClassRegistry>();
  ClassId b_cls;
  {
    ClassBuilder b("B");
    b.method(
        "inner",
        [](Vm& ctx, ObjectRef, auto) -> Value {
          ctx.work(sim_us(100));
          return Value{};
        },
        /*base_cost=*/0);
    b_cls = reg->register_class(b.build());
  }
  ClassId a_cls;
  {
    ClassBuilder a("A");
    a.method(
        "outer",
        [](Vm& ctx, ObjectRef, auto args) -> Value {
          ctx.work(sim_us(20));
          return ctx.call(aide::test::arg(args, 0).as_ref(), "inner");
        },
        /*base_cost=*/0);
    a_cls = reg->register_class(a.build());
  }

  SimClock clock;
  VmConfig c = cfg();
  Vm vm(c, reg, clock);
  TimingHooks hooks;
  vm.add_hooks(&hooks);

  const ObjectRef a_obj = vm.new_object(a_cls);
  const ObjectRef b_obj = vm.new_object(b_cls);
  vm.call(a_obj, "outer", {Value{b_obj}});

  EXPECT_EQ(hooks.total_by_class_[a_cls], sim_us(20));
  EXPECT_EQ(hooks.total_by_class_[b_cls], sim_us(100));
  EXPECT_EQ(clock.now(), sim_us(120));
}

TEST_F(VmTest, HooksCanBeRemoved) {
  TimingHooks hooks;
  vm_.add_hooks(&hooks);
  const ObjectRef counter = vm_.new_object("Counter");
  vm_.call(counter, "inc");
  EXPECT_FALSE(hooks.total_by_class_.empty());
  hooks.total_by_class_.clear();
  vm_.remove_hooks(&hooks);
  vm_.call(counter, "inc");
  EXPECT_TRUE(hooks.total_by_class_.empty());
}

TEST_F(VmTest, RemoteInvokeWithoutPeerThrows) {
  // Install a stub for a fake remote object; operations must fail cleanly
  // when no peer is attached.
  vm_.install_stub(ObjectId{0xABC}, vm_.find_class("Counter"),
                   ObjectKind::plain);
  EXPECT_THROW(vm_.call(ObjectRef{ObjectId{0xABC}}, "inc"), VmError);
  EXPECT_THROW(vm_.get_field(ObjectRef{ObjectId{0xABC}}, FieldId{0}), VmError);
}

}  // namespace
}  // namespace aide::vm
