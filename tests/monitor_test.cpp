// Tests for the execution monitor: graph construction from VM hook events,
// pinning of native classes, object-granularity promotion (the "Array"
// enhancement), memory tracking across alloc/resize/free, the Figure 8
// remote counters, Table 2 metrics sampling, and dead-component pruning.
#include <gtest/gtest.h>

#include "monitor/monitor.hpp"
#include "tests/test_util.hpp"

namespace aide::monitor {
namespace {

using aide::test::make_test_registry;
using graph::ComponentKey;
using vm::AccessEvent;
using vm::GcReport;
using vm::InvokeEvent;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : registry_(make_test_registry()),
        counter_cls_(registry_->find("Counter")),
        pair_cls_(registry_->find("Pair")),
        device_cls_(registry_->find("Device")),
        int_array_cls_(registry_->int_array_class()) {}

  ExecutionMonitor make_monitor(bool arrays_as_objects = false,
                                std::int64_t min_bytes = 100) {
    MonitorConfig cfg;
    cfg.granularity.arrays_as_objects = arrays_as_objects;
    cfg.granularity.min_array_bytes = min_bytes;
    cfg.granularity.object_granularity_classes = {int_array_cls_};
    return ExecutionMonitor(registry_, cfg);
  }

  InvokeEvent invoke(ClassId from, ClassId to, std::uint64_t bytes,
                     bool remote = false, bool native = false) {
    InvokeEvent ev;
    ev.vm = NodeId{1};
    ev.caller_cls = from;
    ev.callee_cls = to;
    ev.method = MethodId{0};
    ev.remote = remote;
    ev.is_native = native;
    ev.bytes = bytes;
    return ev;
  }

  std::shared_ptr<vm::ClassRegistry> registry_;
  ClassId counter_cls_, pair_cls_, device_cls_, int_array_cls_;
};

TEST_F(MonitorTest, InvokeBuildsEdge) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 24));
  const auto* e = mon.graph().find_edge(ComponentKey{counter_cls_},
                                        ComponentKey{pair_cls_});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->invocations, 1u);
  EXPECT_EQ(e->bytes, 24u);
}

TEST_F(MonitorTest, SameClassInteractionNotRecorded) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, counter_cls_, 24));
  EXPECT_EQ(mon.graph().edge_count(), 0u);
  EXPECT_EQ(mon.counters().invoke_events, 1u);  // counted, not graphed
}

TEST_F(MonitorTest, AccessBuildsEdge) {
  auto mon = make_monitor();
  AccessEvent ev;
  ev.vm = NodeId{1};
  ev.from_cls = counter_cls_;
  ev.to_cls = pair_cls_;
  ev.bytes = 8;
  ev.is_write = true;
  mon.on_access(ev);
  const auto* e = mon.graph().find_edge(ComponentKey{counter_cls_},
                                        ComponentKey{pair_cls_});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->accesses, 1u);
}

TEST_F(MonitorTest, NativeClassesPinned) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, device_cls_, 8, false, true));
  EXPECT_TRUE(mon.graph().find_node(ComponentKey{device_cls_})->pinned);
  EXPECT_FALSE(mon.graph().find_node(ComponentKey{counter_cls_})->pinned);
}

TEST_F(MonitorTest, StatelessNativeClassNotPinned) {
  auto mon = make_monitor();
  const ClassId util = registry_->find("Util");
  mon.on_invoke(invoke(counter_cls_, util, 8, false, true));
  EXPECT_FALSE(mon.graph().find_node(ComponentKey{util})->pinned);
}

TEST_F(MonitorTest, MemoryTracksAllocResizeFree) {
  auto mon = make_monitor();
  mon.on_alloc(NodeId{1}, ObjectId{1}, pair_cls_, 100, 0);
  mon.on_resize(NodeId{1}, ObjectId{1}, pair_cls_, 50);
  const auto* n = mon.graph().find_node(ComponentKey{pair_cls_});
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->mem_bytes, 150);
  EXPECT_EQ(n->live_objects, 1);
  mon.on_free(NodeId{1}, ObjectId{1}, pair_cls_, 150, 0);
  EXPECT_EQ(mon.graph().find_node(ComponentKey{pair_cls_})->mem_bytes, 0);
}

TEST_F(MonitorTest, SelfTimeAttributedToComponent) {
  auto mon = make_monitor();
  mon.on_method_exit(NodeId{1}, counter_cls_, ObjectId{1}, MethodId{0},
                     sim_ms(3), 0);
  EXPECT_EQ(mon.graph().find_node(ComponentKey{counter_cls_})->exec_self_time,
            sim_ms(3));
}

TEST_F(MonitorTest, LargeArraysPromotedToObjectGranularity) {
  auto mon = make_monitor(/*arrays_as_objects=*/true, /*min_bytes=*/100);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  const ComponentKey key = mon.component_of(int_array_cls_, ObjectId{7});
  EXPECT_TRUE(key.is_object_granularity());
  EXPECT_EQ(key.object, ObjectId{7});
  EXPECT_EQ(mon.graph().find_node(key)->mem_bytes, 5000);
}

TEST_F(MonitorTest, SmallArraysStayClassGranularity) {
  auto mon = make_monitor(true, 1000);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 64, 0);
  EXPECT_FALSE(
      mon.component_of(int_array_cls_, ObjectId{7}).is_object_granularity());
}

TEST_F(MonitorTest, PromotionDisabledByDefault) {
  auto mon = make_monitor(false);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 50000, 0);
  EXPECT_FALSE(
      mon.component_of(int_array_cls_, ObjectId{7}).is_object_granularity());
}

TEST_F(MonitorTest, NonArrayClassesNeverPromoted) {
  auto mon = make_monitor(true, 10);
  mon.on_alloc(NodeId{1}, ObjectId{9}, pair_cls_, 50000, 0);
  EXPECT_FALSE(mon.component_of(pair_cls_, ObjectId{9}).is_object_granularity());
}

TEST_F(MonitorTest, RemoteCountersForFigure8) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 8, true, false));
  mon.on_invoke(invoke(counter_cls_, device_cls_, 8, true, true));
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 8, false, false));
  EXPECT_EQ(mon.counters().remote_invocations, 2u);
  EXPECT_EQ(mon.counters().remote_native_invocations, 1u);
  EXPECT_EQ(mon.counters().invoke_events, 3u);
}

TEST_F(MonitorTest, MetricsSummarySamplesAtGc) {
  auto mon = make_monitor();
  mon.on_alloc(NodeId{1}, ObjectId{1}, pair_cls_, 100, 0);
  mon.on_alloc(NodeId{1}, ObjectId{2}, counter_cls_, 100, 0);
  mon.on_gc(NodeId{1}, GcReport{});
  mon.on_alloc(NodeId{1}, ObjectId{3}, counter_cls_, 100, 0);
  mon.on_free(NodeId{1}, ObjectId{1}, pair_cls_, 100, 0);
  mon.on_gc(NodeId{1}, GcReport{});

  const auto summary = mon.metrics_summary();
  EXPECT_EQ(summary.total_objects, 3u);
  EXPECT_EQ(summary.max_objects, 2u);
  EXPECT_DOUBLE_EQ(summary.avg_objects, 2.0);
  EXPECT_EQ(summary.total_classes, 2u);
}

TEST_F(MonitorTest, PruneDropsDeadObjectComponents) {
  auto mon = make_monitor(true, 100);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  mon.on_invoke(invoke(counter_cls_, int_array_cls_, 8));
  const ComponentKey dead = mon.component_of(int_array_cls_, ObjectId{7});
  mon.on_free(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  mon.prune_dead_components();
  EXPECT_EQ(mon.graph().find_node(dead), nullptr);
  // Class-level nodes survive pruning.
  EXPECT_NE(mon.graph().find_node(ComponentKey{counter_cls_}), nullptr);
}

TEST_F(MonitorTest, ComponentNamesUseClassNames) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 8));
  const auto names = mon.component_names();
  EXPECT_EQ(names.at(ComponentKey{counter_cls_}), "Counter");
  EXPECT_EQ(names.at(ComponentKey{pair_cls_}), "Pair");
}

TEST_F(MonitorTest, ResetClearsEverything) {
  auto mon = make_monitor();
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 8));
  mon.on_alloc(NodeId{1}, ObjectId{1}, pair_cls_, 100, 0);
  mon.reset();
  EXPECT_EQ(mon.graph().node_count(), 0u);
  EXPECT_EQ(mon.counters().invoke_events, 0u);
}

TEST_F(MonitorTest, RepeatedEventsAccumulateThroughCaches) {
  // Exercises the single-entry event cache and the dense pair table: runs of
  // the same pair, an interleaved second pair, and the reverse direction must
  // all land on the right edge records.
  auto mon = make_monitor();
  for (int i = 0; i < 5; ++i) mon.on_invoke(invoke(counter_cls_, pair_cls_, 2));
  mon.on_invoke(invoke(counter_cls_, device_cls_, 3));
  for (int i = 0; i < 4; ++i) mon.on_invoke(invoke(counter_cls_, pair_cls_, 2));
  mon.on_invoke(invoke(pair_cls_, counter_cls_, 7));
  const auto* cp = mon.graph().find_edge(ComponentKey{counter_cls_},
                                         ComponentKey{pair_cls_});
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->invocations, 10u);  // both directions share the edge
  EXPECT_EQ(cp->bytes, 9u * 2 + 7);
  const auto* cd = mon.graph().find_edge(ComponentKey{counter_cls_},
                                         ComponentKey{device_cls_});
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->invocations, 1u);
}

TEST_F(MonitorTest, PromotionRedirectsCachedEventResolution) {
  auto mon = make_monitor(/*arrays_as_objects=*/true, /*min_bytes=*/100);
  InvokeEvent ev = invoke(counter_cls_, int_array_cls_, 8);
  ev.callee_obj = ObjectId{7};
  // Before promotion the object resolves to its class node (and primes the
  // event cache with that resolution).
  mon.on_invoke(ev);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  // After promotion the identical raw event must hit the object node, not
  // the cached class-node edge.
  mon.on_invoke(ev);
  const auto* cls_edge = mon.graph().find_edge(ComponentKey{counter_cls_},
                                               ComponentKey{int_array_cls_});
  ASSERT_NE(cls_edge, nullptr);
  EXPECT_EQ(cls_edge->invocations, 1u);
  const auto* obj_edge = mon.graph().find_edge(
      ComponentKey{counter_cls_}, ComponentKey{int_array_cls_, ObjectId{7}});
  ASSERT_NE(obj_edge, nullptr);
  EXPECT_EQ(obj_edge->invocations, 1u);

  // Freeing the promoted object restores class resolution for the same pair.
  mon.on_free(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  mon.on_invoke(ev);
  EXPECT_EQ(mon.graph()
                .find_edge(ComponentKey{counter_cls_},
                           ComponentKey{int_array_cls_})
                ->invocations,
            2u);
  EXPECT_EQ(mon.graph()
                .find_edge(ComponentKey{counter_cls_},
                           ComponentKey{int_array_cls_, ObjectId{7}})
                ->invocations,
            1u);
}

TEST_F(MonitorTest, RecordingStaysCorrectAfterPruneShiftsSlots) {
  auto mon = make_monitor(/*arrays_as_objects=*/true, /*min_bytes=*/100);
  mon.on_alloc(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  // Edge slot 0 goes to the doomed object node; slot 1 to counter<->pair.
  InvokeEvent to_obj = invoke(counter_cls_, int_array_cls_, 8);
  to_obj.callee_obj = ObjectId{7};
  mon.on_invoke(to_obj);
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 5));
  mon.on_free(NodeId{1}, ObjectId{7}, int_array_cls_, 5000, 0);
  mon.prune_dead_components();
  // counter<->pair compacted into a different slot; stale caches would bump
  // the wrong (or a dangling) record.
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 5));
  const auto* cp = mon.graph().find_edge(ComponentKey{counter_cls_},
                                         ComponentKey{pair_cls_});
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->invocations, 2u);
  EXPECT_EQ(cp->bytes, 10u);
  EXPECT_EQ(mon.graph().edge_count(), 1u);
}

TEST_F(MonitorTest, RecordingWorksAgainAfterReset) {
  auto mon = make_monitor();
  for (int i = 0; i < 3; ++i) mon.on_invoke(invoke(counter_cls_, pair_cls_, 4));
  mon.reset();
  mon.on_invoke(invoke(counter_cls_, pair_cls_, 4));
  const auto* cp = mon.graph().find_edge(ComponentKey{counter_cls_},
                                         ComponentKey{pair_cls_});
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->invocations, 1u);
  EXPECT_EQ(mon.counters().invoke_events, 1u);
}

}  // namespace
}  // namespace aide::monitor
