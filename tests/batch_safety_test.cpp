// Tests for the transport's consumption of a BatchSafetyOracle: refused
// stores write through eagerly (flush earlier, never reorder), unproven
// riders force a pre-invoke flush, a fully proven queue may deepen past
// max_ops up to max_ops_proven, installing an oracle drains the queue, and
// the read-ahead prefetch filter prunes ineligible group mates.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/batch_oracle.hpp"
#include "netsim/link.hpp"
#include "rpc/endpoint.hpp"
#include "tests/test_util.hpp"

namespace aide::rpc {
namespace {

using aide::test::make_test_registry;
using vm::ObjectRef;
using vm::Value;
using vm::Vm;
using vm::VmConfig;

// Scriptable oracle: each verdict is a settable knob, so tests can flip one
// proof without reinstalling (reinstalling would flush the queue).
class FakeOracle final : public analysis::BatchSafetyOracle {
 public:
  bool defer = true;
  bool commute = true;
  bool riders = true;
  bool eligible = true;

  bool store_deferrable(ClassId, analysis::StoreKind,
                        std::uint32_t) const noexcept override {
    return defer;
  }
  bool stores_commute(ClassId, analysis::StoreKind, std::uint32_t, ClassId,
                      analysis::StoreKind, std::uint32_t)
      const noexcept override {
    return commute;
  }
  bool invoke_accepts_riders(ClassId, MethodId) const noexcept override {
    return riders;
  }
  bool replay_safe(ClassId, MethodId) const noexcept override { return false; }
  bool prefetch_eligible(ClassId) const noexcept override { return eligible; }
};

class BatchSafetyEndpointTest : public ::testing::Test {
 protected:
  BatchSafetyEndpointTest()
      : registry_(make_test_registry()),
        link_(netsim::LinkParams::wavelan()),
        client_(client_cfg(), registry_, clock_),
        surrogate_(surrogate_cfg(), registry_, clock_),
        client_ep_(client_, link_),
        surrogate_ep_(surrogate_, link_) {
    Endpoint::connect(client_ep_, surrogate_ep_);
  }

  static VmConfig client_cfg() {
    VmConfig c;
    c.node = NodeId{1};
    c.name = "client";
    c.is_client = true;
    c.heap_capacity = 4 << 20;
    return c;
  }
  static VmConfig surrogate_cfg() {
    VmConfig c;
    c.node = NodeId{2};
    c.name = "surrogate";
    c.is_client = false;
    c.cpu_speed = 3.5;
    c.heap_capacity = 32 << 20;
    return c;
  }

  void offload(ObjectRef obj) {
    const ObjectId ids[] = {obj.id};
    client_ep_.migrate_objects(ids);
  }

  ObjectRef offloaded_pair() {
    const ObjectRef pair = client_.new_object("Pair");
    client_.add_root(pair);
    offload(pair);
    return pair;
  }

  std::shared_ptr<vm::ClassRegistry> registry_;
  SimClock clock_;
  netsim::Link link_;
  Vm client_;
  Vm surrogate_;
  Endpoint client_ep_;
  Endpoint surrogate_ep_;
  FakeOracle oracle_;
};

TEST_F(BatchSafetyEndpointTest, PermissiveOracleKeepsWriteBehind) {
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef pair = offloaded_pair();
  client_.put_field(pair, FieldId{0}, Value{1});
  client_.put_field(pair, FieldId{1}, Value{2});
  EXPECT_EQ(client_ep_.pending_ops(), 2u);
  EXPECT_EQ(client_ep_.stats().unproven_stores_flushed, 0u);
  client_ep_.flush_pending();
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 1);
}

TEST_F(BatchSafetyEndpointTest, RefusedStoreWritesThroughEagerly) {
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef pair = offloaded_pair();
  oracle_.defer = false;
  client_.put_field(pair, FieldId{0}, Value{41});
  // Nothing queued: the store crossed the link synchronously.
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 41);
  EXPECT_EQ(client_ep_.stats().unproven_stores_flushed, 1u);
}

TEST_F(BatchSafetyEndpointTest, RefusedStoreDrainsQueueFirst) {
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef pair = offloaded_pair();
  client_.put_field(pair, FieldId{0}, Value{1});  // deferred
  ASSERT_EQ(client_ep_.pending_ops(), 1u);
  oracle_.defer = false;
  client_.put_field(pair, FieldId{1}, Value{2});  // refused
  // Program order held: the queued store flushed before the write-through.
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 1);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{1}).as_int(), 2);
}

TEST_F(BatchSafetyEndpointTest, UnprovenRidersFlushBeforeInvoke) {
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  const ObjectRef pair = client_.new_object("Pair");
  client_.add_root(pair);
  {
    const ObjectId ids[] = {counter.id, pair.id};
    client_ep_.migrate_objects(ids);
  }
  oracle_.riders = false;
  client_.put_field(pair, FieldId{0}, Value{5});
  ASSERT_EQ(client_ep_.pending_ops(), 1u);
  const auto before = client_ep_.stats();
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 1);
  const auto after = client_ep_.stats();
  EXPECT_EQ(after.unproven_riders_flushed, 1u);
  // Two frames: the refused riders as their own flush, then the invoke.
  EXPECT_EQ(after.rpcs_sent - before.rpcs_sent, 2u);
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 5);
}

TEST_F(BatchSafetyEndpointTest, ProvenRidersStillShareTheFrame) {
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef counter = client_.new_object("Counter");
  client_.add_root(counter);
  const ObjectRef pair = client_.new_object("Pair");
  client_.add_root(pair);
  {
    const ObjectId ids[] = {counter.id, pair.id};
    client_ep_.migrate_objects(ids);
  }
  client_.put_field(pair, FieldId{0}, Value{5});
  const auto before = client_ep_.stats();
  EXPECT_EQ(client_.call(counter, "inc").as_int(), 1);
  const auto after = client_ep_.stats();
  EXPECT_EQ(after.unproven_riders_flushed, 0u);
  EXPECT_EQ(after.rpcs_sent - before.rpcs_sent, 1u);  // rider hitched along
  EXPECT_GT(after.batched_ops, before.batched_ops);
}

TEST_F(BatchSafetyEndpointTest, ProvenQueueDeepensPastMaxOps) {
  BatchPolicy deep;
  deep.max_ops = 2;
  deep.max_ops_proven = 8;
  client_ep_.set_batch_policy(deep);
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef pair = offloaded_pair();
  // Five commuting stores: without the proof the cap (2) would have flushed
  // twice already; with it the queue keeps growing.
  for (int i = 0; i < 5; ++i) {
    client_.put_field(pair, FieldId{static_cast<std::uint32_t>(i % 2)},
                      Value{i});
  }
  EXPECT_EQ(client_ep_.pending_ops(), 5u);
  client_ep_.flush_pending();
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 4);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{1}).as_int(), 3);
}

TEST_F(BatchSafetyEndpointTest, UnprovenPairFallsBackToBaseCap) {
  BatchPolicy deep;
  deep.max_ops = 2;
  deep.max_ops_proven = 8;
  client_ep_.set_batch_policy(deep);
  client_ep_.set_batch_safety(&oracle_);
  const ObjectRef pair = offloaded_pair();
  client_.put_field(pair, FieldId{0}, Value{1});
  client_.put_field(pair, FieldId{1}, Value{2});
  client_.put_field(pair, FieldId{0}, Value{3});
  ASSERT_EQ(client_ep_.pending_ops(), 3u);  // proven so far
  // The next store's proof fails: the queue is past the base cap already,
  // so it must flush now rather than keep pipelining unproven.
  oracle_.commute = false;
  client_.put_field(pair, FieldId{1}, Value{4});
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 3);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{1}).as_int(), 4);
}

TEST_F(BatchSafetyEndpointTest, WithoutOracleMaxOpsProvenIsInert) {
  BatchPolicy deep;
  deep.max_ops = 2;
  deep.max_ops_proven = 8;
  client_ep_.set_batch_policy(deep);
  const ObjectRef pair = offloaded_pair();
  client_.put_field(pair, FieldId{0}, Value{1});
  client_.put_field(pair, FieldId{1}, Value{2});
  // No oracle, no proof: the base cap flushed at 2.
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
}

TEST_F(BatchSafetyEndpointTest, InstallingOracleFlushesQueue) {
  const ObjectRef pair = offloaded_pair();
  client_.put_field(pair, FieldId{0}, Value{9});
  ASSERT_EQ(client_ep_.pending_ops(), 1u);
  client_ep_.set_batch_safety(&oracle_);
  EXPECT_EQ(client_ep_.pending_ops(), 0u);
  EXPECT_EQ(surrogate_.raw_get_field(pair.id, FieldId{0}).as_int(), 9);
  EXPECT_EQ(client_ep_.batch_safety(), &oracle_);
}

TEST_F(BatchSafetyEndpointTest, PrefetchFilterPrunesIneligibleMates) {
  const ObjectRef a = client_.new_object("Pair");
  const ObjectRef b = client_.new_object("Pair");
  const ObjectRef c = client_.new_object("Holder");
  client_.add_root(a);
  client_.add_root(b);
  client_.add_root(c);
  client_.put_field(a, FieldId{0}, Value{1});
  client_.put_field(b, FieldId{0}, Value{2});
  {
    const ObjectId ids[] = {a.id, b.id, c.id};
    client_ep_.migrate_objects(ids);
  }
  client_ep_.set_prefetch_groups({{a.id, b.id, c.id}});

  // Only Pair is eligible: the demanded object always fetches, the Pair
  // mate prefetches, the Holder mate is pruned.
  client_ep_.set_prefetch_eligible({registry_->find("Pair")});
  EXPECT_EQ(client_.get_field(a, FieldId{0}).as_int(), 1);
  const auto stats = client_ep_.stats();
  EXPECT_EQ(stats.objects_prefetched, 1u);
  EXPECT_EQ(stats.prefetches_filtered, 1u);
  // The prefetched mate serves from the snapshot cache, no extra frame.
  const auto before = client_ep_.stats().rpcs_sent;
  EXPECT_EQ(client_.get_field(b, FieldId{0}).as_int(), 2);
  EXPECT_EQ(client_ep_.stats().rpcs_sent, before);
}

TEST_F(BatchSafetyEndpointTest, EmptyFilterPrefetchesEveryMate) {
  const ObjectRef a = client_.new_object("Pair");
  const ObjectRef b = client_.new_object("Holder");
  client_.add_root(a);
  client_.add_root(b);
  client_.put_field(a, FieldId{0}, Value{1});
  {
    const ObjectId ids[] = {a.id, b.id};
    client_ep_.migrate_objects(ids);
  }
  client_ep_.set_prefetch_groups({{a.id, b.id}});
  EXPECT_EQ(client_.get_field(a, FieldId{0}).as_int(), 1);
  const auto stats = client_ep_.stats();
  EXPECT_EQ(stats.objects_prefetched, 1u);
  EXPECT_EQ(stats.prefetches_filtered, 0u);
}

}  // namespace
}  // namespace aide::rpc
