// Surrogate-failure recovery matrix.
//
// Five deterministic fault schedules — surrogate dead at first contact, dead
// mid-migration, dead mid-invoke after a completed offload, a transient
// post-offload outage, and a lossy link — crossed with the five paper
// applications. Every cell must run to completion with output byte-identical
// to a standalone (never-offloaded) execution: the paper's transparency
// requirement extended across surrogate failure. The schedules are derived
// from a fault-free probe run, which is exact because the platform is fully
// deterministic under virtual time.
//
// Also here: the zero-fault parity check (an armed-but-never-firing FaultPlan
// must reproduce the fault-free run's statistics bit-for-bit) and the
// determinism regression (same seeds => identical stats, different seeds =>
// different stats, including the jitter path).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/apps.hpp"
#include "common/error.hpp"
#include "netsim/link.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide {
namespace {

constexpr NodeId kClientNode{1};

// Scaled-down application parameters: the matrix runs every app seven times.
apps::AppParams fault_params() {
  apps::AppParams p;
  p.doc_bytes = 48 * 1024;
  p.edits = 16;
  p.scrolls = 20;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 80;
  p.iterations = 4;
  p.field_size = 49;
  p.frames = 4;
  p.columns = 32;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 6;
  return p;
}

// Drives a deterministic early offload: from the second client GC onwards,
// keep asking for any beneficial offload until one lands (or the surrogate
// dies trying). This pins the offload instant for schedule derivation far
// more tightly than the memory-pressure trigger would.
class ForcedOffload : public vm::VmHooks {
 public:
  explicit ForcedOffload(platform::Platform& p) : p_(p) {}
  void on_gc(NodeId node, const vm::GcReport&) override {
    if (node != kClientNode) return;
    if (++cycles_ < 2) return;
    if (p_.offloaded() || p_.surrogate_dead()) return;
    p_.offload_now(std::int64_t{1});
  }

 private:
  platform::Platform& p_;
  int cycles_ = 0;
};

platform::PlatformConfig fault_config() {
  platform::PlatformConfig cfg;
  // Recovery must be able to complete fully local, so the client heap is as
  // generous as the standalone baseline's.
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;  // ForcedOffload drives the schedule
  // Very frequent GC reports give the hook plenty of chances to offload
  // early, whatever the app's allocation profile looks like (Voxel allocates
  // under a dozen objects at this scale).
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  return cfg;
}

std::uint64_t standalone_checksum(const apps::AppInfo& app,
                                  const apps::AppParams& params) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  vm::Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

struct RunResult {
  std::uint64_t checksum = 0;
  bool offloaded = false;
  bool dead = false;
  SimTime offload_at = 0;
  SimTime offload_done = 0;
  SimTime end = 0;
  std::size_t failures = 0;
  std::size_t objects_reclaimed = 0;
  std::size_t stub_count = 0;
  rpc::EndpointStats client_stats;
  rpc::EndpointStats surrogate_stats;
  netsim::LinkStats link_stats;
};

RunResult run_app(const apps::AppInfo& app, const apps::AppParams& params,
                  platform::PlatformConfig cfg) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::Platform p(reg, cfg);
  ForcedOffload forced(p);
  p.client().add_hooks(&forced);
  RunResult r;
  r.checksum = app.run(p.client(), params);
  p.client().remove_hooks(&forced);
  r.offloaded = p.offloaded();
  r.dead = p.surrogate_dead();
  if (r.offloaded) {
    r.offload_at = p.offloads().front().at;
    r.offload_done = p.offloads().front().completed_at;
  }
  r.end = p.elapsed();
  r.failures = p.failures().size();
  if (!p.failures().empty()) {
    r.objects_reclaimed = p.failures().front().objects_reclaimed;
  }
  r.stub_count = p.client().stub_count();
  r.client_stats = p.client_endpoint().stats();
  r.surrogate_stats = p.surrogate_endpoint().stats();
  r.link_stats = p.link().stats();
  return r;
}

RunResult run_cell(const apps::AppInfo& app, const apps::AppParams& params,
                   const netsim::FaultPlan& plan) {
  auto cfg = fault_config();
  cfg.fault_plan = plan;
  return run_app(app, params, cfg);
}

class FaultMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultMatrixTest, EveryScheduleRecoversWithIdenticalOutput) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = fault_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  // Fault-free probe: fixes this app's offload timeline exactly.
  const RunResult probe = run_cell(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded) << "probe run never offloaded";
  ASSERT_EQ(probe.checksum, expected) << "fault-free transparency broken";
  ASSERT_LT(probe.offload_at, probe.offload_done);
  ASSERT_EQ(probe.failures, 0u);

  {
    SCOPED_TRACE("cell: surrogate dead at first contact");
    netsim::FaultPlan plan;
    plan.dead_after = 1;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.dead);
    EXPECT_FALSE(r.offloaded);
    EXPECT_EQ(r.failures, 1u);
    // Nothing ever reached the surrogate, so nothing comes back.
    EXPECT_EQ(r.objects_reclaimed, 0u);
    EXPECT_GE(r.client_stats.aborted_rpcs, 1u);
    EXPECT_GE(r.client_stats.timeouts,
              static_cast<std::uint64_t>(rpc::RetryPolicy{}.max_attempts));
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: surrogate dies mid-migration");
    // The migration request leaves at offload_at; one tick later the link is
    // dead, so the batch is adopted but the acknowledgement never returns.
    netsim::FaultPlan plan;
    plan.dead_after = probe.offload_at + 1;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.dead);
    EXPECT_EQ(r.failures, 1u);
    // The adopted batch was pulled back by recovery.
    EXPECT_GT(r.objects_reclaimed, 0u);
    EXPECT_GE(r.client_stats.aborted_rpcs, 1u);
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: surrogate dies mid-invoke after offload");
    netsim::FaultPlan plan;
    plan.dead_after =
        probe.offload_done +
        std::max<SimDuration>(1, (probe.end - probe.offload_done) / 2);
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.offloaded);  // the migration itself completed
    EXPECT_TRUE(r.dead);
    EXPECT_EQ(r.failures, 1u);
    EXPECT_GE(r.client_stats.aborted_rpcs + r.client_stats.recovered_rpcs, 1u);
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: transient outage shortly after offload");
    // 60 ms of radio silence: short enough that every RPC survives within
    // the retry budget (first re-attempt comes 75 ms after a failure).
    netsim::FaultPlan plan;
    plan.outages.push_back({probe.offload_done + sim_ms(1),
                            probe.offload_done + sim_ms(61)});
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.offloaded);
    EXPECT_FALSE(r.dead);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.client_stats.aborted_rpcs, 0u);
    // Without aborts every timeout is followed by a retry.
    EXPECT_EQ(r.client_stats.retries, r.client_stats.timeouts);
    EXPECT_EQ(r.link_stats.messages_dropped, 0u);
  }

  {
    SCOPED_TRACE("cell: lossy link for the whole run");
    netsim::FaultPlan plan;
    plan.drop_probability = 0.08;
    plan.drop_seed = 0xFEED5EED;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_GT(r.link_stats.messages_dropped, 0u);
    EXPECT_GT(r.link_stats.bytes_dropped, 0u);
    // Every dropped message cost somebody a timeout and a retry.
    EXPECT_GE(r.client_stats.retries + r.surrogate_stats.retries, 1u);
    // An unlucky burst may kill the surrogate, but never more than once,
    // and the output above proved either path ends in the same state.
    EXPECT_LE(r.failures, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, FaultMatrixTest,
                         ::testing::Values("JavaNote", "Dia", "Biomer",
                                           "Voxel", "Tracer"));

TEST(FaultParityTest, ArmedButNeverFiringPlanMatchesFaultFreeRunExactly) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = fault_params();
  const RunResult base = run_cell(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(base.offloaded);

  // This plan is enabled() — journalling, reply caching and the fault-aware
  // send path are all live — yet none of its faults can ever fire, so every
  // observable statistic must match the fault-free run bit-for-bit.
  netsim::FaultPlan armed;
  armed.outages.push_back(
      {netsim::FaultPlan::kNever - 2, netsim::FaultPlan::kNever - 1});
  const RunResult r = run_cell(app, params, armed);

  EXPECT_EQ(r.checksum, base.checksum);
  EXPECT_EQ(r.end, base.end);
  EXPECT_EQ(r.offload_at, base.offload_at);
  EXPECT_EQ(r.offload_done, base.offload_done);
  EXPECT_TRUE(r.link_stats == base.link_stats);
  EXPECT_TRUE(r.client_stats == base.client_stats);
  EXPECT_TRUE(r.surrogate_stats == base.surrogate_stats);
  EXPECT_EQ(r.failures, 0u);
}

TEST(FaultDeterminismTest, SameSeedsReproduceIdenticalRuns) {
  const auto& app = apps::app_by_name("Biomer");
  const auto params = fault_params();

  auto cfg = fault_config();
  cfg.link.jitter_fraction = 0.25;
  cfg.link.jitter_seed = 7;
  cfg.fault_plan.drop_probability = 0.10;
  cfg.fault_plan.drop_seed = 0xABCD;

  const RunResult a = run_app(app, params, cfg);
  const RunResult b = run_app(app, params, cfg);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_TRUE(a.link_stats == b.link_stats);
  EXPECT_TRUE(a.client_stats == b.client_stats);
  EXPECT_TRUE(a.surrogate_stats == b.surrogate_stats);
  EXPECT_GT(a.link_stats.messages_dropped, 0u);

  // A different drop seed shifts which messages are lost...
  auto other_drop = cfg;
  other_drop.fault_plan.drop_seed = 0xABCE;
  const RunResult c = run_app(app, params, other_drop);
  EXPECT_FALSE(c.link_stats == a.link_stats);
  // ...and a different jitter seed changes airtime even with equal traffic.
  auto other_jitter = cfg;
  other_jitter.link.jitter_seed = 8;
  const RunResult d = run_app(app, params, other_jitter);
  EXPECT_FALSE(d.link_stats == a.link_stats);

  // Faults or not, the output never changes.
  EXPECT_EQ(c.checksum, a.checksum);
  EXPECT_EQ(d.checksum, a.checksum);
}

}  // namespace
}  // namespace aide
