// Surrogate-failure recovery matrix.
//
// Five deterministic fault schedules — surrogate dead at first contact, dead
// mid-migration, dead mid-invoke after a completed offload, a transient
// post-offload outage, and a lossy link — crossed with the five paper
// applications. Every cell must run to completion with output byte-identical
// to a standalone (never-offloaded) execution: the paper's transparency
// requirement extended across surrogate failure. The schedules are derived
// from a fault-free probe run, which is exact because the platform is fully
// deterministic under virtual time.
//
// Also here: the zero-fault parity check (an armed-but-never-firing FaultPlan
// must reproduce the fault-free run's statistics bit-for-bit) and the
// determinism regression (same seeds => identical stats, different seeds =>
// different stats, including the jitter path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/apps.hpp"
#include "common/error.hpp"
#include "netsim/link.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide {
namespace {

constexpr NodeId kClientNode{1};
constexpr NodeId kSurrogateNode{2};

// Scaled-down application parameters: the matrix runs every app seven times.
apps::AppParams fault_params() {
  apps::AppParams p;
  p.doc_bytes = 48 * 1024;
  p.edits = 16;
  p.scrolls = 20;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 80;
  p.iterations = 4;
  p.field_size = 49;
  p.frames = 4;
  p.columns = 32;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 6;
  return p;
}

// Drives a deterministic early offload: from the second client GC onwards,
// keep asking for any beneficial offload until one lands (or the surrogate
// dies trying). This pins the offload instant for schedule derivation far
// more tightly than the memory-pressure trigger would.
class ForcedOffload : public vm::VmHooks {
 public:
  explicit ForcedOffload(platform::Platform& p) : p_(p) {}
  void on_gc(NodeId node, const vm::GcReport&) override {
    if (node != kClientNode) return;
    if (++cycles_ < 2) return;
    if (p_.offloaded() || p_.surrogate_dead()) return;
    p_.offload_now(std::int64_t{1});
  }

 private:
  platform::Platform& p_;
  int cycles_ = 0;
};

platform::PlatformConfig fault_config() {
  platform::PlatformConfig cfg;
  // Recovery must be able to complete fully local, so the client heap is as
  // generous as the standalone baseline's.
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;  // ForcedOffload drives the schedule
  // Very frequent GC reports give the hook plenty of chances to offload
  // early, whatever the app's allocation profile looks like (Voxel allocates
  // under a dozen objects at this scale).
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  return cfg;
}

std::uint64_t standalone_checksum(const apps::AppInfo& app,
                                  const apps::AppParams& params) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  vm::Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

// Classifies where each method invocation actually executed, from a chosen
// virtual instant onwards: the calling VM reports the event, so execution
// happened on the surrogate iff (reporter == surrogate) XOR remote.
class RemoteFractionProbe : public vm::VmHooks {
 public:
  explicit RemoteFractionProbe(SimTime after) : after_(after) {}
  void on_invoke(const vm::InvokeEvent& e) override {
    if (e.t < after_) return;
    total_ += 1;
    if ((e.vm == kSurrogateNode) != e.remote) remote_ += 1;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double fraction() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(remote_) /
                             static_cast<double>(total_);
  }

 private:
  SimTime after_;
  std::uint64_t total_ = 0;
  std::uint64_t remote_ = 0;
};

struct RunResult {
  std::uint64_t checksum = 0;
  bool offloaded = false;
  bool dead = false;
  SimTime offload_at = 0;
  SimTime offload_done = 0;
  SimTime end = 0;
  std::size_t failures = 0;
  std::size_t offload_count = 0;
  std::size_t readmission_count = 0;
  SimTime readmission_at = 0;
  bool readmission_reoffloaded = false;
  std::size_t objects_reclaimed = 0;
  std::size_t stub_count = 0;
  rpc::MigrationTrace migration;  // first migration's message boundaries
  std::uint64_t invokes_measured = 0;
  double remote_fraction = 0.0;  // of invokes at/after measure_after
  rpc::EndpointStats client_stats;
  rpc::EndpointStats surrogate_stats;
  netsim::LinkStats link_stats;
};

RunResult run_app(const apps::AppInfo& app, const apps::AppParams& params,
                  platform::PlatformConfig cfg, SimTime measure_after = 0) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::Platform p(reg, cfg);
  ForcedOffload forced(p);
  RemoteFractionProbe remote_probe(measure_after);
  p.client().add_hooks(&forced);
  p.client().add_hooks(&remote_probe);
  p.surrogate().add_hooks(&remote_probe);
  RunResult r;
  r.checksum = app.run(p.client(), params);
  p.surrogate().remove_hooks(&remote_probe);
  p.client().remove_hooks(&remote_probe);
  p.client().remove_hooks(&forced);
  r.offloaded = p.offloaded();
  r.dead = p.surrogate_dead();
  if (r.offloaded) {
    r.offload_at = p.offloads().front().at;
    r.offload_done = p.offloads().front().completed_at;
  }
  r.end = p.elapsed();
  r.failures = p.failures().size();
  r.offload_count = p.offloads().size();
  r.readmission_count = p.readmissions().size();
  if (!p.readmissions().empty()) {
    r.readmission_at = p.readmissions().front().at;
    r.readmission_reoffloaded = p.readmissions().front().reoffloaded;
  }
  if (!p.failures().empty()) {
    r.objects_reclaimed = p.failures().front().objects_reclaimed;
  }
  r.stub_count = p.client().stub_count();
  if (!p.client_endpoint().migrations().empty()) {
    r.migration = p.client_endpoint().migrations().front();
  }
  r.invokes_measured = remote_probe.total();
  r.remote_fraction = remote_probe.fraction();
  r.client_stats = p.client_endpoint().stats();
  r.surrogate_stats = p.surrogate_endpoint().stats();
  r.link_stats = p.link().stats();
  return r;
}

RunResult run_cell(const apps::AppInfo& app, const apps::AppParams& params,
                   const netsim::FaultPlan& plan) {
  auto cfg = fault_config();
  cfg.fault_plan = plan;
  return run_app(app, params, cfg);
}

class FaultMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultMatrixTest, EveryScheduleRecoversWithIdenticalOutput) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = fault_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  // Fault-free probe: fixes this app's offload timeline exactly.
  const RunResult probe = run_cell(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(probe.offloaded) << "probe run never offloaded";
  ASSERT_EQ(probe.checksum, expected) << "fault-free transparency broken";
  ASSERT_LT(probe.offload_at, probe.offload_done);
  ASSERT_EQ(probe.failures, 0u);

  {
    SCOPED_TRACE("cell: surrogate dead at first contact");
    netsim::FaultPlan plan;
    plan.dead_after = 1;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.dead);
    EXPECT_FALSE(r.offloaded);
    EXPECT_EQ(r.failures, 1u);
    // Nothing ever reached the surrogate, so nothing comes back.
    EXPECT_EQ(r.objects_reclaimed, 0u);
    EXPECT_GE(r.client_stats.aborted_rpcs, 1u);
    EXPECT_GE(r.client_stats.timeouts,
              static_cast<std::uint64_t>(rpc::RetryPolicy{}.max_attempts));
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: surrogate dies with PREPARE in flight");
    // The PREPARE leaves at offload_at; one tick later the link is dead, so
    // its acknowledgement never returns and the COMMIT is never sent. The
    // staged bytes die with the connection: the batch never entered the
    // surrogate heap, so rollback is purely local and recovery reclaims
    // nothing.
    netsim::FaultPlan plan;
    plan.dead_after = probe.offload_at + 1;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.dead);
    EXPECT_FALSE(r.offloaded);
    EXPECT_EQ(r.failures, 1u);
    EXPECT_EQ(r.objects_reclaimed, 0u);
    EXPECT_GE(r.client_stats.aborted_rpcs, 1u);
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: surrogate dies with COMMIT applied but unacked");
    // The COMMIT leaves right after the PREPARE acknowledgement; one tick
    // later the link is dead. The surrogate adopts the staged batch but the
    // acknowledgement never returns, so the initiator's abort path must
    // detect the adoption and leave ownership with the surrogate — recovery
    // then pulls those objects back.
    ASSERT_TRUE(probe.migration.committed);
    ASSERT_GT(probe.migration.prepare_acked, probe.migration.begin);
    netsim::FaultPlan plan;
    plan.dead_after = probe.migration.prepare_acked + 1;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.dead);
    EXPECT_EQ(r.failures, 1u);
    EXPECT_GT(r.objects_reclaimed, 0u);
    EXPECT_GE(r.client_stats.aborted_rpcs, 1u);
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: surrogate dies mid-invoke after offload");
    netsim::FaultPlan plan;
    plan.dead_after =
        probe.offload_done +
        std::max<SimDuration>(1, (probe.end - probe.offload_done) / 2);
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.offloaded);  // the migration itself completed
    EXPECT_TRUE(r.dead);
    EXPECT_EQ(r.failures, 1u);
    EXPECT_GE(r.client_stats.aborted_rpcs + r.client_stats.recovered_rpcs, 1u);
    EXPECT_EQ(r.stub_count, 0u);
  }

  {
    SCOPED_TRACE("cell: transient outage shortly after offload");
    // 60 ms of radio silence: short enough that every RPC survives within
    // the retry budget (first re-attempt comes 75 ms after a failure).
    netsim::FaultPlan plan;
    plan.outages.push_back({probe.offload_done + sim_ms(1),
                            probe.offload_done + sim_ms(61)});
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_TRUE(r.offloaded);
    EXPECT_FALSE(r.dead);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_EQ(r.client_stats.aborted_rpcs, 0u);
    // Without aborts every timeout is followed by a retry.
    EXPECT_EQ(r.client_stats.retries, r.client_stats.timeouts);
    EXPECT_EQ(r.link_stats.messages_dropped, 0u);
  }

  {
    SCOPED_TRACE("cell: reply-leg losses only (at-most-once dedup)");
    // Requests always arrive and execute; only acknowledgements vanish.
    // Every loss forces a retry of an already-executed request, which the
    // serving endpoint must answer from its reply cache — duplicates_served
    // counts those, and the unchanged checksum proves no side effect ran
    // twice.
    netsim::FaultPlan plan;
    plan.reply_drop_probability = 0.25;
    plan.drop_seed = 0x5EED0;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_GT(r.link_stats.messages_dropped, 0u);
    EXPECT_GT(r.client_stats.duplicates_served +
                  r.surrogate_stats.duplicates_served,
              0u);
    // A reply can only be lost after its request got through, so at worst an
    // abort happens when all retry replies are also lost — vanishingly rare,
    // but either path ends in the checksum proved above.
    EXPECT_LE(r.failures, 1u);
  }

  {
    SCOPED_TRACE("cell: lossy link for the whole run");
    netsim::FaultPlan plan;
    plan.drop_probability = 0.08;
    plan.drop_seed = 0xFEED5EED;
    const RunResult r = run_cell(app, params, plan);
    EXPECT_EQ(r.checksum, expected);
    EXPECT_GT(r.link_stats.messages_dropped, 0u);
    EXPECT_GT(r.link_stats.bytes_dropped, 0u);
    // Every dropped message cost somebody a timeout and a retry.
    EXPECT_GE(r.client_stats.retries + r.surrogate_stats.retries, 1u);
    // An unlucky burst may kill the surrogate, but never more than once,
    // and the output above proved either path ends in the same state.
    EXPECT_LE(r.failures, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, FaultMatrixTest,
                         ::testing::Values("JavaNote", "Dia", "Biomer",
                                           "Voxel", "Tracer"));

TEST(FaultParityTest, ArmedButNeverFiringPlanMatchesFaultFreeRunExactly) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = fault_params();
  const RunResult base = run_cell(app, params, netsim::FaultPlan{});
  ASSERT_TRUE(base.offloaded);

  // This plan is enabled() — journalling, reply caching and the fault-aware
  // send path are all live — yet none of its faults can ever fire, so every
  // observable statistic must match the fault-free run bit-for-bit.
  netsim::FaultPlan armed;
  armed.outages.push_back(
      {netsim::FaultPlan::kNever - 2, netsim::FaultPlan::kNever - 1});
  const RunResult r = run_cell(app, params, armed);

  EXPECT_EQ(r.checksum, base.checksum);
  EXPECT_EQ(r.end, base.end);
  EXPECT_EQ(r.offload_at, base.offload_at);
  EXPECT_EQ(r.offload_done, base.offload_done);
  EXPECT_TRUE(r.link_stats == base.link_stats);
  EXPECT_TRUE(r.client_stats == base.client_stats);
  EXPECT_TRUE(r.surrogate_stats == base.surrogate_stats);
  EXPECT_EQ(r.failures, 0u);
}

// ISSUE 4 acceptance: a revive_at schedule produces a second OffloadReport
// and the post-recovery remote-execution fraction is within noise of a run
// where the surrogate never failed.
TEST(ReadmissionTest, RevivedSurrogateIsReAdmittedAndReOffloaded) {
  const auto& app = apps::app_by_name("Dia");
  const auto params = fault_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  // Fault-free probe fixes the offload timeline and the steady-state remote
  // fraction (measured from the completed offload onwards).
  const RunResult probe =
      run_app(app, params, fault_config(), /*measure_after=*/0);
  ASSERT_TRUE(probe.offloaded);
  const RunResult baseline =
      run_app(app, params, fault_config(), probe.offload_done);
  ASSERT_GT(baseline.invokes_measured, 0u);
  ASSERT_GT(baseline.remote_fraction, 0.0);

  // Kill the surrogate a quarter of the way into the post-offload phase and
  // revive it 250 ms later (past the failure-detection retries, so the first
  // post-recovery probe finds it alive). Timestamps after the failure shift
  // relative to the probe run — the revive instant only needs to land while
  // the app is still executing.
  auto cfg = fault_config();
  cfg.fault_plan.dead_after =
      probe.offload_done + (probe.end - probe.offload_done) / 4;
  cfg.fault_plan.revive_at = cfg.fault_plan.dead_after + sim_ms(250);
  cfg.readmission.enabled = true;
  cfg.readmission.probe_interval = sim_ms(1);

  // First pass learns the (deterministic) re-admission instant; the second
  // measures the remote-execution fraction from exactly that instant.
  const RunResult first = run_app(app, params, cfg);
  ASSERT_EQ(first.failures, 1u);
  ASSERT_EQ(first.readmission_count, 1u);
  ASSERT_TRUE(first.readmission_reoffloaded);
  const RunResult r = run_app(app, params, cfg, first.readmission_at);

  EXPECT_EQ(r.checksum, expected);
  EXPECT_FALSE(r.dead);  // recovered, not permanently degraded
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.readmission_count, 1u);
  EXPECT_EQ(r.offload_count, 2u);  // the second OffloadReport
  EXPECT_GT(r.readmission_at, cfg.fault_plan.revive_at);

  // Post-recovery execution is offloaded again: the remote fraction after
  // re-admission matches the never-failed steady state within noise.
  ASSERT_GT(r.invokes_measured, 0u);
  EXPECT_GT(r.remote_fraction, 0.0);
  EXPECT_NEAR(r.remote_fraction, baseline.remote_fraction, 0.25);
}

TEST(FaultDeterminismTest, SameSeedsReproduceIdenticalRuns) {
  const auto& app = apps::app_by_name("Biomer");
  const auto params = fault_params();

  auto cfg = fault_config();
  cfg.link.jitter_fraction = 0.25;
  cfg.link.jitter_seed = 7;
  cfg.fault_plan.drop_probability = 0.10;
  cfg.fault_plan.drop_seed = 0xABCD;

  const RunResult a = run_app(app, params, cfg);
  const RunResult b = run_app(app, params, cfg);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.end, b.end);
  EXPECT_TRUE(a.link_stats == b.link_stats);
  EXPECT_TRUE(a.client_stats == b.client_stats);
  EXPECT_TRUE(a.surrogate_stats == b.surrogate_stats);
  EXPECT_GT(a.link_stats.messages_dropped, 0u);

  // A different drop seed shifts which messages are lost...
  auto other_drop = cfg;
  other_drop.fault_plan.drop_seed = 0xABCE;
  const RunResult c = run_app(app, params, other_drop);
  EXPECT_FALSE(c.link_stats == a.link_stats);
  // ...and a different jitter seed changes airtime even with equal traffic.
  auto other_jitter = cfg;
  other_jitter.link.jitter_seed = 8;
  const RunResult d = run_app(app, params, other_jitter);
  EXPECT_FALSE(d.link_stats == a.link_stats);

  // Faults or not, the output never changes.
  EXPECT_EQ(c.checksum, a.checksum);
  EXPECT_EQ(d.checksum, a.checksum);
}

}  // namespace
}  // namespace aide
