// Tests for the slab heap: byte accounting through create/extract/sweep,
// slot recycling with stale-id protection, the incrementally-maintained
// object footprint cache, the deterministic id-ordered traversal contract,
// and an allocation-churn stress run through the full Vm GC path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "tests/test_util.hpp"
#include "vm/heap.hpp"
#include "vm/vm.hpp"

namespace aide::vm {
namespace {

using aide::test::make_test_registry;

ObjectId make_id(std::uint64_t node, std::uint64_t counter) {
  return ObjectId{(node << 48) | counter};
}

TEST(HeapTest, CreateExtractSweepByteAccounting) {
  Heap heap(1 << 20);
  // Footprints follow the object model: 16-byte header, 8 bytes per field
  // or int slot, 1 byte per char.
  Object& arr =
      heap.create(make_id(1, 1), ClassId{1}, ObjectKind::int_array, 0, 10, 0,
                  16 + 10 * 8);
  EXPECT_EQ(arr.size_bytes(), 96);
  EXPECT_EQ(heap.used(), 96);
  heap.create(make_id(1, 2), ClassId{2}, ObjectKind::plain, 3, 0, 0,
              16 + 3 * 8);
  heap.create(make_id(1, 3), ClassId{3}, ObjectKind::char_array, 0, 0, 100,
              16 + 100);
  EXPECT_EQ(heap.used(), 96 + 40 + 116);
  EXPECT_EQ(heap.object_count(), 3u);

  // Extracting (migration) uncharges exactly the object's footprint.
  auto taken = heap.extract(make_id(1, 2));
  ASSERT_TRUE(taken);
  EXPECT_EQ(taken->size_bytes(), 40);
  EXPECT_EQ(heap.used(), 96 + 116);
  EXPECT_EQ(heap.object_count(), 2u);
  EXPECT_EQ(heap.find(make_id(1, 2)), nullptr);

  // A marked object survives the sweep (and comes out unmarked); the rest
  // is freed and uncharged.
  heap.find(make_id(1, 3))->gc_mark = true;
  EXPECT_EQ(heap.sweep(nullptr), 96);
  EXPECT_EQ(heap.used(), 116);
  EXPECT_FALSE(heap.find(make_id(1, 3))->gc_mark);

  EXPECT_EQ(heap.sweep(nullptr), 116);
  EXPECT_EQ(heap.used(), 0);
  EXPECT_EQ(heap.object_count(), 0u);
}

TEST(HeapTest, RecycledSlotRejectsStaleId) {
  Heap heap(1 << 20);
  Object& first =
      heap.create(make_id(1, 1), ClassId{1}, ObjectKind::plain, 2, 0, 0, 32);
  const Object* carcass = &first;
  const ObjectId stale = first.id;

  // Unmarked sweep retires the slot; the next allocation recycles the
  // pooled Object (same address — this is what keeps the steady state
  // allocation-free) without letting the stale id alias it.
  heap.sweep(nullptr);
  EXPECT_EQ(heap.find(stale), nullptr);
  Object& second =
      heap.create(make_id(1, 2), ClassId{1}, ObjectKind::plain, 2, 0, 0, 32);
  EXPECT_EQ(&second, carcass);
  EXPECT_FALSE(heap.contains(stale));
  EXPECT_EQ(heap.find(make_id(1, 2)), &second);
  EXPECT_TRUE(second.fields[0].is_nil());  // recycled payload comes back clean
}

TEST(HeapTest, ReusedIdResolvesToNewObject) {
  Heap heap(1 << 20);
  heap.create(make_id(1, 1), ClassId{1}, ObjectKind::plain, 1, 0, 0, 24);
  // Migrate out, then the same id comes home (migrate-back): the table
  // entry is re-linked with a fresh slot generation.
  auto away = heap.extract(make_id(1, 1));
  ASSERT_TRUE(away);
  Object& back = heap.insert(std::move(away));
  EXPECT_EQ(heap.find(make_id(1, 1)), &back);
  EXPECT_EQ(heap.used(), 24);
  EXPECT_EQ(heap.object_count(), 1u);
}

TEST(HeapTest, AdjustUsedKeepsCacheAndRecomputeInAgreement) {
  Heap heap(1 << 20);
  Object& obj =
      heap.create(make_id(1, 1), ClassId{1}, ObjectKind::plain, 2, 0, 0, 32);
  // A string field grows the footprint; the owner charges the delta.
  obj.fields[0] = Value{std::string("hello world")};
  heap.adjust_used(obj, 11);
  EXPECT_EQ(heap.used(), 43);
  EXPECT_EQ(obj.size_bytes(), 43);
  // The incrementally-maintained cache agrees with a from-scratch rescan.
  obj.invalidate_size_cache();
  EXPECT_EQ(obj.size_bytes(), 43);

  obj.fields[0] = Value{std::string("hi")};
  heap.adjust_used(obj, 2 - 11);
  EXPECT_EQ(heap.used(), 34);
  EXPECT_EQ(obj.size_bytes(), 34);
  obj.invalidate_size_cache();
  EXPECT_EQ(obj.size_bytes(), 34);
}

TEST(HeapTest, SweepAndForEachVisitIdsInAscendingOrder) {
  Heap heap(1 << 20);
  // Shuffled insert order across two nodes; traversal must still be
  // id-sorted (nodes ascending, counters ascending) so GC callback order
  // is deterministic regardless of allocation history.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> order = {
      {2, 7}, {1, 9}, {1, 2}, {2, 1}, {1, 5}, {2, 3}};
  for (const auto& [node, counter] : order) {
    heap.create(make_id(node, counter), ClassId{1}, ObjectKind::plain, 1, 0, 0,
                24);
  }
  std::vector<std::uint64_t> seen;
  heap.for_each([&](const Object& o) { seen.push_back(o.id.value()); });
  std::vector<std::uint64_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(seen, sorted);
  EXPECT_EQ(seen.size(), order.size());

  std::vector<std::uint64_t> freed;
  heap.sweep([&](const Object& o) { freed.push_back(o.id.value()); });
  EXPECT_EQ(freed, sorted);
}

class HeapVmTest : public ::testing::Test {
 protected:
  HeapVmTest() : registry_(make_test_registry()), vm_(cfg(), registry_, clock_) {}

  static VmConfig cfg() {
    VmConfig c;
    c.node = NodeId{1};
    c.name = "heap-test-vm";
    c.heap_capacity = 1 << 20;
    return c;
  }

  std::shared_ptr<ClassRegistry> registry_;
  SimClock clock_;
  Vm vm_;
};

TEST_F(HeapVmTest, GcChurnReturnsUsedToBaseline) {
  // Pin a little long-lived state so the collector has survivors to keep.
  const ObjectRef keeper = vm_.new_object("Holder");
  vm_.add_root(keeper);
  vm_.put_field(keeper, FieldId{0}, Value{vm_.new_int_array(64)});
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  const std::int64_t baseline = vm_.heap().used();
  const std::size_t baseline_objects = vm_.heap().object_count();

  // 50k garbage objects of mixed shapes through the normal allocation
  // path; the 1 MB heap forces many full collection cycles along the way.
  for (int i = 0; i < 50000; ++i) {
    const ObjectRef obj = vm_.new_object("Pair");
    vm_.put_field(obj, FieldId{0}, Value{static_cast<std::int64_t>(i)});
    if (i % 7 == 0) {
      vm_.put_field(obj, FieldId{1}, Value{std::string(i % 13, 'x')});
    }
    if (i % 11 == 0) (void)vm_.new_int_array(16);
    if ((i & 255) == 255) vm_.clear_driver_roots();
  }
  vm_.clear_driver_roots();
  vm_.collect_garbage();
  EXPECT_EQ(vm_.heap().used(), baseline);
  EXPECT_EQ(vm_.heap().object_count(), baseline_objects);
  // The survivor is still reachable and intact.
  EXPECT_EQ(vm_.array_length(vm_.get_field(keeper, FieldId{0}).as_ref()), 64);
}

}  // namespace
}  // namespace aide::vm
