// Differential testing of the batched transport (batching on vs off).
//
// Batching is a transport-level optimization: it may change how many frames
// fly and how much virtual time they cost, but never what the program
// observes or in what order. Two harnesses pin that down:
//
//   * App parity — each paper application runs on the platform twice, with
//     the batched transport enabled (the default) and disabled (legacy
//     per-op framing). Both runs must produce the standalone checksum, and
//     the ordered stream of instrumented VM events on the client — the
//     observable yield points — must be identical event for event.
//     Timestamps and byte counts are deliberately excluded from the digest:
//     batching is allowed to compress time, not to reorder, drop, or invent
//     events.
//
//   * Seeded sweep — a randomized remote-heavy program (same spirit as
//     mincut_differential_test's seeded sweeps) cross-checked standalone vs
//     batched vs unbatched across seeds, with periodic forced offloads so
//     the traffic keeps crossing the link.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "apps/apps.hpp"
#include "common/rng.hpp"
#include "platform/platform.hpp"
#include "tests/test_util.hpp"
#include "vm/hooks.hpp"

namespace aide {
namespace {

using vm::ObjectRef;
using vm::Value;
using vm::Vm;

constexpr NodeId kClientNode{1};

const char* const kApps[] = {"JavaNote", "Dia", "Biomer", "Voxel", "Tracer"};

// Order-sensitive digest of every instrumented event the client VM emits.
class EventOrderDigest : public vm::VmHooks {
 public:
  void on_invoke(const vm::InvokeEvent& e) override {
    fold(1);
    fold(e.vm.value());
    fold(e.caller_cls.value());
    fold(e.callee_cls.value());
    fold(e.method.value());
    fold(e.caller_obj.value());
    fold(e.callee_obj.value());
    fold(static_cast<std::uint64_t>(e.is_static));
    fold(static_cast<std::uint64_t>(e.is_native));
    fold(static_cast<std::uint64_t>(e.remote));
  }
  void on_access(const vm::AccessEvent& e) override {
    fold(2);
    fold(e.vm.value());
    fold(e.from_cls.value());
    fold(e.to_cls.value());
    fold(e.from_obj.value());
    fold(e.to_obj.value());
    fold(static_cast<std::uint64_t>(e.is_write));
    fold(static_cast<std::uint64_t>(e.is_static));
    fold(static_cast<std::uint64_t>(e.remote));
  }

  std::uint64_t digest = 0x9E3779B97F4A7C15ULL;
  std::uint64_t events = 0;

 private:
  void fold(std::uint64_t v) {
    digest ^= v + 0x9E3779B97F4A7C15ULL + (digest << 6) + (digest >> 2);
    ++events;
  }
};

// Deterministic early offload, same driver as chaos_test/fault_test: fires
// on the client's second GC so both transport configurations migrate at the
// same logical instant.
class ForcedOffload : public vm::VmHooks {
 public:
  explicit ForcedOffload(platform::Platform& p) : p_(p) {}
  void on_gc(NodeId node, const vm::GcReport&) override {
    if (node != kClientNode) return;
    if (++cycles_ < 2) return;
    if (p_.offloaded() || p_.surrogate_dead()) return;
    p_.offload_now(std::int64_t{1});
  }

 private:
  platform::Platform& p_;
  int cycles_ = 0;
};

apps::AppParams small_params() {
  apps::AppParams p;
  p.doc_bytes = 48 * 1024;
  p.edits = 16;
  p.scrolls = 20;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 80;
  p.iterations = 4;
  p.field_size = 49;
  p.frames = 4;
  p.columns = 32;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 6;
  return p;
}

platform::PlatformConfig platform_config(bool batching, bool oracle = true,
                                         std::size_t deepen = 0) {
  platform::PlatformConfig cfg;
  cfg.client_heap = 64 << 20;
  cfg.surrogate_heap = 64 << 20;
  cfg.auto_offload = false;  // ForcedOffload drives the schedule
  cfg.client_gc_alloc_count_threshold = 4;
  cfg.client_gc_alloc_bytes_divisor = 512;
  cfg.batching.enabled = batching;
  cfg.batching.read_ahead = batching;
  cfg.batching.max_ops_proven = deepen;
  cfg.effect_verify = oracle;  // on: BatchSafety installed (apps are 100% IR)
  return cfg;
}

std::uint64_t standalone_checksum(const apps::AppInfo& app,
                                  const apps::AppParams& params) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 64 << 20;
  Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

struct RunOut {
  std::uint64_t checksum = 0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  rpc::EndpointStats client;
};

RunOut run_app(const apps::AppInfo& app, const apps::AppParams& params,
               bool batching, bool oracle = true, std::size_t deepen = 0) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::Platform p(reg, platform_config(batching, oracle, deepen));
  ForcedOffload forced(p);
  EventOrderDigest order;
  p.client().add_hooks(&forced);
  p.client().add_hooks(&order);
  RunOut o;
  o.checksum = app.run(p.client(), params);
  p.client().remove_hooks(&order);
  p.client().remove_hooks(&forced);
  o.digest = order.digest;
  o.events = order.events;
  o.client = p.client_endpoint().stats();
  return o;
}

class BatchAppParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchAppParityTest, BatchingPreservesOutputAndEventOrder) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = small_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const RunOut batched = run_app(app, params, true);
  const RunOut legacy = run_app(app, params, false);

  // Byte-identical output against the standalone ground truth, both ways.
  EXPECT_EQ(batched.checksum, expected);
  EXPECT_EQ(legacy.checksum, expected);

  // Identical event stream at the yield points: same events, same order.
  EXPECT_EQ(batched.events, legacy.events);
  EXPECT_EQ(batched.digest, legacy.digest);

  // And the transport did its job: batching never costs frames, and the
  // same logical op stream crossed the link.
  EXPECT_LE(batched.client.rpcs_sent, legacy.client.rpcs_sent);
}

INSTANTIATE_TEST_SUITE_P(Apps, BatchAppParityTest, ::testing::ValuesIn(kApps));

// With the BatchSafetyOracle installed (effect_verify on, the default) and
// no deepening requested, every batching decision must be byte-identical to
// the oracle-free transport: same checksum, same event stream, and the very
// same frame/op/byte counters. The oracle may only act when a policy knob
// (max_ops_proven, prefetch filter) asks it to.
TEST_P(BatchAppParityTest, OracleInstallIsByteIdentical) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = small_params();

  const RunOut with = run_app(app, params, true, /*oracle=*/true);
  const RunOut without = run_app(app, params, true, /*oracle=*/false);

  EXPECT_EQ(with.checksum, without.checksum);
  EXPECT_EQ(with.events, without.events);
  EXPECT_EQ(with.digest, without.digest);
  EXPECT_EQ(with.client, without.client);  // every stat, frame for frame
  EXPECT_EQ(with.client.unproven_stores_flushed, 0u);
  EXPECT_EQ(with.client.unproven_riders_flushed, 0u);
}

// Proven-deep pipelining: max_ops_proven lets a provably commuting queue
// run past max_ops. Output and event order must be untouched; the frame
// count can only improve (or tie, when bursts conflict and never deepen).
TEST_P(BatchAppParityTest, ProvenDeepeningPreservesOutput) {
  const auto& app = apps::app_by_name(GetParam());
  const auto params = small_params();
  const std::uint64_t expected = standalone_checksum(app, params);

  const RunOut base = run_app(app, params, true);
  const RunOut deep = run_app(app, params, true, /*oracle=*/true,
                              /*deepen=*/256);

  EXPECT_EQ(deep.checksum, expected);
  EXPECT_EQ(deep.events, base.events);
  EXPECT_EQ(deep.digest, base.digest);
  EXPECT_LE(deep.client.rpcs_sent, base.client.rpcs_sent);
  EXPECT_EQ(deep.client.ops_sent, base.client.ops_sent);
}

// --- seeded sweep ------------------------------------------------------------

constexpr int kSlots = 16;
constexpr int kOps = 400;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

// A remote-heavy random program: once the heap is offloaded, most slots hold
// remote objects, so field traffic, array traffic, and calls keep crossing
// the link — exactly the ops the batched transport coalesces.
std::uint64_t run_random(Vm& vm, std::uint64_t seed,
                         const std::function<void()>& offload) {
  Rng rng(seed);
  std::uint64_t checksum = seed;

  const ObjectRef roots = vm.new_ref_array(kSlots);
  vm.add_root(roots);

  auto slot = [&](int i) {
    return vm.get_field(roots, FieldId{static_cast<std::uint32_t>(i)});
  };
  auto set_slot = [&](int i, const Value& v) {
    vm.put_field(roots, FieldId{static_cast<std::uint32_t>(i)}, v);
  };
  auto observe = [&](const Value& v) {
    if (v.is_int()) {
      checksum = mix(checksum, static_cast<std::uint64_t>(v.as_int()));
    } else if (v.is_str()) {
      checksum = mix(checksum, v.as_str().size());
    } else if (v.is_ref()) {
      checksum = mix(checksum, v.as_ref().is_null() ? 3 : 4);
    } else {
      checksum = mix(checksum, 5);
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const int target = static_cast<int>(rng.next_below(kSlots));
    const Value current = slot(target);
    const bool have_obj = current.is_ref() && !current.as_ref().is_null();

    switch (rng.next_below(8)) {
      case 0:
        set_slot(target, Value{vm.new_object("Counter")});
        break;
      case 1: {
        const ObjectRef pair = vm.new_object("Pair");
        vm.put_field(pair, FieldId{0},
                     Value{static_cast<std::int64_t>(rng.next_u64() % 997)});
        vm.put_field(pair, FieldId{1},
                     Value{std::string(rng.next_below(32), 'b')});
        set_slot(target, Value{pair});
        break;
      }
      case 2:
        set_slot(target,
                 Value{vm.new_int_array(
                     8 + static_cast<std::int64_t>(rng.next_below(256)))});
        break;
      case 3:  // consecutive writes then reads: a natural multi-op burst
        if (have_obj && vm.class_of(current.as_ref().id) ==
                            vm.find_class("Pair")) {
          vm.put_field(current.as_ref(), FieldId{0},
                       Value{static_cast<std::int64_t>(op)});
          vm.put_field(current.as_ref(), FieldId{1},
                       Value{std::string(1 + op % 7, 'x')});
          observe(vm.get_field(current.as_ref(), FieldId{0}));
          observe(vm.get_field(current.as_ref(), FieldId{1}));
        }
        break;
      case 4:
        if (have_obj && vm.class_of(current.as_ref().id) ==
                            vm.find_class("Counter")) {
          observe(vm.call(current.as_ref(), "inc"));
          observe(vm.call(current.as_ref(), "get"));
        }
        break;
      case 5:
        if (have_obj) {
          const ObjectRef ref = current.as_ref();
          if (vm.class_of(ref.id) == vm.registry().int_array_class()) {
            const std::int64_t n = vm.array_length(ref);
            const auto ix = static_cast<std::int64_t>(
                rng.next_below(static_cast<std::uint64_t>(n)));
            vm.array_put(ref, ix, Value{static_cast<std::int64_t>(op * 3)});
            observe(vm.array_get(ref, ix));
          }
        }
        break;
      case 6:
        vm.put_static("Calc", "memory", Value{static_cast<std::int64_t>(op)});
        observe(vm.get_static("Calc", "memory"));
        break;
      case 7:
        set_slot(target, Value{vm::kNullRef});
        break;
    }

    if (op % 89 == 31) vm.collect_garbage();
    if (offload && op % 40 == 39) offload();
    vm.clear_driver_roots();
  }

  vm.remove_root(roots);
  vm.clear_driver_roots();
  return checksum;
}

std::uint64_t run_random_on_platform(std::uint64_t seed, bool batching) {
  auto reg = aide::test::make_test_registry();
  platform::PlatformConfig cfg;
  cfg.client_heap = 32 << 20;
  cfg.auto_offload = false;  // run_random drives its own offloads
  cfg.batching.enabled = batching;
  cfg.batching.read_ahead = batching;
  platform::Platform p(reg, cfg);
  return run_random(p.client(), seed,
                    [&p] { p.offload_now(std::int64_t{1}); });
}

class BatchSeededSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchSeededSweepTest, RandomRemoteTrafficIsTransportInvariant) {
  const std::uint64_t seed = GetParam();

  auto reg = aide::test::make_test_registry();
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = 32 << 20;
  Vm standalone(cfg, reg, clock);
  const auto expected = run_random(standalone, seed, nullptr);

  EXPECT_EQ(run_random_on_platform(seed, true), expected) << "seed " << seed;
  EXPECT_EQ(run_random_on_platform(seed, false), expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSeededSweepTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace aide
