// Tests for the reference-mapping tables (paper 3.2): export/import
// bijection, idempotence, release semantics, and GC-root enumeration.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"
#include "rpc/refmap.hpp"

namespace aide::rpc {
namespace {

TEST(RefMapTest, ExportAssignsStableHandle) {
  RefMap map;
  const auto h1 = map.export_object(ObjectId{10});
  const auto h2 = map.export_object(ObjectId{10});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(map.export_count(), 1u);
}

TEST(RefMapTest, DistinctObjectsGetDistinctHandles) {
  RefMap map;
  std::unordered_set<ExportHandle> handles;
  for (std::uint64_t i = 0; i < 100; ++i) {
    handles.insert(map.export_object(ObjectId{i}));
  }
  EXPECT_EQ(handles.size(), 100u);
}

TEST(RefMapTest, ResolveInvertsExport) {
  RefMap map;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto h = map.export_object(ObjectId{i * 7});
    EXPECT_EQ(map.resolve_export(h), ObjectId{i * 7});
  }
}

TEST(RefMapTest, ResolveUnknownThrows) {
  RefMap map;
  EXPECT_THROW(map.resolve_export(ExportHandle{999}), VmError);
}

TEST(RefMapTest, ReleaseByIdRemovesBothDirections) {
  RefMap map;
  const auto h = map.export_object(ObjectId{5});
  map.release_export(ObjectId{5});
  EXPECT_FALSE(map.is_exported(ObjectId{5}));
  EXPECT_THROW(map.resolve_export(h), VmError);
  map.release_export(ObjectId{5});  // idempotent
}

TEST(RefMapTest, ReleaseByHandle) {
  RefMap map;
  const auto h = map.export_object(ObjectId{5});
  map.release_export_handle(h);
  EXPECT_FALSE(map.is_exported(ObjectId{5}));
  map.release_export_handle(h);  // idempotent
}

TEST(RefMapTest, ReExportAfterReleaseGetsFreshHandle) {
  RefMap map;
  const auto h1 = map.export_object(ObjectId{5});
  map.release_export(ObjectId{5});
  const auto h2 = map.export_object(ObjectId{5});
  EXPECT_NE(h1, h2);
  EXPECT_EQ(map.resolve_export(h2), ObjectId{5});
}

TEST(RefMapTest, ForEachExportEnumeratesRoots) {
  RefMap map;
  map.export_object(ObjectId{1});
  map.export_object(ObjectId{2});
  map.export_object(ObjectId{3});
  map.release_export(ObjectId{2});
  std::unordered_set<ObjectId> seen;
  map.for_each_export([&](ObjectId id) { seen.insert(id); });
  EXPECT_EQ(seen, (std::unordered_set<ObjectId>{ObjectId{1}, ObjectId{3}}));
}

TEST(RefMapTest, ImportsTrackPeerHandles) {
  RefMap map;
  map.note_import(ExportHandle{42}, ObjectId{100});
  EXPECT_EQ(map.import_handle_for(ObjectId{100}), ExportHandle{42});
  EXPECT_EQ(map.import_count(), 1u);
  map.forget_import(ObjectId{100});
  EXPECT_FALSE(map.import_handle_for(ObjectId{100}).valid());
}

TEST(RefMapTest, UnknownImportIsInvalid) {
  RefMap map;
  EXPECT_FALSE(map.import_handle_for(ObjectId{1}).valid());
}

TEST(RefMapTest, ImportCanBeRebound) {
  // After a re-export by the peer, the stub maps to the new handle.
  RefMap map;
  map.note_import(ExportHandle{1}, ObjectId{100});
  map.note_import(ExportHandle{2}, ObjectId{100});
  EXPECT_EQ(map.import_handle_for(ObjectId{100}), ExportHandle{2});
  EXPECT_EQ(map.import_count(), 1u);
}

}  // namespace
}  // namespace aide::rpc
