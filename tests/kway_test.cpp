// K-way partition tests: the greedy recursive-bisection splitter
// (k_way_split) against the exact set-partition oracle (brute_force_k_way).
//
// The differential corpus uses clustered graphs — heavy intra-cluster
// cliques joined by light inter-cluster edges — where the optimal k-way cut
// is structurally forced (cutting inside a cluster costs orders of magnitude
// more than every inter-cluster edge combined), so the greedy splitter must
// reproduce the oracle's parts and cross weight exactly. Fully random graphs
// (n <= 12, k <= 4) additionally pin the structural contract: parts form a
// partition, the reported cross weight matches a recount, the oracle never
// loses to the greedy, and both sides are deterministic across calls.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "graph/mincut.hpp"

namespace aide::graph {
namespace {

ComponentKey cls(std::uint32_t id) { return ComponentKey{ClassId{id}}; }

EdgeInfo bytes_edge(std::uint64_t bytes) {
  EdgeInfo e;
  e.bytes = bytes;
  return e;
}

struct Clustered {
  ExecGraph g;
  std::vector<ComponentKey> members;
  // Expected optimal parts in canonical order (ascending smallest member).
  std::vector<std::unordered_set<ComponentKey>> clusters;
};

// A chain of heavy cliques: cluster i connects to cluster i+1 through one
// light edge with a weight distinct from every other boundary (10*(i+1) plus
// a small jitter), so every optimal k-way partition of the chain is unique.
Clustered chain_clusters(Rng& rng, const std::vector<std::size_t>& sizes) {
  Clustered out;
  std::vector<std::vector<ComponentKey>> keys;
  std::uint32_t next = 0;
  for (const std::size_t size : sizes) {
    std::vector<ComponentKey> cluster;
    for (std::size_t i = 0; i < size; ++i) {
      const ComponentKey key = cls(next++);
      out.g.node(key);
      out.members.push_back(key);
      cluster.push_back(key);
    }
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      for (std::size_t j = i + 1; j < cluster.size(); ++j) {
        out.g.set_edge(cluster[i], cluster[j], bytes_edge(100000));
      }
    }
    out.clusters.emplace_back(cluster.begin(), cluster.end());
    keys.push_back(std::move(cluster));
  }
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    const ComponentKey a = keys[i][rng.next_below(keys[i].size())];
    const ComponentKey b = keys[i + 1][rng.next_below(keys[i + 1].size())];
    out.g.set_edge(a, b, bytes_edge(10 * (i + 1) + rng.next_below(9)));
  }
  return out;
}

ExecGraph random_graph(Rng& rng, std::size_t n, double edge_prob) {
  ExecGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.node(cls(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() >= edge_prob) continue;
      EdgeInfo info;
      info.invocations = rng.next_below(20) + 1;
      info.bytes = rng.next_below(10000);
      g.set_edge(cls(static_cast<std::uint32_t>(i)),
                 cls(static_cast<std::uint32_t>(j)), info);
    }
  }
  return g;
}

std::vector<ComponentKey> all_members(std::size_t n) {
  std::vector<ComponentKey> keys;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(cls(static_cast<std::uint32_t>(i)));
  }
  return keys;
}

// Recounts the weight of every edge whose endpoints land in different parts
// (edges leaving the member set entirely don't count — same contract as the
// splitter).
double recount_cross_weight(const ExecGraph& g, const KWayCut& cut,
                            const EdgeWeightFn& w) {
  const auto part_of = [&](const ComponentKey& key) -> int {
    for (std::size_t p = 0; p < cut.parts.size(); ++p) {
      if (cut.parts[p].contains(key)) return static_cast<int>(p);
    }
    return -1;
  };
  double total = 0.0;
  for (const auto& [ekey, einfo] : g.edges()) {
    const int pa = part_of(ekey.a);
    const int pb = part_of(ekey.b);
    if (pa >= 0 && pb >= 0 && pa != pb) total += w(einfo);
  }
  return total;
}

TEST(KWaySplitTest, KOneReturnsTheUnsplitSet) {
  Rng rng(7);
  const Clustered c = chain_clusters(rng, {3, 3});
  const KWayCut cut = k_way_split(c.g, c.members, 1);
  ASSERT_EQ(cut.parts.size(), 1u);
  EXPECT_EQ(cut.parts[0].size(), c.members.size());
  EXPECT_DOUBLE_EQ(cut.cross_weight, 0.0);
}

TEST(KWaySplitTest, ProducesExactlyMinKMembersParts) {
  Rng rng(11);
  const Clustered c = chain_clusters(rng, {2, 2});
  // k beyond the member count saturates at one singleton per member.
  const KWayCut cut = k_way_split(c.g, c.members, 9);
  ASSERT_EQ(cut.parts.size(), 4u);
  for (const auto& part : cut.parts) EXPECT_EQ(part.size(), 1u);
}

TEST(KWaySplitTest, PartsFormAPartitionWithAccurateWeight) {
  Rng rng(23);
  const EdgeWeightFn w;
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t n = 4 + rng.next_below(9);  // 4..12
    const std::size_t k = 2 + rng.next_below(3);  // 2..4
    const ExecGraph g = random_graph(rng, n, 0.5);
    const std::vector<ComponentKey> members = all_members(n);
    const KWayCut cut = k_way_split(g, members, k, w);

    ASSERT_EQ(cut.parts.size(), std::min(k, n));
    std::unordered_set<ComponentKey> seen;
    for (const auto& part : cut.parts) {
      EXPECT_FALSE(part.empty());
      for (const ComponentKey& key : part) {
        EXPECT_TRUE(seen.insert(key).second) << "member in two parts";
      }
    }
    EXPECT_EQ(seen.size(), members.size());
    EXPECT_NEAR(cut.cross_weight, recount_cross_weight(g, cut, w), 1e-6);
  }
}

TEST(KWaySplitTest, DeterministicAcrossCalls) {
  Rng rng(31);
  const ExecGraph g = random_graph(rng, 10, 0.6);
  const std::vector<ComponentKey> members = all_members(10);
  const KWayCut a = k_way_split(g, members, 4);
  const KWayCut b = k_way_split(g, members, 4);
  ASSERT_EQ(a.parts.size(), b.parts.size());
  for (std::size_t p = 0; p < a.parts.size(); ++p) {
    EXPECT_EQ(a.parts[p], b.parts[p]);
  }
  EXPECT_DOUBLE_EQ(a.cross_weight, b.cross_weight);
}

TEST(KWayDifferentialTest, MatchesOracleOnClusteredGraphs) {
  // Every cluster-count / k combination with k <= clusters: the forced
  // optimum is the k-part chain grouping, and greedy must hit it exactly —
  // same parts in the same canonical order, same weight.
  const std::vector<std::vector<std::size_t>> shapes = {
      {2, 2},    {3, 2},       {3, 3},       {2, 2, 2},   {3, 2, 3},
      {4, 3, 3}, {2, 2, 2, 2}, {3, 3, 2, 2}, {3, 3, 3, 3}};
  Rng rng(101);
  for (const auto& shape : shapes) {
    for (std::size_t k = 2; k <= shape.size() && k <= 4; ++k) {
      const Clustered c = chain_clusters(rng, shape);
      const KWayCut greedy = k_way_split(c.g, c.members, k);
      const KWayCut oracle = brute_force_k_way(c.g, c.members, k);

      ASSERT_EQ(greedy.parts.size(), k) << "shape size " << shape.size();
      ASSERT_EQ(oracle.parts.size(), k);
      EXPECT_DOUBLE_EQ(greedy.cross_weight, oracle.cross_weight);
      for (std::size_t p = 0; p < k; ++p) {
        EXPECT_EQ(greedy.parts[p], oracle.parts[p])
            << "part " << p << " diverges at k=" << k;
      }
    }
  }
}

TEST(KWayDifferentialTest, RecoversTheClustersAtKEqualsClusterCount) {
  Rng rng(211);
  const Clustered c = chain_clusters(rng, {3, 2, 4, 3});
  const KWayCut cut = k_way_split(c.g, c.members, 4);
  ASSERT_EQ(cut.parts.size(), c.clusters.size());
  for (std::size_t p = 0; p < cut.parts.size(); ++p) {
    EXPECT_EQ(cut.parts[p], c.clusters[p]);
  }
}

TEST(KWayDifferentialTest, OracleNeverLosesOnRandomGraphs) {
  Rng rng(307);
  const EdgeWeightFn w;
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 4 + rng.next_below(9);  // 4..12
    const std::size_t k = 2 + rng.next_below(3);  // 2..4
    const ExecGraph g = random_graph(rng, n, 0.45);
    const std::vector<ComponentKey> members = all_members(n);
    const KWayCut greedy = k_way_split(g, members, k, w);
    const KWayCut oracle = brute_force_k_way(g, members, k, w);

    ASSERT_EQ(oracle.parts.size(), std::min(k, n));
    EXPECT_LE(oracle.cross_weight, greedy.cross_weight + 1e-9)
        << "oracle must be optimal (n=" << n << ", k=" << k << ")";
    EXPECT_NEAR(oracle.cross_weight, recount_cross_weight(g, oracle, w),
                1e-6);
  }
}

}  // namespace
}  // namespace aide::graph
