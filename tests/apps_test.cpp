// Tests for the five workload applications: determinism, scale-parameter
// behaviour, Table 1 metadata, and the core transparency property — running
// under the AIDE platform with offloading produces exactly the same
// observable final state as running standalone.
#include <gtest/gtest.h>

#include <memory>

#include "apps/apps.hpp"
#include "apps/stdlib.hpp"
#include "common/error.hpp"
#include "platform/platform.hpp"
#include "vm/vm.hpp"

namespace aide::apps {
namespace {

// Small scales keep each scenario in the milliseconds while still exercising
// every code path.
AppParams small_params() {
  AppParams p;
  p.scale = 0.05;
  p.doc_bytes = 64 * 1024;
  p.edits = 12;
  p.scrolls = 16;
  p.image_size = 64;
  p.layers = 3;
  p.filter_passes = 3;
  p.atoms = 60;
  p.iterations = 4;
  p.field_size = 33;
  p.frames = 3;
  p.columns = 24;
  p.trace_w = 16;
  p.trace_h = 12;
  p.spheres = 5;
  p.scale = 1.0;  // sizes above are already small
  return p;
}

std::uint64_t run_standalone(const AppInfo& app, const AppParams& params,
                             std::int64_t heap = 64 << 20) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  SimClock clock;
  vm::VmConfig cfg;
  cfg.heap_capacity = heap;
  vm::Vm vm(cfg, reg, clock);
  return app.run(vm, params);
}

TEST(AppsCatalogTest, Table1Inventory) {
  const auto& apps = all_apps();
  ASSERT_EQ(apps.size(), 5u);
  EXPECT_EQ(apps[0].name, "JavaNote");
  EXPECT_EQ(apps[1].name, "Dia");
  EXPECT_EQ(apps[2].name, "Biomer");
  EXPECT_EQ(apps[3].name, "Voxel");
  EXPECT_EQ(apps[4].name, "Tracer");
  for (const auto& app : apps) {
    EXPECT_FALSE(app.description.empty());
    EXPECT_FALSE(app.resource_demands.empty());
  }
}

TEST(AppsCatalogTest, LookupByName) {
  EXPECT_EQ(app_by_name("Voxel").name, "Voxel");
  EXPECT_THROW(app_by_name("NotAnApp"), std::invalid_argument);
}

class AppDeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AppDeterminismTest, SameParamsSameChecksum) {
  const auto& app = app_by_name(GetParam());
  const auto params = small_params();
  const auto a = run_standalone(app, params);
  const auto b = run_standalone(app, params);
  EXPECT_EQ(a, b);
}

TEST_P(AppDeterminismTest, RegistrationIsIdempotent) {
  const auto& app = app_by_name(GetParam());
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  const auto count = reg->size();
  app.register_classes(*reg);
  EXPECT_EQ(reg->size(), count);
}

TEST_P(AppDeterminismTest, ChecksumIndependentOfHeapSize) {
  // GC cadence differs wildly between these heaps; the observable state must
  // not (the checksum deliberately excludes timing).
  const auto& app = app_by_name(GetParam());
  const auto params = small_params();
  EXPECT_EQ(run_standalone(app, params, 16 << 20),
            run_standalone(app, params, 256 << 20));
}

// The headline property (paper section 2, "Transparent, distributed
// execution"): forcing part of the application onto the surrogate must not
// change what it computes.
TEST_P(AppDeterminismTest, TransparencyUnderForcedOffload) {
  const auto& app = app_by_name(GetParam());
  const auto params = small_params();
  const auto expected = run_standalone(app, params);

  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = 64 << 20;
  cfg.auto_offload = false;  // we force one mid-run via low heap instead
  platform::Platform p(reg, cfg);

  // Run, then force an offload at the end of the first run and run again on
  // the same platform: state of run 2 executes with a populated surrogate.
  const auto first = app.run(p.client(), params);
  EXPECT_EQ(first, expected);
  p.offload_now(std::int64_t{1});
  const auto second = app.run(p.client(), params);
  EXPECT_EQ(second, expected);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppDeterminismTest,
                         ::testing::Values("JavaNote", "Dia", "Biomer",
                                           "Voxel", "Tracer"));

TEST(AppsTransparencyTest, JavaNoteSurvivesTightHeapWithPlatform) {
  // The paper's key scenario at reduced scale: pick a heap that OOMs
  // standalone but completes with the platform.
  const auto& app = app_by_name("JavaNote");
  auto params = small_params();
  params.doc_bytes = 96 * 1024;

  // Find the standalone result with a large heap first (ground truth).
  const auto expected = run_standalone(app, params);

  // Standalone at a tight heap must fail...
  const std::int64_t tight = 800 * 1024;
  EXPECT_THROW(run_standalone(app, params, tight), VmError);

  // ...and the platform must complete with the same checksum.
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);
  platform::PlatformConfig cfg;
  cfg.client_heap = tight;
  cfg.trigger.consecutive_reports = 2;
  platform::Platform p(reg, cfg);
  EXPECT_EQ(app.run(p.client(), params), expected);
  EXPECT_TRUE(p.offloaded());
}

TEST(AppsScaleTest, JavaNoteScalesWithDocumentSize) {
  const auto& app = app_by_name("JavaNote");
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);

  auto run_with = [&](std::int64_t doc_bytes) {
    SimClock clock;
    vm::VmConfig cfg;
    cfg.heap_capacity = 64 << 20;
    vm::Vm vm(cfg, reg, clock);
    auto params = small_params();
    params.doc_bytes = doc_bytes;
    app.run(vm, params);
    return vm.heap().used();
  };
  EXPECT_GT(run_with(128 * 1024), run_with(32 * 1024));
}

TEST(AppsScaleTest, TracerWorkScalesWithImage) {
  const auto& app = app_by_name("Tracer");
  auto reg = std::make_shared<vm::ClassRegistry>();
  app.register_classes(*reg);

  auto sim_time = [&](int w, int h) {
    SimClock clock;
    vm::VmConfig cfg;
    cfg.heap_capacity = 64 << 20;
    vm::Vm vm(cfg, reg, clock);
    auto params = small_params();
    params.trace_w = w;
    params.trace_h = h;
    app.run(vm, params);
    return clock.now();
  };
  EXPECT_GT(sim_time(32, 24), sim_time(16, 12));
}

TEST(AppsStructureTest, PinnedClassesExistForEveryApp) {
  // Every app must touch at least one pinned (stateful-native) class — the
  // anchor of the client partition.
  for (const auto& app : all_apps()) {
    auto reg = std::make_shared<vm::ClassRegistry>();
    app.register_classes(*reg);
    bool has_pinned = false;
    for (std::size_t i = 0; i < reg->size(); ++i) {
      if (reg->get(ClassId{static_cast<std::uint32_t>(i)})
              .has_stateful_native()) {
        has_pinned = true;
        break;
      }
    }
    EXPECT_TRUE(has_pinned) << app.name;
  }
}

TEST(AppsStructureTest, StdlibHasStatelessNatives) {
  auto reg = std::make_shared<vm::ClassRegistry>();
  register_stdlib(*reg);
  const auto& math = reg->get(reg->find("Math"));
  EXPECT_FALSE(math.has_stateful_native());
  bool any_stateless = false;
  for (const auto& m : math.methods) {
    if (m.kind == vm::MethodKind::native && m.stateless) any_stateless = true;
  }
  EXPECT_TRUE(any_stateless);
}

}  // namespace
}  // namespace aide::apps
