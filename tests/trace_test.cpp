// Tests for the trace model: recorder fidelity against live VM execution and
// the CSV round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "emul/recorder.hpp"
#include "emul/trace.hpp"
#include "tests/test_util.hpp"

namespace aide::emul {
namespace {

using aide::test::make_test_registry;
using vm::ObjectRef;
using vm::Value;
using vm::Vm;
using vm::VmConfig;

TEST(RecorderTest, CapturesAllocInvokeAccessExit) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig cfg;
  cfg.heap_capacity = 1 << 20;
  Vm vm(cfg, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);

  const ObjectRef counter = vm.new_object("Counter");
  vm.call(counter, "inc");

  const Trace& t = rec.trace();
  ASSERT_FALSE(t.empty());

  int allocs = 0, invokes = 0, accesses = 0, enters = 0, exits = 0;
  for (const auto& e : t.events) {
    switch (e.type) {
      case TraceEventType::alloc: ++allocs; break;
      case TraceEventType::invoke: ++invokes; break;
      case TraceEventType::access: ++accesses; break;
      case TraceEventType::method_enter: ++enters; break;
      case TraceEventType::method_exit: ++exits; break;
      default: break;
    }
  }
  EXPECT_EQ(allocs, 1);
  EXPECT_EQ(invokes, 1);
  EXPECT_EQ(accesses, 2);  // get + put of the counter field
  EXPECT_EQ(enters, exits);
  EXPECT_EQ(enters, 1);
}

TEST(RecorderTest, FlagsEncodeMethodKind) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig cfg;
  Vm vm(cfg, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);

  const ObjectRef device = vm.new_object("Device");
  vm.call(device, "beep");                         // native
  vm.call_static("Util", "twice", {Value{1}});     // native static stateless
  vm.call_static("Calc", "add", {Value{1}, Value{2}});  // managed static

  std::vector<TraceEvent> invokes;
  for (const auto& e : rec.trace().events) {
    if (e.type == TraceEventType::invoke) invokes.push_back(e);
  }
  ASSERT_EQ(invokes.size(), 3u);
  EXPECT_TRUE(invokes[0].flags & kFlagNative);
  EXPECT_FALSE(invokes[0].flags & kFlagStatic);
  EXPECT_TRUE(invokes[1].flags & kFlagNative);
  EXPECT_TRUE(invokes[1].flags & kFlagStatic);
  EXPECT_TRUE(invokes[1].flags & kFlagStateless);
  EXPECT_FALSE(invokes[2].flags & kFlagNative);
  EXPECT_TRUE(invokes[2].flags & kFlagStatic);
}

TEST(RecorderTest, GcEventsCarryHeapFigures) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig cfg;
  cfg.heap_capacity = 1 << 20;
  Vm vm(cfg, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);

  vm.new_object("Pair");
  vm.clear_driver_roots();
  vm.collect_garbage();

  const auto& events = rec.trace().events;
  auto it = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.type == TraceEventType::gc;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->aux1, 1 << 20);  // capacity
  EXPECT_GT(it->aux2, 0);        // freed the pair
}

TEST(RecorderTest, SelfTimeRecordedInExit) {
  auto reg = make_test_registry();
  SimClock clock;
  VmConfig cfg;
  Vm vm(cfg, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);
  const ObjectRef counter = vm.new_object("Counter");
  vm.call(counter, "busy", {Value{500}});

  for (const auto& e : rec.trace().events) {
    if (e.type == TraceEventType::method_exit) {
      EXPECT_GE(e.bytes, sim_us(500));
      return;
    }
  }
  FAIL() << "no method_exit recorded";
}

TEST(RecorderTest, TakeAndClear) {
  auto reg = make_test_registry();
  SimClock clock;
  Vm vm(VmConfig{}, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);
  vm.new_object("Pair");
  const Trace t = rec.take();
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(rec.trace().empty());
}

TEST(TraceCsvTest, RoundTripPreservesEvents) {
  Trace t;
  TraceEvent a;
  a.type = TraceEventType::invoke;
  a.flags = kFlagNative | kFlagStatic;
  a.t = 123456789;
  a.cls_a = ClassId{3};
  a.cls_b = ClassId{9};
  a.obj_a = ObjectId{0xFFFF000011ULL};
  a.obj_b = ObjectId{7};
  a.method = MethodId{2};
  a.bytes = -5;
  a.aux1 = 42;
  a.aux2 = -42;
  t.events.push_back(a);
  TraceEvent b;
  b.type = TraceEventType::gc;
  b.t = 999;
  b.bytes = 1000;
  b.aux1 = 2000;
  b.aux2 = 300;
  t.events.push_back(b);

  std::stringstream ss;
  t.save_csv(ss);
  const Trace got = Trace::load_csv(ss);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.events[0].type, a.type);
  EXPECT_EQ(got.events[0].flags, a.flags);
  EXPECT_EQ(got.events[0].t, a.t);
  EXPECT_EQ(got.events[0].cls_a, a.cls_a);
  EXPECT_EQ(got.events[0].cls_b, a.cls_b);
  EXPECT_EQ(got.events[0].obj_a, a.obj_a);
  EXPECT_EQ(got.events[0].obj_b, a.obj_b);
  EXPECT_EQ(got.events[0].method, a.method);
  EXPECT_EQ(got.events[0].bytes, a.bytes);
  EXPECT_EQ(got.events[0].aux1, a.aux1);
  EXPECT_EQ(got.events[0].aux2, a.aux2);
  EXPECT_EQ(got.events[1].type, b.type);
  EXPECT_EQ(got.events[1].bytes, 1000);
}

TEST(TraceCsvTest, EmptyTrace) {
  Trace t;
  std::stringstream ss;
  t.save_csv(ss);
  const Trace got = Trace::load_csv(ss);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(got.duration(), 0);
}

TEST(TraceCsvTest, RecordedTraceRoundTrips) {
  auto reg = make_test_registry();
  SimClock clock;
  Vm vm(VmConfig{}, reg, clock);
  TraceRecorder rec;
  vm.add_hooks(&rec);
  const ObjectRef counter = vm.new_object("Counter");
  vm.call(counter, "addMany", {Value{5}});

  std::stringstream ss;
  rec.trace().save_csv(ss);
  const Trace got = Trace::load_csv(ss);
  ASSERT_EQ(got.size(), rec.trace().size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.events[i].type, rec.trace().events[i].type);
    EXPECT_EQ(got.events[i].bytes, rec.trace().events[i].bytes);
    EXPECT_EQ(got.events[i].obj_a, rec.trace().events[i].obj_a);
  }
}

TEST(TraceTest, DurationIsLastEventTime) {
  Trace t;
  TraceEvent e;
  e.t = 5;
  t.events.push_back(e);
  e.t = 77;
  t.events.push_back(e);
  EXPECT_EQ(t.duration(), 77);
}

}  // namespace
}  // namespace aide::emul
