// Tests for the analytic link model: the paper's WaveLAN parameters (11 Mbps,
// 2.4 ms null-message RTT) and the cost/accounting behaviour.
#include <gtest/gtest.h>

#include "netsim/link.hpp"

namespace aide::netsim {
namespace {

TEST(LinkParamsTest, WavelanMatchesPaper) {
  const auto p = LinkParams::wavelan();
  EXPECT_DOUBLE_EQ(p.bandwidth_bps, 11e6);
  EXPECT_EQ(p.null_rtt, sim_us(2400));
}

TEST(LinkTest, NullMessageCostsHalfRtt) {
  Link link;
  EXPECT_EQ(link.one_way_cost(0), sim_us(1200));
}

TEST(LinkTest, NullRoundTripMatchesRtt) {
  Link link;
  EXPECT_EQ(link.round_trip_cost(0, 0), sim_us(2400));
}

TEST(LinkTest, PayloadAddsSerializationTime) {
  Link link;
  // 11'000'000 bits/s => 1375 bytes take exactly 1 ms.
  const SimDuration cost = link.one_way_cost(1375);
  EXPECT_EQ(cost, sim_us(1200) + sim_ms(1));
}

TEST(LinkTest, CostMonotonicInPayload) {
  Link link;
  SimDuration prev = 0;
  for (std::uint64_t bytes = 0; bytes <= 1 << 20; bytes += 64 * 1024) {
    const SimDuration c = link.one_way_cost(bytes);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(LinkTest, StatsAccumulate) {
  Link link;
  (void)link.one_way_cost(100);
  (void)link.one_way_cost(200);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().bytes, 300u);
  EXPECT_GT(link.stats().busy_time, 0);
  link.reset_stats();
  EXPECT_EQ(link.stats().messages, 0u);
}

TEST(LinkTest, RoundTripCountsTwoMessages) {
  Link link;
  (void)link.round_trip_cost(10, 20);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().bytes, 30u);
}

TEST(LinkTest, DeterministicWithoutJitter) {
  Link a, b;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.one_way_cost(i * 100), b.one_way_cost(i * 100));
  }
}

TEST(LinkTest, JitterIsBoundedAndSeeded) {
  LinkParams p = LinkParams::wavelan();
  p.jitter_fraction = 0.5;
  p.jitter_seed = 11;
  Link a(p), b(p);
  const SimDuration base = Link(LinkParams::wavelan()).one_way_cost(1000);
  for (int i = 0; i < 100; ++i) {
    const SimDuration ca = a.one_way_cost(1000);
    EXPECT_EQ(ca, b.one_way_cost(1000));  // same seed, same stream
    EXPECT_GE(ca, base);
    EXPECT_LE(ca, base + base / 2 + 1);
  }
}

TEST(LinkTest, FasterLinkCostsLess) {
  Link wavelan(LinkParams::wavelan());
  Link ethernet(LinkParams::fast_ethernet());
  EXPECT_LT(ethernet.one_way_cost(10000), wavelan.one_way_cost(10000));
}

TEST(LinkTest, CellularCostsMore) {
  Link wavelan(LinkParams::wavelan());
  Link cellular(LinkParams::cellular());
  EXPECT_GT(cellular.one_way_cost(1000), wavelan.one_way_cost(1000));
}

}  // namespace
}  // namespace aide::netsim
