// Tests for the analytic link model: the paper's WaveLAN parameters (11 Mbps,
// 2.4 ms null-message RTT) and the cost/accounting behaviour.
#include <gtest/gtest.h>

#include "netsim/link.hpp"

namespace aide::netsim {
namespace {

TEST(LinkParamsTest, WavelanMatchesPaper) {
  const auto p = LinkParams::wavelan();
  EXPECT_DOUBLE_EQ(p.bandwidth_bps, 11e6);
  EXPECT_EQ(p.null_rtt, sim_us(2400));
}

TEST(LinkTest, NullMessageCostsHalfRtt) {
  Link link;
  EXPECT_EQ(link.one_way_cost(0), sim_us(1200));
}

TEST(LinkTest, NullRoundTripMatchesRtt) {
  Link link;
  EXPECT_EQ(link.round_trip_cost(0, 0), sim_us(2400));
}

TEST(LinkTest, PayloadAddsSerializationTime) {
  Link link;
  // 11'000'000 bits/s => 1375 bytes take exactly 1 ms.
  const SimDuration cost = link.one_way_cost(1375);
  EXPECT_EQ(cost, sim_us(1200) + sim_ms(1));
}

TEST(LinkTest, CostMonotonicInPayload) {
  Link link;
  SimDuration prev = 0;
  for (std::uint64_t bytes = 0; bytes <= 1 << 20; bytes += 64 * 1024) {
    const SimDuration c = link.one_way_cost(bytes);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(LinkTest, StatsAccumulate) {
  Link link;
  (void)link.one_way_cost(100);
  (void)link.one_way_cost(200);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().bytes, 300u);
  EXPECT_GT(link.stats().busy_time, 0);
  link.reset_stats();
  EXPECT_EQ(link.stats().messages, 0u);
}

TEST(LinkTest, RoundTripCountsTwoMessages) {
  Link link;
  (void)link.round_trip_cost(10, 20);
  EXPECT_EQ(link.stats().messages, 2u);
  EXPECT_EQ(link.stats().bytes, 30u);
}

TEST(LinkTest, DeterministicWithoutJitter) {
  Link a, b;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.one_way_cost(i * 100), b.one_way_cost(i * 100));
  }
}

TEST(LinkTest, JitterIsBoundedAndSeeded) {
  LinkParams p = LinkParams::wavelan();
  p.jitter_fraction = 0.5;
  p.jitter_seed = 11;
  Link a(p), b(p);
  const SimDuration base = Link(LinkParams::wavelan()).one_way_cost(1000);
  for (int i = 0; i < 100; ++i) {
    const SimDuration ca = a.one_way_cost(1000);
    EXPECT_EQ(ca, b.one_way_cost(1000));  // same seed, same stream
    EXPECT_GE(ca, base);
    EXPECT_LE(ca, base + base / 2 + 1);
  }
}

TEST(LinkTest, FasterLinkCostsLess) {
  Link wavelan(LinkParams::wavelan());
  Link ethernet(LinkParams::fast_ethernet());
  EXPECT_LT(ethernet.one_way_cost(10000), wavelan.one_way_cost(10000));
}

TEST(LinkTest, CellularCostsMore) {
  Link wavelan(LinkParams::wavelan());
  Link cellular(LinkParams::cellular());
  EXPECT_GT(cellular.one_way_cost(1000), wavelan.one_way_cost(1000));
}

TEST(LinkEstimateTest, ProbeIsSideEffectFree) {
  // one_way_cost charges the traffic accounting; candidate evaluation must
  // use the const probe, which never touches stats.
  Link link;
  const SimDuration est = link.estimate_one_way_cost(1375);
  EXPECT_EQ(est, sim_us(1200) + sim_ms(1));
  EXPECT_EQ(link.stats().messages, 0u);
  EXPECT_EQ(link.stats().bytes, 0u);
  EXPECT_EQ(link.stats().busy_time, 0);
  // Jitter off: the probe agrees exactly with the charging path.
  EXPECT_EQ(est, link.one_way_cost(1375));
  EXPECT_EQ(link.stats().messages, 1u);
}

TEST(LinkEstimateTest, ProbeDoesNotConsumeJitterStream) {
  LinkParams p = LinkParams::wavelan();
  p.jitter_fraction = 0.5;
  p.jitter_seed = 9;
  Link probed(p), fresh(p);
  for (int i = 0; i < 8; ++i) (void)probed.estimate_one_way_cost(500);
  // Had the probes consumed the jitter RNG, the streams would now diverge.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(probed.one_way_cost(1000), fresh.one_way_cost(1000));
  }
}

TEST(LinkEstimateTest, RpcEstimateUsesFullRttWithoutHalvingLoss) {
  LinkParams p;
  p.bandwidth_bps = 1e12;  // serialization negligible
  p.null_rtt = 3;          // odd: two halved legs would truncate to 2
  EXPECT_EQ(estimate_rpc_cost(p, 0), 3);
  EXPECT_EQ(estimate_one_way_cost(p, 0), 1);
}

TEST(LinkFaultTest, InertPlanDeliveryMatchesChargePath) {
  Link charged, attempted;
  for (int i = 0; i < 50; ++i) {
    const auto d = attempted.try_one_way(i * 137, SimTime{i} * sim_ms(1));
    EXPECT_TRUE(d.delivered);
    EXPECT_EQ(d.cost, charged.one_way_cost(i * 137));
  }
  EXPECT_TRUE(attempted.stats() == charged.stats());
  EXPECT_EQ(attempted.stats().messages_dropped, 0u);
  EXPECT_EQ(attempted.stats().link_down_failures, 0u);
}

TEST(LinkFaultTest, OutageWindowRefusesWithoutAirtime) {
  Link link;
  FaultPlan plan;
  plan.outages.push_back({sim_ms(10), sim_ms(20)});
  link.set_fault_plan(plan);
  EXPECT_FALSE(link.is_down(sim_ms(9)));
  EXPECT_TRUE(link.is_down(sim_ms(10)));  // half-open: begin included
  EXPECT_TRUE(link.is_down(sim_ms(19)));
  EXPECT_FALSE(link.is_down(sim_ms(20)));  // end excluded

  const auto refused = link.try_one_way(1000, sim_ms(15));
  EXPECT_FALSE(refused.delivered);
  EXPECT_EQ(refused.cost, 0);
  EXPECT_EQ(link.stats().messages, 0u);  // never made it onto the air
  EXPECT_EQ(link.stats().link_down_failures, 1u);

  const auto ok = link.try_one_way(1000, sim_ms(25));
  EXPECT_TRUE(ok.delivered);
  EXPECT_EQ(link.stats().messages, 1u);
}

TEST(LinkFaultTest, DeadAfterIsPermanent) {
  Link link;
  FaultPlan plan;
  plan.dead_after = sim_ms(5);
  link.set_fault_plan(plan);
  EXPECT_TRUE(link.try_one_way(0, sim_ms(4)).delivered);
  EXPECT_FALSE(link.try_one_way(0, sim_ms(5)).delivered);
  EXPECT_FALSE(link.try_one_way(0, sim_sec(3600)).delivered);
  EXPECT_EQ(link.stats().link_down_failures, 2u);
}

TEST(LinkFaultTest, DropsAreSeededAndChargeAirtime) {
  FaultPlan plan;
  plan.drop_probability = 0.3;
  plan.drop_seed = 77;
  Link a, b;
  a.set_fault_plan(plan);
  b.set_fault_plan(plan);
  int drops = 0;
  for (int i = 0; i < 200; ++i) {
    const auto da = a.try_one_way(100, 0);
    const auto db = b.try_one_way(100, 0);
    EXPECT_EQ(da.delivered, db.delivered);  // same seed, same pattern
    if (!da.delivered) {
      ++drops;
      EXPECT_GT(da.cost, 0);  // a dropped message still burned its airtime
    }
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 200);
  EXPECT_EQ(a.stats().messages, 200u);  // drops transmit, then vanish
  EXPECT_EQ(a.stats().messages_dropped, static_cast<std::uint64_t>(drops));
  EXPECT_EQ(a.stats().bytes_dropped, static_cast<std::uint64_t>(drops) * 100);

  FaultPlan other = plan;
  other.drop_seed = 78;
  Link c;
  c.set_fault_plan(other);
  bool diverged = false;
  b.set_fault_plan(plan);  // reseeds: replay from the start
  for (int i = 0; i < 200; ++i) {
    if (c.try_one_way(100, 0).delivered != b.try_one_way(100, 0).delivered) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(LinkFaultTest, DegradedWindowSlowsSerializationOnly) {
  Link link;
  FaultPlan plan;
  plan.degraded.push_back({sim_ms(10), sim_ms(20), 0.5});
  link.set_fault_plan(plan);
  // 1375 bytes: 1 ms nominal serialization, 2 ms at half bandwidth.
  EXPECT_EQ(link.try_one_way(1375, sim_ms(5)).cost, sim_us(1200) + sim_ms(1));
  EXPECT_EQ(link.try_one_way(1375, sim_ms(15)).cost, sim_us(1200) + sim_ms(2));
  // Latency (the null-message charge) is unaffected by degradation.
  EXPECT_EQ(link.try_one_way(0, sim_ms(15)).cost, sim_us(1200));
}

TEST(LinkFaultTest, OutageWindowEdgeSemantics) {
  // Half-open [begin, end): a message stamped exactly at `end` is the first
  // one delivered again; one stamped exactly at `begin` is the first refused.
  Link link;
  FaultPlan plan;
  plan.outages.push_back({sim_ms(10), sim_ms(20)});
  link.set_fault_plan(plan);
  EXPECT_TRUE(link.try_one_way(100, sim_ms(10) - 1).delivered);
  EXPECT_FALSE(link.try_one_way(100, sim_ms(10)).delivered);
  EXPECT_FALSE(link.try_one_way(100, sim_ms(20) - 1).delivered);
  EXPECT_TRUE(link.try_one_way(100, sim_ms(20)).delivered);
  EXPECT_EQ(link.stats().link_down_failures, 2u);
}

TEST(LinkFaultTest, EmptyOutageWindowIsInert) {
  // begin == end contains no instant at all, including begin itself.
  Link link;
  FaultPlan plan;
  plan.outages.push_back({sim_ms(10), sim_ms(10)});
  link.set_fault_plan(plan);
  EXPECT_TRUE(plan.enabled());  // armed, yet can never fire
  EXPECT_FALSE(link.is_down(sim_ms(10)));
  EXPECT_TRUE(link.try_one_way(100, sim_ms(10)).delivered);
  EXPECT_EQ(link.stats().link_down_failures, 0u);
}

TEST(LinkFaultTest, DegradedWindowEdgeSemantics) {
  Link link;
  FaultPlan plan;
  plan.degraded.push_back({sim_ms(10), sim_ms(20), 0.5});
  link.set_fault_plan(plan);
  const SimDuration nominal = sim_us(1200) + sim_ms(1);   // 1375 B at 11 Mbps
  const SimDuration degraded = sim_us(1200) + sim_ms(2);  // half bandwidth
  EXPECT_EQ(link.try_one_way(1375, sim_ms(10) - 1).cost, nominal);
  EXPECT_EQ(link.try_one_way(1375, sim_ms(10)).cost, degraded);  // begin in
  EXPECT_EQ(link.try_one_way(1375, sim_ms(20) - 1).cost, degraded);
  EXPECT_EQ(link.try_one_way(1375, sim_ms(20)).cost, nominal);  // end out
}

TEST(LinkFaultTest, ReviveWindowEndsTheDeath) {
  // [dead_after, revive_at) is half-open too: the revival instant delivers.
  Link link;
  FaultPlan plan;
  plan.dead_after = sim_ms(5);
  plan.revive_at = sim_ms(9);
  link.set_fault_plan(plan);
  EXPECT_TRUE(link.try_one_way(0, sim_ms(5) - 1).delivered);
  EXPECT_FALSE(link.try_one_way(0, sim_ms(5)).delivered);
  EXPECT_FALSE(link.try_one_way(0, sim_ms(9) - 1).delivered);
  EXPECT_TRUE(link.try_one_way(0, sim_ms(9)).delivered);
  EXPECT_TRUE(link.try_one_way(0, sim_sec(3600)).delivered);  // stays up
  EXPECT_EQ(link.stats().link_down_failures, 2u);
}

TEST(LinkFaultTest, PeriodicOutageRepeatsForever) {
  // Down during [phase + k*period, phase + k*period + duration).
  Link link;
  FaultPlan plan;
  plan.outage_phase = sim_ms(2);
  plan.outage_period = sim_ms(10);
  plan.outage_duration = sim_ms(3);
  link.set_fault_plan(plan);
  EXPECT_FALSE(link.is_down(0));              // before the phase offset
  EXPECT_FALSE(link.is_down(sim_ms(2) - 1));
  for (int k = 0; k < 5; ++k) {
    const SimTime base = sim_ms(2) + k * sim_ms(10);
    EXPECT_TRUE(link.is_down(base)) << k;
    EXPECT_TRUE(link.is_down(base + sim_ms(3) - 1)) << k;
    EXPECT_FALSE(link.is_down(base + sim_ms(3))) << k;
    EXPECT_FALSE(link.is_down(base + sim_ms(10) - 1)) << k;
  }
}

TEST(LinkFaultTest, ReplyLegDropsOnlyAffectReplies) {
  FaultPlan plan;
  plan.reply_drop_probability = 0.5;
  plan.drop_seed = 99;
  Link link;
  link.set_fault_plan(plan);
  int reply_drops = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(link.try_one_way(100, 0, Leg::request).delivered);
    const auto d = link.try_one_way(100, 0, Leg::reply);
    if (!d.delivered) {
      ++reply_drops;
      EXPECT_GT(d.cost, 0);  // lost in transit, not refused: airtime burned
    }
  }
  EXPECT_GT(reply_drops, 10);
  EXPECT_LT(reply_drops, 90);
  EXPECT_EQ(link.stats().messages_dropped,
            static_cast<std::uint64_t>(reply_drops));
}

TEST(LinkFaultTest, ChaosIsSeededAndExclusivePerMessage) {
  FaultPlan plan;
  plan.corrupt_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.reorder_probability = 0.2;
  Link a, b;
  a.set_fault_plan(plan);
  b.set_fault_plan(plan);
  std::uint64_t corrupted = 0, duplicated = 0, reordered = 0;
  for (int i = 0; i < 300; ++i) {
    const auto da = a.try_one_way(100, 0);
    const auto db = b.try_one_way(100, 0);
    EXPECT_TRUE(da.delivered);  // chaos mangles, never refuses
    EXPECT_EQ(da.corrupted, db.corrupted);  // same seed, same schedule
    EXPECT_EQ(da.duplicated, db.duplicated);
    EXPECT_EQ(da.reordered, db.reordered);
    EXPECT_EQ(da.chaos_salt, db.chaos_salt);
    // At most one effect per message.
    EXPECT_LE(static_cast<int>(da.corrupted) + static_cast<int>(da.duplicated) +
                  static_cast<int>(da.reordered),
              1);
    corrupted += da.corrupted;
    duplicated += da.duplicated;
    reordered += da.reordered;
    if (da.duplicated) {
      // The second copy burned airtime: more than one nominal charge.
      EXPECT_GT(da.cost, Link().one_way_cost(100));
    }
  }
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(reordered, 0u);
  EXPECT_EQ(a.stats().messages_corrupted, corrupted);
  EXPECT_EQ(a.stats().messages_duplicated, duplicated);
  EXPECT_EQ(a.stats().messages_reordered, reordered);

  // A different chaos seed shifts the schedule.
  FaultPlan other = plan;
  other.chaos_seed = 0xC4A06;
  Link c;
  c.set_fault_plan(other);
  a.set_fault_plan(plan);  // reseeds: replay from the start
  bool diverged = false;
  for (int i = 0; i < 300; ++i) {
    const auto da = a.try_one_way(100, 0);
    const auto dc = c.try_one_way(100, 0);
    if (da.corrupted != dc.corrupted || da.duplicated != dc.duplicated ||
        da.reordered != dc.reordered) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(LinkFaultTest, ChaosDrawsDoNotPerturbTheDropStream) {
  // The chaos stream is separate from the drop stream: arming chaos must not
  // change which messages the drop schedule loses.
  FaultPlan drops_only;
  drops_only.drop_probability = 0.3;
  drops_only.drop_seed = 7;
  FaultPlan both = drops_only;
  both.corrupt_probability = 0.5;
  both.duplicate_probability = 0.5;
  Link a, b;
  a.set_fault_plan(drops_only);
  b.set_fault_plan(both);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.try_one_way(100, 0).delivered, b.try_one_way(100, 0).delivered);
  }
}

TEST(LinkFaultTest, DefaultPlanIsInert) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  FaultPlan armed;
  armed.dead_after = sim_sec(1);
  EXPECT_TRUE(armed.enabled());
  FaultPlan lossy;
  lossy.drop_probability = 0.01;
  EXPECT_TRUE(lossy.enabled());
  FaultPlan reply_lossy;
  reply_lossy.reply_drop_probability = 0.01;
  EXPECT_TRUE(reply_lossy.enabled());
  FaultPlan periodic;
  periodic.outage_period = sim_ms(10);
  EXPECT_TRUE(periodic.enabled());
  FaultPlan chaotic;
  chaotic.corrupt_probability = 0.01;
  EXPECT_TRUE(chaotic.enabled());
}

TEST(LinkFaultTest, PeriodicOutagePhaseEdgeIsAlwaysUpBeforeFirstDown) {
  // The repeating schedule exists only from outage_phase onward: any instant
  // before the first down-edge is up, however large the phase. The modulo
  // arithmetic must never be evaluated for a negative offset — with a phase
  // beyond every queried time, nothing may go down.
  Link link;
  FaultPlan plan;
  plan.outage_phase = sim_sec(3600);
  plan.outage_period = sim_ms(10);
  plan.outage_duration = sim_ms(10);  // duration == period: down forever after
  link.set_fault_plan(plan);
  EXPECT_FALSE(link.is_down(0));
  EXPECT_FALSE(link.is_down(sim_ms(5)));
  EXPECT_FALSE(link.is_down(sim_sec(3600) - 1));
  EXPECT_TRUE(link.is_down(sim_sec(3600)));  // the first down-edge itself
  EXPECT_TRUE(link.is_down(sim_sec(7200)));
}

TEST(LinkFaultTest, PeriodicOutageComposesWithDeathWindow) {
  // The flap schedule and the [dead_after, revive_at) death window OR
  // together: down whenever either says down. Death does not pause or
  // re-anchor the flap phase — after revival the flap picks up exactly where
  // the wall clock says it should be, not where it left off.
  Link link;
  FaultPlan plan;
  plan.outage_phase = sim_ms(2);
  plan.outage_period = sim_ms(10);
  plan.outage_duration = sim_ms(3);  // down [2,5), [12,15), [22,25), ...
  plan.dead_after = sim_ms(13);
  plan.revive_at = sim_ms(21);  // death spans parts of two flap periods
  link.set_fault_plan(plan);
  EXPECT_FALSE(link.is_down(sim_ms(1)));   // before everything
  EXPECT_TRUE(link.is_down(sim_ms(3)));    // flap only
  EXPECT_FALSE(link.is_down(sim_ms(8)));   // flap up, death not started
  EXPECT_TRUE(link.is_down(sim_ms(12)));   // flap down (death also starts at 13)
  EXPECT_TRUE(link.is_down(sim_ms(16)));   // flap up but dead
  EXPECT_TRUE(link.is_down(sim_ms(20)));   // still dead
  EXPECT_FALSE(link.is_down(sim_ms(21)));  // revived, flap up ([22,25) next)
  EXPECT_TRUE(link.is_down(sim_ms(22)));   // flap phase unshifted by the death
  EXPECT_FALSE(link.is_down(sim_ms(25)));
}

TEST(LinkFaultTest, MakeFlapPlanComposesSchedule) {
  // make_flap_plan(first_down, down_for, up_for): down at
  // [first_down + k*(down+up), first_down + k*(down+up) + down).
  FaultPlan base;
  base.drop_probability = 0.25;
  base.drop_seed = 42;
  const FaultPlan plan =
      make_flap_plan(sim_ms(7), sim_ms(4), sim_ms(6), base);
  EXPECT_EQ(plan.outage_phase, sim_ms(7));
  EXPECT_EQ(plan.outage_duration, sim_ms(4));
  EXPECT_EQ(plan.outage_period, sim_ms(10));
  // The base plan's other faults ride along untouched.
  EXPECT_DOUBLE_EQ(plan.drop_probability, 0.25);
  EXPECT_EQ(plan.drop_seed, 42u);

  Link link;
  link.set_fault_plan(plan);
  for (int k = 0; k < 4; ++k) {
    const SimTime down = sim_ms(7) + k * sim_ms(10);
    EXPECT_FALSE(link.is_down(down - 1)) << k;
    EXPECT_TRUE(link.is_down(down)) << k;
    EXPECT_TRUE(link.is_down(down + sim_ms(4) - 1)) << k;
    EXPECT_FALSE(link.is_down(down + sim_ms(4))) << k;
  }
}

}  // namespace
}  // namespace aide::netsim
