// Shared helpers for the MiniVM test suites: a small class library with
// plain data classes, managed methods, statics, and native (pinned /
// stateless) methods.
#pragma once

#include <memory>

#include "vm/klass.hpp"
#include "vm/vm.hpp"

namespace aide::test {

inline const vm::Value& arg(std::span<const vm::Value> args, std::size_t i) {
  static const vm::Value nil;
  return i < args.size() ? args[i] : nil;
}

// Registers:
//   Pair    — fields a, b
//   Counter — field n; inc(), get(), addMany(k) (k nested self-calls)
//   Calc    — static managed add(a,b); static slot "memory"
//   Device  — stateful native beep() (pinned class); field beeps
//   Util    — stateless static native twice(x)
//   Holder  — field item
inline std::shared_ptr<vm::ClassRegistry> make_test_registry() {
  auto reg = std::make_shared<vm::ClassRegistry>();
  using vm::ClassBuilder;
  using vm::ObjectRef;
  using vm::Value;
  using vm::Vm;

  reg->register_class(ClassBuilder("Pair").field("a").field("b").build());

  reg->register_class(
      ClassBuilder("Counter")
          .field("n")
          .method("inc",
                  [](Vm& ctx, ObjectRef self, auto) -> Value {
                    const Value n = ctx.get_field(self, FieldId{0});
                    const std::int64_t v = n.is_int() ? n.as_int() : 0;
                    ctx.put_field(self, FieldId{0}, Value{v + 1});
                    return Value{v + 1};
                  })
          .method("get",
                  [](Vm& ctx, ObjectRef self, auto) -> Value {
                    const Value n = ctx.get_field(self, FieldId{0});
                    return n.is_int() ? n : Value{0};
                  })
          .method("addMany",
                  [](Vm& ctx, ObjectRef self, auto args) -> Value {
                    const std::int64_t k = arg(args, 0).as_int();
                    if (k <= 0) return ctx.call(self, "get");
                    ctx.call(self, "inc");
                    return ctx.call(self, "addMany", {Value{k - 1}});
                  })
          .method("busy",
                  [](Vm& ctx, ObjectRef self, auto args) -> Value {
                    ctx.work(sim_us(arg(args, 0).as_int()));
                    (void)self;
                    return Value{};
                  })
          .build());

  reg->register_class(
      ClassBuilder("Calc")
          .static_slot("memory")
          .static_method("add",
                         [](Vm&, ObjectRef, auto args) -> Value {
                           return Value{arg(args, 0).as_int() +
                                        arg(args, 1).as_int()};
                         })
          .static_method("recall",
                         [](Vm& ctx, ObjectRef, auto) -> Value {
                           return ctx.get_static("Calc", "memory");
                         })
          .static_method("store",
                         [](Vm& ctx, ObjectRef, auto args) -> Value {
                           const ClassId cls = ctx.find_class("Calc");
                           ctx.put_static(cls, 0, arg(args, 0));
                           return Value{};
                         })
          .build());

  reg->register_class(
      ClassBuilder("Device")
          .field("beeps")
          .native_method("beep",
                         [](Vm& ctx, ObjectRef self, auto) -> Value {
                           const Value n = ctx.get_field(self, FieldId{0});
                           const std::int64_t v = n.is_int() ? n.as_int() : 0;
                           ctx.put_field(self, FieldId{0}, Value{v + 1});
                           return Value{v + 1};
                         })
          .build());

  reg->register_class(
      ClassBuilder("Util")
          .native_method("twice",
                         [](Vm&, ObjectRef, auto args) -> Value {
                           return Value{arg(args, 0).as_int() * 2};
                         },
                         /*stateless=*/true, /*is_static=*/true)
          .build());

  reg->register_class(ClassBuilder("Holder").field("item").build());
  return reg;
}

}  // namespace aide::test
