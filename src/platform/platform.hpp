// The AIDE distributed platform (the paper's primary contribution).
//
// A Platform pairs a resource-constrained client VM with a surrogate VM over
// a simulated wireless link and wires up the three modules of Figure 4:
//
//   Monitor   — ExecutionMonitor + ResourceMonitor attached to both VMs,
//   Partition — modified-MINCUT candidate evaluation against the configured
//               policy when a low-memory trigger fires (or on demand),
//   Remote    — rpc::Endpoint pair providing transparent remote invocations,
//               data access, reference mapping and distributed GC.
//
// Offloading is adaptive and transparent: the application executes through
// the client VM's ordinary context API; when the trigger policy fires (N
// successive low-memory GC reports) or an allocation would fail outright, the
// platform partitions the execution graph and migrates the selected
// components' objects to the surrogate. Execution then transparently follows
// the objects.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/effects.hpp"
#include "common/simclock.hpp"
#include "monitor/monitor.hpp"
#include "monitor/resource_monitor.hpp"
#include "netsim/link.hpp"
#include "partition/partitioner.hpp"
#include "platform/surrogate_registry.hpp"
#include "rpc/endpoint.hpp"
#include "vm/vm.hpp"

namespace aide::platform {

struct Enhancements {
  // Execute stateless native methods where invoked (paper 5.2, "Native").
  bool stateless_natives_local = false;
  // Place large primitive int arrays at object granularity ("Array").
  bool arrays_as_objects = false;
  std::int64_t min_array_bytes = 4096;
};

// Idle-period failure detection: when the client endpoint has been quiet for
// `idle_after` (checked on client GC ticks, the platform's natural timer), a
// ping() probes the surrogate so a dead peer is detected before the next
// application RPC stalls on it. 0 disables heartbeats — the default, which
// keeps armed-but-inert fault plans bit-identical to fault-free runs.
struct HeartbeatPolicy {
  SimDuration idle_after = 0;
};

// Surrogate re-admission: after handle_peer_failure the platform keeps
// probing the link (on client GC ticks, rate-limited by probe_interval); when
// a probe gets through it reconnects the endpoint pair under a fresh
// migration epoch, re-runs the partitioning policy and re-offloads. Off by
// default: PR 1's permanent-degradation semantics remain the baseline.
struct ReadmissionPolicy {
  bool enabled = false;
  SimDuration probe_interval = sim_ms(250);
  // Payload of one probe message (charged to the link when it delivers).
  std::uint64_t probe_bytes = 64;
  std::size_t max_readmissions = 4;
};

// Disconnected operation: when the client endpoint's partition detector
// distinguishes a sustained partition from transient loss, the platform
// enters an explicit Disconnected mode instead of tearing the offload down —
// it hoards replicas of the surrogate-resident working set into the client
// heap, executes everything locally while journaling intended remote
// mutations into a coalescing redo log, probes the link, and reconciles the
// log against the revived surrogate exactly-once before resuming partitioned
// execution. Off by default: PR 1's teardown semantics remain the baseline.
struct DisconnectPolicy {
  bool enabled = false;
  // Partition-detector thresholds (see rpc::PartitionPolicy).
  std::uint32_t consecutive_timeouts = 3;
  SimDuration silence_after = sim_ms(60);
  // Reconnect probing while disconnected, on client GC ticks (the platform's
  // deterministic timer), rate-limited like readmission probing.
  SimDuration probe_interval = sim_ms(250);
  std::uint64_t probe_bytes = 64;
  std::size_t max_reconciles = 16;
  // Proactive hoard on a degrading link: while connected and offloaded, if
  // the Jacobson-estimated RTT exceeds this threshold the platform recalls
  // the prefetch-eligible working set (StaticHints: encapsulated-writes
  // classes) over the still-live link, so an eventual partition strands less
  // state. 0 disables the proactive path.
  SimDuration degrade_rtt = 0;
  // Allocation-gravity credit (cut-weight units per byte, scaled by the
  // platform's edge_weight.bytes_factor) that post-reconcile offload
  // decisions grant to components of the working tree the program used or
  // rebuilt while disconnected (harvested from the redo-log watch set at
  // reconcile). The MINCUT benefit model alone picks the cheapest-to-cut
  // sliver and strands the rebuilt tree on the client (JavaNote pays +174%
  // for it); the credit makes the rebuilt tree the preferred candidate.
  // The seed persists for the connected era — the sites keep allocating
  // after a short outage — and resets at the next disconnection. 0
  // restores the unseeded re-offload.
  double reoffload_gravity_credit = 1.0;
};

struct PlatformConfig {
  std::int64_t client_heap = std::int64_t{6} << 20;   // paper: 6 MB Java heap
  std::int64_t surrogate_heap = std::int64_t{64} << 20;
  // Client GC cadence: frequent cycles near exhaustion give the resource
  // monitor its "frequent memory usage updates" (paper 5.1).
  std::int64_t client_gc_alloc_count_threshold = 1024;
  std::int64_t client_gc_alloc_bytes_divisor = 32;
  double surrogate_speedup = 3.5;                     // paper-measured ratio
  netsim::LinkParams link = netsim::LinkParams::wavelan();

  // Deterministic link-fault schedule; an inert plan (the default) keeps the
  // platform bit-identical to the fault-free model.
  netsim::FaultPlan fault_plan;
  // RPC retry-with-backoff bounds, charged against virtual time.
  rpc::RetryPolicy retry;
  // Batched, pipelined transport (on by default): write-behind coalescing
  // into multi-op frames plus read-ahead object snapshots seeded with the
  // MINCUT partition groups of each offload. Application-transparent — only
  // frame counts and virtual-time latency change.
  rpc::BatchPolicy batching;
  // Idle-period heartbeat probing (off by default).
  HeartbeatPolicy heartbeat;
  // Probe-and-reconnect after a surrogate failure (off by default).
  ReadmissionPolicy readmission;
  // Disconnected operation: hoard / journal / reconcile (off by default).
  DisconnectPolicy disconnect;
  // Recovery-channel cost model for pulling state back from a dead
  // surrogate: a flat re-handshake latency plus the reclaimed bytes over the
  // recovery bandwidth.
  SimDuration recovery_latency = sim_ms(200);
  double recovery_bandwidth_bps = 11e6;

  monitor::TriggerPolicy trigger;                     // paper: <5% free, x3
  // Minimum client-heap fraction an acceptable partitioning must free
  // (paper: at least 20%).
  double min_free_fraction = 0.20;
  partition::Objective objective = partition::Objective::free_memory;
  double min_improvement = 0.0;  // speed_up objective margin

  Enhancements enhancements;

  // Run the static partition-safety analyzer (aidelint) over the registry at
  // startup: construction throws analysis::AnalysisError on ERROR-severity
  // findings and logs WARN findings.
  bool static_analysis = true;
  // Run the interprocedural effect verifier (aideverify) over the registry
  // at startup: infers per-method summaries from the declared effect IR and
  // audits every hand-declared annotation against them; declared-metadata
  // drift refuses startup exactly like the static_analysis gate. When every
  // registered method carries IR (100% coverage) the resulting
  // BatchSafetyOracle is installed into both endpoints — a partially
  // annotated registry still verifies, but proves nothing the transport
  // could use, so nothing is installed.
  bool effect_verify = true;
  // Feed the analyzer's static hints into the partitioner so the execution
  // graph is pre-contracted before MINCUT. Off by default: the purely
  // dynamic pipeline stays bit-identical to the paper model.
  bool use_static_hints = false;
  // Cross-check every runtime migration decision against the static verdict
  // (defense in depth): offloading a pin root — or, with hints enabled, any
  // never-migrate class — raises std::logic_error.
  bool assert_static_verdict = true;

  // React to triggers automatically; otherwise only offload_now() offloads.
  bool auto_offload = true;
  // The paper's prototype "performs a single offloading from a client device
  // to a single surrogate server".
  std::size_t max_offloads = 1;

  graph::EdgeWeightFn edge_weight;
};

struct OffloadReport {
  partition::PartitionDecision decision;
  std::size_t objects_migrated = 0;
  std::uint64_t bytes_migrated = 0;
  SimTime at = 0;
  SimTime completed_at = 0;
  std::int64_t client_heap_used_before = 0;
  std::int64_t client_heap_used_after = 0;
};

// One surrogate failure handled by the graceful-degradation path.
struct FailureReport {
  SimTime at = 0;
  std::size_t objects_reclaimed = 0;
  std::uint64_t bytes_reclaimed = 0;
};

// One successful re-admission of a recovered surrogate.
struct ReadmissionReport {
  SimTime at = 0;
  std::size_t ordinal = 0;        // 1 for the first re-admission, ...
  std::size_t probes_sent = 0;    // probes since the failure it recovers
  bool reoffloaded = false;       // the immediate re-partitioning migrated
};

// One disconnected-operation episode: entered on partition detection, left
// (resumed == true) when a reconcile both applied and acked over a live link.
struct DisconnectReport {
  SimTime at = 0;                    // partition detected, mode entered
  std::size_t objects_hoarded = 0;   // replicas pulled into the client heap
  std::uint64_t bytes_hoarded = 0;
  std::size_t reconciles = 0;        // redo logs applied on the peer
  std::size_t entries_replayed = 0;  // coalesced entries those logs carried
  bool resumed = false;              // back to connected partitioned execution
  SimTime resumed_at = 0;
};

// One proactive recall: prefetch-eligible state pulled back over a live but
// degrading link (DisconnectPolicy::degrade_rtt).
struct RecallReport {
  SimTime at = 0;
  std::size_t objects = 0;
  std::uint64_t bytes = 0;
};

class Platform : private vm::VmHooks {
 public:
  Platform(std::shared_ptr<const vm::ClassRegistry> registry,
           PlatformConfig config = {});
  ~Platform() override;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // Convenience: builds a config from a registry-selected surrogate.
  static PlatformConfig config_for(const SurrogateInfo& surrogate,
                                   PlatformConfig base = {});

  [[nodiscard]] vm::Vm& client() noexcept { return *client_; }
  [[nodiscard]] vm::Vm& surrogate() noexcept { return *surrogate_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] netsim::Link& link() noexcept { return link_; }
  [[nodiscard]] monitor::ExecutionMonitor& exec_monitor() noexcept {
    return exec_monitor_;
  }
  [[nodiscard]] monitor::ResourceMonitor& resource_monitor() noexcept {
    return resource_monitor_;
  }
  [[nodiscard]] rpc::Endpoint& client_endpoint() noexcept {
    return *client_ep_;
  }
  [[nodiscard]] rpc::Endpoint& surrogate_endpoint() noexcept {
    return *surrogate_ep_;
  }
  [[nodiscard]] const PlatformConfig& config() const noexcept {
    return config_;
  }
  // The startup static-analysis report (empty when static_analysis is off).
  [[nodiscard]] const std::optional<analysis::AnalysisReport>&
  analysis_report() const noexcept {
    return analysis_;
  }
  // The startup effect-verify report (empty when effect_verify is off).
  [[nodiscard]] const std::optional<analysis::VerifyReport>& verify_report()
      const noexcept {
    return verify_;
  }
  // The batch-safety oracle serving both endpoints; null unless
  // effect_verify ran over a registry with 100% effect-IR coverage.
  [[nodiscard]] const analysis::BatchSafety* batch_safety() const noexcept {
    return batch_safety_.has_value() ? &*batch_safety_ : nullptr;
  }

  [[nodiscard]] const std::vector<OffloadReport>& offloads() const noexcept {
    return offloads_;
  }
  [[nodiscard]] bool offloaded() const noexcept { return !offloads_.empty(); }

  [[nodiscard]] const std::vector<FailureReport>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] bool surrogate_dead() const noexcept {
    return surrogate_dead_;
  }

  [[nodiscard]] const std::vector<ReadmissionReport>& readmissions()
      const noexcept {
    return readmissions_;
  }

  // --- disconnected operation ----------------------------------------------

  enum class Mode : std::uint8_t { connected, disconnected };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool disconnected() const noexcept {
    return mode_ == Mode::disconnected;
  }
  [[nodiscard]] const std::vector<DisconnectReport>& disconnects()
      const noexcept {
    return disconnects_;
  }
  [[nodiscard]] const std::vector<RecallReport>& recalls() const noexcept {
    return recalls_;
  }
  // The live redo log (test/bench visibility into coalescing behavior).
  [[nodiscard]] const vm::DisconnectLog& disconnect_log() const noexcept {
    return disconnect_log_;
  }

  // Registers the registry entry this platform's surrogate was selected
  // from, so a failure can be reported back for future selections.
  void attach_surrogate_registry(SurrogateRegistry* registry,
                                 NodeId surrogate_id) noexcept {
    surrogate_registry_ = registry;
    registered_surrogate_ = surrogate_id;
  }

  // Graceful degradation: severs the endpoint pair, reclaims every
  // surviving surrogate-resident object back into the client heap (charging
  // the recovery channel), suppresses further offload triggers and marks
  // the surrogate dead in the attached registry. Idempotent; returns true
  // once the client owns all surviving state.
  bool handle_peer_failure();

  // Evaluates the partitioning policy now; migrates and returns a report if a
  // beneficial offloading exists. `min_free_override` tightens/loosens the
  // memory constraint for forced (allocation-failure) offloads.
  std::optional<OffloadReport> offload_now(
      std::optional<std::int64_t> min_free_override = std::nullopt);

  // Total simulated time elapsed.
  [[nodiscard]] SimDuration elapsed() const noexcept { return clock_.now(); }

 private:
  // VmHooks: the platform watches client GC reports for the trigger (and,
  // with the respective policies armed, for heartbeat and re-admission
  // probing — GC cadence is the platform's deterministic timer).
  void on_gc(NodeId vm, const vm::GcReport& report) override;
  // Disconnected-mode reconcile probing cannot depend on GC cadence alone: a
  // workload that stops allocating (hot loops over hoarded arrays) would
  // starve the probe loop and never notice the link returning. Invocation
  // exit is the densest safe dispatch point; the probe interval gates cost.
  void on_invoke(const vm::InvokeEvent& ev) override;
  void on_access(const vm::AccessEvent& ev) override;
  // Shared probe/heartbeat dispatch behind the three event hooks above.
  void link_maintenance(NodeId vm);

  // Idle-period liveness probe; a failed ping runs handle_peer_failure.
  void maybe_heartbeat();
  // Probe the link after a failure; reconnect + re-offload on recovery.
  void maybe_readmit();
  void readmit();
  // Disconnected-mode transitions. enter_disconnected_mode hoards replicas
  // and installs the redo log; maybe_reconcile probes the link while
  // disconnected; reconcile replays the log and resumes on success;
  // maybe_proactive_recall pulls eligible state back over a degrading link.
  bool enter_disconnected_mode();
  void maybe_reconcile();
  void reconcile();
  void maybe_proactive_recall();
  // Pushes redo-log counter deltas into the client endpoint's stats.
  void sync_partition_stats();
  // max_offloads covers the normal policy; each re-admission is entitled to
  // one more migration on top of it.
  [[nodiscard]] std::size_t offload_budget() const noexcept {
    return config_.max_offloads + readmissions_.size();
  }

  bool low_memory_rescue(vm::Vm& vm);
  [[nodiscard]] partition::PartitionRequest make_request(
      std::optional<std::int64_t> min_free_override) const;
  void collect_reoffload_gravity();

  PlatformConfig config_;
  SimClock clock_;
  netsim::Link link_;
  std::shared_ptr<const vm::ClassRegistry> registry_;
  std::optional<analysis::AnalysisReport> analysis_;
  std::optional<analysis::VerifyReport> verify_;
  // Declared before the endpoints: they hold a non-owning pointer to it.
  std::optional<analysis::BatchSafety> batch_safety_;

  std::unique_ptr<vm::Vm> client_;
  std::unique_ptr<vm::Vm> surrogate_;
  std::unique_ptr<rpc::Endpoint> client_ep_;
  std::unique_ptr<rpc::Endpoint> surrogate_ep_;

  monitor::ExecutionMonitor exec_monitor_;
  monitor::ResourceMonitor resource_monitor_;

  std::vector<OffloadReport> offloads_;
  std::vector<FailureReport> failures_;
  std::vector<ReadmissionReport> readmissions_;
  SimTime last_probe_at_ = 0;
  std::size_t probes_since_failure_ = 0;
  bool offloading_in_progress_ = false;
  bool surrogate_dead_ = false;
  // Disconnected-operation state. `mode_` is deliberately separate from
  // surrogate_dead_: a dead surrogate has no state worth reconciling (it was
  // pulled back), while a disconnected one keeps its originals as the replay
  // target. The hoarded ids are the replicas to drop at resume; the synced_*
  // cursors track which log counters already reached EndpointStats.
  Mode mode_ = Mode::connected;
  vm::DisconnectLog disconnect_log_;
  std::vector<ObjectId> hoarded_ids_;
  // Components of the working tree rebuilt while disconnected, harvested
  // from the redo log's live values just before they ship; seeds the
  // post-reconcile re-offload with allocation gravity, then clears.
  std::unordered_set<graph::ComponentKey> reoffload_gravity_;
  // Admission threshold of the most recent successful offload, replayed by
  // the post-reconcile re-offload so resume restores the same placement
  // policy that was in effect when the partition hit.
  std::optional<std::int64_t> last_offload_min_free_;
  std::vector<DisconnectReport> disconnects_;
  std::vector<RecallReport> recalls_;
  SimTime last_reconcile_probe_at_ = 0;
  std::size_t reconcile_attempts_ = 0;
  bool disconnect_dispatch_ = false;  // reentrancy guard for on_invoke
  SimTime last_recall_at_ = 0;
  std::uint64_t synced_journaled_ = 0;
  std::uint64_t synced_coalesced_ = 0;
  SurrogateRegistry* surrogate_registry_ = nullptr;
  NodeId registered_surrogate_ = NodeId::invalid();
};

}  // namespace aide::platform
