#include "platform/surrogate_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace aide::platform {

SurrogatePool::SurrogatePool(std::shared_ptr<const vm::ClassRegistry> registry,
                             PoolConfig config)
    : config_(std::move(config)) {
  if (config_.members.empty()) {
    throw std::invalid_argument("SurrogatePool: need at least one member");
  }
  members_.reserve(config_.members.size());
  for (const ServerConfig& cfg : config_.members) {
    members_.push_back(
        std::make_unique<SurrogateServer>(registry, cfg, clock_));
  }
  alive_.assign(members_.size(), true);
  alive_n_ = members_.size();
}

double SurrogatePool::placement_score(std::size_t i) const {
  if (i >= members_.size() || !alive_[i]) {
    return std::numeric_limits<double>::infinity();
  }
  const SurrogateServer& m = *members_[i];
  const ServerConfig& cfg = config_.members[i];
  if (m.session_count() >= cfg.max_sessions) {
    return std::numeric_limits<double>::infinity();
  }

  // CPU term: a faster surrogate clears the same turn in less virtual time.
  const double cpu = 1.0 / std::max(cfg.surrogate_speedup, 1e-9);

  // Link term: mean smoothed RTT (seconds) over the member's live sessions'
  // client endpoints — the per-session Jacobson estimators are the pool's
  // only live view of each link. Before any sample (or with no sessions)
  // the configured link's null RTT stands in, so a fresh pool ranks members
  // by their provisioned links.
  const ServerStats load = m.stats();
  const double srtt_ns = m.mean_session_srtt();
  const double link_s =
      srtt_ns > 0.0 ? srtt_ns * 1e-9 : sim_to_seconds(cfg.link.null_rtt);

  // Load term: admitted share of the session cap plus the offloaded-bytes
  // share of the budget cap (when one is configured).
  double load_term =
      static_cast<double>(load.live_sessions) /
      static_cast<double>(std::max<std::size_t>(cfg.max_sessions, 1));
  if (cfg.budget.max_offloaded_bytes != 0 && load.live_sessions > 0) {
    load_term += static_cast<double>(load.offloaded_bytes) /
                 (static_cast<double>(cfg.budget.max_offloaded_bytes) *
                  static_cast<double>(load.live_sessions));
  }

  return config_.w_cpu * cpu + config_.w_link * link_s +
         config_.w_load * load_term;
}

std::size_t SurrogatePool::best_member() const {
  std::size_t best = members_.size();
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const double s = placement_score(i);
    // Strict less-than: ties stay with the lowest index.
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

Session* SurrogatePool::open_session() {
  const std::size_t i = best_member();
  if (i == members_.size()) {
    stats_.admission_rejections += 1;
    return nullptr;
  }
  const SessionId id{next_id_++};
  Session* s = members_[i]->open_session(id);
  if (s == nullptr) {
    stats_.admission_rejections += 1;
    return nullptr;
  }
  member_of_.emplace(id.value(), i);
  stats_.placements += 1;
  return s;
}

std::size_t SurrogatePool::member_of(SessionId id) const {
  const auto it = member_of_.find(id.value());
  return it == member_of_.end() ? members_.size() : it->second;
}

Session* SurrogatePool::find_session(SessionId id) noexcept {
  const auto it = member_of_.find(id.value());
  if (it == member_of_.end()) return nullptr;
  return members_[it->second]->find_session(id);
}

void SurrogatePool::close_session(SessionId id) {
  const auto it = member_of_.find(id.value());
  if (it == member_of_.end()) return;
  members_[it->second]->close_session(id);
  member_of_.erase(it);
}

std::size_t SurrogatePool::session_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : members_) n += m->session_count();
  return n;
}

std::vector<Replacement> SurrogatePool::kill_surrogate(std::size_t i) {
  std::vector<Replacement> moved;
  if (i >= members_.size() || !alive_[i]) return moved;
  alive_[i] = false;
  alive_n_ -= 1;
  stats_.deaths += 1;

  // Collect the dead member's sessions in ascending id order (member_of_ is
  // id-sorted), then re-admit each on the best surviving peer. Re-placement
  // is re-admission: a fresh session with a fresh pool-unique id whose
  // driver slot carries over, never a fallback to the client while any peer
  // remains.
  std::vector<std::uint32_t> victims;
  for (const auto& [id, m] : member_of_) {
    if (m == i) victims.push_back(id);
  }
  for (const std::uint32_t old_raw : victims) {
    const SessionId old_id{old_raw};
    Session* old_s = members_[i]->find_session(old_id);
    const std::uint64_t carried = old_s != nullptr ? old_s->driver_state : 0;
    members_[i]->close_session(old_id);
    member_of_.erase(old_raw);

    Replacement r;
    r.old_id = old_id;
    r.from = i;
    r.to = members_.size();
    const std::size_t peer = best_member();
    if (peer != members_.size()) {
      const SessionId new_id{next_id_++};
      Session* fresh = members_[peer]->open_session(new_id);
      if (fresh != nullptr) {
        fresh->driver_state = carried;
        member_of_.emplace(new_id.value(), peer);
        r.new_id = new_id;
        r.to = peer;
        stats_.replacements += 1;
      }
    }
    moved.push_back(r);
  }
  return moved;
}

std::size_t SurrogatePool::run_rounds(std::size_t max_rounds,
                                      const SurrogateServer::TurnFn& turn) {
  std::size_t rounds = 0;
  while (rounds < max_rounds && session_count() > 0) {
    rounds += 1;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (!alive_[i] || members_[i]->session_count() == 0) continue;
      members_[i]->run_rounds(1, turn);
    }
  }
  return rounds;
}

ServerStats SurrogatePool::aggregate_server_stats() const {
  ServerStats sum;
  for (const auto& m : members_) sum += m->stats();
  return sum;
}

}  // namespace aide::platform
