// Surrogate pool: k SurrogateServers behind one admission front door.
//
// One SurrogateServer multiplexes sessions on ONE surrogate; the fleet bench
// shows that wall — sessions/sec flat while queueing climbs past 99% at
// N=256. The pool is the throughput fix: k servers share one virtual clock
// (turns still serialize on a single timeline, so every run is exactly
// reproducible), and a deterministic placement policy decides which member
// admits each new session by scoring every live member on
//
//   * CPU-speed ratio      — a faster surrogate clears turns sooner,
//   * link cost            — the mean smoothed RTT of the member's live
//                            sessions (per-session EndpointStats feed the
//                            Jacobson estimator), falling back to the
//                            configured link's null RTT before any sample,
//   * current load         — admitted-session share of max_sessions plus
//                            the member's offloaded-bytes share of budget.
//
// Lower score wins; ties break to the lowest member index, so placement is
// a pure function of the pool's observable state. On surrogate death the
// dead member's sessions are re-placed onto the next-best *surviving* peer
// (never back to the client while a peer remains): re-placement is
// re-admission — a fresh session (new id, empty heaps) whose driver slot is
// carried over so the script can rebuild and re-offload, exactly the
// recovery contract the single-platform surrogate-death path has.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "platform/surrogate_server.hpp"

namespace aide::platform {

struct PoolConfig {
  // One ServerConfig per pool member (member i's CPU ratio is
  // members[i].surrogate_speedup and its client link members[i].link).
  // Empty is invalid; a single entry is the single-surrogate server.
  std::vector<ServerConfig> members;

  // Placement score term weights. Score =
  //   w_cpu  * (1 / surrogate_speedup)
  // + w_link * mean-session-srtt-seconds (configured null RTT when unprimed)
  // + w_load * (live/max_sessions + offloaded-bytes share of budget cap).
  double w_cpu = 1.0;
  double w_link = 1.0;
  double w_load = 1.0;
};

// Pool-level accounting. Same flat-uint64 layout contract as ServerStats.
struct PoolStats {
  std::uint64_t placements = 0;            // admissions routed by the policy
  std::uint64_t replacements = 0;          // sessions moved off a dead member
  std::uint64_t admission_rejections = 0;  // every live member refused
  std::uint64_t deaths = 0;                // kill_surrogate calls

  PoolStats& operator+=(const PoolStats& o) noexcept {
    placements += o.placements;
    replacements += o.replacements;
    admission_rejections += o.admission_rejections;
    deaths += o.deaths;
    return *this;
  }
};

// One session moved off a dead surrogate: `old_id` closed on member `from`,
// re-admitted as `new_id` on member `to` (driver_state carried over).
struct Replacement {
  SessionId old_id{0};
  SessionId new_id{0};
  std::size_t from = 0;
  std::size_t to = 0;
};

class SurrogatePool {
 public:
  SurrogatePool(std::shared_ptr<const vm::ClassRegistry> registry,
                PoolConfig config);

  SurrogatePool(const SurrogatePool&) = delete;
  SurrogatePool& operator=(const SurrogatePool&) = delete;

  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] std::size_t alive_count() const noexcept { return alive_n_; }
  [[nodiscard]] bool alive(std::size_t i) const noexcept { return alive_[i]; }
  [[nodiscard]] SurrogateServer& member(std::size_t i) noexcept {
    return *members_[i];
  }
  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }

  // The deterministic placement score of member `i` (lower is better);
  // infinity when the member is dead or full. Exposed so tests can assert
  // the policy's arithmetic directly.
  [[nodiscard]] double placement_score(std::size_t i) const;
  // The member the policy would choose right now; size() when none can
  // admit.
  [[nodiscard]] std::size_t best_member() const;

  // Admission front door: scores every member and admits on the best.
  // Returns nullptr (counting a pool admission rejection) only when every
  // live member is full or no member is alive. Session ids are minted
  // pool-globally, so ids — and therefore node/object-id spaces — stay
  // disjoint across members.
  Session* open_session();
  // Member currently serving `id`; size() when unknown.
  [[nodiscard]] std::size_t member_of(SessionId id) const;
  [[nodiscard]] Session* find_session(SessionId id) noexcept;
  void close_session(SessionId id);
  [[nodiscard]] std::size_t session_count() const noexcept;

  // Surrogate death: member `i` stops serving; each of its sessions is
  // re-admitted on the best surviving peer (next-best placement, never a
  // local fallback while any peer remains), in ascending session-id order
  // so the re-placement schedule is deterministic. Returns the old->new
  // session mapping; sessions that found no peer with a free slot are
  // reported with `to == size()` and simply closed.
  std::vector<Replacement> kill_surrogate(std::size_t i);

  // Deterministic pool scheduling: one pool round runs one server round on
  // every live member, in ascending member index, all on the shared clock.
  // Returns the number of pool rounds executed (stops early when no member
  // has a live session).
  std::size_t run_rounds(std::size_t max_rounds,
                         const SurrogateServer::TurnFn& turn);

  // Member counters summed via ServerStats::operator+= (the completeness
  // test pins that every field participates).
  [[nodiscard]] ServerStats aggregate_server_stats() const;

 private:
  PoolConfig config_;
  SimClock clock_;
  std::vector<std::unique_ptr<SurrogateServer>> members_;
  std::vector<bool> alive_;
  std::size_t alive_n_ = 0;
  // Sorted so every id-indexed walk (kill_surrogate) is in ascending id
  // order regardless of admission interleaving.
  std::map<std::uint32_t, std::size_t> member_of_;
  std::uint32_t next_id_ = 0;
  PoolStats stats_;
};

}  // namespace aide::platform
