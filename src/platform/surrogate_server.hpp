// Multi-session surrogate server.
//
// The paper's prototype pairs exactly one client with one surrogate; every
// scale story stops there. A SurrogateServer turns the surrogate side into a
// daemon that serves many concurrent client sessions on one shared virtual
// clock:
//
//   shared-immutable  — one ClassRegistry (interned symbol tables, call-site
//                       epochs, effect summaries) plus the aidelint /
//                       aideverify reports and the BatchSafety oracle derived
//                       from it, all computed once at server startup and
//                       referenced read-only by every session. Opening a
//                       session pays zero class-metadata cost.
//   per-session       — everything mutable: the session's client and
//                       surrogate VMs (each with its own slab heap), its
//                       endpoint pair (refmap tables under a session-unique
//                       handle namespace, epoch/seq fence state, reply
//                       cache), and its own link with independent fault and
//                       jitter streams. Sessions cannot observe each other:
//                       a leaked cross-session handle is rejected at the
//                       refmap boundary and one session's epoch bumps or
//                       aborts never fence a neighbor's frames.
//   admission/budget  — max_sessions caps concurrent sessions (open_session
//                       refuses beyond it), and each session carries an
//                       offloaded-bytes budget (offload refuses migrations
//                       that would exceed it) plus an op-rate budget (ops per
//                       scheduling turn; the turn driver yields when it is
//                       exhausted).
//   scheduling        — deterministic round-robin turns: each round visits
//                       every live session in ascending session-id order and
//                       runs its turn function to the next yield point. All
//                       sessions share the server's virtual clock, extending
//                       the paper's "the two VMs do not execute application
//                       code simultaneously" model to N+1 VMs: turns
//                       serialize in virtual time, so every run is exactly
//                       reproducible and the dispatch path allocates nothing
//                       in steady state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/effects.hpp"
#include "common/simclock.hpp"
#include "netsim/link.hpp"
#include "rpc/endpoint.hpp"
#include "vm/vm.hpp"

namespace aide::platform {

// Per-session resource budgets. Zero means unlimited.
struct SessionBudget {
  // Total bytes a session may hold offloaded on the surrogate; an offload
  // that would exceed it is refused (the session keeps running client-local).
  std::uint64_t max_offloaded_bytes = 0;
  // Logical remote operations one session may issue per scheduling turn; the
  // turn driver checks charge_ops() and yields once the allowance is spent.
  std::uint32_t max_ops_per_turn = 0;
};

struct ServerConfig {
  // Admission control: concurrent-session cap.
  std::size_t max_sessions = 64;
  // Per-session heap capacities (client device heap, surrogate-side slab).
  std::int64_t client_heap = std::int64_t{6} << 20;
  std::int64_t session_heap = std::int64_t{64} << 20;
  double surrogate_speedup = 3.5;
  netsim::LinkParams link = netsim::LinkParams::wavelan();
  rpc::RetryPolicy retry;
  rpc::BatchPolicy batching;
  SessionBudget budget;
  // Startup gates, identical semantics to PlatformConfig: run once over the
  // shared registry, never per session.
  bool static_analysis = true;
  bool effect_verify = true;
};

enum class TurnOutcome : std::uint8_t {
  yielded,   // turn finished at a yield point; schedule the session again
  finished,  // session script complete; the server closes the session
};

// One admitted client session: an isolated client/surrogate VM pair wired
// through its own endpoint pair and link, sharing only the registry, the
// analysis artifacts and the server clock.
class Session {
 public:
  Session(SessionId id, std::shared_ptr<const vm::ClassRegistry> registry,
          const ServerConfig& cfg, SimClock& clock,
          const analysis::BatchSafety* oracle);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] SessionId id() const noexcept { return id_; }
  [[nodiscard]] vm::Vm& client() noexcept { return *client_; }
  [[nodiscard]] vm::Vm& surrogate() noexcept { return *surrogate_; }
  [[nodiscard]] rpc::Endpoint& client_endpoint() noexcept {
    return *client_ep_;
  }
  [[nodiscard]] rpc::Endpoint& surrogate_endpoint() noexcept {
    return *surrogate_ep_;
  }
  [[nodiscard]] netsim::Link& link() noexcept { return link_; }

  // Budget-checked offload of client objects to this session's surrogate
  // heap. Refuses (returns false, nothing migrates, budget_refusals ticks)
  // when the batch would push the session past max_offloaded_bytes.
  bool offload(std::span<const ObjectId> ids);
  [[nodiscard]] std::uint64_t offloaded_bytes() const noexcept {
    return offloaded_bytes_;
  }
  [[nodiscard]] std::uint64_t budget_refusals() const noexcept {
    return budget_refusals_;
  }

  // Op-rate budget: charges `n` logical remote ops against this turn's
  // allowance. Returns false — and counts a throttle — once the allowance
  // would be exceeded; the driver must yield and retry next turn.
  bool charge_ops(std::uint32_t n = 1) noexcept {
    if (budget_.max_ops_per_turn != 0 &&
        ops_this_turn_ + n > budget_.max_ops_per_turn) {
      throttled_ += 1;
      return false;
    }
    ops_this_turn_ += n;
    return true;
  }
  [[nodiscard]] std::uint32_t ops_this_turn() const noexcept {
    return ops_this_turn_;
  }
  [[nodiscard]] std::uint64_t throttles() const noexcept { return throttled_; }
  [[nodiscard]] std::uint64_t turns_taken() const noexcept { return turns_; }

  // Virtual time this session's turns have consumed (its own service time,
  // excluding the rounds where neighbors held the clock). The fleet bench's
  // per-session overhead gate compares this across fleet sizes.
  [[nodiscard]] SimDuration service_time() const noexcept {
    return service_time_;
  }

  // Opaque driver slot: the turn function may park per-session script state
  // here (e.g. an iteration cursor) instead of allocating side tables.
  std::uint64_t driver_state = 0;

 private:
  friend class SurrogateServer;

  void begin_turn() noexcept {
    ops_this_turn_ = 0;
    turns_ += 1;
  }

  SessionId id_;
  SessionBudget budget_;
  netsim::Link link_;
  std::unique_ptr<vm::Vm> client_;
  std::unique_ptr<vm::Vm> surrogate_;
  std::unique_ptr<rpc::Endpoint> client_ep_;
  std::unique_ptr<rpc::Endpoint> surrogate_ep_;
  std::uint64_t offloaded_bytes_ = 0;
  std::uint64_t budget_refusals_ = 0;
  std::uint32_t ops_this_turn_ = 0;
  std::uint64_t throttled_ = 0;
  std::uint64_t turns_ = 0;
  SimDuration service_time_ = 0;
  bool finished_ = false;  // marked by run_rounds, closed at round end
};

// Aggregate server accounting. Transport counters are kept namespaced per
// session (each session owns its endpoints); aggregate() sums them on demand,
// so a single admitted session's aggregate is byte-identical to that
// session's own endpoint stats.
//
// Layout contract (same as rpc::EndpointStats): every field is a uint64_t
// counter so the struct is byte-orderable as a flat array — operator+= must
// cover every field, which the pool's aggregation and the bit_cast
// completeness test both rely on. The last four fields are load gauges
// snapshotted over the live sessions at stats() time; a pool's placement
// policy reads them as the member's current load.
struct ServerStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t admission_rejections = 0;
  std::uint64_t turns = 0;
  std::uint64_t rounds = 0;
  std::uint64_t live_sessions = 0;    // gauge: sessions currently admitted
  std::uint64_t offloaded_bytes = 0;  // gauge: sum over live sessions
  std::uint64_t budget_refusals = 0;  // gauge: sum over live sessions
  std::uint64_t throttles = 0;        // gauge: sum over live sessions

  ServerStats& operator+=(const ServerStats& o) noexcept {
    sessions_opened += o.sessions_opened;
    sessions_closed += o.sessions_closed;
    admission_rejections += o.admission_rejections;
    turns += o.turns;
    rounds += o.rounds;
    live_sessions += o.live_sessions;
    offloaded_bytes += o.offloaded_bytes;
    budget_refusals += o.budget_refusals;
    throttles += o.throttles;
    return *this;
  }
};

class SurrogateServer {
 public:
  // Runs the aidelint/aideverify gates once over the shared registry
  // (throwing analysis::AnalysisError on findings, exactly like Platform)
  // and derives the shared BatchSafety oracle when the registry carries
  // full effect-IR coverage.
  SurrogateServer(std::shared_ptr<const vm::ClassRegistry> registry,
                  ServerConfig config = {});
  // Pool form: the server runs on `shared_clock` (not owned, must outlive
  // the server) so every pool member serializes turns on one virtual
  // timeline.
  SurrogateServer(std::shared_ptr<const vm::ClassRegistry> registry,
                  ServerConfig config, SimClock& shared_clock);

  SurrogateServer(const SurrogateServer&) = delete;
  SurrogateServer& operator=(const SurrogateServer&) = delete;

  [[nodiscard]] SimClock& clock() noexcept { return *clock_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  // Counter fields plus load gauges snapshotted over the live sessions.
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const std::optional<analysis::AnalysisReport>&
  analysis_report() const noexcept {
    return analysis_;
  }
  [[nodiscard]] const std::optional<analysis::VerifyReport>& verify_report()
      const noexcept {
    return verify_;
  }
  [[nodiscard]] const analysis::BatchSafety* batch_safety() const noexcept {
    return batch_safety_.has_value() ? &*batch_safety_ : nullptr;
  }

  // Admission control: opens a new isolated session, or returns nullptr
  // (counting an admission rejection) when max_sessions are already live.
  // The returned pointer stays valid until close_session.
  Session* open_session();
  // Pool form: admits under an externally minted id so ids stay globally
  // unique (and node/object-id spaces disjoint) across pool members. `id`
  // must be at least this server's next unminted id; the internal mint
  // advances past it, preserving the ascending-id order of `order_`.
  Session* open_session(SessionId id);
  // Closes a session: severs its endpoint pair and releases its slot. The
  // freed slot is immediately available to a new admission.
  void close_session(SessionId id);

  [[nodiscard]] std::size_t session_count() const noexcept { return live_; }
  [[nodiscard]] Session* find_session(SessionId id) noexcept;

  // Deterministic round-robin scheduling: runs up to `max_rounds` rounds; in
  // each round every live session, in ascending session-id order, takes one
  // turn. A turn that returns TurnOutcome::finished closes its session at
  // the end of the round (so one round's visit order is never perturbed
  // mid-flight). Returns after max_rounds rounds or when no session remains.
  // The dispatch loop performs no allocations: turn state lives in the
  // sessions and the round order is the slot order itself.
  using TurnFn = std::function<TurnOutcome(Session&)>;
  std::size_t run_rounds(std::size_t max_rounds, const TurnFn& turn);

  // Per-session transport stats, summed across the given session's two
  // endpoints — the per-session namespace of the server's accounting.
  [[nodiscard]] static rpc::EndpointStats session_stats(Session& s) {
    rpc::EndpointStats sum = s.client_endpoint().stats();
    sum += s.surrogate_endpoint().stats();
    return sum;
  }
  // Aggregate transport stats over every live session.
  [[nodiscard]] rpc::EndpointStats aggregate_stats() const;

  // Mean smoothed transport RTT (virtual ns) over the live sessions' client
  // endpoints — the pool placement policy's live link-cost signal. 0.0
  // until any session's estimator is primed.
  [[nodiscard]] double mean_session_srtt() const;

 private:
  ServerConfig config_;
  SimClock own_clock_;
  SimClock* clock_ = &own_clock_;  // pool members point at the shared clock
  std::shared_ptr<const vm::ClassRegistry> registry_;
  std::optional<analysis::AnalysisReport> analysis_;
  std::optional<analysis::VerifyReport> verify_;
  std::optional<analysis::BatchSafety> batch_safety_;

  void do_close(std::size_t slot);

  // Slot table: closed sessions leave a null slot that the next admission
  // reuses; session ids are minted monotonically and never reused. `order_`
  // holds the live slots in admission order — ascending session id, since
  // ids are monotone — and is what the round-robin dispatch iterates.
  std::vector<std::unique_ptr<Session>> slots_;
  std::vector<std::size_t> order_;
  std::size_t live_ = 0;
  std::uint32_t next_session_ = 0;
  ServerStats stats_;
};

}  // namespace aide::platform
