#include "platform/surrogate_server.hpp"

#include <algorithm>
#include <string>

#include "common/log.hpp"

namespace aide::platform {

namespace {

// Session node ids start above the single-platform pair (client 1,
// surrogate 2). NodeId feeds the top 16 bits of every ObjectId the VM mints
// ((node << 48) | counter), so distinct nodes give every session a disjoint
// object-id space on top of the refmap handle namespaces.
constexpr std::uint32_t kNodeBase = 16;

NodeId client_node(SessionId id) noexcept {
  return NodeId{kNodeBase + 2 * id.value()};
}
NodeId surrogate_node(SessionId id) noexcept {
  return NodeId{kNodeBase + 2 * id.value() + 1};
}

}  // namespace

Session::Session(SessionId id,
                 std::shared_ptr<const vm::ClassRegistry> registry,
                 const ServerConfig& cfg, SimClock& clock,
                 const analysis::BatchSafety* oracle)
    : id_(id), budget_(cfg.budget), link_(cfg.link) {
  vm::VmConfig ccfg;
  ccfg.node = client_node(id);
  ccfg.name = "client#" + std::to_string(id.value());
  ccfg.is_client = true;
  ccfg.cpu_speed = 1.0;
  ccfg.heap_capacity = cfg.client_heap;
  client_ = std::make_unique<vm::Vm>(ccfg, registry, clock);

  vm::VmConfig scfg;
  scfg.node = surrogate_node(id);
  scfg.name = "surrogate#" + std::to_string(id.value());
  scfg.is_client = false;
  scfg.cpu_speed = cfg.surrogate_speedup;
  scfg.heap_capacity = cfg.session_heap;
  surrogate_ = std::make_unique<vm::Vm>(scfg, std::move(registry), clock);

  client_ep_ = std::make_unique<rpc::Endpoint>(*client_, link_);
  surrogate_ep_ = std::make_unique<rpc::Endpoint>(*surrogate_, link_);
  // Session-unique handle namespaces must be in place before the first
  // export, i.e. before any traffic.
  client_ep_->set_session(id);
  surrogate_ep_->set_session(id);
  rpc::Endpoint::connect(*client_ep_, *surrogate_ep_);

  client_ep_->set_retry_policy(cfg.retry);
  surrogate_ep_->set_retry_policy(cfg.retry);
  client_ep_->set_batch_policy(cfg.batching);
  surrogate_ep_->set_batch_policy(cfg.batching);
  if (oracle != nullptr) {
    // The oracle is immutable and derived from the shared registry: one
    // instance serves every session's endpoints.
    client_ep_->set_batch_safety(oracle);
    surrogate_ep_->set_batch_safety(oracle);
  }
}

bool Session::offload(std::span<const ObjectId> ids) {
  // Price the batch before anything moves so a refusal has no side effects.
  std::uint64_t batch_bytes = 0;
  for (const ObjectId id : ids) {
    if (const vm::Object* o = client_->find_object(id); o != nullptr) {
      batch_bytes += static_cast<std::uint64_t>(o->size_bytes());
    }
  }
  if (budget_.max_offloaded_bytes != 0 &&
      offloaded_bytes_ + batch_bytes > budget_.max_offloaded_bytes) {
    budget_refusals_ += 1;
    return false;
  }
  client_ep_->migrate_objects(ids);
  offloaded_bytes_ += batch_bytes;
  return true;
}

SurrogateServer::SurrogateServer(
    std::shared_ptr<const vm::ClassRegistry> registry, ServerConfig config,
    SimClock& shared_clock)
    : SurrogateServer(std::move(registry), config) {
  clock_ = &shared_clock;
}

SurrogateServer::SurrogateServer(
    std::shared_ptr<const vm::ClassRegistry> registry, ServerConfig config)
    : config_(config), registry_(std::move(registry)) {
  // The startup gates run once, against the one registry every session
  // shares; admitting a session never re-analyzes anything.
  if (config_.static_analysis) {
    analysis_ = analysis::analyze(*registry_);
    for (const auto& d : analysis_->diagnostics) {
      if (d.severity == analysis::Severity::warning) {
        AIDE_LOG_WARN("aidelint", d.format());
      }
    }
    if (!analysis_->ok()) throw analysis::AnalysisError(*analysis_);
  }
  if (config_.effect_verify) {
    verify_ = analysis::verify(*registry_);
    for (const auto& d : verify_->diagnostics) {
      if (d.severity == analysis::Severity::warning) {
        AIDE_LOG_WARN("aideverify", d.format());
      }
    }
    if (verify_->count(analysis::Severity::error) > 0) {
      auto merged = verify_->base;
      merged.diagnostics = verify_->diagnostics;
      throw analysis::AnalysisError(merged);
    }
    if (verify_->methods_total > 0 &&
        verify_->methods_with_ir == verify_->methods_total) {
      batch_safety_.emplace(*verify_);
    }
  }
  slots_.reserve(config_.max_sessions);
  order_.reserve(config_.max_sessions);
}

Session* SurrogateServer::open_session() {
  return open_session(SessionId{next_session_});
}

Session* SurrogateServer::open_session(SessionId id) {
  if (live_ >= config_.max_sessions) {
    stats_.admission_rejections += 1;
    return nullptr;
  }
  // Externally minted ids (pool admission) must not reuse or reorder: the
  // round-robin invariant is that `order_` stays ascending by session id.
  if (id.value() < next_session_) return nullptr;
  // Reuse the lowest closed slot; grow the table otherwise.
  std::size_t slot = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == nullptr) {
      slot = i;
      break;
    }
  }
  if (slot == slots_.size()) slots_.emplace_back();

  next_session_ = id.value() + 1;
  slots_[slot] = std::make_unique<Session>(
      id, registry_, config_, *clock_,
      batch_safety_.has_value() ? &*batch_safety_ : nullptr);
  order_.push_back(slot);
  live_ += 1;
  stats_.sessions_opened += 1;
  return slots_[slot].get();
}

ServerStats SurrogateServer::stats() const {
  ServerStats s = stats_;
  s.live_sessions = live_;
  for (const std::size_t slot : order_) {
    s.offloaded_bytes += slots_[slot]->offloaded_bytes();
    s.budget_refusals += slots_[slot]->budget_refusals();
    s.throttles += slots_[slot]->throttles();
  }
  return s;
}

Session* SurrogateServer::find_session(SessionId id) noexcept {
  for (const std::size_t slot : order_) {
    if (slots_[slot]->id() == id) return slots_[slot].get();
  }
  return nullptr;
}

void SurrogateServer::do_close(std::size_t slot) {
  slots_[slot]->client_endpoint().disconnect();
  slots_[slot].reset();
  live_ -= 1;
  stats_.sessions_closed += 1;
}

void SurrogateServer::close_session(SessionId id) {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const std::size_t slot = order_[i];
    if (slots_[slot]->id() == id) {
      do_close(slot);
      order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t SurrogateServer::run_rounds(std::size_t max_rounds,
                                        const TurnFn& turn) {
  std::size_t rounds = 0;
  while (rounds < max_rounds && live_ > 0) {
    rounds += 1;
    stats_.rounds += 1;
    bool any_finished = false;
    // Visit order is `order_` — ascending session id. Sessions the turn
    // function admits mid-round join from the next round (the round length
    // is pinned here); finished sessions close at the round boundary below,
    // so one round's visit order is never perturbed in flight.
    const std::size_t round_len = order_.size();
    for (std::size_t i = 0; i < round_len; ++i) {
      Session& s = *slots_[order_[i]];
      if (s.finished_) continue;
      s.begin_turn();
      stats_.turns += 1;
      const SimTime t0 = clock_->now();
      const TurnOutcome out = turn(s);
      s.service_time_ += clock_->now() - t0;
      if (out == TurnOutcome::finished) {
        s.finished_ = true;
        any_finished = true;
      }
    }
    if (any_finished) {
      for (std::size_t i = 0; i < order_.size();) {
        const std::size_t slot = order_[i];
        if (slots_[slot]->finished_) {
          do_close(slot);
          order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
  }
  return rounds;
}

double SurrogateServer::mean_session_srtt() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const std::size_t slot : order_) {
    const rpc::RttEstimator& est =
        slots_[slot]->client_ep_->rtt_estimator();
    if (est.primed) {
      sum += est.srtt;
      n += 1;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

rpc::EndpointStats SurrogateServer::aggregate_stats() const {
  rpc::EndpointStats sum;
  for (const std::size_t slot : order_) {
    sum += slots_[slot]->client_ep_->stats();
    sum += slots_[slot]->surrogate_ep_->stats();
  }
  return sum;
}

}  // namespace aide::platform
