#include "platform/platform.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace aide::platform {

namespace {
constexpr NodeId kClientNode{1};
constexpr NodeId kSurrogateNode{2};
}  // namespace

Platform::Platform(std::shared_ptr<const vm::ClassRegistry> registry,
                   PlatformConfig config)
    : config_(config),
      link_(config.link),
      registry_(std::move(registry)),
      exec_monitor_(registry_,
                    monitor::MonitorConfig{monitor::GranularityPolicy{
                        config.enhancements.arrays_as_objects,
                        config.enhancements.min_array_bytes,
                        {registry_->int_array_class()}}}),
      resource_monitor_(kClientNode, config.trigger) {
  if (config_.static_analysis) {
    // Static partition-safety gate: refuse to run a program whose registry
    // has ERROR-severity findings; surface the warnings either way.
    analysis_ = analysis::analyze(*registry_);
    for (const auto& d : analysis_->diagnostics) {
      if (d.severity == analysis::Severity::warning) {
        AIDE_LOG_WARN("aidelint", d.format());
      }
    }
    if (!analysis_->ok()) throw analysis::AnalysisError(*analysis_);
  }
  if (config_.effect_verify) {
    // Effect-inference gate: infer whole-program summaries from the method
    // IR and audit every hand-declared annotation against them. Drift is a
    // programming error — refuse startup exactly like the gate above.
    verify_ = analysis::verify(*registry_);
    for (const auto& d : verify_->diagnostics) {
      if (d.severity == analysis::Severity::warning) {
        AIDE_LOG_WARN("aideverify", d.format());
      }
    }
    // Only verify-layer findings gate here; base lint errors belong to the
    // static_analysis gate above (and stay waivable independently of it).
    if (verify_->count(analysis::Severity::error) > 0) {
      auto merged = verify_->base;
      merged.diagnostics = verify_->diagnostics;
      throw analysis::AnalysisError(merged);
    }
  }

  vm::VmConfig client_cfg;
  client_cfg.node = kClientNode;
  client_cfg.name = "client";
  client_cfg.is_client = true;
  client_cfg.cpu_speed = 1.0;
  client_cfg.heap_capacity = config_.client_heap;
  client_cfg.gc_alloc_count_threshold =
      config_.client_gc_alloc_count_threshold;
  client_cfg.gc_alloc_bytes_divisor = config_.client_gc_alloc_bytes_divisor;
  client_cfg.stateless_natives_local =
      config_.enhancements.stateless_natives_local;
  client_ = std::make_unique<vm::Vm>(client_cfg, registry_, clock_);

  vm::VmConfig surrogate_cfg;
  surrogate_cfg.node = kSurrogateNode;
  surrogate_cfg.name = "surrogate";
  surrogate_cfg.is_client = false;
  surrogate_cfg.cpu_speed = config_.surrogate_speedup;
  surrogate_cfg.heap_capacity = config_.surrogate_heap;
  surrogate_cfg.stateless_natives_local =
      config_.enhancements.stateless_natives_local;
  surrogate_ = std::make_unique<vm::Vm>(surrogate_cfg, registry_, clock_);

  client_ep_ = std::make_unique<rpc::Endpoint>(*client_, link_);
  surrogate_ep_ = std::make_unique<rpc::Endpoint>(*surrogate_, link_);
  rpc::Endpoint::connect(*client_ep_, *surrogate_ep_);

  link_.set_fault_plan(config_.fault_plan);
  client_ep_->set_retry_policy(config_.retry);
  surrogate_ep_->set_retry_policy(config_.retry);
  client_ep_->set_batch_policy(config_.batching);
  surrogate_ep_->set_batch_policy(config_.batching);
  if (verify_.has_value() && verify_->methods_total > 0 &&
      verify_->methods_with_ir == verify_->methods_total) {
    // Full IR coverage: the inferred conflict matrix bounds every deferred
    // store, so the transport may consult it. Anything less proves nothing
    // (⊤ summaries poison the matrix) and would only force early flushes.
    batch_safety_.emplace(*verify_);
    client_ep_->set_batch_safety(&*batch_safety_);
    surrogate_ep_->set_batch_safety(&*batch_safety_);
  }
  if (config_.fault_plan.enabled()) {
    // Exactly-once recovery needs the undo journal; fault-free runs keep it
    // off so they stay bit-identical to the unjournaled platform.
    client_->set_journal_enabled(true);
    surrogate_->set_journal_enabled(true);
  }
  if (config_.disconnect.enabled) {
    // Arm the partition detector. Passive — counters and timestamps only —
    // so arming it never perturbs a schedule; it only changes what
    // handle_peer_failure decides when an RPC is finally abandoned.
    rpc::PartitionPolicy pp;
    pp.enabled = true;
    pp.consecutive_timeouts = config_.disconnect.consecutive_timeouts;
    pp.silence_after = config_.disconnect.silence_after;
    client_ep_->set_partition_policy(pp);
    // The surrogate's endpoint carries call-backs and release traffic; a
    // partition first surfaces on whichever side happens to be mid-RPC, so
    // both detectors must be armed and handle_peer_failure consults both.
    surrogate_ep_->set_partition_policy(pp);
  }
  client_ep_->set_peer_failure_handler([this] { return handle_peer_failure(); });

  client_->add_hooks(&exec_monitor_);
  client_->add_hooks(&resource_monitor_);
  client_->add_hooks(this);
  surrogate_->add_hooks(&exec_monitor_);

  client_->set_low_memory_handler(
      [this](vm::Vm& vm) { return low_memory_rescue(vm); });
}

Platform::~Platform() {
  client_->remove_hooks(this);
  client_->remove_hooks(&resource_monitor_);
  client_->remove_hooks(&exec_monitor_);
  surrogate_->remove_hooks(&exec_monitor_);
}

PlatformConfig Platform::config_for(const SurrogateInfo& surrogate,
                                    PlatformConfig base) {
  base.surrogate_heap = surrogate.heap_capacity;
  base.surrogate_speedup = surrogate.cpu_speed;
  base.link = surrogate.link;
  return base;
}

void Platform::on_gc(NodeId vm, const vm::GcReport&) {
  if (vm != kClientNode || offloading_in_progress_) return;
  if (mode_ == Mode::disconnected) {
    sync_partition_stats();
    maybe_reconcile();
    return;
  }
  if (surrogate_dead_) {
    maybe_readmit();
    return;
  }
  maybe_heartbeat();  // may detect a dead/partitioned surrogate
  if (mode_ == Mode::disconnected || surrogate_dead_) return;
  maybe_proactive_recall();
  if (mode_ == Mode::disconnected || surrogate_dead_) return;
  if (!config_.auto_offload) return;
  if (offloads_.size() >= offload_budget()) return;
  if (resource_monitor_.triggered()) {
    resource_monitor_.consume_trigger();
    offload_now();
  }
}

void Platform::on_invoke(const vm::InvokeEvent& ev) {
  link_maintenance(ev.vm);
}

void Platform::on_access(const vm::AccessEvent& ev) {
  // A compute-heavy stretch can burn hundreds of simulated milliseconds
  // inside one method without a single invocation exit or GC; data accesses
  // are the only events dense enough to notice the link there.
  link_maintenance(ev.vm);
}

void Platform::link_maintenance(NodeId vm) {
  if (vm != kClientNode || offloading_in_progress_ || disconnect_dispatch_) {
    return;
  }
  disconnect_dispatch_ = true;
  if (mode_ == Mode::disconnected) {
    sync_partition_stats();
    maybe_reconcile();
  } else if (!surrogate_dead_) {
    // Quiet-window detection: a long local stretch with an idle link never
    // GCs either, so the heartbeat needs this dispatch point too. A no-op
    // unless the heartbeat policy is armed and the link has gone silent.
    maybe_heartbeat();
  }
  disconnect_dispatch_ = false;
}

void Platform::maybe_heartbeat() {
  if (config_.heartbeat.idle_after <= 0 || !offloaded() || surrogate_dead_) {
    return;
  }
  if (clock_.now() - client_ep_->last_contact() < config_.heartbeat.idle_after) {
    return;
  }
  if (!client_ep_->ping()) handle_peer_failure();
}

void Platform::maybe_readmit() {
  if (!config_.readmission.enabled ||
      readmissions_.size() >= config_.readmission.max_readmissions) {
    return;
  }
  if (last_probe_at_ != 0 &&
      clock_.now() - last_probe_at_ < config_.readmission.probe_interval) {
    return;
  }
  last_probe_at_ = clock_.now();
  probes_since_failure_ += 1;
  const auto probe = link_.try_one_way(config_.readmission.probe_bytes,
                                       clock_.now(), netsim::Leg::request);
  if (!probe.delivered) return;
  clock_.advance(probe.cost);
  readmit();
}

void Platform::readmit() {
  // The recovered surrogate starts from an empty heap (its state was pulled
  // back at failure time); reconnect the pair under a fresh migration epoch
  // so any frame from before the failure is fenced, re-arm the triggers, and
  // re-run the partitioning policy immediately — the memory pressure that
  // forced the original offload did not go away with the failure.
  rpc::Endpoint::connect(*client_ep_, *surrogate_ep_);
  client_ep_->advance_epoch();
  surrogate_dead_ = false;

  ReadmissionReport report;
  report.at = clock_.now();
  report.ordinal = readmissions_.size() + 1;
  report.probes_sent = probes_since_failure_;
  probes_since_failure_ = 0;
  readmissions_.push_back(report);

  resource_monitor_.note_peer_recovered();
  if (surrogate_registry_ != nullptr && registered_surrogate_.valid()) {
    surrogate_registry_->mark_alive(registered_surrogate_);
  }

  // Like low_memory_rescue: prefer the policy's own constraint, but restore
  // the pre-failure placement even when only a smaller win is available —
  // the device already proved it cannot run the workload comfortably alone.
  auto offload = offload_now();
  if (!offload.has_value()) {
    offload = offload_now(std::int64_t{1});
  }
  readmissions_.back().reoffloaded = offload.has_value();
  AIDE_LOG_INFO("platform", "surrogate re-admitted at ", report.at,
                "ns (probe #", report.probes_sent, "), re-offload ",
                offload.has_value() ? "succeeded" : "deferred");
}

bool Platform::low_memory_rescue(vm::Vm&) {
  if (offloading_in_progress_ || surrogate_dead_ ||
      mode_ == Mode::disconnected) {
    return false;
  }
  // Forced offload: free at least the configured fraction, but accept any
  // partitioning that frees something if the policy's constraint cannot be
  // met — failing the allocation is strictly worse.
  auto report = offload_now();
  if (!report.has_value()) {
    report = offload_now(std::int64_t{1});
  }
  return report.has_value();
}

partition::PartitionRequest Platform::make_request(
    std::optional<std::int64_t> min_free_override) const {
  partition::PartitionRequest req;
  req.objective = config_.objective;
  req.heap_capacity = config_.client_heap;
  req.min_free_bytes =
      min_free_override.value_or(static_cast<std::int64_t>(
          config_.min_free_fraction *
          static_cast<double>(config_.client_heap)));
  req.client_speed = 1.0;
  req.surrogate_speedup = config_.surrogate_speedup;
  req.min_improvement = config_.min_improvement;
  req.link = config_.link;
  const SimTime since = offloads_.empty() ? 0 : offloads_.back().at;
  req.history_duration = std::max<SimDuration>(clock_.now() - since, 1);
  req.weight = config_.edge_weight;
  if (!reoffload_gravity_.empty()) {
    req.reoffload_gravity = &reoffload_gravity_;
    req.gravity_credit_per_byte = config_.disconnect.reoffload_gravity_credit *
                                  config_.edge_weight.bytes_factor;
  }
  if (config_.use_static_hints) {
    // Prefer the verify-layer hints: a superset of the metadata-only ones
    // (same contraction fields, plus replay/prefetch facts the partitioner
    // ignores), so this changes nothing unless effect_verify found more.
    if (verify_.has_value()) {
      req.hints = &verify_->hints;
    } else if (analysis_.has_value()) {
      req.hints = &analysis_->hints;
    }
  }
  return req;
}

bool Platform::handle_peer_failure() {
  if (mode_ == Mode::disconnected) return true;
  if (surrogate_dead_) return true;
  // A sustained partition is not a dead surrogate: when the detector says
  // the link (not the peer) is gone, keep the surrogate's state where it is
  // and switch to disconnected execution against hoarded replicas instead of
  // tearing the offload down.
  if (config_.disconnect.enabled && (client_ep_->partition_suspected() ||
                                     surrogate_ep_->partition_suspected())) {
    return enter_disconnected_mode();
  }
  surrogate_dead_ = true;
  // Re-admission probing starts one probe_interval from now.
  last_probe_at_ = clock_.now();
  probes_since_failure_ = 0;

  FailureReport report;
  report.at = clock_.now();

  // Enumerate the surviving surrogate state before tearing anything down.
  std::vector<ObjectId> ids;
  surrogate_->heap().for_each(
      [&](const vm::Object& o) { ids.push_back(o.id); });
  std::sort(ids.begin(), ids.end());

  // Sever the pair first: release handlers become no-ops and no regular RPC
  // can charge the dead link while we reintegrate.
  client_ep_->disconnect();

  // Reintegration: adopt every surviving object into the client heap. Each
  // adoptee is pinned until the whole batch lands — a client GC forced by
  // ensure_capacity mid-loop cannot yet see the surrogate-side references
  // among them.
  std::uint64_t bytes = 0;
  for (const ObjectId id : ids) {
    auto obj = surrogate_->migrate_out(id);
    bytes += static_cast<std::uint64_t>(obj->size_bytes());
    client_->migrate_in(std::move(obj));
    client_->add_root(vm::ObjectRef{id});
  }
  for (const ObjectId id : ids) {
    client_->remove_root(vm::ObjectRef{id});
  }
  // Any write-behind ops still queued against the dead surrogate now target
  // reintegrated local objects; land them before the application resumes.
  client_ep_->flush_pending();
  report.objects_reclaimed = ids.size();
  report.bytes_reclaimed = bytes;

  // Charge the recovery channel: failure detection plus shipping the
  // reclaimed state back over whatever path survived.
  clock_.advance(config_.recovery_latency +
                 static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 /
                                          config_.recovery_bandwidth_bps *
                                          1e9));

  // There is nowhere left to offload to: stop raising triggers and tell the
  // registry not to hand this surrogate out again.
  resource_monitor_.note_peer_failure();
  if (surrogate_registry_ != nullptr && registered_surrogate_.valid()) {
    surrogate_registry_->mark_dead(registered_surrogate_);
  }

  failures_.push_back(report);
  AIDE_LOG_INFO("platform", "surrogate failed at ", report.at,
                "ns; reclaimed ", report.objects_reclaimed, " objects (",
                report.bytes_reclaimed / 1024, "KB), continuing local");
  return true;
}

std::optional<OffloadReport> Platform::offload_now(
    std::optional<std::int64_t> min_free_override) {
  if (offloading_in_progress_ || surrogate_dead_ ||
      mode_ == Mode::disconnected) {
    return std::nullopt;
  }
  offloading_in_progress_ = true;

  exec_monitor_.prune_dead_components();
  const auto req = make_request(min_free_override);
  const auto decision =
      partition::decide_partitioning(exec_monitor_.graph(), req);

  if (!decision.offload) {
    AIDE_LOG_INFO("platform", "no beneficial partitioning (",
                  decision.candidates_total, " candidates)");
    offloading_in_progress_ = false;
    return std::nullopt;
  }

  // Assertion mode: the dynamic decision must agree with the static verdict.
  // A pin root may never offload; with hints enabled the whole pinned
  // closure may not either. A violation is a partitioner bug, not a policy
  // outcome — fail loudly.
  if (config_.assert_static_verdict && analysis_.has_value()) {
    for (const auto& comp : decision.selected.offload) {
      const bool illegal =
          analysis_->is_pin_root(comp.cls) ||
          (config_.use_static_hints && analysis_->in_closure(comp.cls));
      if (illegal) {
        offloading_in_progress_ = false;
        throw std::logic_error(
            "static/dynamic verdict mismatch: partitioner selected pinned "
            "class '" +
            registry_->get(comp.cls).name + "' for offload");
      }
    }
  }

  // Gather the client-resident objects of every selected component. The
  // monitor's component mapping respects the granularity policy: an
  // object-granularity array moves alone; a class component moves all of its
  // (class-mapped) objects.
  std::vector<ObjectId> to_move;
  std::vector<std::vector<ObjectId>> groups;
  for (const auto& comp : decision.selected.offload) {
    std::vector<ObjectId> members;
    if (comp.is_object_granularity()) {
      if (client_->is_local(comp.object)) members.push_back(comp.object);
    } else {
      for (const ObjectId id : client_->local_objects_of_class(comp.cls)) {
        if (exec_monitor_.component_of(comp.cls, id) == comp) {
          members.push_back(id);
        }
      }
    }
    std::sort(members.begin(), members.end());
    to_move.insert(to_move.end(), members.begin(), members.end());
    // MINCUT put these objects in one component because they are accessed
    // together; that is exactly the read-ahead transport's prefetch unit.
    if (members.size() > 1) groups.push_back(std::move(members));
  }
  std::sort(to_move.begin(), to_move.end());

  OffloadReport report;
  report.decision = decision;
  report.at = clock_.now();
  report.client_heap_used_before = client_->heap().used();
  if (!to_move.empty()) {
    try {
      report.bytes_migrated = client_ep_->migrate_objects(to_move);
    } catch (const PeerUnavailable&) {
      // The surrogate died under the migration. migrate_objects already put
      // the batch wherever it authoritatively lives; reclaim it and carry on
      // fully local.
      offloading_in_progress_ = false;
      handle_peer_failure();
      return std::nullopt;
    }
  }
  report.objects_migrated = to_move.size();
  if (!to_move.empty()) {
    // Seed the client transport's read-ahead with the colocation groups this
    // decision just shipped: a remote get against one member prefetches the
    // neighbors it will be accessed with.
    client_ep_->set_prefetch_groups(std::move(groups));
  }
  report.completed_at = clock_.now();
  report.client_heap_used_after = client_->heap().used();

  AIDE_LOG_INFO("platform", "offloaded ", report.objects_migrated,
                " objects, ", report.bytes_migrated, " bytes, heap ",
                report.client_heap_used_before / 1024, "KB -> ",
                report.client_heap_used_after / 1024, "KB");

  offloads_.push_back(report);
  last_offload_min_free_ = min_free_override;
  offloading_in_progress_ = false;
  return report;
}

// --- disconnected operation ----------------------------------------------------

bool Platform::enter_disconnected_mode() {
  mode_ = Mode::disconnected;
  // Reconnect probing starts one probe_interval from now; the reconcile
  // budget is per-episode, so a flappy link gets a fresh allowance each time.
  last_reconcile_probe_at_ = clock_.now();
  reconcile_attempts_ = 0;
  // A fresh disconnection era: gravity harvested from the previous
  // reconcile no longer describes the working set this episode will build.
  reoffload_gravity_.clear();

  DisconnectReport report;
  report.at = clock_.now();

  // Enumerate the surrogate's surviving working set (sorted: determinism of
  // the hoard order, and thus of every downstream byte).
  std::vector<ObjectId> ids;
  surrogate_->heap().for_each(
      [&](const vm::Object& o) { ids.push_back(o.id); });
  std::sort(ids.begin(), ids.end());

  // Sever the pair: no regular RPC may charge the partitioned link, and the
  // release handlers become no-ops. Refs are preserved — unlike a surrogate
  // death, both heaps survive and reconcile needs them to keep resolving.
  client_ep_->detach_partitioned();

  // Hoard: adopt a *replica* (copy) of every surrogate-resident object into
  // the client heap, replacing its stub. Unlike handle_peer_failure the
  // surrogate keeps its originals — it is provably idle while partitioned
  // (the two VMs never execute simultaneously), and those originals are the
  // replay target at reconcile time. Each replica is pinned until the whole
  // batch lands so a client GC forced mid-loop cannot reclaim replicas only
  // referenced from surrogate-side state.
  std::uint64_t bytes = 0;
  for (const ObjectId id : ids) {
    const vm::Object* obj = surrogate_->find_object(id);
    bytes += static_cast<std::uint64_t>(obj->size_bytes());
    client_->migrate_in(std::make_unique<vm::Object>(*obj));
    client_->add_root(vm::ObjectRef{id});
  }
  for (const ObjectId id : ids) {
    client_->remove_root(vm::ObjectRef{id});
  }

  // Install the redo log watching exactly the replicas, BEFORE flushing the
  // write-behind queue: the queued stores now target local replicas and
  // their local application must be captured for replay like any other
  // disconnected-era mutation.
  disconnect_log_.clear_entries();
  disconnect_log_.watch(ids);
  hoarded_ids_ = std::move(ids);
  client_->set_redo_log(&disconnect_log_);
  client_ep_->flush_pending();

  // Charge the recovery channel for the hoard: partition detection plus
  // shipping the replicas over whatever path survived (the same cost model
  // as failure reintegration — hoarding is reintegration that keeps a copy).
  clock_.advance(config_.recovery_latency +
                 static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 /
                                          config_.recovery_bandwidth_bps *
                                          1e9));

  // No offload target while partitioned: stop raising triggers. The registry
  // is NOT told the surrogate died — it is expected back.
  resource_monitor_.note_peer_failure();
  client_ep_->note_disconnect_detected();

  report.objects_hoarded = hoarded_ids_.size();
  report.bytes_hoarded = bytes;
  disconnects_.push_back(report);
  AIDE_LOG_INFO("platform", "partition detected at ", report.at,
                "ns; hoarded ", report.objects_hoarded, " replicas (",
                report.bytes_hoarded / 1024, "KB), running disconnected");
  return true;
}

void Platform::sync_partition_stats() {
  client_ep_->note_partition_stats(
      disconnect_log_.ops_journaled() - synced_journaled_,
      disconnect_log_.ops_coalesced() - synced_coalesced_);
  synced_journaled_ = disconnect_log_.ops_journaled();
  synced_coalesced_ = disconnect_log_.ops_coalesced();
}

void Platform::maybe_reconcile() {
  if (reconcile_attempts_ >= config_.disconnect.max_reconciles) {
    return;
  }
  if (last_reconcile_probe_at_ != 0 &&
      clock_.now() - last_reconcile_probe_at_ <
          config_.disconnect.probe_interval) {
    return;
  }
  last_reconcile_probe_at_ = clock_.now();
  const auto probe = link_.try_one_way(config_.disconnect.probe_bytes,
                                       clock_.now(), netsim::Leg::request);
  if (!probe.delivered) return;
  clock_.advance(probe.cost);
  reconcile();
}

void Platform::reconcile() {
  reconcile_attempts_ += 1;
  sync_partition_stats();
  rpc::Endpoint::connect(*client_ep_, *surrogate_ep_);

  bool applied = false;
  try {
    applied = client_ep_->reconcile_log(disconnect_log_);
  } catch (const PeerUnavailable&) {
    // Unreachable with the log not applied: keep the log, keep the replicas,
    // retry on a later probe. Exactly-once holds because nothing landed.
    applied = false;
  } catch (const VmError&) {
    // The peer rejected or rolled back the replay (semantic failure). The
    // serving side unwound atomically, so the log is still intact to retry.
    applied = false;
  }

  const auto& traces = client_ep_->reconciles();
  const bool acked = applied && !traces.empty() && traces.back().committed;
  if (applied) {
    // The mutations landed exactly once; they must never replay again. A
    // fresh log accumulates whatever the application writes from here on.
    disconnects_.back().reconciles += 1;
    disconnects_.back().entries_replayed += traces.back().entries;
    // Harvest allocation gravity while the log still holds its values: the
    // live field entries are the attach points the reconciled roots hold
    // into everything built while disconnected.
    collect_reoffload_gravity();
    disconnect_log_.clear_entries();
  }
  if (!acked) {
    // Either not applied (retry the same log later) or applied with the ack
    // lost (fresh log, still partitioned). Both stay disconnected, and the
    // refs stay: the next attempt reconciles with the same surviving heap.
    client_ep_->detach_partitioned();
    return;
  }

  // Applied and acked over a live link: resume partitioned execution. Drop
  // the replicas — the surrogate's replayed originals are authoritative
  // again — leaving stubs behind so remote access resolves as before.
  client_->set_redo_log(nullptr);
  for (const ObjectId id : hoarded_ids_) {
    if (client_->is_local(id)) {
      (void)client_->migrate_out(id);  // discard the replica, keep the stub
    }
  }
  hoarded_ids_.clear();
  disconnect_log_.reset();
  synced_journaled_ = 0;
  synced_coalesced_ = 0;
  mode_ = Mode::connected;
  resource_monitor_.note_peer_recovered();
  disconnects_.back().resumed = true;
  disconnects_.back().resumed_at = clock_.now();
  AIDE_LOG_INFO("platform", "reconciled ",
                disconnects_.back().entries_replayed,
                " redo entries; partitioned execution resumed at ",
                clock_.now(), "ns");

  // Everything the application allocated while away sits on the client, but
  // the remote working set it interleaves with went back with the replicas —
  // left split, the rest of the run ping-pongs across the link for state the
  // partitioner would colocate. Re-run the offload decision under the same
  // admission threshold that produced the pre-partition placement, seeded
  // with the harvested allocation gravity so the rebuilt tree outranks a
  // cheaper-to-cut sliver; a "no beneficial partitioning" verdict leaves
  // everything where it is. The gravity keys are allocation-site components,
  // so the seed stays live for trigger-driven evaluations after this one —
  // a short outage reconciles before the program has rebuilt much, and the
  // tree it keeps growing at those same sites still needs the pull. A new
  // disconnection starts a fresh era (enter_disconnected_mode clears).
  (void)offload_now(last_offload_min_free_);
}

void Platform::collect_reoffload_gravity() {
  if (config_.disconnect.reoffload_gravity_credit <= 0.0) return;
  // BFS over client-local references from the redo log's watch set: the
  // hoarded replicas (still client-local here — they drop only after the
  // ack) plus every live journaled value. Everything reachable belongs to
  // the working tree the disconnected program used or rebuilt — allocation-
  // heavy apps grow that tree under hoarded containers without journaling a
  // single surrogate write, so the hoard seeds are what find it — and that
  // tree is exactly what the post-reconcile re-offload should pull back
  // together.
  std::vector<ObjectId> stack(hoarded_ids_.begin(), hoarded_ids_.end());
  disconnect_log_.for_each_live_value([&](const vm::Value& v) {
    if (v.is_ref()) stack.push_back(v.as_ref().id);
  });
  std::unordered_set<ObjectId> seen;
  while (!stack.empty()) {
    const ObjectId id = stack.back();
    stack.pop_back();
    if (!seen.insert(id).second) continue;
    if (!client_->is_local(id)) continue;
    const vm::Object* o = client_->find_object(id);
    if (o == nullptr) continue;
    reoffload_gravity_.insert(exec_monitor_.component_of(o->cls, id));
    for (const vm::Value& f : o->fields) {
      if (f.is_ref()) stack.push_back(f.as_ref().id);
    }
  }
}

void Platform::maybe_proactive_recall() {
  const DisconnectPolicy& pol = config_.disconnect;
  if (!pol.enabled || pol.degrade_rtt <= 0 || !offloaded()) return;
  const rpc::RttEstimator& rtt = client_ep_->rtt_estimator();
  if (!rtt.primed ||
      static_cast<SimDuration>(rtt.srtt) <= pol.degrade_rtt) {
    return;
  }
  if (last_recall_at_ != 0 &&
      clock_.now() - last_recall_at_ < pol.probe_interval) {
    return;
  }
  last_recall_at_ = clock_.now();

  // Choose what to hoard with the static hints: prefetch-eligible classes
  // (encapsulated writes) are exactly the objects the client can keep
  // coherent locally, so they come home first while the link still works.
  const analysis::StaticHints* hints = nullptr;
  if (verify_.has_value()) {
    hints = &verify_->hints;
  } else if (analysis_.has_value()) {
    hints = &analysis_->hints;
  }
  if (hints == nullptr || hints->prefetch_eligible.empty()) return;

  std::vector<ObjectId> ids;
  surrogate_->heap().for_each([&](const vm::Object& o) {
    if (std::binary_search(hints->prefetch_eligible.begin(),
                           hints->prefetch_eligible.end(), o.cls)) {
      ids.push_back(o.id);
    }
  });
  std::sort(ids.begin(), ids.end());
  if (ids.empty()) return;

  try {
    // A real reverse migration over the live (if slow) link: two-phase,
    // epoch-fenced, rollback on death — the surrogate keeps nothing.
    const std::uint64_t bytes = surrogate_ep_->migrate_objects(ids);
    recalls_.push_back(RecallReport{clock_.now(), ids.size(), bytes});
    AIDE_LOG_INFO("platform", "degrading link (srtt ",
                  static_cast<SimDuration>(rtt.srtt), "ns): recalled ",
                  ids.size(), " objects (", bytes / 1024, "KB)");
  } catch (const PeerUnavailable&) {
    // The link died under the recall; migrate_objects already rolled the
    // batch to wherever it authoritatively lives. Let the normal failure
    // path (which may choose disconnected mode) take it from here.
    handle_peer_failure();
  }
}

}  // namespace aide::platform
