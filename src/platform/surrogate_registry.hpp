// Ad-hoc platform creation (paper section 2).
//
// "It should be possible to create and tear down the distributed platform
// between a client and a surrogate at run time. Clients [should] determine
// which surrogate(s) are the most appropriate based on factors such as
// latency of access and resource availability."
//
// Surrogates advertise themselves here; a client selects the best candidate
// for its requirements: sufficient free heap first, then lowest link latency,
// then highest CPU speed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "netsim/link.hpp"

namespace aide::platform {

struct SurrogateInfo {
  NodeId id;
  std::string name;
  double cpu_speed = 1.0;  // relative to the client
  std::int64_t heap_capacity = 0;
  netsim::LinkParams link;

  [[nodiscard]] SimDuration latency() const noexcept { return link.null_rtt; }
};

struct SurrogateRequirements {
  std::int64_t min_heap_bytes = 0;
  double min_cpu_speed = 0.0;
  SimDuration max_latency = sim_sec(3600);
};

class SurrogateRegistry {
 public:
  void advertise(SurrogateInfo info) {
    withdraw(info.id);
    // A fresh advertisement is proof of life: a previously-dead surrogate
    // that comes back rejoins the candidate pool.
    dead_.erase(info.id);
    surrogates_.push_back(std::move(info));
  }

  void withdraw(NodeId id) {
    surrogates_.erase(
        std::remove_if(surrogates_.begin(), surrogates_.end(),
                       [id](const SurrogateInfo& s) { return s.id == id; }),
        surrogates_.end());
  }

  // Records that a surrogate failed while in use. Its advertisement stays
  // (for post-mortem inspection) but select() skips it until it
  // re-advertises.
  void mark_dead(NodeId id) { dead_.insert(id); }

  // Re-admission: a surrogate that recovered becomes selectable again.
  void mark_alive(NodeId id) { dead_.erase(id); }

  [[nodiscard]] bool is_dead(NodeId id) const {
    return dead_.contains(id);
  }

  [[nodiscard]] std::size_t size() const noexcept { return surrogates_.size(); }
  [[nodiscard]] const std::vector<SurrogateInfo>& all() const noexcept {
    return surrogates_;
  }

  // Best surrogate meeting the requirements: lowest latency wins; CPU speed
  // breaks ties.
  [[nodiscard]] std::optional<SurrogateInfo> select(
      const SurrogateRequirements& req = {}) const {
    const SurrogateInfo* best = nullptr;
    for (const auto& s : surrogates_) {
      if (dead_.contains(s.id)) continue;
      if (s.heap_capacity < req.min_heap_bytes) continue;
      if (s.cpu_speed < req.min_cpu_speed) continue;
      if (s.latency() > req.max_latency) continue;
      if (best == nullptr || s.latency() < best->latency() ||
          (s.latency() == best->latency() && s.cpu_speed > best->cpu_speed)) {
        best = &s;
      }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }

 private:
  std::vector<SurrogateInfo> surrogates_;
  std::unordered_set<NodeId> dead_;
};

}  // namespace aide::platform
