#include "emul/emulator.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"

namespace aide::emul {

namespace {
constexpr NodeId kEmulatedClient{1};
}  // namespace

Emulator::Emulator(std::shared_ptr<const vm::ClassRegistry> registry,
                   EmulatorConfig config)
    : registry_(std::move(registry)), config_(config) {}

SimDuration Emulator::rpc_cost(std::uint64_t bytes) const {
  // Analytic probe: must never touch a live Link's stats or jitter stream.
  return netsim::estimate_rpc_cost(config_.link, bytes);
}

void Emulator::charge_service(SimDuration service, ServiceKind kind,
                              std::size_t part) {
  if (service_ == nullptr || service <= 0) return;
  result_.queue_time +=
      service_->acquire(current_time(), service, kind, part);
}

void Emulator::try_offload(SimTime at, EmulationResult& result) {
  monitor_->prune_dead_components();

  if (!config_.manual_offload_classes.empty()) {
    partition::PartitionDecision manual;
    manual.offload = true;
    for (const std::string& name : config_.manual_offload_classes) {
      const ClassId cls = registry_->find(name);
      for (const auto& [key, info] : monitor_->graph().nodes()) {
        if (key.cls == cls) manual.selected.offload.insert(key);
      }
    }
    std::uint64_t moved = 0;
    for (const auto& key : manual.selected.offload) {
      if (placement_of(key) == 0) {
        if (const auto* node = monitor_->graph().find_node(key)) {
          moved += static_cast<std::uint64_t>(
              std::max<std::int64_t>(node->mem_bytes, 0));
          manual.selected.offload_mem_bytes += node->mem_bytes;
        }
        placement_[key] = 1;
      }
    }
    if (config_.charge_migration) {
      const SimDuration cost = rpc_cost(moved);
      charge_service(cost, ServiceKind::migration);
      result.migration_time += cost;
    }
    OffloadSnapshot snap;
    snap.at = at;
    snap.decision = std::move(manual);
    snap.migrated_bytes = moved;
    snap.components = snap.decision.selected.offload.size();
    result.offloads.push_back(std::move(snap));
    return;
  }

  partition::PartitionRequest req;
  req.objective = config_.objective;
  req.heap_capacity = config_.heap_capacity;
  req.min_free_bytes = static_cast<std::int64_t>(
      config_.min_free_fraction * static_cast<double>(config_.heap_capacity));
  req.client_speed = 1.0;
  req.surrogate_speedup = config_.surrogate_speedup;
  req.min_improvement = config_.min_improvement;
  req.link = config_.link;
  req.history_duration = std::max<SimDuration>(at, 1);
  req.weight = config_.weight;
  req.charge_migration = config_.charge_migration;
  req.k = std::max<std::size_t>(config_.surrogate_parts, 1);

  const auto decision =
      partition::decide_partitioning(monitor_->graph(), req);
  if (!decision.offload) {
    result.declined.push_back(decision);
    return;
  }

  // Destination part (1-based placement value) for each selected key:
  // parts from the k-way split when present, else everything on part 1
  // (the single-surrogate path, byte-identical to the pre-pool emulator).
  const auto target_part = [&](const graph::ComponentKey& key) -> int {
    if (!decision.selected.offload.contains(key)) return 0;
    for (std::size_t p = 0; p < decision.parts.size(); ++p) {
      if (decision.parts[p].contains(key)) return static_cast<int>(p) + 1;
    }
    return 1;
  };

  // Apply the new placement; charge migration for every component that
  // changes side (repeated repartitioning may also pull components back).
  // With parts, each surrogate's batch ships separately and occupies only
  // that surrogate; the parts-free path keeps the original single batch.
  std::uint64_t moved_bytes = 0;
  std::map<std::size_t, std::uint64_t> moved_by_part;
  for (const auto& [key, info] : monitor_->graph().nodes()) {
    const int want = target_part(key);
    const int current = placement_of(key);
    if (want == current) continue;
    const auto bytes = static_cast<std::uint64_t>(
        std::max<std::int64_t>(info.mem_bytes, 0));
    moved_bytes += bytes;
    // The surrogate end of the move: the destination when offloading (or
    // re-balancing between parts), the source when returning to the client.
    const int surrogate_end = want != 0 ? want : current;
    moved_by_part[static_cast<std::size_t>(surrogate_end - 1)] += bytes;
    placement_[key] = want;
  }

  if (config_.charge_migration) {
    if (decision.parts.empty()) {
      const SimDuration cost = rpc_cost(moved_bytes);
      charge_service(cost, ServiceKind::migration);
      result.migration_time += cost;
    } else {
      for (const auto& [part, bytes] : moved_by_part) {
        const SimDuration cost = rpc_cost(bytes);
        charge_service(cost, ServiceKind::migration, part);
        result.migration_time += cost;
      }
    }
  }

  OffloadSnapshot snap;
  snap.at = at;
  snap.decision = decision;
  snap.migrated_bytes = moved_bytes;
  snap.components = decision.selected.offload.size();
  result.offloads.push_back(std::move(snap));
}

void Emulator::begin(const Trace& trace) {
  monitor::MonitorConfig mon_cfg;
  mon_cfg.granularity.arrays_as_objects = config_.arrays_as_objects;
  mon_cfg.granularity.min_array_bytes = config_.min_array_bytes;
  mon_cfg.granularity.object_granularity_classes = {
      registry_->int_array_class()};
  monitor_ = std::make_unique<monitor::ExecutionMonitor>(registry_, mon_cfg);
  resource_ = std::make_unique<monitor::ResourceMonitor>(kEmulatedClient,
                                                         config_.trigger);
  placement_.clear();
  live_bytes_ = 0;
  freed_since_gc_ = 0;
  alloc_since_gc_ = 0;

  trace_ = &trace;
  event_ix_ = 0;
  last_event_t_ = 0;
  result_ = EmulationResult{};
  result_.base_time = trace.duration();
  compute_raw_ = 0;
  compute_scaled_ = 0;
  gc_cycle_ = 0;
  eval_index_ = static_cast<std::size_t>(static_cast<double>(trace.size()) *
                                         config_.eval_at_fraction);
  fraction_evaluated_ = false;
}

void Emulator::replay_event(const TraceEvent& e) {
  last_event_t_ = e.t;
  switch (e.type) {
    case TraceEventType::alloc:
      monitor_->on_alloc(kEmulatedClient, e.obj_a, e.cls_a, e.bytes, e.t);
      live_bytes_ += e.bytes;
      alloc_since_gc_ += e.bytes;
      break;

    case TraceEventType::free_obj:
      monitor_->on_free(kEmulatedClient, e.obj_a, e.cls_a, e.bytes, e.t);
      live_bytes_ -= e.bytes;
      freed_since_gc_ += e.bytes;
      break;

    case TraceEventType::resize:
      monitor_->on_resize(kEmulatedClient, e.obj_a, e.cls_a, e.aux1);
      live_bytes_ += e.aux1;
      break;

    case TraceEventType::method_enter:
      break;

    case TraceEventType::method_exit: {
      monitor_->on_method_exit(kEmulatedClient, e.cls_a, e.obj_a, e.method,
                               e.bytes, e.t);
      const auto comp = monitor_->component_of(e.cls_a, e.obj_a);
      const int p = placement_of(comp);
      const bool on_surrogate = p >= 1;
      const double speed = on_surrogate ? config_.surrogate_speedup : 1.0;
      const auto scaled =
          static_cast<SimDuration>(static_cast<double>(e.bytes) / speed);
      compute_raw_ += e.bytes;
      compute_scaled_ += scaled;
      // Surrogate-placed self-time occupies that part's surrogate CPU.
      if (on_surrogate) {
        charge_service(scaled, ServiceKind::compute,
                       static_cast<std::size_t>(p - 1));
      }
      break;
    }

    case TraceEventType::invoke: {
      const bool is_native = (e.flags & kFlagNative) != 0;
      const bool is_static = (e.flags & kFlagStatic) != 0;
      const bool is_stateless = (e.flags & kFlagStateless) != 0;

      const auto from = monitor_->component_of(e.cls_a, e.obj_a);
      const int from_p = placement_of(from);
      int to_p;
      if (is_native) {
        // Natives execute on the client — unless stateless and the
        // "Native" enhancement is on, in which case they run where invoked.
        to_p = (is_stateless && config_.stateless_natives_local) ? from_p
                                                                 : 0;
      } else if (is_static) {
        // Managed statics run on the invoking VM.
        to_p = from_p;
      } else {
        to_p = placement_of(monitor_->component_of(e.cls_b, e.obj_b));
      }
      const bool remote = from_p != to_p;

      result_.total_invocations += 1;
      if (remote) {
        result_.remote_invocations += 1;
        if (is_native) result_.remote_native_invocations += 1;
        result_.remote_bytes += static_cast<std::uint64_t>(e.bytes);
        const SimDuration cost =
            rpc_cost(static_cast<std::uint64_t>(e.bytes));
        // The surrogate end executes the op: the callee's part, or the
        // caller's when the callee is the client.
        const int sp = to_p >= 1 ? to_p : from_p;
        charge_service(cost, ServiceKind::remote_op,
                       static_cast<std::size_t>(sp - 1));
        result_.comm_time += cost;
      }

      vm::InvokeEvent ev;
      ev.vm = kEmulatedClient;
      ev.caller_cls = e.cls_a;
      ev.caller_obj = e.obj_a;
      ev.callee_cls = e.cls_b;
      ev.callee_obj = e.obj_b;
      ev.method = e.method;
      ev.is_native = is_native;
      ev.is_static = is_static;
      ev.is_stateless = is_stateless;
      ev.remote = remote;
      ev.bytes = static_cast<std::uint64_t>(e.bytes);
      ev.t = e.t;
      monitor_->on_invoke(ev);
      break;
    }

    case TraceEventType::access: {
      const bool is_static = (e.flags & kFlagStatic) != 0;
      const auto from = monitor_->component_of(e.cls_a, e.obj_a);
      const int from_p = placement_of(from);
      // Static data lives on the client; object data follows placement.
      const int to_p =
          is_static ? 0
                    : placement_of(monitor_->component_of(e.cls_b, e.obj_b));
      const bool remote = from_p != to_p;

      result_.total_accesses += 1;
      if (remote) {
        result_.remote_accesses += 1;
        result_.remote_bytes += static_cast<std::uint64_t>(e.bytes);
        const SimDuration cost =
            rpc_cost(static_cast<std::uint64_t>(e.bytes));
        const int sp = to_p >= 1 ? to_p : from_p;
        charge_service(cost, ServiceKind::remote_op,
                       static_cast<std::size_t>(sp - 1));
        result_.comm_time += cost;
      }

      vm::AccessEvent ev;
      ev.vm = kEmulatedClient;
      ev.from_cls = e.cls_a;
      ev.from_obj = e.obj_a;
      ev.to_cls = e.cls_b;
      ev.to_obj = e.obj_b;
      ev.is_write = (e.flags & kFlagWrite) != 0;
      ev.is_static = is_static;
      ev.remote = remote;
      ev.bytes = static_cast<std::uint64_t>(e.bytes);
      ev.t = e.t;
      monitor_->on_access(ev);
      break;
    }

    case TraceEventType::gc: {
      // Emulated client heap: total live bytes minus what has been
      // offloaded to the surrogate.
      std::int64_t offloaded = 0;
      for (const auto& [key, p] : placement_) {
        if (p == 0) continue;
        if (const auto* node = monitor_->graph().find_node(key)) {
          offloaded += std::max<std::int64_t>(node->mem_bytes, 0);
        }
      }
      const std::int64_t client_live =
          std::max<std::int64_t>(live_bytes_ - offloaded, 0);
      result_.peak_client_live =
          std::max(result_.peak_client_live, client_live);

      vm::GcReport rep;
      rep.cycle = ++gc_cycle_;
      rep.used_before = client_live + freed_since_gc_;
      rep.used_after = client_live;
      rep.capacity = config_.heap_capacity;
      rep.freed = freed_since_gc_;
      freed_since_gc_ = 0;

      // GC-pressure model: near exhaustion, every consumed byte of
      // headroom costs another collection cycle over the live set.
      if (config_.gc_pressure_cost_ns_per_live_byte > 0.0) {
        const double headroom = std::max<double>(
            static_cast<double>(config_.heap_capacity - client_live),
            static_cast<double>(config_.heap_capacity) / 64.0);
        const double cycles =
            static_cast<double>(alloc_since_gc_) / headroom;
        result_.gc_pressure_time += static_cast<SimDuration>(
            cycles * static_cast<double>(client_live) *
            config_.gc_pressure_cost_ns_per_live_byte);
      }
      alloc_since_gc_ = 0;

      monitor_->on_gc(kEmulatedClient, rep);
      resource_->feed(rep);

      if (config_.trigger_mode == TriggerMode::memory_gc &&
          resource_->triggered() &&
          result_.offloads.size() < config_.max_offloads) {
        resource_->consume_trigger();
        try_offload(e.t, result_);
      }
      break;
    }
  }

  if (config_.trigger_mode == TriggerMode::trace_fraction &&
      !fraction_evaluated_ && event_ix_ >= eval_index_ &&
      result_.offloads.size() < config_.max_offloads) {
    fraction_evaluated_ = true;
    try_offload(e.t, result_);
  }
}

bool Emulator::step() {
  if (done()) return false;
  replay_event(trace_->events[event_ix_]);
  event_ix_ += 1;
  return true;
}

std::size_t Emulator::step(std::size_t n) {
  std::size_t taken = 0;
  while (taken < n && step()) taken += 1;
  return taken;
}

EmulationResult Emulator::finish() {
  // Unattributed trace time (driver-level work, GC outside frames) stays on
  // the client; attributed self-time is re-scaled by placement.
  result_.emulated_time = result_.base_time - compute_raw_ + compute_scaled_ +
                          result_.comm_time + result_.migration_time +
                          result_.gc_pressure_time + result_.queue_time;
  trace_ = nullptr;
  return std::move(result_);
}

EmulationResult Emulator::run(const Trace& trace) {
  begin(trace);
  while (step()) {
  }
  return finish();
}

}  // namespace aide::emul
