#include "emul/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aide::emul {

void Trace::save_csv(std::ostream& os) const {
  os << "type,flags,t,cls_a,cls_b,obj_a,obj_b,method,bytes,aux1,aux2\n";
  for (const auto& e : events) {
    os << static_cast<int>(e.type) << ',' << static_cast<int>(e.flags) << ','
       << e.t << ',' << e.cls_a.value() << ',' << e.cls_b.value() << ','
       << e.obj_a.value() << ',' << e.obj_b.value() << ','
       << e.method.value() << ',' << e.bytes << ',' << e.aux1 << ','
       << e.aux2 << '\n';
  }
}

Trace Trace::load_csv(std::istream& is) {
  Trace trace;
  std::string line;
  if (!std::getline(is, line)) return trace;  // header (or empty)
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceEvent e;
    std::uint64_t v = 0;
    char comma = 0;
    auto read_u64 = [&](std::uint64_t& out) {
      if (!(ls >> out)) throw std::runtime_error("trace csv: bad field");
      ls >> comma;
    };
    auto read_i64 = [&](std::int64_t& out) {
      if (!(ls >> out)) throw std::runtime_error("trace csv: bad field");
      ls >> comma;
    };
    read_u64(v);
    e.type = static_cast<TraceEventType>(v);
    read_u64(v);
    e.flags = static_cast<std::uint8_t>(v);
    read_i64(e.t);
    read_u64(v);
    e.cls_a = ClassId{static_cast<std::uint32_t>(v)};
    read_u64(v);
    e.cls_b = ClassId{static_cast<std::uint32_t>(v)};
    read_u64(v);
    e.obj_a = ObjectId{v};
    read_u64(v);
    e.obj_b = ObjectId{v};
    read_u64(v);
    e.method = MethodId{static_cast<std::uint32_t>(v)};
    read_i64(e.bytes);
    read_i64(e.aux1);
    read_i64(e.aux2);
    trace.events.push_back(e);
  }
  return trace;
}

}  // namespace aide::emul
