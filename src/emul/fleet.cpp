#include "emul/fleet.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

namespace aide::emul {

namespace {

// The shared pool's busy-until windows: pool_size members, each with
// surrogate_concurrency hardware contexts. Sessions acquire in the order the
// fleet scheduler replays their ops (min-virtual-time-first, so acquisition
// order is the deterministic merge order of the timelines). A session never
// queues behind its own previous acquisition on the same context: its
// occupancy is already serialized into its virtual clock, so only a
// *neighbor's* occupancy can push it out. Each (session, part) pair binds to
// a pool member at its first acquire — the member free earliest, ties to the
// lowest index — and keeps it; within the member, every charge books the
// earliest-free context. With pool_size == 1 and concurrency == 1 everything
// lands on one context and the arithmetic is the pre-pool single window.
class BusySurrogate final : public SurrogateService {
 public:
  BusySurrogate(FleetResult& out, std::size_t pool_size,
                std::size_t concurrency)
      : out_(out),
        members_(std::max<std::size_t>(pool_size, 1),
                 Member(std::max<std::size_t>(concurrency, 1))) {}

  void set_active(std::size_t session) noexcept { active_ = session; }

  SimDuration acquire(SimTime now, SimDuration service, ServiceKind kind,
                      std::size_t part) override {
    const Binding b = binding_of(active_, part, now);
    Member& m = members_[b.member];
    Context& c = m.contexts[b.context];
    SimTime start = now;
    if (c.last_session != active_ && c.busy_until > now) {
      start = c.busy_until;
    }
    const SimDuration delay = start - now;
    c.busy_until = std::max(c.busy_until, start + service);
    c.last_session = active_;
    m.busy += service;
    out_.surrogate_busy += service;
    if (kind == ServiceKind::remote_op) {
      out_.total_remote_ops += 1;
      out_.op_latencies.push_back(service + delay);
    }
    return delay;
  }

  void fold_into(FleetResult& out) const {
    out.surrogate_busy_each.reserve(members_.size());
    for (const Member& m : members_) out.surrogate_busy_each.push_back(m.busy);
  }

 private:
  struct Context {
    SimTime busy_until = 0;
    std::size_t last_session = std::numeric_limits<std::size_t>::max();
  };

  struct Member {
    explicit Member(std::size_t concurrency) : contexts(concurrency) {}

    [[nodiscard]] std::size_t earliest_free() const noexcept {
      std::size_t best = 0;
      for (std::size_t i = 1; i < contexts.size(); ++i) {
        if (contexts[i].busy_until < contexts[best].busy_until) best = i;
      }
      return best;
    }
    [[nodiscard]] SimTime free_at() const noexcept {
      return contexts[earliest_free()].busy_until;
    }

    std::vector<Context> contexts;
    SimDuration busy = 0;
  };

  struct Binding {
    std::size_t member = 0;
    std::size_t context = 0;
  };

  // A (session, part) pair's surrogate half is *hosted*: its first acquire
  // picks the member whose earliest context frees first, then the
  // earliest-free context on it (ties to the lowest index both times), and
  // every later charge lands on that same context — a serial stream cannot
  // use two contexts at once. The schedule is a pure function of the
  // acquire sequence.
  Binding binding_of(std::size_t session, std::size_t part, SimTime now) {
    const auto key = std::make_pair(session, part);
    const auto it = binding_.find(key);
    if (it != binding_.end()) return it->second;
    std::size_t best = 0;
    for (std::size_t i = 1; i < members_.size(); ++i) {
      if (members_[i].free_at() < members_[best].free_at()) best = i;
    }
    const Binding b{best, members_[best].earliest_free()};
    binding_.emplace(key, b);
    out_.placements.push_back(FleetPlacement{session, part, best, now});
    return b;
  }

  FleetResult& out_;
  std::vector<Member> members_;
  std::map<std::pair<std::size_t, std::size_t>, Binding> binding_;
  std::size_t active_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace

FleetEmulator::FleetEmulator(std::shared_ptr<const vm::ClassRegistry> registry,
                             FleetConfig config)
    : registry_(std::move(registry)), config_(config) {}

FleetResult FleetEmulator::run(std::span<const Trace* const> traces) {
  FleetResult out;
  const std::size_t n = traces.size();
  out.sessions.reserve(n);
  if (n == 0) return out;

  BusySurrogate surrogate(out, config_.pool_size,
                          config_.surrogate_concurrency);

  std::vector<std::unique_ptr<Emulator>> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto em = std::make_unique<Emulator>(registry_, config_.session);
    if (config_.shared_surrogate) em->set_surrogate_service(&surrogate);
    em->begin(*traces[i]);
    sessions.push_back(std::move(em));
  }

  const std::size_t quantum = std::max<std::size_t>(config_.events_per_turn, 1);
  for (;;) {
    // Furthest-behind session runs next; ties break to the lowest index
    // (strict less-than), so the merge order is a pure function of the
    // traces and the config.
    std::size_t pick = n;
    SimTime pick_t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (sessions[i]->done()) continue;
      const SimTime t = sessions[i]->current_time();
      if (pick == n || t < pick_t) {
        pick = i;
        pick_t = t;
      }
    }
    if (pick == n) break;
    surrogate.set_active(pick);
    sessions[pick]->step(quantum);
    out.turns += 1;
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.sessions.push_back(sessions[i]->finish());
    out.makespan = std::max(out.makespan, out.sessions.back().emulated_time);
  }
  surrogate.fold_into(out);
  return out;
}

FleetResult FleetEmulator::run(const Trace& trace, std::size_t n_sessions) {
  std::vector<const Trace*> traces(n_sessions, &trace);
  return run(std::span<const Trace* const>(traces));
}

}  // namespace aide::emul
