#include "emul/fleet.hpp"

#include <algorithm>
#include <limits>

namespace aide::emul {

namespace {

// The shared surrogate's single busy-until window. Sessions acquire it in
// the order the fleet scheduler replays their ops (min-virtual-time-first,
// so acquisition order is the deterministic merge order of the timelines).
// A session never queues behind its own previous acquisition: its occupancy
// is already serialized into its virtual clock, so only a *neighbor's*
// occupancy can push it out.
class BusySurrogate final : public SurrogateService {
 public:
  explicit BusySurrogate(FleetResult& out) : out_(out) {}

  void set_active(std::size_t session) noexcept { active_ = session; }

  SimDuration acquire(SimTime now, SimDuration service,
                      ServiceKind kind) override {
    SimTime start = now;
    if (last_session_ != active_ && busy_until_ > now) {
      start = busy_until_;
    }
    const SimDuration delay = start - now;
    busy_until_ = std::max(busy_until_, start + service);
    last_session_ = active_;
    out_.surrogate_busy += service;
    if (kind == ServiceKind::remote_op) {
      out_.total_remote_ops += 1;
      out_.op_latencies.push_back(service + delay);
    }
    return delay;
  }

 private:
  FleetResult& out_;
  SimTime busy_until_ = 0;
  std::size_t active_ = std::numeric_limits<std::size_t>::max();
  std::size_t last_session_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace

FleetEmulator::FleetEmulator(std::shared_ptr<const vm::ClassRegistry> registry,
                             FleetConfig config)
    : registry_(std::move(registry)), config_(config) {}

FleetResult FleetEmulator::run(std::span<const Trace* const> traces) {
  FleetResult out;
  const std::size_t n = traces.size();
  out.sessions.reserve(n);
  if (n == 0) return out;

  BusySurrogate surrogate(out);

  std::vector<std::unique_ptr<Emulator>> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto em = std::make_unique<Emulator>(registry_, config_.session);
    if (config_.shared_surrogate) em->set_surrogate_service(&surrogate);
    em->begin(*traces[i]);
    sessions.push_back(std::move(em));
  }

  const std::size_t quantum = std::max<std::size_t>(config_.events_per_turn, 1);
  for (;;) {
    // Furthest-behind session runs next; ties break to the lowest index
    // (strict less-than), so the merge order is a pure function of the
    // traces and the config.
    std::size_t pick = n;
    SimTime pick_t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (sessions[i]->done()) continue;
      const SimTime t = sessions[i]->current_time();
      if (pick == n || t < pick_t) {
        pick = i;
        pick_t = t;
      }
    }
    if (pick == n) break;
    surrogate.set_active(pick);
    sessions[pick]->step(quantum);
    out.turns += 1;
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.sessions.push_back(sessions[i]->finish());
    out.makespan = std::max(out.makespan, out.sessions.back().emulated_time);
  }
  return out;
}

FleetResult FleetEmulator::run(const Trace& trace, std::size_t n_sessions) {
  std::vector<const Trace*> traces(n_sessions, &trace);
  return run(std::span<const Trace* const>(traces));
}

}  // namespace aide::emul
