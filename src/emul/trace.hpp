// Execution traces (paper section 4).
//
// "The emulator executes the same three modules that are used in the
// prototype. The Chai VM is replaced with a wrapper that is used to play back
// execution and resource traces into the modules."
//
// A Trace is the flat event stream extracted from a prototype run on a single
// VM: allocations, frees, method invocations and exits (with Figure 9
// self-times), data accesses, and GC cycle reports. Events are compact PODs
// with a stable CSV round-trip for archival and tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/simclock.hpp"

namespace aide::emul {

enum class TraceEventType : std::uint8_t {
  alloc = 0,
  free_obj = 1,
  resize = 2,
  invoke = 3,
  access = 4,
  method_enter = 5,
  method_exit = 6,
  gc = 7,
};

// Flag bits for invoke/access events.
inline constexpr std::uint8_t kFlagNative = 1;
inline constexpr std::uint8_t kFlagStatic = 2;
inline constexpr std::uint8_t kFlagStateless = 4;
inline constexpr std::uint8_t kFlagWrite = 8;

struct TraceEvent {
  TraceEventType type{};
  std::uint8_t flags = 0;
  SimTime t = 0;
  ClassId cls_a;   // alloc/free/resize/enter/exit: object class; invoke:
                   // caller class; access: source class
  ClassId cls_b;   // invoke: callee class; access: target class
  ObjectId obj_a;  // alloc/free/resize/enter/exit: the object; invoke: caller
                   // object; access: source object
  ObjectId obj_b;  // invoke: callee object; access: target object
  MethodId method;
  std::int64_t bytes = 0;  // alloc/free size, interaction bytes,
                           // method_exit self-time, gc used_after
  std::int64_t aux1 = 0;   // gc: capacity; resize: delta
  std::int64_t aux2 = 0;   // gc: freed
};

struct Trace {
  std::vector<TraceEvent> events;

  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  // Duration of the recorded run (time of the last event).
  [[nodiscard]] SimDuration duration() const noexcept {
    return events.empty() ? 0 : events.back().t;
  }

  void save_csv(std::ostream& os) const;
  static Trace load_csv(std::istream& is);
};

}  // namespace aide::emul
