// Trace recorder.
//
// Attached as VM hooks during a prototype run ("the traces for an application
// were extracted from the prototype while running the application to
// completion on a single PC", paper section 4), the recorder captures every
// instrumented event into a Trace for later emulator playback.
#pragma once

#include "emul/trace.hpp"
#include "vm/hooks.hpp"

namespace aide::emul {

class TraceRecorder : public vm::VmHooks {
 public:
  TraceRecorder() = default;

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  Trace take() noexcept { return std::move(trace_); }
  void clear() { trace_.events.clear(); }

  void on_invoke(const vm::InvokeEvent& ev) override {
    TraceEvent e;
    e.type = TraceEventType::invoke;
    e.t = ev.t;
    e.cls_a = ev.caller_cls;
    e.obj_a = ev.caller_obj;
    e.cls_b = ev.callee_cls;
    e.obj_b = ev.callee_obj;
    e.method = ev.method;
    e.bytes = static_cast<std::int64_t>(ev.bytes);
    if (ev.is_native) e.flags |= kFlagNative;
    if (ev.is_static) e.flags |= kFlagStatic;
    if (ev.is_stateless) e.flags |= kFlagStateless;
    trace_.events.push_back(e);
  }

  void on_access(const vm::AccessEvent& ev) override {
    TraceEvent e;
    e.type = TraceEventType::access;
    e.t = ev.t;
    e.cls_a = ev.from_cls;
    e.obj_a = ev.from_obj;
    e.cls_b = ev.to_cls;
    e.obj_b = ev.to_obj;
    e.bytes = static_cast<std::int64_t>(ev.bytes);
    if (ev.is_write) e.flags |= kFlagWrite;
    if (ev.is_static) e.flags |= kFlagStatic;
    trace_.events.push_back(e);
  }

  void on_method_enter(NodeId, ClassId cls, ObjectId obj, MethodId m,
                       SimTime t) override {
    TraceEvent e;
    e.type = TraceEventType::method_enter;
    e.t = t;
    e.cls_a = cls;
    e.obj_a = obj;
    e.method = m;
    trace_.events.push_back(e);
  }

  void on_method_exit(NodeId, ClassId cls, ObjectId obj, MethodId m,
                      SimDuration self_time, SimTime t) override {
    TraceEvent e;
    e.type = TraceEventType::method_exit;
    e.t = t;
    e.cls_a = cls;
    e.obj_a = obj;
    e.method = m;
    e.bytes = self_time;
    trace_.events.push_back(e);
  }

  void on_alloc(NodeId, ObjectId obj, ClassId cls, std::int64_t bytes,
                SimTime t) override {
    TraceEvent e;
    e.type = TraceEventType::alloc;
    e.t = t;
    e.cls_a = cls;
    e.obj_a = obj;
    e.bytes = bytes;
    trace_.events.push_back(e);
  }

  void on_resize(NodeId, ObjectId obj, ClassId cls,
                 std::int64_t delta) override {
    TraceEvent e;
    e.type = TraceEventType::resize;
    e.t = trace_.events.empty() ? 0 : trace_.events.back().t;
    e.cls_a = cls;
    e.obj_a = obj;
    e.aux1 = delta;
    trace_.events.push_back(e);
  }

  void on_free(NodeId, ObjectId obj, ClassId cls, std::int64_t bytes,
               SimTime t) override {
    TraceEvent e;
    e.type = TraceEventType::free_obj;
    e.t = t;
    e.cls_a = cls;
    e.obj_a = obj;
    e.bytes = bytes;
    trace_.events.push_back(e);
  }

  void on_gc(NodeId, const vm::GcReport& report) override {
    TraceEvent e;
    e.type = TraceEventType::gc;
    e.t = trace_.events.empty() ? 0 : trace_.events.back().t;
    e.bytes = report.used_after;
    e.aux1 = report.capacity;
    e.aux2 = report.freed;
    trace_.events.push_back(e);
  }

 private:
  Trace trace_;
};

}  // namespace aide::emul
