// Trace-driven emulator (paper section 4).
//
// Replays a recorded execution trace through the same monitoring, resource
// and partitioning modules as the prototype, and stretches simulated
// execution time to account for remote invocations and data accesses over
// the modeled link. Distributed execution is assumed equivalent to serial
// execution of the trace (the paper's simplification), so emulated time is:
//
//     sum(self_time / speed(placement(component)))
//   + sum(rpc cost for every cut-crossing interaction)
//   + migration cost for each offload event.
//
// The emulator supports repeated repartitioning, arbitrary trigger and
// partitioning policies (Figure 7's sweep), an emulated client heap capacity
// independent of the one the trace was recorded with, and the paper's two
// section 5.2 enhancements (stateless natives local, int arrays at object
// granularity).
//
// Replay is resumable: begin()/step()/finish() expose the event loop one
// event at a time so a fleet driver can interleave many sessions' traces in
// virtual time against one shared surrogate (run() remains the one-shot
// single-session form and is bit-identical to the pre-stepping emulator).
// With a SurrogateService installed, every unit of surrogate occupancy —
// remote interactions, surrogate-placed compute, migrations — is serialized
// through it and the resulting queueing delay accumulates in
// EmulationResult::queue_time; without one (the default) nothing queues and
// queue_time stays zero.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "emul/trace.hpp"
#include "graph/mincut.hpp"
#include "monitor/monitor.hpp"
#include "monitor/resource_monitor.hpp"
#include "netsim/link.hpp"
#include "partition/partitioner.hpp"
#include "vm/klass.hpp"

namespace aide::emul {

enum class TriggerMode {
  // Low-memory GC reports trigger partitioning (memory experiments, 5.1).
  memory_gc,
  // Partitioning is evaluated once after a fixed fraction of the trace has
  // replayed (processing experiments, 5.2).
  trace_fraction,
};

struct EmulatorConfig {
  netsim::LinkParams link = netsim::LinkParams::wavelan();
  // Surrogate/client CPU ratio. Figure 6 uses 1.0 ("the same processor speed
  // was used for both"); Figure 10 uses 3.5.
  double surrogate_speedup = 1.0;

  TriggerMode trigger_mode = TriggerMode::memory_gc;
  monitor::TriggerPolicy trigger;
  double eval_at_fraction = 0.10;  // trace_fraction mode

  partition::Objective objective = partition::Objective::free_memory;
  double min_free_fraction = 0.20;
  double min_improvement = 0.0;
  std::size_t max_offloads = 1;

  // Client heap capacity the emulation assumes (may differ from the heap the
  // trace was recorded with).
  std::int64_t heap_capacity = std::int64_t{6} << 20;

  // Paper 5.2 enhancements.
  bool stateless_natives_local = false;  // "Native"
  bool arrays_as_objects = false;        // "Array"
  std::int64_t min_array_bytes = 4096;

  graph::EdgeWeightFn weight;
  bool charge_migration = true;

  // GC-pressure model: as the client heap approaches exhaustion, collection
  // cycles run back-to-back ("triggered by space limitations"), each paying a
  // mark/sweep pass over the live set. Per GC report the emulator charges
  //   (bytes allocated since last report / free headroom) * live * this cost.
  // 0 disables the model (CPU experiments run with ample heap anyway); the
  // memory experiments enable it — it is why the paper's early-trigger
  // policies beat the initial policy for Dia and Biomer (Figure 7).
  double gc_pressure_cost_ns_per_live_byte = 0.0;

  // Manual partitioning (paper 5.2: "by partitioning the application
  // manually, we were able to find a beneficial partitioning"): when
  // non-empty, the trigger offloads exactly the named classes instead of
  // consulting the partitioning policy.
  std::vector<std::string> manual_offload_classes;

  // Number of surrogates one session's offload set may span: the partition
  // request runs with k = surrogate_parts and the selected set is split
  // across parts 1..k (placement value p means surrogate part p; 0 stays
  // the client). 1 is the single-surrogate pipeline, byte-identical to the
  // pre-pool emulator.
  std::size_t surrogate_parts = 1;
};

struct OffloadSnapshot {
  SimTime at = 0;  // trace time of the offload
  partition::PartitionDecision decision;
  std::uint64_t migrated_bytes = 0;
  std::size_t components = 0;
};

// What a unit of shared-surrogate occupancy is for (fleet accounting).
enum class ServiceKind : std::uint8_t {
  remote_op,  // one remote invocation or data access (link cost)
  compute,    // surrogate-placed method self-time
  migration,  // shipping an offload batch
};

// The shared surrogate of a multi-session emulation. One instance is
// installed into every session's Emulator; each unit of surrogate occupancy
// is serialized through acquire(), which returns how long the session had to
// wait for the surrogate to come free. The single-session emulator has no
// service installed: a dedicated surrogate never queues.
class SurrogateService {
 public:
  virtual ~SurrogateService() = default;
  // Occupies the surrogate serving this session's part `part` (0-based; a
  // session with surrogate_parts == 1 always passes 0) for `service`
  // virtual ns beginning no earlier than the session-local time `now`;
  // returns the queueing delay (0 when that surrogate is idle at `now`).
  virtual SimDuration acquire(SimTime now, SimDuration service,
                              ServiceKind kind, std::size_t part) = 0;
};

struct EmulationResult {
  SimDuration base_time = 0;      // client-only execution of the trace
  SimDuration emulated_time = 0;  // with offloading and stretching
  SimDuration comm_time = 0;      // stretching added for remote interactions
  SimDuration migration_time = 0;
  SimDuration gc_pressure_time = 0;  // near-exhaustion collection overhead
  // Time spent waiting for a shared surrogate occupied by other sessions
  // (always 0 with a dedicated surrogate, i.e. without a SurrogateService).
  SimDuration queue_time = 0;

  std::uint64_t total_invocations = 0;
  std::uint64_t remote_invocations = 0;
  std::uint64_t remote_native_invocations = 0;  // Figure 8
  std::uint64_t total_accesses = 0;
  std::uint64_t remote_accesses = 0;
  std::uint64_t remote_bytes = 0;

  // Peak emulated client heap occupancy (bytes); exceeding the configured
  // capacity with offloading disabled means the run would have failed with
  // an out-of-memory error (the paper's JavaNote-at-6MB scenario).
  std::int64_t peak_client_live = 0;

  std::vector<OffloadSnapshot> offloads;
  // The last evaluation that declined to offload (Biomer's Figure 10 case).
  std::vector<partition::PartitionDecision> declined;

  [[nodiscard]] bool offloaded() const noexcept { return !offloads.empty(); }
  [[nodiscard]] double overhead_fraction() const noexcept {
    if (base_time <= 0) return 0.0;
    return static_cast<double>(emulated_time - base_time) /
           static_cast<double>(base_time);
  }
  [[nodiscard]] double speedup() const noexcept {
    if (emulated_time <= 0) return 1.0;
    return static_cast<double>(base_time) /
           static_cast<double>(emulated_time);
  }
};

class Emulator {
 public:
  Emulator(std::shared_ptr<const vm::ClassRegistry> registry,
           EmulatorConfig config);

  [[nodiscard]] EmulationResult run(const Trace& trace);

  // --- resumable replay (fleet interleaving) --------------------------------
  //
  // begin() arms the replay; each step() consumes one trace event; finish()
  // folds the accumulators into the final EmulationResult. run() is exactly
  // begin + step-to-exhaustion + finish. The trace must outlive the replay.

  void begin(const Trace& trace);
  // Replays one event; returns false once the trace is exhausted.
  bool step();
  // Replays up to `n` events; returns the number actually replayed.
  std::size_t step(std::size_t n);
  [[nodiscard]] bool done() const noexcept {
    return trace_ == nullptr || event_ix_ >= trace_->events.size();
  }
  EmulationResult finish();

  // Emulated session-local time so far: trace time replayed plus every
  // stretch accumulated to this point. This is the virtual-time axis the
  // fleet scheduler orders session turns by.
  [[nodiscard]] SimTime current_time() const noexcept {
    return last_event_t_ - compute_raw_ + compute_scaled_ +
           result_.comm_time + result_.migration_time +
           result_.gc_pressure_time + result_.queue_time;
  }

  // Installs (or clears, with nullptr) the shared surrogate this session
  // queues on. Must be set before begin()/run().
  void set_surrogate_service(SurrogateService* svc) noexcept {
    service_ = svc;
  }

  // The execution graph accumulated during the last run (Figure 5 rendering).
  [[nodiscard]] const monitor::ExecutionMonitor& last_monitor() const {
    return *monitor_;
  }

 private:
  [[nodiscard]] int placement_of(const graph::ComponentKey& key) const {
    const auto it = placement_.find(key);
    return it == placement_.end() ? 0 : it->second;
  }

  [[nodiscard]] SimDuration rpc_cost(std::uint64_t bytes) const;
  void try_offload(SimTime at, EmulationResult& result);
  void replay_event(const TraceEvent& e);
  // Serializes `service` on the shared surrogate serving part `part` (when
  // one is installed) and accumulates the wait into queue_time.
  void charge_service(SimDuration service, ServiceKind kind,
                      std::size_t part = 0);

  std::shared_ptr<const vm::ClassRegistry> registry_;
  EmulatorConfig config_;
  std::unique_ptr<monitor::ExecutionMonitor> monitor_;
  std::unique_ptr<monitor::ResourceMonitor> resource_;
  std::unordered_map<graph::ComponentKey, int> placement_;
  SurrogateService* service_ = nullptr;

  // Emulated heap model.
  std::int64_t live_bytes_ = 0;
  std::int64_t freed_since_gc_ = 0;
  std::int64_t alloc_since_gc_ = 0;

  // Resumable-replay state (valid between begin() and finish()).
  const Trace* trace_ = nullptr;
  std::size_t event_ix_ = 0;
  SimTime last_event_t_ = 0;
  EmulationResult result_;
  SimDuration compute_raw_ = 0;     // self-time as recorded (client speed)
  SimDuration compute_scaled_ = 0;  // self-time under the emulated placement
  std::uint32_t gc_cycle_ = 0;
  std::size_t eval_index_ = 0;
  bool fraction_evaluated_ = false;
};

}  // namespace aide::emul
