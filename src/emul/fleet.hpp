// Fleet emulation: N concurrent trace sessions against one shared surrogate.
//
// Each session replays its own trace through its own Emulator (own monitor,
// resource monitor, placement, heap model) over the resumable
// begin()/step()/finish() API; the fleet driver interleaves them
// min-virtual-time-first, so the session whose local clock is furthest behind
// always runs next — a deterministic discrete-event merge of N timelines
// (ties break toward the lowest session index). All sessions share one
// surrogate: every unit of surrogate occupancy — remote interactions,
// surrogate-placed compute, offload migrations — serializes through a single
// busy-until window, and the wait each op experiences lands in that session's
// EmulationResult::queue_time. A session never queues behind itself (its own
// occupancy is already serialized into its virtual time by the emulated-time
// formula), which makes a one-session fleet exactly equal to a plain
// Emulator::run of the same trace.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "emul/emulator.hpp"
#include "emul/trace.hpp"

namespace aide::emul {

struct FleetConfig {
  // Per-session emulator configuration (identical across the fleet).
  EmulatorConfig session;
  // Scheduling quantum: trace events one turn replays before the driver
  // re-picks the furthest-behind session.
  std::size_t events_per_turn = 256;
  // When false, sessions get dedicated surrogates (no queueing; queue_time
  // stays 0 for everyone) — the "infinite surrogates" baseline.
  bool shared_surrogate = true;
  // Number of surrogates the shared pool holds. Each (session, part) pair
  // binds to one pool member at its first acquire — the member whose busy
  // window frees earliest, ties to the lowest index — and keeps it for the
  // run. 1 is the single shared surrogate, byte-identical to the pre-pool
  // fleet.
  std::size_t pool_size = 1;
  // Hardware contexts per pool member. Each charge books the member context
  // that frees earliest (ties to the lowest context index), so a member
  // retires up to `surrogate_concurrency` sessions' charges in parallel;
  // the charging session's own timeline still pays its full service. 1 is
  // the legacy single-context surrogate, byte-identical to the pre-pool
  // fleet.
  std::size_t surrogate_concurrency = 1;
};

// One lazy (session, part) -> pool member binding, in binding order — the
// fleet's placement schedule, part of the determinism digest.
struct FleetPlacement {
  std::size_t session = 0;
  std::size_t part = 0;
  std::size_t surrogate = 0;
  SimTime at = 0;  // session-local virtual time of the first acquire
};

struct FleetResult {
  // One result per session, in session order.
  std::vector<EmulationResult> sessions;
  // Virtual latency of every remote op across the fleet (link cost plus
  // queueing delay), in replay order. Feeds p50/p95/p99.
  std::vector<SimDuration> op_latencies;
  // Longest per-session emulated time — the fleet's completion proxy on the
  // shared virtual-time axis.
  SimDuration makespan = 0;
  // Total virtual time the pool was occupied, summed over members.
  SimDuration surrogate_busy = 0;
  // Per-member occupancy (size pool_size) and the placement schedule.
  std::vector<SimDuration> surrogate_busy_each;
  std::vector<FleetPlacement> placements;
  std::uint64_t total_remote_ops = 0;
  std::uint64_t turns = 0;

  // Fairness spread: slowest session's emulated time over the fastest's.
  // 1.0 means perfectly even progress.
  [[nodiscard]] double fairness_spread() const noexcept {
    if (sessions.empty()) return 1.0;
    SimDuration lo = sessions.front().emulated_time;
    SimDuration hi = lo;
    for (const EmulationResult& r : sessions) {
      lo = r.emulated_time < lo ? r.emulated_time : lo;
      hi = r.emulated_time > hi ? r.emulated_time : hi;
    }
    if (lo <= 0) return 1.0;
    return static_cast<double>(hi) / static_cast<double>(lo);
  }
};

class FleetEmulator {
 public:
  FleetEmulator(std::shared_ptr<const vm::ClassRegistry> registry,
                FleetConfig config);

  // Runs one session per trace pointer, interleaved as described above.
  [[nodiscard]] FleetResult run(std::span<const Trace* const> traces);
  // Convenience: N sessions all replaying the same trace.
  [[nodiscard]] FleetResult run(const Trace& trace, std::size_t n_sessions);

 private:
  std::shared_ptr<const vm::ClassRegistry> registry_;
  FleetConfig config_;
};

}  // namespace aide::emul
