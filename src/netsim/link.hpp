// Analytic wireless-link model.
//
// The paper's emulator charges remote interactions against an 11 Mbps
// WaveLAN link with a 2.4 ms round-trip time for a null message (section 4).
// This module reproduces exactly that cost model: a message costs half the
// null-message RTT (per direction) plus its serialized size over the link
// bandwidth, with an optional deterministic jitter term for sensitivity
// studies.
//
// On top of the cost model sits a deterministic fault model (FaultPlan):
// scheduled outage windows, degraded-bandwidth intervals and a seeded
// per-message drop probability, all evaluated against the virtual SimClock
// so every fault schedule is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simclock.hpp"

namespace aide::netsim {

struct LinkParams {
  // Raw link bandwidth in bits per second.
  double bandwidth_bps = 11e6;
  // Round-trip time of a zero-payload request/response pair.
  SimDuration null_rtt = sim_us(2400);
  // Fraction of one-way latency added as uniform jitter (0 = deterministic).
  double jitter_fraction = 0.0;
  // Seed for the jitter stream; irrelevant when jitter_fraction == 0.
  std::uint64_t jitter_seed = 42;

  // The paper's measured link (WaveLAN, 11 Mbps, 2.4 ms null RTT).
  static LinkParams wavelan() noexcept { return LinkParams{}; }

  // A wired 100 Mbps LAN, used by the link-quality ablation bench.
  static LinkParams fast_ethernet() noexcept {
    return LinkParams{.bandwidth_bps = 100e6, .null_rtt = sim_us(200)};
  }

  // A slow wide-area cellular-class link.
  static LinkParams cellular() noexcept {
    return LinkParams{.bandwidth_bps = 384e3, .null_rtt = sim_ms(120)};
  }
};

// Side-effect-free cost probes: candidate evaluation (partitioner, emulator)
// must be able to price a hypothetical message without polluting the link's
// traffic accounting or consuming its jitter stream.
[[nodiscard]] inline SimDuration estimate_one_way_cost(
    const LinkParams& p, std::uint64_t payload_bytes) noexcept {
  const double serialization_s =
      static_cast<double>(payload_bytes) * 8.0 / p.bandwidth_bps;
  return p.null_rtt / 2 + static_cast<SimDuration>(serialization_s * 1e9);
}

// Synchronous request/response estimate over `total_bytes` of payload.
// Computed from the full null RTT (not two halved legs) so an odd-nanosecond
// RTT does not lose precision to per-direction truncation.
[[nodiscard]] inline SimDuration estimate_rpc_cost(
    const LinkParams& p, std::uint64_t total_bytes) noexcept {
  const double serialization_s =
      static_cast<double>(total_bytes) * 8.0 / p.bandwidth_bps;
  return p.null_rtt + static_cast<SimDuration>(serialization_s * 1e9);
}

// A half-open [begin, end) interval during which the link delivers nothing.
struct OutageWindow {
  SimTime begin = 0;
  SimTime end = 0;

  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
};

// A half-open [begin, end) interval during which the link runs at a fraction
// of its nominal bandwidth (latency is unchanged; only serialization slows).
struct DegradedWindow {
  SimTime begin = 0;
  SimTime end = 0;
  double bandwidth_factor = 1.0;

  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
};

// A deterministic, seedable fault schedule. A default-constructed plan is
// inert: every message is delivered at the nominal cost and the link behaves
// bit-for-bit like the fault-free model.
struct FaultPlan {
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  std::vector<OutageWindow> outages;
  std::vector<DegradedWindow> degraded;
  // Probability that an otherwise-deliverable message is lost in transit.
  double drop_probability = 0.0;
  // Seed for the drop stream; only consumed when drop_probability > 0.
  std::uint64_t drop_seed = 0xD0D0;
  // Permanent link death: nothing is delivered at or after this instant.
  SimTime dead_after = kNever;

  [[nodiscard]] bool enabled() const noexcept {
    return !outages.empty() || !degraded.empty() || drop_probability > 0.0 ||
           dead_after != kNever;
  }
};

// Cumulative traffic accounting for one link.
struct LinkStats {
  std::uint64_t messages = 0;  // transmissions that made it onto the air
  std::uint64_t bytes = 0;
  SimDuration busy_time = 0;
  // Fault accounting (all zero under an inert FaultPlan).
  std::uint64_t messages_dropped = 0;  // transmitted but lost in transit
  std::uint64_t bytes_dropped = 0;
  std::uint64_t link_down_failures = 0;  // sends refused: link down/dead

  void reset() noexcept { *this = LinkStats{}; }

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

class Link {
 public:
  // The outcome of attempting one transmission under the fault model.
  struct Delivery {
    bool delivered = false;
    SimDuration cost = 0;  // airtime consumed (0 when the link was down)
  };

  explicit Link(LinkParams params = LinkParams::wavelan()) noexcept
      : params_(params),
        jitter_rng_(params.jitter_seed),
        drop_rng_(FaultPlan{}.drop_seed) {}

  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  void set_fault_plan(FaultPlan plan) {
    plan_ = std::move(plan);
    drop_rng_.reseed(plan_.drop_seed);
  }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  // Whether the link delivers anything at virtual time `now`.
  [[nodiscard]] bool is_down(SimTime now) const noexcept {
    if (now >= plan_.dead_after) return true;
    for (const OutageWindow& w : plan_.outages) {
      if (w.contains(now)) return true;
    }
    return false;
  }

  // Time for one message of `payload_bytes` to cross the link one way,
  // assuming delivery (the fault-free charge path).
  [[nodiscard]] SimDuration one_way_cost(std::uint64_t payload_bytes) noexcept {
    return charge(payload_bytes, 1.0);
  }

  // Fault-aware transmission attempt at virtual time `now`. A down link
  // refuses the send outright (no airtime); a dropped message consumes its
  // full airtime but is not delivered. With an inert FaultPlan this is
  // exactly one_way_cost: same cost, same jitter stream, same accounting.
  [[nodiscard]] Delivery try_one_way(std::uint64_t payload_bytes,
                                     SimTime now) noexcept {
    if (is_down(now)) {
      stats_.link_down_failures += 1;
      return Delivery{false, 0};
    }
    const SimDuration cost = charge(payload_bytes, bandwidth_factor_at(now));
    if (plan_.drop_probability > 0.0 &&
        drop_rng_.next_double() < plan_.drop_probability) {
      stats_.messages_dropped += 1;
      stats_.bytes_dropped += payload_bytes;
      return Delivery{false, cost};
    }
    return Delivery{true, cost};
  }

  // Side-effect-free probe of the nominal (fault-free, jitter-free) cost.
  [[nodiscard]] SimDuration estimate_one_way_cost(
      std::uint64_t payload_bytes) const noexcept {
    return netsim::estimate_one_way_cost(params_, payload_bytes);
  }

  // Time for a synchronous request/response exchange.
  [[nodiscard]] SimDuration round_trip_cost(std::uint64_t request_bytes,
                                            std::uint64_t response_bytes) noexcept {
    return one_way_cost(request_bytes) + one_way_cost(response_bytes);
  }

 private:
  // Computes and accounts the cost of one transmission. `bandwidth_factor`
  // scales the serialization term (degraded windows); 1.0 reproduces the
  // nominal model exactly.
  [[nodiscard]] SimDuration charge(std::uint64_t payload_bytes,
                                   double bandwidth_factor) noexcept {
    const double serialization_s = static_cast<double>(payload_bytes) * 8.0 /
                                   (params_.bandwidth_bps * bandwidth_factor);
    SimDuration cost = params_.null_rtt / 2 +
                       static_cast<SimDuration>(serialization_s * 1e9);
    if (params_.jitter_fraction > 0.0) {
      const double j = jitter_rng_.next_double() * params_.jitter_fraction;
      cost += static_cast<SimDuration>(static_cast<double>(cost) * j);
    }
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    stats_.busy_time += cost;
    return cost;
  }

  [[nodiscard]] double bandwidth_factor_at(SimTime now) const noexcept {
    for (const DegradedWindow& w : plan_.degraded) {
      if (w.contains(now) && w.bandwidth_factor > 0.0) {
        return w.bandwidth_factor;
      }
    }
    return 1.0;
  }

  LinkParams params_;
  LinkStats stats_;
  FaultPlan plan_;
  Rng jitter_rng_;
  Rng drop_rng_;
};

}  // namespace aide::netsim
