// Analytic wireless-link model.
//
// The paper's emulator charges remote interactions against an 11 Mbps
// WaveLAN link with a 2.4 ms round-trip time for a null message (section 4).
// This module reproduces exactly that cost model: a message costs half the
// null-message RTT (per direction) plus its serialized size over the link
// bandwidth, with an optional deterministic jitter term for sensitivity
// studies.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/simclock.hpp"

namespace aide::netsim {

struct LinkParams {
  // Raw link bandwidth in bits per second.
  double bandwidth_bps = 11e6;
  // Round-trip time of a zero-payload request/response pair.
  SimDuration null_rtt = sim_us(2400);
  // Fraction of one-way latency added as uniform jitter (0 = deterministic).
  double jitter_fraction = 0.0;
  // Seed for the jitter stream; irrelevant when jitter_fraction == 0.
  std::uint64_t jitter_seed = 42;

  // The paper's measured link (WaveLAN, 11 Mbps, 2.4 ms null RTT).
  static LinkParams wavelan() noexcept { return LinkParams{}; }

  // A wired 100 Mbps LAN, used by the link-quality ablation bench.
  static LinkParams fast_ethernet() noexcept {
    return LinkParams{.bandwidth_bps = 100e6, .null_rtt = sim_us(200)};
  }

  // A slow wide-area cellular-class link.
  static LinkParams cellular() noexcept {
    return LinkParams{.bandwidth_bps = 384e3, .null_rtt = sim_ms(120)};
  }
};

// Cumulative traffic accounting for one link.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimDuration busy_time = 0;

  void reset() noexcept { *this = LinkStats{}; }
};

class Link {
 public:
  explicit Link(LinkParams params = LinkParams::wavelan()) noexcept
      : params_(params), jitter_rng_(params.jitter_seed) {}

  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Time for one message of `payload_bytes` to cross the link one way.
  [[nodiscard]] SimDuration one_way_cost(std::uint64_t payload_bytes) noexcept {
    const double serialization_s =
        static_cast<double>(payload_bytes) * 8.0 / params_.bandwidth_bps;
    SimDuration cost = params_.null_rtt / 2 +
                       static_cast<SimDuration>(serialization_s * 1e9);
    if (params_.jitter_fraction > 0.0) {
      const double j = jitter_rng_.next_double() * params_.jitter_fraction;
      cost += static_cast<SimDuration>(static_cast<double>(cost) * j);
    }
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    stats_.busy_time += cost;
    return cost;
  }

  // Time for a synchronous request/response exchange.
  [[nodiscard]] SimDuration round_trip_cost(std::uint64_t request_bytes,
                                            std::uint64_t response_bytes) noexcept {
    return one_way_cost(request_bytes) + one_way_cost(response_bytes);
  }

 private:
  LinkParams params_;
  LinkStats stats_;
  Rng jitter_rng_;
};

}  // namespace aide::netsim
