// Analytic wireless-link model.
//
// The paper's emulator charges remote interactions against an 11 Mbps
// WaveLAN link with a 2.4 ms round-trip time for a null message (section 4).
// This module reproduces exactly that cost model: a message costs half the
// null-message RTT (per direction) plus its serialized size over the link
// bandwidth, with an optional deterministic jitter term for sensitivity
// studies.
//
// On top of the cost model sits a deterministic fault model (FaultPlan):
// scheduled outage windows, degraded-bandwidth intervals and a seeded
// per-message drop probability, all evaluated against the virtual SimClock
// so every fault schedule is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simclock.hpp"

namespace aide::netsim {

struct LinkParams {
  // Raw link bandwidth in bits per second.
  double bandwidth_bps = 11e6;
  // Round-trip time of a zero-payload request/response pair.
  SimDuration null_rtt = sim_us(2400);
  // Fraction of one-way latency added as uniform jitter (0 = deterministic).
  double jitter_fraction = 0.0;
  // Seed for the jitter stream; irrelevant when jitter_fraction == 0.
  std::uint64_t jitter_seed = 42;

  // The paper's measured link (WaveLAN, 11 Mbps, 2.4 ms null RTT).
  static LinkParams wavelan() noexcept { return LinkParams{}; }

  // A wired 100 Mbps LAN, used by the link-quality ablation bench.
  static LinkParams fast_ethernet() noexcept {
    return LinkParams{.bandwidth_bps = 100e6, .null_rtt = sim_us(200)};
  }

  // A slow wide-area cellular-class link.
  static LinkParams cellular() noexcept {
    return LinkParams{.bandwidth_bps = 384e3, .null_rtt = sim_ms(120)};
  }
};

// Side-effect-free cost probes: candidate evaluation (partitioner, emulator)
// must be able to price a hypothetical message without polluting the link's
// traffic accounting or consuming its jitter stream.
[[nodiscard]] inline SimDuration estimate_one_way_cost(
    const LinkParams& p, std::uint64_t payload_bytes) noexcept {
  const double serialization_s =
      static_cast<double>(payload_bytes) * 8.0 / p.bandwidth_bps;
  return p.null_rtt / 2 + static_cast<SimDuration>(serialization_s * 1e9);
}

// Synchronous request/response estimate over `total_bytes` of payload.
// Computed from the full null RTT (not two halved legs) so an odd-nanosecond
// RTT does not lose precision to per-direction truncation.
[[nodiscard]] inline SimDuration estimate_rpc_cost(
    const LinkParams& p, std::uint64_t total_bytes) noexcept {
  const double serialization_s =
      static_cast<double>(total_bytes) * 8.0 / p.bandwidth_bps;
  return p.null_rtt + static_cast<SimDuration>(serialization_s * 1e9);
}

// A half-open [begin, end) interval during which the link delivers nothing.
struct OutageWindow {
  SimTime begin = 0;
  SimTime end = 0;

  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
};

// A half-open [begin, end) interval during which the link runs at a fraction
// of its nominal bandwidth (latency is unchanged; only serialization slows).
struct DegradedWindow {
  SimTime begin = 0;
  SimTime end = 0;
  double bandwidth_factor = 1.0;

  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
};

// Which direction of a request/response exchange a transmission belongs to.
// The fault model can target the reply leg alone (reply_drop_probability),
// which is what exercises at-most-once dedup end-to-end: the request executes
// but its acknowledgement is lost.
enum class Leg : std::uint8_t { request, reply };

// A deterministic, seedable fault schedule. A default-constructed plan is
// inert: every message is delivered at the nominal cost and the link behaves
// bit-for-bit like the fault-free model.
struct FaultPlan {
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  std::vector<OutageWindow> outages;
  std::vector<DegradedWindow> degraded;
  // Probability that an otherwise-deliverable message is lost in transit.
  double drop_probability = 0.0;
  // Probability that a reply-leg message alone is lost in transit.
  double reply_drop_probability = 0.0;
  // Seed for the drop stream; only consumed when a drop probability > 0.
  std::uint64_t drop_seed = 0xD0D0;
  // Link death window [dead_after, revive_at): nothing is delivered inside
  // it. revive_at == kNever makes the death permanent (PR 1 semantics);
  // anything earlier models a surrogate that recovers and can be re-admitted.
  SimTime dead_after = kNever;
  SimTime revive_at = kNever;
  // Repeating outage schedule: when outage_period > 0, the link is down
  // during [phase + k*period, phase + k*period + duration) for every k >= 0.
  //
  // Phase edge: the schedule only exists from `outage_phase` onward — for
  // now < outage_phase the repeating term contributes nothing (always-up),
  // because is_down() never evaluates the modulo for negative offsets. A
  // flap schedule that should start with the link up therefore sets `phase`
  // to the first down-edge; one that starts down sets phase = 0 (the k = 0
  // window then begins at t = 0).
  //
  // Interaction with the death window: is_down() ORs all terms, so a
  // repeating schedule composes with [dead_after, revive_at) — the link is
  // down inside the death window even between flap windows, and a flap
  // window that straddles revive_at keeps the link down past the revival
  // until that window's duration elapses. Death refuses delivery; it does
  // not pause or re-anchor the flap phase.
  SimDuration outage_period = 0;
  SimDuration outage_duration = 0;
  SimTime outage_phase = 0;
  // Message-level chaos: probabilities that a delivered message arrives
  // corrupted (one byte flipped), duplicated (delivered twice), or reordered
  // (a stale retransmit of the previous message arrives in its place). All
  // three draw from one seeded stream separate from the drop stream.
  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  std::uint64_t chaos_seed = 0xC4A05;

  [[nodiscard]] bool enabled() const noexcept {
    return !outages.empty() || !degraded.empty() || drop_probability > 0.0 ||
           reply_drop_probability > 0.0 || dead_after != kNever ||
           outage_period > 0 || corrupt_probability > 0.0 ||
           duplicate_probability > 0.0 || reorder_probability > 0.0;
  }
};

// Composes a repeated connect/disconnect ("flap") schedule onto `base`: the
// link goes down at `first_down`, stays down for `down_for`, comes back for
// `up_for`, and repeats forever. Everything before `first_down` is up (the
// phase edge documented on FaultPlan). Other fields of `base` — death
// window, drop/chaos probabilities, one-shot outages — are preserved and
// compose by OR with the flap windows.
[[nodiscard]] inline FaultPlan make_flap_plan(SimTime first_down,
                                              SimDuration down_for,
                                              SimDuration up_for,
                                              FaultPlan base = {}) {
  base.outage_phase = first_down;
  base.outage_duration = down_for;
  base.outage_period = down_for + up_for;
  return base;
}

// Cumulative traffic accounting for one link.
struct LinkStats {
  std::uint64_t messages = 0;  // transmissions that made it onto the air
  std::uint64_t bytes = 0;
  SimDuration busy_time = 0;
  // Per-op accounting for batched transports: logical operations carried by
  // delivered request frames. With per-op framing this tracks request
  // messages 1:1; a batching transport reports N ops per frame, so
  // ops_carried / request frames is the link-level coalescing ratio.
  std::uint64_t ops_carried = 0;
  // Fault accounting (all zero under an inert FaultPlan).
  std::uint64_t messages_dropped = 0;  // transmitted but lost in transit
  std::uint64_t bytes_dropped = 0;
  std::uint64_t link_down_failures = 0;  // sends refused: link down/dead
  // Chaos accounting (all zero unless chaos probabilities are set).
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;

  void reset() noexcept { *this = LinkStats{}; }

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

class Link {
 public:
  // The outcome of attempting one transmission under the fault model. The
  // chaos flags describe what the network did to a delivered message; the
  // transport (rpc::Endpoint) implements the corresponding semantics.
  struct Delivery {
    bool delivered = false;
    SimDuration cost = 0;  // airtime consumed (0 when the link was down)
    bool corrupted = false;   // arrives with one byte flipped
    bool duplicated = false;  // arrives twice (second airtime already charged)
    bool reordered = false;   // a stale retransmit arrives in its place
    std::uint64_t chaos_salt = 0;  // picks the flipped byte when corrupted
  };

  explicit Link(LinkParams params = LinkParams::wavelan()) noexcept
      : params_(params),
        jitter_rng_(params.jitter_seed),
        drop_rng_(FaultPlan{}.drop_seed),
        chaos_rng_(FaultPlan{}.chaos_seed) {}

  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  // Called by the transport after a delivered request frame to record how
  // many logical operations it carried (1 for a legacy frame, N for a batch).
  void note_ops(std::uint64_t n) noexcept { stats_.ops_carried += n; }

  void set_fault_plan(FaultPlan plan) {
    plan_ = std::move(plan);
    drop_rng_.reseed(plan_.drop_seed);
    chaos_rng_.reseed(plan_.chaos_seed);
  }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  // Whether the link delivers anything at virtual time `now`.
  [[nodiscard]] bool is_down(SimTime now) const noexcept {
    if (now >= plan_.dead_after &&
        (plan_.revive_at == FaultPlan::kNever || now < plan_.revive_at)) {
      return true;
    }
    for (const OutageWindow& w : plan_.outages) {
      if (w.contains(now)) return true;
    }
    if (plan_.outage_period > 0 && now >= plan_.outage_phase) {
      const SimDuration into = (now - plan_.outage_phase) % plan_.outage_period;
      if (into < plan_.outage_duration) return true;
    }
    return false;
  }

  // Time for one message of `payload_bytes` to cross the link one way,
  // assuming delivery (the fault-free charge path).
  [[nodiscard]] SimDuration one_way_cost(std::uint64_t payload_bytes) noexcept {
    return charge(payload_bytes, 1.0);
  }

  // Fault-aware transmission attempt at virtual time `now`. A down link
  // refuses the send outright (no airtime); a dropped message consumes its
  // full airtime but is not delivered. With an inert FaultPlan this is
  // exactly one_way_cost: same cost, same jitter stream, same accounting.
  //
  // Draw-order discipline: every new probability field draws from its stream
  // only when it is nonzero, so a plan that leaves the new fields at their
  // defaults consumes the drop stream exactly as PR 1 did.
  [[nodiscard]] Delivery try_one_way(std::uint64_t payload_bytes, SimTime now,
                                     Leg leg = Leg::request) noexcept {
    if (is_down(now)) {
      stats_.link_down_failures += 1;
      return Delivery{false, 0};
    }
    const double factor = bandwidth_factor_at(now);
    const SimDuration cost = charge(payload_bytes, factor);
    if (plan_.drop_probability > 0.0 &&
        drop_rng_.next_double() < plan_.drop_probability) {
      stats_.messages_dropped += 1;
      stats_.bytes_dropped += payload_bytes;
      return Delivery{false, cost};
    }
    if (leg == Leg::reply && plan_.reply_drop_probability > 0.0 &&
        drop_rng_.next_double() < plan_.reply_drop_probability) {
      stats_.messages_dropped += 1;
      stats_.bytes_dropped += payload_bytes;
      return Delivery{false, cost};
    }
    Delivery d{true, cost};
    // Draw each chaos stream unconditionally (when armed) so outcomes do not
    // shift later draws; then resolve at most one effect per message.
    const bool corrupt = plan_.corrupt_probability > 0.0 &&
                         chaos_rng_.next_double() < plan_.corrupt_probability;
    const bool reorder = plan_.reorder_probability > 0.0 &&
                         chaos_rng_.next_double() < plan_.reorder_probability;
    const bool duplicate =
        plan_.duplicate_probability > 0.0 &&
        chaos_rng_.next_double() < plan_.duplicate_probability;
    if (corrupt) {
      d.corrupted = true;
      d.chaos_salt = chaos_rng_.next_u64();
      stats_.messages_corrupted += 1;
    } else if (reorder) {
      d.reordered = true;
      stats_.messages_reordered += 1;
    } else if (duplicate) {
      d.duplicated = true;
      stats_.messages_duplicated += 1;
      // The second copy occupies the air too.
      d.cost += charge(payload_bytes, factor);
    }
    return d;
  }

  // Side-effect-free probe of the nominal (fault-free, jitter-free) cost.
  [[nodiscard]] SimDuration estimate_one_way_cost(
      std::uint64_t payload_bytes) const noexcept {
    return netsim::estimate_one_way_cost(params_, payload_bytes);
  }

  // Time for a synchronous request/response exchange.
  [[nodiscard]] SimDuration round_trip_cost(std::uint64_t request_bytes,
                                            std::uint64_t response_bytes) noexcept {
    return one_way_cost(request_bytes) + one_way_cost(response_bytes);
  }

 private:
  // Computes and accounts the cost of one transmission. `bandwidth_factor`
  // scales the serialization term (degraded windows); 1.0 reproduces the
  // nominal model exactly.
  [[nodiscard]] SimDuration charge(std::uint64_t payload_bytes,
                                   double bandwidth_factor) noexcept {
    const double serialization_s = static_cast<double>(payload_bytes) * 8.0 /
                                   (params_.bandwidth_bps * bandwidth_factor);
    SimDuration cost = params_.null_rtt / 2 +
                       static_cast<SimDuration>(serialization_s * 1e9);
    if (params_.jitter_fraction > 0.0) {
      const double j = jitter_rng_.next_double() * params_.jitter_fraction;
      cost += static_cast<SimDuration>(static_cast<double>(cost) * j);
    }
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    stats_.busy_time += cost;
    return cost;
  }

  [[nodiscard]] double bandwidth_factor_at(SimTime now) const noexcept {
    for (const DegradedWindow& w : plan_.degraded) {
      if (w.contains(now) && w.bandwidth_factor > 0.0) {
        return w.bandwidth_factor;
      }
    }
    return 1.0;
  }

  LinkParams params_;
  LinkStats stats_;
  FaultPlan plan_;
  Rng jitter_rng_;
  Rng drop_rng_;
  Rng chaos_rng_;
};

}  // namespace aide::netsim
