// RPC endpoint: the remote-execution boundary between two VMs.
//
// Each VM owns one Endpoint; connect() cross-wires a pair. An outgoing
// operation is encoded to bytes, charged against the simulated link, decoded
// by the peer endpoint, executed on the peer VM (possibly recursing back —
// the paper's surrogate transparently refers back to the client for native
// methods and static data), and the response travels the same way.
//
// The endpoint also implements:
//  * reference translation over its RefMap tables (paper 3.2),
//  * object migration with a two-section encoding that tolerates reference
//    cycles among co-migrated objects,
//  * the distributed-GC release protocol ("a simple distributed garbage
//    collection scheme", paper section 4),
//  * fault tolerance: bounded retry-with-backoff against the link's
//    FaultPlan, at-most-once execution via a sequence-numbered reply cache,
//    and local-fallback recovery when the peer is unrecoverably gone,
//  * crash-consistent transport: every message travels in a CRC32-checked
//    frame carrying the sender's migration epoch and sequence number, so
//    corrupted frames are rejected (and retried), duplicated frames are
//    absorbed by the reply cache, and stale/reordered frames from a previous
//    exchange or epoch are fenced instead of decoded,
//  * two-phase object migration (PREPARE stages raw bytes, COMMIT adopts
//    them atomically) so a link death at any message boundary of a transfer
//    rolls back to bit-identical pre-offload state,
//  * adaptive failure detection: a Jacobson-style RTT estimator over the
//    transport legs shortens the retry timeout once samples exist, and
//    ping() gives the platform an idle-period heartbeat probe.
//
// Execution is synchronous and serial, matching the paper's emulator model:
// "the two VMs do not execute application code simultaneously".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "netsim/link.hpp"
#include "rpc/refmap.hpp"
#include "rpc/serializer.hpp"
#include "vm/remote.hpp"
#include "vm/vm.hpp"

namespace aide::rpc {

struct EndpointStats {
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_served = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t releases_sent = 0;
  std::uint64_t migrations_sent = 0;
  std::uint64_t objects_migrated_out = 0;
  std::uint64_t bytes_migrated_out = 0;
  // Fault-tolerance accounting (all zero under an inert FaultPlan).
  std::uint64_t retries = 0;          // re-sent attempts after a timeout
  std::uint64_t timeouts = 0;         // attempts that produced no response
  std::uint64_t aborted_rpcs = 0;     // RPCs abandoned as PeerUnavailable
  std::uint64_t duplicates_served = 0;  // dedup hits in the reply cache
  std::uint64_t recovered_rpcs = 0;   // RPCs completed via local fallback
  // Frame-level accounting (all zero without chaos injection).
  std::uint64_t corrupt_frames_rejected = 0;  // CRC mismatches discarded
  std::uint64_t stale_frames_fenced = 0;   // old-seq/old-epoch frames fenced
  std::uint64_t duplicate_frames_dropped = 0;  // redundant copies discarded
  std::uint64_t heartbeats_sent = 0;  // idle-period ping() probes

  friend bool operator==(const EndpointStats&, const EndpointStats&) = default;
};

// Bounded retry-with-backoff for one RPC attempt sequence. All delays are
// virtual time charged to the calling VM's clock.
struct RetryPolicy {
  int max_attempts = 4;
  // How long the sender waits for a response before declaring the attempt
  // lost. With `adaptive` set this is the upper bound (and the pre-sample
  // default); the effective timeout follows the RTT estimator.
  SimDuration timeout = sim_ms(50);
  // Exponential backoff between attempts.
  SimDuration backoff_initial = sim_ms(25);
  double backoff_multiplier = 2.0;
  SimDuration backoff_max = sim_ms(400);
  // Jacobson-style adaptive timeout: srtt + rtt_dev_multiplier * rttvar,
  // clamped to [min_timeout, timeout]. Timeouts are only charged on genuine
  // delivery failure in this simulation, so adapting can only shorten the
  // stall a failure costs, never cause a spurious abort.
  bool adaptive = true;
  double rtt_dev_multiplier = 4.0;
  SimDuration min_timeout = sim_ms(2);
};

// EWMA mean + deviation of the transport round-trip (request leg + reply
// leg, excluding remote execution), per Jacobson's TCP RTO estimator:
// gain 1/8 on the mean, 1/4 on the deviation.
struct RttEstimator {
  double srtt = 0.0;
  double rttvar = 0.0;
  bool primed = false;

  void sample(SimDuration rtt) noexcept {
    const double r = static_cast<double>(rtt);
    if (!primed) {
      srtt = r;
      rttvar = r / 2.0;
      primed = true;
      return;
    }
    const double err = r - srtt;
    srtt += err / 8.0;
    const double abs_err = err < 0 ? -err : err;
    rttvar += (abs_err - rttvar) / 4.0;
  }
};

// Message-boundary timestamps of one two-phase migration, recorded so the
// chaos harness can aim link deaths at every boundary of a transfer.
struct MigrationTrace {
  std::uint32_t epoch = 0;
  std::size_t objects = 0;
  bool committed = false;
  SimTime begin = 0;          // entering migrate_objects (before PREPARE)
  SimTime prepare_acked = 0;  // PREPARE response received
  SimTime commit_acked = 0;   // COMMIT response received
};

class Endpoint final : public vm::RemotePeer, private RefTranslator {
 public:
  Endpoint(vm::Vm& local_vm, netsim::Link& link);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // Cross-wires two endpoints and attaches them as their VMs' peers.
  static void connect(Endpoint& a, Endpoint& b);

  // Severs the pair in both directions: both VMs lose their peer, both
  // RefMaps drop their translations and reply caches are flushed. After a
  // disconnect every surviving object must be made local (the platform's
  // recovery path does exactly that) — stale stubs simply become
  // unreachable garbage.
  void disconnect();

  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }
  [[nodiscard]] vm::Vm& local_vm() noexcept { return vm_; }
  [[nodiscard]] RefMap& refs() noexcept { return refs_; }
  [[nodiscard]] const EndpointStats& stats() const noexcept { return stats_; }

  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  // The timeout the next attempt would charge: the adaptive Jacobson RTO
  // once the estimator is primed, the configured fixed timeout before that
  // (or whenever adaptivity is off).
  [[nodiscard]] SimDuration effective_timeout() const noexcept;
  [[nodiscard]] const RttEstimator& rtt_estimator() const noexcept {
    return rtt_;
  }

  // The current migration-epoch fencing token. Frames from older epochs are
  // rejected; each migrate_objects() bumps it, and the platform bumps it
  // explicitly when re-admitting a recovered surrogate.
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  void advance_epoch() noexcept { epoch_ += 1; }

  // Heartbeat probe: a null RPC round trip. Returns false (after charging
  // the full retry budget) when the peer is unreachable; never throws.
  bool ping();

  // Virtual time of the last successful exchange with the peer, in either
  // direction. Drives the platform's idle-period heartbeat scheduling.
  [[nodiscard]] SimTime last_contact() const noexcept { return last_contact_; }

  // Message-boundary traces of every migration this endpoint initiated
  // (including aborted ones, with committed == false).
  [[nodiscard]] const std::vector<MigrationTrace>& migrations() const noexcept {
    return migrations_;
  }

  // Installed on the client endpoint by the platform: invoked when an RPC is
  // abandoned at the top level; returns true once every surviving object is
  // local again so the failed operation can be completed locally.
  void set_peer_failure_handler(std::function<bool()> handler) {
    peer_failure_handler_ = std::move(handler);
  }

  // Retrieves (and consumes) the reply this endpoint served for the peer's
  // sequence number `seq`, if it is still cached. The recovery path uses it
  // to salvage an executed-but-undelivered response instead of running the
  // call twice. In-process stand-in for a recovery-channel cache flush.
  std::optional<std::vector<std::uint8_t>> take_cached_response(
      std::uint64_t seq);

  // --- vm::RemotePeer (outgoing operations) --------------------------------

  vm::Value invoke(ObjectId target, ClassId cls, MethodId method,
                   std::span<const vm::Value> args) override;
  vm::Value invoke_static(ClassId cls, MethodId method,
                          std::span<const vm::Value> args) override;
  vm::Value get_field(ObjectId target, FieldId field) override;
  void put_field(ObjectId target, FieldId field, const vm::Value& v) override;
  vm::Value get_static(ClassId cls, std::uint32_t slot) override;
  void put_static(ClassId cls, std::uint32_t slot,
                  const vm::Value& v) override;
  vm::Value array_get(ObjectId target, std::int64_t index) override;
  void array_put(ObjectId target, std::int64_t index,
                 const vm::Value& v) override;
  std::int64_t array_length(ObjectId target) override;
  std::string chars_read(ObjectId target, std::int64_t offset,
                         std::int64_t length) override;
  void chars_write(ObjectId target, std::int64_t offset,
                   std::string_view data) override;
  void release(std::span<const ObjectId> ids) override;

  // Offloads the given local objects to the peer VM. Returns the number of
  // payload bytes shipped. Stubs are left behind; the peer exports the
  // adopted objects back so future references resolve. On PeerUnavailable
  // the batch is reinstated locally (unless the peer already adopted it) and
  // the error propagates for the platform to handle.
  std::uint64_t migrate_objects(std::span<const ObjectId> ids);

 private:
  enum class Op : std::uint8_t {
    invoke = 1,
    invoke_static = 2,
    get_field = 3,
    put_field = 4,
    get_static = 5,
    put_static = 6,
    array_get = 7,
    array_put = 8,
    array_len = 9,
    chars_read = 10,
    chars_write = 11,
    release = 12,
    migrate_prepare = 13,  // stage the encoded batch (no heap effects)
    migrate_commit = 14,   // atomically adopt the staged batch
    ping = 15,             // heartbeat: reply immediately, no side effects
  };

  // RefTranslator.
  WireRef translate_out(vm::ObjectRef ref) override;
  vm::ObjectRef translate_in(const WireRef& wire) override;

  // Sends an encoded request across the link with bounded retry and returns
  // the decoded-raw response bytes. Throws VmError if the peer reported one,
  // PeerUnavailable when the retry budget is exhausted.
  std::vector<std::uint8_t> transact(ByteWriter request);

  // transact(), but an unrecoverable peer failure at the top level triggers
  // platform recovery and returns nullopt so the caller completes the
  // (idempotent) operation against now-local state.
  std::optional<std::vector<std::uint8_t>> transact_or_recover(
      ByteWriter request);

  // Recovery tail shared by invoke/invoke_static: salvages a cached reply or
  // rolls back and re-executes locally. Must be called from a catch block.
  vm::Value recover_invoke(const PeerUnavailable& e, std::size_t mark,
                           const std::function<vm::Value()>& rerun_local);

  // Receiving side of the framed transport: validates the CRC, fences stale
  // seq/epoch frames, replays the cached reply for a retried sequence number
  // and serves fresh requests. Returns the framed response, or nullopt when
  // the frame was rejected — indistinguishable from a lost message to the
  // sender, which times out and retries.
  std::optional<std::vector<std::uint8_t>> receive_frame(
      std::span<const std::uint8_t> wire);

  // Serves one request on the receiving side.
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> request);

  // Clears connection-scoped transport state (staged migration batch,
  // retransmission copies) on disconnect.
  void drop_transport_state();

  [[nodiscard]] bool fault_tolerant() const noexcept {
    return link_.fault_plan().enabled();
  }

  // Resolves an incoming wire target (our export handle) to a local object.
  ObjectId resolve_target(ByteReader& r);
  void write_target(ByteWriter& w, ObjectId id);

  vm::Vm& vm_;
  netsim::Link& link_;
  Endpoint* peer_ = nullptr;
  RefMap refs_;
  EndpointStats stats_;
  RetryPolicy retry_;
  std::function<bool()> peer_failure_handler_;

  // Outgoing sequence numbers, carried in the frame header.
  std::uint64_t next_seq_ = 0;
  // Migration-epoch fencing token. Starts at 1 on both sides; each migration
  // bumps the initiator's copy and the receiver adopts the higher value from
  // the frame header, so frames from before an offload are always stale.
  std::uint32_t epoch_ = 1;
  // Single-entry reply cache: execution is synchronous and serial, so only
  // the most recent request can ever be retried.
  std::uint64_t last_served_seq_ = 0;
  std::vector<std::uint8_t> cached_response_;
  bool has_cached_response_ = false;
  // Last frames sent in each direction: what a reordered delivery presents
  // to the receiver in place of the in-flight frame.
  std::vector<std::uint8_t> last_req_frame_;
  std::vector<std::uint8_t> last_resp_frame_;
  // PREPARE-staged migration batch: raw encoded bytes, not yet adopted into
  // the heap. Dropped on disconnect, superseded by any higher-epoch PREPARE.
  std::vector<std::uint8_t> staged_migration_;
  std::uint32_t staged_epoch_ = 0;
  bool has_staged_migration_ = false;
  // Adaptive failure detection.
  RttEstimator rtt_;
  SimTime last_contact_ = 0;
  std::vector<MigrationTrace> migrations_;
  // Depth of serve() frames on this endpoint; recovery must only run at the
  // top level, never while a peer frame is live above us on the stack.
  int serving_depth_ = 0;
};

}  // namespace aide::rpc
