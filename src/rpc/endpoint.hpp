// RPC endpoint: the remote-execution boundary between two VMs.
//
// Each VM owns one Endpoint; connect() cross-wires a pair. An outgoing
// operation is encoded to bytes, charged against the simulated link, decoded
// by the peer endpoint, executed on the peer VM (possibly recursing back —
// the paper's surrogate transparently refers back to the client for native
// methods and static data), and the response travels the same way.
//
// The endpoint also implements:
//  * reference translation over its RefMap tables (paper 3.2),
//  * object migration with a two-section encoding that tolerates reference
//    cycles among co-migrated objects,
//  * the distributed-GC release protocol ("a simple distributed garbage
//    collection scheme", paper section 4),
//  * fault tolerance: bounded retry-with-backoff against the link's
//    FaultPlan, at-most-once execution via a sequence-numbered reply cache,
//    and local-fallback recovery when the peer is unrecoverably gone,
//  * crash-consistent transport: every message travels in a CRC32-checked
//    frame carrying the sender's migration epoch and sequence number, so
//    corrupted frames are rejected (and retried), duplicated frames are
//    absorbed by the reply cache, and stale/reordered frames from a previous
//    exchange or epoch are fenced instead of decoded,
//  * two-phase object migration (PREPARE stages raw bytes, COMMIT adopts
//    them atomically) so a link death at any message boundary of a transfer
//    rolls back to bit-identical pre-offload state,
//  * adaptive failure detection: a Jacobson-style RTT estimator over the
//    transport legs shortens the retry timeout once samples exist, and
//    ping() gives the platform an idle-period heartbeat probe,
//  * batched, pipelined transport (BatchPolicy, on by default): void ops are
//    write-behind and coalesce with the next synchronous op into one
//    multi-op frame under a single [crc][epoch][seq] header; remote reads
//    fetch whole-object snapshots plus their MINCUT group neighbors
//    (read-ahead); pure-write flushes under an inert fault plan overlap
//    their acknowledgement with subsequent compute in virtual time. A
//    timeout voids and retries a multi-op frame as a unit, and the serving
//    side executes it inside one journal scope so rollback is batch-atomic.
//
// Execution is synchronous and serial, matching the paper's emulator model:
// "the two VMs do not execute application code simultaneously".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/batch_oracle.hpp"
#include "common/error.hpp"
#include "netsim/link.hpp"
#include "rpc/partition_detector.hpp"
#include "rpc/refmap.hpp"
#include "rpc/serializer.hpp"
#include "vm/redo_log.hpp"
#include "vm/remote.hpp"
#include "vm/vm.hpp"

namespace aide::rpc {

// Write-behind batching and read-ahead policy for one endpoint.
//
// With `enabled`, void operations (put_field / put_static / array_put /
// chars_write) are deferred into a pending queue instead of paying a round
// trip each: the queue is coalesced into one multi-op frame that goes out
// when a synchronous operation rides along, when the queue reaches
// `max_ops`, or at a yield point (GC entry, migration, the end of serving an
// incoming invoke). A queue of exactly one op flushes as a bit-identical
// legacy frame; an empty flush sends nothing.
//
// With `read_ahead`, a remote get_field miss fetches a snapshot of the whole
// target object — plus up to `prefetch_limit` not-yet-cached neighbors from
// its MINCUT partition group — in one frame; subsequent reads of those
// objects are served locally until the peer next has a chance to execute
// code (any outgoing invoke, any incoming frame, migration, flush).
struct BatchPolicy {
  bool enabled = true;
  std::size_t max_ops = 32;
  bool read_ahead = true;
  std::size_t prefetch_limit = 4;
  // Proven-deep pipelining: while an installed BatchSafetyOracle proves every
  // pair of queued stores commutes, the queue may grow to this depth before a
  // forced flush (values <= max_ops, and the default 0, disable deepening).
  // Without an oracle the proof never holds, so this knob is inert.
  std::size_t max_ops_proven = 0;
};

struct EndpointStats {
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_served = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t releases_sent = 0;
  std::uint64_t migrations_sent = 0;
  std::uint64_t objects_migrated_out = 0;
  std::uint64_t bytes_migrated_out = 0;
  // Fault-tolerance accounting (all zero under an inert FaultPlan).
  std::uint64_t retries = 0;          // re-sent attempts after a timeout
  std::uint64_t timeouts = 0;         // attempts that produced no response
  std::uint64_t aborted_rpcs = 0;     // RPCs abandoned as PeerUnavailable
  std::uint64_t duplicates_served = 0;  // dedup hits in the reply cache
  std::uint64_t recovered_rpcs = 0;   // RPCs completed via local fallback
  // Frame-level accounting (all zero without chaos injection).
  std::uint64_t corrupt_frames_rejected = 0;  // CRC mismatches discarded
  std::uint64_t stale_frames_fenced = 0;   // old-seq/old-epoch frames fenced
  std::uint64_t duplicate_frames_dropped = 0;  // redundant copies discarded
  std::uint64_t heartbeats_sent = 0;  // idle-period ping() probes
  // Batched-transport accounting (rpcs_sent counts frames, ops_sent counts
  // logical operations; the gap between them is what batching saved).
  std::uint64_t ops_sent = 0;         // logical data ops issued by the VM
  std::uint64_t batches_sent = 0;     // multi-op frames sent
  std::uint64_t batched_ops = 0;      // ops that travelled inside those frames
  std::uint64_t readahead_hits = 0;   // get_fields served from the snapshot cache
  std::uint64_t snapshots_fetched = 0;   // whole-object snapshots shipped
  std::uint64_t objects_prefetched = 0;  // snapshots beyond the demanded one
  std::uint64_t pending_applied_locally = 0;  // write-behind ops recovered locally
  // Batch-safety accounting (all zero without a BatchSafetyOracle installed).
  std::uint64_t unproven_stores_flushed = 0;  // stores written through eagerly
  std::uint64_t unproven_riders_flushed = 0;  // pre-invoke queue flushes
  std::uint64_t prefetches_filtered = 0;  // group mates pruned as ineligible
  // Disconnected-operation accounting (all zero unless the platform's
  // DisconnectPolicy is enabled and a partition actually happens).
  std::uint64_t disconnects_detected = 0;   // partitions the detector tripped
  std::uint64_t ops_journaled = 0;          // mutations captured while away
  std::uint64_t journal_coalesced = 0;      // of those, absorbed by coalescing
  std::uint64_t reconciles_completed = 0;   // redo logs replayed exactly-once
  std::uint64_t reconcile_replayed_ops = 0;  // coalesced entries shipped

  // Accumulates another endpoint's counters into this one. The multi-session
  // surrogate server keeps its transport stats namespaced per session (each
  // session owns its endpoints, so its counters never mix with a neighbor's)
  // and aggregates with this — summing one session's stats into a
  // zero-initialized accumulator reproduces that session's stats
  // byte-identically, so the single-session output is unchanged by the
  // aggregation layer.
  EndpointStats& operator+=(const EndpointStats& o) noexcept {
    rpcs_sent += o.rpcs_sent;
    rpcs_served += o.rpcs_served;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    releases_sent += o.releases_sent;
    migrations_sent += o.migrations_sent;
    objects_migrated_out += o.objects_migrated_out;
    bytes_migrated_out += o.bytes_migrated_out;
    retries += o.retries;
    timeouts += o.timeouts;
    aborted_rpcs += o.aborted_rpcs;
    duplicates_served += o.duplicates_served;
    recovered_rpcs += o.recovered_rpcs;
    corrupt_frames_rejected += o.corrupt_frames_rejected;
    stale_frames_fenced += o.stale_frames_fenced;
    duplicate_frames_dropped += o.duplicate_frames_dropped;
    heartbeats_sent += o.heartbeats_sent;
    ops_sent += o.ops_sent;
    batches_sent += o.batches_sent;
    batched_ops += o.batched_ops;
    readahead_hits += o.readahead_hits;
    snapshots_fetched += o.snapshots_fetched;
    objects_prefetched += o.objects_prefetched;
    pending_applied_locally += o.pending_applied_locally;
    unproven_stores_flushed += o.unproven_stores_flushed;
    unproven_riders_flushed += o.unproven_riders_flushed;
    prefetches_filtered += o.prefetches_filtered;
    disconnects_detected += o.disconnects_detected;
    ops_journaled += o.ops_journaled;
    journal_coalesced += o.journal_coalesced;
    reconciles_completed += o.reconciles_completed;
    reconcile_replayed_ops += o.reconcile_replayed_ops;
    return *this;
  }

  friend bool operator==(const EndpointStats&, const EndpointStats&) = default;
};

// Bounded retry-with-backoff for one RPC attempt sequence. All delays are
// virtual time charged to the calling VM's clock.
struct RetryPolicy {
  int max_attempts = 4;
  // How long the sender waits for a response before declaring the attempt
  // lost. With `adaptive` set this is the upper bound (and the pre-sample
  // default); the effective timeout follows the RTT estimator.
  SimDuration timeout = sim_ms(50);
  // Exponential backoff between attempts.
  SimDuration backoff_initial = sim_ms(25);
  double backoff_multiplier = 2.0;
  SimDuration backoff_max = sim_ms(400);
  // Jacobson-style adaptive timeout: srtt + rtt_dev_multiplier * rttvar,
  // clamped to [min_timeout, timeout]. Timeouts are only charged on genuine
  // delivery failure in this simulation, so adapting can only shorten the
  // stall a failure costs, never cause a spurious abort.
  bool adaptive = true;
  double rtt_dev_multiplier = 4.0;
  SimDuration min_timeout = sim_ms(2);
};

// EWMA mean + deviation of the transport round-trip (request leg + reply
// leg, excluding remote execution), per Jacobson's TCP RTO estimator:
// gain 1/8 on the mean, 1/4 on the deviation.
struct RttEstimator {
  double srtt = 0.0;
  double rttvar = 0.0;
  bool primed = false;

  void sample(SimDuration rtt) noexcept {
    const double r = static_cast<double>(rtt);
    if (!primed) {
      srtt = r;
      rttvar = r / 2.0;
      primed = true;
      return;
    }
    const double err = r - srtt;
    srtt += err / 8.0;
    const double abs_err = err < 0 ? -err : err;
    rttvar += (abs_err - rttvar) / 4.0;
  }
};

// Message-boundary timestamps of one two-phase migration, recorded so the
// chaos harness can aim link deaths at every boundary of a transfer.
struct MigrationTrace {
  std::uint32_t epoch = 0;
  std::size_t objects = 0;
  bool committed = false;
  SimTime begin = 0;          // entering migrate_objects (before PREPARE)
  SimTime prepare_acked = 0;  // PREPARE response received
  SimTime commit_acked = 0;   // COMMIT response received
};

// Message-boundary timestamps of one redo-log reconcile (the disconnected
// client replaying its DisconnectLog against the revived surrogate), recorded
// for the same reason: the chaos harness aims link deaths at each boundary.
struct ReconcileTrace {
  std::uint32_t epoch = 0;      // fresh epoch this reconcile fenced under
  std::size_t entries = 0;      // coalesced redo entries shipped
  bool committed = false;       // COMMIT acked
  bool applied_on_peer = false;  // peer applied it (even if the ack was lost)
  SimTime begin = 0;            // entering reconcile_log (before PREPARE)
  SimTime prepare_acked = 0;    // PREPARE response received
  SimTime commit_acked = 0;     // COMMIT response received
};

class Endpoint final : public vm::RemotePeer, private RefTranslator {
 public:
  Endpoint(vm::Vm& local_vm, netsim::Link& link);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // Cross-wires two endpoints and attaches them as their VMs' peers.
  static void connect(Endpoint& a, Endpoint& b);

  // Severs the pair in both directions: both VMs lose their peer, both
  // RefMaps drop their translations and reply caches are flushed. After a
  // disconnect every surviving object must be made local (the platform's
  // recovery path does exactly that) — stale stubs simply become
  // unreachable garbage.
  void disconnect();
  // Severs the pair like disconnect() but preserves both RefMaps: used when
  // the peer is partitioned (not dead) and its heap will be reconciled with,
  // so cross-VM references must survive the episode.
  void detach_partitioned();

  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }
  [[nodiscard]] vm::Vm& local_vm() noexcept { return vm_; }
  [[nodiscard]] RefMap& refs() noexcept { return refs_; }
  [[nodiscard]] const EndpointStats& stats() const noexcept { return stats_; }

  // Session tag for multi-session surrogate serving: namespaces this
  // endpoint's stats (and its RefMap's handle space) under one session id.
  // The single-session platform never calls this — stats and handles stay
  // exactly as before.
  void set_session(SessionId id) {
    session_ = id;
    refs_.set_handle_namespace(
        static_cast<std::uint16_t>((id.value() % 0xFFFEu) + 1));
  }
  [[nodiscard]] SessionId session() const noexcept { return session_; }

  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  // Batching is on by default; turning it off (or lowering max_ops) takes
  // effect on the next operation. Disabling with ops still pending flushes
  // them first so nothing is silently dropped.
  void set_batch_policy(BatchPolicy policy);
  [[nodiscard]] const BatchPolicy& batch_policy() const noexcept {
    return batch_;
  }

  // Read-ahead groups (typically the MINCUT components of the last offload):
  // when a get_field misses the snapshot cache, the demanded object's group
  // mates are prefetched in the same frame. Each group must be sorted so the
  // candidate order — and thus the wire traffic — is deterministic.
  void set_prefetch_groups(std::vector<std::vector<ObjectId>> groups);

  // Batch-safety oracle (non-owning; the platform keeps it alive for the
  // connection's lifetime, nullptr uninstalls). Every oracle verdict is
  // consumed flush-earlier-only: a refusal sends the same ops in the same
  // order across more frames, never reorders them — so an oracle that proves
  // everything leaves the wire byte-identical to no oracle at all. Installing
  // or replacing one flushes the queue first: queued proofs don't transfer.
  void set_batch_safety(const analysis::BatchSafetyOracle* oracle);
  [[nodiscard]] const analysis::BatchSafetyOracle* batch_safety()
      const noexcept {
    return oracle_;
  }

  // Restricts read-ahead prefetch to group mates of the given classes
  // (sorted; typically StaticHints::prefetch_eligible). The demanded object
  // itself is always fetched — the filter only prunes the speculative extras.
  // An empty call clears the filter (all classes eligible again).
  void set_prefetch_eligible(std::vector<ClassId> classes);

  // The number of write-behind ops currently queued (test/bench visibility).
  [[nodiscard]] std::size_t pending_ops() const noexcept {
    return pending_.size();
  }

  // The timeout the next attempt would charge: the adaptive Jacobson RTO
  // once the estimator is primed, the configured fixed timeout before that
  // (or whenever adaptivity is off).
  [[nodiscard]] SimDuration effective_timeout() const noexcept;
  [[nodiscard]] const RttEstimator& rtt_estimator() const noexcept {
    return rtt_;
  }

  // The current migration-epoch fencing token. Frames from older epochs are
  // rejected; each migrate_objects() bumps it, and the platform bumps it
  // explicitly when re-admitting a recovered surrogate.
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  void advance_epoch() noexcept { epoch_ += 1; }

  // Heartbeat probe: a null RPC round trip. Returns false (after charging
  // the full retry budget) when the peer is unreachable; never throws.
  bool ping();

  // Virtual time of the last successful exchange with the peer, in either
  // direction. Drives the platform's idle-period heartbeat scheduling.
  [[nodiscard]] SimTime last_contact() const noexcept { return last_contact_; }

  // Message-boundary traces of every migration this endpoint initiated
  // (including aborted ones, with committed == false).
  [[nodiscard]] const std::vector<MigrationTrace>& migrations() const noexcept {
    return migrations_;
  }

  // --- disconnected operation ----------------------------------------------

  // Partition detection (off unless the platform arms it). The detector is
  // fed passively from the retry loop: any delivered frame resets it, any
  // expired attempt advances it. Suspicion never aborts an RPC by itself —
  // the platform consults partition_suspected() from its peer-failure
  // handler to choose Disconnected mode over teardown.
  void set_partition_policy(const PartitionPolicy& p) noexcept {
    detector_.set_policy(p);
  }
  [[nodiscard]] const PartitionDetector& partition_detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] bool partition_suspected() const noexcept {
    return detector_.suspected(vm_.clock().now());
  }

  // Disconnect-mode stat attribution (the redo log lives in the VM layer and
  // the mode machine in the platform; both report through the endpoint so
  // fleet aggregation sees one EndpointStats).
  void note_disconnect_detected() noexcept { stats_.disconnects_detected += 1; }
  void note_partition_stats(std::uint64_t journaled_delta,
                            std::uint64_t coalesced_delta) noexcept {
    stats_.ops_journaled += journaled_delta;
    stats_.journal_coalesced += coalesced_delta;
  }

  // Replays a DisconnectLog against the (reconnected) peer exactly-once via
  // epoch-fenced two-phase PREPARE/COMMIT: a fresh epoch fences every stale
  // frame, PREPARE stages the encoded log with no heap effects, COMMIT
  // applies it batch-atomically inside one journal scope. Returns true when
  // the peer applied the log — including the COMMIT-executed-but-ack-lost
  // case, detected the same way migration detects an adopted batch. Throws
  // PeerUnavailable when the peer is unreachable with the log NOT applied
  // (safe to retry later with the same log). Appends a ReconcileTrace either
  // way.
  bool reconcile_log(const vm::DisconnectLog& log);

  // Message-boundary traces of every reconcile this endpoint initiated
  // (including failed ones, with committed == false).
  [[nodiscard]] const std::vector<ReconcileTrace>& reconciles() const noexcept {
    return reconciles_;
  }

  // Installed on the client endpoint by the platform: invoked when an RPC is
  // abandoned at the top level; returns true once every surviving object is
  // local again so the failed operation can be completed locally.
  void set_peer_failure_handler(std::function<bool()> handler) {
    peer_failure_handler_ = std::move(handler);
  }

  // Retrieves (and consumes) the reply this endpoint served for the peer's
  // sequence number `seq`, if it is still cached. The recovery path uses it
  // to salvage an executed-but-undelivered response instead of running the
  // call twice. In-process stand-in for a recovery-channel cache flush.
  std::optional<std::vector<std::uint8_t>> take_cached_response(
      std::uint64_t seq);

  // --- vm::RemotePeer (outgoing operations) --------------------------------

  vm::Value invoke(ObjectId target, ClassId cls, MethodId method,
                   std::span<const vm::Value> args) override;
  vm::Value invoke_static(ClassId cls, MethodId method,
                          std::span<const vm::Value> args) override;
  vm::Value get_field(ObjectId target, FieldId field) override;
  void put_field(ObjectId target, FieldId field, const vm::Value& v) override;
  vm::Value get_static(ClassId cls, std::uint32_t slot) override;
  void put_static(ClassId cls, std::uint32_t slot,
                  const vm::Value& v) override;
  vm::Value array_get(ObjectId target, std::int64_t index) override;
  void array_put(ObjectId target, std::int64_t index,
                 const vm::Value& v) override;
  std::int64_t array_length(ObjectId target) override;
  std::string chars_read(ObjectId target, std::int64_t offset,
                         std::int64_t length) override;
  void chars_write(ObjectId target, std::int64_t offset,
                   std::string_view data) override;
  void release(std::span<const ObjectId> ids) override;

  // Yield-point barrier (vm::RemotePeer): sends the write-behind queue as
  // one multi-op frame (a single op as a legacy frame, nothing when empty)
  // and invalidates the read-ahead cache. Under an inert fault plan the
  // flush is pipelined — only the request leg is charged to this VM's clock;
  // the acknowledgement overlaps the compute that follows. Called from GC
  // this swallows peer failure (recovery would be re-entrant there) and
  // keeps the idempotent queue for the next top-level operation to recover.
  void flush_pending() override;

  // Offloads the given local objects to the peer VM. Returns the number of
  // payload bytes shipped. Stubs are left behind; the peer exports the
  // adopted objects back so future references resolve. On PeerUnavailable
  // the batch is reinstated locally (unless the peer already adopted it) and
  // the error propagates for the platform to handle.
  std::uint64_t migrate_objects(std::span<const ObjectId> ids);

 private:
  enum class Op : std::uint8_t {
    invoke = 1,
    invoke_static = 2,
    get_field = 3,
    put_field = 4,
    get_static = 5,
    put_static = 6,
    array_get = 7,
    array_put = 8,
    array_len = 9,
    chars_read = 10,
    chars_write = 11,
    release = 12,
    migrate_prepare = 13,  // stage the encoded batch (no heap effects)
    migrate_commit = 14,   // atomically adopt the staged batch
    ping = 15,             // heartbeat: reply immediately, no side effects
    batch = 16,       // multi-op frame: N length-prefixed single-op requests
    get_object = 17,  // read-ahead: snapshot whole objects + group neighbors
    reconcile_prepare = 18,  // stage the encoded redo log (no heap effects)
    reconcile_commit = 19,   // atomically replay the staged redo log
  };

  // One write-behind operation: the encoded legacy request (exports already
  // registered, so referenced values stay GC-rooted until the flush) plus
  // enough decoded state to re-apply the idempotent store locally when the
  // peer dies before the queue drains.
  struct PendingOp {
    Op kind = Op::put_field;
    ObjectId target;            // put_field / array_put / chars_write
    std::uint32_t key = 0;      // field id, or class id for put_static
    std::uint32_t slot = 0;     // static slot
    std::int64_t index = 0;     // array index / chars offset
    vm::Value value;
    std::string data;           // chars_write payload
    std::vector<std::uint8_t> encoded;
  };

  // RefTranslator.
  WireRef translate_out(vm::ObjectRef ref) override;
  vm::ObjectRef translate_in(const WireRef& wire) override;

  // Sends an encoded request across the link with bounded retry and returns
  // the decoded-raw response bytes. Throws VmError if the peer reported one,
  // PeerUnavailable when the retry budget is exhausted. `ops` is the number
  // of logical operations the frame carries (link-level accounting); with
  // `pipelined` and an inert fault plan the reply leg is accounted but not
  // charged to this VM's clock — the ack overlaps subsequent compute.
  std::vector<std::uint8_t> transact(ByteWriter request, std::uint32_t ops = 1,
                                     bool pipelined = false);

  // transact(), but an unrecoverable peer failure at the top level triggers
  // platform recovery and returns nullopt so the caller completes the
  // (idempotent) operation against now-local state.
  std::optional<std::vector<std::uint8_t>> transact_or_recover(
      ByteWriter request);

  // transact() with the write-behind queue riding along: the pending ops and
  // `op` coalesce into one multi-op frame (just `op`, bit-identically, when
  // the queue is empty). Returns the final sub-reply's payload with its
  // status byte stripped; a rider's remote VmError is rethrown here. On
  // success (or remote VmError — the peer owns the executed prefix either
  // way) the queue is cleared; on PeerUnavailable it is kept for recovery.
  std::vector<std::uint8_t> transact_with_pending(ByteWriter op);

  // transact_with_pending() + the recovery contract of transact_or_recover:
  // after the platform pulls state back, the queued idempotent stores are
  // re-applied locally and nullopt tells the caller to finish locally too.
  std::optional<std::vector<std::uint8_t>> transact_or_recover_with_pending(
      ByteWriter op);

  // Recovery tail shared by invoke/invoke_static: salvages a cached reply or
  // rolls back and re-executes locally. `riders` is how many write-behind
  // ops were coalesced ahead of the invoke in its frame. Must be called from
  // a catch block.
  vm::Value recover_invoke(const PeerUnavailable& e, std::size_t mark,
                           std::size_t riders,
                           const std::function<vm::Value()>& rerun_local);

  // Write-behind plumbing. send_queue drains strictly (PeerUnavailable
  // propagates, queue kept); flush_or_recover is the top-level form that
  // falls back to platform recovery plus local re-application.
  [[nodiscard]] bool defer_writes() const noexcept {
    return batch_.enabled && peer_ != nullptr;
  }
  void enqueue_pending(PendingOp rec, ByteWriter encoded);
  void send_queue();
  void flush_or_recover();
  void apply_pending_locally();

  // Batch-safety queries against the installed oracle. Store locations map
  // from the pending-op record; with no oracle, stores are trivially
  // deferrable (PR 6 semantics) and the commute proof is vacuously false.
  struct StoreLoc {
    ClassId cls;
    analysis::StoreKind kind;
    std::uint32_t member;
  };
  [[nodiscard]] StoreLoc store_loc_of(const PendingOp& rec) const;
  [[nodiscard]] bool store_proven_deferrable(const PendingOp& rec) const;
  [[nodiscard]] std::size_t effective_max_ops() const noexcept;
  [[nodiscard]] bool prefetch_mate_eligible(ObjectId id) const;

  // Read-ahead plumbing.
  void invalidate_snapshots() noexcept { snapshots_.clear(); }
  [[nodiscard]] const vm::Value* snapshot_lookup(ObjectId target,
                                                 FieldId field) const;
  std::optional<vm::Value> fetch_snapshot(ObjectId target, FieldId field);

  // Receiving side of the framed transport: validates the CRC, fences stale
  // seq/epoch frames, replays the cached reply for a retried sequence number
  // and serves fresh requests. Returns the framed response, or nullopt when
  // the frame was rejected — indistinguishable from a lost message to the
  // sender, which times out and retries.
  std::optional<std::vector<std::uint8_t>> receive_frame(
      std::span<const std::uint8_t> wire);

  // Serves one request on the receiving side (dispatches multi-op frames to
  // serve_batch, everything else to serve_one).
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> serve_one(std::span<const std::uint8_t> request);
  // Executes a multi-op frame as a unit: sub-ops run in order inside one
  // journal scope, so an abandoned nested call rolls the whole batch back
  // (no partial application); a sub-op's semantic error stops the batch and
  // travels back in that op's reply section.
  std::vector<std::uint8_t> serve_batch(std::span<const std::uint8_t> request);

  // Clears connection-scoped transport state (staged migration batch,
  // retransmission copies) on disconnect.
  void drop_transport_state();

  // Reconcile wire format. Values travel self-described (tag + payload);
  // refs as raw [id][class][kind] rather than export handles — during a
  // partition both heaps hold the same object ids (the replicas were copies),
  // so the receiver resolves an id local-first and installs a stub for
  // disconnected-era objects it has never seen.
  void write_redo_value(ByteWriter& w, const vm::Value& v,
                        const vm::DisconnectLog& log);
  vm::Value read_redo_value(ByteReader& r);
  void write_redo_entry(ByteWriter& w, const vm::RedoEntry& e,
                        const vm::DisconnectLog& log);
  // Applies the staged redo log batch-atomically (one journal scope; any
  // VmError rolls the whole replay back and rethrows).
  void apply_staged_reconcile();

  [[nodiscard]] bool fault_tolerant() const noexcept {
    return link_.fault_plan().enabled();
  }

  // Resolves an incoming wire target (our export handle) to a local object.
  ObjectId resolve_target(ByteReader& r);
  void write_target(ByteWriter& w, ObjectId id);

  vm::Vm& vm_;
  netsim::Link& link_;
  Endpoint* peer_ = nullptr;
  RefMap refs_;
  EndpointStats stats_;
  SessionId session_ = SessionId::invalid();
  RetryPolicy retry_;
  BatchPolicy batch_;
  std::function<bool()> peer_failure_handler_;

  // Batch-safety state: the installed oracle, whether every pair of queued
  // stores is proven to commute (true while empty; monotonically falls as
  // ops join the queue), and the sorted prefetch class filter.
  const analysis::BatchSafetyOracle* oracle_ = nullptr;
  bool pending_proven_ = true;
  std::vector<ClassId> prefetch_filter_;
  bool has_prefetch_filter_ = false;

  // Write-behind queue: encoded-but-unsent void ops awaiting coalescing.
  std::vector<PendingOp> pending_;
  // Read-ahead snapshot cache: whole-object field images of peer objects.
  // Valid only until the peer can next execute code; the two VMs never run
  // application code simultaneously, so every such boundary is explicit
  // (outgoing invoke, incoming frame, migration, flush) and clears it.
  std::unordered_map<ObjectId, std::vector<vm::Value>> snapshots_;
  // Prefetch groups (sorted member lists) and the member -> group index.
  std::vector<std::vector<ObjectId>> groups_;
  std::unordered_map<ObjectId, std::size_t> group_of_;

  // Outgoing sequence numbers, carried in the frame header.
  std::uint64_t next_seq_ = 0;
  // Migration-epoch fencing token. Starts at 1 on both sides; each migration
  // bumps the initiator's copy and the receiver adopts the higher value from
  // the frame header, so frames from before an offload are always stale.
  std::uint32_t epoch_ = 1;
  // Single-entry reply cache: execution is synchronous and serial, so only
  // the most recent request can ever be retried.
  std::uint64_t last_served_seq_ = 0;
  std::vector<std::uint8_t> cached_response_;
  bool has_cached_response_ = false;
  // Last frames sent in each direction: what a reordered delivery presents
  // to the receiver in place of the in-flight frame.
  std::vector<std::uint8_t> last_req_frame_;
  std::vector<std::uint8_t> last_resp_frame_;
  // PREPARE-staged migration batch: raw encoded bytes, not yet adopted into
  // the heap. Dropped on disconnect, superseded by any higher-epoch PREPARE.
  std::vector<std::uint8_t> staged_migration_;
  std::uint32_t staged_epoch_ = 0;
  bool has_staged_migration_ = false;
  // PREPARE-staged redo log (reconcile), same lifecycle as staged_migration_.
  std::vector<std::uint8_t> staged_reconcile_;
  std::uint32_t staged_reconcile_epoch_ = 0;
  bool has_staged_reconcile_ = false;
  // Highest reconcile epoch whose COMMIT this endpoint executed, so an
  // initiator whose COMMIT ack was lost can distinguish applied from
  // not-applied (the exactly-once peek, mirroring migration's adopted-peek).
  std::uint32_t last_applied_reconcile_epoch_ = 0;
  // Adaptive failure detection.
  RttEstimator rtt_;
  SimTime last_contact_ = 0;
  std::vector<MigrationTrace> migrations_;
  std::vector<ReconcileTrace> reconciles_;
  PartitionDetector detector_;
  // Depth of serve() frames on this endpoint; recovery must only run at the
  // top level, never while a peer frame is live above us on the stack.
  int serving_depth_ = 0;
};

}  // namespace aide::rpc
