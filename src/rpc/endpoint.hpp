// RPC endpoint: the remote-execution boundary between two VMs.
//
// Each VM owns one Endpoint; connect() cross-wires a pair. An outgoing
// operation is encoded to bytes, charged against the simulated link, decoded
// by the peer endpoint, executed on the peer VM (possibly recursing back —
// the paper's surrogate transparently refers back to the client for native
// methods and static data), and the response travels the same way.
//
// The endpoint also implements:
//  * reference translation over its RefMap tables (paper 3.2),
//  * object migration with a two-section encoding that tolerates reference
//    cycles among co-migrated objects,
//  * the distributed-GC release protocol ("a simple distributed garbage
//    collection scheme", paper section 4),
//  * fault tolerance: bounded retry-with-backoff against the link's
//    FaultPlan, at-most-once execution via a sequence-numbered reply cache,
//    and local-fallback recovery when the peer is unrecoverably gone.
//
// Execution is synchronous and serial, matching the paper's emulator model:
// "the two VMs do not execute application code simultaneously".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "netsim/link.hpp"
#include "rpc/refmap.hpp"
#include "rpc/serializer.hpp"
#include "vm/remote.hpp"
#include "vm/vm.hpp"

namespace aide::rpc {

struct EndpointStats {
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_served = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t releases_sent = 0;
  std::uint64_t migrations_sent = 0;
  std::uint64_t objects_migrated_out = 0;
  std::uint64_t bytes_migrated_out = 0;
  // Fault-tolerance accounting (all zero under an inert FaultPlan).
  std::uint64_t retries = 0;          // re-sent attempts after a timeout
  std::uint64_t timeouts = 0;         // attempts that produced no response
  std::uint64_t aborted_rpcs = 0;     // RPCs abandoned as PeerUnavailable
  std::uint64_t duplicates_served = 0;  // dedup hits in the reply cache
  std::uint64_t recovered_rpcs = 0;   // RPCs completed via local fallback

  friend bool operator==(const EndpointStats&, const EndpointStats&) = default;
};

// Bounded retry-with-backoff for one RPC attempt sequence. All delays are
// virtual time charged to the calling VM's clock.
struct RetryPolicy {
  int max_attempts = 4;
  // How long the sender waits for a response before declaring the attempt
  // lost.
  SimDuration timeout = sim_ms(50);
  // Exponential backoff between attempts.
  SimDuration backoff_initial = sim_ms(25);
  double backoff_multiplier = 2.0;
  SimDuration backoff_max = sim_ms(400);
};

class Endpoint final : public vm::RemotePeer, private RefTranslator {
 public:
  Endpoint(vm::Vm& local_vm, netsim::Link& link);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // Cross-wires two endpoints and attaches them as their VMs' peers.
  static void connect(Endpoint& a, Endpoint& b);

  // Severs the pair in both directions: both VMs lose their peer, both
  // RefMaps drop their translations and reply caches are flushed. After a
  // disconnect every surviving object must be made local (the platform's
  // recovery path does exactly that) — stale stubs simply become
  // unreachable garbage.
  void disconnect();

  [[nodiscard]] bool connected() const noexcept { return peer_ != nullptr; }
  [[nodiscard]] vm::Vm& local_vm() noexcept { return vm_; }
  [[nodiscard]] RefMap& refs() noexcept { return refs_; }
  [[nodiscard]] const EndpointStats& stats() const noexcept { return stats_; }

  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  // Installed on the client endpoint by the platform: invoked when an RPC is
  // abandoned at the top level; returns true once every surviving object is
  // local again so the failed operation can be completed locally.
  void set_peer_failure_handler(std::function<bool()> handler) {
    peer_failure_handler_ = std::move(handler);
  }

  // Retrieves (and consumes) the reply this endpoint served for the peer's
  // sequence number `seq`, if it is still cached. The recovery path uses it
  // to salvage an executed-but-undelivered response instead of running the
  // call twice. In-process stand-in for a recovery-channel cache flush.
  std::optional<std::vector<std::uint8_t>> take_cached_response(
      std::uint64_t seq);

  // --- vm::RemotePeer (outgoing operations) --------------------------------

  vm::Value invoke(ObjectId target, ClassId cls, MethodId method,
                   std::span<const vm::Value> args) override;
  vm::Value invoke_static(ClassId cls, MethodId method,
                          std::span<const vm::Value> args) override;
  vm::Value get_field(ObjectId target, FieldId field) override;
  void put_field(ObjectId target, FieldId field, const vm::Value& v) override;
  vm::Value get_static(ClassId cls, std::uint32_t slot) override;
  void put_static(ClassId cls, std::uint32_t slot,
                  const vm::Value& v) override;
  vm::Value array_get(ObjectId target, std::int64_t index) override;
  void array_put(ObjectId target, std::int64_t index,
                 const vm::Value& v) override;
  std::int64_t array_length(ObjectId target) override;
  std::string chars_read(ObjectId target, std::int64_t offset,
                         std::int64_t length) override;
  void chars_write(ObjectId target, std::int64_t offset,
                   std::string_view data) override;
  void release(std::span<const ObjectId> ids) override;

  // Offloads the given local objects to the peer VM. Returns the number of
  // payload bytes shipped. Stubs are left behind; the peer exports the
  // adopted objects back so future references resolve. On PeerUnavailable
  // the batch is reinstated locally (unless the peer already adopted it) and
  // the error propagates for the platform to handle.
  std::uint64_t migrate_objects(std::span<const ObjectId> ids);

 private:
  enum class Op : std::uint8_t {
    invoke = 1,
    invoke_static = 2,
    get_field = 3,
    put_field = 4,
    get_static = 5,
    put_static = 6,
    array_get = 7,
    array_put = 8,
    array_len = 9,
    chars_read = 10,
    chars_write = 11,
    release = 12,
    migrate = 13,
  };

  // RefTranslator.
  WireRef translate_out(vm::ObjectRef ref) override;
  vm::ObjectRef translate_in(const WireRef& wire) override;

  // Sends an encoded request across the link with bounded retry and returns
  // the decoded-raw response bytes. Throws VmError if the peer reported one,
  // PeerUnavailable when the retry budget is exhausted.
  std::vector<std::uint8_t> transact(ByteWriter request);

  // transact(), but an unrecoverable peer failure at the top level triggers
  // platform recovery and returns nullopt so the caller completes the
  // (idempotent) operation against now-local state.
  std::optional<std::vector<std::uint8_t>> transact_or_recover(
      ByteWriter request);

  // Recovery tail shared by invoke/invoke_static: salvages a cached reply or
  // rolls back and re-executes locally. Must be called from a catch block.
  vm::Value recover_invoke(const PeerUnavailable& e, std::size_t mark,
                           const std::function<vm::Value()>& rerun_local);

  // Dedup wrapper around serve(): replays the cached reply for a retried
  // sequence number instead of executing the request twice.
  std::vector<std::uint8_t> serve_request(std::span<const std::uint8_t> request,
                                          std::uint64_t seq);

  // Serves one request on the receiving side.
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> request);

  [[nodiscard]] bool fault_tolerant() const noexcept {
    return link_.fault_plan().enabled();
  }

  // Resolves an incoming wire target (our export handle) to a local object.
  ObjectId resolve_target(ByteReader& r);
  void write_target(ByteWriter& w, ObjectId id);

  vm::Vm& vm_;
  netsim::Link& link_;
  Endpoint* peer_ = nullptr;
  RefMap refs_;
  EndpointStats stats_;
  RetryPolicy retry_;
  std::function<bool()> peer_failure_handler_;

  // Outgoing sequence numbers; carried out-of-band by the in-process
  // transport (a real deployment would put them in a message header).
  std::uint64_t next_seq_ = 0;
  // Single-entry reply cache: execution is synchronous and serial, so only
  // the most recent request can ever be retried.
  std::uint64_t last_served_seq_ = 0;
  std::vector<std::uint8_t> cached_response_;
  bool has_cached_response_ = false;
  // Depth of serve() frames on this endpoint; recovery must only run at the
  // top level, never while a peer frame is live above us on the stack.
  int serving_depth_ = 0;
};

}  // namespace aide::rpc
