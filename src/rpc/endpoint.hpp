// RPC endpoint: the remote-execution boundary between two VMs.
//
// Each VM owns one Endpoint; connect() cross-wires a pair. An outgoing
// operation is encoded to bytes, charged against the simulated link, decoded
// by the peer endpoint, executed on the peer VM (possibly recursing back —
// the paper's surrogate transparently refers back to the client for native
// methods and static data), and the response travels the same way.
//
// The endpoint also implements:
//  * reference translation over its RefMap tables (paper 3.2),
//  * object migration with a two-section encoding that tolerates reference
//    cycles among co-migrated objects,
//  * the distributed-GC release protocol ("a simple distributed garbage
//    collection scheme", paper section 4).
//
// Execution is synchronous and serial, matching the paper's emulator model:
// "the two VMs do not execute application code simultaneously".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/link.hpp"
#include "rpc/refmap.hpp"
#include "rpc/serializer.hpp"
#include "vm/remote.hpp"
#include "vm/vm.hpp"

namespace aide::rpc {

struct EndpointStats {
  std::uint64_t rpcs_sent = 0;
  std::uint64_t rpcs_served = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t releases_sent = 0;
  std::uint64_t migrations_sent = 0;
  std::uint64_t objects_migrated_out = 0;
  std::uint64_t bytes_migrated_out = 0;
};

class Endpoint final : public vm::RemotePeer, private RefTranslator {
 public:
  Endpoint(vm::Vm& local_vm, netsim::Link& link);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  // Cross-wires two endpoints and attaches them as their VMs' peers.
  static void connect(Endpoint& a, Endpoint& b);

  [[nodiscard]] vm::Vm& local_vm() noexcept { return vm_; }
  [[nodiscard]] RefMap& refs() noexcept { return refs_; }
  [[nodiscard]] const EndpointStats& stats() const noexcept { return stats_; }

  // --- vm::RemotePeer (outgoing operations) --------------------------------

  vm::Value invoke(ObjectId target, ClassId cls, MethodId method,
                   std::span<const vm::Value> args) override;
  vm::Value invoke_static(ClassId cls, MethodId method,
                          std::span<const vm::Value> args) override;
  vm::Value get_field(ObjectId target, FieldId field) override;
  void put_field(ObjectId target, FieldId field, const vm::Value& v) override;
  vm::Value get_static(ClassId cls, std::uint32_t slot) override;
  void put_static(ClassId cls, std::uint32_t slot,
                  const vm::Value& v) override;
  vm::Value array_get(ObjectId target, std::int64_t index) override;
  void array_put(ObjectId target, std::int64_t index,
                 const vm::Value& v) override;
  std::int64_t array_length(ObjectId target) override;
  std::string chars_read(ObjectId target, std::int64_t offset,
                         std::int64_t length) override;
  void chars_write(ObjectId target, std::int64_t offset,
                   std::string_view data) override;
  void release(std::span<const ObjectId> ids) override;

  // Offloads the given local objects to the peer VM. Returns the number of
  // payload bytes shipped. Stubs are left behind; the peer exports the
  // adopted objects back so future references resolve.
  std::uint64_t migrate_objects(std::span<const ObjectId> ids);

 private:
  enum class Op : std::uint8_t {
    invoke = 1,
    invoke_static = 2,
    get_field = 3,
    put_field = 4,
    get_static = 5,
    put_static = 6,
    array_get = 7,
    array_put = 8,
    array_len = 9,
    chars_read = 10,
    chars_write = 11,
    release = 12,
    migrate = 13,
  };

  // RefTranslator.
  WireRef translate_out(vm::ObjectRef ref) override;
  vm::ObjectRef translate_in(const WireRef& wire) override;

  // Sends an encoded request across the link and returns the decoded-raw
  // response bytes. Throws VmError if the peer reported one.
  std::vector<std::uint8_t> transact(ByteWriter request);

  // Serves one request on the receiving side.
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> request);

  // Resolves an incoming wire target (our export handle) to a local object.
  ObjectId resolve_target(ByteReader& r);
  void write_target(ByteWriter& w, ObjectId id);

  vm::Vm& vm_;
  netsim::Link& link_;
  Endpoint* peer_ = nullptr;
  RefMap refs_;
  EndpointStats stats_;
};

}  // namespace aide::rpc
