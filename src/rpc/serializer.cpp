#include "rpc/serializer.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace aide::rpc {

std::vector<std::uint8_t> make_frame(std::uint32_t epoch, std::uint64_t seq,
                                     std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(kFrameHeaderSize + payload.size());
  std::memcpy(frame.data() + 4, &epoch, sizeof epoch);
  std::memcpy(frame.data() + 8, &seq, sizeof seq);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  }
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(frame).subspan(4));
  std::memcpy(frame.data(), &crc, sizeof crc);
  return frame;
}

std::optional<FrameView> parse_frame(
    std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < kFrameHeaderSize) return std::nullopt;
  std::uint32_t crc = 0;
  std::memcpy(&crc, frame.data(), sizeof crc);
  if (crc32(frame.subspan(4)) != crc) return std::nullopt;
  FrameView view;
  std::memcpy(&view.epoch, frame.data() + 4, sizeof view.epoch);
  std::memcpy(&view.seq, frame.data() + 8, sizeof view.seq);
  view.payload = frame.subspan(kFrameHeaderSize);
  return view;
}

namespace {
enum class Tag : std::uint8_t {
  nil = 0,
  boolean = 1,
  integer = 2,
  real = 3,
  ref = 4,
  str = 5,
  null_ref = 6,
};
}  // namespace

void write_wire_ref(ByteWriter& w, const WireRef& ref) {
  w.write_u32(ref.owner.value());
  w.write_u64(ref.handle.value());
  w.write_u64(ref.id.value());
  w.write_u32(ref.cls.value());
  w.write_u8(static_cast<std::uint8_t>(ref.kind));
}

WireRef read_wire_ref(ByteReader& r) {
  WireRef ref;
  ref.owner = NodeId{r.read_u32()};
  ref.handle = ExportHandle{r.read_u64()};
  ref.id = ObjectId{r.read_u64()};
  ref.cls = ClassId{r.read_u32()};
  ref.kind = static_cast<vm::ObjectKind>(r.read_u8());
  return ref;
}

void write_op_section(ByteWriter& w, std::span<const std::uint8_t> op) {
  w.write_u32(static_cast<std::uint32_t>(op.size()));
  w.write_bytes(op);
}

std::span<const std::uint8_t> read_op_section(ByteReader& r) {
  const auto len = r.read_u32();
  return r.read_bytes(len);
}

void write_value(ByteWriter& w, const vm::Value& v, RefTranslator& tr) {
  if (v.is_nil()) {
    w.write_u8(static_cast<std::uint8_t>(Tag::nil));
  } else if (v.is_bool()) {
    w.write_u8(static_cast<std::uint8_t>(Tag::boolean));
    w.write_u8(v.as_bool() ? 1 : 0);
  } else if (v.is_int()) {
    w.write_u8(static_cast<std::uint8_t>(Tag::integer));
    w.write_i64(v.as_int());
  } else if (v.is_real()) {
    w.write_u8(static_cast<std::uint8_t>(Tag::real));
    w.write_f64(v.as_real());
  } else if (v.is_ref()) {
    if (v.as_ref().is_null()) {
      w.write_u8(static_cast<std::uint8_t>(Tag::null_ref));
    } else {
      w.write_u8(static_cast<std::uint8_t>(Tag::ref));
      write_wire_ref(w, tr.translate_out(v.as_ref()));
    }
  } else {
    w.write_u8(static_cast<std::uint8_t>(Tag::str));
    w.write_string(v.as_str());
  }
}

vm::Value read_value(ByteReader& r, RefTranslator& tr) {
  const auto tag = static_cast<Tag>(r.read_u8());
  switch (tag) {
    case Tag::nil: return vm::Value{};
    case Tag::boolean: return vm::Value{r.read_u8() != 0};
    case Tag::integer: return vm::Value{r.read_i64()};
    case Tag::real: return vm::Value{r.read_f64()};
    case Tag::ref: return vm::Value{tr.translate_in(read_wire_ref(r))};
    case Tag::str: return vm::Value{r.read_string()};
    case Tag::null_ref: return vm::Value{vm::kNullRef};
  }
  throw VmError(VmErrorCode::type_mismatch, "bad wire value tag");
}

void write_object_header(ByteWriter& w, const vm::Object& obj) {
  w.write_u64(obj.id.value());
  w.write_u32(obj.cls.value());
  w.write_u8(static_cast<std::uint8_t>(obj.kind));
  w.write_i64(static_cast<std::int64_t>(obj.ints.size()));
  w.write_i64(static_cast<std::int64_t>(obj.chars.size()));
  w.write_u32(static_cast<std::uint32_t>(obj.fields.size()));
}

ObjectHeader read_object_header(ByteReader& r) {
  ObjectHeader h;
  h.id = ObjectId{r.read_u64()};
  h.cls = ClassId{r.read_u32()};
  h.kind = static_cast<vm::ObjectKind>(r.read_u8());
  h.ints_len = r.read_i64();
  h.chars_len = r.read_i64();
  h.field_count = r.read_u32();
  return h;
}

void write_object_payload(ByteWriter& w, const vm::Object& obj,
                          RefTranslator& tr) {
  switch (obj.kind) {
    case vm::ObjectKind::plain:
      for (const auto& f : obj.fields) write_value(w, f, tr);
      break;
    case vm::ObjectKind::int_array:
      for (const auto i : obj.ints) w.write_i64(i);
      break;
    case vm::ObjectKind::char_array:
      w.write_string(obj.chars);
      break;
  }
}

void read_object_payload(ByteReader& r, vm::Object& obj, RefTranslator& tr) {
  switch (obj.kind) {
    case vm::ObjectKind::plain:
      for (auto& f : obj.fields) f = read_value(r, tr);
      break;
    case vm::ObjectKind::int_array:
      for (auto& i : obj.ints) i = r.read_i64();
      break;
    case vm::ObjectKind::char_array:
      obj.chars = r.read_string();
      break;
  }
  // The payload (string fields in particular) was rewritten wholesale.
  obj.invalidate_size_cache();
}

}  // namespace aide::rpc
