// Per-VM reference-mapping tables (paper section 3.2, "Object references").
//
// Each JVM has a private object-reference namespace and does not understand a
// reference from the other JVM. The paper's solution: each VM keeps stub
// local references for remote objects, and maps the peer's references into
// its own namespace. A RefMap holds both directions for one endpoint:
//
//   exports — local objects the peer may reference. Each gets a stable
//             ExportHandle; exported objects are GC roots until the peer's
//             distributed GC releases them.
//   imports — peer handles for which this VM holds local stubs.
//
// Handle namespaces: a multi-session surrogate server gives every session's
// RefMaps a distinct 16-bit namespace, stamped into the top bits of each
// handle it mints. A handle that leaks across sessions then carries the
// wrong namespace and resolve_export rejects it outright — the session
// isolation boundary of the reference-mapping layer. The default namespace
// (0) mints handles 1, 2, ... exactly as the single-session platform always
// has, so paired endpoints remain bit-identical on the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/ids.hpp"

namespace aide::rpc {

class RefMap {
 public:
  // Top 16 bits of a handle hold the minting session's namespace.
  static constexpr unsigned kNamespaceShift = 48;

  [[nodiscard]] static constexpr std::uint16_t namespace_of(
      ExportHandle h) noexcept {
    return static_cast<std::uint16_t>(h.value() >> kNamespaceShift);
  }

  // Assigns this map's handle namespace. Must be called before the first
  // export; the single-session default is namespace 0 (plain handles).
  void set_handle_namespace(std::uint16_t ns) {
    namespace_ = ns;
    next_handle_ = 1;
  }
  [[nodiscard]] std::uint16_t handle_namespace() const noexcept {
    return namespace_;
  }

  // --- export side ----------------------------------------------------------

  // Registers (idempotently) a local object as referenced by the peer.
  ExportHandle export_object(ObjectId id) {
    const auto it = export_by_id_.find(id);
    if (it != export_by_id_.end()) return it->second;
    const ExportHandle h{
        (static_cast<std::uint64_t>(namespace_) << kNamespaceShift) |
        next_handle_++};
    export_by_id_.emplace(id, h);
    export_by_handle_.emplace(h, id);
    return h;
  }

  [[nodiscard]] ObjectId resolve_export(ExportHandle h) const {
    if (namespace_of(h) != namespace_) {
      // A handle minted under another session's namespace: a cross-session
      // reference can never resolve, whatever its low bits happen to match.
      throw VmError(VmErrorCode::null_reference,
                    "cross-session reference: handle " +
                        std::to_string(h.value()) + " belongs to namespace " +
                        std::to_string(namespace_of(h)) + ", not " +
                        std::to_string(namespace_));
    }
    const auto it = export_by_handle_.find(h);
    if (it == export_by_handle_.end()) {
      throw VmError(VmErrorCode::null_reference,
                    "unknown export handle " + std::to_string(h.value()));
    }
    return it->second;
  }

  [[nodiscard]] bool is_exported(ObjectId id) const {
    return export_by_id_.contains(id);
  }

  // Peer released its reference (distributed GC), or the object migrated.
  void release_export(ObjectId id) {
    const auto it = export_by_id_.find(id);
    if (it == export_by_id_.end()) return;
    export_by_handle_.erase(it->second);
    export_by_id_.erase(it);
  }

  void release_export_handle(ExportHandle h) {
    const auto it = export_by_handle_.find(h);
    if (it == export_by_handle_.end()) return;
    export_by_id_.erase(it->second);
    export_by_handle_.erase(it);
  }

  // Exported objects are GC roots on the owning VM.
  void for_each_export(const std::function<void(ObjectId)>& fn) const {
    for (const auto& [id, handle] : export_by_id_) fn(id);
  }

  [[nodiscard]] std::size_t export_count() const noexcept {
    return export_by_id_.size();
  }

  // --- import side ----------------------------------------------------------

  void note_import(ExportHandle peer_handle, ObjectId local_id) {
    import_by_id_[local_id] = peer_handle;
  }

  // Handle to use on the wire for a stub we hold; invalid if unknown (e.g. a
  // co-migrated object mid-batch).
  [[nodiscard]] ExportHandle import_handle_for(ObjectId local_id) const {
    const auto it = import_by_id_.find(local_id);
    return it == import_by_id_.end() ? ExportHandle::invalid() : it->second;
  }

  void forget_import(ObjectId local_id) { import_by_id_.erase(local_id); }

  // Drops every mapping in both directions (endpoint disconnect). Handles
  // are not reused: the counter keeps advancing across reconnects.
  void clear() {
    export_by_id_.clear();
    export_by_handle_.clear();
    import_by_id_.clear();
  }

  [[nodiscard]] std::size_t import_count() const noexcept {
    return import_by_id_.size();
  }

 private:
  std::unordered_map<ObjectId, ExportHandle> export_by_id_;
  std::unordered_map<ExportHandle, ObjectId> export_by_handle_;
  std::unordered_map<ObjectId, ExportHandle> import_by_id_;
  std::uint64_t next_handle_ = 1;
  std::uint16_t namespace_ = 0;
};

}  // namespace aide::rpc
