#include "rpc/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"

namespace aide::rpc {

namespace {
constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusVmError = 1;
}  // namespace

Endpoint::Endpoint(vm::Vm& local_vm, netsim::Link& link)
    : vm_(local_vm), link_(link) {
  vm_.set_extra_roots_provider(
      [this](const std::function<void(ObjectId)>& visit) {
        refs_.for_each_export(visit);
      });
  vm_.set_stub_release_handler([this](std::span<const ObjectId> ids) {
    if (peer_ != nullptr) release(ids);
  });
}

void Endpoint::connect(Endpoint& a, Endpoint& b) {
  a.peer_ = &b;
  b.peer_ = &a;
  a.vm_.set_peer(&a);
  b.vm_.set_peer(&b);
}

void Endpoint::disconnect() {
  if (peer_ != nullptr) {
    Endpoint& other = *peer_;
    other.peer_ = nullptr;
    other.vm_.set_peer(nullptr);
    other.refs_.clear();
    other.has_cached_response_ = false;
    other.cached_response_.clear();
    other.drop_transport_state();
  }
  peer_ = nullptr;
  vm_.set_peer(nullptr);
  refs_.clear();
  has_cached_response_ = false;
  cached_response_.clear();
  drop_transport_state();
}

void Endpoint::detach_partitioned() {
  // The partition flavor of disconnect(): both heaps survive and will be
  // reconciled with each other, so every cross-VM reference must keep
  // resolving after the link returns. Export tables stay registered on both
  // sides — they are the GC roots that keep referenced objects (including
  // the surrogate originals the redo log replays into) alive across the
  // disconnected epoch. Only transport state dies.
  if (peer_ != nullptr) {
    Endpoint& other = *peer_;
    other.peer_ = nullptr;
    other.vm_.set_peer(nullptr);
    other.has_cached_response_ = false;
    other.cached_response_.clear();
    other.drop_transport_state();
  }
  peer_ = nullptr;
  vm_.set_peer(nullptr);
  has_cached_response_ = false;
  cached_response_.clear();
  drop_transport_state();
}

void Endpoint::drop_transport_state() {
  // A PREPARE-staged batch dies with the connection: it never touched the
  // heap, so dropping the bytes is the rollback. In-flight frame copies for
  // the reorder injector go with it, and so do read-ahead snapshots of the
  // peer's objects. The write-behind queue survives: after recovery its
  // targets are local and flush_pending/apply_pending_locally lands it.
  has_staged_migration_ = false;
  staged_migration_.clear();
  has_staged_reconcile_ = false;
  staged_reconcile_.clear();
  last_req_frame_.clear();
  last_resp_frame_.clear();
  invalidate_snapshots();
  // A new connection epoch starts the partition detector fresh: the old
  // link's timeout run and silence window say nothing about the new link.
  detector_.reset(vm_.clock().now());
}

std::optional<std::vector<std::uint8_t>> Endpoint::take_cached_response(
    std::uint64_t seq) {
  if (!has_cached_response_ || seq != last_served_seq_) return std::nullopt;
  has_cached_response_ = false;
  return std::move(cached_response_);
}

// --- reference translation ----------------------------------------------------

WireRef Endpoint::translate_out(vm::ObjectRef ref) {
  WireRef wire;
  wire.id = ref.id;
  wire.cls = vm_.class_of(ref.id);
  if (vm::Object* obj = vm_.find_object(ref.id); obj != nullptr) {
    wire.kind = obj->kind;
    wire.owner = vm_.node();
    wire.handle = refs_.export_object(ref.id);
  } else {
    // A stub: the peer owns the object, so the raw id is sufficient — the
    // owner resolves its own ids directly (see translate_in). Deliberately
    // do NOT embed the import handle: encoded requests can sit in the
    // write-behind queue across a GC cycle (or a link outage), and a stub
    // release delivered in between would leave a dangling handle frozen in
    // the queued bytes. Ids never dangle on the owner. The handle field is
    // fixed-width, so frame sizes and timing are unchanged.
    wire.owner = peer_ != nullptr ? peer_->vm_.node() : NodeId::invalid();
    wire.handle = ExportHandle::invalid();
    wire.kind = vm::ObjectKind::plain;  // refined on the receiving side
  }
  return wire;
}

vm::ObjectRef Endpoint::translate_in(const WireRef& wire) {
  if (wire.owner == vm_.node()) {
    // A reference to one of our own objects came back.
    if (wire.handle.valid()) {
      const ObjectId id = refs_.resolve_export(wire.handle);
      assert(id == wire.id);
      return vm::ObjectRef{id};
    }
    if (vm_.is_local(wire.id)) return vm::ObjectRef{wire.id};
    throw VmError(VmErrorCode::null_reference,
                  "wire ref to unknown local object");
  }
  // The peer owns it: hold a stub and remember the peer's handle.
  vm_.install_stub(wire.id, wire.cls, wire.kind);
  if (wire.handle.valid()) refs_.note_import(wire.handle, wire.id);
  return vm::ObjectRef{wire.id};
}

// --- transport ----------------------------------------------------------------

SimDuration Endpoint::effective_timeout() const noexcept {
  if (!retry_.adaptive || !rtt_.primed) return retry_.timeout;
  const auto rto = static_cast<SimDuration>(
      rtt_.srtt + retry_.rtt_dev_multiplier * rtt_.rttvar);
  return std::clamp(rto, retry_.min_timeout, retry_.timeout);
}

bool Endpoint::ping() {
  if (peer_ == nullptr) return false;
  stats_.heartbeats_sent += 1;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::ping));
  try {
    (void)transact(std::move(w));
    return true;
  } catch (const PeerUnavailable&) {
    return false;
  }
}

std::vector<std::uint8_t> Endpoint::transact(ByteWriter request,
                                             std::uint32_t ops,
                                             bool pipelined) {
  if (peer_ == nullptr) {
    throw VmError(VmErrorCode::null_reference, "endpoint not connected");
  }
  // Pipelining overlaps the delivered reply's airtime with whatever the
  // caller computes next; a lost reply still pays the full timeout/retry
  // machinery below. The decision must not depend on whether a fault plan
  // is armed: an armed-but-inert plan stays bit-identical to fault-free.
  const bool overlap_reply = pipelined;
  const auto payload = std::move(request).take();
  stats_.rpcs_sent += 1;
  const std::uint64_t seq = ++next_seq_;
  const auto frame = make_frame(epoch_, seq, payload);

  const int max_attempts = std::max(retry_.max_attempts, 1);
  SimDuration backoff = retry_.backoff_initial;
  for (int attempt = 1;; ++attempt) {
    bool delivered = false;
    std::vector<std::uint8_t> resp_payload;
    SimDuration rtt_sample = 0;

    const auto req_leg = link_.try_one_way(frame.size(), vm_.clock().now(),
                                           netsim::Leg::request);
    if (req_leg.delivered) {
      stats_.bytes_sent += frame.size();
      link_.note_ops(ops);
      vm_.clock().advance(req_leg.cost);

      std::optional<std::vector<std::uint8_t>> resp_frame;
      // Snapshot the peer's previous response before serving: a reordered
      // reply leg presents this stale frame, not the one being produced now.
      const std::vector<std::uint8_t> prev_resp_frame = peer_->last_resp_frame_;
      try {
        if (req_leg.reordered) {
          // The in-flight frame is delayed past its timeout; what arrives
          // now is a stale retransmit of the previous request, which the
          // peer fences (or dedups from its reply cache) without executing.
          if (!last_req_frame_.empty()) {
            (void)peer_->receive_frame(last_req_frame_);
          }
        } else {
          std::vector<std::uint8_t> wire = frame;
          if (req_leg.corrupted) {
            wire[req_leg.chaos_salt % wire.size()] ^= 0xFF;
          }
          resp_frame = peer_->receive_frame(wire);
          if (req_leg.duplicated) {
            // The second copy reaches the peer too; its reply cache absorbs
            // it and the redundant response is discarded in the air.
            (void)peer_->receive_frame(wire);
          }
        }
      } catch (const PeerUnavailable&) {
        // A nested call the peer made while serving us was abandoned; the
        // peer rolled back its partial frame. Not retryable — re-sending
        // would re-execute side effects the peer already unwound once.
        stats_.aborted_rpcs += 1;
        throw PeerUnavailable(seq, "peer failed while serving rpc");
      }

      if (resp_frame.has_value()) {
        const auto resp_leg = link_.try_one_way(
            resp_frame->size(), vm_.clock().now(), netsim::Leg::reply);
        if (resp_leg.delivered) {
          // A pipelined flush still pays the reply's link accounting, but the
          // wait overlaps whatever this VM computes next in virtual time.
          if (!overlap_reply) vm_.clock().advance(resp_leg.cost);
          std::span<const std::uint8_t> resp_wire = *resp_frame;
          bool arrived = true;
          if (resp_leg.reordered) {
            // A stale retransmit of the peer's *previous* response arrives in
            // place of the in-flight one; the seq/epoch fence rejects it
            // below and the attempt times out. With no previous response to
            // retransmit, nothing arrives at all.
            if (prev_resp_frame.empty()) {
              arrived = false;
            } else {
              resp_wire = prev_resp_frame;
            }
          }
          std::vector<std::uint8_t> corrupted_copy;
          if (arrived && resp_leg.corrupted) {
            corrupted_copy.assign(resp_wire.begin(), resp_wire.end());
            corrupted_copy[resp_leg.chaos_salt % corrupted_copy.size()] ^=
                0xFF;
            resp_wire = corrupted_copy;
          }
          if (arrived) {
            stats_.bytes_received += resp_wire.size();
            const auto view = parse_frame(resp_wire);
            if (!view.has_value()) {
              stats_.corrupt_frames_rejected += 1;
            } else if (view->seq != seq || view->epoch != epoch_) {
              stats_.stale_frames_fenced += 1;
            } else {
              if (resp_leg.duplicated) stats_.duplicate_frames_dropped += 1;
              resp_payload.assign(view->payload.begin(), view->payload.end());
              rtt_sample = req_leg.cost + resp_leg.cost;
              delivered = true;
            }
          }
        }
      }
    }

    if (delivered) {
      // Feed the detector with transport time only (remote execution already
      // advanced the clock between the legs and must not inflate the RTO).
      rtt_.sample(rtt_sample);
      last_contact_ = vm_.clock().now();
      detector_.note_delivery(last_contact_);
      last_req_frame_ = frame;
      ByteReader r(resp_payload);
      const auto status = r.read_u8();
      if (status == kStatusVmError) {
        const auto code = static_cast<VmErrorCode>(r.read_u8());
        const std::string msg = r.read_string();
        throw VmError(code, "remote: " + msg);
      }
      // Strip the status byte; hand the remainder to the caller.
      return {resp_payload.begin() + 1, resp_payload.end()};
    }

    // No response: the send was refused (link down), a leg was dropped in
    // transit, or the frame that arrived was rejected (corrupt or stale).
    // The sender can't tell the difference — it just times out, waiting the
    // adaptive estimate rather than the configured worst case.
    stats_.timeouts += 1;
    vm_.clock().advance(effective_timeout());
    detector_.note_timeout(vm_.clock().now());
    if (attempt >= max_attempts) {
      // With the partition policy armed, an exhausted retry budget is not
      // yet proof of a *sustained* outage: traffic may have been flowing
      // right up to the cut, so the silence window can be shorter than the
      // policy floor when the budget runs out. Hold the RPC open — keep
      // retrying at the current backoff — until the two resolve: a transient
      // blip delivers on a later attempt and nothing trips, while a true
      // partition crosses the silence floor and aborts into a detector that
      // now answers suspected() == true. Abandonment and suspicion coincide,
      // so the failure handler never mistakes a partition for a dead peer.
      if (!detector_.policy().enabled ||
          detector_.suspected(vm_.clock().now())) {
        stats_.aborted_rpcs += 1;
        throw PeerUnavailable(seq, "rpc aborted after " +
                                       std::to_string(attempt) + " attempts");
      }
    }
    stats_.retries += 1;
    vm_.clock().advance(backoff);
    backoff = std::min(
        static_cast<SimDuration>(static_cast<double>(backoff) *
                                 retry_.backoff_multiplier),
        retry_.backoff_max);
  }
}

std::optional<std::vector<std::uint8_t>> Endpoint::transact_or_recover(
    ByteWriter request) {
  try {
    return transact(std::move(request));
  } catch (const PeerUnavailable&) {
    if (serving_depth_ > 0 || !peer_failure_handler_) throw;
    if (!peer_failure_handler_()) throw;
    stats_.recovered_rpcs += 1;
    return std::nullopt;
  }
}

// --- write-behind batching ----------------------------------------------------

void Endpoint::set_batch_policy(BatchPolicy policy) {
  if (!policy.enabled) flush_pending();
  batch_ = policy;
  if (!batch_.read_ahead) invalidate_snapshots();
}

void Endpoint::set_prefetch_groups(std::vector<std::vector<ObjectId>> groups) {
  groups_ = std::move(groups);
  group_of_.clear();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const ObjectId id : groups_[g]) group_of_[id] = g;
  }
}

void Endpoint::set_batch_safety(const analysis::BatchSafetyOracle* oracle) {
  // Queued proofs were made against the old oracle; drain before switching.
  if (oracle != oracle_) flush_pending();
  oracle_ = oracle;
  pending_proven_ = true;
}

void Endpoint::set_prefetch_eligible(std::vector<ClassId> classes) {
  std::sort(classes.begin(), classes.end());
  has_prefetch_filter_ = !classes.empty();
  prefetch_filter_ = std::move(classes);
}

Endpoint::StoreLoc Endpoint::store_loc_of(const PendingOp& rec) const {
  switch (rec.kind) {
    case Op::put_field:
      return {vm_.class_of(rec.target), analysis::StoreKind::field, rec.key};
    case Op::put_static:
      return {ClassId{rec.key}, analysis::StoreKind::static_slot, rec.slot};
    case Op::array_put:
      return {vm_.class_of(rec.target), analysis::StoreKind::elems,
              analysis::kAnyMember};
    default:  // chars_write — the only other deferred kind
      return {vm_.class_of(rec.target), analysis::StoreKind::chars,
              analysis::kAnyMember};
  }
}

bool Endpoint::store_proven_deferrable(const PendingOp& rec) const {
  if (oracle_ == nullptr) return true;  // PR 6 semantics: always defer
  if (!vm_.knows(rec.target) && rec.kind != Op::put_static) return false;
  const StoreLoc loc = store_loc_of(rec);
  return oracle_->store_deferrable(loc.cls, loc.kind, loc.member);
}

std::size_t Endpoint::effective_max_ops() const noexcept {
  if (oracle_ != nullptr && pending_proven_ &&
      batch_.max_ops_proven > batch_.max_ops) {
    return batch_.max_ops_proven;
  }
  return batch_.max_ops;
}

bool Endpoint::prefetch_mate_eligible(ObjectId id) const {
  if (!has_prefetch_filter_) return true;
  return std::binary_search(prefetch_filter_.begin(), prefetch_filter_.end(),
                            vm_.class_of(id));
}

// Strict queue drain: the whole queue goes out as one frame (one op as a
// bit-identical legacy frame) and is cleared once the peer owns it. Throws
// PeerUnavailable with the queue intact — every queued op is an idempotent
// absolute store, so whoever catches can re-apply or re-send safely.
void Endpoint::send_queue() {
  if (pending_.empty() || peer_ == nullptr) return;
  const std::size_t count = pending_.size();
  ByteWriter w;
  if (count == 1) {
    w.write_bytes(pending_.front().encoded);
  } else {
    w.write_u8(static_cast<std::uint8_t>(Op::batch));
    w.write_u32(static_cast<std::uint32_t>(count));
    for (const PendingOp& p : pending_) write_op_section(w, p.encoded);
  }
  const auto resp =
      transact(std::move(w), static_cast<std::uint32_t>(count),
               /*pipelined=*/true);
  if (count > 1) {
    stats_.batches_sent += 1;
    stats_.batched_ops += count;
  }
  pending_.clear();
  pending_proven_ = true;
  if (count > 1) {
    // Surface the first rider's semantic error, if any (a pure-write batch
    // carries no demanded value, so this is the only place it can surface).
    ByteReader r(resp);
    const auto executed = r.read_u32();
    for (std::uint32_t i = 0; i < executed; ++i) {
      ByteReader sr(read_op_section(r));
      const auto status = sr.read_u8();
      if (status == kStatusVmError) {
        const auto code = static_cast<VmErrorCode>(sr.read_u8());
        throw VmError(code, "remote: " + sr.read_string());
      }
    }
  }
}

// Top-level flush: recovers like any other RPC when the peer is gone for
// good — state is pulled back and the queued stores re-apply locally.
void Endpoint::flush_or_recover() {
  try {
    send_queue();
  } catch (const PeerUnavailable&) {
    if (serving_depth_ > 0 || !peer_failure_handler_) throw;
    if (!peer_failure_handler_()) throw;
    apply_pending_locally();
    stats_.recovered_rpcs += 1;
  }
}

void Endpoint::flush_pending() {
  // Yield point: read-ahead state never survives one (see snapshots_).
  invalidate_snapshots();
  if (pending_.empty()) return;
  if (peer_ == nullptr) {
    // Disconnected after recovery: the targets live here now.
    apply_pending_locally();
    return;
  }
  try {
    send_queue();
  } catch (const PeerUnavailable&) {
    // Called from GC entry, where platform recovery would be re-entrant
    // (exactly like release()). The queue is idempotent and kept; the next
    // top-level operation performs the recovery and re-applies it.
  }
}

void Endpoint::enqueue_pending(PendingOp rec, ByteWriter encoded) {
  stats_.ops_sent += 1;
  rec.encoded = std::move(encoded).take();
  if (oracle_ != nullptr && pending_proven_) {
    // Incremental proof: the queue stays "proven" only while every pair of
    // queued stores commutes. One unprovable pair drops the whole queue back
    // to the base depth cap — never past it, so this can only flush earlier.
    const StoreLoc loc = store_loc_of(rec);
    for (const PendingOp& p : pending_) {
      const StoreLoc other = store_loc_of(p);
      if (!oracle_->stores_commute(other.cls, other.kind, other.member,
                                   loc.cls, loc.kind, loc.member)) {
        pending_proven_ = false;
        break;
      }
    }
  }
  pending_.push_back(std::move(rec));
  if (pending_.size() >= effective_max_ops()) flush_or_recover();
  if (pending_.empty()) pending_proven_ = true;
}

void Endpoint::apply_pending_locally() {
  const auto ops = std::move(pending_);
  pending_.clear();
  pending_proven_ = true;
  for (const PendingOp& p : ops) {
    switch (p.kind) {
      case Op::put_field:
        vm_.raw_put_field(p.target, FieldId{p.key}, p.value);
        break;
      case Op::put_static:
        vm_.raw_put_static(ClassId{p.key}, p.slot, p.value);
        break;
      case Op::array_put:
        vm_.raw_array_put(p.target, p.index, p.value);
        break;
      case Op::chars_write:
        vm_.raw_chars_write(p.target, p.index, p.data);
        break;
      default:
        break;  // only void stores are ever deferred
    }
  }
  stats_.pending_applied_locally += ops.size();
}

std::vector<std::uint8_t> Endpoint::transact_with_pending(ByteWriter op) {
  if (pending_.empty()) return transact(std::move(op));

  const std::size_t riders = pending_.size();
  ByteWriter batch;
  batch.write_u8(static_cast<std::uint8_t>(Op::batch));
  batch.write_u32(static_cast<std::uint32_t>(riders + 1));
  for (const PendingOp& p : pending_) write_op_section(batch, p.encoded);
  const auto tail = std::move(op).take();
  write_op_section(batch, tail);
  stats_.batches_sent += 1;
  stats_.batched_ops += riders + 1;

  // While the batch is in flight the riders belong to the wire, not the
  // queue: the peer may nest calls back into this VM while serving the
  // invoke, and the nested serve's trailing flush must not re-send (and
  // consume) ops that are already aboard the very frame being served.
  // PeerUnavailable restores them: recovery re-applies the idempotent
  // riders locally whether or not the batch executed. Any other outcome
  // means the peer owns the executed prefix, so the riders are done.
  auto in_flight = std::move(pending_);
  pending_.clear();
  pending_proven_ = true;
  std::vector<std::uint8_t> resp;
  try {
    resp = transact(std::move(batch), static_cast<std::uint32_t>(riders + 1));
  } catch (const PeerUnavailable&) {
    // Riders first, then whatever nested serving enqueued meanwhile.
    in_flight.insert(in_flight.end(),
                     std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(pending_.end()));
    pending_ = std::move(in_flight);
    // The merged queue's pairwise proof is unknown; assume the worst
    // (only ever flushes earlier than a proven queue would).
    pending_proven_ = false;
    throw;
  }

  ByteReader r(resp);
  const auto executed = r.read_u32();
  std::vector<std::span<const std::uint8_t>> sections;
  sections.reserve(executed);
  for (std::uint32_t i = 0; i < executed; ++i) {
    sections.push_back(read_op_section(r));
  }
  for (std::size_t i = 0; i < sections.size(); ++i) {
    ByteReader sr(sections[i]);
    const auto status = sr.read_u8();
    if (status == kStatusVmError) {
      // The batch stopped here; ops after it never executed — the same
      // prefix semantics as issuing the ops one at a time.
      const auto code = static_cast<VmErrorCode>(sr.read_u8());
      throw VmError(code, "remote: " + sr.read_string());
    }
  }
  if (executed != riders + 1) {
    throw VmError(VmErrorCode::type_mismatch,
                  "batch reply count mismatch without an error");
  }
  // The last section is the demanded op's reply, status already checked.
  const auto last = sections.back();
  return {last.begin() + 1, last.end()};
}

std::optional<std::vector<std::uint8_t>>
Endpoint::transact_or_recover_with_pending(ByteWriter op) {
  try {
    return transact_with_pending(std::move(op));
  } catch (const PeerUnavailable&) {
    if (serving_depth_ > 0 || !peer_failure_handler_) throw;
    if (!peer_failure_handler_()) throw;
    // Reintegration made every target local; the deferred stores land there.
    apply_pending_locally();
    stats_.recovered_rpcs += 1;
    return std::nullopt;
  }
}

// --- read-ahead snapshots -----------------------------------------------------

const vm::Value* Endpoint::snapshot_lookup(ObjectId target,
                                           FieldId field) const {
  const auto it = snapshots_.find(target);
  if (it == snapshots_.end() || field.value() >= it->second.size()) {
    return nullptr;
  }
  return &it->second[field.value()];
}

std::optional<vm::Value> Endpoint::fetch_snapshot(ObjectId target,
                                                  FieldId field) {
  // The demanded object first, then not-yet-cached remote group mates in
  // their (sorted) group order — a deterministic candidate list.
  std::vector<ObjectId> wanted{target};
  if (const auto git = group_of_.find(target); git != group_of_.end()) {
    for (const ObjectId id : groups_[git->second]) {
      if (wanted.size() > batch_.prefetch_limit) break;
      if (id == target || snapshots_.contains(id) || vm_.is_local(id)) {
        continue;
      }
      // Group tables outlive the distributed GC: a mate whose stub was
      // released (or that migrated home) is no longer addressable from here.
      if (!vm_.knows(id)) continue;
      // Mates outside the eligibility filter (classes whose fields escape
      // through aliases the analysis can't track) are never worth a stale
      // snapshot; the demanded object itself is always fetched.
      if (!prefetch_mate_eligible(id)) {
        stats_.prefetches_filtered += 1;
        continue;
      }
      wanted.push_back(id);
    }
  }

  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::get_object));
  w.write_u32(static_cast<std::uint32_t>(wanted.size()));
  for (const ObjectId id : wanted) write_target(w, id);

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_get_field(target, field);

  ByteReader r(*resp);
  const auto count = r.read_u32();
  std::optional<vm::Value> result;
  for (std::uint32_t i = 0; i < count; ++i) {
    const ObjectId id{r.read_u64()};
    const bool present = r.read_u8() != 0;
    if (!present) continue;
    const auto nfields = r.read_u32();
    std::vector<vm::Value> fields;
    fields.reserve(nfields);
    for (std::uint32_t f = 0; f < nfields; ++f) {
      fields.push_back(read_value(r, *this));
    }
    stats_.snapshots_fetched += 1;
    if (i > 0) stats_.objects_prefetched += 1;
    if (id == target && field.value() < fields.size()) {
      result = fields[field.value()];
    }
    snapshots_[id] = std::move(fields);
  }
  // nullopt here (object absent or field out of range) falls back to the
  // legacy per-op path, which produces the authoritative error or value.
  return result;
}

ObjectId Endpoint::resolve_target(ByteReader& r) {
  const WireRef wire = read_wire_ref(r);
  const vm::ObjectRef ref = translate_in(wire);
  return ref.id;
}

void Endpoint::write_target(ByteWriter& w, ObjectId id) {
  write_wire_ref(w, translate_out(vm::ObjectRef{id}));
}

// --- outgoing operations --------------------------------------------------------

vm::Value Endpoint::recover_invoke(
    const PeerUnavailable& e, std::size_t mark, std::size_t riders,
    const std::function<vm::Value()>& rerun_local) {
  if (serving_depth_ > 0 || !peer_failure_handler_) {
    // Not the top level (or nobody to recover us): keep the journal entries
    // for the enclosing scope and let the failure propagate.
    vm_.journal_commit();
    throw;
  }

  // The peer may have executed the call and lost only the response; salvage
  // the cached reply before recovery tears the pair down so the call is not
  // run twice.
  auto cached = peer_ != nullptr ? peer_->take_cached_response(e.seq())
                                 : std::nullopt;
  if (cached.has_value()) {
    ByteReader r(*cached);
    const auto status = r.read_u8();
    // With riders the cached reply is a batch reply: the executed sub-ops
    // (riders first, the invoke last) are authoritative on the peer, so the
    // write-behind queue is done — recovery must not re-apply it on top of
    // whatever the invoke computed afterwards.
    std::optional<ByteReader> sub;
    if (riders > 0 && status == kStatusOk) {
      pending_.clear();
      const auto executed = r.read_u32();
      std::vector<std::span<const std::uint8_t>> sections;
      sections.reserve(executed);
      for (std::uint32_t i = 0; i < executed; ++i) {
        sections.push_back(read_op_section(r));
      }
      // A rider's semantic error stopped the batch before the invoke ran;
      // surface it exactly like a remote invoke error.
      sub.emplace(sections.back());
    } else {
      sub.emplace(*cached);
    }
    const auto sub_status = sub->read_u8();
    if (sub_status == kStatusVmError) {
      const auto code = static_cast<VmErrorCode>(sub->read_u8());
      const std::string msg = sub->read_string();
      vm_.journal_commit();
      pending_.clear();
      peer_failure_handler_();
      stats_.recovered_rpcs += 1;
      throw VmError(code, "remote: " + msg);
    }
    // Decode while translations are still wired; refs the dead peer owned
    // become stubs that reintegration resolves to local objects.
    const vm::Value ret = read_value(*sub, *this);
    vm_.journal_commit();
    peer_failure_handler_();
    stats_.recovered_rpcs += 1;
    return ret;
  }

  // The call never completed remotely: undo the side effects of any
  // callbacks the partial attempts made into this VM, pull the surviving
  // state back, apply the write-behind queue to the now-local targets, and
  // run the frame locally from the stub.
  vm_.journal_rollback(mark);
  if (!peer_failure_handler_()) throw;
  apply_pending_locally();
  stats_.recovered_rpcs += 1;
  return rerun_local();
}

vm::Value Endpoint::invoke(ObjectId target, ClassId cls, MethodId method,
                           std::span<const vm::Value> args) {
  stats_.ops_sent += 1;
  // The peer is about to execute code: read-ahead snapshots go stale now.
  invalidate_snapshots();
  if (oracle_ != nullptr && !pending_.empty() &&
      !oracle_->invoke_accepts_riders(cls, method)) {
    // The callee's effects are not proven disjoint from the queued stores:
    // flush them as their own frame before the call (never as riders).
    stats_.unproven_riders_flushed += 1;
    flush_or_recover();
  }
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::invoke));
  write_target(w, target);
  w.write_u32(cls.value());
  w.write_u32(method.value());
  w.write_u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) write_value(w, a, *this);

  const std::size_t riders = pending_.size();
  const std::size_t mark = vm_.journal_begin();
  try {
    const auto resp = transact_with_pending(std::move(w));
    ByteReader r(resp);
    const vm::Value ret = read_value(r, *this);
    vm_.journal_commit();
    return ret;
  } catch (const PeerUnavailable& e) {
    return recover_invoke(e, mark, riders, [&] {
      return vm_.run_incoming_invoke(target, method, args);
    });
  } catch (...) {
    // Semantic errors keep their partial effects (the fault-free contract).
    vm_.journal_commit();
    throw;
  }
}

vm::Value Endpoint::invoke_static(ClassId cls, MethodId method,
                                  std::span<const vm::Value> args) {
  stats_.ops_sent += 1;
  invalidate_snapshots();
  if (oracle_ != nullptr && !pending_.empty() &&
      !oracle_->invoke_accepts_riders(cls, method)) {
    stats_.unproven_riders_flushed += 1;
    flush_or_recover();
  }
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::invoke_static));
  w.write_u32(cls.value());
  w.write_u32(method.value());
  w.write_u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) write_value(w, a, *this);

  const std::size_t riders = pending_.size();
  const std::size_t mark = vm_.journal_begin();
  try {
    const auto resp = transact_with_pending(std::move(w));
    ByteReader r(resp);
    const vm::Value ret = read_value(r, *this);
    vm_.journal_commit();
    return ret;
  } catch (const PeerUnavailable& e) {
    return recover_invoke(e, mark, riders, [&] {
      return vm_.run_incoming_invoke_static(cls, method, args);
    });
  } catch (...) {
    vm_.journal_commit();
    throw;
  }
}

vm::Value Endpoint::get_field(ObjectId target, FieldId field) {
  stats_.ops_sent += 1;
  if (batch_.enabled && batch_.read_ahead && peer_ != nullptr) {
    if (const vm::Value* v = snapshot_lookup(target, field)) {
      stats_.readahead_hits += 1;
      return *v;
    }
    if (auto v = fetch_snapshot(target, field)) {
      return *v;
    }
    // Snapshot miss (non-plain object, unknown field, ...): the legacy
    // per-op path below is authoritative.
  }
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::get_field));
  write_target(w, target);
  w.write_u32(field.value());

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_get_field(target, field);
  ByteReader r(*resp);
  return read_value(r, *this);
}

void Endpoint::put_field(ObjectId target, FieldId field, const vm::Value& v) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::put_field));
  write_target(w, target);
  w.write_u32(field.value());
  write_value(w, v, *this);
  if (defer_writes()) {
    // Keep a warm snapshot coherent with the store either way.
    if (const auto it = snapshots_.find(target);
        it != snapshots_.end() && field.value() < it->second.size()) {
      it->second[field.value()] = v;
    }
    PendingOp rec;
    rec.kind = Op::put_field;
    rec.target = target;
    rec.key = field.value();
    rec.value = v;
    if (store_proven_deferrable(rec)) {
      enqueue_pending(std::move(rec), std::move(w));
      return;
    }
    // The oracle refuses this store: drain the queue so program order is
    // preserved, then write through eagerly (flush earlier, never reorder).
    stats_.unproven_stores_flushed += 1;
    flush_or_recover();
  }
  stats_.ops_sent += 1;
  if (!transact_or_recover(std::move(w)).has_value()) {
    vm_.raw_put_field(target, field, v);
  }
}

vm::Value Endpoint::get_static(ClassId cls, std::uint32_t slot) {
  stats_.ops_sent += 1;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::get_static));
  w.write_u32(cls.value());
  w.write_u32(slot);

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_get_static(cls, slot);
  ByteReader r(*resp);
  return read_value(r, *this);
}

void Endpoint::put_static(ClassId cls, std::uint32_t slot,
                          const vm::Value& v) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::put_static));
  w.write_u32(cls.value());
  w.write_u32(slot);
  write_value(w, v, *this);
  if (defer_writes()) {
    PendingOp rec;
    rec.kind = Op::put_static;
    rec.key = cls.value();
    rec.slot = slot;
    rec.value = v;
    if (store_proven_deferrable(rec)) {
      enqueue_pending(std::move(rec), std::move(w));
      return;
    }
    stats_.unproven_stores_flushed += 1;
    flush_or_recover();
  }
  stats_.ops_sent += 1;
  if (!transact_or_recover(std::move(w)).has_value()) {
    vm_.raw_put_static(cls, slot, v);
  }
}

vm::Value Endpoint::array_get(ObjectId target, std::int64_t index) {
  stats_.ops_sent += 1;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::array_get));
  write_target(w, target);
  w.write_i64(index);

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_array_get(target, index);
  ByteReader r(*resp);
  return read_value(r, *this);
}

void Endpoint::array_put(ObjectId target, std::int64_t index,
                         const vm::Value& v) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::array_put));
  write_target(w, target);
  w.write_i64(index);
  write_value(w, v, *this);
  if (defer_writes()) {
    PendingOp rec;
    rec.kind = Op::array_put;
    rec.target = target;
    rec.index = index;
    rec.value = v;
    if (store_proven_deferrable(rec)) {
      enqueue_pending(std::move(rec), std::move(w));
      return;
    }
    stats_.unproven_stores_flushed += 1;
    flush_or_recover();
  }
  stats_.ops_sent += 1;
  if (!transact_or_recover(std::move(w)).has_value()) {
    vm_.raw_array_put(target, index, v);
  }
}

std::int64_t Endpoint::array_length(ObjectId target) {
  stats_.ops_sent += 1;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::array_len));
  write_target(w, target);

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_array_length(target);
  ByteReader r(*resp);
  return r.read_i64();
}

std::string Endpoint::chars_read(ObjectId target, std::int64_t offset,
                                 std::int64_t length) {
  stats_.ops_sent += 1;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::chars_read));
  write_target(w, target);
  w.write_i64(offset);
  w.write_i64(length);

  const auto resp = transact_or_recover_with_pending(std::move(w));
  if (!resp.has_value()) return vm_.raw_chars_read(target, offset, length);
  ByteReader r(*resp);
  return r.read_string();
}

void Endpoint::chars_write(ObjectId target, std::int64_t offset,
                           std::string_view data) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::chars_write));
  write_target(w, target);
  w.write_i64(offset);
  w.write_string(data);
  if (defer_writes()) {
    PendingOp rec;
    rec.kind = Op::chars_write;
    rec.target = target;
    rec.index = offset;
    rec.data = std::string(data);
    if (store_proven_deferrable(rec)) {
      enqueue_pending(std::move(rec), std::move(w));
      return;
    }
    stats_.unproven_stores_flushed += 1;
    flush_or_recover();
  }
  stats_.ops_sent += 1;
  if (!transact_or_recover(std::move(w)).has_value()) {
    vm_.raw_chars_write(target, offset, data);
  }
}

void Endpoint::release(std::span<const ObjectId> ids) {
  // Map stubs back to the peer's handles; skip ids we never learned handles
  // for (they were never resolvable remotely anyway).
  std::vector<ExportHandle> handles;
  handles.reserve(ids.size());
  for (const ObjectId id : ids) {
    const ExportHandle h = refs_.import_handle_for(id);
    if (h.valid()) handles.push_back(h);
    refs_.forget_import(id);
  }
  if (handles.empty() || peer_ == nullptr) return;

  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(Op::release));
  w.write_u32(static_cast<std::uint32_t>(handles.size()));
  for (const ExportHandle h : handles) w.write_u64(h.value());
  stats_.releases_sent += 1;
  try {
    transact(std::move(w));
  } catch (const PeerUnavailable&) {
    // Releases run inside GC, where recovery would be re-entrant; the peer
    // is gone, so there is nothing left to release anyway. The next real
    // operation performs the recovery.
  }
}

std::uint64_t Endpoint::migrate_objects(std::span<const ObjectId> ids) {
  if (peer_ == nullptr) {
    throw VmError(VmErrorCode::null_reference, "endpoint not connected");
  }
  // The epoch bump below fences every frame encoded before it, so the
  // write-behind queue must drain first — strictly: a terminal failure here
  // propagates (queue kept) for the platform's recovery to re-apply.
  invalidate_snapshots();
  send_queue();

  MigrationTrace trace;
  trace.begin = vm_.clock().now();
  trace.objects = ids.size();
  // A fresh epoch fences every frame still in flight from before this
  // migration; the PREPARE carries it to the peer.
  advance_epoch();
  trace.epoch = epoch_;

  // Extract everything first so cross-references among the batch serialize
  // consistently (they all become stubs locally).
  std::vector<std::unique_ptr<vm::Object>> objects;
  objects.reserve(ids.size());
  for (const ObjectId id : ids) {
    objects.push_back(vm_.migrate_out(id));
    // The peer's references to this object now resolve locally on the peer.
    refs_.release_export(id);
  }

  ByteWriter prepare;
  prepare.write_u8(static_cast<std::uint8_t>(Op::migrate_prepare));
  prepare.write_u32(static_cast<std::uint32_t>(objects.size()));
  for (const auto& obj : objects) write_object_header(prepare, *obj);
  for (const auto& obj : objects) write_object_payload(prepare, *obj, *this);

  const std::uint64_t bytes = prepare.size();
  stats_.migrations_sent += 1;
  stats_.objects_migrated_out += objects.size();
  stats_.bytes_migrated_out += bytes;

  const auto reinstate = [&] {
    for (auto& obj : objects) vm_.migrate_in(std::move(obj));
  };

  try {
    (void)transact(std::move(prepare));
  } catch (const PeerUnavailable&) {
    // PREPARE staged raw bytes at most — nothing touched the peer's heap,
    // so reinstating our extracted copies restores the exact pre-offload
    // state, no matter which message boundary the link died at.
    migrations_.push_back(trace);
    reinstate();
    throw;
  }
  trace.prepare_acked = vm_.clock().now();

  ByteWriter commit;
  commit.write_u8(static_cast<std::uint8_t>(Op::migrate_commit));
  commit.write_u32(static_cast<std::uint32_t>(objects.size()));

  std::vector<std::uint8_t> resp;
  try {
    resp = transact(std::move(commit));
  } catch (const PeerUnavailable&) {
    // Adoption is atomic on the serving side: if the peer holds the batch,
    // the COMMIT applied and only its response was lost — the peer's copies
    // are authoritative and reintegration will pull them back. Otherwise the
    // staged bytes die with the connection and we reinstate ours.
    const bool adopted = peer_ != nullptr && !objects.empty() &&
                         peer_->vm_.is_local(objects[0]->id);
    migrations_.push_back(trace);
    if (!adopted) reinstate();
    throw;
  }
  trace.commit_acked = vm_.clock().now();
  trace.committed = true;

  ByteReader r(resp);
  const auto count = r.read_u32();
  if (count != objects.size()) {
    throw OffloadError(OffloadErrorCode::protocol_error,
                       "migration response count mismatch");
  }
  // The peer exported the adopted objects back to us; remember the handles so
  // our stubs resolve on future operations.
  for (std::uint32_t i = 0; i < count; ++i) {
    const ExportHandle h{r.read_u64()};
    refs_.note_import(h, objects[i]->id);
  }
  migrations_.push_back(trace);
  return bytes;
}

// --- disconnected-operation reconcile ----------------------------------------
//
// Redo-log values travel self-described instead of via export handles:
// during a partition both heaps hold the same object ids (the hoarded
// replicas were byte copies and disconnected-era allocations exist only on
// the client), so raw ids are unambiguous and the RefMaps — cleared at
// disconnect — are not needed.

namespace {
constexpr std::uint8_t kRedoNil = 0;
constexpr std::uint8_t kRedoBool = 1;
constexpr std::uint8_t kRedoInt = 2;
constexpr std::uint8_t kRedoReal = 3;
constexpr std::uint8_t kRedoStr = 4;
constexpr std::uint8_t kRedoRef = 5;
}  // namespace

void Endpoint::write_redo_value(ByteWriter& w, const vm::Value& v,
                                const vm::DisconnectLog& log) {
  if (v.is_nil()) {
    w.write_u8(kRedoNil);
  } else if (v.is_bool()) {
    w.write_u8(kRedoBool);
    w.write_u8(v.as_bool() ? 1 : 0);
  } else if (v.is_int()) {
    w.write_u8(kRedoInt);
    w.write_i64(v.as_int());
  } else if (v.is_real()) {
    w.write_u8(kRedoReal);
    w.write_f64(v.as_real());
  } else if (v.is_str()) {
    w.write_u8(kRedoStr);
    w.write_string(v.as_str());
  } else {
    const vm::ObjectRef ref = v.as_ref();
    w.write_u8(kRedoRef);
    w.write_u64(ref.id.value());
    if (ref.is_null()) {
      w.write_u64(ExportHandle::invalid().value());
      w.write_u32(ClassId::invalid().value());
      w.write_u8(static_cast<std::uint8_t>(vm::ObjectKind::plain));
      return;
    }
    // A ref the surrogate is about to hold must keep resolving after we
    // resume: export it (which also GC-roots it here) unless it names a
    // hoarded replica — the surrogate owns that original already — or a
    // stub of some other surrogate object that escaped the hoard. The
    // handle travels so the peer's stub joins the distributed GC: when the
    // surrogate drops the stub, the release names our export and the
    // object becomes collectible again.
    const vm::Object* obj = vm_.find_object(ref.id);
    ExportHandle h = ExportHandle::invalid();
    if (obj != nullptr && !log.watches(ref.id)) {
      h = refs_.export_object(ref.id);
    }
    w.write_u64(h.value());
    w.write_u32(vm_.class_of(ref.id).value());
    w.write_u8(static_cast<std::uint8_t>(
        obj != nullptr ? obj->kind : vm::ObjectKind::plain));
  }
}

vm::Value Endpoint::read_redo_value(ByteReader& r) {
  switch (r.read_u8()) {
    case kRedoNil: return vm::Value{};
    case kRedoBool: return vm::Value{r.read_u8() != 0};
    case kRedoInt: return vm::Value{r.read_i64()};
    case kRedoReal: return vm::Value{r.read_f64()};
    case kRedoStr: return vm::Value{r.read_string()};
    case kRedoRef: {
      const ObjectId id{r.read_u64()};
      const ExportHandle h{r.read_u64()};
      const ClassId cls{r.read_u32()};
      const auto kind = static_cast<vm::ObjectKind>(r.read_u8());
      if (!id.valid()) return vm::Value{vm::ObjectRef{}};
      // Resolve local-first: a replica's id names our own original. Anything
      // unknown was born on the disconnected client — hold a stub, and
      // remember the initiator's export handle so our eventual stub sweep
      // releases its root.
      if (!vm_.knows(id)) vm_.install_stub(id, cls, kind);
      if (h.valid() && !vm_.is_local(id)) refs_.note_import(h, id);
      return vm::Value{vm::ObjectRef{id}};
    }
    default:
      throw VmError(VmErrorCode::type_mismatch, "bad redo value tag");
  }
}

void Endpoint::write_redo_entry(ByteWriter& w, const vm::RedoEntry& e,
                                const vm::DisconnectLog& log) {
  w.write_u8(static_cast<std::uint8_t>(e.kind));
  w.write_u64(e.obj.value());
  w.write_u64(e.key);
  switch (e.kind) {
    case vm::RedoEntry::Kind::field:
      write_redo_value(w, e.value, log);
      break;
    case vm::RedoEntry::Kind::array_elem: w.write_i64(e.elem); break;
    case vm::RedoEntry::Kind::chars: w.write_string(e.data); break;
  }
}

bool Endpoint::reconcile_log(const vm::DisconnectLog& log) {
  if (peer_ == nullptr) {
    throw VmError(VmErrorCode::null_reference, "endpoint not connected");
  }
  ReconcileTrace trace;
  trace.begin = vm_.clock().now();
  const auto entries = log.replay_order();
  trace.entries = entries.size();
  // A fresh epoch fences every frame from the pre-partition connection (and
  // from any earlier, abandoned reconcile attempt).
  advance_epoch();
  trace.epoch = epoch_;

  ByteWriter prepare;
  prepare.write_u8(static_cast<std::uint8_t>(Op::reconcile_prepare));
  prepare.write_u32(static_cast<std::uint32_t>(entries.size()));
  for (const vm::RedoEntry* e : entries) write_redo_entry(prepare, *e, log);

  try {
    (void)transact(std::move(prepare));
  } catch (const PeerUnavailable&) {
    // PREPARE staged raw bytes at most; the peer's heap is untouched and the
    // caller keeps its log, so a later attempt replays the same mutations.
    reconciles_.push_back(trace);
    throw;
  }
  trace.prepare_acked = vm_.clock().now();

  ByteWriter commit;
  commit.write_u8(static_cast<std::uint8_t>(Op::reconcile_commit));
  commit.write_u32(static_cast<std::uint32_t>(entries.size()));

  try {
    (void)transact(std::move(commit));
  } catch (const PeerUnavailable&) {
    // Replay is atomic on the serving side. If the peer recorded this epoch
    // as applied, only the ack was lost: the mutations landed exactly once
    // and the caller must clear its log. Otherwise the staged bytes die
    // unapplied and the caller retries with the same log later.
    const bool applied =
        peer_ != nullptr && peer_->last_applied_reconcile_epoch_ == epoch_;
    trace.applied_on_peer = applied;
    reconciles_.push_back(trace);
    if (!applied) throw;
    stats_.reconciles_completed += 1;
    stats_.reconcile_replayed_ops += entries.size();
    return true;
  }
  trace.commit_acked = vm_.clock().now();
  trace.committed = true;
  trace.applied_on_peer = true;
  reconciles_.push_back(trace);
  stats_.reconciles_completed += 1;
  stats_.reconcile_replayed_ops += entries.size();
  return true;
}

void Endpoint::apply_staged_reconcile() {
  const std::vector<std::uint8_t> staged = std::move(staged_reconcile_);
  staged_reconcile_.clear();
  has_staged_reconcile_ = false;
  ByteReader sr(staged);
  const auto count = sr.read_u32();
  // Batch-atomic replay: one journal scope covers every entry, so a decode
  // or apply error unwinds the whole log and the initiator can retry it as a
  // unit. Entries arrive in last-write order and every target is one of our
  // own originals (the client only watched hoarded replicas), applied
  // through the same raw mutators incoming RPCs use.
  const std::size_t mark = vm_.journal_begin();
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto kind = static_cast<vm::RedoEntry::Kind>(sr.read_u8());
      const ObjectId obj{sr.read_u64()};
      const std::uint64_t key = sr.read_u64();
      switch (kind) {
        case vm::RedoEntry::Kind::field:
          vm_.raw_put_field(obj, FieldId{static_cast<std::uint32_t>(key)},
                            read_redo_value(sr));
          break;
        case vm::RedoEntry::Kind::array_elem:
          vm_.raw_array_put(obj, static_cast<std::int64_t>(key),
                            vm::Value{sr.read_i64()});
          break;
        case vm::RedoEntry::Kind::chars:
          vm_.raw_chars_write(obj, static_cast<std::int64_t>(key),
                              sr.read_string());
          break;
        default:
          throw VmError(VmErrorCode::type_mismatch, "bad redo entry kind");
      }
    }
  } catch (...) {
    vm_.journal_rollback(mark);
    throw;
  }
  vm_.journal_commit();
  last_applied_reconcile_epoch_ = epoch_;
}

// --- serving ---------------------------------------------------------------------

std::optional<std::vector<std::uint8_t>> Endpoint::receive_frame(
    std::span<const std::uint8_t> wire) {
  // An incoming frame means the peer is acting: whatever we read ahead of
  // time may be about to change (and anything we cache while serving goes
  // stale the moment the requester resumes — hence the clear on both ends).
  invalidate_snapshots();
  const auto view = parse_frame(wire);
  if (!view.has_value()) {
    stats_.corrupt_frames_rejected += 1;
    return std::nullopt;
  }
  if (view->epoch < epoch_) {
    // A frame from before the current migration epoch: whatever it asks for
    // refers to a placement that no longer exists. Fence it.
    stats_.stale_frames_fenced += 1;
    return std::nullopt;
  }
  epoch_ = view->epoch;  // adopt the sender's newer fencing token
  if (last_served_seq_ != 0 && view->seq <= last_served_seq_) {
    if (fault_tolerant() && has_cached_response_ &&
        view->seq == last_served_seq_) {
      // A retry of the request we just served: at-most-once execution
      // demands we replay the reply, not the side effects.
      stats_.duplicates_served += 1;
      return make_frame(epoch_, view->seq, cached_response_);
    }
    stats_.stale_frames_fenced += 1;
    return std::nullopt;
  }

  serving_depth_ += 1;
  std::vector<std::uint8_t> resp;
  try {
    resp = serve(view->payload);
  } catch (...) {
    serving_depth_ -= 1;
    throw;
  }
  serving_depth_ -= 1;
  invalidate_snapshots();
  last_served_seq_ = view->seq;
  if (fault_tolerant()) {
    cached_response_ = resp;
    has_cached_response_ = true;
  }
  last_contact_ = vm_.clock().now();
  auto resp_frame = make_frame(epoch_, view->seq, resp);
  last_resp_frame_ = resp_frame;
  return resp_frame;
}

std::vector<std::uint8_t> Endpoint::serve(
    std::span<const std::uint8_t> request) {
  if (!request.empty() && static_cast<Op>(request[0]) == Op::batch) {
    return serve_batch(request);
  }
  stats_.rpcs_served += 1;
  return serve_one(request);
}

std::vector<std::uint8_t> Endpoint::serve_batch(
    std::span<const std::uint8_t> request) {
  ByteWriter out;
  try {
    ByteReader r(request);
    (void)r.read_u8();  // Op::batch
    const auto count = r.read_u32();
    std::vector<std::span<const std::uint8_t>> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ops.push_back(read_op_section(r));
    }
    // Batch-atomic execution: all sub-ops run inside one journal scope, so
    // an abandoned nested call unwinds every one of them — a retried batch
    // re-executes from clean state, never on top of a partial application.
    // A sub-op's *semantic* error commits (the fault-free per-op contract)
    // but stops the batch: ops after it never ran and never will.
    const std::size_t mark = vm_.journal_begin();
    const std::size_t pmark = pending_.size();
    std::vector<std::vector<std::uint8_t>> replies;
    replies.reserve(count);
    try {
      for (const auto op : ops) {
        stats_.rpcs_served += 1;
        auto reply = serve_one(op);
        const bool failed = !reply.empty() && reply[0] == kStatusVmError;
        replies.push_back(std::move(reply));
        if (failed) break;
      }
    } catch (const PeerUnavailable&) {
      vm_.journal_rollback(mark);
      if (pending_.size() > pmark) pending_.resize(pmark);
      throw;
    }
    vm_.journal_commit();
    out.write_u8(kStatusOk);
    out.write_u32(static_cast<std::uint32_t>(replies.size()));
    for (const auto& reply : replies) write_op_section(out, reply);
  } catch (const VmError& e) {
    // A malformed batch envelope; no sub-op executed.
    ByteWriter err;
    err.write_u8(kStatusVmError);
    err.write_u8(static_cast<std::uint8_t>(e.code()));
    err.write_string(e.what());
    return std::move(err).take();
  }
  return std::move(out).take();
}

std::vector<std::uint8_t> Endpoint::serve_one(
    std::span<const std::uint8_t> request) {
  ByteWriter out;
  try {
    ByteReader r(request);
    const auto op = static_cast<Op>(r.read_u8());
    switch (op) {
      case Op::invoke: {
        const ObjectId target = resolve_target(r);
        const ClassId cls{r.read_u32()};
        (void)cls;
        const MethodId method{r.read_u32()};
        const auto argc = r.read_u32();
        std::vector<vm::Value> args;
        args.reserve(argc);
        for (std::uint32_t i = 0; i < argc; ++i) {
          args.push_back(read_value(r, *this));
        }
        // Journal the frame: if a nested call back to the peer is abandoned
        // mid-execution, the partial mutations are rolled back so a local
        // re-execution starts from clean state. Semantic errors (VmError)
        // commit — partial effects are the fault-free contract.
        const std::size_t mark = vm_.journal_begin();
        const std::size_t pmark = pending_.size();
        vm::Value ret;
        try {
          ret = vm_.run_incoming_invoke(target, method, args);
          // The requester resumes when this reply lands and may then read
          // its own state directly: any write-behind ops this invocation
          // queued against it must land first, inside the same rollback
          // scope — the flush is part of executing the invoke.
          send_queue();
        } catch (const PeerUnavailable&) {
          vm_.journal_rollback(mark);
          // Deferred writes of the rolled-back execution die with it.
          if (pending_.size() > pmark) pending_.resize(pmark);
          throw;
        } catch (...) {
          vm_.journal_commit();
          throw;
        }
        vm_.journal_commit();
        out.write_u8(kStatusOk);
        write_value(out, ret, *this);
        break;
      }
      case Op::invoke_static: {
        const ClassId cls{r.read_u32()};
        const MethodId method{r.read_u32()};
        const auto argc = r.read_u32();
        std::vector<vm::Value> args;
        args.reserve(argc);
        for (std::uint32_t i = 0; i < argc; ++i) {
          args.push_back(read_value(r, *this));
        }
        const std::size_t mark = vm_.journal_begin();
        const std::size_t pmark = pending_.size();
        vm::Value ret;
        try {
          ret = vm_.run_incoming_invoke_static(cls, method, args);
          send_queue();  // see Op::invoke
        } catch (const PeerUnavailable&) {
          vm_.journal_rollback(mark);
          if (pending_.size() > pmark) pending_.resize(pmark);
          throw;
        } catch (...) {
          vm_.journal_commit();
          throw;
        }
        vm_.journal_commit();
        out.write_u8(kStatusOk);
        write_value(out, ret, *this);
        break;
      }
      case Op::get_field: {
        const ObjectId target = resolve_target(r);
        const FieldId field{r.read_u32()};
        out.write_u8(kStatusOk);
        write_value(out, vm_.raw_get_field(target, field), *this);
        break;
      }
      case Op::put_field: {
        const ObjectId target = resolve_target(r);
        const FieldId field{r.read_u32()};
        vm_.raw_put_field(target, field, read_value(r, *this));
        out.write_u8(kStatusOk);
        break;
      }
      case Op::get_static: {
        const ClassId cls{r.read_u32()};
        const auto slot = r.read_u32();
        out.write_u8(kStatusOk);
        write_value(out, vm_.raw_get_static(cls, slot), *this);
        break;
      }
      case Op::put_static: {
        const ClassId cls{r.read_u32()};
        const auto slot = r.read_u32();
        vm_.raw_put_static(cls, slot, read_value(r, *this));
        out.write_u8(kStatusOk);
        break;
      }
      case Op::array_get: {
        const ObjectId target = resolve_target(r);
        const std::int64_t index = r.read_i64();
        out.write_u8(kStatusOk);
        write_value(out, vm_.raw_array_get(target, index), *this);
        break;
      }
      case Op::array_put: {
        const ObjectId target = resolve_target(r);
        const std::int64_t index = r.read_i64();
        vm_.raw_array_put(target, index, read_value(r, *this));
        out.write_u8(kStatusOk);
        break;
      }
      case Op::array_len: {
        const ObjectId target = resolve_target(r);
        out.write_u8(kStatusOk);
        out.write_i64(vm_.raw_array_length(target));
        break;
      }
      case Op::chars_read: {
        const ObjectId target = resolve_target(r);
        const std::int64_t offset = r.read_i64();
        const std::int64_t length = r.read_i64();
        out.write_u8(kStatusOk);
        out.write_string(vm_.raw_chars_read(target, offset, length));
        break;
      }
      case Op::chars_write: {
        const ObjectId target = resolve_target(r);
        const std::int64_t offset = r.read_i64();
        const std::string data = r.read_string();
        vm_.raw_chars_write(target, offset, data);
        out.write_u8(kStatusOk);
        break;
      }
      case Op::release: {
        const auto count = r.read_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          refs_.release_export_handle(ExportHandle{r.read_u64()});
        }
        out.write_u8(kStatusOk);
        break;
      }
      case Op::migrate_prepare: {
        // Stage the encoded batch verbatim without touching the heap:
        // adoption is deferred to COMMIT, so an abort at any message
        // boundary of the transfer leaves this VM exactly as it was. A
        // higher-epoch PREPARE supersedes stale staging from an aborted
        // earlier migration; disconnect drops it entirely.
        staged_migration_.assign(request.begin() + 1, request.end());
        staged_epoch_ = epoch_;
        has_staged_migration_ = true;
        out.write_u8(kStatusOk);
        break;
      }
      case Op::migrate_commit: {
        const auto expected = r.read_u32();
        if (!has_staged_migration_ || staged_epoch_ != epoch_) {
          throw VmError(VmErrorCode::type_mismatch,
                        "migrate commit without a staged batch");
        }
        const std::vector<std::uint8_t> staged = std::move(staged_migration_);
        staged_migration_.clear();
        has_staged_migration_ = false;
        ByteReader sr(staged);
        const auto count = sr.read_u32();
        if (count != expected) {
          throw VmError(VmErrorCode::type_mismatch,
                        "migrate commit count mismatch");
        }
        std::vector<vm::Object*> adopted;
        adopted.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const ObjectHeader h = read_object_header(sr);
          auto obj = std::make_unique<vm::Object>();
          obj->id = h.id;
          obj->cls = h.cls;
          obj->kind = h.kind;
          obj->fields.assign(h.field_count, vm::Value{});
          obj->ints.assign(static_cast<std::size_t>(h.ints_len), 0);
          obj->chars.assign(static_cast<std::size_t>(h.chars_len), '\0');
          vm::Object* raw = obj.get();
          refs_.forget_import(h.id);
          vm_.migrate_in(std::move(obj));
          // Pin until the whole batch lands: migrate_in may GC to make room,
          // and earlier adoptees are not yet referenced by anything local.
          vm_.add_root(vm::ObjectRef{raw->id});
          adopted.push_back(raw);
        }
        for (vm::Object* obj : adopted) {
          const std::int64_t before = obj->size_bytes();
          read_object_payload(sr, *obj, *this);
          // String fields arrive in the payload; account their bytes.
          vm_.heap().resync_used(*obj, before);
        }
        out.write_u8(kStatusOk);
        out.write_u32(count);
        for (vm::Object* obj : adopted) {
          out.write_u64(refs_.export_object(obj->id).value());
          vm_.remove_root(vm::ObjectRef{obj->id});
        }
        break;
      }
      case Op::ping: {
        // Heartbeat probe: prove liveness, touch nothing.
        out.write_u8(kStatusOk);
        break;
      }
      case Op::reconcile_prepare: {
        // Stage the encoded redo log verbatim without touching the heap —
        // the same deferred-adoption shape as migrate_prepare, so a link
        // death at any boundary of the reconcile leaves this VM exactly as
        // it was. A higher-epoch PREPARE (a retried reconcile) supersedes
        // stale staging; disconnect drops it entirely.
        staged_reconcile_.assign(request.begin() + 1, request.end());
        staged_reconcile_epoch_ = epoch_;
        has_staged_reconcile_ = true;
        out.write_u8(kStatusOk);
        break;
      }
      case Op::reconcile_commit: {
        const auto expected = r.read_u32();
        if (!has_staged_reconcile_ || staged_reconcile_epoch_ != epoch_) {
          throw VmError(VmErrorCode::type_mismatch,
                        "reconcile commit without a staged log");
        }
        ByteReader peek(staged_reconcile_);
        if (peek.read_u32() != expected) {
          throw VmError(VmErrorCode::type_mismatch,
                        "reconcile commit count mismatch");
        }
        apply_staged_reconcile();
        out.write_u8(kStatusOk);
        break;
      }
      case Op::get_object: {
        // Read-ahead: snapshot whole plain objects (the demanded target
        // first, then prefetch candidates). Resolution is lenient — a
        // candidate that was collected, migrated away, or is not a plain
        // object is reported absent, not an error; the sender falls back to
        // the per-op path for the demanded target if it needs to.
        const auto count = r.read_u32();
        out.write_u8(kStatusOk);
        out.write_u32(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const WireRef wire = read_wire_ref(r);
          out.write_u64(wire.id.value());
          vm::Object* obj = nullptr;
          try {
            const vm::ObjectRef ref = translate_in(wire);
            obj = vm_.find_object(ref.id);
          } catch (const VmError&) {
            obj = nullptr;
          }
          if (obj == nullptr || obj->kind != vm::ObjectKind::plain) {
            out.write_u8(0);
            continue;
          }
          out.write_u8(1);
          out.write_u32(static_cast<std::uint32_t>(obj->fields.size()));
          for (const vm::Value& v : obj->fields) write_value(out, v, *this);
        }
        break;
      }
      default:
        throw VmError(VmErrorCode::type_mismatch, "unknown rpc opcode");
    }
  } catch (const VmError& e) {
    ByteWriter err;
    err.write_u8(kStatusVmError);
    err.write_u8(static_cast<std::uint8_t>(e.code()));
    err.write_string(e.what());
    return std::move(err).take();
  }
  return std::move(out).take();
}

}  // namespace aide::rpc
