// Partition detection: distinguishing sustained disconnection from loss.
//
// The endpoint's retry loop already absorbs transient loss — drops, reorder
// and short outages ride the Jacobson adaptive RTO and succeed on a later
// attempt. A *sustained* partition looks different on two axes at once:
//
//   1. consecutive timeouts — every attempt of every RPC times out, so the
//      consecutive-timeout run grows without ever being reset by a delivery;
//   2. heartbeat silence — nothing at all has been heard from the peer for
//      longer than several full retry envelopes.
//
// Either signal alone misfires: a run of unlucky drops can produce a few
// consecutive timeouts in a healthy link (axis 1), and an idle client hears
// nothing for long stretches without the link being down (axis 2). The
// detector therefore declares suspicion only when BOTH hold. It is fed from
// the endpoint's transact loop (note_delivery on every frame that makes it
// back, note_timeout on every expired attempt) and is purely passive:
// counters and timestamps only — no RNG draws, no clock advances — so an
// armed detector never perturbs byte-reproducible schedules.
#pragma once

#include <cstdint>

#include "common/simclock.hpp"

namespace aide::rpc {

struct PartitionPolicy {
  // Off by default: the platform arms the detector only when its
  // disconnected-operation mode is enabled.
  bool enabled = false;
  // Consecutive attempt timeouts (with no intervening delivery) before the
  // link is suspect. The default retry policy exhausts 4 attempts per RPC,
  // so 3 trips within the first failed call during a true outage.
  std::uint32_t consecutive_timeouts = 3;
  // Minimum silence — virtual time since the last frame was heard — before
  // timeouts are believed. Covers the idle-link case and debounces bursts
  // of drop-induced timeouts on a live link.
  SimDuration silence_after = sim_ms(60);
};

class PartitionDetector {
 public:
  void set_policy(const PartitionPolicy& p) noexcept { policy_ = p; }
  [[nodiscard]] const PartitionPolicy& policy() const noexcept {
    return policy_;
  }

  // A frame arrived from the peer (reply delivered): the link is alive.
  void note_delivery(SimTime now) noexcept {
    consecutive_timeouts_ = 0;
    last_delivery_ = now;
  }

  // One send attempt expired without a reply.
  void note_timeout(SimTime /*now*/) noexcept { consecutive_timeouts_ += 1; }

  // Current length of the consecutive-timeout run.
  [[nodiscard]] std::uint32_t consecutive_timeouts() const noexcept {
    return consecutive_timeouts_;
  }

  // Virtual time since the last delivery. Before anything was ever heard the
  // connection epoch start (reset()) anchors the silence window.
  [[nodiscard]] SimDuration silence(SimTime now) const noexcept {
    return now - last_delivery_;
  }

  // True when the policy is armed and both thresholds hold.
  [[nodiscard]] bool suspected(SimTime now) const noexcept {
    return policy_.enabled &&
           consecutive_timeouts_ >= policy_.consecutive_timeouts &&
           silence(now) >= policy_.silence_after;
  }

  // Fresh connection epoch (connect/readmit): forget the old link's history
  // and anchor the silence window at `now`.
  void reset(SimTime now) noexcept {
    consecutive_timeouts_ = 0;
    last_delivery_ = now;
  }

 private:
  PartitionPolicy policy_;
  std::uint32_t consecutive_timeouts_ = 0;
  SimTime last_delivery_ = 0;
};

}  // namespace aide::rpc
