// Wire serialization for values and migrated objects.
//
// Every remote interaction between the two VMs is really encoded to bytes and
// decoded on the other side — the byte counts are what the link model charges
// and what the execution monitor records as "information exchanged".
// Object references are translated through a RefTranslator implemented by the
// endpoint over its reference-mapping tables (paper 3.2: each JVM maps the
// other's references into its own namespace).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "vm/object.hpp"
#include "vm/value.hpp"

namespace aide::rpc {

// Transport framing: every message between the two endpoints travels inside
// a 16-byte header
//
//   [u32 crc][u32 epoch][u64 seq][payload...]
//
// where `crc` is a CRC32 over everything after itself. The epoch is the
// sender's migration-epoch fencing token (stale frames from before an offload
// are rejected); `seq` is the per-sender RPC sequence number that drives
// at-most-once dedup. A frame whose CRC does not match is indistinguishable
// from a lost message to the sender: it times out and retransmits.
inline constexpr std::size_t kFrameHeaderSize = 16;

struct FrameView {
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  std::span<const std::uint8_t> payload;
};

[[nodiscard]] std::vector<std::uint8_t> make_frame(
    std::uint32_t epoch, std::uint64_t seq,
    std::span<const std::uint8_t> payload);
// Validates the header and CRC; nullopt means corrupt or truncated.
[[nodiscard]] std::optional<FrameView> parse_frame(
    std::span<const std::uint8_t> frame) noexcept;

// A reference as it appears on the wire: the owning node and the owner's
// export handle, plus enough metadata (identity, class, shape) for the
// receiver to materialize a stub without a round trip.
struct WireRef {
  NodeId owner;
  ExportHandle handle = ExportHandle::invalid();
  ObjectId id;
  ClassId cls;
  vm::ObjectKind kind = vm::ObjectKind::plain;
};

class RefTranslator {
 public:
  virtual ~RefTranslator() = default;
  // Outgoing: local reference -> wire form (registering exports as needed).
  virtual WireRef translate_out(vm::ObjectRef ref) = 0;
  // Incoming: wire form -> local reference (installing stubs as needed).
  virtual vm::ObjectRef translate_in(const WireRef& wire) = 0;
};

void write_wire_ref(ByteWriter& w, const WireRef& ref);
[[nodiscard]] WireRef read_wire_ref(ByteReader& r);

// Multi-op framing: a batch payload is [u8 op][u32 count] followed by `count`
// length-prefixed sections, each holding one legacy single-op request (or,
// on the reply side, one complete single-op reply including its status byte).
// One frame header and one CRC cover the whole batch, so a corrupted or
// stale batch is rejected as a unit and retried as a unit.
void write_op_section(ByteWriter& w, std::span<const std::uint8_t> op);
[[nodiscard]] std::span<const std::uint8_t> read_op_section(ByteReader& r);

void write_value(ByteWriter& w, const vm::Value& v, RefTranslator& tr);
[[nodiscard]] vm::Value read_value(ByteReader& r, RefTranslator& tr);

// Object migration is encoded in two sections so that reference cycles among
// co-migrated objects resolve: first all object headers (identity + shape),
// then all payloads (fields / array contents).
void write_object_header(ByteWriter& w, const vm::Object& obj);
struct ObjectHeader {
  ObjectId id;
  ClassId cls;
  vm::ObjectKind kind;
  std::int64_t ints_len = 0;
  std::int64_t chars_len = 0;
  std::uint32_t field_count = 0;
};
[[nodiscard]] ObjectHeader read_object_header(ByteReader& r);

void write_object_payload(ByteWriter& w, const vm::Object& obj,
                          RefTranslator& tr);
// Fills `obj` (created from its header) from the payload section.
void read_object_payload(ByteReader& r, vm::Object& obj, RefTranslator& tr);

}  // namespace aide::rpc
