#include "graph/mincut.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace aide::graph {

namespace {

using NodeIndex = ExecGraph::NodeIndex;

// Deterministically ordered component index: algorithms iterate components in
// sorted-key order so results do not depend on storage order. Positions are
// resolved through the graph's interning table (no key comparisons after the
// initial sort) and edges land in per-position adjacency lists, sorted by
// neighbor position so weight accumulations visit neighbors in the same
// ascending order the old dense-matrix loops did.
struct SortedIndex {
  std::vector<ComponentKey> keys;   // position -> key (ascending)
  std::vector<NodeIndex> nodes;     // position -> graph node index
  std::vector<std::size_t> pos_of;  // graph node index -> position

  struct Arc {
    std::size_t pos;            // neighbor position
    double weight;              // policy weight of the shared edge
    const EdgeInfo* info;       // shared edge record
  };
  std::vector<std::vector<Arc>> adj;

  [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
};

SortedIndex build_index(const ExecGraph& graph, const EdgeWeightFn& weight) {
  SortedIndex ix;
  const std::size_t n = graph.node_count();
  ix.nodes.resize(n);
  std::iota(ix.nodes.begin(), ix.nodes.end(), NodeIndex{0});
  std::sort(ix.nodes.begin(), ix.nodes.end(), [&](NodeIndex a, NodeIndex b) {
    return graph.key_of(a) < graph.key_of(b);
  });

  ix.keys.resize(n);
  ix.pos_of.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    ix.keys[p] = graph.key_of(ix.nodes[p]);
    ix.pos_of[ix.nodes[p]] = p;
  }

  ix.adj.assign(n, {});
  for (ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    const EdgeInfo& info = graph.edge_at(s);
    const double wt = weight(info);
    const std::size_t pa = ix.pos_of[a];
    const std::size_t pb = ix.pos_of[b];
    ix.adj[pa].push_back(SortedIndex::Arc{pb, wt, &info});
    ix.adj[pb].push_back(SortedIndex::Arc{pa, wt, &info});
  }
  for (auto& arcs : ix.adj) {
    std::sort(arcs.begin(), arcs.end(),
              [](const SortedIndex::Arc& x, const SortedIndex::Arc& y) {
                return x.pos < y.pos;
              });
  }
  return ix;
}

}  // namespace

void modified_mincut_visit(
    const ExecGraph& graph, const EdgeWeightFn& weight,
    const std::function<void(const Candidate&)>& visit) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) return;

  // in_client[i]: component i is in the client partition (partition "A").
  std::vector<bool> in_client(n, false);
  std::size_t client_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.node_at(ix.nodes[i]).pinned) {
      in_client[i] = true;
      ++client_count;
    }
  }
  if (client_count == 0) {
    // No pinned anchor: keep the largest-memory component on the client.
    std::size_t anchor = 0;
    std::int64_t best_mem = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      const auto mem = graph.node_at(ix.nodes[i]).mem_bytes;
      if (mem > best_mem) {
        best_mem = mem;
        anchor = i;
      }
    }
    in_client[anchor] = true;
    client_count = 1;
  }
  if (client_count == n) return;  // everything pinned: nothing to offload

  // conn[i]: total policy weight between component i (in B) and partition A.
  // Neighbors are visited position-ascending, matching the dense j-loop of
  // the reference implementation (skipped non-edges contribute exactly 0).
  std::vector<double> conn(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_client[i]) continue;
    for (const auto& arc : ix.adj[i]) {
      if (in_client[arc.pos]) conn[i] += arc.weight;
    }
  }

  // The ONE running candidate: start from "offload everything offloadable"
  // and peel components off as they move to the client.
  Candidate cur;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_client[i]) {
      cur.offload.insert(ix.keys[i]);
      const NodeInfo& node = graph.node_at(ix.nodes[i]);
      cur.offload_mem_bytes += node.mem_bytes;
      cur.offload_self_time += node.exec_self_time;
    }
  }
  for (ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    if (in_client[ix.pos_of[a]] != in_client[ix.pos_of[b]]) {
      const EdgeInfo& e = graph.edge_at(s);
      cur.cut_weight += weight(e);
      cur.cut_bytes += e.bytes;
      cur.cut_invocations += e.invocations;
      cur.cut_accesses += e.accesses;
    }
  }
  visit(cur);

  // Move the most-connected component of B into A, one at a time, updating
  // the candidate's cut statistics with O(deg(best)) deltas per move.
  while (n - client_count > 1) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_client[i]) continue;
      if (best == n || conn[i] > conn[best]) best = i;
    }
    assert(best < n);

    // Edges from `best` to A stop crossing the cut; edges to B start.
    for (const auto& arc : ix.adj[best]) {
      const EdgeInfo& e = *arc.info;
      if (in_client[arc.pos]) {
        cur.cut_weight -= arc.weight;
        cur.cut_bytes -= e.bytes;
        cur.cut_invocations -= e.invocations;
        cur.cut_accesses -= e.accesses;
      } else {
        cur.cut_weight += arc.weight;
        cur.cut_bytes += e.bytes;
        cur.cut_invocations += e.invocations;
        cur.cut_accesses += e.accesses;
        conn[arc.pos] += arc.weight;
      }
    }
    const NodeInfo& node = graph.node_at(ix.nodes[best]);
    cur.offload_mem_bytes -= node.mem_bytes;
    cur.offload_self_time -= node.exec_self_time;
    cur.offload.erase(ix.keys[best]);
    in_client[best] = true;
    ++client_count;
    visit(cur);
  }
}

std::vector<Candidate> modified_mincut(const ExecGraph& graph,
                                       const EdgeWeightFn& weight) {
  std::vector<Candidate> candidates;
  modified_mincut_visit(graph, weight,
                        [&](const Candidate& c) { candidates.push_back(c); });
  return candidates;
}

GlobalCut stoer_wagner_min_cut(const ExecGraph& graph,
                               const EdgeWeightFn& weight) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) {
    throw std::invalid_argument("stoer_wagner_min_cut: need >= 2 components");
  }

  // Supernode adjacency: adjw[u][v] = contracted weight between supernodes.
  // Contraction folds t's row into s's with one binary add per neighbor —
  // the same additions the dense matrix performed, without touching the
  // (mostly zero) rest of the row.
  std::vector<std::unordered_map<std::size_t, double>> adjw(n);
  for (std::size_t i = 0; i < n; ++i) {
    adjw[i].reserve(ix.adj[i].size());
    for (const auto& arc : ix.adj[i]) adjw[i][arc.pos] += arc.weight;
  }

  // merged[i] lists the original vertex indices contracted into supernode i.
  std::vector<std::vector<std::size_t>> merged(n);
  for (std::size_t i = 0; i < n; ++i) merged[i] = {i};
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_side;

  // Per-phase buffers, reused across phases.
  std::vector<double> conn(n);
  std::vector<bool> added(n);
  std::vector<std::size_t> order;
  order.reserve(n);

  while (alive_count > 1) {
    // Maximum-adjacency ordering ("minimum cut phase"). Vertices are scanned
    // position-ascending, the same order the reference's erase-stable active
    // vector produced.
    std::fill(conn.begin(), conn.end(), 0.0);
    std::fill(added.begin(), added.end(), false);
    order.clear();

    for (std::size_t step = 0; step < alive_count; ++step) {
      std::size_t sel = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (!alive[v] || added[v]) continue;
        if (sel == n || conn[v] > conn[sel]) sel = v;
      }
      added[sel] = true;
      order.push_back(sel);
      for (const auto& [v, wt] : adjw[sel]) {
        if (alive[v] && !added[v]) conn[v] += wt;
      }
    }

    const std::size_t t = order.back();
    const std::size_t s = order[order.size() - 2];
    const double cut_of_phase = conn[t];
    if (cut_of_phase < best_weight) {
      best_weight = cut_of_phase;
      best_side = merged[t];
    }

    // Contract t into s.
    for (const auto& [v, wt] : adjw[t]) {
      if (!alive[v] || v == s) continue;
      adjw[s][v] += wt;
      adjw[v][s] = adjw[s][v];
      adjw[v].erase(t);
    }
    adjw[s].erase(t);
    adjw[t].clear();
    merged[s].insert(merged[s].end(), merged[t].begin(), merged[t].end());
    merged[t].clear();
    alive[t] = false;
    --alive_count;
  }

  GlobalCut cut;
  cut.weight = best_weight;
  for (const auto v : best_side) cut.side.insert(ix.keys[v]);
  return cut;
}

GlobalCut brute_force_min_cut(const ExecGraph& graph,
                              const EdgeWeightFn& weight) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2 || n > 20) {
    throw std::invalid_argument("brute_force_min_cut: need 2 <= n <= 20");
  }

  // Small dense matrix (n <= 20) built from the adjacency lists.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& arc : ix.adj[i]) w[i][arc.pos] += arc.weight;
  }

  double best_weight = std::numeric_limits<double>::infinity();
  std::uint32_t best_mask = 0;

  // Fix vertex 0 on the "outside" to enumerate each cut exactly once.
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    double cut_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool side_i = (i > 0) && ((mask >> (i - 1)) & 1u);
      for (std::size_t j = i + 1; j < n; ++j) {
        const bool side_j = (j > 0) && ((mask >> (j - 1)) & 1u);
        if (side_i != side_j) cut_w += w[i][j];
      }
    }
    if (cut_w < best_weight) {
      best_weight = cut_w;
      best_mask = mask;
    }
  }

  GlobalCut cut;
  cut.weight = best_weight;
  for (std::size_t i = 1; i < n; ++i) {
    if ((best_mask >> (i - 1)) & 1u) cut.side.insert(ix.keys[i]);
  }
  return cut;
}

}  // namespace aide::graph
