#include "graph/mincut.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace aide::graph {

namespace {

using NodeIndex = ExecGraph::NodeIndex;

// Deterministically ordered component index: algorithms iterate components in
// sorted-key order so results do not depend on storage order. Positions are
// resolved through the graph's interning table (no key comparisons after the
// initial sort) and edges land in per-position adjacency lists, sorted by
// neighbor position so weight accumulations visit neighbors in the same
// ascending order the old dense-matrix loops did.
struct SortedIndex {
  std::vector<ComponentKey> keys;   // position -> key (ascending)
  std::vector<NodeIndex> nodes;     // position -> graph node index
  std::vector<std::size_t> pos_of;  // graph node index -> position

  struct Arc {
    std::size_t pos;            // neighbor position
    double weight;              // policy weight of the shared edge
    const EdgeInfo* info;       // shared edge record
  };
  std::vector<std::vector<Arc>> adj;

  [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
};

SortedIndex build_index(const ExecGraph& graph, const EdgeWeightFn& weight) {
  SortedIndex ix;
  const std::size_t n = graph.node_count();
  ix.nodes.resize(n);
  std::iota(ix.nodes.begin(), ix.nodes.end(), NodeIndex{0});
  std::sort(ix.nodes.begin(), ix.nodes.end(), [&](NodeIndex a, NodeIndex b) {
    return graph.key_of(a) < graph.key_of(b);
  });

  ix.keys.resize(n);
  ix.pos_of.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    ix.keys[p] = graph.key_of(ix.nodes[p]);
    ix.pos_of[ix.nodes[p]] = p;
  }

  ix.adj.assign(n, {});
  for (ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    const EdgeInfo& info = graph.edge_at(s);
    const double wt = weight(info);
    const std::size_t pa = ix.pos_of[a];
    const std::size_t pb = ix.pos_of[b];
    ix.adj[pa].push_back(SortedIndex::Arc{pb, wt, &info});
    ix.adj[pb].push_back(SortedIndex::Arc{pa, wt, &info});
  }
  for (auto& arcs : ix.adj) {
    std::sort(arcs.begin(), arcs.end(),
              [](const SortedIndex::Arc& x, const SortedIndex::Arc& y) {
                return x.pos < y.pos;
              });
  }
  return ix;
}

}  // namespace

void modified_mincut_visit(
    const ExecGraph& graph, const EdgeWeightFn& weight,
    const std::function<void(const Candidate&)>& visit) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) return;

  // in_client[i]: component i is in the client partition (partition "A").
  std::vector<bool> in_client(n, false);
  std::size_t client_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.node_at(ix.nodes[i]).pinned) {
      in_client[i] = true;
      ++client_count;
    }
  }
  if (client_count == 0) {
    // No pinned anchor: keep the largest-memory component on the client.
    std::size_t anchor = 0;
    std::int64_t best_mem = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      const auto mem = graph.node_at(ix.nodes[i]).mem_bytes;
      if (mem > best_mem) {
        best_mem = mem;
        anchor = i;
      }
    }
    in_client[anchor] = true;
    client_count = 1;
  }
  if (client_count == n) return;  // everything pinned: nothing to offload

  // conn[i]: total policy weight between component i (in B) and partition A.
  // Neighbors are visited position-ascending, matching the dense j-loop of
  // the reference implementation (skipped non-edges contribute exactly 0).
  std::vector<double> conn(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_client[i]) continue;
    for (const auto& arc : ix.adj[i]) {
      if (in_client[arc.pos]) conn[i] += arc.weight;
    }
  }

  // The ONE running candidate: start from "offload everything offloadable"
  // and peel components off as they move to the client.
  Candidate cur;
  for (std::size_t i = 0; i < n; ++i) {
    if (!in_client[i]) {
      cur.offload.insert(ix.keys[i]);
      const NodeInfo& node = graph.node_at(ix.nodes[i]);
      cur.offload_mem_bytes += node.mem_bytes;
      cur.offload_self_time += node.exec_self_time;
    }
  }
  for (ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    if (in_client[ix.pos_of[a]] != in_client[ix.pos_of[b]]) {
      const EdgeInfo& e = graph.edge_at(s);
      cur.cut_weight += weight(e);
      cur.cut_bytes += e.bytes;
      cur.cut_invocations += e.invocations;
      cur.cut_accesses += e.accesses;
    }
  }
  visit(cur);

  // Move the most-connected component of B into A, one at a time, updating
  // the candidate's cut statistics with O(deg(best)) deltas per move.
  while (n - client_count > 1) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_client[i]) continue;
      if (best == n || conn[i] > conn[best]) best = i;
    }
    assert(best < n);

    // Edges from `best` to A stop crossing the cut; edges to B start.
    for (const auto& arc : ix.adj[best]) {
      const EdgeInfo& e = *arc.info;
      if (in_client[arc.pos]) {
        cur.cut_weight -= arc.weight;
        cur.cut_bytes -= e.bytes;
        cur.cut_invocations -= e.invocations;
        cur.cut_accesses -= e.accesses;
      } else {
        cur.cut_weight += arc.weight;
        cur.cut_bytes += e.bytes;
        cur.cut_invocations += e.invocations;
        cur.cut_accesses += e.accesses;
        conn[arc.pos] += arc.weight;
      }
    }
    const NodeInfo& node = graph.node_at(ix.nodes[best]);
    cur.offload_mem_bytes -= node.mem_bytes;
    cur.offload_self_time -= node.exec_self_time;
    cur.offload.erase(ix.keys[best]);
    in_client[best] = true;
    ++client_count;
    visit(cur);
  }
}

std::vector<Candidate> modified_mincut(const ExecGraph& graph,
                                       const EdgeWeightFn& weight) {
  std::vector<Candidate> candidates;
  modified_mincut_visit(graph, weight,
                        [&](const Candidate& c) { candidates.push_back(c); });
  return candidates;
}

GlobalCut stoer_wagner_min_cut(const ExecGraph& graph,
                               const EdgeWeightFn& weight) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) {
    throw std::invalid_argument("stoer_wagner_min_cut: need >= 2 components");
  }

  // Supernode adjacency: adjw[u][v] = contracted weight between supernodes.
  // Contraction folds t's row into s's with one binary add per neighbor —
  // the same additions the dense matrix performed, without touching the
  // (mostly zero) rest of the row.
  std::vector<std::unordered_map<std::size_t, double>> adjw(n);
  for (std::size_t i = 0; i < n; ++i) {
    adjw[i].reserve(ix.adj[i].size());
    for (const auto& arc : ix.adj[i]) adjw[i][arc.pos] += arc.weight;
  }

  // merged[i] lists the original vertex indices contracted into supernode i.
  std::vector<std::vector<std::size_t>> merged(n);
  for (std::size_t i = 0; i < n; ++i) merged[i] = {i};
  std::vector<bool> alive(n, true);
  std::size_t alive_count = n;

  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_side;

  // Per-phase buffers, reused across phases.
  std::vector<double> conn(n);
  std::vector<bool> added(n);
  std::vector<std::size_t> order;
  order.reserve(n);

  while (alive_count > 1) {
    // Maximum-adjacency ordering ("minimum cut phase"). Vertices are scanned
    // position-ascending, the same order the reference's erase-stable active
    // vector produced.
    std::fill(conn.begin(), conn.end(), 0.0);
    std::fill(added.begin(), added.end(), false);
    order.clear();

    for (std::size_t step = 0; step < alive_count; ++step) {
      std::size_t sel = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (!alive[v] || added[v]) continue;
        if (sel == n || conn[v] > conn[sel]) sel = v;
      }
      added[sel] = true;
      order.push_back(sel);
      for (const auto& [v, wt] : adjw[sel]) {
        if (alive[v] && !added[v]) conn[v] += wt;
      }
    }

    const std::size_t t = order.back();
    const std::size_t s = order[order.size() - 2];
    const double cut_of_phase = conn[t];
    if (cut_of_phase < best_weight) {
      best_weight = cut_of_phase;
      best_side = merged[t];
    }

    // Contract t into s.
    for (const auto& [v, wt] : adjw[t]) {
      if (!alive[v] || v == s) continue;
      adjw[s][v] += wt;
      adjw[v][s] = adjw[s][v];
      adjw[v].erase(t);
    }
    adjw[s].erase(t);
    adjw[t].clear();
    merged[s].insert(merged[s].end(), merged[t].begin(), merged[t].end());
    merged[t].clear();
    alive[t] = false;
    --alive_count;
  }

  GlobalCut cut;
  cut.weight = best_weight;
  for (const auto v : best_side) cut.side.insert(ix.keys[v]);
  return cut;
}

namespace {

// Minimum cut of a dense weighted subgraph (Stoer-Wagner over local indices
// 0..m-1). Returns the cut weight and one side as ascending local indices.
// Deterministic: ascending scans with strict `>` selection, so ties always
// resolve to the lowest index. A disconnected subgraph yields weight 0 with
// one connected piece as the side.
struct LocalCut {
  double weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> side;
};

LocalCut local_min_cut(const std::vector<std::vector<double>>& w) {
  const std::size_t m = w.size();
  assert(m >= 2);

  std::vector<std::vector<double>> adjw = w;
  std::vector<std::vector<std::size_t>> merged(m);
  for (std::size_t i = 0; i < m; ++i) merged[i] = {i};
  std::vector<bool> alive(m, true);
  std::size_t alive_count = m;

  LocalCut best;
  std::vector<double> conn(m);
  std::vector<bool> added(m);
  std::vector<std::size_t> order;
  order.reserve(m);

  while (alive_count > 1) {
    std::fill(conn.begin(), conn.end(), 0.0);
    std::fill(added.begin(), added.end(), false);
    order.clear();

    for (std::size_t step = 0; step < alive_count; ++step) {
      std::size_t sel = m;
      for (std::size_t v = 0; v < m; ++v) {
        if (!alive[v] || added[v]) continue;
        if (sel == m || conn[v] > conn[sel]) sel = v;
      }
      added[sel] = true;
      order.push_back(sel);
      for (std::size_t v = 0; v < m; ++v) {
        if (alive[v] && !added[v]) conn[v] += adjw[sel][v];
      }
    }

    const std::size_t t = order.back();
    const std::size_t s = order[order.size() - 2];
    if (conn[t] < best.weight) {
      best.weight = conn[t];
      best.side = merged[t];
    }

    for (std::size_t v = 0; v < m; ++v) {
      if (!alive[v] || v == s || v == t) continue;
      adjw[s][v] += adjw[t][v];
      adjw[v][s] = adjw[s][v];
    }
    merged[s].insert(merged[s].end(), merged[t].begin(), merged[t].end());
    merged[t].clear();
    alive[t] = false;
    --alive_count;
  }

  std::sort(best.side.begin(), best.side.end());
  return best;
}

// Shared setup for the k-way functions: sorted, deduplicated member keys and
// the dense weight matrix of the subgraph they induce (edges leaving the
// subset are dropped — they cross the client cut regardless of how the
// offload side is arranged).
struct Subgraph {
  std::vector<ComponentKey> keys;         // local index -> key (ascending)
  std::vector<std::vector<double>> w;     // dense pairwise weight
};

Subgraph build_subgraph(const ExecGraph& graph,
                        const std::vector<ComponentKey>& members,
                        const EdgeWeightFn& weight) {
  Subgraph sub;
  sub.keys = members;
  std::sort(sub.keys.begin(), sub.keys.end());
  sub.keys.erase(std::unique(sub.keys.begin(), sub.keys.end()),
                 sub.keys.end());

  const std::size_t m = sub.keys.size();
  std::unordered_map<ComponentKey, std::size_t> local;
  local.reserve(m);
  for (std::size_t i = 0; i < m; ++i) local.emplace(sub.keys[i], i);

  sub.w.assign(m, std::vector<double>(m, 0.0));
  for (ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    const auto ia = local.find(graph.key_of(a));
    const auto ib = local.find(graph.key_of(b));
    if (ia == local.end() || ib == local.end()) continue;
    if (ia->second == ib->second) continue;
    const double wt = weight(graph.edge_at(s));
    sub.w[ia->second][ib->second] += wt;
    sub.w[ib->second][ia->second] += wt;
  }
  return sub;
}

double cross_weight_of(const std::vector<std::vector<double>>& w,
                       const std::vector<std::size_t>& label) {
  double total = 0.0;
  for (std::size_t i = 0; i < label.size(); ++i) {
    for (std::size_t j = i + 1; j < label.size(); ++j) {
      if (label[i] != label[j]) total += w[i][j];
    }
  }
  return total;
}

KWayCut finish_kway(const Subgraph& sub,
                    const std::vector<std::size_t>& label) {
  KWayCut cut;
  cut.cross_weight = cross_weight_of(sub.w, label);
  // Parts ordered by first appearance, i.e. by smallest member key: labels
  // are renumbered in the order ascending local indices first use them.
  std::unordered_map<std::size_t, std::size_t> renumber;
  for (std::size_t i = 0; i < label.size(); ++i) {
    const auto [it, fresh] =
        renumber.emplace(label[i], cut.parts.size());
    if (fresh) cut.parts.emplace_back();
    cut.parts[it->second].insert(sub.keys[i]);
  }
  return cut;
}

}  // namespace

KWayCut k_way_split(const ExecGraph& graph,
                    const std::vector<ComponentKey>& members, std::size_t k,
                    const EdgeWeightFn& weight) {
  if (members.empty() || k == 0) {
    throw std::invalid_argument("k_way_split: need members and k >= 1");
  }
  const Subgraph sub = build_subgraph(graph, members, weight);
  const std::size_t m = sub.keys.size();
  const std::size_t target = std::min(k, m);

  // Each current part caches the min cut of its induced subgraph; only the
  // two pieces produced by a split need recomputation.
  struct Part {
    std::vector<std::size_t> verts;  // ascending local indices
    LocalCut cut;                    // cut.side indexes into verts
  };
  const auto compute_cut = [&](Part& p) {
    if (p.verts.size() < 2) {
      p.cut = LocalCut{};  // infinity: never selected for splitting
      return;
    }
    std::vector<std::vector<double>> w(
        p.verts.size(), std::vector<double>(p.verts.size(), 0.0));
    for (std::size_t i = 0; i < p.verts.size(); ++i) {
      for (std::size_t j = 0; j < p.verts.size(); ++j) {
        w[i][j] = sub.w[p.verts[i]][p.verts[j]];
      }
    }
    p.cut = local_min_cut(w);
  };

  std::vector<Part> parts(1);
  parts[0].verts.resize(m);
  std::iota(parts[0].verts.begin(), parts[0].verts.end(), std::size_t{0});
  compute_cut(parts[0]);

  while (parts.size() < target) {
    // Apply the cheapest available split; ties go to the lowest part index.
    std::size_t best = parts.size();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (parts[p].verts.size() < 2) continue;
      if (best == parts.size() ||
          parts[p].cut.weight < parts[best].cut.weight) {
        best = p;
      }
    }
    assert(best < parts.size());  // target <= m guarantees a splittable part

    Part& old = parts[best];
    std::vector<bool> in_side(old.verts.size(), false);
    for (const std::size_t li : old.cut.side) in_side[li] = true;
    Part a, b;
    for (std::size_t i = 0; i < old.verts.size(); ++i) {
      (in_side[i] ? a : b).verts.push_back(old.verts[i]);
    }
    compute_cut(a);
    compute_cut(b);
    // The piece holding the part's smallest vertex keeps its slot; the other
    // goes to the back. (Final ordering is canonicalized below regardless.)
    const bool a_first = a.verts.front() < b.verts.front();
    parts[best] = a_first ? std::move(a) : std::move(b);
    parts.push_back(a_first ? std::move(b) : std::move(a));
  }

  std::vector<std::size_t> label(m, 0);
  // Order parts by smallest member before labelling so the output matches
  // the oracle's canonical first-appearance order.
  std::sort(parts.begin(), parts.end(), [](const Part& x, const Part& y) {
    return x.verts.front() < y.verts.front();
  });
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (const std::size_t v : parts[p].verts) label[v] = p;
  }
  return finish_kway(sub, label);
}

KWayCut brute_force_k_way(const ExecGraph& graph,
                          const std::vector<ComponentKey>& members,
                          std::size_t k, const EdgeWeightFn& weight) {
  if (members.empty() || k == 0) {
    throw std::invalid_argument("brute_force_k_way: need members and k >= 1");
  }
  const Subgraph sub = build_subgraph(graph, members, weight);
  const std::size_t m = sub.keys.size();
  if (m > 14 || k > 6) {
    throw std::invalid_argument("brute_force_k_way: need m <= 14, k <= 6");
  }
  const std::size_t target = std::min(k, m);

  // Canonical set-partition enumeration via restricted growth strings:
  // label[0] = 0 and label[i] <= max(label[0..i-1]) + 1, keeping exactly
  // `target` labels in use. The first optimum in enumeration order wins,
  // which is deterministic by construction.
  std::vector<std::size_t> label(m, 0);
  std::vector<std::size_t> best_label;
  double best_weight = std::numeric_limits<double>::infinity();

  const std::function<void(std::size_t, std::size_t)> enumerate =
      [&](std::size_t i, std::size_t used) {
        if (i == m) {
          if (used != target) return;
          const double cw = cross_weight_of(sub.w, label);
          if (cw < best_weight) {
            best_weight = cw;
            best_label = label;
          }
          return;
        }
        // Prune: the remaining positions must be able to reach `target`
        // labels, and no branch may exceed it.
        if (used + (m - i) < target) return;
        const std::size_t cap = std::min(used, target - 1);
        for (std::size_t lab = 0; lab <= cap; ++lab) {
          label[i] = lab;
          enumerate(i + 1, std::max(used, lab + 1));
        }
      };
  enumerate(1, 1);
  return finish_kway(sub, best_label);
}

GlobalCut brute_force_min_cut(const ExecGraph& graph,
                              const EdgeWeightFn& weight) {
  const SortedIndex ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2 || n > 20) {
    throw std::invalid_argument("brute_force_min_cut: need 2 <= n <= 20");
  }

  // Small dense matrix (n <= 20) built from the adjacency lists.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& arc : ix.adj[i]) w[i][arc.pos] += arc.weight;
  }

  double best_weight = std::numeric_limits<double>::infinity();
  std::uint32_t best_mask = 0;

  // Fix vertex 0 on the "outside" to enumerate each cut exactly once.
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    double cut_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool side_i = (i > 0) && ((mask >> (i - 1)) & 1u);
      for (std::size_t j = i + 1; j < n; ++j) {
        const bool side_j = (j > 0) && ((mask >> (j - 1)) & 1u);
        if (side_i != side_j) cut_w += w[i][j];
      }
    }
    if (cut_w < best_weight) {
      best_weight = cut_w;
      best_mask = mask;
    }
  }

  GlobalCut cut;
  cut.weight = best_weight;
  for (std::size_t i = 1; i < n; ++i) {
    if ((best_mask >> (i - 1)) & 1u) cut.side.insert(ix.keys[i]);
  }
  return cut;
}

}  // namespace aide::graph
