#include "graph/exec_graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace aide::graph {

namespace {

std::string node_id_str(const ComponentKey& key) {
  std::ostringstream os;
  os << "n" << key.cls.value();
  if (key.object.valid()) os << "_" << key.object.value();
  return os.str();
}

std::string node_label(const ComponentKey& key,
                       const std::unordered_map<ComponentKey, std::string>*
                           names,
                       const NodeInfo& info) {
  std::ostringstream os;
  if (names != nullptr) {
    const auto it = names->find(key);
    if (it != names->end()) {
      os << it->second;
    } else {
      os << key;
    }
  } else {
    os << key;
  }
  os << "\\n" << info.mem_bytes / 1024 << "KB";
  return os.str();
}

}  // namespace

void ExecGraph::remove_components(
    const std::unordered_set<ComponentKey>& dead) {
  if (dead.empty()) return;

  // Compact the node arrays, preserving relative order.
  std::vector<NodeIndex> remap(keys_.size(), npos);
  NodeIndex live = 0;
  for (NodeIndex i = 0; i < keys_.size(); ++i) {
    if (dead.contains(keys_[i])) continue;
    remap[i] = live;
    if (live != i) {
      keys_[live] = keys_[i];
      infos_[live] = infos_[i];
    }
    ++live;
  }
  if (live == keys_.size()) return;  // nothing listed was actually present
  keys_.resize(live);
  infos_.resize(live);

  index_.clear();
  for (NodeIndex i = 0; i < live; ++i) index_[keys_[i]] = i;

  // Compact the edge arrays, dropping edges that touch a dead node.
  EdgeSlot live_edges = 0;
  for (EdgeSlot s = 0; s < edge_infos_.size(); ++s) {
    const auto [a, b] = edge_ends_[s];
    if (remap[a] == npos || remap[b] == npos) continue;
    edge_ends_[live_edges] = {remap[a], remap[b]};
    edge_infos_[live_edges] = edge_infos_[s];
    ++live_edges;
  }
  edge_ends_.resize(live_edges);
  edge_infos_.resize(live_edges);

  // Rebuild adjacency and the edge index from the surviving slots.
  adj_.assign(live, {});
  edge_index_.clear();
  for (EdgeSlot s = 0; s < live_edges; ++s) {
    const auto [a, b] = edge_ends_[s];
    edge_index_[pack_edge(a, b)] = s;
    adj_[a].push_back(AdjEntry{b, s});
    adj_[b].push_back(AdjEntry{a, s});
  }
}

std::string ExecGraph::to_dot(
    const std::unordered_map<ComponentKey, int>* placement,
    const std::unordered_map<ComponentKey, std::string>* names) const {
  // Sort nodes/edges for deterministic output.
  std::vector<NodeIndex> sorted_nodes(keys_.size());
  std::iota(sorted_nodes.begin(), sorted_nodes.end(), NodeIndex{0});
  std::sort(sorted_nodes.begin(), sorted_nodes.end(),
            [&](NodeIndex a, NodeIndex b) { return keys_[a] < keys_[b]; });

  std::vector<EdgeSlot> sorted_edges(edge_infos_.size());
  std::iota(sorted_edges.begin(), sorted_edges.end(), EdgeSlot{0});
  std::sort(sorted_edges.begin(), sorted_edges.end(),
            [&](EdgeSlot x, EdgeSlot y) {
              const EdgeKey a =
                  make_edge_key(keys_[edge_ends_[x].first],
                                keys_[edge_ends_[x].second]);
              const EdgeKey b =
                  make_edge_key(keys_[edge_ends_[y].first],
                                keys_[edge_ends_[y].second]);
              return std::tie(a.a, a.b) < std::tie(b.a, b.b);
            });

  std::ostringstream os;
  os << "graph exec {\n  node [shape=ellipse, fontsize=9];\n";
  for (const NodeIndex i : sorted_nodes) {
    const ComponentKey& key = keys_[i];
    const NodeInfo& info = infos_[i];
    os << "  " << node_id_str(key) << " [label=\""
       << node_label(key, names, info) << "\"";
    if (info.pinned) os << ", style=bold";
    if (placement != nullptr) {
      const auto it = placement->find(key);
      const int part = (it == placement->end()) ? 0 : it->second;
      os << ", color=" << (part == 0 ? "\"black\"" : "\"blue\"");
    }
    os << "];\n";
  }
  for (const EdgeSlot s : sorted_edges) {
    const EdgeKey ekey = make_edge_key(keys_[edge_ends_[s].first],
                                       keys_[edge_ends_[s].second]);
    const EdgeInfo& info = edge_infos_[s];
    bool remote = false;
    if (placement != nullptr) {
      const auto ia = placement->find(ekey.a);
      const auto ib = placement->find(ekey.b);
      const int pa = (ia == placement->end()) ? 0 : ia->second;
      const int pb = (ib == placement->end()) ? 0 : ib->second;
      remote = (pa != pb);
    }
    os << "  " << node_id_str(ekey.a) << " -- " << node_id_str(ekey.b)
       << " [label=\"" << info.interactions() << "/" << info.bytes << "B\"";
    if (remote) os << ", style=dashed, len=3.0";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aide::graph
