#include "graph/exec_graph.hpp"

#include <algorithm>
#include <sstream>

namespace aide::graph {

namespace {

std::string node_id_str(const ComponentKey& key) {
  std::ostringstream os;
  os << "n" << key.cls.value();
  if (key.object.valid()) os << "_" << key.object.value();
  return os.str();
}

std::string node_label(const ComponentKey& key,
                       const std::unordered_map<ComponentKey, std::string>*
                           names,
                       const NodeInfo& info) {
  std::ostringstream os;
  if (names != nullptr) {
    const auto it = names->find(key);
    if (it != names->end()) {
      os << it->second;
    } else {
      os << key;
    }
  } else {
    os << key;
  }
  os << "\\n" << info.mem_bytes / 1024 << "KB";
  return os.str();
}

}  // namespace

std::string ExecGraph::to_dot(
    const std::unordered_map<ComponentKey, int>* placement,
    const std::unordered_map<ComponentKey, std::string>* names) const {
  // Sort nodes/edges for deterministic output.
  std::vector<const NodeMap::value_type*> sorted_nodes;
  sorted_nodes.reserve(nodes_.size());
  for (const auto& kv : nodes_) sorted_nodes.push_back(&kv);
  std::sort(sorted_nodes.begin(), sorted_nodes.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::vector<const EdgeMap::value_type*> sorted_edges;
  sorted_edges.reserve(edges_.size());
  for (const auto& kv : edges_) sorted_edges.push_back(&kv);
  std::sort(sorted_edges.begin(), sorted_edges.end(),
            [](const auto* a, const auto* b) {
              return std::tie(a->first.a, a->first.b) <
                     std::tie(b->first.a, b->first.b);
            });

  std::ostringstream os;
  os << "graph exec {\n  node [shape=ellipse, fontsize=9];\n";
  for (const auto* kv : sorted_nodes) {
    const auto& [key, info] = *kv;
    os << "  " << node_id_str(key) << " [label=\""
       << node_label(key, names, info) << "\"";
    if (info.pinned) os << ", style=bold";
    if (placement != nullptr) {
      const auto it = placement->find(key);
      const int part = (it == placement->end()) ? 0 : it->second;
      os << ", color=" << (part == 0 ? "\"black\"" : "\"blue\"");
    }
    os << "];\n";
  }
  for (const auto* kv : sorted_edges) {
    const auto& [ekey, info] = *kv;
    bool remote = false;
    if (placement != nullptr) {
      const auto ia = placement->find(ekey.a);
      const auto ib = placement->find(ekey.b);
      const int pa = (ia == placement->end()) ? 0 : ia->second;
      const int pb = (ib == placement->end()) ? 0 : ib->second;
      remote = (pa != pb);
    }
    os << "  " << node_id_str(ekey.a) << " -- " << node_id_str(ekey.b)
       << " [label=\"" << info.interactions() << "/" << info.bytes << "B\"";
    if (remote) os << ", style=dashed, len=3.0";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aide::graph
