// The execution graph (paper section 3.4).
//
// A fully-connected weighted graph reflecting the application's execution
// history. Each node represents a component (normally a class) annotated
// with the memory occupied by its live objects and the CPU self-time spent in
// its methods (Figure 9 attribution). Each edge represents the interactions
// between two components, annotated with the interaction count and the total
// bytes exchanged through parameters, return values and data accesses.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/simclock.hpp"
#include "graph/component.hpp"

namespace aide::graph {

struct NodeInfo {
  // Bytes currently occupied by live objects of this component.
  std::int64_t mem_bytes = 0;
  // Peak of mem_bytes over the component's lifetime.
  std::int64_t peak_mem_bytes = 0;
  // CPU self-time spent in this component's methods (nested calls excluded).
  SimDuration exec_self_time = 0;
  // Components that cannot leave the client (native state, statics).
  bool pinned = false;
  // Number of live objects aggregated into this node.
  std::int64_t live_objects = 0;
};

struct EdgeInfo {
  std::uint64_t invocations = 0;  // method-invocation interaction events
  std::uint64_t accesses = 0;     // data-field access interaction events
  std::uint64_t bytes = 0;        // parameters + returns + accessed data

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return invocations + accesses;
  }
};

struct EdgeKey {
  ComponentKey a, b;  // canonical: a <= b

  friend bool operator==(const EdgeKey&, const EdgeKey&) noexcept = default;
};

}  // namespace aide::graph

namespace std {
template <>
struct hash<aide::graph::EdgeKey> {
  size_t operator()(const aide::graph::EdgeKey& e) const noexcept {
    const size_t h1 = std::hash<aide::graph::ComponentKey>{}(e.a);
    const size_t h2 = std::hash<aide::graph::ComponentKey>{}(e.b);
    return h1 * 0x100000001B3ULL ^ h2;
  }
};
}  // namespace std

namespace aide::graph {

class ExecGraph {
 public:
  using NodeMap = std::unordered_map<ComponentKey, NodeInfo>;
  using EdgeMap = std::unordered_map<EdgeKey, EdgeInfo>;

  // --- construction -------------------------------------------------------

  NodeInfo& node(const ComponentKey& key) {
    return nodes_[key];
  }

  [[nodiscard]] const NodeInfo* find_node(const ComponentKey& key) const {
    const auto it = nodes_.find(key);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  // Records one interaction (invocation or access) between two components.
  // Self-interactions (same component) are not recorded, matching the paper:
  // "Information is recorded only for interactions between two different
  // classes."
  void record_interaction(const ComponentKey& from, const ComponentKey& to,
                          bool is_invocation, std::uint64_t transferred_bytes) {
    if (from == to) return;
    auto& e = edges_[make_edge_key(from, to)];
    if (is_invocation) {
      e.invocations += 1;
    } else {
      e.accesses += 1;
    }
    e.bytes += transferred_bytes;
    // Interactions imply node existence even before any allocation.
    nodes_[from];
    nodes_[to];
  }

  // Installs a complete edge record (used when rebuilding/merging graphs).
  void set_edge(const ComponentKey& a, const ComponentKey& b,
                const EdgeInfo& info) {
    if (a == b) return;
    edges_[make_edge_key(a, b)] = info;
    nodes_[a];
    nodes_[b];
  }

  void add_memory(const ComponentKey& key, std::int64_t delta_bytes,
                  std::int64_t delta_objects) {
    auto& n = nodes_[key];
    n.mem_bytes += delta_bytes;
    n.live_objects += delta_objects;
    if (n.mem_bytes > n.peak_mem_bytes) n.peak_mem_bytes = n.mem_bytes;
  }

  void add_self_time(const ComponentKey& key, SimDuration delta) {
    nodes_[key].exec_self_time += delta;
  }

  void set_pinned(const ComponentKey& key, bool pinned) {
    nodes_[key].pinned = pinned;
  }

  // --- inspection ---------------------------------------------------------

  [[nodiscard]] const NodeMap& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const EdgeMap& edges() const noexcept { return edges_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] const EdgeInfo* find_edge(const ComponentKey& a,
                                          const ComponentKey& b) const {
    const auto it = edges_.find(make_edge_key(a, b));
    return it == edges_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::int64_t total_mem_bytes() const noexcept {
    std::int64_t total = 0;
    for (const auto& [key, n] : nodes_) total += n.mem_bytes;
    return total;
  }

  [[nodiscard]] SimDuration total_self_time() const noexcept {
    SimDuration total = 0;
    for (const auto& [key, n] : nodes_) total += n.exec_self_time;
    return total;
  }

  [[nodiscard]] std::vector<ComponentKey> pinned_components() const {
    std::vector<ComponentKey> out;
    for (const auto& [key, n] : nodes_) {
      if (n.pinned) out.push_back(key);
    }
    return out;
  }

  // Approximate in-memory footprint of the graph itself: the monitoring
  // storage-overhead experiment (Table 2 discussion) reports this.
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return nodes_.size() * (sizeof(ComponentKey) + sizeof(NodeInfo)) +
           edges_.size() * (sizeof(EdgeKey) + sizeof(EdgeInfo));
  }

  void clear() {
    nodes_.clear();
    edges_.clear();
  }

  // Renders the graph in Graphviz DOT format. `placement` optionally maps
  // components to a partition index; edges that cross partitions are drawn
  // dashed (Figure 5b's "stretched" remote interactions).
  [[nodiscard]] std::string to_dot(
      const std::unordered_map<ComponentKey, int>* placement = nullptr,
      const std::unordered_map<ComponentKey, std::string>* names = nullptr)
      const;

  static EdgeKey make_edge_key(const ComponentKey& x, const ComponentKey& y) {
    return (y < x) ? EdgeKey{y, x} : EdgeKey{x, y};
  }

 private:
  NodeMap nodes_;
  EdgeMap edges_;
};

}  // namespace aide::graph
