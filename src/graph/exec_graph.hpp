// The execution graph (paper section 3.4).
//
// A fully-connected weighted graph reflecting the application's execution
// history. Each node represents a component (normally a class) annotated
// with the memory occupied by its live objects and the CPU self-time spent in
// its methods (Figure 9 attribution). Each edge represents the interactions
// between two components, annotated with the interaction count and the total
// bytes exchanged through parameters, return values and data accesses.
//
// Storage layout: the graph owns a ComponentKey -> NodeIndex interning table
// and keeps all node and edge records in flat vectors. A NodeIndex is a dense
// uint32 handle that stays valid until remove_components()/clear(); an
// EdgeSlot is the same for edges. The monitoring hot path (one VM event ->
// one edge bump) resolves its components to indices once and then touches
// only vector slots — no hashing and no allocation in steady state. The
// per-node adjacency lists give the partitioning algorithms O(deg(v)) access
// to a component's interactions without scanning the whole edge set.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/simclock.hpp"
#include "graph/component.hpp"

namespace aide::graph {

struct NodeInfo {
  // Bytes currently occupied by live objects of this component.
  std::int64_t mem_bytes = 0;
  // Peak of mem_bytes over the component's lifetime.
  std::int64_t peak_mem_bytes = 0;
  // CPU self-time spent in this component's methods (nested calls excluded).
  SimDuration exec_self_time = 0;
  // Components that cannot leave the client (native state, statics).
  bool pinned = false;
  // Number of live objects aggregated into this node.
  std::int64_t live_objects = 0;
};

struct EdgeInfo {
  std::uint64_t invocations = 0;  // method-invocation interaction events
  std::uint64_t accesses = 0;     // data-field access interaction events
  std::uint64_t bytes = 0;        // parameters + returns + accessed data

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return invocations + accesses;
  }
};

struct EdgeKey {
  ComponentKey a, b;  // canonical: a <= b

  friend bool operator==(const EdgeKey&, const EdgeKey&) noexcept = default;
};

}  // namespace aide::graph

namespace std {
template <>
struct hash<aide::graph::EdgeKey> {
  size_t operator()(const aide::graph::EdgeKey& e) const noexcept {
    const size_t h1 = std::hash<aide::graph::ComponentKey>{}(e.a);
    const size_t h2 = std::hash<aide::graph::ComponentKey>{}(e.b);
    return h1 * 0x100000001B3ULL ^ h2;
  }
};
}  // namespace std

namespace aide::graph {

class ExecGraph {
 public:
  // Dense handle for an interned component; valid until the node set shrinks
  // (remove_components/clear). Assigned in interning order, 0..node_count-1.
  using NodeIndex = std::uint32_t;
  // Dense handle for an undirected edge record, 0..edge_count-1.
  using EdgeSlot = std::uint32_t;
  static constexpr NodeIndex npos = 0xFFFFFFFFu;

  // One adjacency entry of node v: the neighbor and the shared edge slot.
  struct AdjEntry {
    NodeIndex neighbor;
    EdgeSlot slot;
  };

  // --- interning ----------------------------------------------------------

  // Returns the dense index for `key`, creating the node if needed.
  NodeIndex intern(const ComponentKey& key) {
    const auto [it, inserted] =
        index_.try_emplace(key, static_cast<NodeIndex>(keys_.size()));
    if (inserted) {
      keys_.push_back(key);
      infos_.emplace_back();
      adj_.emplace_back();
    }
    return it->second;
  }

  // Dense index of `key`, or npos when the component is not in the graph.
  [[nodiscard]] NodeIndex index_of(const ComponentKey& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? npos : it->second;
  }

  [[nodiscard]] const ComponentKey& key_of(NodeIndex i) const {
    return keys_[i];
  }
  [[nodiscard]] NodeInfo& node_at(NodeIndex i) { return infos_[i]; }
  [[nodiscard]] const NodeInfo& node_at(NodeIndex i) const {
    return infos_[i];
  }

  [[nodiscard]] const std::vector<AdjEntry>& adjacency(NodeIndex i) const {
    return adj_[i];
  }

  // --- construction -------------------------------------------------------

  NodeInfo& node(const ComponentKey& key) { return infos_[intern(key)]; }

  [[nodiscard]] const NodeInfo* find_node(const ComponentKey& key) const {
    const NodeIndex i = index_of(key);
    return i == npos ? nullptr : &infos_[i];
  }

  // Finds or creates the undirected edge {a, b}. Returns npos for a == b:
  // self-interactions are never recorded, matching the paper ("Information
  // is recorded only for interactions between two different classes").
  EdgeSlot interaction_edge(NodeIndex a, NodeIndex b) {
    if (a == b) return npos;
    const auto [it, inserted] =
        edge_index_.try_emplace(pack_edge(a, b),
                                static_cast<EdgeSlot>(edge_infos_.size()));
    if (inserted) {
      edge_infos_.emplace_back();
      edge_ends_.emplace_back(a, b);
      adj_[a].push_back(AdjEntry{b, it->second});
      adj_[b].push_back(AdjEntry{a, it->second});
    }
    return it->second;
  }

  // O(1) hot-path update of an existing edge slot.
  void bump_edge(EdgeSlot slot, bool is_invocation,
                 std::uint64_t transferred_bytes) {
    EdgeInfo& e = edge_infos_[slot];
    // Branchless: the event kind flips between bursts, so two unconditional
    // adds beat a mispredict-prone branch on the hot path.
    e.invocations += static_cast<std::uint64_t>(is_invocation);
    e.accesses += static_cast<std::uint64_t>(!is_invocation);
    e.bytes += transferred_bytes;
  }

  // Records one interaction between two already-interned components and
  // returns the edge slot touched (npos for a self-interaction), so callers
  // on the hot path can cache it and bump directly next time.
  EdgeSlot record_interaction_at(NodeIndex from, NodeIndex to,
                                 bool is_invocation,
                                 std::uint64_t transferred_bytes) {
    const EdgeSlot slot = interaction_edge(from, to);
    if (slot != npos) bump_edge(slot, is_invocation, transferred_bytes);
    return slot;
  }

  // Key-based convenience wrapper (cold paths and tests).
  void record_interaction(const ComponentKey& from, const ComponentKey& to,
                          bool is_invocation, std::uint64_t transferred_bytes) {
    if (from == to) return;
    record_interaction_at(intern(from), intern(to), is_invocation,
                          transferred_bytes);
  }

  // Installs a complete edge record (used when rebuilding/merging graphs).
  void set_edge(const ComponentKey& a, const ComponentKey& b,
                const EdgeInfo& info) {
    if (a == b) return;
    const EdgeSlot slot = interaction_edge(intern(a), intern(b));
    edge_infos_[slot] = info;
  }

  void add_memory(const ComponentKey& key, std::int64_t delta_bytes,
                  std::int64_t delta_objects) {
    add_memory_at(intern(key), delta_bytes, delta_objects);
  }

  void add_memory_at(NodeIndex i, std::int64_t delta_bytes,
                     std::int64_t delta_objects) {
    NodeInfo& n = infos_[i];
    n.mem_bytes += delta_bytes;
    n.live_objects += delta_objects;
    if (n.mem_bytes > n.peak_mem_bytes) n.peak_mem_bytes = n.mem_bytes;
  }

  void add_self_time(const ComponentKey& key, SimDuration delta) {
    infos_[intern(key)].exec_self_time += delta;
  }

  void add_self_time_at(NodeIndex i, SimDuration delta) {
    infos_[i].exec_self_time += delta;
  }

  void set_pinned(const ComponentKey& key, bool pinned) {
    infos_[intern(key)].pinned = pinned;
  }

  // --- inspection ---------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const noexcept {
    return keys_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edge_infos_.size();
  }

  [[nodiscard]] EdgeInfo& edge_at(EdgeSlot slot) { return edge_infos_[slot]; }
  [[nodiscard]] const EdgeInfo& edge_at(EdgeSlot slot) const {
    return edge_infos_[slot];
  }
  [[nodiscard]] std::pair<NodeIndex, NodeIndex> edge_ends(
      EdgeSlot slot) const {
    return edge_ends_[slot];
  }

  [[nodiscard]] const EdgeInfo* find_edge(const ComponentKey& a,
                                          const ComponentKey& b) const {
    const NodeIndex ia = index_of(a);
    const NodeIndex ib = index_of(b);
    if (ia == npos || ib == npos || ia == ib) return nullptr;
    const auto it = edge_index_.find(pack_edge(ia, ib));
    return it == edge_index_.end() ? nullptr : &edge_infos_[it->second];
  }

  // Lightweight iteration views. They yield the same {key, info} /
  // {EdgeKey, EdgeInfo} pairs the old map-backed containers did, so range-for
  // call sites keep working; iteration order is interning order (stable and
  // deterministic for a given event stream).
  class NodesView {
   public:
    class iterator {
     public:
      iterator(const ExecGraph* g, std::size_t i) : g_(g), i_(i) {}
      std::pair<const ComponentKey&, const NodeInfo&> operator*() const {
        return {g_->keys_[i_], g_->infos_[i_]};
      }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const ExecGraph* g_;
      std::size_t i_;
    };
    explicit NodesView(const ExecGraph* g) : g_(g) {}
    [[nodiscard]] iterator begin() const { return {g_, 0}; }
    [[nodiscard]] iterator end() const { return {g_, g_->keys_.size()}; }
    [[nodiscard]] std::size_t size() const { return g_->keys_.size(); }

   private:
    const ExecGraph* g_;
  };

  class EdgesView {
   public:
    class iterator {
     public:
      iterator(const ExecGraph* g, std::size_t i) : g_(g), i_(i) {}
      std::pair<EdgeKey, const EdgeInfo&> operator*() const {
        const auto [a, b] = g_->edge_ends_[i_];
        return {make_edge_key(g_->keys_[a], g_->keys_[b]),
                g_->edge_infos_[i_]};
      }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const ExecGraph* g_;
      std::size_t i_;
    };
    explicit EdgesView(const ExecGraph* g) : g_(g) {}
    [[nodiscard]] iterator begin() const { return {g_, 0}; }
    [[nodiscard]] iterator end() const {
      return {g_, g_->edge_infos_.size()};
    }
    [[nodiscard]] std::size_t size() const { return g_->edge_infos_.size(); }

   private:
    const ExecGraph* g_;
  };

  [[nodiscard]] NodesView nodes() const noexcept { return NodesView{this}; }
  [[nodiscard]] EdgesView edges() const noexcept { return EdgesView{this}; }

  [[nodiscard]] std::int64_t total_mem_bytes() const noexcept {
    std::int64_t total = 0;
    for (const NodeInfo& n : infos_) total += n.mem_bytes;
    return total;
  }

  [[nodiscard]] SimDuration total_self_time() const noexcept {
    SimDuration total = 0;
    for (const NodeInfo& n : infos_) total += n.exec_self_time;
    return total;
  }

  [[nodiscard]] std::vector<ComponentKey> pinned_components() const {
    std::vector<ComponentKey> out;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (infos_[i].pinned) out.push_back(keys_[i]);
    }
    return out;
  }

  // Model footprint of the graph's payload records: one (key, info) record
  // per node and edge. This is the paper's Table 2 storage-overhead metric;
  // kept layout-independent so the reported numbers stay comparable across
  // storage reorganizations. storage_bytes_actual() reports the real
  // allocated footprint of the dense representation.
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return keys_.size() * (sizeof(ComponentKey) + sizeof(NodeInfo)) +
           edge_infos_.size() * (sizeof(EdgeKey) + sizeof(EdgeInfo));
  }

  // Allocated bytes of the dense storage: flat vectors by capacity plus an
  // estimate of the two interning hash tables (node entry + bucket pointer).
  [[nodiscard]] std::size_t storage_bytes_actual() const noexcept {
    std::size_t total = keys_.capacity() * sizeof(ComponentKey) +
                        infos_.capacity() * sizeof(NodeInfo) +
                        adj_.capacity() * sizeof(std::vector<AdjEntry>) +
                        edge_infos_.capacity() * sizeof(EdgeInfo) +
                        edge_ends_.capacity() *
                            sizeof(std::pair<NodeIndex, NodeIndex>);
    for (const auto& a : adj_) total += a.capacity() * sizeof(AdjEntry);
    total += index_.size() *
                 (sizeof(ComponentKey) + sizeof(NodeIndex) + 2 * sizeof(void*)) +
             index_.bucket_count() * sizeof(void*);
    total += edge_index_.size() *
                 (sizeof(std::uint64_t) + sizeof(EdgeSlot) + 2 * sizeof(void*)) +
             edge_index_.bucket_count() * sizeof(void*);
    return total;
  }

  void clear() {
    keys_.clear();
    infos_.clear();
    adj_.clear();
    index_.clear();
    edge_infos_.clear();
    edge_ends_.clear();
    edge_index_.clear();
  }

  // Erases every component in `dead` (with its edges) in one O(V + E)
  // compaction pass. Surviving nodes keep their relative interning order but
  // are assigned new dense indices — callers holding NodeIndex/EdgeSlot
  // values must re-resolve them afterwards.
  void remove_components(const std::unordered_set<ComponentKey>& dead);

  // Renders the graph in Graphviz DOT format. `placement` optionally maps
  // components to a partition index; edges that cross partitions are drawn
  // dashed (Figure 5b's "stretched" remote interactions).
  [[nodiscard]] std::string to_dot(
      const std::unordered_map<ComponentKey, int>* placement = nullptr,
      const std::unordered_map<ComponentKey, std::string>* names = nullptr)
      const;

  static EdgeKey make_edge_key(const ComponentKey& x, const ComponentKey& y) {
    return (y < x) ? EdgeKey{y, x} : EdgeKey{x, y};
  }

 private:
  static std::uint64_t pack_edge(NodeIndex a, NodeIndex b) noexcept {
    if (b < a) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  // Dense node storage: keys_[i] / infos_[i] / adj_[i] describe node i.
  std::vector<ComponentKey> keys_;
  std::vector<NodeInfo> infos_;
  std::vector<std::vector<AdjEntry>> adj_;
  std::unordered_map<ComponentKey, NodeIndex> index_;

  // Dense edge storage: edge_infos_[s] / edge_ends_[s] describe slot s; the
  // edge index maps the packed (min, max) node-index pair to its slot.
  std::vector<EdgeInfo> edge_infos_;
  std::vector<std::pair<NodeIndex, NodeIndex>> edge_ends_;
  std::unordered_map<std::uint64_t, EdgeSlot> edge_index_;
};

}  // namespace aide::graph
