#include "graph/mincut_reference.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <stdexcept>

namespace aide::graph::reference {

namespace {

// Deterministically ordered component index: algorithms iterate components in
// sorted order so results do not depend on hash-map iteration order.
struct Indexed {
  std::vector<ComponentKey> keys;      // index -> key
  std::vector<std::vector<double>> w;  // dense weight matrix

  [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
};

Indexed build_index(const ExecGraph& graph, const EdgeWeightFn& weight) {
  Indexed ix;
  ix.keys.reserve(graph.node_count());
  for (const auto& [key, info] : graph.nodes()) ix.keys.push_back(key);
  std::sort(ix.keys.begin(), ix.keys.end());

  std::map<ComponentKey, std::size_t> pos;
  for (std::size_t i = 0; i < ix.keys.size(); ++i) pos[ix.keys[i]] = i;

  ix.w.assign(ix.keys.size(), std::vector<double>(ix.keys.size(), 0.0));
  for (const auto& [ekey, einfo] : graph.edges()) {
    const auto ia = pos.find(ekey.a);
    const auto ib = pos.find(ekey.b);
    if (ia == pos.end() || ib == pos.end()) continue;
    const double wt = weight(einfo);
    ix.w[ia->second][ib->second] += wt;
    ix.w[ib->second][ia->second] += wt;
  }
  return ix;
}

}  // namespace

std::vector<Candidate> modified_mincut(const ExecGraph& graph,
                                       const EdgeWeightFn& weight) {
  const Indexed ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) return {};

  // in_client[i]: component i is in the client partition (partition "A").
  std::vector<bool> in_client(n, false);
  std::size_t client_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.find_node(ix.keys[i])->pinned) {
      in_client[i] = true;
      ++client_count;
    }
  }
  if (client_count == 0) {
    // No pinned anchor: keep the largest-memory component on the client.
    std::size_t anchor = 0;
    std::int64_t best_mem = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      const auto mem = graph.find_node(ix.keys[i])->mem_bytes;
      if (mem > best_mem) {
        best_mem = mem;
        anchor = i;
      }
    }
    in_client[anchor] = true;
    client_count = 1;
  }
  if (client_count == n) return {};  // everything pinned: nothing to offload

  // conn[i]: total policy weight between component i (in B) and partition A.
  std::vector<double> conn(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (in_client[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_client[j]) conn[i] += ix.w[i][j];
    }
  }

  // Full cut-statistics rescan for the current (A, B) split.
  auto cut_stats = [&](Candidate& cand) {
    cand.cut_weight = 0.0;
    cand.cut_bytes = 0;
    cand.cut_invocations = 0;
    cand.cut_accesses = 0;
    for (const auto& [ekey, einfo] : graph.edges()) {
      const bool a_off = cand.offload.contains(ekey.a);
      const bool b_off = cand.offload.contains(ekey.b);
      if (a_off != b_off) {
        cand.cut_weight += weight(einfo);
        cand.cut_bytes += einfo.bytes;
        cand.cut_invocations += einfo.invocations;
        cand.cut_accesses += einfo.accesses;
      }
    }
  };

  auto snapshot = [&]() {
    Candidate cand;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_client[i]) {
        const ComponentKey& key = ix.keys[i];
        cand.offload.insert(key);
        const NodeInfo* node = graph.find_node(key);
        cand.offload_mem_bytes += node->mem_bytes;
        cand.offload_self_time += node->exec_self_time;
      }
    }
    cut_stats(cand);
    return cand;
  };

  std::vector<Candidate> candidates;
  candidates.reserve(n - client_count);

  // Candidate 0: offload every non-pinned component.
  candidates.push_back(snapshot());

  // Move the most-connected component of B into A, one at a time, recording
  // each intermediate partitioning, until B holds a single component.
  while (n - client_count > 1) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_client[i]) continue;
      if (best == n || conn[i] > conn[best]) best = i;
    }
    assert(best < n);
    in_client[best] = true;
    ++client_count;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_client[i]) conn[i] += ix.w[i][best];
    }
    candidates.push_back(snapshot());
  }
  return candidates;
}

GlobalCut stoer_wagner_min_cut(const ExecGraph& graph,
                               const EdgeWeightFn& weight) {
  Indexed ix = build_index(graph, weight);
  const std::size_t n = ix.size();
  if (n < 2) {
    throw std::invalid_argument("stoer_wagner_min_cut: need >= 2 components");
  }

  // merged[i] lists the original vertex indices contracted into supernode i.
  std::vector<std::vector<std::size_t>> merged(n);
  for (std::size_t i = 0; i < n; ++i) merged[i] = {i};
  std::vector<std::size_t> active(n);
  for (std::size_t i = 0; i < n; ++i) active[i] = i;

  double best_weight = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_side;

  while (active.size() > 1) {
    // Maximum-adjacency ordering ("minimum cut phase").
    std::vector<double> conn(n, 0.0);
    std::vector<bool> added(n, false);
    std::vector<std::size_t> order;
    order.reserve(active.size());

    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t sel = n;
      for (const auto v : active) {
        if (added[v]) continue;
        if (sel == n || conn[v] > conn[sel]) sel = v;
      }
      added[sel] = true;
      order.push_back(sel);
      for (const auto v : active) {
        if (!added[v]) conn[v] += ix.w[sel][v];
      }
    }

    const std::size_t t = order.back();
    const std::size_t s = order[order.size() - 2];
    const double cut_of_phase = conn[t];
    if (cut_of_phase < best_weight) {
      best_weight = cut_of_phase;
      best_side = merged[t];
    }

    // Contract t into s.
    for (const auto v : active) {
      if (v == s || v == t) continue;
      ix.w[s][v] += ix.w[t][v];
      ix.w[v][s] = ix.w[s][v];
    }
    merged[s].insert(merged[s].end(), merged[t].begin(), merged[t].end());
    active.erase(std::find(active.begin(), active.end(), t));
  }

  GlobalCut cut;
  cut.weight = best_weight;
  for (const auto v : best_side) cut.side.insert(ix.keys[v]);
  return cut;
}

}  // namespace aide::graph::reference
