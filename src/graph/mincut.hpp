// Graph-partitioning algorithms (paper section 3.3).
//
// Finding the best partitioning of an execution graph is NP-complete, so the
// paper derives a heuristic from the Stoer–Wagner MINCUT algorithm: seed the
// client partition with all components that cannot be offloaded (classes with
// native methods), then repeatedly move the remaining component with the
// greatest connectivity to the client partition, recording every intermediate
// partitioning as a candidate. The partitioning policy then evaluates all
// candidates and selects the one that best satisfies it.
//
// This module provides:
//   * modified_mincut()      — the paper's candidate-series heuristic
//   * stoer_wagner_min_cut() — the classic global minimum cut (baseline and
//                              ablation comparator)
//   * brute_force_min_cut()  — exponential oracle used by property tests
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/simclock.hpp"
#include "graph/exec_graph.hpp"

namespace aide::graph {

// Scalar weight assigned to an edge when partitioning. The default models the
// cost of remote interactions: each crossing interaction pays a fixed
// per-message overhead plus its payload bytes.
struct EdgeWeightFn {
  double bytes_factor = 1.0;
  double per_interaction_bytes = 64.0;

  [[nodiscard]] double operator()(const EdgeInfo& e) const noexcept {
    return bytes_factor * static_cast<double>(e.bytes) +
           per_interaction_bytes * static_cast<double>(e.interactions());
  }
};

// One candidate partitioning: `offload` is the set of components that would
// move to the surrogate; everything else stays on the client.
struct Candidate {
  std::unordered_set<ComponentKey> offload;
  double cut_weight = 0.0;             // policy edge weight across the cut
  std::uint64_t cut_bytes = 0;         // historical bytes across the cut
  std::uint64_t cut_invocations = 0;   // invocations across the cut
  std::uint64_t cut_accesses = 0;      // data accesses across the cut
  std::int64_t offload_mem_bytes = 0;  // client heap freed if selected
  SimDuration offload_self_time = 0;   // CPU self-time moved to surrogate

  [[nodiscard]] std::uint64_t cut_interactions() const noexcept {
    return cut_invocations + cut_accesses;
  }
};

// The paper's modified MINCUT heuristic. Returns the full series of
// intermediate partitionings, ordered from "offload everything offloadable"
// down to "offload a single component". Components marked pinned in the graph
// are never offloaded. If the graph has no pinned component, the client
// partition is seeded with the component of greatest total memory (some
// component must anchor the device or the heuristic has no starting point).
[[nodiscard]] std::vector<Candidate> modified_mincut(
    const ExecGraph& graph, const EdgeWeightFn& weight = {});

// Streaming form of modified_mincut: maintains ONE running Candidate and
// invokes `visit` once per intermediate partitioning (same sequence as
// modified_mincut returns), updating the offload set and cut statistics with
// O(deg(moved)) deltas per step instead of an O(E) rescan. Policies that only
// need to scan the series (decide_partitioning) use this to avoid
// materializing and copying every candidate. The Candidate reference is only
// valid during the callback; copy it to keep it.
void modified_mincut_visit(const ExecGraph& graph, const EdgeWeightFn& weight,
                           const std::function<void(const Candidate&)>& visit);

// A global minimum cut (ignores pinning): returns the lighter-side vertex set
// and the cut weight. Used as the "plain MINCUT" baseline the paper argues
// against ("it may simply remove a single component").
struct GlobalCut {
  std::unordered_set<ComponentKey> side;
  double weight = 0.0;
};
[[nodiscard]] GlobalCut stoer_wagner_min_cut(const ExecGraph& graph,
                                             const EdgeWeightFn& weight = {});

// Exponential-time exact minimum cut (n <= 20), test oracle only.
[[nodiscard]] GlobalCut brute_force_min_cut(const ExecGraph& graph,
                                            const EdgeWeightFn& weight = {});

// A k-way partitioning of a component subset (the surrogate-pool fleet: one
// offload set split across k surrogates). Parts are non-empty, disjoint and
// cover the subset; `cross_weight` is the total policy weight of edges whose
// endpoints land in different parts (edges leaving the subset are not
// counted — they cross the client cut however the offload side is arranged).
struct KWayCut {
  std::vector<std::unordered_set<ComponentKey>> parts;
  double cross_weight = 0.0;

  [[nodiscard]] std::size_t k() const noexcept { return parts.size(); }
};

// Splits `members` into exactly min(k, |members|) parts by greedy recursive
// bisection: starting from one part, repeatedly compute the Stoer-Wagner
// minimum cut of every current splittable part and apply the cheapest one,
// until k parts exist. Deterministic: components are processed in sorted key
// order, ties break toward the lowest part index, and the returned parts are
// ordered by their smallest member key. k == 1 returns the subset unsplit
// with cross_weight 0 (the single-surrogate path, byte-identical to not
// calling this at all).
[[nodiscard]] KWayCut k_way_split(const ExecGraph& graph,
                                  const std::vector<ComponentKey>& members,
                                  std::size_t k,
                                  const EdgeWeightFn& weight = {});

// Exponential-time exact minimum k-cut over `members` (canonical
// set-partition enumeration; |members| <= 14, k <= 6), test oracle only.
[[nodiscard]] KWayCut brute_force_k_way(
    const ExecGraph& graph, const std::vector<ComponentKey>& members,
    std::size_t k, const EdgeWeightFn& weight = {});

}  // namespace aide::graph
