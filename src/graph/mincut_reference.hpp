// Reference partitioning implementations (pre-optimization).
//
// These are the original dense-matrix O(V^2)/O(V^3) algorithms, retained
// verbatim for two purposes:
//   * the randomized differential test asserts the optimized incremental
//     modified_mincut and adjacency-list Stoer-Wagner in mincut.cpp produce
//     identical candidate sequences and cut weights;
//   * bench_graph_hotpath measures them live in the same binary as the
//     "pre-PR baseline" column of BENCH_hotpath.json.
//
// Do not optimize this file; its value is being the slow-but-obviously-
// correct oracle.
#pragma once

#include "graph/mincut.hpp"

namespace aide::graph::reference {

// Original candidate-series heuristic: O(E) edge rescan per candidate plus a
// full offload-set copy per snapshot.
[[nodiscard]] std::vector<Candidate> modified_mincut(
    const ExecGraph& graph, const EdgeWeightFn& weight = {});

// Original Stoer-Wagner: dense weight matrix, per-phase allocations and
// std::find-based erase of the contracted vertex.
[[nodiscard]] GlobalCut stoer_wagner_min_cut(const ExecGraph& graph,
                                             const EdgeWeightFn& weight = {});

}  // namespace aide::graph::reference
