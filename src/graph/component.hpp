// Component identity for monitoring and placement.
//
// The paper selects classes as the component granularity (section 3.1), and
// later shows (section 5.2, "Array" enhancement) that promoting primitive
// arrays to object granularity improves placement. A ComponentKey expresses
// both: class-level components leave `object` invalid; object-granularity
// components carry the specific object id.
#pragma once

#include <functional>
#include <ostream>

#include "common/ids.hpp"

namespace aide::graph {

struct ComponentKey {
  ClassId cls;
  // Invalid for class-granularity components; set when a single object is
  // tracked and placed independently of its class (the Array enhancement).
  ObjectId object = ObjectId::invalid();

  [[nodiscard]] bool is_object_granularity() const noexcept {
    return object.valid();
  }

  friend bool operator==(const ComponentKey&, const ComponentKey&) noexcept =
      default;
  friend auto operator<=>(const ComponentKey&, const ComponentKey&) noexcept =
      default;

  friend std::ostream& operator<<(std::ostream& os, const ComponentKey& k) {
    os << 'C' << k.cls;
    if (k.object.valid()) os << "#" << k.object;
    return os;
  }
};

}  // namespace aide::graph

namespace std {
template <>
struct hash<aide::graph::ComponentKey> {
  size_t operator()(const aide::graph::ComponentKey& k) const noexcept {
    const size_t h1 = std::hash<aide::ClassId>{}(k.cls);
    const size_t h2 = std::hash<aide::ObjectId>{}(k.object);
    return h1 ^ (h2 * 0x9E3779B97F4A7C15ULL);
  }
};
}  // namespace std
