// The remote-execution boundary seen by a VM.
//
// When an instrumented operation targets an object that lives on the other
// VM (or a native method / static slot that must live on the client), the VM
// forwards it through this interface. The rpc module implements it with wire
// serialization, reference-mapping tables and simulated link costs; unit
// tests implement it with in-memory fakes.
#pragma once

#include <span>

#include "common/ids.hpp"
#include "vm/value.hpp"

namespace aide::vm {

class RemotePeer {
 public:
  virtual ~RemotePeer() = default;

  virtual Value invoke(ObjectId target, ClassId cls, MethodId method,
                       std::span<const Value> args) = 0;
  virtual Value invoke_static(ClassId cls, MethodId method,
                              std::span<const Value> args) = 0;

  virtual Value get_field(ObjectId target, FieldId field) = 0;
  virtual void put_field(ObjectId target, FieldId field, const Value& v) = 0;

  virtual Value get_static(ClassId cls, std::uint32_t slot) = 0;
  virtual void put_static(ClassId cls, std::uint32_t slot, const Value& v) = 0;

  virtual Value array_get(ObjectId target, std::int64_t index) = 0;
  virtual void array_put(ObjectId target, std::int64_t index,
                         const Value& v) = 0;
  virtual std::int64_t array_length(ObjectId target) = 0;
  virtual std::string chars_read(ObjectId target, std::int64_t offset,
                                 std::int64_t length) = 0;
  virtual void chars_write(ObjectId target, std::int64_t offset,
                           std::string_view data) = 0;

  // Distributed GC: this VM no longer holds references to these peer objects.
  virtual void release(std::span<const ObjectId> ids) = 0;

  // Yield-point barrier for batching transports: drain any write-behind
  // operations still queued for the peer and drop read-ahead state. The VM
  // calls it on entry to garbage collection — the release protocol below it
  // must observe the post-flush reference state. A non-batching peer (unit
  // test fakes, the default) has nothing to do.
  virtual void flush_pending() {}
};

}  // namespace aide::vm
