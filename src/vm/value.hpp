// Managed values.
//
// The MiniVM is dynamically typed at the slot level (like JVM locals): a
// Value holds nil, a boolean, a 64-bit integer, a double, an object
// reference, or an immutable short string. wire_size() gives the number of
// bytes the value occupies when crossing the simulated link; the monitoring
// module charges interaction edges with exactly these sizes (paper 3.4: "the
// amount of information exchanged between two classes as represented by the
// parameters and return values").
#pragma once

#include <cstdint>
#include <new>
#include <span>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/ids.hpp"

namespace aide::vm {

// A reference into the VM's object namespace.
struct ObjectRef {
  ObjectId id = ObjectId::invalid();

  [[nodiscard]] bool is_null() const noexcept { return !id.valid(); }
  friend bool operator==(ObjectRef, ObjectRef) noexcept = default;
};

inline constexpr ObjectRef kNullRef{};

// Implemented as a hand-rolled tagged union rather than std::variant: the
// five non-string kinds share one 8-byte payload that copies with a plain
// store, so the copy/move/assign/destroy of the overwhelmingly common cases
// (ints, refs, nil) never reaches the variant-style alternative dispatch or
// the string machinery. Only the string kind pays for string lifetime.
class Value {
 public:
  Value() noexcept {}
  Value(bool b) noexcept : kind_(Kind::boolean) { b_ = b; }       // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) noexcept : kind_(Kind::integer) { i_ = i; }  // NOLINT(google-explicit-constructor)
  Value(int i) noexcept : kind_(Kind::integer) { i_ = i; }        // NOLINT(google-explicit-constructor)
  Value(double d) noexcept : kind_(Kind::real) { d_ = d; }        // NOLINT(google-explicit-constructor)
  Value(ObjectRef r) noexcept : kind_(Kind::ref) { r_ = r; }      // NOLINT(google-explicit-constructor)
  Value(std::string s) : kind_(Kind::str) {                       // NOLINT(google-explicit-constructor)
    new (&s_) std::string(std::move(s));
  }
  Value(const char* s) : Value(std::string(s)) {}                 // NOLINT(google-explicit-constructor)

  Value(const Value& o) { copy_from(o); }
  Value(Value&& o) noexcept { move_from(std::move(o)); }
  Value& operator=(const Value& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(std::move(o));
    }
    return *this;
  }
  ~Value() { destroy(); }

  [[nodiscard]] bool is_nil() const noexcept { return kind_ == Kind::nil; }
  [[nodiscard]] bool is_bool() const noexcept {
    return kind_ == Kind::boolean;
  }
  [[nodiscard]] bool is_int() const noexcept {
    return kind_ == Kind::integer;
  }
  [[nodiscard]] bool is_real() const noexcept { return kind_ == Kind::real; }
  [[nodiscard]] bool is_ref() const noexcept { return kind_ == Kind::ref; }
  [[nodiscard]] bool is_str() const noexcept { return kind_ == Kind::str; }

  [[nodiscard]] bool as_bool() const {
    require(Kind::boolean);
    return b_;
  }
  [[nodiscard]] std::int64_t as_int() const {
    require(Kind::integer);
    return i_;
  }
  [[nodiscard]] double as_real() const {
    require(Kind::real);
    return d_;
  }
  [[nodiscard]] ObjectRef as_ref() const {
    require(Kind::ref);
    return r_;
  }
  [[nodiscard]] const std::string& as_str() const {
    require(Kind::str);
    return s_;
  }

  // Numeric coercion helper: many managed methods accept int-or-real.
  [[nodiscard]] double to_real() const {
    if (is_int()) return static_cast<double>(i_);
    return as_real();
  }

  // Bytes this value contributes to a serialized message.
  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    switch (kind_) {
      case Kind::nil:
      case Kind::boolean:
        return 1;
      case Kind::integer:
      case Kind::real:
      case Kind::ref:
        return 8;
      case Kind::str:
        return 4 + s_.size();
    }
    return 0;  // unreachable
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::nil:
        return true;
      case Kind::boolean:
        return a.b_ == b.b_;
      case Kind::integer:
        return a.i_ == b.i_;
      case Kind::real:
        return a.d_ == b.d_;
      case Kind::ref:
        return a.r_ == b.r_;
      case Kind::str:
        return a.s_ == b.s_;
    }
    return false;  // unreachable
  }

 private:
  enum class Kind : std::uint8_t { nil, boolean, integer, real, ref, str };

  void require(Kind k) const {
    if (kind_ != k) {
      throw VmError(VmErrorCode::type_mismatch, "bad Value access");
    }
  }

  void destroy() noexcept {
    if (kind_ == Kind::str) [[unlikely]] {
      s_.~basic_string();
    }
  }
  // Callers guarantee *this holds no live string (fresh storage or after
  // destroy()).
  void copy_from(const Value& o) {
    if (o.kind_ == Kind::str) [[unlikely]] {
      new (&s_) std::string(o.s_);
    } else {
      payload_ = o.payload_;
    }
    kind_ = o.kind_;
  }
  void move_from(Value&& o) noexcept {
    if (o.kind_ == Kind::str) [[unlikely]] {
      new (&s_) std::string(std::move(o.s_));
    } else {
      payload_ = o.payload_;
    }
    kind_ = o.kind_;
  }

  union {
    std::uint64_t payload_ = 0;  // raw copy channel for the non-string kinds
    bool b_;
    std::int64_t i_;
    double d_;
    ObjectRef r_;
    std::string s_;
  };
  Kind kind_ = Kind::nil;
};

// Total wire size of an argument pack plus a fixed per-message header.
[[nodiscard]] inline std::uint64_t args_wire_size(
    std::span<const Value> args) noexcept {
  std::uint64_t total = 0;
  for (const auto& v : args) total += v.wire_size();
  return total;
}

}  // namespace aide::vm
