// Managed values.
//
// The MiniVM is dynamically typed at the slot level (like JVM locals): a
// Value holds nil, a boolean, a 64-bit integer, a double, an object
// reference, or an immutable short string. wire_size() gives the number of
// bytes the value occupies when crossing the simulated link; the monitoring
// module charges interaction edges with exactly these sizes (paper 3.4: "the
// amount of information exchanged between two classes as represented by the
// parameters and return values").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>

#include "common/error.hpp"
#include "common/ids.hpp"

namespace aide::vm {

// A reference into the VM's object namespace.
struct ObjectRef {
  ObjectId id = ObjectId::invalid();

  [[nodiscard]] bool is_null() const noexcept { return !id.valid(); }
  friend bool operator==(ObjectRef, ObjectRef) noexcept = default;
};

inline constexpr ObjectRef kNullRef{};

class Value {
 public:
  Value() noexcept : v_(std::monostate{}) {}
  Value(bool b) noexcept : v_(b) {}                       // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) noexcept : v_(i) {}               // NOLINT(google-explicit-constructor)
  Value(int i) noexcept : v_(std::int64_t{i}) {}          // NOLINT(google-explicit-constructor)
  Value(double d) noexcept : v_(d) {}                     // NOLINT(google-explicit-constructor)
  Value(ObjectRef r) noexcept : v_(r) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}              // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}            // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_nil() const noexcept {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_real() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_ref() const noexcept {
    return std::holds_alternative<ObjectRef>(v_);
  }
  [[nodiscard]] bool is_str() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }

  [[nodiscard]] bool as_bool() const { return get<bool>(); }
  [[nodiscard]] std::int64_t as_int() const { return get<std::int64_t>(); }
  [[nodiscard]] double as_real() const { return get<double>(); }
  [[nodiscard]] ObjectRef as_ref() const { return get<ObjectRef>(); }
  [[nodiscard]] const std::string& as_str() const {
    return get<std::string>();
  }

  // Numeric coercion helper: many managed methods accept int-or-real.
  [[nodiscard]] double to_real() const {
    if (is_int()) return static_cast<double>(as_int());
    return as_real();
  }

  // Bytes this value contributes to a serialized message.
  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    struct Sizer {
      std::uint64_t operator()(std::monostate) const noexcept { return 1; }
      std::uint64_t operator()(bool) const noexcept { return 1; }
      std::uint64_t operator()(std::int64_t) const noexcept { return 8; }
      std::uint64_t operator()(double) const noexcept { return 8; }
      std::uint64_t operator()(ObjectRef) const noexcept { return 8; }
      std::uint64_t operator()(const std::string& s) const noexcept {
        return 4 + s.size();
      }
    };
    return std::visit(Sizer{}, v_);
  }

  friend bool operator==(const Value&, const Value&) = default;

 private:
  template <typename T>
  [[nodiscard]] const T& get() const {
    const T* p = std::get_if<T>(&v_);
    if (p == nullptr) {
      throw VmError(VmErrorCode::type_mismatch, "bad Value access");
    }
    return *p;
  }

  std::variant<std::monostate, bool, std::int64_t, double, ObjectRef,
               std::string>
      v_;
};

// Total wire size of an argument pack plus a fixed per-message header.
[[nodiscard]] inline std::uint64_t args_wire_size(
    std::span<const Value> args) noexcept {
  std::uint64_t total = 0;
  for (const auto& v : args) total += v.wire_size();
  return total;
}

}  // namespace aide::vm
