// The MiniVM: a managed object runtime with instrumented execution paths.
//
// This is the reproduction's stand-in for the paper's modified HP Chai JVM.
// It provides:
//   * an object heap with capacity limits and mark-and-sweep GC whose cycle
//     reports drive the resource monitor (paper 3.4),
//   * managed and native methods whose invocations, field accesses and
//     allocations all flow through hook points (paper 3.4),
//   * transparent remote execution: operations on objects that live on the
//     peer VM are forwarded through a RemotePeer without the application
//     noticing (paper 3.2),
//   * the paper's placement rules — natives and static data on the client,
//     static managed methods on either VM, new objects on the creating VM,
//   * migration primitives (extract an object, leave a stub; adopt an object,
//     drop the stub) used by the offloading engine,
//   * Figure 9 self-time attribution via frame bookkeeping.
//
// All time is virtual: method bodies charge work through VmContext::work,
// scaled by the VM's CPU speed (client 1.0, surrogate 3.5 per the paper).
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/simclock.hpp"
#include "vm/heap.hpp"
#include "vm/hooks.hpp"
#include "vm/klass.hpp"
#include "vm/object.hpp"
#include "vm/redo_log.hpp"
#include "vm/remote.hpp"
#include "vm/value.hpp"

namespace aide::vm {

struct VmConfig {
  NodeId node{0};
  std::string name = "vm";
  // The client hosts static data and stateful native methods (paper 3.2).
  bool is_client = true;
  // Relative CPU speed; the paper measured the surrogate at 3.5x the client.
  double cpu_speed = 1.0;
  std::int64_t heap_capacity = std::int64_t{32} << 20;
  // GC triggers, mirroring Chai's: space limits, object count since last
  // collection, and bytes allocated since last collection (paper 5.1).
  std::int64_t gc_alloc_count_threshold = 4096;
  std::int64_t gc_alloc_bytes_divisor = 8;
  // Simulated cost of scanning one live object during GC.
  SimDuration gc_cost_per_live_object = sim_ns(40);
  // Enhancement (paper 5.2): stateless natives execute where invoked.
  bool stateless_natives_local = false;
  std::size_t max_stack_depth = 512;
  std::uint64_t rng_seed = 0xA1DEA1DEULL;
};

struct VmStats {
  std::uint64_t allocations = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t gc_cycles = 0;
  std::uint64_t invocations = 0;          // instrumented invocation events
  std::uint64_t remote_invocations = 0;   // forwarded to the peer
  std::uint64_t field_accesses = 0;
  std::uint64_t remote_field_accesses = 0;
  std::uint64_t low_memory_rescues = 0;   // allocations saved by the handler
};

class Vm {
 public:
  Vm(VmConfig cfg, std::shared_ptr<const ClassRegistry> registry,
     SimClock& clock);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // --- wiring -------------------------------------------------------------

  void add_hooks(VmHooks* hooks);
  void remove_hooks(VmHooks* hooks);
  void set_peer(RemotePeer* peer) noexcept { peer_ = peer; }
  // Called when an allocation cannot be satisfied even after GC; returns
  // true if memory was freed (e.g. the platform offloaded components).
  void set_low_memory_handler(std::function<bool(Vm&)> handler) {
    low_memory_handler_ = std::move(handler);
  }
  // Additional GC roots owned by the rpc layer (exported objects).
  void set_extra_roots_provider(
      std::function<void(const std::function<void(ObjectId)>&)> provider) {
    extra_roots_provider_ = std::move(provider);
  }
  // Invoked with the ids of unreachable remote stubs after each GC; the rpc
  // layer forwards them as distributed-GC release messages.
  void set_stub_release_handler(
      std::function<void(std::span<const ObjectId>)> handler) {
    stub_release_handler_ = std::move(handler);
  }

  // --- introspection --------------------------------------------------------

  [[nodiscard]] NodeId node() const noexcept { return cfg_.node; }
  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }
  [[nodiscard]] bool is_client() const noexcept { return cfg_.is_client; }
  [[nodiscard]] double cpu_speed() const noexcept { return cfg_.cpu_speed; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] Heap& heap() noexcept { return heap_; }
  [[nodiscard]] const Heap& heap() const noexcept { return heap_; }
  [[nodiscard]] const ClassRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const VmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const VmConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::size_t stack_depth() const noexcept {
    return frame_depth_;
  }
  [[nodiscard]] std::size_t stub_count() const noexcept {
    return stubs_.size();
  }

  [[nodiscard]] ClassId find_class(std::string_view name) const {
    return registry_->find(name);
  }
  [[nodiscard]] const ClassDef& class_def(ClassId cls) const {
    return registry_->get(cls);
  }

  // --- object model (the VmContext API used by managed method bodies) -----

  ObjectRef new_object(ClassId cls);
  ObjectRef new_object(std::string_view class_name) {
    return new_object(registry_->find(class_name));
  }
  ObjectRef new_int_array(std::int64_t length);
  // A reference array: a plain object of class "Object[]" with `length`
  // value slots, accessed via get_field/put_field by index.
  ObjectRef new_ref_array(std::int64_t length);
  ObjectRef new_char_array(std::int64_t length);
  ObjectRef new_char_array(std::string_view initial);

  // Field access fast paths are inlined: a local object with no hooks
  // listening is the common case in every scenario's inner loop, and costs a
  // slab lookup plus the value copy. Everything else — remote objects,
  // attached monitors, journaling, string payloads (footprint deltas),
  // errors — drops to the out-of-line slow path, which preserves the full
  // event/stats behavior.
  Value get_field(ObjectRef obj, FieldId field) {
    if (Object* o = heap_.find(obj.id);
        o != nullptr && hooks_.empty() &&
        field.value() < o->fields.size()) [[likely]] {
      stats_.field_accesses += 1;
      const Value& v = o->fields[field.value()];
      if (v.is_ref()) [[unlikely]] {
        root_in_frame(v);
      }
      return v;
    }
    return get_field_slow(obj, field);
  }
  Value get_field(ObjectRef obj, std::string_view field);
  void put_field(ObjectRef obj, FieldId field, const Value& v) {
    if (Object* o = heap_.find(obj.id);
        o != nullptr && hooks_.empty() && !journal_recording() &&
        redo_log_ == nullptr && field.value() < o->fields.size()) [[likely]] {
      Value& slot = o->fields[field.value()];
      if (!v.is_str() && !slot.is_str()) [[likely]] {
        slot = v;
        stats_.field_accesses += 1;
        return;
      }
    }
    put_field_slow(obj, field, v);
  }
  void put_field(ObjectRef obj, std::string_view field, const Value& v);

  Value invoke(ObjectRef obj, MethodId method, std::span<const Value> args);
  Value call(ObjectRef obj, std::string_view method,
             std::initializer_list<Value> args = {});
  Value invoke_static(ClassId cls, MethodId method,
                      std::span<const Value> args);
  Value call_static(std::string_view cls, std::string_view method,
                    std::initializer_list<Value> args = {});

  // Cached call sites: the name is resolved to a MethodId once per
  // class/registry-epoch pair and the result is stored in the site itself,
  // so hot loops skip the name lookup entirely. A resolved managed instance
  // method on a local receiver with no hooks listening dispatches straight
  // to the method body (monomorphic inline cache hit); anything else —
  // cache miss, native/static target, remote receiver, attached monitor —
  // goes through the generic dispatch path.
  Value call(ObjectRef obj, const CallSite& site,
             std::initializer_list<Value> args = {}) {
    const std::span<const Value> a(args.begin(), args.size());
    if (Object* o = heap_.find(obj.id);
        o != nullptr && site.epoch_ == registry_->epoch() &&
        site.cls_ == o->cls && site.fast_ok_ && hooks_.empty()) [[likely]] {
      return call_fast(obj, site.cls_, site.mid_, *site.mdef_, a);
    }
    return call_site_slow(obj, site, a);
  }
  Value call_static(const StaticCallSite& site,
                    std::initializer_list<Value> args = {});

  Value get_static(ClassId cls, std::uint32_t slot);
  Value get_static(std::string_view cls, std::string_view slot);
  void put_static(ClassId cls, std::uint32_t slot, const Value& v);
  void put_static(std::string_view cls, std::string_view slot, const Value& v);

  Value array_get(ObjectRef arr, std::int64_t index);
  void array_put(ObjectRef arr, std::int64_t index, const Value& v);
  std::int64_t array_length(ObjectRef arr);
  // Bulk character transfer: one interaction of `length` bytes.
  std::string chars_read(ObjectRef arr, std::int64_t offset,
                         std::int64_t length);
  void chars_write(ObjectRef arr, std::int64_t offset, std::string_view data);

  // Charges CPU work (virtual nanoseconds at speed 1.0) to the current frame.
  void work(SimDuration d) {
    if (d <= 0) return;  // advance() ignores non-positive deltas anyway
    clock_.advance(
        static_cast<SimDuration>(static_cast<double>(d) / cfg_.cpu_speed));
  }

  // External roots held by the embedding application driver.
  void add_root(ObjectRef obj);
  void remove_root(ObjectRef obj);
  // References returned to driver-level code (no active frame) are rooted
  // automatically so C++ locals can never dangle across a GC; the driver
  // releases them in bulk when its scenario finishes.
  void clear_driver_roots() { driver_roots_.clear(); }
  [[nodiscard]] std::size_t driver_root_count() const noexcept {
    return driver_roots_.size();
  }

  // Forces a GC cycle now (also runs automatically per the thresholds).
  GcReport collect_garbage();

  // --- mutation journal (fault tolerance) ----------------------------------
  //
  // While a journal scope is open, raw mutations (fields, statics, array
  // elements, char regions) record undo entries so a partially-executed
  // remote frame can be rolled back when the peer becomes unavailable
  // mid-call. Scopes nest; entries are kept until the outermost scope
  // commits so an enclosing rollback can still undo inner effects.
  // Recording is off by default — the platform enables it only when a fault
  // plan is active, so fault-free runs are bit-identical to the unjournaled
  // VM.

  void set_journal_enabled(bool on) noexcept { journal_enabled_ = on; }
  [[nodiscard]] bool journal_enabled() const noexcept {
    return journal_enabled_;
  }
  // Opens a scope; returns the mark to pass to journal_rollback.
  std::size_t journal_begin() noexcept;
  // Closes the current scope keeping its effects.
  void journal_commit() noexcept;
  // Undoes every mutation recorded since `mark` (newest first) and closes
  // the current scope. Objects that left the heap in the meantime are
  // skipped.
  void journal_rollback(std::size_t mark);
  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_.size();
  }

  // --- disconnected-operation redo log -------------------------------------
  //
  // While the platform is in Disconnected mode it installs a DisconnectLog
  // here; every raw mutation of a watched object (a hoarded replica of
  // surrogate-owned state) is then also recorded as a redo entry for replay
  // at reconcile time. Unlike the undo journal this captures *new* values,
  // and it records during journal rollback too — an undone mutation's
  // restored value is the correct final state to replay. nullptr (the
  // default) disables capture entirely and keeps the inline fast paths.

  void set_redo_log(DisconnectLog* log) noexcept { redo_log_ = log; }
  [[nodiscard]] DisconnectLog* redo_log() const noexcept { return redo_log_; }

  // --- location / migration (used by the rpc layer and offload engine) ----

  [[nodiscard]] bool is_local(ObjectId id) const noexcept {
    return heap_.contains(id);
  }
  [[nodiscard]] bool knows(ObjectId id) const noexcept {
    return heap_.contains(id) || stubs_.contains(id);
  }
  [[nodiscard]] ClassId class_of(ObjectId id) const;
  [[nodiscard]] Object* find_object(ObjectId id) noexcept {
    return heap_.find(id);
  }

  // Extracts a local object for migration, leaving a remote stub behind.
  std::unique_ptr<Object> migrate_out(ObjectId id);
  // Adopts a migrated object; replaces any stub for it.
  void migrate_in(std::unique_ptr<Object> obj);
  // Registers a stub for a remote object this VM just learned about.
  void install_stub(ObjectId id, ClassId cls, ObjectKind kind);
  // Drops a stub (peer released the object or it migrated here).
  void drop_stub(ObjectId id) { stubs_.erase(id); }

  // All local object ids whose class matches `cls`.
  [[nodiscard]] std::vector<ObjectId> local_objects_of_class(
      ClassId cls) const;

  // --- incoming remote operations (called by the rpc endpoint) ------------

  Value run_incoming_invoke(ObjectId target, MethodId method,
                            std::span<const Value> args);
  Value run_incoming_invoke_static(ClassId cls, MethodId method,
                                   std::span<const Value> args);
  Value raw_get_field(ObjectId target, FieldId field);
  void raw_put_field(ObjectId target, FieldId field, const Value& v);
  Value raw_get_static(ClassId cls, std::uint32_t slot);
  void raw_put_static(ClassId cls, std::uint32_t slot, const Value& v);
  Value raw_array_get(ObjectId target, std::int64_t index);
  void raw_array_put(ObjectId target, std::int64_t index, const Value& v);
  std::int64_t raw_array_length(ObjectId target);
  std::string raw_chars_read(ObjectId target, std::int64_t offset,
                             std::int64_t length);
  void raw_chars_write(ObjectId target, std::int64_t offset,
                       std::string_view data);

 private:
  struct Frame {
    ClassId cls;
    ObjectId self;
    MethodId method;
    SimTime start = 0;
    SimDuration child_time = 0;
    // JNI-style local references: every ref obtained through the context API
    // is rooted here so GC cannot reclaim objects held only in C++ locals.
    std::vector<ObjectId> local_roots;
  };

  struct StubInfo {
    ClassId cls;
    ObjectKind kind = ObjectKind::plain;
    bool gc_mark = false;
  };

  struct JournalEntry {
    enum class Kind : std::uint8_t { field, static_slot, array_elem, chars };
    Kind kind;
    ObjectId obj;           // field / array_elem / chars
    std::uint64_t key = 0;  // field index, static key, array index or offset
    Value old_value;        // field / static_slot
    std::int64_t old_elem = 0;  // array_elem
    std::string old_chars;      // chars
  };

  [[nodiscard]] bool journal_recording() const noexcept {
    return journal_depth_ > 0 && !journal_replaying_;
  }

  ObjectId next_object_id() noexcept {
    return ObjectId{(static_cast<std::uint64_t>(cfg_.node.value()) << 48) |
                    next_object_counter_++};
  }

  ObjectRef allocate(ClassId cls, ObjectKind kind, std::int64_t ints_len,
                     std::int64_t chars_len, std::string_view chars_init);
  void ensure_capacity(std::int64_t bytes);
  void maybe_gc_after_alloc(std::int64_t bytes);

  // What the caller already knows about the target's placement: callers that
  // just resolved the receiver through the local heap pass `local` so the
  // placement rules skip a second heap probe.
  enum class Locality : std::uint8_t { unknown, local };

  Value execute_local(ObjectRef self, ClassId cls, MethodId mid,
                      const MethodDef& m, std::span<const Value> args);
  Value dispatch_invoke(ObjectRef target, ClassId cls, MethodId mid,
                        std::span<const Value> args, bool is_static,
                        Locality locality = Locality::unknown);

  // Lean dispatch for a cache-hit CallSite: the receiver is local, the
  // method is a managed instance method with a body (fast_ok_), and no
  // hooks are attached — so no event can be observed and the event-only
  // assembly is skipped. GC-visible state (frame identity, local roots)
  // and virtual time (work) are maintained exactly as execute_local does.
  Value call_fast(ObjectRef self, ClassId cls, MethodId mid,
                  const MethodDef& m, std::span<const Value> args) {
    if (frame_depth_ >= cfg_.max_stack_depth) [[unlikely]] {
      throw VmError(VmErrorCode::stack_overflow, registry_->get(cls).name);
    }
    if (frame_depth_ == frames_.size()) [[unlikely]] frames_.emplace_back();
    const std::size_t frame_ix = frame_depth_++;
    Frame& f = frames_[frame_ix];
    f.cls = cls;
    f.self = self.id;
    f.method = mid;
    f.start = clock_.now();
    f.child_time = 0;
    f.local_roots.clear();
    f.local_roots.push_back(self.id);
    for (const Value& a : args) {
      if (a.is_ref() && !a.as_ref().is_null()) [[unlikely]] {
        f.local_roots.push_back(a.as_ref().id);
      }
    }
    work(m.base_cost);
    Value ret;
    try {
      ret = m.body(*this, self, args);
    } catch (...) {
      const SimDuration total = clock_.now() - frames_[frame_ix].start;
      --frame_depth_;
      if (frame_depth_ > 0) frames_[frame_depth_ - 1].child_time += total;
      throw;
    }
    const SimDuration total = clock_.now() - frames_[frame_ix].start;
    --frame_depth_;
    if (frame_depth_ > 0) frames_[frame_depth_ - 1].child_time += total;
    if (ret.is_ref()) [[unlikely]] root_in_frame(ret);
    stats_.invocations += 1;
    return ret;
  }
  Value call_site_slow(ObjectRef obj, const CallSite& site,
                       std::span<const Value> args);
  Value get_field_slow(ObjectRef obj, FieldId field);
  void put_field_slow(ObjectRef obj, FieldId field, const Value& v);
  void put_field_local(Object& o, FieldId field, const Value& v);

  void root_in_frame(const Value& v);
  void root_in_frame(ObjectRef r);

  [[nodiscard]] Object& require_local(ObjectId id);
  [[nodiscard]] const MethodDef& method_def(ClassId cls, MethodId m) const;

  // Current caller identity for interaction events.
  [[nodiscard]] ClassId current_cls() const noexcept {
    return frame_depth_ == 0 ? ClassId::invalid()
                             : frames_[frame_depth_ - 1].cls;
  }
  [[nodiscard]] ObjectId current_obj() const noexcept {
    return frame_depth_ == 0 ? ObjectId::invalid()
                             : frames_[frame_depth_ - 1].self;
  }

  template <typename Fn>
  void fire(Fn&& fn) {
    for (VmHooks* h : hooks_) fn(*h);
  }

  void mark_value(const Value& v, std::vector<ObjectId>& worklist) const;

  VmConfig cfg_;
  std::shared_ptr<const ClassRegistry> registry_;
  SimClock& clock_;
  Heap heap_;
  Rng rng_;

  std::vector<VmHooks*> hooks_;
  RemotePeer* peer_ = nullptr;
  std::function<bool(Vm&)> low_memory_handler_;
  std::function<void(const std::function<void(ObjectId)>&)>
      extra_roots_provider_;
  std::function<void(std::span<const ObjectId>)> stub_release_handler_;

  // Frame pool: frames_[0, frame_depth_) are active. Retired frames keep
  // their local_roots capacity, so steady-state invocation allocates nothing.
  std::vector<Frame> frames_;
  std::size_t frame_depth_ = 0;
  std::unordered_map<ObjectId, StubInfo> stubs_;
  std::unordered_map<ObjectId, int> external_roots_;
  std::vector<ObjectId> driver_roots_;
  // Static slot storage, flat-indexed by ClassDef::static_base + slot;
  // populated only on the client VM.
  std::vector<Value> statics_;

  std::vector<JournalEntry> journal_;
  int journal_depth_ = 0;
  bool journal_enabled_ = false;
  bool journal_replaying_ = false;
  DisconnectLog* redo_log_ = nullptr;

  std::uint64_t next_object_counter_ = 1;
  std::int64_t allocs_since_gc_ = 0;
  std::int64_t alloc_bytes_since_gc_ = 0;
  std::uint32_t gc_cycle_ = 0;
  bool in_gc_ = false;

  VmStats stats_;

  // Index into the flat statics table (and the journal's static key).
  [[nodiscard]] std::uint64_t static_index(ClassId cls,
                                           std::uint32_t slot) const {
    return static_cast<std::uint64_t>(registry_->get(cls).static_base) + slot;
  }
};

}  // namespace aide::vm
