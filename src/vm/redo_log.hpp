// Disconnected-operation redo log.
//
// While the platform runs in Disconnected mode the client executes everything
// locally against hoarded replicas of the surrogate's objects. Every mutation
// of a *watched* object (a replica whose authoritative copy still lives on the
// unreachable surrogate) is appended here as an intended remote mutation, to
// be replayed against the revived surrogate on reconnect.
//
// This is the redo-side complement of the Vm's undo journal (PR 1): the
// journal records old values so a partial frame can be rolled back; the
// DisconnectLog records new values so a whole disconnected epoch can be
// rolled forward. Both hook the same mutation funnel points
// (put_field_local / raw_array_put / raw_chars_write).
//
// Coalescing: every logged store is an absolute (last-writer-wins) store, so
// only the final write per location needs to travel. Locations are keyed per
// (kind, object, slot) — for char-region writes the key includes both offset
// and length, because two writes with the same offset but different lengths
// cover different byte ranges. Entries are kept in *last-write order*: when a
// write coalesces into an existing entry, the entry moves to the back of the
// replay sequence. This is what makes overlapping chars ranges sound — for
// any byte, the chronologically last write covering it also has the latest
// position in the replay order, so it wins on replay exactly as it did
// locally. (First-write order would be wrong: write A [0,8), write B [4,4),
// then write A' [0,8) coalescing into A must replay *after* B.)
//
// Determinism: iteration order is the replay order, which is a pure function
// of the mutation sequence — no hashing order or addresses leak out.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "vm/value.hpp"

namespace aide::vm {

struct RedoEntry {
  enum class Kind : std::uint8_t { field, array_elem, chars };
  Kind kind = Kind::field;
  ObjectId obj;
  // Field index (field), array index (array_elem), or byte offset (chars).
  std::uint64_t key = 0;
  Value value;        // field
  std::int64_t elem = 0;  // array_elem
  std::string data;       // chars
};

class DisconnectLog {
 public:
  // The set of object ids whose mutations must be journaled (the hoarded
  // replicas). Replaces any previous watch set; the log itself is kept.
  void watch(std::vector<ObjectId> ids) {
    watched_.clear();
    watched_.insert(ids.begin(), ids.end());
  }
  [[nodiscard]] bool watches(ObjectId id) const {
    return watched_.contains(id);
  }
  [[nodiscard]] std::size_t watched_count() const noexcept {
    return watched_.size();
  }

  void record_field(ObjectId obj, std::uint64_t field, const Value& v) {
    RedoEntry e;
    e.kind = RedoEntry::Kind::field;
    e.obj = obj;
    e.key = field;
    e.value = v;
    append(std::move(e));
  }
  void record_array(ObjectId obj, std::uint64_t index, std::int64_t elem) {
    RedoEntry e;
    e.kind = RedoEntry::Kind::array_elem;
    e.obj = obj;
    e.key = index;
    e.elem = elem;
    append(std::move(e));
  }
  void record_chars(ObjectId obj, std::uint64_t offset, std::string data) {
    RedoEntry e;
    e.kind = RedoEntry::Kind::chars;
    e.obj = obj;
    e.key = offset;
    e.data = std::move(data);
    append(std::move(e));
  }

  // Live (non-coalesced-away) entries in replay order.
  [[nodiscard]] std::vector<const RedoEntry*> replay_order() const {
    std::vector<const RedoEntry*> out;
    out.reserve(index_.size());
    for (const Slot& s : slots_) {
      if (s.live) out.push_back(&s.entry);
    }
    return out;
  }

  // Visits every live field entry's value, for GC rooting: a ref recorded
  // for replay must keep its target alive until the reconcile ships it (or
  // the log is dropped), even if the disconnected program has since dropped
  // its own last reference.
  template <typename F>
  void for_each_live_value(F&& visit) const {
    for (const Slot& s : slots_) {
      if (s.live && s.entry.kind == RedoEntry::Kind::field) {
        visit(s.entry.value);
      }
    }
  }

  // Number of live entries (what a replay ships).
  [[nodiscard]] std::size_t entries() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }

  // Counters for EndpointStats: every recorded store, and how many of those
  // coalesced into an existing entry instead of growing the log.
  [[nodiscard]] std::uint64_t ops_journaled() const noexcept {
    return ops_journaled_;
  }
  [[nodiscard]] std::uint64_t ops_coalesced() const noexcept {
    return ops_coalesced_;
  }

  // Drops the entries (after a successful replay) but keeps the watch set and
  // the cumulative counters: the client is typically still disconnected and
  // new mutations start a fresh log.
  void clear_entries() {
    slots_.clear();
    index_.clear();
  }

  // Full reset (reconnected; replicas dropped).
  void reset() {
    clear_entries();
    watched_.clear();
    ops_journaled_ = 0;
    ops_coalesced_ = 0;
  }

 private:
  // The location key. For chars the length is part of the key: same-offset
  // writes of different lengths cover different ranges and must not merge.
  struct LocKey {
    std::uint8_t kind;
    ObjectId obj;
    std::uint64_t key;
    std::uint64_t len;
    friend bool operator==(const LocKey&, const LocKey&) = default;
  };
  struct LocKeyHash {
    std::size_t operator()(const LocKey& k) const noexcept {
      std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ k.kind;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      };
      mix(k.obj.value());
      mix(k.key);
      mix(k.len);
      return static_cast<std::size_t>(h);
    }
  };

  // Tombstone storage: coalescing marks the old slot dead and appends the
  // entry at the back, preserving last-write replay order in O(1) amortized.
  struct Slot {
    RedoEntry entry;
    bool live = true;
  };

  void append(RedoEntry e) {
    if (!watched_.contains(e.obj)) return;
    ops_journaled_ += 1;
    const LocKey k{static_cast<std::uint8_t>(e.kind), e.obj, e.key,
                   e.kind == RedoEntry::Kind::chars ? e.data.size() : 0};
    if (const auto it = index_.find(k); it != index_.end()) {
      ops_coalesced_ += 1;
      slots_[it->second].live = false;  // splice-to-back
      it->second = slots_.size();
    } else {
      index_.emplace(k, slots_.size());
    }
    slots_.push_back(Slot{std::move(e), true});
  }

  std::unordered_set<ObjectId> watched_;
  std::vector<Slot> slots_;
  std::unordered_map<LocKey, std::size_t, LocKeyHash> index_;
  std::uint64_t ops_journaled_ = 0;
  std::uint64_t ops_coalesced_ = 0;
};

}  // namespace aide::vm
