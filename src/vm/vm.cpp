#include "vm/vm.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace aide::vm {

Vm::Vm(VmConfig cfg, std::shared_ptr<const ClassRegistry> registry,
       SimClock& clock)
    : cfg_(std::move(cfg)),
      registry_(std::move(registry)),
      clock_(clock),
      heap_(cfg_.heap_capacity),
      rng_(cfg_.rng_seed) {}

void Vm::add_hooks(VmHooks* hooks) {
  if (hooks != nullptr) hooks_.push_back(hooks);
}

void Vm::remove_hooks(VmHooks* hooks) {
  hooks_.erase(std::remove(hooks_.begin(), hooks_.end(), hooks),
               hooks_.end());
}

// --- allocation -------------------------------------------------------------

ObjectRef Vm::new_object(ClassId cls) {
  const ClassDef& def = registry_->get(cls);
  return allocate(cls, ObjectKind::plain,
                  static_cast<std::int64_t>(def.fields.size()), 0, {});
}

ObjectRef Vm::new_int_array(std::int64_t length) {
  return allocate(registry_->int_array_class(), ObjectKind::int_array, length,
                  0, {});
}

ObjectRef Vm::new_ref_array(std::int64_t length) {
  return allocate(registry_->object_array_class(), ObjectKind::plain, length,
                  0, {});
}

ObjectRef Vm::new_char_array(std::int64_t length) {
  return allocate(registry_->char_array_class(), ObjectKind::char_array, 0,
                  length, {});
}

ObjectRef Vm::new_char_array(std::string_view initial) {
  return allocate(registry_->char_array_class(), ObjectKind::char_array, 0,
                  static_cast<std::int64_t>(initial.size()), initial);
}

ObjectRef Vm::allocate(ClassId cls, ObjectKind kind, std::int64_t ints_len,
                       std::int64_t chars_len, std::string_view chars_init) {
  constexpr std::int64_t header = 16;
  std::int64_t size = header;
  switch (kind) {
    case ObjectKind::plain: size += ints_len * 8; break;      // field slots
    case ObjectKind::int_array: size += ints_len * 8; break;
    case ObjectKind::char_array: size += chars_len; break;
  }

  maybe_gc_after_alloc(size);
  ensure_capacity(size);

  const ObjectId id = next_object_id();
  Object& obj = heap_.create(
      id, cls, kind,
      kind == ObjectKind::plain ? static_cast<std::size_t>(ints_len) : 0,
      kind == ObjectKind::int_array ? static_cast<std::size_t>(ints_len) : 0,
      static_cast<std::size_t>(chars_len), size);
  if (kind == ObjectKind::char_array && !chars_init.empty()) {
    obj.chars.assign(chars_init);
  }

  stats_.allocations += 1;
  stats_.alloc_bytes += static_cast<std::uint64_t>(size);
  allocs_since_gc_ += 1;
  alloc_bytes_since_gc_ += size;

  fire([&](VmHooks& h) { h.on_alloc(cfg_.node, id, cls, size, clock_.now()); });

  const ObjectRef ref{id};
  root_in_frame(ref);
  return ref;
}

void Vm::maybe_gc_after_alloc(std::int64_t upcoming_bytes) {
  if (in_gc_) return;
  const bool by_count = allocs_since_gc_ >= cfg_.gc_alloc_count_threshold;
  const bool by_bytes =
      cfg_.gc_alloc_bytes_divisor > 0 &&
      alloc_bytes_since_gc_ >= heap_.capacity() / cfg_.gc_alloc_bytes_divisor;
  const bool by_space = !heap_.fits(upcoming_bytes);
  if (by_count || by_bytes || by_space) collect_garbage();
}

void Vm::ensure_capacity(std::int64_t bytes) {
  if (heap_.fits(bytes)) return;
  if (!in_gc_) collect_garbage();
  if (heap_.fits(bytes)) return;
  if (low_memory_handler_ && !in_gc_) {
    // Last-resort rescue: the platform may offload components to free heap
    // (the paper's JavaNote experiment: the application would otherwise fail
    // with an out-of-memory error).
    if (low_memory_handler_(*this)) {
      collect_garbage();
      if (heap_.fits(bytes)) {
        stats_.low_memory_rescues += 1;
        return;
      }
    }
  }
  throw VmError(VmErrorCode::out_of_memory,
                cfg_.name + ": need " + std::to_string(bytes) + "B, " +
                    std::to_string(heap_.free_bytes()) + "B free");
}

// --- garbage collection -------------------------------------------------------

void Vm::mark_value(const Value& v, std::vector<ObjectId>& worklist) const {
  if (v.is_ref() && !v.as_ref().is_null()) worklist.push_back(v.as_ref().id);
}

GcReport Vm::collect_garbage() {
  // Yield point: drain the transport's write-behind queue before marking.
  // Deferred remote stores pin exported values, and the distributed-GC
  // release pass below must see the post-flush reference state.
  if (peer_ != nullptr) peer_->flush_pending();
  in_gc_ = true;
  const std::int64_t used_before = heap_.used();

  // Mark.
  std::vector<ObjectId> worklist;
  for (std::size_t i = 0; i < frame_depth_; ++i) {
    const Frame& f = frames_[i];
    if (f.self.valid()) worklist.push_back(f.self);
    worklist.insert(worklist.end(), f.local_roots.begin(),
                    f.local_roots.end());
  }
  for (const auto& [id, count] : external_roots_) {
    if (count > 0) worklist.push_back(id);
  }
  worklist.insert(worklist.end(), driver_roots_.begin(), driver_roots_.end());
  for (const Value& v : statics_) mark_value(v, worklist);
  // Journaled old values must survive until their scope resolves: a rollback
  // would write them back. Empty unless a fault plan is active.
  for (const JournalEntry& e : journal_) mark_value(e.old_value, worklist);
  // Redo-log values are roots for the same reason: they are promised to the
  // peer at the next reconcile and must not be collected out from under the
  // replay. Empty unless a disconnected epoch is in progress.
  if (redo_log_ != nullptr) {
    redo_log_->for_each_live_value(
        [&](const Value& v) { mark_value(v, worklist); });
  }
  if (extra_roots_provider_) {
    extra_roots_provider_([&](ObjectId id) { worklist.push_back(id); });
  }

  while (!worklist.empty()) {
    const ObjectId id = worklist.back();
    worklist.pop_back();
    if (Object* obj = heap_.find(id); obj != nullptr) {
      if (obj->gc_mark) continue;
      obj->gc_mark = true;
      for (const Value& v : obj->fields) mark_value(v, worklist);
    } else if (auto it = stubs_.find(id); it != stubs_.end()) {
      it->second.gc_mark = true;
    }
  }

  // Sweep local objects.
  const SimTime t = clock_.now();
  const std::int64_t freed = heap_.sweep([&](const Object& obj) {
    stats_.frees += 1;
    fire([&](VmHooks& h) {
      h.on_free(cfg_.node, obj.id, obj.cls, obj.size_bytes(), t);
    });
  });

  // Sweep unreachable stubs and notify the distributed GC.
  std::vector<ObjectId> released;
  for (auto it = stubs_.begin(); it != stubs_.end();) {
    if (!it->second.gc_mark) {
      released.push_back(it->first);
      it = stubs_.erase(it);
    } else {
      it->second.gc_mark = false;
      ++it;
    }
  }
  if (!released.empty() && stub_release_handler_) {
    stub_release_handler_(released);
  }

  // Charge the simulated cost of the collection cycle.
  work(cfg_.gc_cost_per_live_object *
       static_cast<SimDuration>(heap_.object_count()));

  GcReport report;
  report.cycle = ++gc_cycle_;
  report.used_before = used_before;
  report.used_after = heap_.used();
  report.capacity = heap_.capacity();
  report.freed = freed;
  report.live_objects = static_cast<std::int64_t>(heap_.object_count());

  stats_.gc_cycles += 1;
  allocs_since_gc_ = 0;
  alloc_bytes_since_gc_ = 0;
  in_gc_ = false;

  fire([&](VmHooks& h) { h.on_gc(cfg_.node, report); });
  return report;
}

// --- mutation journal --------------------------------------------------------

std::size_t Vm::journal_begin() noexcept {
  if (!journal_enabled_) return 0;
  journal_depth_ += 1;
  return journal_.size();
}

void Vm::journal_commit() noexcept {
  if (journal_depth_ == 0) return;
  journal_depth_ -= 1;
  if (journal_depth_ == 0) journal_.clear();
}

void Vm::journal_rollback(std::size_t mark) {
  journal_replaying_ = true;
  while (journal_.size() > mark) {
    const JournalEntry e = std::move(journal_.back());
    journal_.pop_back();
    switch (e.kind) {
      case JournalEntry::Kind::field:
        if (heap_.contains(e.obj)) {
          raw_put_field(e.obj, FieldId{static_cast<std::uint32_t>(e.key)},
                        e.old_value);
        }
        break;
      case JournalEntry::Kind::static_slot:
        if (e.key >= statics_.size()) statics_.resize(e.key + 1);
        statics_[e.key] = e.old_value;
        break;
      case JournalEntry::Kind::array_elem:
        if (heap_.contains(e.obj)) {
          raw_array_put(e.obj, static_cast<std::int64_t>(e.key),
                        Value{e.old_elem});
        }
        break;
      case JournalEntry::Kind::chars:
        if (heap_.contains(e.obj)) {
          raw_chars_write(e.obj, static_cast<std::int64_t>(e.key),
                          e.old_chars);
        }
        break;
    }
  }
  journal_replaying_ = false;
  if (journal_depth_ > 0) journal_depth_ -= 1;
  if (journal_depth_ == 0) journal_.clear();
}

// --- roots -------------------------------------------------------------------

void Vm::add_root(ObjectRef obj) {
  if (!obj.is_null()) external_roots_[obj.id] += 1;
}

void Vm::remove_root(ObjectRef obj) {
  if (obj.is_null()) return;
  const auto it = external_roots_.find(obj.id);
  if (it != external_roots_.end() && --it->second <= 0) {
    external_roots_.erase(it);
  }
}

void Vm::root_in_frame(const Value& v) {
  if (v.is_ref()) root_in_frame(v.as_ref());
}

void Vm::root_in_frame(ObjectRef r) {
  if (r.is_null()) return;
  if (frame_depth_ > 0) {
    frames_[frame_depth_ - 1].local_roots.push_back(r.id);
  } else {
    // Driver-level code holds references in C++ locals the collector cannot
    // see; pin them until the driver releases its roots.
    driver_roots_.push_back(r.id);
  }
}

// --- lookup helpers ----------------------------------------------------------

Object& Vm::require_local(ObjectId id) {
  Object* obj = heap_.find(id);
  if (obj == nullptr) {
    throw VmError(VmErrorCode::null_reference,
                  cfg_.name + ": object " + std::to_string(id.value()) +
                      " is not local");
  }
  return *obj;
}

ClassId Vm::class_of(ObjectId id) const {
  if (const Object* obj = heap_.find(id); obj != nullptr) return obj->cls;
  if (const auto it = stubs_.find(id); it != stubs_.end()) {
    return it->second.cls;
  }
  throw VmError(VmErrorCode::null_reference,
                cfg_.name + ": unknown object " + std::to_string(id.value()));
}

const MethodDef& Vm::method_def(ClassId cls, MethodId m) const {
  const ClassDef& def = registry_->get(cls);
  if (!m.valid() || m.value() >= def.methods.size()) {
    throw VmError(VmErrorCode::unknown_method,
                  def.name + " method #" + std::to_string(m.value()));
  }
  return def.methods[m.value()];
}

// --- invocation ----------------------------------------------------------------

Value Vm::call(ObjectRef obj, std::string_view method,
               std::initializer_list<Value> args) {
  const ClassId cls = class_of(obj.id);
  const MethodId m = registry_->get(cls).find_method(method);
  if (!m.valid()) {
    throw VmError(VmErrorCode::unknown_method,
                  registry_->get(cls).name + "." + std::string(method));
  }
  return invoke(obj, m, std::span<const Value>(args.begin(), args.size()));
}

Value Vm::call_static(std::string_view cls, std::string_view method,
                      std::initializer_list<Value> args) {
  const ClassId cid = registry_->find(cls);
  const MethodId m = registry_->get(cid).find_method(method);
  if (!m.valid()) {
    throw VmError(VmErrorCode::unknown_method,
                  std::string(cls) + "." + std::string(method));
  }
  return invoke_static(cid, m,
                       std::span<const Value>(args.begin(), args.size()));
}

Value Vm::call_site_slow(ObjectRef obj, const CallSite& site,
                         std::span<const Value> args) {
  if (obj.is_null()) {
    throw VmError(VmErrorCode::null_reference, "invoke on null");
  }
  // One heap probe resolves both the receiver class and its locality.
  Object* o = heap_.find(obj.id);
  const ClassId cls = o != nullptr ? o->cls : class_of(obj.id);
  if (site.epoch_ != registry_->epoch() || site.cls_ != cls) {
    // Miss: first use, a different receiver class, or a different/expanded
    // registry since the last resolution.
    const MethodId m = registry_->get(cls).find_method(site.method_);
    if (!m.valid()) {
      throw VmError(VmErrorCode::unknown_method,
                    registry_->get(cls).name + "." +
                        std::string(site.method_));
    }
    site.cls_ = cls;
    site.mid_ = m;
    site.epoch_ = registry_->epoch();
    const MethodDef& mdef = registry_->get(cls).methods[m.value()];
    site.fast_ok_ =
        (mdef.kind == MethodKind::managed && !mdef.is_static && mdef.body);
    site.mdef_ = site.fast_ok_ ? &mdef : nullptr;
  }
  return dispatch_invoke(obj, cls, site.mid_, args,
                         /*is_static=*/false,
                         o != nullptr ? Locality::local : Locality::unknown);
}

Value Vm::call_static(const StaticCallSite& site,
                      std::initializer_list<Value> args) {
  if (site.epoch_ != registry_->epoch()) {
    const ClassId cid = registry_->find(site.cls_name_);
    const MethodId m = registry_->get(cid).find_method(site.method_);
    if (!m.valid()) {
      throw VmError(VmErrorCode::unknown_method,
                    std::string(site.cls_name_) + "." +
                        std::string(site.method_));
    }
    site.cls_ = cid;
    site.mid_ = m;
    site.epoch_ = registry_->epoch();
  }
  return dispatch_invoke(kNullRef, site.cls_, site.mid_,
                         std::span<const Value>(args.begin(), args.size()),
                         /*is_static=*/true);
}

Value Vm::invoke(ObjectRef obj, MethodId method, std::span<const Value> args) {
  if (obj.is_null()) {
    throw VmError(VmErrorCode::null_reference, "invoke on null");
  }
  Object* o = heap_.find(obj.id);
  const ClassId cls = o != nullptr ? o->cls : class_of(obj.id);
  return dispatch_invoke(obj, cls, method, args, /*is_static=*/false,
                         o != nullptr ? Locality::local : Locality::unknown);
}

Value Vm::invoke_static(ClassId cls, MethodId method,
                        std::span<const Value> args) {
  return dispatch_invoke(kNullRef, cls, method, args, /*is_static=*/true);
}

Value Vm::dispatch_invoke(ObjectRef target, ClassId cls, MethodId mid,
                          std::span<const Value> args, bool is_static,
                          Locality locality) {
  const MethodDef& m = method_def(cls, mid);
  if (m.is_static != is_static) {
    throw VmError(VmErrorCode::unknown_method,
                  registry_->get(cls).name + "." + m.name +
                      ": static/instance mismatch");
  }

  // Execution-site rules (paper 3.2):
  //  * native methods execute on the client, unless stateless and the
  //    stateless-native enhancement is enabled;
  //  * static managed methods execute on the invoking VM;
  //  * instance managed methods follow the placement of the target object.
  const bool known_local = locality == Locality::local;
  bool run_here;
  if (m.kind == MethodKind::native) {
    if (m.stateless && cfg_.stateless_natives_local) {
      run_here = is_static || known_local || is_local(target.id);
    } else {
      run_here = cfg_.is_client;
    }
    if (run_here && !is_static && !(known_local || is_local(target.id))) {
      run_here = false;
    }
  } else if (is_static) {
    run_here = true;
  } else {
    run_here = known_local || is_local(target.id);
  }

  // Event assembly (timestamps, wire-size sums) only pays off when someone
  // is listening; skipping it when no hooks are attached is unobservable.
  const bool traced = !hooks_.empty();
  const SimTime t0 = traced ? clock_.now() : 0;
  const std::uint64_t arg_bytes = traced ? args_wire_size(args) : 0;

  Value ret;
  if (run_here) {
    ret = execute_local(target, cls, mid, m, args);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference,
                    cfg_.name + ": remote invoke with no peer attached");
    }
    stats_.remote_invocations += 1;
    ret = is_static ? peer_->invoke_static(cls, mid, args)
                    : peer_->invoke(target.id, cls, mid, args);
    root_in_frame(ret);
  }

  stats_.invocations += 1;
  if (traced) {
    InvokeEvent ev;
    ev.vm = cfg_.node;
    ev.caller_cls = current_cls().valid() ? current_cls() : cls;
    ev.caller_obj = current_obj();
    ev.callee_cls = cls;
    ev.callee_obj = is_static ? ObjectId::invalid() : target.id;
    ev.method = mid;
    ev.is_native = (m.kind == MethodKind::native);
    ev.is_static = is_static;
    ev.is_stateless = m.stateless;
    ev.remote = !run_here;
    ev.bytes = arg_bytes + ret.wire_size();
    ev.t = t0;
    fire([&](VmHooks& h) { h.on_invoke(ev); });
  }

  return ret;
}

Value Vm::execute_local(ObjectRef self, ClassId cls, MethodId mid,
                        const MethodDef& m, std::span<const Value> args) {
  if (frame_depth_ >= cfg_.max_stack_depth) {
    throw VmError(VmErrorCode::stack_overflow, registry_->get(cls).name);
  }
  if (!m.body) {
    throw VmError(VmErrorCode::native_not_registered,
                  registry_->get(cls).name + "." + m.name);
  }

  // Reuse a pooled frame: past max depth the pool stops growing, and each
  // retired frame keeps its local_roots capacity.
  if (frame_depth_ == frames_.size()) frames_.emplace_back();
  const std::size_t frame_ix = frame_depth_++;
  Frame& f = frames_[frame_ix];
  f.cls = cls;
  f.self = self.id;
  f.method = mid;
  f.start = clock_.now();
  f.child_time = 0;
  f.local_roots.clear();
  if (self.id.valid()) f.local_roots.push_back(self.id);
  for (const Value& a : args) {
    if (a.is_ref() && !a.as_ref().is_null()) {
      f.local_roots.push_back(a.as_ref().id);
    }
  }

  fire([&](VmHooks& h) {
    h.on_method_enter(cfg_.node, cls, self.id, mid, clock_.now());
  });

  work(m.base_cost);

  Value ret;
  try {
    ret = m.body(*this, self, args);
  } catch (...) {
    // Unwind bookkeeping, then let the error propagate (possibly across the
    // simulated RPC boundary, where the endpoint converts it).
    const SimDuration total = clock_.now() - frames_[frame_ix].start;
    --frame_depth_;
    if (frame_depth_ > 0) frames_[frame_depth_ - 1].child_time += total;
    throw;
  }

  const SimDuration total = clock_.now() - frames_[frame_ix].start;
  const SimDuration self_time = total - frames_[frame_ix].child_time;
  fire([&](VmHooks& h) {
    h.on_method_exit(cfg_.node, cls, self.id, mid, self_time, clock_.now());
  });

  --frame_depth_;
  if (frame_depth_ > 0) frames_[frame_depth_ - 1].child_time += total;
  root_in_frame(ret);
  return ret;
}

Value Vm::run_incoming_invoke(ObjectId target, MethodId method,
                              std::span<const Value> args) {
  const ClassId cls = class_of(target);
  return execute_local(ObjectRef{target}, cls, method, method_def(cls, method),
                       args);
}

Value Vm::run_incoming_invoke_static(ClassId cls, MethodId method,
                                     std::span<const Value> args) {
  return execute_local(kNullRef, cls, method, method_def(cls, method), args);
}

// --- field access --------------------------------------------------------------

Value Vm::get_field_slow(ObjectRef obj, FieldId field) {
  if (obj.is_null()) {
    throw VmError(VmErrorCode::null_reference, "get_field on null");
  }
  Value v;
  bool remote = false;
  ClassId tcls;
  if (Object* o = heap_.find(obj.id); o != nullptr) {
    tcls = o->cls;
    if (field.value() >= o->fields.size()) {
      throw VmError(VmErrorCode::unknown_field,
                    registry_->get(tcls).name + " field #" +
                        std::to_string(field.value()));
    }
    v = o->fields[field.value()];
  } else {
    tcls = class_of(obj.id);  // throws if unknown
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote field, no peer");
    }
    v = peer_->get_field(obj.id, field);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = obj.id;
    ev.is_write = false;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }

  root_in_frame(v);
  return v;
}

Value Vm::get_field(ObjectRef obj, std::string_view field) {
  const ClassDef& def = registry_->get(class_of(obj.id));
  const FieldId f = def.find_field(field);
  if (!f.valid()) {
    throw VmError(VmErrorCode::unknown_field,
                  def.name + "." + std::string(field));
  }
  return get_field(obj, f);
}

void Vm::put_field_slow(ObjectRef obj, FieldId field, const Value& v) {
  if (obj.is_null()) {
    throw VmError(VmErrorCode::null_reference, "put_field on null");
  }
  bool remote = false;
  ClassId tcls;
  if (Object* o = heap_.find(obj.id); o != nullptr) {
    tcls = o->cls;
    put_field_local(*o, field, v);
  } else {
    tcls = class_of(obj.id);
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote field, no peer");
    }
    peer_->put_field(obj.id, field, v);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = obj.id;
    ev.is_write = true;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
}

void Vm::put_field(ObjectRef obj, std::string_view field, const Value& v) {
  const ClassDef& def = registry_->get(class_of(obj.id));
  const FieldId f = def.find_field(field);
  if (!f.valid()) {
    throw VmError(VmErrorCode::unknown_field,
                  def.name + "." + std::string(field));
  }
  put_field(obj, f, v);
}

Value Vm::raw_get_field(ObjectId target, FieldId field) {
  Object& o = require_local(target);
  if (field.value() >= o.fields.size()) {
    throw VmError(VmErrorCode::unknown_field,
                  "field #" + std::to_string(field.value()));
  }
  return o.fields[field.value()];
}

void Vm::raw_put_field(ObjectId target, FieldId field, const Value& v) {
  put_field_local(require_local(target), field, v);
}

void Vm::put_field_local(Object& o, FieldId field, const Value& v) {
  if (field.value() >= o.fields.size()) {
    throw VmError(VmErrorCode::unknown_field,
                  "field #" + std::to_string(field.value()));
  }
  if (journal_recording()) {
    journal_.push_back({JournalEntry::Kind::field, o.id, field.value(),
                        o.fields[field.value()], 0, {}});
  }
  // Only string payloads change an object's footprint; compute the delta
  // from the touched slot alone (size_bytes() would scan every field, which
  // is quadratic for large reference arrays).
  const Value& old = o.fields[field.value()];
  const std::int64_t delta =
      (v.is_str() ? static_cast<std::int64_t>(v.as_str().size()) : 0) -
      (old.is_str() ? static_cast<std::int64_t>(old.as_str().size()) : 0);
  o.fields[field.value()] = v;
  if (redo_log_ != nullptr) [[unlikely]] {
    redo_log_->record_field(o.id, field.value(), v);
  }
  if (delta != 0) {
    heap_.adjust_used(o, delta);
    fire([&](VmHooks& h) { h.on_resize(cfg_.node, o.id, o.cls, delta); });
  }
}

// --- statics ---------------------------------------------------------------------

Value Vm::get_static(ClassId cls, std::uint32_t slot) {
  Value v;
  bool remote = false;
  if (cfg_.is_client) {
    v = raw_get_static(cls, slot);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote static, no peer");
    }
    v = peer_->get_static(cls, slot);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : cls;
    ev.from_obj = current_obj();
    ev.to_cls = cls;
    ev.is_static = true;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }

  root_in_frame(v);
  return v;
}

Value Vm::get_static(std::string_view cls, std::string_view slot) {
  const ClassId cid = registry_->find(cls);
  return get_static(cid, registry_->get(cid).require_static(slot));
}

void Vm::put_static(ClassId cls, std::uint32_t slot, const Value& v) {
  bool remote = false;
  if (cfg_.is_client) {
    raw_put_static(cls, slot, v);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote static, no peer");
    }
    peer_->put_static(cls, slot, v);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : cls;
    ev.from_obj = current_obj();
    ev.to_cls = cls;
    ev.is_static = true;
    ev.is_write = true;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
}

void Vm::put_static(std::string_view cls, std::string_view slot,
                    const Value& v) {
  const ClassId cid = registry_->find(cls);
  put_static(cid, registry_->get(cid).require_static(slot), v);
}

Value Vm::raw_get_static(ClassId cls, std::uint32_t slot) {
  const std::uint64_t ix = static_index(cls, slot);
  return ix < statics_.size() ? statics_[ix] : Value{};
}

void Vm::raw_put_static(ClassId cls, std::uint32_t slot, const Value& v) {
  const std::uint64_t ix = static_index(cls, slot);
  if (ix >= statics_.size()) {
    // Grow to the registry's current slot total so one resize covers every
    // class registered so far (late registrations grow it again).
    statics_.resize(
        std::max<std::uint64_t>(ix + 1, registry_->static_slot_count()));
  }
  if (journal_recording()) {
    journal_.push_back({JournalEntry::Kind::static_slot, ObjectId::invalid(),
                        ix, statics_[ix], 0, {}});
  }
  statics_[ix] = v;
}

// --- arrays ---------------------------------------------------------------------

namespace {
void check_index(const Object& o, std::int64_t index) {
  if (index < 0 || index >= o.array_length()) {
    throw VmError(VmErrorCode::bad_array_index,
                  std::to_string(index) + " of " +
                      std::to_string(o.array_length()));
  }
}
}  // namespace

Value Vm::array_get(ObjectRef arr, std::int64_t index) {
  if (arr.is_null()) {
    throw VmError(VmErrorCode::null_reference, "array_get on null");
  }
  Value v;
  bool remote = false;
  const ClassId tcls = class_of(arr.id);
  if (heap_.contains(arr.id)) {
    v = raw_array_get(arr.id, index);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote array, no peer");
    }
    v = peer_->array_get(arr.id, index);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = arr.id;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
  return v;
}

void Vm::array_put(ObjectRef arr, std::int64_t index, const Value& v) {
  if (arr.is_null()) {
    throw VmError(VmErrorCode::null_reference, "array_put on null");
  }
  bool remote = false;
  const ClassId tcls = class_of(arr.id);
  if (heap_.contains(arr.id)) {
    raw_array_put(arr.id, index, v);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote array, no peer");
    }
    peer_->array_put(arr.id, index, v);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = arr.id;
    ev.is_write = true;
    ev.remote = remote;
    ev.bytes = v.wire_size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
}

std::int64_t Vm::array_length(ObjectRef arr) {
  if (arr.is_null()) {
    throw VmError(VmErrorCode::null_reference, "array_length on null");
  }
  if (heap_.contains(arr.id)) return raw_array_length(arr.id);
  if (stubs_.contains(arr.id)) {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote array, no peer");
    }
    stats_.remote_field_accesses += 1;
    return peer_->array_length(arr.id);
  }
  throw VmError(VmErrorCode::null_reference, "unknown array");
}

std::string Vm::chars_read(ObjectRef arr, std::int64_t offset,
                           std::int64_t length) {
  if (arr.is_null()) {
    throw VmError(VmErrorCode::null_reference, "chars_read on null");
  }
  std::string out;
  bool remote = false;
  const ClassId tcls = class_of(arr.id);
  if (heap_.contains(arr.id)) {
    out = raw_chars_read(arr.id, offset, length);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote array, no peer");
    }
    out = peer_->chars_read(arr.id, offset, length);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = arr.id;
    ev.remote = remote;
    ev.bytes = out.size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
  return out;
}

void Vm::chars_write(ObjectRef arr, std::int64_t offset,
                     std::string_view data) {
  if (arr.is_null()) {
    throw VmError(VmErrorCode::null_reference, "chars_write on null");
  }
  bool remote = false;
  const ClassId tcls = class_of(arr.id);
  if (heap_.contains(arr.id)) {
    raw_chars_write(arr.id, offset, data);
  } else {
    if (peer_ == nullptr) {
      throw VmError(VmErrorCode::null_reference, "remote array, no peer");
    }
    peer_->chars_write(arr.id, offset, data);
    remote = true;
    stats_.remote_field_accesses += 1;
  }

  stats_.field_accesses += 1;
  if (!hooks_.empty()) {
    AccessEvent ev;
    ev.vm = cfg_.node;
    ev.from_cls = current_cls().valid() ? current_cls() : tcls;
    ev.from_obj = current_obj();
    ev.to_cls = tcls;
    ev.to_obj = arr.id;
    ev.is_write = true;
    ev.remote = remote;
    ev.bytes = data.size();
    ev.t = clock_.now();
    fire([&](VmHooks& h) { h.on_access(ev); });
  }
}

Value Vm::raw_array_get(ObjectId target, std::int64_t index) {
  Object& o = require_local(target);
  check_index(o, index);
  switch (o.kind) {
    case ObjectKind::int_array: return Value{o.ints[index]};
    case ObjectKind::char_array:
      return Value{static_cast<std::int64_t>(
          static_cast<unsigned char>(o.chars[index]))};
    case ObjectKind::plain:
      throw VmError(VmErrorCode::type_mismatch, "array_get on plain object");
  }
  return Value{};
}

void Vm::raw_array_put(ObjectId target, std::int64_t index, const Value& v) {
  Object& o = require_local(target);
  check_index(o, index);
  if (journal_recording() && o.kind != ObjectKind::plain) {
    const std::int64_t old =
        o.kind == ObjectKind::int_array
            ? o.ints[index]
            : static_cast<std::int64_t>(
                  static_cast<unsigned char>(o.chars[index]));
    journal_.push_back({JournalEntry::Kind::array_elem, target,
                        static_cast<std::uint64_t>(index), Value{}, old, {}});
  }
  switch (o.kind) {
    case ObjectKind::int_array: o.ints[index] = v.as_int(); break;
    case ObjectKind::char_array:
      o.chars[index] = static_cast<char>(v.as_int());
      break;
    case ObjectKind::plain:
      throw VmError(VmErrorCode::type_mismatch, "array_put on plain object");
  }
  if (redo_log_ != nullptr) [[unlikely]] {
    const std::int64_t stored =
        o.kind == ObjectKind::int_array
            ? o.ints[index]
            : static_cast<std::int64_t>(
                  static_cast<unsigned char>(o.chars[index]));
    redo_log_->record_array(target, static_cast<std::uint64_t>(index), stored);
  }
}

std::int64_t Vm::raw_array_length(ObjectId target) {
  return require_local(target).array_length();
}

std::string Vm::raw_chars_read(ObjectId target, std::int64_t offset,
                               std::int64_t length) {
  Object& o = require_local(target);
  if (o.kind != ObjectKind::char_array) {
    throw VmError(VmErrorCode::type_mismatch, "chars_read on non-char array");
  }
  if (offset < 0 || length < 0 ||
      offset + length > static_cast<std::int64_t>(o.chars.size())) {
    throw VmError(VmErrorCode::bad_array_index, "chars_read out of range");
  }
  return o.chars.substr(static_cast<std::size_t>(offset),
                        static_cast<std::size_t>(length));
}

void Vm::raw_chars_write(ObjectId target, std::int64_t offset,
                         std::string_view data) {
  Object& o = require_local(target);
  if (o.kind != ObjectKind::char_array) {
    throw VmError(VmErrorCode::type_mismatch, "chars_write on non-char array");
  }
  if (offset < 0 ||
      offset + static_cast<std::int64_t>(data.size()) >
          static_cast<std::int64_t>(o.chars.size())) {
    throw VmError(VmErrorCode::bad_array_index, "chars_write out of range");
  }
  if (journal_recording()) {
    journal_.push_back({JournalEntry::Kind::chars, target,
                        static_cast<std::uint64_t>(offset), Value{}, 0,
                        o.chars.substr(static_cast<std::size_t>(offset),
                                       data.size())});
  }
  o.chars.replace(static_cast<std::size_t>(offset), data.size(), data);
  if (redo_log_ != nullptr) [[unlikely]] {
    redo_log_->record_chars(target, static_cast<std::uint64_t>(offset),
                            std::string(data));
  }
}

// --- migration -------------------------------------------------------------------

std::unique_ptr<Object> Vm::migrate_out(ObjectId id) {
  auto obj = heap_.extract(id);
  if (obj == nullptr) {
    throw VmError(VmErrorCode::null_reference,
                  cfg_.name + ": migrate_out of non-local object");
  }
  stubs_[id] = StubInfo{obj->cls, obj->kind, false};
  return obj;
}

void Vm::migrate_in(std::unique_ptr<Object> obj) {
  assert(obj != nullptr);
  ensure_capacity(obj->size_bytes());
  stubs_.erase(obj->id);
  obj->gc_mark = false;
  heap_.insert(std::move(obj));
}

void Vm::install_stub(ObjectId id, ClassId cls, ObjectKind kind) {
  if (heap_.contains(id)) return;  // already local; no stub needed
  stubs_.emplace(id, StubInfo{cls, kind, false});
}

std::vector<ObjectId> Vm::local_objects_of_class(ClassId cls) const {
  std::vector<ObjectId> out;
  heap_.for_each([&](const Object& o) {
    if (o.cls == cls) out.push_back(o.id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace aide::vm
