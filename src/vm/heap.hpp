// Object heap with capacity accounting.
//
// Storage and byte accounting for one VM's live objects. Garbage collection
// policy (mark roots, sweep, report) is orchestrated by the Vm, which owns
// the root set; the heap provides storage, capacity checks and sweep support.
// GC reports mirror what the paper extracts from Chai's incremental
// mark-and-sweep collector: the amount of free heap after each cycle
// (section 3.4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "vm/object.hpp"

namespace aide::vm {

struct GcReport {
  std::uint32_t cycle = 0;
  std::int64_t used_before = 0;
  std::int64_t used_after = 0;
  std::int64_t capacity = 0;
  std::int64_t freed = 0;
  std::int64_t live_objects = 0;

  [[nodiscard]] double free_fraction() const noexcept {
    if (capacity <= 0) return 1.0;
    return 1.0 - static_cast<double>(used_after) / static_cast<double>(capacity);
  }
};

class Heap {
 public:
  explicit Heap(std::int64_t capacity_bytes) noexcept
      : capacity_(capacity_bytes) {}

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t used() const noexcept { return used_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept {
    return capacity_ - used_;
  }
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }

  [[nodiscard]] bool fits(std::int64_t bytes) const noexcept {
    return used_ + bytes <= capacity_;
  }

  // Inserts a fully-formed object; the caller has already verified capacity.
  Object& insert(std::unique_ptr<Object> obj) {
    used_ += obj->size_bytes();
    Object& ref = *obj;
    objects_[obj->id] = std::move(obj);
    return ref;
  }

  [[nodiscard]] Object* find(ObjectId id) noexcept {
    const auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] const Object* find(ObjectId id) const noexcept {
    const auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }

  [[nodiscard]] bool contains(ObjectId id) const noexcept {
    return objects_.contains(id);
  }

  // Adjusts accounting after an in-place mutation changed an object's size
  // (e.g. a string field grew).
  void adjust_used(std::int64_t delta) noexcept { used_ += delta; }

  // Removes an object without destroying it — used by migration, which moves
  // the object to the peer VM.
  std::unique_ptr<Object> extract(ObjectId id) {
    auto it = objects_.find(id);
    if (it == objects_.end()) return nullptr;
    auto obj = std::move(it->second);
    objects_.erase(it);
    used_ -= obj->size_bytes();
    return obj;
  }

  // Sweep phase: destroys every unmarked object, invoking `on_free` for each,
  // and clears all marks. Returns bytes freed.
  std::int64_t sweep(const std::function<void(const Object&)>& on_free) {
    std::int64_t freed = 0;
    for (auto it = objects_.begin(); it != objects_.end();) {
      Object& obj = *it->second;
      if (!obj.gc_mark) {
        freed += obj.size_bytes();
        if (on_free) on_free(obj);
        it = objects_.erase(it);
      } else {
        obj.gc_mark = false;
        ++it;
      }
    }
    used_ -= freed;
    return freed;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, obj] : objects_) fn(*obj);
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [id, obj] : objects_) fn(*obj);
  }

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::unordered_map<ObjectId, std::unique_ptr<Object>> objects_;
};

}  // namespace aide::vm
