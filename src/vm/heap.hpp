// Object heap with capacity accounting.
//
// Storage and byte accounting for one VM's live objects. Garbage collection
// policy (mark roots, sweep, report) is orchestrated by the Vm, which owns
// the root set; the heap provides storage, capacity checks and sweep support.
// GC reports mirror what the paper extracts from Chai's incremental
// mark-and-sweep collector: the amount of free heap after each cycle
// (section 3.4).
//
// Layout: a slab of slots (each holding one pooled Object behind a stable
// unique_ptr) plus a dense per-node ObjectId → slot table. Ids are
// `(node << 48) | counter` with a monotone per-VM counter, so the counter is
// a natural dense index: each node keeps a vector of packed
// `(generation+1) << 32 | slot` entries offset by a running `base`. find and
// contains are two array indexations; create/extract recycle slots and
// payload capacity off a free list (no malloc in steady state); sweep and
// for_each walk nodes and counters in ascending order, making GC callback
// order deterministic and id-sorted. Slot generations are bumped on every
// release so a stale id can never alias a recycled slot.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "vm/object.hpp"

namespace aide::vm {

struct GcReport {
  std::uint32_t cycle = 0;
  std::int64_t used_before = 0;
  std::int64_t used_after = 0;
  std::int64_t capacity = 0;
  std::int64_t freed = 0;
  std::int64_t live_objects = 0;

  [[nodiscard]] double free_fraction() const noexcept {
    if (capacity <= 0) return 1.0;
    return 1.0 - static_cast<double>(used_after) / static_cast<double>(capacity);
  }
};

class Heap {
 public:
  explicit Heap(std::int64_t capacity_bytes) noexcept
      : capacity_(capacity_bytes) {}

  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t used() const noexcept { return used_; }
  [[nodiscard]] std::int64_t free_bytes() const noexcept {
    return capacity_ - used_;
  }
  [[nodiscard]] std::size_t object_count() const noexcept { return live_; }

  [[nodiscard]] bool fits(std::int64_t bytes) const noexcept {
    return used_ + bytes <= capacity_;
  }

  // Allocates an object in-place, recycling a freed slot (and its payload
  // capacity) when one is available. The caller has already verified capacity
  // and computed the footprint; payloads come back zero-initialised exactly
  // like a fresh allocation.
  Object& create(ObjectId id, ClassId cls, ObjectKind kind,
                 std::size_t fields_len, std::size_t ints_len,
                 std::size_t chars_len, std::int64_t size_bytes) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    if (!s.obj) s.obj = std::make_unique<Object>();
    Object& obj = *s.obj;
    obj.id = id;
    obj.cls = cls;
    obj.kind = kind;
    obj.gc_mark = false;
    obj.fields.assign(fields_len, Value{});
    obj.ints.assign(ints_len, 0);
    obj.chars.assign(chars_len, '\0');
    obj.set_size_cache(size_bytes);
    link(id, slot);
    used_ += size_bytes;
    ++live_;
    return obj;
  }

  // Inserts a fully-formed object (migration adopts objects built by the
  // deserializer); the caller has already verified capacity. The Object's
  // address stays stable for its whole lifetime.
  Object& insert(std::unique_ptr<Object> obj) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.obj = std::move(obj);  // replaces any pooled carcass
    used_ += s.obj->size_bytes();
    link(s.obj->id, slot);
    ++live_;
    return *s.obj;
  }

  // The entry embeds the object pointer next to the generation word, so a
  // hit costs the node-table walk plus one same-cache-line read; the slot's
  // generation is cross-checked to reject stale ids.
  [[nodiscard]] Object* find(ObjectId id) noexcept {
    const Entry* e = entry_of(id);
    return e != nullptr ? e->obj : nullptr;
  }
  [[nodiscard]] const Object* find(ObjectId id) const noexcept {
    const Entry* e = entry_of(id);
    return e != nullptr ? e->obj : nullptr;
  }

  [[nodiscard]] bool contains(ObjectId id) const noexcept {
    return lookup(id) != kNoSlot;
  }

  // Adjusts accounting after an in-place mutation changed an object's size
  // (e.g. a string field grew); keeps the object's cached footprint and the
  // heap's used-byte total in lockstep.
  void adjust_used(Object& obj, std::int64_t delta) noexcept {
    obj.adjust_size(delta);
    used_ += delta;
  }

  // Re-syncs the used-byte total after an object's payload was rewritten
  // wholesale (migration adoption): the object was charged `previous_bytes`
  // at insert and its size cache has already been refreshed.
  void resync_used(const Object& obj, std::int64_t previous_bytes) noexcept {
    used_ += obj.size_bytes() - previous_bytes;
  }

  // Removes an object without destroying it — used by migration, which moves
  // the object to the peer VM.
  std::unique_ptr<Object> extract(ObjectId id) {
    const std::uint32_t slot = lookup(id);
    if (slot == kNoSlot) return nullptr;
    Slot& s = slots_[slot];
    auto obj = std::move(s.obj);
    used_ -= obj->size_bytes();
    --live_;
    unlink(obj->id);
    release_slot(slot);
    return obj;
  }

  // Sweep phase: destroys every unmarked object, invoking `on_free` for each,
  // and clears all marks. Objects are visited in ascending id order (nodes
  // ascending, counters ascending), so GC callbacks are deterministic.
  // Returns bytes freed.
  std::int64_t sweep(const std::function<void(const Object&)>& on_free) {
    std::int64_t freed = 0;
    for (NodeTable& t : nodes_) {
      for (std::size_t i = 0; i < t.entries.size(); ++i) {
        const Entry e = t.entries[i];
        if (e.packed == 0) continue;
        Object& obj = *e.obj;
        if (!obj.gc_mark) {
          freed += obj.size_bytes();
          if (on_free) on_free(obj);
          t.entries[i] = Entry{};
          --live_;
          release_slot(static_cast<std::uint32_t>(e.packed));
        } else {
          obj.gc_mark = false;
        }
      }
      trim(t);
    }
    used_ -= freed;
    return freed;
  }

  // Ascending id order, same as sweep.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const NodeTable& t : nodes_) {
      for (const Entry& e : t.entries) {
        if (e.packed != 0) fn(*e.obj);
      }
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (NodeTable& t : nodes_) {
      for (const Entry& e : t.entries) {
        if (e.packed != 0) fn(*e.obj);
      }
    }
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFU;
  static constexpr std::uint64_t kCounterMask = (1ULL << 48) - 1;
  // Pooled payload capacity beyond this is returned to the allocator on
  // release so one huge array cannot pin its buffer forever.
  static constexpr std::size_t kMaxPooledPayload = 4096;

  struct Slot {
    std::unique_ptr<Object> obj;  // carcass retained while free (payload pool)
    std::uint32_t gen = 0;        // bumped on every release; guards stale ids
  };

  // Dense counter → entry table for one node's ids. `packed` holds
  // `(gen + 1) << 32 | slot` (0 means no object) and `obj` caches the slot's
  // object pointer so a hit needs no second table chase. `base` is the
  // counter of entries[0] and advances as the dead prefix is trimmed.
  struct Entry {
    std::uint64_t packed = 0;
    Object* obj = nullptr;
  };
  struct NodeTable {
    std::uint64_t base = 0;
    std::vector<Entry> entries;
  };

  [[nodiscard]] const Entry* entry_of(ObjectId id) const noexcept {
    if (!id.valid()) return nullptr;
    const std::uint64_t node = id.value() >> 48;
    if (node >= nodes_.size()) return nullptr;
    const NodeTable& t = nodes_[node];
    const std::uint64_t counter = id.value() & kCounterMask;
    if (counter < t.base || counter - t.base >= t.entries.size()) {
      return nullptr;
    }
    const Entry& e = t.entries[counter - t.base];
    if (e.packed == 0) return nullptr;
    // Releasing a slot always clears or overwrites its entry in the same
    // operation, so a live entry's recorded generation must match the slot;
    // the packed generation is defense in depth, not a hot-path branch.
    assert(slots_[static_cast<std::uint32_t>(e.packed)].gen ==
           static_cast<std::uint32_t>(e.packed >> 32) - 1);
    return &e;
  }

  [[nodiscard]] std::uint32_t lookup(ObjectId id) const noexcept {
    const Entry* e = entry_of(id);
    return e != nullptr ? static_cast<std::uint32_t>(e->packed) : kNoSlot;
  }

  void link(ObjectId id, std::uint32_t slot) {
    const std::uint64_t node = id.value() >> 48;
    const std::uint64_t counter = id.value() & kCounterMask;
    if (node >= nodes_.size()) nodes_.resize(node + 1);
    NodeTable& t = nodes_[node];
    if (t.entries.empty()) {
      t.base = counter;
      t.entries.push_back(Entry{});
    } else if (counter < t.base) {
      // An id below the trimmed prefix came back (object migrated out long
      // ago returns home). Re-grow the front; rare, so O(n) is fine.
      t.entries.insert(t.entries.begin(), t.base - counter, Entry{});
      t.base = counter;
    } else if (counter - t.base >= t.entries.size()) {
      t.entries.resize(counter - t.base + 1, Entry{});
    }
    Entry& e = t.entries[counter - t.base];
    if (e.packed != 0) {
      release_slot(static_cast<std::uint32_t>(e.packed));  // id re-insert
    }
    e.packed = (static_cast<std::uint64_t>(slots_[slot].gen) + 1) << 32 | slot;
    e.obj = slots_[slot].obj.get();
  }

  void unlink(ObjectId id) noexcept {
    const std::uint64_t node = id.value() >> 48;
    if (node >= nodes_.size()) return;
    NodeTable& t = nodes_[node];
    const std::uint64_t counter = id.value() & kCounterMask;
    if (counter >= t.base && counter - t.base < t.entries.size()) {
      t.entries[counter - t.base] = Entry{};
    }
  }

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // Retires a slot to the free list. The Object carcass stays (its payload
  // capacity is the recycling win) but its contents are dropped so strings
  // and dead references are not kept alive, and oversized buffers are
  // returned to the allocator.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    ++s.gen;
    if (Object* obj = s.obj.get()) {
      obj->fields.clear();
      obj->ints.clear();
      obj->chars.clear();
      if (obj->fields.capacity() > kMaxPooledPayload) obj->fields.shrink_to_fit();
      if (obj->ints.capacity() > kMaxPooledPayload) obj->ints.shrink_to_fit();
      if (obj->chars.capacity() > kMaxPooledPayload) obj->chars.shrink_to_fit();
      obj->invalidate_size_cache();
    }
    free_.push_back(slot);
  }

  // Drops the dead prefix (advancing base) and the dead tail of a node table
  // so the dense span tracks the live id range instead of every id ever
  // allocated.
  static void trim(NodeTable& t) {
    std::size_t first = 0;
    while (first < t.entries.size() && t.entries[first].packed == 0) ++first;
    if (first == t.entries.size()) {
      t.entries.clear();
      t.base = 0;
      return;
    }
    if (first > 0) {
      t.entries.erase(t.entries.begin(),
                      t.entries.begin() + static_cast<std::ptrdiff_t>(first));
      t.base += first;
    }
    std::size_t last = t.entries.size();
    while (last > 0 && t.entries[last - 1].packed == 0) --last;
    t.entries.resize(last);
  }

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<NodeTable> nodes_;
};

}  // namespace aide::vm
