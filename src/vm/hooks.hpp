// VM instrumentation hooks.
//
// The paper augments the JVM's code for "method invocations, data field
// accesses, object creation, and object deletion" (section 3.4). VmHooks is
// that augmentation surface: the execution monitor, the resource monitor and
// the trace recorder all implement this interface, and a VM dispatches every
// instrumented event to its registered hooks.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/simclock.hpp"
#include "vm/heap.hpp"

namespace aide::vm {

// One method-invocation interaction, reported by the *calling* VM after the
// call returned. `bytes` covers parameters plus the return value.
//
// Event structs sit on the monitoring hot path (one per instrumented VM
// operation), so members are ordered widest-first to avoid alignment padding.
struct InvokeEvent {
  ObjectId caller_obj = ObjectId::invalid();
  ObjectId callee_obj = ObjectId::invalid();  // invalid for static methods
  std::uint64_t bytes = 0;
  SimTime t = 0;
  NodeId vm;
  ClassId caller_cls;
  ClassId callee_cls;
  MethodId method;
  bool is_native = false;
  bool is_static = false;
  bool is_stateless = false;
  bool remote = false;  // the call crossed to the other VM
};

// One data access (instance field, static slot, or array element).
struct AccessEvent {
  ObjectId from_obj = ObjectId::invalid();
  ObjectId to_obj = ObjectId::invalid();  // invalid for static slots
  std::uint64_t bytes = 0;
  SimTime t = 0;
  NodeId vm;
  ClassId from_cls;
  ClassId to_cls;
  bool is_write = false;
  bool is_static = false;
  bool remote = false;
};

class VmHooks {
 public:
  virtual ~VmHooks() = default;

  virtual void on_invoke(const InvokeEvent&) {}
  virtual void on_access(const AccessEvent&) {}

  // Frame lifecycle on the *executing* VM; `self_time` excludes nested calls
  // (the Figure 9 attribution is computed by the VM's frame bookkeeping).
  virtual void on_method_enter(NodeId /*vm*/, ClassId /*cls*/,
                               ObjectId /*obj*/, MethodId /*m*/,
                               SimTime /*t*/) {}
  virtual void on_method_exit(NodeId /*vm*/, ClassId /*cls*/, ObjectId /*obj*/,
                              MethodId /*m*/, SimDuration /*self_time*/,
                              SimTime /*t*/) {}

  virtual void on_alloc(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                        std::int64_t /*bytes*/, SimTime /*t*/) {}
  // An existing object's footprint changed in place (string field grew).
  virtual void on_resize(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                         std::int64_t /*delta_bytes*/) {}
  virtual void on_free(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                       std::int64_t /*bytes*/, SimTime /*t*/) {}

  virtual void on_gc(NodeId /*vm*/, const GcReport&) {}
};

}  // namespace aide::vm
