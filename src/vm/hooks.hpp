// VM instrumentation hooks.
//
// The paper augments the JVM's code for "method invocations, data field
// accesses, object creation, and object deletion" (section 3.4). VmHooks is
// that augmentation surface: the execution monitor, the resource monitor and
// the trace recorder all implement this interface, and a VM dispatches every
// instrumented event to its registered hooks.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/simclock.hpp"
#include "vm/heap.hpp"

namespace aide::vm {

// One method-invocation interaction, reported by the *calling* VM after the
// call returned. `bytes` covers parameters plus the return value.
struct InvokeEvent {
  NodeId vm;
  ClassId caller_cls;
  ObjectId caller_obj = ObjectId::invalid();
  ClassId callee_cls;
  ObjectId callee_obj = ObjectId::invalid();  // invalid for static methods
  MethodId method;
  bool is_native = false;
  bool is_static = false;
  bool is_stateless = false;
  bool remote = false;  // the call crossed to the other VM
  std::uint64_t bytes = 0;
  SimTime t = 0;
};

// One data access (instance field, static slot, or array element).
struct AccessEvent {
  NodeId vm;
  ClassId from_cls;
  ObjectId from_obj = ObjectId::invalid();
  ClassId to_cls;
  ObjectId to_obj = ObjectId::invalid();  // invalid for static slots
  bool is_write = false;
  bool is_static = false;
  bool remote = false;
  std::uint64_t bytes = 0;
  SimTime t = 0;
};

class VmHooks {
 public:
  virtual ~VmHooks() = default;

  virtual void on_invoke(const InvokeEvent&) {}
  virtual void on_access(const AccessEvent&) {}

  // Frame lifecycle on the *executing* VM; `self_time` excludes nested calls
  // (the Figure 9 attribution is computed by the VM's frame bookkeeping).
  virtual void on_method_enter(NodeId /*vm*/, ClassId /*cls*/,
                               ObjectId /*obj*/, MethodId /*m*/,
                               SimTime /*t*/) {}
  virtual void on_method_exit(NodeId /*vm*/, ClassId /*cls*/, ObjectId /*obj*/,
                              MethodId /*m*/, SimDuration /*self_time*/,
                              SimTime /*t*/) {}

  virtual void on_alloc(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                        std::int64_t /*bytes*/, SimTime /*t*/) {}
  // An existing object's footprint changed in place (string field grew).
  virtual void on_resize(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                         std::int64_t /*delta_bytes*/) {}
  virtual void on_free(NodeId /*vm*/, ObjectId /*obj*/, ClassId /*cls*/,
                       std::int64_t /*bytes*/, SimTime /*t*/) {}

  virtual void on_gc(NodeId /*vm*/, const GcReport&) {}
};

}  // namespace aide::vm
