// Class definitions and the shared class registry.
//
// A ClassDef describes instance fields, methods (managed or native), and
// static slots. Method bodies are C++ callables that interact with the VM
// exclusively through the VmContext API — every field access, invocation and
// allocation they perform flows through the VM's instrumented paths, which is
// precisely where the paper hooks its modified JVM (section 3.4).
//
// Native methods model Java methods "implemented with native code": they are
// not migratable, and by default they must execute on the client VM (paper
// 3.2). Stateless natives (Math functions, string utilities) can be relaxed
// to execute wherever they are invoked when the corresponding enhancement is
// enabled (paper 5.2).
//
// Both VMs share one immutable ClassRegistry — the paper's simplifying
// assumption that "both VMs have access to the application's Java bytecodes"
// (section 4).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/simclock.hpp"
#include "vm/value.hpp"

namespace aide::vm {

class Vm;
// Managed method bodies receive the VM they execute on as their context.
using VmContext = Vm;

// Heterogeneous string → index map: lets string_view lookups skip the
// temporary std::string the default hasher would force.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
using SymbolIndex = std::unordered_map<std::string, std::uint32_t,
                                       TransparentStringHash, std::equal_to<>>;

// find_static's "not found" result, mirroring MethodId/FieldId::invalid().
inline constexpr std::uint32_t kInvalidStaticSlot = 0xFFFFFFFFU;

// Monotone global counter stamping every ClassRegistry mutation. Two
// registries can never share an epoch, so a call-site cache keyed by epoch is
// automatically invalid against any registry other than the one it was
// resolved in (and against the same registry after late registration).
inline std::uint64_t next_registry_epoch() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Body of a managed or native method. `self` is null for static methods.
using MethodBody =
    std::function<Value(VmContext&, ObjectRef self, std::span<const Value>)>;

enum class MethodKind : std::uint8_t { managed, native };

// Why a class cannot leave the client device. `stateful_native` is derived
// from the method table (the paper's rule); `ui` and `user_pinned` are
// explicit declarations so diagnostics and static hints can explain the pin.
enum class PinReason : std::uint8_t { none, stateful_native, ui, user_pinned };

[[nodiscard]] constexpr std::string_view to_string(PinReason r) noexcept {
  switch (r) {
    case PinReason::none: return "none";
    case PinReason::stateful_native: return "stateful-native";
    case PinReason::ui: return "ui";
    case PinReason::user_pinned: return "user-pinned";
  }
  return "none";
}

// Declared side-effect class of a native method. Stateless natives are pure
// by construction; stateful natives should declare `device_state` so the
// static analyzer can tell "touches the device" apart from "forgot to say".
enum class NativeEffect : std::uint8_t { undeclared, pure, device_state };

// A statically declared call site: code in the declaring class invokes
// `target_class.method` with `argc` arguments (-1 = argument count unknown).
// Purely metadata — the analyzer cross-checks it against the target's
// declared arity; execution never consults it.
struct CallSiteDecl {
  std::string target_class;
  std::string method;
  int argc = -1;
};

// One operation of a method's declared effect IR — the method-level
// instruction stream the interprocedural effect analyzer (src/analysis)
// walks. Method bodies are opaque C++ callables, so the IR is declared next
// to the body through the ClassBuilder fluent calls; the analyzer resolves
// the names against the registry, infers whole-program summaries by fixpoint
// and audits the coarse metadata (NativeEffect, arity, field types, call
// declarations) against them, and the runtime effect-recorder tests audit the
// IR itself against observed execution. Execution never consults the IR.
enum class EffectOpKind : std::uint8_t {
  read_field,    // reads instance field `member` of class `cls`
  write_field,   // writes it (value_type: declared class of stored refs)
  read_static,   // reads static slot `member` of class `cls`
  write_static,  // writes it
  read_elems,    // reads elements of array class `cls` (int[]/char[]/...)
  write_elems,   // writes them
  alloc,         // allocates an instance of `cls`
  call,          // invokes `cls.member` with `argc` arguments (-1 unknown)
  yield,         // reaches an explicit yield point (forces a GC / flush)
};

[[nodiscard]] constexpr std::string_view to_string(EffectOpKind k) noexcept {
  switch (k) {
    case EffectOpKind::read_field: return "read-field";
    case EffectOpKind::write_field: return "write-field";
    case EffectOpKind::read_static: return "read-static";
    case EffectOpKind::write_static: return "write-static";
    case EffectOpKind::read_elems: return "read-elems";
    case EffectOpKind::write_elems: return "write-elems";
    case EffectOpKind::alloc: return "alloc";
    case EffectOpKind::call: return "call";
    case EffectOpKind::yield: return "yield";
  }
  return "?";
}

// `member` may be "*" — the op may touch any member of the class (used for
// index-addressed reference arrays and reflective access).
struct EffectOp {
  EffectOpKind kind = EffectOpKind::read_field;
  std::string cls;
  std::string member;
  int argc = -1;           // call only
  std::string value_type;  // write_field only: class of ref values stored
};

struct MethodDef {
  std::string name;
  MethodKind kind = MethodKind::managed;
  bool is_static = false;
  // Stateless/idempotent native (math, string copy): may run on either VM
  // when the stateless-native enhancement is enabled.
  bool stateless = false;
  // Declared side effect (natives only; managed bodies are fully
  // instrumented and need no declaration).
  NativeEffect effect = NativeEffect::undeclared;
  // Declared parameter count (-1 = undeclared; bodies take a span, so the
  // arity is not recoverable from the signature).
  int declared_arity = -1;
  // Declared effect IR (see EffectOp). `has_ir` distinguishes "no effects"
  // (empty list, explicitly declared pure) from "never declared" — the
  // analyzer treats the latter as ⊤ (may do anything).
  bool has_ir = false;
  std::vector<EffectOp> ir{};
  // Fixed CPU work charged when the method body starts (in addition to any
  // explicit VmContext::work the body performs).
  SimDuration base_cost = 0;
  MethodBody body;
};

struct FieldDef {
  std::string name;
  // Declared managed class of the values this field holds; empty for
  // primitive/untyped slots. Drives the analyzer's static reference graph.
  std::string type;
};

struct ClassDef {
  ClassId id;
  std::string name;
  std::vector<FieldDef> fields;
  std::vector<MethodDef> methods;
  std::vector<std::string> statics;  // static slot names (data lives on client)

  // Explicitly declared pin reason (ui, user_pinned). `stateful_native` need
  // not be declared: it is derived from the method table.
  PinReason pin_reason = PinReason::none;
  // Author asserts this class is safe and intended to be offloaded. A
  // migratable class inside the pinned closure is a lint ERROR.
  bool declared_migratable = false;
  // Instantiated directly by the embedding driver (the "main" of a scenario);
  // exempt from dead-class and pinned-leaf lints.
  bool entry = false;
  // Source file anchor for diagnostics (optional).
  std::string source;
  // Statically declared cross-class call sites (class-level).
  std::vector<CallSiteDecl> calls;
  // Additional class references (field accesses, allocations) that are not
  // captured by a typed field or a declared call.
  std::vector<std::string> refs;

  // First index of this class's statics in the VM's flat statics table;
  // assigned at registration.
  std::uint32_t static_base = 0;

  // True if any method is native and stateful — such classes are pinned to
  // the client device (paper 3.3: the client partition is seeded with
  // "classes that cannot be offloaded, such as classes that contain native
  // methods").
  [[nodiscard]] bool has_stateful_native() const noexcept {
    for (const auto& m : methods) {
      if (m.kind == MethodKind::native && !m.stateless) return true;
    }
    return false;
  }

  // The reason this class is pinned: the explicit declaration when present,
  // otherwise derived from the method table.
  [[nodiscard]] PinReason effective_pin_reason() const noexcept {
    if (pin_reason != PinReason::none) return pin_reason;
    return has_stateful_native() ? PinReason::stateful_native
                                 : PinReason::none;
  }

  [[nodiscard]] bool is_pinned() const noexcept {
    return effective_pin_reason() != PinReason::none;
  }

  [[nodiscard]] MethodId find_method(std::string_view name) const {
    if (!method_index_.empty()) {
      const auto it = method_index_.find(name);
      return it == method_index_.end() ? MethodId::invalid()
                                       : MethodId{it->second};
    }
    // Unregistered defs (builder output inspected directly) have no index.
    for (std::size_t i = 0; i < methods.size(); ++i) {
      if (methods[i].name == name) {
        return MethodId{static_cast<std::uint32_t>(i)};
      }
    }
    return MethodId::invalid();
  }

  [[nodiscard]] FieldId find_field(std::string_view name) const {
    if (!field_index_.empty()) {
      const auto it = field_index_.find(name);
      return it == field_index_.end() ? FieldId::invalid()
                                      : FieldId{it->second};
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == name) {
        return FieldId{static_cast<std::uint32_t>(i)};
      }
    }
    return FieldId::invalid();
  }

  // Returns kInvalidStaticSlot when absent, matching find_method/find_field.
  [[nodiscard]] std::uint32_t find_static(std::string_view name) const {
    if (!static_index_.empty()) {
      const auto it = static_index_.find(name);
      return it == static_index_.end() ? kInvalidStaticSlot : it->second;
    }
    for (std::size_t i = 0; i < statics.size(); ++i) {
      if (statics[i] == name) return static_cast<std::uint32_t>(i);
    }
    return kInvalidStaticSlot;
  }

  // find_static that throws on a missing slot — for callers resolving a
  // user-supplied name where "unknown static" is an error, not a probe.
  [[nodiscard]] std::uint32_t require_static(std::string_view name) const {
    const std::uint32_t slot = find_static(name);
    if (slot == kInvalidStaticSlot) {
      throw VmError(VmErrorCode::unknown_field,
                    "static slot " + std::string(name) + " in " + this->name);
    }
    return slot;
  }

  // Builds the interned symbol tables; called once at registration.
  void build_index() {
    method_index_.clear();
    field_index_.clear();
    static_index_.clear();
    for (std::size_t i = 0; i < methods.size(); ++i) {
      // First definition wins, matching the old linear scan.
      method_index_.try_emplace(methods[i].name,
                                static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      field_index_.try_emplace(fields[i].name, static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < statics.size(); ++i) {
      static_index_.try_emplace(statics[i], static_cast<std::uint32_t>(i));
    }
  }

 private:
  SymbolIndex method_index_;
  SymbolIndex field_index_;
  SymbolIndex static_index_;
};

// A cached call site: resolves a method name against a receiver's class once
// and reuses the MethodId until the receiver class or the registry epoch
// changes (monomorphic inline cache). Intended to live as a file-scope
// constant next to the calling code, so the resolution state is mutable.
// The name must outlive the call site — string literals in practice.
class CallSite {
 public:
  explicit constexpr CallSite(std::string_view method) noexcept
      : method_(method) {}

  [[nodiscard]] std::string_view method() const noexcept { return method_; }

 private:
  friend class Vm;
  std::string_view method_;
  mutable std::uint64_t epoch_ = 0;  // 0 never matches a live registry
  mutable ClassId cls_ = ClassId::invalid();
  mutable MethodId mid_ = MethodId::invalid();
  // Resolved to a managed instance method with a body — eligible for the
  // lean local dispatch route (no placement rules, no static/kind
  // re-checks). `mdef_` caches the resolved method; it is only dereferenced
  // after the epoch check passes, which guarantees the registry (and thus
  // the ClassDef storage the pointer aims into) has not changed since
  // resolution.
  mutable bool fast_ok_ = false;
  mutable const MethodDef* mdef_ = nullptr;
};

// Cached static call site: class name + method name resolved once per
// registry epoch.
class StaticCallSite {
 public:
  constexpr StaticCallSite(std::string_view cls, std::string_view method) noexcept
      : cls_name_(cls), method_(method) {}

  [[nodiscard]] std::string_view class_name() const noexcept {
    return cls_name_;
  }
  [[nodiscard]] std::string_view method() const noexcept { return method_; }

 private:
  friend class Vm;
  std::string_view cls_name_;
  std::string_view method_;
  mutable std::uint64_t epoch_ = 0;
  mutable ClassId cls_ = ClassId::invalid();
  mutable MethodId mid_ = MethodId::invalid();
};

// Fluent builder used by the managed standard library and the applications.
class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name) { def_.name = std::move(name); }

  ClassBuilder& field(std::string name) {
    def_.fields.push_back(FieldDef{.name = std::move(name), .type = {}});
    return *this;
  }

  // Field whose values are declared to be instances of `type`.
  ClassBuilder& field(std::string name, std::string type) {
    def_.fields.push_back(
        FieldDef{.name = std::move(name), .type = std::move(type)});
    return *this;
  }

  ClassBuilder& static_slot(std::string name) {
    def_.statics.push_back(std::move(name));
    return *this;
  }

  ClassBuilder& method(std::string name, MethodBody body,
                       SimDuration base_cost = sim_ns(200)) {
    def_.methods.push_back(MethodDef{.name = std::move(name),
                                     .kind = MethodKind::managed,
                                     .base_cost = base_cost,
                                     .body = std::move(body)});
    return *this;
  }

  ClassBuilder& static_method(std::string name, MethodBody body,
                              SimDuration base_cost = sim_ns(200)) {
    def_.methods.push_back(MethodDef{.name = std::move(name),
                                     .kind = MethodKind::managed,
                                     .is_static = true,
                                     .base_cost = base_cost,
                                     .body = std::move(body)});
    return *this;
  }

  ClassBuilder& native_method(std::string name, MethodBody body,
                              bool stateless = false, bool is_static = false,
                              SimDuration base_cost = sim_ns(400)) {
    def_.methods.push_back(MethodDef{.name = std::move(name),
                                     .kind = MethodKind::native,
                                     .is_static = is_static,
                                     .stateless = stateless,
                                     // Stateless natives are pure by
                                     // construction; stateful ones must
                                     // declare their effect explicitly.
                                     .effect = stateless
                                                   ? NativeEffect::pure
                                                   : NativeEffect::undeclared,
                                     .base_cost = base_cost,
                                     .body = std::move(body)});
    return *this;
  }

  // ---- static metadata (consumed by src/analysis, never by execution) ----

  ClassBuilder& pin(PinReason reason) {
    def_.pin_reason = reason;
    return *this;
  }

  ClassBuilder& migratable() {
    def_.declared_migratable = true;
    return *this;
  }

  ClassBuilder& entry() {
    def_.entry = true;
    return *this;
  }

  ClassBuilder& source(std::string file) {
    def_.source = std::move(file);
    return *this;
  }

  // Declares that code in this class calls `target_class.method` with `argc`
  // arguments (-1 = unknown).
  ClassBuilder& calls(std::string target_class, std::string method,
                      int argc = -1) {
    def_.calls.push_back(CallSiteDecl{std::move(target_class),
                                      std::move(method), argc});
    return *this;
  }

  // Declares a class reference not captured by a typed field or a call.
  ClassBuilder& references(std::string target_class) {
    def_.refs.push_back(std::move(target_class));
    return *this;
  }

  // Declares the parameter count of the most recently added method.
  ClassBuilder& arity(int argc) {
    if (!def_.methods.empty()) def_.methods.back().declared_arity = argc;
    return *this;
  }

  // Declares the side effect of the most recently added method.
  ClassBuilder& effect(NativeEffect e) {
    if (!def_.methods.empty()) def_.methods.back().effect = e;
    return *this;
  }

  // ---- method effect IR (consumed by src/analysis effect inference) -------
  //
  // Each call appends one EffectOp to the most recently added method and
  // marks it IR-covered. A method whose body has no effects at all declares
  // that explicitly with no_effects().

  ClassBuilder& reads(std::string cls, std::string member) {
    return ir_op(make_op(EffectOpKind::read_field, std::move(cls),
                         std::move(member)));
  }

  // `value_type` (optional) declares the class of reference values this
  // write stores into the field; the analyzer audits it against the field's
  // declared type.
  ClassBuilder& writes(std::string cls, std::string member,
                       std::string value_type = {}) {
    EffectOp op = make_op(EffectOpKind::write_field, std::move(cls),
                          std::move(member));
    op.value_type = std::move(value_type);
    return ir_op(std::move(op));
  }

  ClassBuilder& reads_static(std::string cls, std::string slot) {
    return ir_op(make_op(EffectOpKind::read_static, std::move(cls),
                         std::move(slot)));
  }

  ClassBuilder& writes_static(std::string cls, std::string slot) {
    return ir_op(make_op(EffectOpKind::write_static, std::move(cls),
                         std::move(slot)));
  }

  ClassBuilder& reads_elems(std::string array_cls) {
    return ir_op(make_op(EffectOpKind::read_elems, std::move(array_cls), "*"));
  }

  ClassBuilder& writes_elems(std::string array_cls) {
    return ir_op(make_op(EffectOpKind::write_elems, std::move(array_cls), "*"));
  }

  ClassBuilder& allocates(std::string cls) {
    return ir_op(make_op(EffectOpKind::alloc, std::move(cls), {}));
  }

  ClassBuilder& invokes(std::string cls, std::string method, int argc = -1) {
    EffectOp op = make_op(EffectOpKind::call, std::move(cls),
                          std::move(method));
    op.argc = argc;
    return ir_op(std::move(op));
  }

  ClassBuilder& yields() {
    return ir_op(make_op(EffectOpKind::yield, {}, {}));
  }

  // Declares the most recent method effect-free (empty IR, explicitly pure).
  ClassBuilder& no_effects() {
    if (!def_.methods.empty()) def_.methods.back().has_ir = true;
    return *this;
  }

  // Consumes the builder; the chained fluent calls return lvalue references,
  // so this is deliberately not rvalue-qualified.
  [[nodiscard]] ClassDef build() { return std::move(def_); }

 private:
  static EffectOp make_op(EffectOpKind kind, std::string cls,
                          std::string member) {
    EffectOp op;
    op.kind = kind;
    op.cls = std::move(cls);
    op.member = std::move(member);
    return op;
  }

  ClassBuilder& ir_op(EffectOp op) {
    if (!def_.methods.empty()) {
      def_.methods.back().has_ir = true;
      def_.methods.back().ir.push_back(std::move(op));
    }
    return *this;
  }

  ClassDef def_;
};

// Immutable after setup; shared by client and surrogate VMs.
class ClassRegistry {
 public:
  ClassRegistry() {
    // Well-known array classes are always present. Reference arrays are
    // plain objects whose field count is fixed at allocation time.
    int_array_ = register_class(ClassBuilder("int[]").build());
    char_array_ = register_class(ClassBuilder("char[]").build());
    object_array_ = register_class(ClassBuilder("Object[]").build());
  }

  ClassId register_class(ClassDef def) {
    const ClassId id{static_cast<std::uint32_t>(classes_.size())};
    def.id = id;
    def.static_base = static_slot_count_;
    static_slot_count_ += static_cast<std::uint32_t>(def.statics.size());
    def.build_index();
    by_name_[def.name] = id;
    classes_.push_back(std::move(def));
    epoch_ = next_registry_epoch();
    return id;
  }

  [[nodiscard]] const ClassDef& get(ClassId id) const {
    if (id.value() >= classes_.size()) {
      throw VmError(VmErrorCode::unknown_class,
                    "class id " + std::to_string(id.value()));
    }
    return classes_[id.value()];
  }

  [[nodiscard]] ClassId find(std::string_view name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      throw VmError(VmErrorCode::unknown_class, std::string(name));
    }
    return it->second;
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return by_name_.find(name) != by_name_.end();
  }

  [[nodiscard]] std::size_t size() const noexcept { return classes_.size(); }

  // Read-only whole-program traversal for static analyses: every registered
  // class, in registration (ClassId) order. The span is invalidated by the
  // next register_class.
  [[nodiscard]] std::span<const ClassDef> classes() const noexcept {
    return classes_;
  }

  // Bumped on every registration; never shared between registry instances.
  // Call-site caches compare against this to detect staleness.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // Total static slots across all registered classes — the size of the VM's
  // flat statics table (each class's slots start at its static_base).
  [[nodiscard]] std::uint32_t static_slot_count() const noexcept {
    return static_slot_count_;
  }

  [[nodiscard]] ClassId int_array_class() const noexcept { return int_array_; }
  [[nodiscard]] ClassId char_array_class() const noexcept {
    return char_array_;
  }
  [[nodiscard]] ClassId object_array_class() const noexcept {
    return object_array_;
  }

 private:
  std::vector<ClassDef> classes_;
  std::unordered_map<std::string, ClassId, TransparentStringHash,
                     std::equal_to<>>
      by_name_;
  ClassId int_array_;
  ClassId char_array_;
  ClassId object_array_;
  std::uint64_t epoch_ = next_registry_epoch();
  std::uint32_t static_slot_count_ = 0;
};

}  // namespace aide::vm
