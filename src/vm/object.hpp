// Heap objects.
//
// Three object shapes exist: plain objects (a vector of Value fields),
// primitive int arrays, and primitive char arrays. Arrays are first-class
// objects of the well-known classes "int[]" and "char[]" — the paper's
// component-granularity discussion (sections 5.1/5.2) revolves around exactly
// these primitive array classes.
//
// An object's heap footprint is cached: the only mutation that can change it
// after allocation is a string field growing or shrinking, and that path
// (Vm::raw_put_field) adjusts the cache incrementally by the slot delta.
// Code that rewrites a payload wholesale (the rpc deserializer) invalidates
// the cache instead; the next size_bytes() call recomputes it with the full
// scan that used to run on *every* query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "vm/value.hpp"

namespace aide::vm {

enum class ObjectKind : std::uint8_t { plain, int_array, char_array };

struct Object {
  ObjectId id;
  ClassId cls;
  ObjectKind kind = ObjectKind::plain;

  std::vector<Value> fields;      // plain objects
  std::vector<std::int64_t> ints; // int_array payload
  std::string chars;              // char_array payload

  bool gc_mark = false;

  // Heap footprint charged against the VM's capacity. Mirrors a JVM's
  // header + slots accounting. Cached; O(1) once computed.
  [[nodiscard]] std::int64_t size_bytes() const noexcept {
    if (size_cache_ < 0) size_cache_ = compute_size_bytes();
    return size_cache_;
  }

  // The payload was rewritten wholesale (deserialization, slot recycling);
  // the next size_bytes() recomputes from scratch.
  void invalidate_size_cache() noexcept { size_cache_ = -1; }

  // A single slot's string payload changed by `delta` bytes; keeps the cache
  // exact without a rescan. No-op while the cache is unset.
  void adjust_size(std::int64_t delta) noexcept {
    if (size_cache_ >= 0) size_cache_ += delta;
  }

  // Sets the cache directly when the caller just shaped the payload and
  // already knows the footprint (the slab heap's allocation path).
  void set_size_cache(std::int64_t bytes) noexcept { size_cache_ = bytes; }

  [[nodiscard]] std::int64_t array_length() const noexcept {
    switch (kind) {
      case ObjectKind::int_array:
        return static_cast<std::int64_t>(ints.size());
      case ObjectKind::char_array:
        return static_cast<std::int64_t>(chars.size());
      case ObjectKind::plain:
        return 0;
    }
    return 0;
  }

 private:
  [[nodiscard]] std::int64_t compute_size_bytes() const noexcept {
    constexpr std::int64_t header = 16;
    switch (kind) {
      case ObjectKind::plain: {
        std::int64_t sz = header + static_cast<std::int64_t>(fields.size()) * 8;
        for (const auto& f : fields) {
          if (f.is_str()) sz += static_cast<std::int64_t>(f.as_str().size());
        }
        return sz;
      }
      case ObjectKind::int_array:
        return header + static_cast<std::int64_t>(ints.size()) * 8;
      case ObjectKind::char_array:
        return header + static_cast<std::int64_t>(chars.size());
    }
    return header;
  }

  mutable std::int64_t size_cache_ = -1;
};

}  // namespace aide::vm
