// Heap objects.
//
// Three object shapes exist: plain objects (a vector of Value fields),
// primitive int arrays, and primitive char arrays. Arrays are first-class
// objects of the well-known classes "int[]" and "char[]" — the paper's
// component-granularity discussion (sections 5.1/5.2) revolves around exactly
// these primitive array classes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "vm/value.hpp"

namespace aide::vm {

enum class ObjectKind : std::uint8_t { plain, int_array, char_array };

struct Object {
  ObjectId id;
  ClassId cls;
  ObjectKind kind = ObjectKind::plain;

  std::vector<Value> fields;      // plain objects
  std::vector<std::int64_t> ints; // int_array payload
  std::string chars;              // char_array payload

  bool gc_mark = false;

  // Heap footprint charged against the VM's capacity. Mirrors a JVM's
  // header + slots accounting.
  [[nodiscard]] std::int64_t size_bytes() const noexcept {
    constexpr std::int64_t header = 16;
    switch (kind) {
      case ObjectKind::plain: {
        std::int64_t sz = header + static_cast<std::int64_t>(fields.size()) * 8;
        for (const auto& f : fields) {
          if (f.is_str()) sz += static_cast<std::int64_t>(f.as_str().size());
        }
        return sz;
      }
      case ObjectKind::int_array:
        return header + static_cast<std::int64_t>(ints.size()) * 8;
      case ObjectKind::char_array:
        return header + static_cast<std::int64_t>(chars.size());
    }
    return header;
  }

  [[nodiscard]] std::int64_t array_length() const noexcept {
    switch (kind) {
      case ObjectKind::int_array:
        return static_cast<std::int64_t>(ints.size());
      case ObjectKind::char_array:
        return static_cast<std::int64_t>(chars.size());
      case ObjectKind::plain:
        return 0;
    }
    return 0;
  }
};

}  // namespace aide::vm
