// Error taxonomy for the AIDE platform.
//
// The managed runtime reports recoverable application-level failures (out of
// memory, missing class, bad field index) through VmError exceptions; the
// platform layer reports offloading failures through OffloadError. Both carry
// a code so tests can assert on the precise failure class.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace aide {

enum class VmErrorCode {
  out_of_memory,
  unknown_class,
  unknown_method,
  unknown_field,
  bad_array_index,
  null_reference,
  type_mismatch,
  native_not_registered,
  stack_overflow,
};

[[nodiscard]] constexpr std::string_view to_string(VmErrorCode code) noexcept {
  switch (code) {
    case VmErrorCode::out_of_memory: return "out_of_memory";
    case VmErrorCode::unknown_class: return "unknown_class";
    case VmErrorCode::unknown_method: return "unknown_method";
    case VmErrorCode::unknown_field: return "unknown_field";
    case VmErrorCode::bad_array_index: return "bad_array_index";
    case VmErrorCode::null_reference: return "null_reference";
    case VmErrorCode::type_mismatch: return "type_mismatch";
    case VmErrorCode::native_not_registered: return "native_not_registered";
    case VmErrorCode::stack_overflow: return "stack_overflow";
  }
  return "unknown";
}

class VmError : public std::runtime_error {
 public:
  VmError(VmErrorCode code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

  [[nodiscard]] VmErrorCode code() const noexcept { return code_; }

 private:
  VmErrorCode code_;
};

enum class OffloadErrorCode {
  no_surrogate,
  not_beneficial,
  migration_failed,
  protocol_error,
  peer_unavailable,
};

class OffloadError : public std::runtime_error {
 public:
  OffloadError(OffloadErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] OffloadErrorCode code() const noexcept { return code_; }

 private:
  OffloadErrorCode code_;
};

// An RPC could not be completed because the peer (or the link to it) failed
// and the bounded retry policy was exhausted. Carries the failed call's
// sequence number so the recovery path can retrieve an
// executed-but-undelivered response from the peer's reply cache.
class PeerUnavailable : public OffloadError {
 public:
  PeerUnavailable(std::uint64_t seq, const std::string& what)
      : OffloadError(OffloadErrorCode::peer_unavailable, what), seq_(seq) {}

  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }

 private:
  std::uint64_t seq_;
};

}  // namespace aide
