// Deterministic pseudo-random number generation (splitmix64 / xoshiro256**).
//
// Workload generators and property tests must be reproducible across runs and
// platforms, so the platform never uses std::random_device or
// implementation-defined distributions.
#pragma once

#include <cstdint>

namespace aide {

// splitmix64: used to seed the main generator and for cheap one-shot hashes.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next_u64() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace aide
