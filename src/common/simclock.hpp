// Deterministic virtual clock.
//
// All experiment time in the reproduction is virtual: method execution
// charges work against the clock, and the network simulator stretches it for
// remote interactions, exactly as the paper's emulator "stretches simulated
// execution time" (section 4). Using a virtual clock makes every benchmark
// bit-reproducible.
#pragma once

#include <cstdint>

namespace aide {

// Virtual durations/timestamps in nanoseconds.
using SimDuration = std::int64_t;
using SimTime = std::int64_t;

constexpr SimDuration sim_ns(std::int64_t n) noexcept { return n; }
constexpr SimDuration sim_us(std::int64_t n) noexcept { return n * 1'000; }
constexpr SimDuration sim_ms(std::int64_t n) noexcept { return n * 1'000'000; }
constexpr SimDuration sim_sec(std::int64_t n) noexcept {
  return n * 1'000'000'000;
}

constexpr double sim_to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e9;
}
constexpr double sim_to_ms(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e6;
}

// A monotonically advancing virtual clock shared by the VMs, the network
// simulator and the monitoring modules of one experiment.
class SimClock {
 public:
  SimClock() noexcept = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  void advance(SimDuration delta) noexcept {
    if (delta > 0) now_ += delta;
  }

  void reset() noexcept { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace aide
