// Minimal leveled logger.
//
// Experiments and examples narrate platform decisions (trigger fired,
// partitioning selected, objects migrated) at info level; tests run silent by
// default. A single global level keeps the hot paths branch-cheap.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace aide {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class Log {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = LogLevel::warn;
    return lvl;
  }

  static bool enabled(LogLevel lvl) noexcept { return lvl >= level(); }

  template <typename... Args>
  static void emit(LogLevel lvl, std::string_view tag, const Args&... args) {
    if (!enabled(lvl)) return;
    std::ostringstream os;
    os << '[' << tag << "] ";
    (os << ... << args);
    std::cerr << os.str() << '\n';
  }
};

#define AIDE_LOG_INFO(tag, ...) \
  ::aide::Log::emit(::aide::LogLevel::info, tag, __VA_ARGS__)
#define AIDE_LOG_DEBUG(tag, ...) \
  ::aide::Log::emit(::aide::LogLevel::debug, tag, __VA_ARGS__)
#define AIDE_LOG_WARN(tag, ...) \
  ::aide::Log::emit(::aide::LogLevel::warn, tag, __VA_ARGS__)

}  // namespace aide
