// Byte-buffer reader/writer used by the wire serializer and the trace codec.
//
// Little-endian, bounds-checked, append-only writer and a sequential reader.
// Sizes produced here are the sizes charged to the simulated network link, so
// the encoding is deliberately simple and stable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aide {

class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  void write_raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const auto n = read_u32();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  // A view of the next `n` raw bytes; valid as long as the underlying buffer.
  std::span<const std::uint8_t> read_bytes(std::size_t n) {
    check(n);
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  template <typename T>
  T read_pod() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: truncated buffer");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace aide
