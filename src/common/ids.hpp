// Strongly-typed identifiers used across the AIDE platform.
//
// Every entity the platform reasons about (classes, objects, methods, fields,
// nodes in the distributed platform) gets its own id type so that a ClassId
// can never be passed where an ObjectId is expected. Ids are trivially
// copyable 32/64-bit wrappers with full value semantics and hashing support.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace aide {

// CRTP-free strong id wrapper. Tag makes each instantiation a distinct type.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != invalid_value;
  }

  static constexpr Rep invalid_value = static_cast<Rep>(-1);
  static constexpr StrongId invalid() noexcept {
    return StrongId{invalid_value};
  }

  friend constexpr bool operator==(StrongId, StrongId) noexcept = default;
  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = invalid_value;
};

struct ClassTag {};
struct ObjectTag {};
struct MethodTag {};
struct FieldTag {};
struct NodeTag {};
struct HandleTag {};
struct SessionTag {};

// A class loaded into a VM. Class ids are assigned by the class registry and
// are identical on every VM that shares the application's "bytecodes"
// (paper section 4: both VMs have access to the application's classes).
using ClassId = StrongId<ClassTag>;

// A live object within one VM's private reference namespace (paper 3.2).
using ObjectId = StrongId<ObjectTag, std::uint64_t>;

// A method within a class (index into the class's method table).
using MethodId = StrongId<MethodTag>;

// A field within a class (index into the instance field table).
using FieldId = StrongId<FieldTag>;

// A device participating in the distributed platform (client, surrogate(s)).
using NodeId = StrongId<NodeTag>;

// An export handle: the wire name a VM gives one of its objects so that the
// peer VM can refer to it without understanding the private ObjectId space.
using ExportHandle = StrongId<HandleTag, std::uint64_t>;

// One client session on a multi-session surrogate server. Session ids are
// assigned by the server at admission and are never reused.
using SessionId = StrongId<SessionTag>;

}  // namespace aide

namespace std {
template <typename Tag, typename Rep>
struct hash<aide::StrongId<Tag, Rep>> {
  size_t operator()(aide::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
