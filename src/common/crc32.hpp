// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the rpc frame header to detect corrupted-in-transit messages: any
// single-byte flip the chaos injector produces is guaranteed to change the
// checksum, so a corrupt frame is always rejected rather than decoded.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace aide {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(
    std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    crc = detail::kCrc32Table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace aide
