#include "partition/partitioner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <numeric>

namespace aide::partition {

namespace {

// Deterministic union-find over dense sorted positions; the root of a set is
// always its smallest position, i.e. (positions being sorted by key) its
// smallest component key — the same representative the old key-based
// union-find chose.
class PositionUnionFind {
 public:
  explicit PositionUnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t p) {
    std::size_t root = p;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    while (parent_[p] != root) {
      const std::size_t next = parent_[p];
      parent_[p] = root;
      p = next;
    }
    return root;
  }

  void unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return;
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ContractedGraph contract_with_hints(const graph::ExecGraph& graph,
                                    const analysis::StaticHints& hints) {
  using NodeIndex = graph::ExecGraph::NodeIndex;
  ContractedGraph out;

  // Sorted-position view of the interned node set.
  const std::size_t n = graph.node_count();
  std::vector<NodeIndex> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeIndex{0});
  std::sort(nodes.begin(), nodes.end(), [&](NodeIndex a, NodeIndex b) {
    return graph.key_of(a) < graph.key_of(b);
  });
  std::vector<std::size_t> pos_of(n);
  std::size_t max_cls = 0;
  for (std::size_t p = 0; p < n; ++p) {
    pos_of[nodes[p]] = p;
    max_cls = std::max<std::size_t>(max_cls, graph.key_of(nodes[p]).cls.value());
  }

  const std::vector<bool> never_migrate =
      hints.never_migrate_mask(n == 0 ? 0 : max_cls + 1);

  PositionUnionFind uf(n);

  // 1. Collapse the client side: every component that is statically
  //    never-migrate or dynamically pinned joins one anchor. MINCUT seeds the
  //    client partition with all pinned components anyway, so this preserves
  //    semantics while removing nodes and intra-client edges. The anchor is
  //    the smallest such key (position order), so it roots the merged set.
  std::size_t anchor = n;
  for (std::size_t p = 0; p < n; ++p) {
    const graph::ComponentKey& key = graph.key_of(nodes[p]);
    const bool pinned = graph.node_at(nodes[p]).pinned;
    if (!pinned && !never_migrate[key.cls.value()]) continue;
    if (anchor == n) {
      anchor = p;
    } else {
      uf.unite(anchor, p);
    }
  }

  // 2. Zero-benefit merges between unpinned class-granularity components.
  for (const auto& [leaf, partner] : hints.merge_candidates) {
    const NodeIndex ia = graph.index_of(graph::ComponentKey{leaf});
    const NodeIndex ib = graph.index_of(graph::ComponentKey{partner});
    if (ia == graph::ExecGraph::npos || ib == graph::ExecGraph::npos) continue;
    if (graph.node_at(ia).pinned || graph.node_at(ib).pinned) continue;
    uf.unite(pos_of[ia], pos_of[ib]);
  }

  for (std::size_t p = 0; p < n; ++p) {
    const graph::ComponentKey& key = graph.key_of(nodes[p]);
    const graph::ComponentKey& rep = graph.key_of(nodes[uf.find(p)]);
    out.members[rep].push_back(key);
    const graph::NodeInfo& info = graph.node_at(nodes[p]);
    auto& merged = out.graph.node(rep);
    merged.mem_bytes += info.mem_bytes;
    merged.peak_mem_bytes += info.peak_mem_bytes;
    merged.exec_self_time += info.exec_self_time;
    merged.live_objects += info.live_objects;
    merged.pinned = merged.pinned || info.pinned;
  }

  // Accumulate surviving edges keyed by (root-position) pair, then emit in
  // position order — deterministic and hash-free.
  std::map<std::pair<std::size_t, std::size_t>, graph::EdgeInfo> merged_edges;
  for (graph::ExecGraph::EdgeSlot s = 0; s < graph.edge_count(); ++s) {
    const auto [a, b] = graph.edge_ends(s);
    std::size_t ra = uf.find(pos_of[a]);
    std::size_t rb = uf.find(pos_of[b]);
    if (ra == rb) continue;  // interaction inside a merged group
    if (rb < ra) std::swap(ra, rb);
    const graph::EdgeInfo& info = graph.edge_at(s);
    auto& e = merged_edges[{ra, rb}];
    e.invocations += info.invocations;
    e.accesses += info.accesses;
    e.bytes += info.bytes;
  }
  for (const auto& [pair, info] : merged_edges) {
    out.graph.set_edge(graph.key_of(nodes[pair.first]),
                       graph.key_of(nodes[pair.second]), info);
  }
  return out;
}

SimDuration predicted_comm_time(const graph::Candidate& cand,
                                const netsim::LinkParams& link) {
  // Each cut-crossing interaction is a synchronous message exchange: a full
  // null-message RTT plus the historical payload over the link bandwidth.
  const double rtt_s = sim_to_seconds(link.null_rtt);
  const double serialization_s =
      static_cast<double>(cand.cut_bytes) * 8.0 / link.bandwidth_bps;
  const double total_s =
      static_cast<double>(cand.cut_interactions()) * rtt_s + serialization_s;
  return static_cast<SimDuration>(total_s * 1e9);
}

SimDuration predicted_offload_time(const graph::Candidate& cand,
                                   SimDuration total_self_time,
                                   const PartitionRequest& req) {
  const SimDuration client_self = total_self_time - cand.offload_self_time;
  const double client_s =
      sim_to_seconds(client_self) / req.client_speed;
  const double surrogate_s = sim_to_seconds(cand.offload_self_time) /
                             (req.client_speed * req.surrogate_speedup);
  SimDuration t = static_cast<SimDuration>((client_s + surrogate_s) * 1e9) +
                  predicted_comm_time(cand, req.link);
  if (req.charge_migration) {
    const double mig_s = static_cast<double>(cand.offload_mem_bytes) * 8.0 /
                             req.link.bandwidth_bps +
                         sim_to_seconds(req.link.null_rtt);
    t += static_cast<SimDuration>(mig_s * 1e9);
  }
  return t;
}

PartitionDecision decide_partitioning(const graph::ExecGraph& graph,
                                      const PartitionRequest& req) {
  const auto wall_start = std::chrono::steady_clock::now();

  PartitionDecision decision;

  // Pre-contract under static hints when provided: MINCUT then runs on the
  // smaller graph, and cuts that separate statically-inseparable components
  // are unrepresentable by construction.
  ContractedGraph contracted;
  const graph::ExecGraph* cut_graph = &graph;
  if (req.hints != nullptr && !req.hints->empty()) {
    contracted = contract_with_hints(graph, *req.hints);
    cut_graph = &contracted.graph;
    decision.hints_applied = true;
  }
  decision.mincut_nodes = cut_graph->node_count();
  decision.mincut_edges = cut_graph->edge_count();

  const SimDuration total_self = cut_graph->total_self_time();
  decision.predicted_original_time = static_cast<SimDuration>(
      sim_to_seconds(total_self) / req.client_speed * 1e9);

  // Post-reconcile gravity: map each cut-graph node to the bytes of
  // disconnected-era rebuilt state it stands for (folded members included
  // when hints contracted the graph). Candidates containing gravity bytes
  // get a per-byte credit against their cut cost so the rebuilt working
  // tree wins over a cheaper-to-cut sliver. Empty map = zero bias and the
  // exact pre-existing selection arithmetic.
  // std::map keys the sums in component order so the floating-point
  // accumulation below is independent of hash/bucket layout.
  std::map<graph::ComponentKey, double> gravity_bytes;
  if (req.reoffload_gravity != nullptr && !req.reoffload_gravity->empty() &&
      req.gravity_credit_per_byte > 0.0) {
    for (graph::ExecGraph::NodeIndex i = 0; i < graph.node_count(); ++i) {
      const graph::ComponentKey& key = graph.key_of(i);
      if (req.reoffload_gravity->count(key) == 0) continue;
      gravity_bytes[key] +=
          static_cast<double>(graph.node_at(i).mem_bytes);
    }
    if (decision.hints_applied && !gravity_bytes.empty()) {
      std::map<graph::ComponentKey, double> folded;
      for (const auto& [rep, members] : contracted.members) {
        double sum = 0.0;
        for (const auto& member : members) {
          const auto it = gravity_bytes.find(member);
          if (it != gravity_bytes.end()) sum += it->second;
        }
        if (sum > 0.0) folded.emplace(rep, sum);
      }
      gravity_bytes = std::move(folded);
    }
  }
  const auto gravity_in = [&](const graph::Candidate& cand) {
    double sum = 0.0;
    for (const auto& [key, bytes] : gravity_bytes) {
      if (cand.offload.count(key) != 0) sum += bytes;
    }
    return sum;
  };

  // The candidate series streams through the incremental visitor: one running
  // candidate, O(deg) updates per step, and a copy taken only when a
  // candidate is actually selected.
  if (req.objective == Objective::free_memory) {
    double best_cost = std::numeric_limits<double>::infinity();
    graph::modified_mincut_visit(
        *cut_graph, req.weight, [&](const graph::Candidate& cand) {
          ++decision.candidates_total;
          if (cand.offload_mem_bytes < req.min_free_bytes) return;
          ++decision.candidates_feasible;
          double cost = cand.cut_weight;
          if (!gravity_bytes.empty()) {
            cost -= req.gravity_credit_per_byte * gravity_in(cand);
          }
          if (cost < best_cost) {
            best_cost = cost;
            decision.selected = cand;
            decision.offload = true;
          }
        });
    if (decision.offload && req.history_duration > 0) {
      decision.predicted_bandwidth_bps =
          static_cast<double>(decision.selected.cut_bytes) * 8.0 /
          sim_to_seconds(req.history_duration);
    }
  } else {
    SimDuration best_time = decision.predicted_original_time;
    const SimDuration required_bound = static_cast<SimDuration>(
        static_cast<double>(decision.predicted_original_time) *
        (1.0 - req.min_improvement));
    SimDuration best_any = std::numeric_limits<SimDuration>::max();
    graph::modified_mincut_visit(
        *cut_graph, req.weight, [&](const graph::Candidate& cand) {
          ++decision.candidates_total;
          if (cand.offload_self_time <= 0) return;
          const SimDuration t = predicted_offload_time(cand, total_self, req);
          best_any = std::min(best_any, t);
          if (t <= required_bound && t < best_time) {
            ++decision.candidates_feasible;
            best_time = t;
            decision.selected = cand;
            decision.offload = true;
          }
        });
    // When declining, still report the best candidate's prediction — the
    // paper reports Biomer's "best partitioning was predicted to take 790
    // seconds while the unpartitioned application took 750".
    if (decision.offload) {
      decision.predicted_offloaded_time = best_time;
    } else {
      decision.predicted_offloaded_time =
          best_any == std::numeric_limits<SimDuration>::max()
              ? decision.predicted_original_time
              : best_any;
    }
  }

  // Split the selected set across k surrogates while it is still in
  // cut-graph keys: hint-contracted groups are single nodes here, so
  // statically-inseparable components land in the same part by
  // construction. k == 1 never reaches this and stays byte-identical.
  if (decision.offload && req.k > 1 && decision.selected.offload.size() > 1) {
    const std::vector<graph::ComponentKey> members(
        decision.selected.offload.begin(), decision.selected.offload.end());
    graph::KWayCut kc =
        graph::k_way_split(*cut_graph, members, req.k, req.weight);
    decision.part_cross_weight = kc.cross_weight;
    decision.parts = std::move(kc.parts);
  }

  // A contracted representative stands for every component folded into it;
  // expand the selection (and each part) back to monitor-visible keys so
  // the platform can gather the right objects.
  if (decision.offload && decision.hints_applied) {
    const auto expand =
        [&](const std::unordered_set<graph::ComponentKey>& set) {
          std::unordered_set<graph::ComponentKey> expanded;
          for (const auto& comp : set) {
            const auto it = contracted.members.find(comp);
            if (it == contracted.members.end()) {
              expanded.insert(comp);
              continue;
            }
            expanded.insert(it->second.begin(), it->second.end());
          }
          return expanded;
        };
    decision.selected.offload = expand(decision.selected.offload);
    for (auto& part : decision.parts) part = expand(part);
  }

  decision.compute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return decision;
}

}  // namespace aide::partition
