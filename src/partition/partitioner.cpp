#include "partition/partitioner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace aide::partition {

namespace {

// Deterministic union-find over component keys; the root of a set is always
// its smallest key.
class ComponentUnionFind {
 public:
  void add(const graph::ComponentKey& k) { parent_.emplace(k, k); }

  graph::ComponentKey find(const graph::ComponentKey& k) {
    auto it = parent_.find(k);
    if (it == parent_.end()) return k;
    graph::ComponentKey root = k;
    while (parent_.at(root) != root) root = parent_.at(root);
    // Path compression.
    graph::ComponentKey cur = k;
    while (parent_.at(cur) != root) {
      const graph::ComponentKey next = parent_.at(cur);
      parent_.at(cur) = root;
      cur = next;
    }
    return root;
  }

  void unite(const graph::ComponentKey& a, const graph::ComponentKey& b) {
    const graph::ComponentKey ra = find(a);
    const graph::ComponentKey rb = find(b);
    if (ra == rb) return;
    if (ra < rb) {
      parent_.at(rb) = ra;
    } else {
      parent_.at(ra) = rb;
    }
  }

 private:
  std::unordered_map<graph::ComponentKey, graph::ComponentKey> parent_;
};

}  // namespace

ContractedGraph contract_with_hints(const graph::ExecGraph& graph,
                                    const analysis::StaticHints& hints) {
  ContractedGraph out;

  std::vector<graph::ComponentKey> keys;
  keys.reserve(graph.node_count());
  for (const auto& [key, info] : graph.nodes()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  ComponentUnionFind uf;
  for (const auto& key : keys) uf.add(key);

  const auto never_migrate = [&](ClassId cls) {
    return std::binary_search(hints.never_migrate.begin(),
                              hints.never_migrate.end(), cls);
  };

  // 1. Collapse the client side: every component that is statically
  //    never-migrate or dynamically pinned joins one anchor. MINCUT seeds the
  //    client partition with all pinned components anyway, so this preserves
  //    semantics while removing nodes and intra-client edges.
  bool have_anchor = false;
  graph::ComponentKey anchor;
  for (const auto& key : keys) {
    const auto* info = graph.find_node(key);
    const bool pinned = info != nullptr && info->pinned;
    if (!pinned && !never_migrate(key.cls)) continue;
    if (!have_anchor) {
      anchor = key;
      have_anchor = true;
    } else {
      uf.unite(anchor, key);
    }
  }

  // 2. Zero-benefit merges between unpinned class-granularity components.
  for (const auto& [leaf, partner] : hints.merge_candidates) {
    const graph::ComponentKey a{leaf};
    const graph::ComponentKey b{partner};
    const auto* na = graph.find_node(a);
    const auto* nb = graph.find_node(b);
    if (na == nullptr || nb == nullptr) continue;
    if (na->pinned || nb->pinned) continue;
    uf.unite(a, b);
  }

  for (const auto& key : keys) {
    const graph::ComponentKey rep = uf.find(key);
    out.members[rep].push_back(key);
    const auto* info = graph.find_node(key);
    auto& merged = out.graph.node(rep);
    merged.mem_bytes += info->mem_bytes;
    merged.peak_mem_bytes += info->peak_mem_bytes;
    merged.exec_self_time += info->exec_self_time;
    merged.live_objects += info->live_objects;
    merged.pinned = merged.pinned || info->pinned;
  }

  std::unordered_map<graph::EdgeKey, graph::EdgeInfo> merged_edges;
  for (const auto& [key, info] : graph.edges()) {
    const graph::ComponentKey ra = uf.find(key.a);
    const graph::ComponentKey rb = uf.find(key.b);
    if (ra == rb) continue;  // interaction inside a merged group
    auto& e = merged_edges[graph::ExecGraph::make_edge_key(ra, rb)];
    e.invocations += info.invocations;
    e.accesses += info.accesses;
    e.bytes += info.bytes;
  }
  for (const auto& [key, info] : merged_edges) {
    out.graph.set_edge(key.a, key.b, info);
  }
  return out;
}

SimDuration predicted_comm_time(const graph::Candidate& cand,
                                const netsim::LinkParams& link) {
  // Each cut-crossing interaction is a synchronous message exchange: a full
  // null-message RTT plus the historical payload over the link bandwidth.
  const double rtt_s = sim_to_seconds(link.null_rtt);
  const double serialization_s =
      static_cast<double>(cand.cut_bytes) * 8.0 / link.bandwidth_bps;
  const double total_s =
      static_cast<double>(cand.cut_interactions()) * rtt_s + serialization_s;
  return static_cast<SimDuration>(total_s * 1e9);
}

SimDuration predicted_offload_time(const graph::Candidate& cand,
                                   SimDuration total_self_time,
                                   const PartitionRequest& req) {
  const SimDuration client_self = total_self_time - cand.offload_self_time;
  const double client_s =
      sim_to_seconds(client_self) / req.client_speed;
  const double surrogate_s = sim_to_seconds(cand.offload_self_time) /
                             (req.client_speed * req.surrogate_speedup);
  SimDuration t = static_cast<SimDuration>((client_s + surrogate_s) * 1e9) +
                  predicted_comm_time(cand, req.link);
  if (req.charge_migration) {
    const double mig_s = static_cast<double>(cand.offload_mem_bytes) * 8.0 /
                             req.link.bandwidth_bps +
                         sim_to_seconds(req.link.null_rtt);
    t += static_cast<SimDuration>(mig_s * 1e9);
  }
  return t;
}

PartitionDecision decide_partitioning(const graph::ExecGraph& graph,
                                      const PartitionRequest& req) {
  const auto wall_start = std::chrono::steady_clock::now();

  PartitionDecision decision;

  // Pre-contract under static hints when provided: MINCUT then runs on the
  // smaller graph, and cuts that separate statically-inseparable components
  // are unrepresentable by construction.
  ContractedGraph contracted;
  const graph::ExecGraph* cut_graph = &graph;
  if (req.hints != nullptr && !req.hints->empty()) {
    contracted = contract_with_hints(graph, *req.hints);
    cut_graph = &contracted.graph;
    decision.hints_applied = true;
  }
  decision.mincut_nodes = cut_graph->node_count();
  decision.mincut_edges = cut_graph->edge_count();

  const auto candidates = graph::modified_mincut(*cut_graph, req.weight);
  decision.candidates_total = candidates.size();

  const SimDuration total_self = cut_graph->total_self_time();
  decision.predicted_original_time = static_cast<SimDuration>(
      sim_to_seconds(total_self) / req.client_speed * 1e9);

  if (req.objective == Objective::free_memory) {
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& cand : candidates) {
      if (cand.offload_mem_bytes < req.min_free_bytes) continue;
      ++decision.candidates_feasible;
      if (cand.cut_weight < best_cost) {
        best_cost = cand.cut_weight;
        decision.selected = cand;
        decision.offload = true;
      }
    }
    if (decision.offload && req.history_duration > 0) {
      decision.predicted_bandwidth_bps =
          static_cast<double>(decision.selected.cut_bytes) * 8.0 /
          sim_to_seconds(req.history_duration);
    }
  } else {
    SimDuration best_time = decision.predicted_original_time;
    const SimDuration required_bound = static_cast<SimDuration>(
        static_cast<double>(decision.predicted_original_time) *
        (1.0 - req.min_improvement));
    SimDuration best_any = std::numeric_limits<SimDuration>::max();
    for (const auto& cand : candidates) {
      if (cand.offload_self_time <= 0) continue;
      const SimDuration t = predicted_offload_time(cand, total_self, req);
      best_any = std::min(best_any, t);
      if (t <= required_bound && t < best_time) {
        ++decision.candidates_feasible;
        best_time = t;
        decision.selected = cand;
        decision.offload = true;
      }
    }
    // When declining, still report the best candidate's prediction — the
    // paper reports Biomer's "best partitioning was predicted to take 790
    // seconds while the unpartitioned application took 750".
    if (decision.offload) {
      decision.predicted_offloaded_time = best_time;
    } else {
      decision.predicted_offloaded_time =
          best_any == std::numeric_limits<SimDuration>::max()
              ? decision.predicted_original_time
              : best_any;
    }
  }

  // A contracted representative stands for every component folded into it;
  // expand the selection back to monitor-visible keys so the platform can
  // gather the right objects.
  if (decision.offload && decision.hints_applied) {
    std::unordered_set<graph::ComponentKey> expanded;
    for (const auto& comp : decision.selected.offload) {
      const auto it = contracted.members.find(comp);
      if (it == contracted.members.end()) {
        expanded.insert(comp);
        continue;
      }
      expanded.insert(it->second.begin(), it->second.end());
    }
    decision.selected.offload = std::move(expanded);
  }

  decision.compute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return decision;
}

}  // namespace aide::partition
