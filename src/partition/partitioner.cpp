#include "partition/partitioner.hpp"

#include <chrono>
#include <limits>

namespace aide::partition {

SimDuration predicted_comm_time(const graph::Candidate& cand,
                                const netsim::LinkParams& link) {
  // Each cut-crossing interaction is a synchronous message exchange: a full
  // null-message RTT plus the historical payload over the link bandwidth.
  const double rtt_s = sim_to_seconds(link.null_rtt);
  const double serialization_s =
      static_cast<double>(cand.cut_bytes) * 8.0 / link.bandwidth_bps;
  const double total_s =
      static_cast<double>(cand.cut_interactions()) * rtt_s + serialization_s;
  return static_cast<SimDuration>(total_s * 1e9);
}

SimDuration predicted_offload_time(const graph::Candidate& cand,
                                   SimDuration total_self_time,
                                   const PartitionRequest& req) {
  const SimDuration client_self = total_self_time - cand.offload_self_time;
  const double client_s =
      sim_to_seconds(client_self) / req.client_speed;
  const double surrogate_s = sim_to_seconds(cand.offload_self_time) /
                             (req.client_speed * req.surrogate_speedup);
  SimDuration t = static_cast<SimDuration>((client_s + surrogate_s) * 1e9) +
                  predicted_comm_time(cand, req.link);
  if (req.charge_migration) {
    const double mig_s = static_cast<double>(cand.offload_mem_bytes) * 8.0 /
                             req.link.bandwidth_bps +
                         sim_to_seconds(req.link.null_rtt);
    t += static_cast<SimDuration>(mig_s * 1e9);
  }
  return t;
}

PartitionDecision decide_partitioning(const graph::ExecGraph& graph,
                                      const PartitionRequest& req) {
  const auto wall_start = std::chrono::steady_clock::now();

  PartitionDecision decision;
  const auto candidates = graph::modified_mincut(graph, req.weight);
  decision.candidates_total = candidates.size();

  const SimDuration total_self = graph.total_self_time();
  decision.predicted_original_time = static_cast<SimDuration>(
      sim_to_seconds(total_self) / req.client_speed * 1e9);

  if (req.objective == Objective::free_memory) {
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& cand : candidates) {
      if (cand.offload_mem_bytes < req.min_free_bytes) continue;
      ++decision.candidates_feasible;
      if (cand.cut_weight < best_cost) {
        best_cost = cand.cut_weight;
        decision.selected = cand;
        decision.offload = true;
      }
    }
    if (decision.offload && req.history_duration > 0) {
      decision.predicted_bandwidth_bps =
          static_cast<double>(decision.selected.cut_bytes) * 8.0 /
          sim_to_seconds(req.history_duration);
    }
  } else {
    SimDuration best_time = decision.predicted_original_time;
    const SimDuration required_bound = static_cast<SimDuration>(
        static_cast<double>(decision.predicted_original_time) *
        (1.0 - req.min_improvement));
    SimDuration best_any = std::numeric_limits<SimDuration>::max();
    for (const auto& cand : candidates) {
      if (cand.offload_self_time <= 0) continue;
      const SimDuration t = predicted_offload_time(cand, total_self, req);
      best_any = std::min(best_any, t);
      if (t <= required_bound && t < best_time) {
        ++decision.candidates_feasible;
        best_time = t;
        decision.selected = cand;
        decision.offload = true;
      }
    }
    // When declining, still report the best candidate's prediction — the
    // paper reports Biomer's "best partitioning was predicted to take 790
    // seconds while the unpartitioned application took 750".
    if (decision.offload) {
      decision.predicted_offloaded_time = best_time;
    } else {
      decision.predicted_offloaded_time =
          best_any == std::numeric_limits<SimDuration>::max()
              ? decision.predicted_original_time
              : best_any;
    }
  }

  decision.compute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return decision;
}

}  // namespace aide::partition
