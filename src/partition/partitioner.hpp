// Partitioning policy evaluation (paper section 3.3).
//
// The partitioner reduces "is there a beneficial offloading?" to evaluating
// the candidate series produced by the modified MINCUT heuristic against a
// policy:
//
//  * free_memory objective (section 5.1) — a candidate is feasible if it
//    frees at least the policy's minimum fraction of the client heap; among
//    feasible candidates the one with the smallest interaction cost across
//    the cut is selected ("offloads a sufficient amount of information while
//    placing the smallest demand on network bandwidth").
//
//  * speed_up objective (section 5.2) — each candidate's total execution time
//    is predicted from per-component CPU self-times (client speed vs the
//    3.5x surrogate) plus communication for cut-crossing interactions; the
//    fastest candidate is selected only if it beats staying on the client
//    (Biomer: the system "correctly decided not to offload any objects").
// Static hints (src/analysis) can pre-contract the execution graph before
// MINCUT: never-migrate components collapse into the pinned client anchor and
// zero-benefit merge candidates collapse into their partners, shrinking the
// cut problem while making statically-illegal cuts unrepresentable. Hints are
// opt-in (PartitionRequest::hints); without them the pipeline is bit-identical
// to the purely dynamic paper behavior.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/hints.hpp"
#include "common/simclock.hpp"
#include "graph/mincut.hpp"
#include "netsim/link.hpp"

namespace aide::partition {

enum class Objective { free_memory, speed_up };

struct PartitionRequest {
  Objective objective = Objective::free_memory;

  // --- free_memory objective ----------------------------------------------
  std::int64_t heap_capacity = 0;
  // Minimum client heap bytes a partitioning must free to be acceptable
  // (paper: "at least 20% of the Java heap").
  std::int64_t min_free_bytes = 0;

  // --- speed_up objective ---------------------------------------------------
  double client_speed = 1.0;
  double surrogate_speedup = 3.5;
  // Fraction of predicted-original time a candidate must beat to be selected.
  double min_improvement = 0.0;

  // --- shared ----------------------------------------------------------------
  netsim::LinkParams link = netsim::LinkParams::wavelan();
  // Duration of the execution history the graph summarizes; used to convert
  // historical cut bytes into a predicted bandwidth and to scale the
  // history's communication volume into the time prediction.
  SimDuration history_duration = sim_sec(1);
  graph::EdgeWeightFn weight;
  // One-time object migration is charged into speed-up predictions.
  bool charge_migration = true;

  // Optional static hints from analysis::analyze(); when set (and non-empty)
  // the graph is pre-contracted before MINCUT. Not owned; must outlive the
  // call.
  const analysis::StaticHints* hints = nullptr;

  // Number of surrogates the selected offload set may span. With k > 1 the
  // selected set is split into min(k, |set|) parts by recursive bisection
  // (graph::k_way_split) over the (contracted) cut graph; k == 1 leaves the
  // decision byte-identical to the single-surrogate pipeline.
  std::size_t k = 1;

  // Post-reconcile re-offload seeding: components whose working tree was
  // rebuilt while disconnected (derived from the redo-log watch set) receive
  // a per-byte credit against their candidate's cut cost under the
  // free_memory objective, so allocation-gravity apps re-offload the tree
  // they grew offline instead of the cheapest sliver. Not owned; must
  // outlive the call. Null or empty means no bias (byte-identical path).
  const std::unordered_set<graph::ComponentKey>* reoffload_gravity = nullptr;
  double gravity_credit_per_byte = 0.0;
};

struct PartitionDecision {
  bool offload = false;
  graph::Candidate selected;
  std::size_t candidates_total = 0;
  std::size_t candidates_feasible = 0;

  // free_memory: predicted steady-state bandwidth across the cut.
  double predicted_bandwidth_bps = 0.0;

  // speed_up: predicted times over the history window.
  SimDuration predicted_original_time = 0;
  SimDuration predicted_offloaded_time = 0;

  // Real wall-clock cost of running the heuristic + evaluation (the paper
  // reports ~0.1 s on a 600 MHz Pentium).
  double compute_seconds = 0.0;

  // Size of the graph MINCUT actually ran on (after hint contraction, when
  // hints were applied) — the pre-contraction win is nodes/edges saved.
  std::size_t mincut_nodes = 0;
  std::size_t mincut_edges = 0;
  bool hints_applied = false;

  // k-way placement (request.k > 1 only): the selected offload set split
  // into per-surrogate parts, expanded to monitor-visible component keys,
  // ordered by smallest member key. Empty means single-surrogate placement
  // (the union is `selected.offload` either way). `part_cross_weight` is the
  // policy weight of surrogate-to-surrogate edges introduced by the split.
  std::vector<std::unordered_set<graph::ComponentKey>> parts;
  double part_cross_weight = 0.0;
};

// Result of pre-contracting an execution graph with static hints. `members`
// maps each surviving representative to the original components folded into
// it (including itself) so a selected offload set can be expanded back to
// monitor-visible component keys.
struct ContractedGraph {
  graph::ExecGraph graph;
  std::unordered_map<graph::ComponentKey, std::vector<graph::ComponentKey>>
      members;
};

// Contracts `graph` under `hints`: every component whose class is in
// never_migrate (or whose node is dynamically pinned) merges into a single
// pinned client anchor; each merge-candidate pair with both endpoints
// unpinned merges into one node. Node stats and edge totals are preserved
// (parallel edges sum; intra-group edges vanish). Deterministic: the
// representative of a group is its smallest component key.
[[nodiscard]] ContractedGraph contract_with_hints(
    const graph::ExecGraph& graph, const analysis::StaticHints& hints);

// Predicted communication time for one candidate's historical cut traffic.
[[nodiscard]] SimDuration predicted_comm_time(const graph::Candidate& cand,
                                              const netsim::LinkParams& link);

// Predicted total execution time of the recorded history if `cand` had been
// in effect, under the speed_up objective.
[[nodiscard]] SimDuration predicted_offload_time(const graph::Candidate& cand,
                                                 SimDuration total_self_time,
                                                 const PartitionRequest& req);

// Evaluates the modified-MINCUT candidate series against the policy.
[[nodiscard]] PartitionDecision decide_partitioning(
    const graph::ExecGraph& graph, const PartitionRequest& req);

}  // namespace aide::partition
