// Resource monitoring and trigger detection (paper sections 3.4 and 5.1).
//
// The prototype "tracks the amount of free space in the Java heap with
// information obtained from the JVM's garbage collector". Partitioning is
// triggered when N successive GC cycles indicate that additional memory
// cannot be freed or that less than T% of memory is available — the
// thresholds the Figure 7 policy sweep varies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "vm/hooks.hpp"

namespace aide::monitor {

struct TriggerPolicy {
  // Trigger when the post-GC free fraction drops below this value
  // (Figure 7 varies this from 0.02 to 0.50).
  double low_free_threshold = 0.05;
  // Number of successive low-memory GC reports required ("tolerance to
  // low-memory signals", varied from 1 to 3 in Figure 7).
  int consecutive_reports = 3;
  // "Additional memory cannot be freed": a GC cycle that recovers less than
  // this fraction of capacity also counts as a low-memory report, provided
  // the heap is substantially occupied.
  double no_progress_fraction = 0.01;
  double no_progress_min_used = 0.90;
};

class ResourceMonitor : public vm::VmHooks {
 public:
  ResourceMonitor(NodeId watched_vm, TriggerPolicy policy)
      : watched_(watched_vm), policy_(policy) {}

  void on_gc(NodeId vm, const vm::GcReport& report) override {
    if (vm != watched_ || suppressed_) return;
    last_report_ = report;
    ++reports_seen_;

    const double free_frac = report.free_fraction();
    const double freed_frac =
        report.capacity > 0
            ? static_cast<double>(report.freed) /
                  static_cast<double>(report.capacity)
            : 1.0;
    const bool low = free_frac < policy_.low_free_threshold;
    const bool no_progress = freed_frac < policy_.no_progress_fraction &&
                             (1.0 - free_frac) > policy_.no_progress_min_used;

    if (low || no_progress) {
      ++consecutive_low_;
      if (consecutive_low_ >= policy_.consecutive_reports) triggered_ = true;
    } else {
      consecutive_low_ = 0;
    }
  }

  // Feed a GC-style report directly (used by the trace-driven emulator).
  void feed(const vm::GcReport& report) { on_gc(watched_, report); }

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }

  // Consumes a pending trigger; returns whether one was pending.
  bool consume_trigger() noexcept {
    const bool t = triggered_;
    triggered_ = false;
    consecutive_low_ = 0;
    return t;
  }

  // The peer this monitor would offload to is gone: stop raising triggers
  // until reset() (there is nowhere to offload, so a trigger could only
  // cause a doomed partitioning attempt on every GC).
  void note_peer_failure() noexcept {
    suppressed_ = true;
    triggered_ = false;
    consecutive_low_ = 0;
  }

  // The failed peer came back (re-admission): lift the suppression so
  // low-memory triggers can drive offloading again. The consecutive-report
  // counter restarts — pre-failure pressure history is stale by now.
  void note_peer_recovered() noexcept {
    suppressed_ = false;
    triggered_ = false;
    consecutive_low_ = 0;
  }

  [[nodiscard]] bool suppressed() const noexcept { return suppressed_; }

  void reset() noexcept {
    triggered_ = false;
    consecutive_low_ = 0;
    reports_seen_ = 0;
    suppressed_ = false;
  }

  [[nodiscard]] const TriggerPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] const vm::GcReport& last_report() const noexcept {
    return last_report_;
  }
  [[nodiscard]] int consecutive_low() const noexcept {
    return consecutive_low_;
  }
  [[nodiscard]] std::uint64_t reports_seen() const noexcept {
    return reports_seen_;
  }

 private:
  NodeId watched_;
  TriggerPolicy policy_;
  vm::GcReport last_report_{};
  int consecutive_low_ = 0;
  bool triggered_ = false;
  bool suppressed_ = false;
  std::uint64_t reports_seen_ = 0;
};

}  // namespace aide::monitor
